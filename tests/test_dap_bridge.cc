/**
 * @file
 * The DAP bridge end to end. The centerpiece is a scripted DAP
 * client talking real Content-Length frames over loopback TCP to
 * dap::TcpServer: initialize → setBreakpoints → launch →
 * configurationDone → stopped at the breakpoint → stackTrace and
 * variables reflect the device state → continue → pause → clean
 * disconnect. Framing is byte-exact on both sides — the client
 * decodes with the same hardened FrameReader the server uses, so a
 * single stray byte anywhere breaks the run. Around that:
 * event-mapping tests (watch_hit → stopped "data breakpoint",
 * assertion_fired → output + stopped "exception") on an in-memory
 * bridge, the session-cap busy path surfacing through `launch`,
 * and the scheduler cycle budget retiring a DAP `continue`.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <netinet/in.h>
#include <poll.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "dap/bridge.hh"
#include "dap/net.hh"

using namespace zoomie;
using rdp::Json;

namespace {

/** A bridge wired straight to an in-memory sink. */
struct BridgeHarness
{
    rdp::Server server;
    std::mutex mutex;
    std::condition_variable arrived;
    std::vector<std::string> out;
    dap::Bridge bridge;

    explicit BridgeHarness(rdp::ServerOptions options = {},
                           dap::BridgeOptions bridgeOptions = {})
        : server(std::move(options)),
          bridge(
              server,
              [this](const std::string &body) {
                  {
                      std::lock_guard<std::mutex> lock(mutex);
                      out.push_back(body);
                  }
                  arrived.notify_all();
              },
              bridgeOptions)
    {
    }

    /**
     * Block until a message matching @p pred arrives (scanning
     * everything received so far first); returns it decoded.
     */
    Json await(const std::function<bool(const Json &)> &pred,
               int timeoutMs = 15'000)
    {
        std::unique_lock<std::mutex> lock(mutex);
        size_t scanned = 0;
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
        for (;;) {
            for (; scanned < out.size(); ++scanned) {
                auto parsed = Json::parse(out[scanned]);
                if (parsed && pred(*parsed))
                    return *parsed;
            }
            if (arrived.wait_until(lock, deadline) ==
                    std::cv_status::timeout &&
                scanned >= out.size()) {
                ADD_FAILURE() << "timed out awaiting a message";
                return Json();
            }
        }
    }
};

/** Match an event message by name (and optional stop reason). */
std::function<bool(const Json &)>
isEvent(const std::string &name, const std::string &reason = "")
{
    return [name, reason](const Json &msg) {
        const Json *event = msg.find("event");
        if (!event || !event->isString() ||
            event->asString() != name)
            return false;
        if (reason.empty())
            return true;
        const Json *body = msg.find("body");
        const Json *got =
            body && body->isObject() ? body->find("reason")
                                     : nullptr;
        return got && got->isString() &&
               got->asString() == reason;
    };
}

/** Match the response to @p command. */
std::function<bool(const Json &)>
isResponse(const std::string &command)
{
    return [command](const Json &msg) {
        const Json *type = msg.find("type");
        const Json *cmd = msg.find("command");
        return type && type->isString() &&
               type->asString() == "response" && cmd &&
               cmd->isString() && cmd->asString() == command;
    };
}

std::string
request(int seq, const std::string &command,
        const std::string &argsJson = "")
{
    std::string out = "{\"seq\":" + std::to_string(seq) +
                      ",\"type\":\"request\",\"command\":\"" +
                      command + "\"";
    if (!argsJson.empty())
        out += ",\"arguments\":" + argsJson;
    return out + "}";
}

/**
 * A scripted DAP client on a real socket: sends Content-Length
 * framed requests, decodes the return stream with the same
 * FrameReader the server uses (so framing must be byte-exact in
 * both directions), and awaits messages by predicate.
 */
class DapClient
{
  public:
    explicit DapClient(uint16_t port)
    {
        _fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(_fd, 0);
        struct sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(_fd, (struct sockaddr *)&addr,
                            sizeof(addr)),
                  0)
            << "connect: " << strerror(errno);
    }

    ~DapClient()
    {
        if (_fd >= 0)
            ::close(_fd);
    }

    void send(const std::string &body)
    {
        std::string framed = dap::encodeFrame(body);
        ASSERT_EQ(::send(_fd, framed.data(), framed.size(),
                         MSG_NOSIGNAL),
                  ssize_t(framed.size()));
    }

    Json await(const std::function<bool(const Json &)> &pred,
               int timeoutMs = 15'000)
    {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
        for (;;) {
            for (; _scanned < _messages.size(); ++_scanned) {
                auto parsed = Json::parse(_messages[_scanned]);
                EXPECT_TRUE(parsed)
                    << "unparseable DAP body: "
                    << _messages[_scanned];
                if (parsed && pred(*parsed))
                    return *parsed;
            }
            int leftMs = int(
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count());
            if (leftMs <= 0 || !pump(leftMs)) {
                ADD_FAILURE()
                    << "timed out awaiting a DAP message";
                return Json();
            }
        }
    }

  private:
    /** Read more bytes into the frame reader. @return false on
     *  timeout/EOF/framing error. */
    bool pump(int timeoutMs)
    {
        struct pollfd pfd = {};
        pfd.fd = _fd;
        pfd.events = POLLIN;
        if (::poll(&pfd, 1, timeoutMs) <= 0)
            return false;
        char chunk[4096];
        ssize_t n = ::recv(_fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return false;
        if (!_reader.feed(std::string_view(chunk, size_t(n)))) {
            ADD_FAILURE() << "client-side framing error: "
                          << _reader.errorDetail();
            return false;
        }
        std::string body;
        while (_reader.next(body))
            _messages.push_back(body);
        return true;
    }

    int _fd = -1;
    dap::FrameReader _reader;
    std::deque<std::string> _messages;
    size_t _scanned = 0;
};

std::string
frameName(const Json &stackTraceResponse)
{
    const Json *body = stackTraceResponse.find("body");
    if (!body)
        return "";
    const Json *frames = body->find("stackFrames");
    if (!frames || !frames->isArray() || frames->size() == 0)
        return "";
    const Json *name = frames->at(0).find("name");
    return name && name->isString() ? name->asString() : "";
}

} // namespace

/**
 * The acceptance script, over a real TCP socket with byte-exact
 * Content-Length framing end to end.
 */
TEST(DapBridge, EndToEndOverLoopbackTcp)
{
    rdp::Server server;
    dap::TcpServer tcp(server);
    std::string error;
    ASSERT_TRUE(tcp.start(&error)) << error;

    {
        DapClient client(tcp.port());

        client.send(request(1, "initialize",
                            R"({"adapterID":"zoomie-e2e"})"));
        Json init = client.await(isResponse("initialize"));
        ASSERT_TRUE(init.find("body"));
        EXPECT_TRUE(init.find("body")
                        ->find("supportsConfigurationDoneRequest")
                        ->asBool());
        client.await(isEvent("initialized"));

        // Configuration first, launch not yet running: breakpoints
        // arrive before the design does and still verify at launch.
        client.send(request(
            2, "setBreakpoints",
            R"({"source":{"name":"counter"},"breakpoints":[{"line":5}]})"));
        Json bps = client.await(isResponse("setBreakpoints"));
        EXPECT_TRUE(bps.find("body")
                        ->find("breakpoints")
                        ->at(0)
                        .find("verified")
                        ->asBool());

        client.send(request(
            3, "launch",
            R"({"design":"counter","stopOnEntry":false})"));
        client.await(isResponse("launch"));

        // configurationDone releases the device; the armed value
        // breakpoint stops it deterministically at count == 5.
        client.send(request(4, "configurationDone"));
        client.await(isResponse("configurationDone"));
        client.await(isEvent("stopped", "breakpoint"));

        client.send(request(5, "stackTrace",
                            R"({"threadId":1})"));
        Json stack = client.await(isResponse("stackTrace"));
        EXPECT_EQ(frameName(stack), "counter @ cycle 5");

        client.send(request(6, "scopes", R"({"frameId":1})"));
        Json scopes = client.await(isResponse("scopes"));
        EXPECT_EQ(scopes.find("body")
                      ->find("scopes")
                      ->at(0)
                      .find("variablesReference")
                      ->asU64(),
                  1u);

        client.send(request(7, "variables",
                            R"({"variablesReference":1})"));
        Json vars = client.await(isResponse("variables"));
        const Json *variable =
            &vars.find("body")->find("variables")->at(0);
        EXPECT_EQ(variable->find("name")->asString(),
                  "mut/count");
        EXPECT_EQ(variable->find("value")->asString(), "0x5");

        client.send(request(
            8, "evaluate",
            R"({"expression":"print mut/count"})"));
        Json eval = client.await(isResponse("evaluate"));
        EXPECT_EQ(eval.find("body")->find("result")->asString(),
                  "0x5");

        // Clear the breakpoint, run free, then pause from outside.
        client.send(request(9, "setBreakpoints",
                            R"({"breakpoints":[]})"));
        client.await(isResponse("setBreakpoints"));
        client.send(request(10, "continue",
                            R"({"threadId":1})"));
        Json cont = client.await(isResponse("continue"));
        EXPECT_TRUE(cont.find("body")
                        ->find("allThreadsContinued")
                        ->asBool());

        client.send(request(11, "pause", R"({"threadId":1})"));
        client.await(isEvent("stopped", "pause"));
        client.await(isResponse("pause"));

        client.send(request(12, "disconnect"));
        Json bye = client.await(isResponse("disconnect"));
        EXPECT_TRUE(bye.find("success")->asBool());
        client.await(isEvent("terminated"));
    }

    // The bridge closed its session on disconnect; nothing leaks
    // into the shared registry.
    for (int i = 0; i < 100 && !server.sessions().ids().empty();
         ++i)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    EXPECT_TRUE(server.sessions().ids().empty());

    tcp.stop();
}

/**
 * The time-travel acceptance script, over the same byte-exact TCP
 * transport: initialize (capabilities advertise stepBack) → launch
 * stopped on entry → continue to a deterministic breakpoint stop at
 * cycle 5 → stepBack → variables observe the cycle-4 state →
 * reverseContinue rewinds to the newest earlier snapshot (the
 * pinned genesis at cycle 0) → stepBack at cycle 0 fails cleanly.
 */
TEST(DapBridge, TimeTravelStepBackObservesEarlierState)
{
    rdp::Server server;
    dap::TcpServer tcp(server);
    std::string error;
    ASSERT_TRUE(tcp.start(&error)) << error;

    {
        DapClient client(tcp.port());

        client.send(request(1, "initialize",
                            R"({"adapterID":"zoomie-tt"})"));
        Json init = client.await(isResponse("initialize"));
        ASSERT_TRUE(init.find("body"));
        EXPECT_TRUE(init.find("body")
                        ->find("supportsStepBack")
                        ->asBool());
        client.await(isEvent("initialized"));

        client.send(request(
            2, "setBreakpoints",
            R"({"source":{"name":"counter"},"breakpoints":[{"line":5}]})"));
        client.await(isResponse("setBreakpoints"));

        client.send(request(
            3, "launch",
            R"({"design":"counter","stopOnEntry":true})"));
        client.await(isResponse("launch"));
        client.send(request(4, "configurationDone"));
        client.await(isResponse("configurationDone"));
        client.await(isEvent("stopped", "entry"));

        // Forward to the breakpoint: count == 5, cycle 5.
        client.send(request(5, "continue", R"({"threadId":1})"));
        client.await(isResponse("continue"));
        client.await(isEvent("stopped", "breakpoint"));
        client.send(request(6, "variables",
                            R"({"variablesReference":1})"));
        Json at5 = client.await(isResponse("variables"));
        EXPECT_EQ(at5.find("body")
                      ->find("variables")
                      ->at(0)
                      .find("value")
                      ->asString(),
                  "0x5");

        // One step back in time: the stop event precedes the
        // response, and the device now shows the cycle-4 state.
        client.send(request(7, "stepBack", R"({"threadId":1})"));
        Json back = client.await(isEvent("stopped", "step"));
        EXPECT_EQ(back.find("body")
                      ->find("description")
                      ->asString(),
                  "stepped back to cycle 4");
        client.await(isResponse("stepBack"));
        client.send(request(8, "variables",
                            R"({"variablesReference":1})"));
        Json at4 = client.await(isResponse("variables"));
        EXPECT_EQ(at4.find("body")
                      ->find("variables")
                      ->at(0)
                      .find("value")
                      ->asString(),
                  "0x4");
        client.send(request(9, "stackTrace",
                            R"({"threadId":1})"));
        EXPECT_EQ(frameName(client.await(isResponse("stackTrace"))),
                  "counter @ cycle 4");

        // reverseContinue lands on the newest snapshot before
        // cycle 4 — the pinned genesis at cycle 0.
        client.send(request(10, "reverseContinue",
                            R"({"threadId":1})"));
        Json rewound = client.await(isEvent("stopped", "pause"));
        EXPECT_EQ(rewound.find("body")
                      ->find("description")
                      ->asString(),
                  "rewound to cycle 0");
        client.await(isResponse("reverseContinue"));
        client.send(request(11, "variables",
                            R"({"variablesReference":1})"));
        Json at0 = client.await(isResponse("variables"));
        EXPECT_EQ(at0.find("body")
                      ->find("variables")
                      ->at(0)
                      .find("value")
                      ->asString(),
                  "0x0");

        // History ends at cycle 0.
        client.send(request(12, "stepBack", R"({"threadId":1})"));
        Json refused = client.await(isResponse("stepBack"));
        EXPECT_FALSE(refused.find("success")->asBool());
        EXPECT_NE(refused.find("message")->asString().find(
                      "already at cycle 0"),
                  std::string::npos);

        client.send(request(13, "disconnect"));
        client.await(isResponse("disconnect"));
        client.await(isEvent("terminated"));
    }

    for (int i = 0; i < 100 && !server.sessions().ids().empty();
         ++i)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(10));
    EXPECT_TRUE(server.sessions().ids().empty());

    tcp.stop();
}

TEST(DapBridge, WatchHitMapsToDataBreakpointStop)
{
    BridgeHarness h;
    h.bridge.handleMessage(request(1, "initialize"));
    h.bridge.handleMessage(request(
        2, "launch",
        R"({"design":"counter","stopOnEntry":false})"));
    h.bridge.handleMessage(request(
        3, "setDataBreakpoints",
        R"({"breakpoints":[{"dataId":"mut/count"}]})"));
    h.bridge.handleMessage(request(4, "configurationDone"));

    // The first counter increment trips the watchpoint.
    Json stop = h.await(isEvent("stopped", "data breakpoint"));
    const Json *description =
        stop.find("body")->find("description");
    ASSERT_TRUE(description && description->isString());
    EXPECT_NE(description->asString().find(
                  "mut/count changed 0x0 -> 0x1"),
              std::string::npos)
        << description->asString();
}

TEST(DapBridge, AssertionMapsToExceptionStopAndOutput)
{
    BridgeHarness h;
    h.bridge.handleMessage(request(1, "initialize"));
    h.bridge.handleMessage(request(
        2, "launch",
        R"({"design":"counter","stopOnEntry":false,)"
        R"("assertions":["assert property (mut/count != 50);"]})"));
    h.bridge.handleMessage(request(4, "configurationDone"));

    Json output = h.await([](const Json &msg) {
        const Json *event = msg.find("event");
        if (!event || !event->isString() ||
            event->asString() != "output")
            return false;
        const Json *body = msg.find("body");
        const Json *text = body ? body->find("output") : nullptr;
        return text && text->isString() &&
               text->asString().find("fired") !=
                   std::string::npos;
    });
    EXPECT_EQ(output.find("body")
                  ->find("category")
                  ->asString(),
              "important");

    Json stop = h.await(isEvent("stopped", "exception"));
    const Json *description =
        stop.find("body")->find("description");
    ASSERT_TRUE(description && description->isString());
    EXPECT_NE(description->asString().find("fired"),
              std::string::npos);
}

TEST(DapBridge, LaunchSurfacesTheSessionCapAsBusy)
{
    rdp::ServerOptions options;
    options.scheduler.maxSessions = 1;
    BridgeHarness h(options);
    // Fill the only slot through the JSONL side; the DAP launch
    // must then fail with the registry's typed busy error.
    bool quit = false;
    auto out = h.server.handleLine(
        R"({"cmd":"open","design":"counter"})", quit);
    ASSERT_NE(out.back().find("\"ok\":true"), std::string::npos);

    h.bridge.handleMessage(request(1, "initialize"));
    h.bridge.handleMessage(
        request(2, "launch", R"({"design":"counter"})"));
    Json launch = h.await(isResponse("launch"));
    EXPECT_FALSE(launch.find("success")->asBool());
    const Json *message = launch.find("message");
    ASSERT_TRUE(message && message->isString());
    EXPECT_NE(message->asString().find("busy"),
              std::string::npos)
        << message->asString();
    EXPECT_NE(message->asString().find("session limit reached"),
              std::string::npos);
}

TEST(DapBridge, CycleBudgetRetiresAContinue)
{
    rdp::ServerOptions options;
    options.scheduler.cycleBudget = 1000;
    BridgeHarness h(options);
    h.bridge.handleMessage(request(1, "initialize"));
    h.bridge.handleMessage(request(
        2, "launch",
        R"({"design":"counter","stopOnEntry":false})"));
    // No breakpoints: only the budget can stop the runner.
    h.bridge.handleMessage(request(3, "configurationDone"));

    Json stop = h.await(isEvent("stopped", "pause"));
    const Json *description =
        stop.find("body")->find("description");
    ASSERT_TRUE(description && description->isString());
    EXPECT_EQ(description->asString(),
              "cycle budget exhausted");
}

TEST(DapBridge, StackTraceBeforeLaunchFailsCleanly)
{
    BridgeHarness h;
    h.bridge.handleMessage(request(1, "stackTrace"));
    Json resp = h.await(isResponse("stackTrace"));
    EXPECT_FALSE(resp.find("success")->asBool());
    EXPECT_NE(resp.find("message")->asString().find("launch"),
              std::string::npos);
}

TEST(DapBridge, FramingErrorClosesTheTcpConnection)
{
    rdp::Server server;
    dap::TcpServer tcp(server);
    std::string error;
    ASSERT_TRUE(tcp.start(&error)) << error;
    {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        struct sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(tcp.port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        ASSERT_EQ(::connect(fd, (struct sockaddr *)&addr,
                            sizeof(addr)),
                  0);
        const char junk[] = "Content-Length: nope\r\n\r\n";
        ASSERT_GT(::send(fd, junk, sizeof junk - 1, MSG_NOSIGNAL),
                  0);
        // The server reports the framing error, then hangs up —
        // recv eventually returns 0 (EOF), not a hang.
        std::string received;
        char chunk[1024];
        for (;;) {
            struct pollfd pfd = {};
            pfd.fd = fd;
            pfd.events = POLLIN;
            ASSERT_GT(::poll(&pfd, 1, 15'000), 0)
                << "server never closed the connection";
            ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                break;
            received.append(chunk, size_t(n));
        }
        EXPECT_NE(received.find("bad-header"), std::string::npos)
            << received;
        ::close(fd);
    }
    tcp.stop();
}
