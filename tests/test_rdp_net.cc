/**
 * @file
 * TCP transport tests, over real loopback sockets: a full client
 * session (hello v2 / open / run / close / quit), the per-connection
 * read timeout and max-line hardening (typed error event, then
 * hangup), the connection cap, and `shutdown` stopping the whole
 * listener so later connects are refused.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "rdp/net.hh"
#include "rdp/server.hh"

using namespace zoomie;
using rdp::Json;

namespace {

/** Minimal blocking JSONL client over a loopback socket. */
class LoopbackClient
{
  public:
    explicit LoopbackClient(uint16_t port)
    {
        _fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_fd < 0)
            return;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(_fd);
            _fd = -1;
        }
    }

    ~LoopbackClient()
    {
        if (_fd >= 0)
            ::close(_fd);
    }

    bool connected() const { return _fd >= 0; }

    void send(const std::string &line)
    {
        std::string framed = line + "\n";
        ASSERT_GE(_fd, 0);
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n = ::send(_fd, framed.data() + off,
                               framed.size() - off, 0);
            ASSERT_GT(n, 0);
            off += size_t(n);
        }
    }

    /** Read one line; false on EOF. */
    bool recvLine(std::string &line)
    {
        for (;;) {
            size_t pos = _buffer.find('\n');
            if (pos != std::string::npos) {
                line = _buffer.substr(0, pos);
                _buffer.erase(0, pos + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::recv(_fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            _buffer.append(chunk, size_t(n));
        }
    }

    /** Send a request, return its parsed reply (skipping events). */
    Json request(const std::string &line)
    {
        send(line);
        std::string reply_line;
        while (recvLine(reply_line)) {
            auto msg = Json::parse(reply_line);
            EXPECT_TRUE(msg) << reply_line;
            if (!msg)
                return Json();
            const Json *type = msg->find("type");
            if (type && type->asString() == "reply")
                return *msg;
        }
        ADD_FAILURE() << "connection closed before reply to: "
                      << line;
        return Json();
    }

  private:
    int _fd = -1;
    std::string _buffer;
};

struct ServerFixture
{
    explicit ServerFixture(rdp::NetOptions net = {},
                           rdp::ServerOptions opts = {})
        : server(opts), tcp(server, net)
    {
        server.setShutdownHook([this] { tcp.requestStop(); });
        std::string error;
        started = tcp.start(&error);
        EXPECT_TRUE(started) << error;
    }

    rdp::Server server;
    rdp::TcpServer tcp;
    bool started = false;
};

bool
replyOk(const Json &reply)
{
    const Json *ok = reply.find("ok");
    return ok && ok->asBool();
}

} // namespace

TEST(RdpNet, LoopbackClientRunsFullSession)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    ASSERT_NE(fx.tcp.port(), 0) << "ephemeral port not resolved";

    LoopbackClient client(fx.tcp.port());
    ASSERT_TRUE(client.connected());

    Json hello = client.request(
        "{\"cmd\":\"hello\",\"version\":2,\"id\":1}");
    ASSERT_TRUE(replyOk(hello));
    EXPECT_EQ(hello.find("version")->asU64(),
              rdp::kProtocolVersion);

    Json open = client.request(
        "{\"cmd\":\"open\",\"design\":\"counter\",\"id\":2}");
    ASSERT_TRUE(replyOk(open));
    uint64_t sid = open.find("session")->asU64();
    EXPECT_GT(sid, 0u);

    // The run goes through the scheduler; the reply carries the
    // scheduling metrics of the redesigned wire API.
    Json run = client.request(
        "{\"cmd\":\"run\",\"n\":500,\"id\":3}");
    ASSERT_TRUE(replyOk(run));
    EXPECT_EQ(run.find("cycles_run")->asU64(), 500u);
    EXPECT_EQ(run.find("cycle")->asU64(), 500u);
    ASSERT_TRUE(run.find("queue_wait_us"));

    Json print = client.request(
        "{\"cmd\":\"print\",\"name\":\"mut/count\",\"id\":4}");
    ASSERT_TRUE(replyOk(print));

    Json close = client.request("{\"cmd\":\"close\",\"id\":5}");
    ASSERT_TRUE(replyOk(close));
    EXPECT_EQ(fx.server.sessions().count(), 0u);

    Json quit = client.request("{\"cmd\":\"quit\",\"id\":6}");
    ASSERT_TRUE(replyOk(quit));

    // quit ends only this connection; the listener stays up.
    std::string extra;
    EXPECT_FALSE(client.recvLine(extra)) << extra;
    LoopbackClient again(fx.tcp.port());
    EXPECT_TRUE(again.connected());
    EXPECT_TRUE(
        replyOk(again.request("{\"cmd\":\"hello\",\"id\":1}")));

    fx.tcp.stop();
}

TEST(RdpNet, TwoClientsShareTheRegistry)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);

    LoopbackClient a(fx.tcp.port());
    LoopbackClient b(fx.tcp.port());
    ASSERT_TRUE(a.connected());
    ASSERT_TRUE(b.connected());

    Json open = a.request(
        "{\"cmd\":\"open\",\"design\":\"counter\",\"id\":1}");
    ASSERT_TRUE(replyOk(open));
    uint64_t sid = open.find("session")->asU64();

    // Client B can address the session A opened.
    Json run = b.request("{\"cmd\":\"run\",\"n\":25,\"session\":" +
                         std::to_string(sid) + ",\"id\":1}");
    ASSERT_TRUE(replyOk(run));
    EXPECT_EQ(run.find("cycles_run")->asU64(), 25u);

    fx.tcp.stop();
}

TEST(RdpNet, ReadTimeoutEmitsTypedEventThenHangsUp)
{
    rdp::NetOptions net;
    net.readTimeoutMs = 60;
    ServerFixture fx(net);
    ASSERT_TRUE(fx.started);

    LoopbackClient client(fx.tcp.port());
    ASSERT_TRUE(client.connected());

    // Send nothing: the server must not wait forever. It emits a
    // typed `timeout` error event, then closes the connection.
    std::string line;
    ASSERT_TRUE(client.recvLine(line));
    auto msg = Json::parse(line);
    ASSERT_TRUE(msg) << line;
    EXPECT_EQ(msg->find("type")->asString(), "error");
    EXPECT_EQ(msg->find("error")->asString(), "timeout");
    EXPECT_FALSE(client.recvLine(line)) << line;

    fx.tcp.stop();
}

TEST(RdpNet, OversizedLineEmitsBadRequestThenHangsUp)
{
    rdp::NetOptions net;
    net.maxLineBytes = 128;
    ServerFixture fx(net);
    ASSERT_TRUE(fx.started);

    LoopbackClient client(fx.tcp.port());
    ASSERT_TRUE(client.connected());

    client.send("{\"cmd\":\"hello\",\"pad\":\"" +
                std::string(1024, 'x') + "\"}");
    std::string line;
    ASSERT_TRUE(client.recvLine(line));
    auto msg = Json::parse(line);
    ASSERT_TRUE(msg) << line;
    EXPECT_EQ(msg->find("type")->asString(), "error");
    EXPECT_EQ(msg->find("error")->asString(), "bad-request");
    EXPECT_FALSE(client.recvLine(line)) << line;

    fx.tcp.stop();
}

TEST(RdpNet, ConnectionCapRefusesWithBusy)
{
    rdp::NetOptions net;
    net.maxConnections = 1;
    ServerFixture fx(net);
    ASSERT_TRUE(fx.started);

    LoopbackClient first(fx.tcp.port());
    ASSERT_TRUE(first.connected());
    ASSERT_TRUE(
        replyOk(first.request("{\"cmd\":\"hello\",\"id\":1}")));

    LoopbackClient second(fx.tcp.port());
    ASSERT_TRUE(second.connected());
    std::string line;
    ASSERT_TRUE(second.recvLine(line));
    auto msg = Json::parse(line);
    ASSERT_TRUE(msg) << line;
    EXPECT_EQ(msg->find("error")->asString(), "busy");
    EXPECT_FALSE(second.recvLine(line));

    fx.tcp.stop();
}

TEST(RdpNet, ShutdownCommandStopsTheListener)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    uint16_t port = fx.tcp.port();

    LoopbackClient client(port);
    ASSERT_TRUE(client.connected());
    Json reply = client.request("{\"cmd\":\"shutdown\",\"id\":1}");
    EXPECT_TRUE(replyOk(reply));

    // The hook requested stop; wait() must return promptly.
    fx.tcp.wait();
    EXPECT_EQ(fx.tcp.connectionCount(), 0u);

    // A fresh connect must fail (or be closed without service).
    LoopbackClient late(port);
    if (late.connected()) {
        std::string line;
        EXPECT_FALSE(late.recvLine(line)) << line;
    }
}
