/**
 * @file
 * TCP transport tests, over real loopback sockets: a full client
 * session (hello v2 / open / run / close / quit), the per-connection
 * read timeout and max-line hardening (typed error event, then
 * hangup), the connection cap, and `shutdown` stopping the whole
 * listener so later connects are refused.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/bits.hh"
#include "rdp/net.hh"
#include "rdp/server.hh"

using namespace zoomie;
using rdp::Json;

namespace {

/** Minimal blocking JSONL client over a loopback socket. */
class LoopbackClient
{
  public:
    explicit LoopbackClient(uint16_t port)
    {
        _fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_fd < 0)
            return;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(_fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(_fd);
            _fd = -1;
        }
    }

    ~LoopbackClient()
    {
        if (_fd >= 0)
            ::close(_fd);
    }

    bool connected() const { return _fd >= 0; }

    void send(const std::string &line)
    {
        std::string framed = line + "\n";
        ASSERT_GE(_fd, 0);
        size_t off = 0;
        while (off < framed.size()) {
            ssize_t n = ::send(_fd, framed.data() + off,
                               framed.size() - off, 0);
            ASSERT_GT(n, 0);
            off += size_t(n);
        }
    }

    /** Read one line; false on EOF. */
    bool recvLine(std::string &line)
    {
        for (;;) {
            size_t pos = _buffer.find('\n');
            if (pos != std::string::npos) {
                line = _buffer.substr(0, pos);
                _buffer.erase(0, pos + 1);
                return true;
            }
            char chunk[4096];
            ssize_t n = ::recv(_fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return false;
            _buffer.append(chunk, size_t(n));
        }
    }

    /** Send a request, return its parsed reply (skipping events). */
    Json request(const std::string &line)
    {
        send(line);
        std::string reply_line;
        while (recvLine(reply_line)) {
            auto msg = Json::parse(reply_line);
            EXPECT_TRUE(msg) << reply_line;
            if (!msg)
                return Json();
            const Json *type = msg->find("type");
            if (type && type->asString() == "reply")
                return *msg;
        }
        ADD_FAILURE() << "connection closed before reply to: "
                      << line;
        return Json();
    }

  private:
    int _fd = -1;
    std::string _buffer;
};

struct ServerFixture
{
    explicit ServerFixture(rdp::NetOptions net = {},
                           rdp::ServerOptions opts = {})
        : server(opts), tcp(server, net)
    {
        server.setShutdownHook([this] { tcp.requestStop(); });
        std::string error;
        started = tcp.start(&error);
        EXPECT_TRUE(started) << error;
    }

    rdp::Server server;
    rdp::TcpServer tcp;
    bool started = false;
};

bool
replyOk(const Json &reply)
{
    const Json *ok = reply.find("ok");
    return ok && ok->asBool();
}

} // namespace

TEST(RdpNet, LoopbackClientRunsFullSession)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    ASSERT_NE(fx.tcp.port(), 0) << "ephemeral port not resolved";

    LoopbackClient client(fx.tcp.port());
    ASSERT_TRUE(client.connected());

    Json hello = client.request(
        "{\"cmd\":\"hello\",\"version\":2,\"id\":1}");
    ASSERT_TRUE(replyOk(hello));
    EXPECT_EQ(hello.find("version")->asU64(),
              rdp::kProtocolVersion);

    Json open = client.request(
        "{\"cmd\":\"open\",\"design\":\"counter\",\"id\":2}");
    ASSERT_TRUE(replyOk(open));
    uint64_t sid = open.find("session")->asU64();
    EXPECT_GT(sid, 0u);

    // The run goes through the scheduler; the reply carries the
    // scheduling metrics of the redesigned wire API.
    Json run = client.request(
        "{\"cmd\":\"run\",\"n\":500,\"id\":3}");
    ASSERT_TRUE(replyOk(run));
    EXPECT_EQ(run.find("cycles_run")->asU64(), 500u);
    EXPECT_EQ(run.find("cycle")->asU64(), 500u);
    ASSERT_TRUE(run.find("queue_wait_us"));

    Json print = client.request(
        "{\"cmd\":\"print\",\"name\":\"mut/count\",\"id\":4}");
    ASSERT_TRUE(replyOk(print));

    Json close = client.request("{\"cmd\":\"close\",\"id\":5}");
    ASSERT_TRUE(replyOk(close));
    EXPECT_EQ(fx.server.sessions().count(), 0u);

    Json quit = client.request("{\"cmd\":\"quit\",\"id\":6}");
    ASSERT_TRUE(replyOk(quit));

    // quit ends only this connection; the listener stays up.
    std::string extra;
    EXPECT_FALSE(client.recvLine(extra)) << extra;
    LoopbackClient again(fx.tcp.port());
    EXPECT_TRUE(again.connected());
    EXPECT_TRUE(
        replyOk(again.request("{\"cmd\":\"hello\",\"id\":1}")));

    fx.tcp.stop();
}

namespace {

/** Names of every regular file in the working directory — the
 *  "no server-side artifacts" probe for the streaming test. */
std::set<std::string>
workingDirFiles()
{
    std::set<std::string> names;
    for (const auto &entry :
         std::filesystem::directory_iterator("."))
        if (entry.is_regular_file())
            names.insert(entry.path().filename().string());
    return names;
}

/** Send a request and collect (events, reply) until the reply. */
std::pair<std::vector<Json>, Json>
requestCollect(LoopbackClient &client, const std::string &line)
{
    client.send(line);
    std::vector<Json> events;
    std::string raw;
    while (client.recvLine(raw)) {
        auto msg = Json::parse(raw);
        EXPECT_TRUE(msg) << raw;
        if (!msg)
            break;
        const Json *type = msg->find("type");
        if (type && type->asString() == "reply")
            return {std::move(events), *msg};
        events.push_back(*msg);
    }
    ADD_FAILURE() << "connection closed before reply to: " << line;
    return {std::move(events), Json()};
}

} // namespace

TEST(RdpNet, UploadedVerilogDebugsEndToEnd)
{
    // The PR's acceptance run: a counter-with-enable written in
    // Verilog round-trips end-to-end with zero C++ Builder calls —
    // chunked `open_source` upload over a real loopback socket,
    // through the lint gate, into a scheduled session; then
    // poke/break/run/print/regs/trace against the compiled design.
    ServerFixture fx;
    ASSERT_TRUE(fx.started);

    LoopbackClient client(fx.tcp.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(replyOk(client.request(
        "{\"cmd\":\"hello\",\"version\":2,\"id\":1}")));

    const std::string rtl =
        "module counter(input clk, input en, output [15:0] q);\n"
        "  reg [15:0] count;\n"
        "  always @(posedge clk) if (en) count <= count + 1;\n"
        "  assign q = count;\n"
        "endmodule\n";

    // Upload in two chunks: the reassembly must be byte-exact or
    // the compile below fails.
    size_t cut = rtl.size() / 2;
    Json first = Json::object();
    first.set("cmd", "open_source");
    first.set("chunk", rtl.substr(0, cut));
    first.set("seq", uint64_t(0));
    first.set("id", 2);
    Json ack = client.request(first.encode());
    ASSERT_TRUE(replyOk(ack)) << ack.encode();
    EXPECT_EQ(ack.find("received")->asU64(), cut);
    EXPECT_EQ(ack.find("next_seq")->asU64(), 1u);

    Json second = Json::object();
    second.set("cmd", "open_source");
    second.set("chunk", rtl.substr(cut));
    second.set("seq", uint64_t(1));
    second.set("last", true);
    second.set("id", 3);
    Json open = client.request(second.encode());
    ASSERT_TRUE(replyOk(open)) << open.encode();
    EXPECT_EQ(open.find("design")->asString(), "source");
    EXPECT_EQ(open.find("top")->asString(), "counter");
    EXPECT_EQ(open.find("regs")->asU64(), 1u);
    uint64_t sid = open.find("session")->asU64();
    EXPECT_GT(sid, 0u);

    // The counter only advances while its input is driven high.
    ASSERT_TRUE(replyOk(client.request(
        "{\"cmd\":\"poke\",\"name\":\"en\",\"value\":1,"
        "\"id\":4}")));
    ASSERT_TRUE(replyOk(client.request(
        "{\"cmd\":\"break\",\"slot\":0,\"value\":25,"
        "\"id\":5}")));

    auto [events, run] = requestCollect(
        client, "{\"cmd\":\"run\",\"n\":200,\"id\":6}");
    ASSERT_TRUE(replyOk(run)) << run.encode();
    EXPECT_TRUE(run.find("paused")->asBool());
    EXPECT_EQ(run.find("cycle")->asU64(), 25u);
    bool stopped = false;
    for (const Json &event : events)
        if (event.find("type")->asString() == "dbg_stop")
            stopped = true;
    EXPECT_TRUE(stopped) << "no dbg_stop event for the breakpoint";

    Json print = client.request(
        "{\"cmd\":\"print\",\"name\":\"mut/count\",\"id\":7}");
    ASSERT_TRUE(replyOk(print));
    EXPECT_EQ(print.find("value")->asU64(), 25u);

    Json regs = client.request(
        "{\"cmd\":\"regs\",\"prefix\":\"mut/\",\"id\":8}");
    ASSERT_TRUE(replyOk(regs));
    const Json *values = regs.find("regs");
    ASSERT_TRUE(values && values->isObject());
    ASSERT_TRUE(values->find("mut/count"));
    EXPECT_EQ(values->find("mut/count")->asU64(), 25u);

    auto [tevents, trace] = requestCollect(
        client, "{\"cmd\":\"trace\",\"n\":4,\"id\":9}");
    ASSERT_TRUE(replyOk(trace)) << trace.encode();
    std::string document;
    for (const Json &event : tevents)
        if (event.find("type")->asString() == "trace_chunk")
            document += event.find("data")->asString();
    EXPECT_NE(document.find("mut.count"), std::string::npos);

    ASSERT_TRUE(replyOk(client.request(
        "{\"cmd\":\"close\",\"id\":10}")));
    EXPECT_EQ(fx.server.sessions().count(), 0u);

    fx.tcp.stop();
}

TEST(RdpNet, StreamedTraceReconstructsWithoutServerSideFiles)
{
    // The PR's acceptance run: a v2 client on a real loopback
    // socket streams a trace, reassembles the chunks into a VCD,
    // verifies the FNV-1a checksum from trace_done — and the server
    // machine gains no file at any point.
    rdp::ServerOptions opts;
    opts.traceChunkBytes = 48; // several chunks for a small trace
    ServerFixture fx({}, opts);
    ASSERT_TRUE(fx.started);

    std::set<std::string> files_before = workingDirFiles();

    LoopbackClient client(fx.tcp.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(replyOk(client.request(
        "{\"cmd\":\"hello\",\"version\":2,\"id\":1}")));
    ASSERT_TRUE(replyOk(client.request(
        "{\"cmd\":\"open\",\"design\":\"counter\",\"id\":2}")));
    ASSERT_TRUE(
        replyOk(client.request("{\"cmd\":\"snapshot\",\"id\":3}")));

    auto [events, reply] = requestCollect(
        client, "{\"cmd\":\"trace\",\"n\":16,\"id\":4}");
    ASSERT_TRUE(replyOk(reply)) << reply.encode();
    EXPECT_TRUE(reply.find("streamed")->asBool());
    EXPECT_FALSE(reply.find("file"));

    // Reassemble strictly by the wire ordering and verify.
    std::string document;
    uint64_t expect_seq = 0;
    std::string checksum;
    uint64_t done_bytes = 0;
    for (const Json &event : events) {
        const std::string type = event.find("type")->asString();
        if (type == "trace_chunk") {
            EXPECT_EQ(event.find("seq")->asU64(), expect_seq++);
            EXPECT_EQ(event.find("offset")->asU64(),
                      document.size());
            document += event.find("data")->asString();
        } else if (type == "trace_done") {
            checksum = event.find("checksum")->asString();
            done_bytes = event.find("bytes")->asU64();
        }
    }
    ASSERT_GT(expect_seq, 1u) << "wanted a multi-chunk stream";
    ASSERT_FALSE(checksum.empty()) << "no trace_done seen";
    EXPECT_EQ(done_bytes, document.size());
    EXPECT_EQ(std::strtoull(checksum.c_str(), nullptr, 16),
              fnv1a64(document.data(), document.size()));
    EXPECT_NE(document.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(document.find("mut.count"), std::string::npos);

    // Determinism: after restoring the snapshot an identical
    // capture streams the identical bytes.
    ASSERT_TRUE(
        replyOk(client.request("{\"cmd\":\"restore\",\"id\":5}")));
    auto [events2, reply2] = requestCollect(
        client, "{\"cmd\":\"trace\",\"n\":16,\"id\":6}");
    ASSERT_TRUE(replyOk(reply2));
    std::string document2;
    for (const Json &event : events2)
        if (event.find("type")->asString() == "trace_chunk")
            document2 += event.find("data")->asString();
    EXPECT_EQ(document, document2);

    // The whole exchange left nothing on the server's filesystem.
    EXPECT_EQ(workingDirFiles(), files_before);

    fx.tcp.stop();
}

TEST(RdpNet, TwoClientsShareTheRegistry)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);

    LoopbackClient a(fx.tcp.port());
    LoopbackClient b(fx.tcp.port());
    ASSERT_TRUE(a.connected());
    ASSERT_TRUE(b.connected());

    Json open = a.request(
        "{\"cmd\":\"open\",\"design\":\"counter\",\"id\":1}");
    ASSERT_TRUE(replyOk(open));
    uint64_t sid = open.find("session")->asU64();

    // Client B can address the session A opened.
    Json run = b.request("{\"cmd\":\"run\",\"n\":25,\"session\":" +
                         std::to_string(sid) + ",\"id\":1}");
    ASSERT_TRUE(replyOk(run));
    EXPECT_EQ(run.find("cycles_run")->asU64(), 25u);

    fx.tcp.stop();
}

TEST(RdpNet, ReadTimeoutEmitsTypedEventThenHangsUp)
{
    rdp::NetOptions net;
    net.readTimeoutMs = 60;
    ServerFixture fx(net);
    ASSERT_TRUE(fx.started);

    LoopbackClient client(fx.tcp.port());
    ASSERT_TRUE(client.connected());

    // Send nothing: the server must not wait forever. It emits a
    // typed `timeout` error event, then closes the connection.
    std::string line;
    ASSERT_TRUE(client.recvLine(line));
    auto msg = Json::parse(line);
    ASSERT_TRUE(msg) << line;
    EXPECT_EQ(msg->find("type")->asString(), "error");
    EXPECT_EQ(msg->find("error")->asString(), "timeout");
    EXPECT_FALSE(client.recvLine(line)) << line;

    fx.tcp.stop();
}

TEST(RdpNet, OversizedLineEmitsBadRequestThenHangsUp)
{
    rdp::NetOptions net;
    net.maxLineBytes = 128;
    ServerFixture fx(net);
    ASSERT_TRUE(fx.started);

    LoopbackClient client(fx.tcp.port());
    ASSERT_TRUE(client.connected());

    client.send("{\"cmd\":\"hello\",\"pad\":\"" +
                std::string(1024, 'x') + "\"}");
    std::string line;
    ASSERT_TRUE(client.recvLine(line));
    auto msg = Json::parse(line);
    ASSERT_TRUE(msg) << line;
    EXPECT_EQ(msg->find("type")->asString(), "error");
    EXPECT_EQ(msg->find("error")->asString(), "bad-request");
    EXPECT_FALSE(client.recvLine(line)) << line;

    fx.tcp.stop();
}

TEST(RdpNet, ConnectionCapRefusesWithBusy)
{
    rdp::NetOptions net;
    net.maxConnections = 1;
    ServerFixture fx(net);
    ASSERT_TRUE(fx.started);

    LoopbackClient first(fx.tcp.port());
    ASSERT_TRUE(first.connected());
    ASSERT_TRUE(
        replyOk(first.request("{\"cmd\":\"hello\",\"id\":1}")));

    LoopbackClient second(fx.tcp.port());
    ASSERT_TRUE(second.connected());
    std::string line;
    ASSERT_TRUE(second.recvLine(line));
    auto msg = Json::parse(line);
    ASSERT_TRUE(msg) << line;
    EXPECT_EQ(msg->find("error")->asString(), "busy");
    EXPECT_FALSE(second.recvLine(line));

    fx.tcp.stop();
}

TEST(RdpNet, ShutdownCommandStopsTheListener)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    uint16_t port = fx.tcp.port();

    LoopbackClient client(port);
    ASSERT_TRUE(client.connected());
    Json reply = client.request("{\"cmd\":\"shutdown\",\"id\":1}");
    EXPECT_TRUE(replyOk(reply));

    // The hook requested stop; wait() must return promptly.
    fx.tcp.wait();
    EXPECT_EQ(fx.tcp.connectionCount(), 0u);

    // A fresh connect must fail (or be closed without service).
    LoopbackClient late(port);
    if (late.connected()) {
        std::string line;
        EXPECT_FALSE(late.recvLine(line)) << line;
    }
}
