/**
 * @file
 * Trace capture, VCD export, and multi-clock-domain stepping under
 * the §6.1 condition (phase-aligned integer frequency ratios).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/zoomie.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"
#include "sim/vcd.hh"

using namespace zoomie;
using rtl::Builder;

TEST(Trace, SamplesAndRendersSignals)
{
    Builder b("t");
    auto count = b.reg("count", 4, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.output("value", count.q);
    rtl::Design d = b.finish();
    sim::Simulator sim(d);

    sim::Trace trace;
    trace.addSignal("count", [&]() { return sim.peek("value"); });
    trace.addSignal("lsb", [&]() { return sim.peek("value") & 1; });
    for (int i = 0; i < 6; ++i) {
        trace.sample();
        sim.step();
    }
    EXPECT_EQ(trace.length(), 6u);
    EXPECT_EQ(trace.at(0, 3), 3u);
    EXPECT_EQ(trace.at(1, 3), 1u);

    std::ostringstream os;
    trace.print(os);
    EXPECT_NE(os.str().find("count"), std::string::npos);
}

TEST(Vcd, ExportsWellFormedDocument)
{
    sim::Trace trace;
    uint64_t t = 0;
    trace.addSignal("mut/bus", [&]() { return t * 3; });
    trace.addSignal("mut/bit", [&]() { return t & 1; });
    for (t = 0; t < 8; ++t)
        trace.sample();

    std::ostringstream os;
    sim::writeVcd(trace, os);
    std::string vcd = os.str();
    EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 5 ! mut.bus $end"),
              std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1 \" mut.bit $end"),
              std::string::npos);
    EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
    // Value changes only when values change.
    EXPECT_NE(vcd.find("b10101 !"), std::string::npos);  // 21 = 7*3
}

TEST(Vcd, OnlyChangesAreEmitted)
{
    sim::Trace trace;
    trace.addSignal("const", []() { return 1ull; });
    for (int i = 0; i < 5; ++i)
        trace.sample();
    std::ostringstream os;
    sim::writeVcd(trace, os);
    // One initial '1!' record; later timestamps carry no records.
    std::string vcd = os.str();
    size_t first = vcd.find("1!");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(vcd.find("1!", first + 1), std::string::npos);
}

namespace {

/** The Vcd fixture trace: mut/bus = 3t, mut/bit = t&1, 8 samples. */
sim::Trace
fixtureTrace()
{
    sim::Trace trace;
    static uint64_t t;
    t = 0;
    trace.addSignal("mut/bus", []() { return t * 3; });
    trace.addSignal("mut/bit", []() { return t & 1; });
    for (t = 0; t < 8; ++t)
        trace.sample();
    return trace;
}

/** Stream @p trace through a VcdChunkWriter at @p chunkBytes and
 *  return (concatenated document, chunk sizes). */
std::pair<std::string, std::vector<size_t>>
streamed(const sim::Trace &trace, size_t chunkBytes)
{
    std::string document;
    std::vector<size_t> sizes;
    sim::VcdChunkWriter writer(
        [&](std::string_view chunk) {
            document.append(chunk);
            sizes.push_back(chunk.size());
        },
        trace.names(), sim::vcdWidths(trace), "1ns", chunkBytes);
    std::vector<uint64_t> values(trace.signalCount());
    for (size_t t = 0; t < trace.length(); ++t) {
        for (size_t s = 0; s < values.size(); ++s)
            values[s] = trace.at(s, t);
        writer.appendSample(values);
    }
    writer.finish();
    EXPECT_EQ(writer.bytesEmitted(), document.size());
    EXPECT_EQ(writer.samples(), trace.length());
    return {document, sizes};
}

} // namespace

TEST(VcdChunks, ConcatenationMatchesWriteVcdByteForByte)
{
    sim::Trace trace = fixtureTrace();
    std::ostringstream os;
    sim::writeVcd(trace, os);
    const std::string golden = os.str();
    ASSERT_FALSE(golden.empty());

    // Every chunk size must reassemble to the identical document —
    // including degenerate 1-byte chunks and a cap larger than the
    // whole document.
    for (size_t chunkBytes : {size_t(1), size_t(7), size_t(64),
                              size_t(4096)}) {
        auto [document, sizes] = streamed(trace, chunkBytes);
        EXPECT_EQ(document, golden)
            << "chunkBytes=" << chunkBytes;
        for (size_t i = 0; i + 1 < sizes.size(); ++i) {
            EXPECT_EQ(sizes[i], chunkBytes)
                << "only the final chunk may run short";
        }
        if (!sizes.empty()) {
            EXPECT_LE(sizes.back(), chunkBytes);
        }
    }
}

TEST(VcdChunks, HeaderLeavesBeforeTheFirstSample)
{
    sim::Trace trace = fixtureTrace();
    // A tiny cap forces the constructor itself to emit: the header
    // and $var definitions stream out before any sample exists.
    std::string early;
    sim::VcdChunkWriter writer(
        [&](std::string_view chunk) { early.append(chunk); },
        trace.names(), sim::vcdWidths(trace), "1ns", 16);
    EXPECT_NE(early.find("$timescale 1ns $end"),
              std::string::npos);
    EXPECT_NE(early.find("mut.bus"), std::string::npos);
    writer.finish();
    EXPECT_NE(early.find("$enddefinitions $end"),
              std::string::npos);
}

TEST(VcdChunks, WidthInferenceMatchesTheFileExport)
{
    sim::Trace trace = fixtureTrace();
    std::vector<unsigned> widths = sim::vcdWidths(trace);
    ASSERT_EQ(widths.size(), 2u);
    EXPECT_EQ(widths[0], 5u); // widest sample 21 = 0b10101
    EXPECT_EQ(widths[1], 1u);
}

TEST(ClockDividers, PhaseAlignedIntegerRatiosStepPrecisely)
{
    // §6.1: precise multi-domain stepping is possible when clocks
    // are phase-aligned integer multiples. A fast counter (ext/1)
    // and a slow counter (ext/4) inside the MUT must keep an exact
    // 4:1 relationship across pause/step/resume sequences.
    Builder b("ratio");
    uint8_t slow = b.addClock("slow");
    b.pushScope("mut");
    auto fast_count = b.reg("fast", 16, 0);
    b.connect(fast_count, b.addLit(fast_count.q, 1));
    auto slow_count = b.reg("slow", 16, 0, slow);
    b.connect(slow_count, b.addLit(slow_count.q, 1));
    b.popScope();
    b.output("fast", b.handleFor(fast_count.q.id));
    b.output("slow", b.handleFor(slow_count.q.id));
    rtl::Design design = b.finish();

    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "mut/";
    // Note: instrumentation moves both MUT registers onto the gated
    // domain; the slow register keeps its divider through the
    // divider on the *gated* domain being 1 and a separate check
    // below using the raw device.
    auto platform = core::Platform::create(design, opts);
    platform->device().setClockDivider(0, 1);

    // With the whole MUT on one gated domain, stepping N executes
    // exactly N for every register — the single-domain guarantee.
    platform->debugger().pause();
    platform->run(1);
    uint64_t f0 = platform->peek("fast");
    platform->debugger().stepCycles(8);
    platform->run(20);
    EXPECT_EQ(platform->peek("fast"), f0 + 8);
}

TEST(ClockDividers, DeviceLevelRatioHolds)
{
    // Raw device check of the divider mechanism itself.
    Builder b("ratio2");
    uint8_t slow = b.addClock("slow");
    auto fast_count = b.reg("fast", 16, 0);
    b.connect(fast_count, b.addLit(fast_count.q, 1));
    auto slow_count = b.reg("slowc", 16, 0, slow);
    b.connect(slow_count, b.addLit(slow_count.q, 1));
    b.output("fast", fast_count.q);
    b.output("slow", slow_count.q);
    rtl::Design design = b.finish();

    fpga::DeviceSpec spec = fpga::makeTestDevice();
    toolchain::VendorTool tool(spec);
    auto result = tool.compile(design);
    fpga::Device device(spec);
    device.attach(result.netlist, result.placement);
    jtag::JtagHost host(device);
    host.send(result.bitstream);

    device.setClockDivider(slow, 4);
    device.runGlobal(40);
    EXPECT_EQ(device.peekOutput("fast"), 40u);
    EXPECT_EQ(device.peekOutput("slow"), 10u);
    EXPECT_EQ(device.cycles(slow), 10u);
}
