// Missing semicolon after the register declaration.
module broken(input clk, output [7:0] q);
  reg [7:0] r
  always @(posedge clk)
    r <= r + 1;
  assign q = r;
endmodule
