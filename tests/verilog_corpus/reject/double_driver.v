// Two continuous assigns drive the same wire.
module dd(input [3:0] a, input [3:0] b, output [3:0] y);
  wire [3:0] w;
  assign w = a;
  assign w = b;
  assign y = w;
endmodule
