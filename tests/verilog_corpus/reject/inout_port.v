// Bidirectional ports are outside the subset.
module pad(input clk, inout [7:0] bus, output q);
  assign q = bus[0];
endmodule
