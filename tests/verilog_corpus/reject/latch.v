// Incomplete if in a combinational block infers a latch.
module latchy(input sel, input [3:0] d, output [3:0] q);
  reg [3:0] held;
  always @* begin
    if (sel)
      held = d;
  end
  assign q = held;
endmodule
