// Four-state literals: two-state semantics reject x/z bits.
module fourstate(input clk, output [3:0] q);
  reg [3:0] r;
  always @(posedge clk)
    r <= 4'b10xz;
  assign q = r;
endmodule
