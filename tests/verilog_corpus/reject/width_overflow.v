// Vectors wider than 64 bits exceed the word-level IR.
module huge(input clk, output wide_out);
  reg [64:0] wide;
  always @(posedge clk)
    wide <= wide + 1;
  assign wide_out = wide[0];
endmodule
