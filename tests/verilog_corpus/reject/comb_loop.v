// Combinational cycle through two continuous assigns.
module loop(input [3:0] seed, output [3:0] out);
  wire [3:0] a;
  wire [3:0] b;
  assign a = b ^ seed;
  assign b = a + 1;
  assign out = a;
endmodule
