// Two candidate tops and no explicit selection.
module one(input clk, output q);
  reg r;
  always @(posedge clk) r <= !r;
  assign q = r;
endmodule

module two(input clk, output q);
  reg r;
  always @(posedge clk) r <= r;
  assign q = r;
endmodule
