// Self-instantiation: hierarchy depth explodes.
module rec(input clk, output q);
  wire inner;
  rec r (.clk(clk), .q(inner));
  assign q = inner;
endmodule
