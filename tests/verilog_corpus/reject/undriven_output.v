// An output wire that nothing ever drives.
module silent(input clk, output [7:0] q);
  reg [7:0] r;
  always @(posedge clk)
    r <= r + 1;
endmodule
