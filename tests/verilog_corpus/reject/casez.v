// casez is outside the subset (wildcard matching).
module cz(input clk, input [3:0] op, output [1:0] q);
  reg [1:0] r;
  always @(posedge clk)
    casez (op)
      4'b1zzz: r <= 3;
      default: r <= 0;
    endcase
  assign q = r;
endmodule
