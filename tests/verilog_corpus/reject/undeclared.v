// Reads an identifier that is never declared.
module oops(input clk, output [7:0] q);
  reg [7:0] r;
  always @(posedge clk)
    r <= r + mystery;
  assign q = r;
endmodule
