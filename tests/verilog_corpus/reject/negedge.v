// Negative-edge clocking is outside the subset.
module neg(input clk, output [3:0] q);
  reg [3:0] r;
  always @(negedge clk)
    r <= r + 1;
  assign q = r;
endmodule
