// Blocking assignment inside a clocked block.
module mix(input clk, input [3:0] d, output [3:0] q);
  reg [3:0] r;
  always @(posedge clk)
    r = d;
  assign q = r;
endmodule
