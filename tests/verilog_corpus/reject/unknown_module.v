// Instantiates a module that is never defined.
module top(input clk, output [7:0] q);
  ghost g (.clk(clk), .q(q));
endmodule
