// Shifts by constants and by dynamic amounts.
module shifter(input clk, input [15:0] v, input [3:0] amt,
               output [15:0] out);
  reg [15:0] r;
  always @(posedge clk)
    r <= (v << amt) | (v >> (16 - {12'b0, amt}));
  assign out = r << 1;
endmodule
