// Inferred memory: synchronous write, asynchronous read.
module scratch(input clk, input we, input [3:0] waddr,
               input [7:0] wdata, input [3:0] raddr,
               output [7:0] rdata);
  reg [7:0] store [0:15];
  reg [7:0] out;
  always @(posedge clk) begin
    if (we)
      store[waddr] <= wdata;
    out <= store[raddr];
  end
  assign rdata = out;
endmodule
