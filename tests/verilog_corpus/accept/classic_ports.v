// Classic (non-ANSI) port declarations, output reg merge.
module legacy(clk, d, q);
  input clk;
  input [3:0] d;
  output [3:0] q;
  reg [3:0] q;
  always @(posedge clk)
    q <= d;
endmodule
