// Two-level hierarchy, positional and named connections.
module stage(input clk, input [7:0] d, output [7:0] q);
  reg [7:0] r;
  always @(posedge clk)
    r <= d;
  assign q = r;
endmodule

module pipe(input clk, input [7:0] din, output [7:0] dout);
  wire [7:0] mid;
  stage s0 (clk, din, mid);
  stage s1 (.clk(clk), .d(mid + 1), .q(dout));
endmodule
