// Two-process FSM: registered state, combinational next-state.
module fsm(input clk, input go, input stop, output [1:0] state_out,
           output busy);
  localparam IDLE = 0, RUN = 1, DONE = 2;
  reg [1:0] state;
  reg [1:0] next;
  always @* begin
    next = state;
    case (state)
      IDLE: if (go) next = RUN;
      RUN: begin
        if (stop)
          next = DONE;
      end
      DONE: next = IDLE;
      default: next = IDLE;
    endcase
  end
  always @(posedge clk)
    state <= next;
  assign state_out = state;
  assign busy = state == RUN;
endmodule
