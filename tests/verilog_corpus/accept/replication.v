// Replication inside concatenation (sign/fill patterns).
module fill(input clk, input [3:0] nib, output [15:0] wide);
  reg [15:0] r;
  always @(posedge clk)
    r <= {4{nib}};
  assign wide = {{8{nib[3]}}, r[7:0]};
endmodule
