// Parameterized FIFO instantiated with named connections.
module fifo #(parameter W = 8, parameter DEPTH_LOG2 = 2) (
    input clk, input push, input pop, input [W-1:0] din,
    output [W-1:0] dout, output empty
);
  reg [W-1:0] store [0:(1 << DEPTH_LOG2) - 1];
  reg [DEPTH_LOG2:0] rd;
  reg [DEPTH_LOG2:0] wr;
  always @(posedge clk) begin
    if (push) begin
      store[wr[DEPTH_LOG2-1:0]] <= din;
      wr <= wr + 1;
    end
    if (pop)
      rd <= rd + 1;
  end
  assign dout = store[rd[DEPTH_LOG2-1:0]];
  assign empty = rd == wr;
endmodule

module top(input clk, input push, input pop, input [3:0] din,
           output [3:0] dout, output empty);
  fifo #(.W(4), .DEPTH_LOG2(3)) q (
      .clk(clk), .push(push), .pop(pop), .din(din),
      .dout(dout), .empty(empty));
endmodule
