// Case with expression labels and a default in the middle.
module decode(input clk, input [2:0] op, output [7:0] mask_out);
  reg [7:0] mask;
  always @(posedge clk)
    case (op)
      0: mask <= 8'h01;
      1, 2: mask <= 8'h06;
      default: mask <= 8'h00;
      7: mask <= 8'h80;
    endcase
  assign mask_out = mask;
endmodule
