// Concatenation, part selects, bit selects.
module swizzle(input clk, input [15:0] word, output [15:0] out);
  reg [15:0] held;
  wire [7:0] hi = word[15:8];
  wire [7:0] lo = word[7:0];
  always @(posedge clk)
    held <= {lo, hi};
  assign out = {held[7:0], held[15], held[14:8]};
endmodule
