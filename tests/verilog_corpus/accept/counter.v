// Free-running counter: the smallest sequential design.
module counter(input clk, output [15:0] value);
  reg [15:0] count;
  always @(posedge clk)
    count <= count + 1;
  assign value = count;
endmodule
