// Full 64-bit datapath (the IR's width ceiling).
module wide(input clk, input [63:0] a, input [63:0] b,
            output [63:0] sum, output lt);
  reg [63:0] acc;
  always @(posedge clk)
    acc <= a + b;
  assign sum = acc;
  assign lt = a < b;
endmodule
