// Counter with an enable: the open_source e2e workload.
module counter(input clk, input en, output [15:0] value);
  reg [15:0] count;
  always @(posedge clk) begin
    if (en)
      count <= count + 1;
  end
  assign value = count;
endmodule
