// Parameters and localparams in constant expressions.
module accum #(parameter WIDTH = 8, parameter STEP = 3) (
    input clk,
    output [WIDTH-1:0] total
);
  localparam INCR = STEP * 2;
  reg [WIDTH-1:0] acc;
  always @(posedge clk)
    acc <= acc + INCR;
  assign total = acc;
endmodule
