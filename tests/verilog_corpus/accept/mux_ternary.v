// Ternary selects and boolean conditions.
module pick(input clk, input sel, input [7:0] a, input [7:0] b,
            output [7:0] y);
  reg [7:0] held;
  always @(posedge clk)
    held <= sel ? a : b;
  assign y = (a == b) ? held : (sel ? a : b);
endmodule
