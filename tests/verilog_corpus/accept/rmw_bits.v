// Read-modify-write bit and part-select assignment targets.
module bitset(input clk, input [2:0] idx, input bit_in,
              output [7:0] out);
  reg [7:0] r;
  always @(posedge clk) begin
    r[idx] <= bit_in;
    r[7:6] <= 2'b10;
  end
  assign out = r;
endmodule
