// Unary reductions and logical operators.
module flags(input clk, input [7:0] bus, output [3:0] out);
  reg all_set, any_set, parity, none;
  always @(posedge clk) begin
    all_set <= &bus;
    any_set <= |bus;
    parity  <= ^bus;
    none    <= !(|bus) && (bus == 0);
  end
  assign out = {all_set, any_set, parity, none};
endmodule
