// Comma-separated declarations and wire initializers.
module multi(input clk, input [7:0] a, input [7:0] b,
             output [7:0] x, output [7:0] y);
  wire [7:0] s = a + b, d = a - b;
  reg [7:0] p, q;
  always @(posedge clk) begin
    p <= s;
    q <= d;
  end
  assign x = p, y = q;
endmodule
