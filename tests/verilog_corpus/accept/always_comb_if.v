// always @* with complete if/else chains (no latch).
module prio(input clk, input [3:0] req, output [1:0] grant_out);
  reg [1:0] grant;
  reg [1:0] held;
  always @* begin
    if (req[0])
      grant = 0;
    else if (req[1])
      grant = 1;
    else if (req[2])
      grant = 2;
    else
      grant = 3;
  end
  always @(posedge clk)
    held <= grant;
  assign grant_out = held;
endmodule
