/**
 * @file
 * SnapshotStore tests: content-addressed capture (dedup, ring
 * eviction, pinned overflow), exact restore by id, time travel with
 * deterministic poke replay, poke-log truncation after a rewind,
 * the scheduler's auto-capture cadence — and, on the serv_soc
 * design, byte-identity of delta restore against the full readback
 * image plus the steady-state compression bound (deltas at least
 * 5x smaller than a full image).
 */

#include <gtest/gtest.h>

#include "core/snapshot.hh"
#include "core/zoomie.hh"
#include "designs/serv_soc.hh"
#include "fpga/device.hh"
#include "rtl/builder.hh"

using namespace zoomie;
using core::SnapshotInfo;
using core::SnapshotStore;
using rtl::Builder;
using rtl::Value;

namespace {

/** Free-running counter inside scope "mut/". */
rtl::Design
mutCounter()
{
    Builder b("app");
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    return b.finish();
}

/** Counter whose increment is an input port — poke-replayable. */
rtl::Design
pokeCounter()
{
    Builder b("app");
    Value add = b.input("add", 8);
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.add(count.q, b.zext(add, 16)));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    return b.finish();
}

std::unique_ptr<core::Platform>
platformFor(rtl::Design design)
{
    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "mut/";
    opts.instrument.watchSignals = {"mut/count"};
    return core::Platform::create(std::move(design), opts);
}

/** Pause the MUT and let the pause latch settle. */
void
pauseSettled(core::Platform &p)
{
    p.debugger().pause();
    p.run(1);
}

/** Advance the paused MUT by exactly @p cycles. */
void
stepMut(core::Platform &p, uint64_t cycles)
{
    p.debugger().stepCycles(cycles);
    p.run(cycles + 4);
}

} // namespace

// ---- capture: content addressing and the ring ------------------------

TEST(SnapshotStore, CaptureDedupsIdenticalContent)
{
    auto p = platformFor(mutCounter());
    SnapshotStore store(*p);
    pauseSettled(*p);

    auto a = store.capture(/*pinned=*/false);
    ASSERT_TRUE(a.has_value());
    auto b = store.capture(/*pinned=*/true);
    ASSERT_TRUE(b.has_value());

    // Same state, same cycle => same id, one ring entry; the pinned
    // re-capture upgrades the existing entry instead of duplicating.
    EXPECT_EQ(a->id, b->id);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_FALSE(a->pinned);
    EXPECT_TRUE(b->pinned);
    ASSERT_TRUE(store.info(a->id).has_value());
    EXPECT_TRUE(store.info(a->id)->pinned);
}

TEST(SnapshotStore, RingEvictsOldestUnpinnedAndKeepsPinned)
{
    auto p = platformFor(mutCounter());
    SnapshotStore store(*p, /*capacity=*/3);
    pauseSettled(*p);

    auto pinned = store.capture(true);
    ASSERT_TRUE(pinned.has_value());

    std::vector<SnapshotInfo> autos;
    for (int i = 0; i < 3; ++i) {
        stepMut(*p, 10);
        auto s = store.capture(false);
        ASSERT_TRUE(s.has_value());
        autos.push_back(*s);
    }

    // Capacity 3: the fourth distinct capture evicted the oldest
    // *unpinned* snapshot; the pinned one survives.
    EXPECT_EQ(store.size(), 3u);
    EXPECT_TRUE(store.info(pinned->id).has_value());
    EXPECT_FALSE(store.info(autos[0].id).has_value());
    EXPECT_TRUE(store.info(autos[1].id).has_value());
    EXPECT_TRUE(store.info(autos[2].id).has_value());

    // list() is oldest first.
    auto list = store.list();
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0].id, pinned->id);
    EXPECT_EQ(list[1].id, autos[1].id);
    EXPECT_EQ(list[2].id, autos[2].id);
}

TEST(SnapshotStore, RingFullOfPinnedSnapshotsRefusesCapture)
{
    auto p = platformFor(mutCounter());
    SnapshotStore store(*p, /*capacity=*/2);
    pauseSettled(*p);

    ASSERT_TRUE(store.capture(true).has_value());
    stepMut(*p, 5);
    ASSERT_TRUE(store.capture(true).has_value());

    stepMut(*p, 5);
    // Overflow: no unpinned victim — both the explicit and the
    // auto path get std::nullopt (the wire maps the former to
    // snapshot-overflow, the latter silently skips).
    EXPECT_FALSE(store.capture(true).has_value());
    EXPECT_FALSE(store.capture(false).has_value());
    EXPECT_EQ(store.size(), 2u);
}

// ---- restore and travel ----------------------------------------------

TEST(SnapshotStore, RestoreByIdRewindsStateAndCycle)
{
    auto p = platformFor(mutCounter());
    SnapshotStore store(*p);
    pauseSettled(*p);
    stepMut(*p, 30);

    auto snap = store.capture(true);
    ASSERT_TRUE(snap.has_value());
    uint64_t count = p->debugger().readRegister("mut/count");
    uint64_t cycle = p->mutCycles();

    stepMut(*p, 100);
    ASSERT_EQ(p->debugger().readRegister("mut/count"), count + 100);

    auto restored = store.restore(snap->id);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->id, snap->id);
    EXPECT_EQ(p->debugger().readRegister("mut/count"), count);
    EXPECT_EQ(p->mutCycles(), cycle);

    // Unknown ids are a clean miss, not a crash.
    EXPECT_FALSE(store.restore(snap->id ^ 1).has_value());
}

TEST(SnapshotStore, TravelReplaysRecordedPokesDeterministically)
{
    auto p = platformFor(pokeCounter());
    SnapshotStore store(*p);
    pauseSettled(*p);
    stepMut(*p, 3);  // genesis above cycle 0 so a miss is reachable
    uint64_t c0 = p->mutCycles();

    ASSERT_TRUE(store.capture(true).has_value());

    // Original timeline: add=1 from +10, add=3 from +20.
    stepMut(*p, 10);
    p->poke("add", 1);
    store.recordPoke("add", 1);
    stepMut(*p, 10);
    p->poke("add", 3);
    store.recordPoke("add", 3);
    stepMut(*p, 5);
    uint64_t count_at_25 = p->debugger().readRegister("mut/count");
    stepMut(*p, 5);
    uint64_t count_at_30 = p->debugger().readRegister("mut/count");
    EXPECT_GT(count_at_30, count_at_25);

    // Travel to +25: restores the only snapshot (the genesis at c0)
    // and re-runs 25 cycles, re-applying both pokes at their
    // original cycles.
    auto result = store.travel(c0 + 25);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->from.cycle, c0);
    EXPECT_EQ(result->cycle, c0 + 25);
    EXPECT_EQ(result->replayed, 25u);
    EXPECT_EQ(p->mutCycles(), c0 + 25);
    EXPECT_EQ(p->debugger().readRegister("mut/count"), count_at_25);

    // A target no snapshot covers is a clean miss.
    EXPECT_FALSE(store.travel(c0 - 1).has_value());
}

TEST(SnapshotStore, RestoreRedrivesCapturedInputPortValues)
{
    // Input ports live outside configuration memory, so restore
    // must re-drive them from the values recorded at capture —
    // otherwise a port poked after the capture leaks its live
    // value into the restored timeline.
    auto p = platformFor(pokeCounter());
    SnapshotStore store(*p);
    pauseSettled(*p);

    p->poke("add", 2);
    uint64_t base = p->debugger().readRegister("mut/count");
    auto snap = store.capture(/*pinned=*/true);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(p->device().peekInput("add"), 2u);

    // Diverge the live port (and some state) after the capture.
    stepMut(*p, 3);
    p->poke("add", 9);
    EXPECT_EQ(p->device().peekInput("add"), 9u);

    ASSERT_TRUE(store.restore(snap->id).has_value());
    EXPECT_EQ(p->device().peekInput("add"), 2u);
    EXPECT_EQ(p->debugger().readRegister("mut/count"), base);

    // The restored timeline advances with the restored port value,
    // not the stale live one.
    stepMut(*p, 4);
    EXPECT_EQ(p->debugger().readRegister("mut/count"), base + 2 * 4);
}

TEST(SnapshotStore, PokeAfterRewindTruncatesRecordedFuture)
{
    auto p = platformFor(pokeCounter());
    SnapshotStore store(*p);
    pauseSettled(*p);
    uint64_t c0 = p->mutCycles();
    ASSERT_TRUE(store.capture(true).has_value());

    stepMut(*p, 10);
    p->poke("add", 1);
    store.recordPoke("add", 1);
    stepMut(*p, 10);
    p->poke("add", 3);
    store.recordPoke("add", 3);
    ASSERT_EQ(store.pokeLogSize(), 2u);

    // Rewind to +5, then poke: both recorded pokes are in the
    // abandoned future and must not replay on the new timeline.
    ASSERT_TRUE(store.travel(c0 + 5).has_value());
    p->poke("add", 7);
    store.recordPoke("add", 7);
    EXPECT_EQ(store.pokeLogSize(), 1u);

    stepMut(*p, 5);
    uint64_t count_new = p->debugger().readRegister("mut/count");
    ASSERT_TRUE(store.travel(c0 + 10).has_value());
    EXPECT_EQ(p->debugger().readRegister("mut/count"), count_new);
}

TEST(SnapshotStore, AutoTickCapturesOnTheInterval)
{
    auto p = platformFor(mutCounter());
    SnapshotStore store(*p);
    pauseSettled(*p);

    store.autoTick(0);  // disabled: no capture
    EXPECT_EQ(store.size(), 0u);

    store.autoTick(10);  // below the interval from cycle 0
    EXPECT_EQ(store.size(), 0u);

    stepMut(*p, 10);
    store.autoTick(10);
    EXPECT_EQ(store.size(), 1u);

    stepMut(*p, 5);
    store.autoTick(10);  // only 5 cycles since the last capture
    EXPECT_EQ(store.size(), 1u);

    stepMut(*p, 5);
    store.autoTick(10);
    EXPECT_EQ(store.size(), 2u);

    auto list = store.list();
    for (const SnapshotInfo &info : list)
        EXPECT_FALSE(info.pinned);
}

// ---- serv_soc: byte identity and compression -------------------------

namespace {

std::unique_ptr<core::Platform>
servSocPlatform()
{
    designs::ServSocConfig config;
    config.cores = 2;
    config.coresPerCluster = 2;
    config.clusterBrams = 1;
    config.l2Brams = 0;
    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "cluster0/";
    opts.instrument.watchSignals = {"cluster0/core0/pc"};
    opts.spec = fpga::makeTestDevice();
    return core::Platform::create(designs::buildServSoc(config),
                                  opts);
}

} // namespace

TEST(SnapshotStore, ServSocDeltaRestoreIsByteIdenticalToFullImage)
{
    auto p = servSocPlatform();
    SnapshotStore store(*p);
    p->run(40);
    pauseSettled(*p);

    auto snap = store.capture(true);
    ASSERT_TRUE(snap.has_value());
    auto image = p->debugger().readbackImage();
    uint64_t cycle = p->mutCycles();

    stepMut(*p, 60);
    auto later = store.capture(true);
    ASSERT_TRUE(later.has_value());
    EXPECT_NE(later->id, snap->id);

    // Delta restore must reproduce the exact full readback image —
    // every word of every frame on every SLR — not just the watched
    // registers.
    ASSERT_TRUE(store.restore(snap->id).has_value());
    auto restored = p->debugger().readbackImage();
    ASSERT_EQ(restored.size(), image.size());
    for (size_t slr = 0; slr < image.size(); ++slr)
        ASSERT_EQ(restored[slr], image[slr]) << "slr " << slr;
    EXPECT_EQ(p->mutCycles(), cycle);
}

TEST(SnapshotStore, ServSocSteadyStateDeltasAreAtLeastFiveTimesSmaller)
{
    auto p = servSocPlatform();
    SnapshotStore store(*p);

    // Base image at the start, then a steady-state snapshot after
    // the SoC has run: only frames holding evolving state (PCs,
    // register files, the checksum ring) should be dirty.
    p->run(5);
    pauseSettled(*p);
    ASSERT_TRUE(store.capture(true).has_value());
    p->debugger().resume();
    p->run(100);
    pauseSettled(*p);

    auto snap = store.capture(true);
    ASSERT_TRUE(snap.has_value());
    EXPECT_GT(snap->bytes, 0u);
    EXPECT_GE(store.fullImageBytes(), 5 * snap->bytes)
        << "delta " << snap->bytes << " bytes ("
        << snap->deltaFrames << " frames) vs full image "
        << store.fullImageBytes() << " bytes";
}
