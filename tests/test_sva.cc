/**
 * @file
 * Assertion Synthesis tests: parser acceptance/rejection per the
 * Table 4 support matrix, property semantics via the reference
 * evaluator on hand-written traces, and differential equivalence of
 * the synthesized monitor circuit against the reference evaluator
 * on randomized traces.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"
#include "sva/compiler.hh"
#include "sva/eval.hh"
#include "sva/parser.hh"

using namespace zoomie;
using sva::compileAssertion;
using sva::parseAssertion;

// ---- parser ---------------------------------------------------------

TEST(SvaParser, ImmediateAssertion)
{
    auto r = parseAssertion("assert (a == b);");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.property.immediate);
}

TEST(SvaParser, PaperExampleParses)
{
    auto r = parseAssertion(
        "ack_valid: assert property (@(posedge clk) "
        "disable iff (!resetn) valid |-> ##1 ack);");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.property.name, "ack_valid");
    EXPECT_EQ(r.property.clock, "clk");
    EXPECT_TRUE(r.property.hasDisable);
    ASSERT_NE(r.property.antecedent, nullptr);
    ASSERT_NE(r.property.consequent, nullptr);
    EXPECT_TRUE(r.property.overlapped);
}

TEST(SvaParser, DelayRangeAndRepetition)
{
    auto r = parseAssertion(
        "assert property (req |-> ##[1:3] (gnt)[*2]);");
    ASSERT_TRUE(r.ok) << r.error;
}

TEST(SvaParser, SequenceAndOr)
{
    auto r = parseAssertion(
        "assert property (start |=> (a ##1 b) or (c and d));");
    ASSERT_TRUE(r.ok) << r.error;
}

TEST(SvaParser, RejectsFirstMatch)
{
    auto r = parseAssertion(
        "assert property (a |-> first_match(b ##1 c));");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("first_match"), std::string::npos);
}

TEST(SvaParser, RejectsLocalVariables)
{
    auto r = parseAssertion(
        "assert property (a |-> (x = b) ##1 c);");
    ASSERT_FALSE(r.ok);
}

TEST(SvaParser, RejectsUnboundedRepetition)
{
    auto r = parseAssertion("assert property (a |-> b[*]);");
    ASSERT_FALSE(r.ok);
}

TEST(SvaParser, RejectsZeroDelayFusion)
{
    auto r = parseAssertion("assert property (a |-> a ##0 b);");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("##0"), std::string::npos);
}

TEST(SvaParser, RejectsNegedgeClock)
{
    auto r = parseAssertion(
        "assert property (@(negedge clk) a |-> b);");
    ASSERT_FALSE(r.ok);
}

TEST(SvaParser, ParsesPastAndSizedLiterals)
{
    auto r = parseAssertion(
        "assert property (state == 3'b101 |-> $past(count, 2) < 8'hF0);");
    ASSERT_TRUE(r.ok) << r.error;
}

// ---- compilation / support matrix ------------------------------------

TEST(SvaCompile, IsUnknownRejectedAtSynthesis)
{
    auto outcome = compileAssertion(
        "assert property (valid |-> !$isunknown(data));");
    ASSERT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("four-state"), std::string::npos);
}

TEST(SvaCompile, SimplePropertyCompiles)
{
    auto outcome = compileAssertion(
        "assert property (@(posedge clk) valid |-> ##1 ack);");
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_TRUE(outcome.prop.hasAntecedent);
    EXPECT_GE(outcome.prop.consequent.states.size(), 1u);
}

// ---- semantics via the reference evaluator ----------------------------

namespace {

/** Run the evaluator over per-cycle {signal: value} maps. */
uint64_t
failuresOn(const std::string &text,
           const std::vector<std::map<std::string, uint64_t>> &trace)
{
    auto outcome = compileAssertion(text);
    EXPECT_TRUE(outcome.ok) << outcome.error;
    sva::PropertyEvaluator eval(outcome.prop);
    uint64_t fails = 0;
    for (const auto &cycle : trace) {
        fails += eval.step([&](const std::string &name) {
            auto it = cycle.find(name);
            return it == cycle.end() ? 0ull : it->second;
        });
    }
    return fails;
}

} // namespace

TEST(SvaSemantics, AckOneCycleLater)
{
    const std::string prop =
        "assert property (valid |-> ##1 ack);";
    // valid at t0, ack at t1: pass.
    EXPECT_EQ(failuresOn(prop, {{{"valid", 1}},
                                {{"ack", 1}},
                                {}}), 0u);
    // valid at t0, no ack at t1: one failure at t1.
    EXPECT_EQ(failuresOn(prop, {{{"valid", 1}},
                                {{"ack", 0}},
                                {}}), 1u);
    // no valid: vacuous pass.
    EXPECT_EQ(failuresOn(prop, {{}, {}, {}}), 0u);
}

TEST(SvaSemantics, OverlappedVsNonOverlapped)
{
    // |-> checks ack in the same cycle; |=> one later.
    EXPECT_EQ(failuresOn("assert property (v |-> a);",
                         {{{"v", 1}, {"a", 1}}}), 0u);
    EXPECT_EQ(failuresOn("assert property (v |-> a);",
                         {{{"v", 1}, {"a", 0}}}), 1u);
    EXPECT_EQ(failuresOn("assert property (v |=> a);",
                         {{{"v", 1}, {"a", 0}}, {{"a", 1}}}), 0u);
    EXPECT_EQ(failuresOn("assert property (v |=> a);",
                         {{{"v", 1}, {"a", 1}}, {{"a", 0}}}), 1u);
}

TEST(SvaSemantics, DelayRangeAnyHitPasses)
{
    const std::string prop =
        "assert property (req |-> ##[1:3] gnt);";
    // gnt two cycles later: within the window.
    EXPECT_EQ(failuresOn(prop, {{{"req", 1}}, {}, {{"gnt", 1}}, {}}),
              0u);
    // no gnt within three cycles: fail once the window closes.
    EXPECT_EQ(failuresOn(prop, {{{"req", 1}}, {}, {}, {}, {}}), 1u);
}

TEST(SvaSemantics, ConsecutiveRepetition)
{
    const std::string prop =
        "assert property (go |=> busy[*3]);";
    EXPECT_EQ(failuresOn(prop,
        {{{"go", 1}}, {{"busy", 1}}, {{"busy", 1}}, {{"busy", 1}},
         {}}), 0u);
    EXPECT_EQ(failuresOn(prop,
        {{{"go", 1}}, {{"busy", 1}}, {{"busy", 0}}, {{"busy", 1}},
         {}}), 1u);
}

TEST(SvaSemantics, DisableIffSuppressesDuringReset)
{
    const std::string prop =
        "assert property (disable iff (!resetn) v |-> ##1 a);";
    // Violation happens while resetn is low: suppressed.
    EXPECT_EQ(failuresOn(prop,
        {{{"v", 1}, {"resetn", 0}}, {{"a", 0}, {"resetn", 0}}}), 0u);
    // Same after reset deasserts: reported.
    EXPECT_EQ(failuresOn(prop,
        {{{"v", 1}, {"resetn", 1}}, {{"a", 0}, {"resetn", 1}}}), 1u);
}

TEST(SvaSemantics, PastComparesHistoricValue)
{
    const std::string prop =
        "assert property (tick |-> $past(cnt, 2) == 5);";
    EXPECT_EQ(failuresOn(prop,
        {{{"cnt", 5}}, {{"cnt", 6}}, {{"cnt", 7}, {"tick", 1}}}),
        0u);
    EXPECT_EQ(failuresOn(prop,
        {{{"cnt", 4}}, {{"cnt", 6}}, {{"cnt", 7}, {"tick", 1}}}),
        1u);
}

TEST(SvaSemantics, SequenceOrEitherBranchMatches)
{
    const std::string prop =
        "assert property (s |=> (a ##1 b) or c);";
    EXPECT_EQ(failuresOn(prop,
        {{{"s", 1}}, {{"c", 1}}, {}}), 0u);
    EXPECT_EQ(failuresOn(prop,
        {{{"s", 1}}, {{"a", 1}}, {{"b", 1}}}), 0u);
    EXPECT_EQ(failuresOn(prop,
        {{{"s", 1}}, {{"a", 1}}, {{"b", 0}}}), 1u);
}

TEST(SvaSemantics, SequenceAndRequiresBoth)
{
    const std::string prop =
        "assert property (s |=> (a ##1 a) and (b ##1 b));";
    EXPECT_EQ(failuresOn(prop,
        {{{"s", 1}}, {{"a", 1}, {"b", 1}}, {{"a", 1}, {"b", 1}}}),
        0u);
    EXPECT_EQ(failuresOn(prop,
        {{{"s", 1}}, {{"a", 1}, {"b", 1}}, {{"a", 1}, {"b", 0}}}),
        1u);
}

TEST(SvaSemantics, ImmediateAssertFiresEveryViolatingCycle)
{
    EXPECT_EQ(failuresOn("assert (x < 4);",
        {{{"x", 1}}, {{"x", 5}}, {{"x", 9}}, {{"x", 2}}}), 2u);
}

// ---- circuit vs. evaluator differential -------------------------------

namespace {

/** Build a standalone monitor design and compare it against the
 *  reference evaluator on random 1-bit signal traces. */
void
differentialCheck(const std::string &text, uint64_t seed,
                  unsigned cycles,
                  const std::vector<std::string> &signals,
                  unsigned width = 1)
{
    auto outcome = compileAssertion(text);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    rtl::Builder builder("monitor");
    std::map<std::string, rtl::Value> ports;
    for (const std::string &signal : signals)
        ports[signal] = builder.input(signal, width);
    rtl::Value fail = buildMonitor(
        builder, outcome.prop,
        [&](const std::string &name) { return ports.at(name); });
    builder.output("fail", fail);
    rtl::Design design = builder.finish();

    sim::Simulator sim(design);
    sva::PropertyEvaluator eval(outcome.prop);

    Rng rng(seed);
    std::map<std::string, uint64_t> now;
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        for (const std::string &signal : signals) {
            now[signal] = rng.nextBits(width);
            sim.poke(signal, now[signal]);
        }
        bool hw_fail = sim.peek("fail") != 0;
        bool sw_fail = eval.step(
            [&](const std::string &name) { return now[name]; });
        ASSERT_EQ(hw_fail, sw_fail)
            << text << " diverged at cycle " << cycle;
        sim.step();
    }
}

} // namespace

struct SvaDiffCase
{
    const char *text;
    std::vector<std::string> signals;
    unsigned width;
};

class SvaDifferential
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

static const SvaDiffCase kDiffCases[] = {
    {"assert property (v |-> ##1 a);", {"v", "a"}, 1},
    {"assert property (v |=> a);", {"v", "a"}, 1},
    {"assert property (req |-> ##[1:3] gnt);", {"req", "gnt"}, 1},
    {"assert property (go |=> busy[*2:3]);", {"go", "busy"}, 1},
    {"assert property (s |=> (a ##1 b) or c);", {"s", "a", "b", "c"},
     1},
    {"assert property (s |=> (a ##1 a) and (b ##2 b));",
     {"s", "a", "b"}, 1},
    {"assert property (disable iff (rst) v |-> ##2 a);",
     {"rst", "v", "a"}, 1},
    {"assert property (a ##1 b |-> ##1 c);", {"a", "b", "c"}, 1},
    {"assert property (x == 3 |-> ##1 y != 0);", {"x", "y"}, 2},
    {"assert property (v |-> $past(v, 1) || a);", {"v", "a"}, 1},
    {"assert (p || !q);", {"p", "q"}, 1},
    {"assert property ($rose(v) |-> ##1 a);", {"v", "a"}, 1},
};

TEST_P(SvaDifferential, CircuitMatchesReference)
{
    auto [index, seed] = GetParam();
    const SvaDiffCase &test_case = kDiffCases[index];
    differentialCheck(test_case.text, seed, 300, test_case.signals,
                      test_case.width);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SvaDifferential,
    ::testing::Combine(
        ::testing::Range(0, int(std::size(kDiffCases))),
        ::testing::Values(1ull, 99ull)));

// ---- area measurement --------------------------------------------------

TEST(SvaArea, SimpleMonitorIsSmall)
{
    auto area = sva::measureAssertionArea(
        "assert property (@(posedge clk) valid |-> ##1 ack);");
    ASSERT_TRUE(area.synthesizable) << area.error;
    EXPECT_GT(area.ffs, 0u);
    EXPECT_LT(area.ffs, 16u);
    EXPECT_LT(area.luts, 32u);
}

TEST(SvaArea, UnsynthesizableReported)
{
    auto area = sva::measureAssertionArea(
        "assert property (v |-> !$isunknown(d));");
    EXPECT_FALSE(area.synthesizable);
    EXPECT_FALSE(area.error.empty());
}

TEST(SvaArea, PastDepthAddsFlipFlops)
{
    auto a1 = sva::measureAssertionArea(
        "assert property (t |-> $past(x, 1) == 1);");
    auto a4 = sva::measureAssertionArea(
        "assert property (t |-> $past(x, 4) == 1);");
    ASSERT_TRUE(a1.synthesizable);
    ASSERT_TRUE(a4.synthesizable);
    EXPECT_GT(a4.ffs, a1.ffs);
}
