/**
 * @file
 * Property-based testing of the Assertion Synthesis compiler:
 * randomly generated sequence properties (bounded depth over the
 * Table 4 operator set) are compiled to monitor circuits and
 * checked cycle-by-cycle against the software reference evaluator
 * on random traces. Any divergence between the synthesized FSM and
 * the reference semantics fails the sweep.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"
#include "sva/compiler.hh"
#include "sva/eval.hh"

using namespace zoomie;
using sva::Expr;
using sva::Seq;

namespace {

const char *kSignals[] = {"a", "b", "c", "d"};

Expr
randomExpr(Rng &rng)
{
    Expr expr;
    switch (rng.nextBelow(6)) {
      case 0:
      case 1:
      case 2: {
        expr.kind = Expr::Kind::Signal;
        expr.signal = kSignals[rng.nextBelow(4)];
        break;
      }
      case 3: {
        expr.kind = Expr::Kind::Not;
        Expr inner;
        inner.kind = Expr::Kind::Signal;
        inner.signal = kSignals[rng.nextBelow(4)];
        expr.args.push_back(std::move(inner));
        break;
      }
      case 4: {
        expr.kind = rng.chance(1, 2) ? Expr::Kind::And
                                     : Expr::Kind::Or;
        for (int i = 0; i < 2; ++i) {
            Expr inner;
            inner.kind = Expr::Kind::Signal;
            inner.signal = kSignals[rng.nextBelow(4)];
            expr.args.push_back(std::move(inner));
        }
        break;
      }
      default: {
        expr.kind = Expr::Kind::Past;
        expr.value = 1 + rng.nextBelow(3);
        Expr inner;
        inner.kind = Expr::Kind::Signal;
        inner.signal = kSignals[rng.nextBelow(4)];
        expr.args.push_back(std::move(inner));
        break;
      }
    }
    return expr;
}

std::unique_ptr<Seq>
randomSeq(Rng &rng, unsigned depth)
{
    auto seq = std::make_unique<Seq>();
    if (depth == 0 || rng.chance(2, 5)) {
        seq->kind = Seq::Kind::Atom;
        seq->expr = randomExpr(rng);
        return seq;
    }
    switch (rng.nextBelow(4)) {
      case 0:
        seq->kind = Seq::Kind::Delay;
        seq->a = randomSeq(rng, depth - 1);
        seq->b = randomSeq(rng, depth - 1);
        seq->lo = 1 + rng.nextBelow(2);
        seq->hi = seq->lo + rng.nextBelow(3);
        break;
      case 1:
        seq->kind = Seq::Kind::Or;
        seq->a = randomSeq(rng, depth - 1);
        seq->b = randomSeq(rng, depth - 1);
        break;
      case 2:
        seq->kind = Seq::Kind::And;
        seq->a = randomSeq(rng, depth - 1);
        seq->b = randomSeq(rng, depth - 1);
        break;
      default:
        seq->kind = Seq::Kind::Repeat;
        seq->a = randomSeq(rng, depth - 1);
        seq->lo = 1 + rng.nextBelow(2);
        seq->hi = seq->lo + rng.nextBelow(2);
        break;
    }
    return seq;
}

sva::Property
randomProperty(Rng &rng)
{
    sva::Property prop;
    if (rng.chance(3, 4)) {
        prop.antecedent = randomSeq(rng, 1);
    }
    prop.overlapped = rng.chance(1, 2);
    prop.consequent = randomSeq(rng, 2);
    if (rng.chance(1, 3)) {
        prop.hasDisable = true;
        prop.disable.kind = Expr::Kind::Signal;
        prop.disable.signal = "rst";
    }
    return prop;
}

} // namespace

class SvaRandomProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SvaRandomProperty, CircuitMatchesReference)
{
    Rng rng(GetParam() * 1315423911ull + 17);
    auto outcome = sva::compileProperty(randomProperty(rng));
    if (!outcome.ok) {
        // Complexity bound hit (legal for random 'and' products).
        GTEST_SKIP() << outcome.error;
    }

    rtl::Builder b("monitor");
    std::map<std::string, rtl::Value> ports;
    for (const char *name : kSignals)
        ports[name] = b.input(name, 1);
    ports["rst"] = b.input("rst", 1);
    rtl::Value fail = buildMonitor(
        b, outcome.prop,
        [&](const std::string &name) { return ports.at(name); });
    b.output("fail", fail);
    rtl::Design design = b.finish();

    sim::Simulator sim(design);
    sva::PropertyEvaluator eval(outcome.prop);
    std::map<std::string, uint64_t> now;
    for (unsigned cycle = 0; cycle < 400; ++cycle) {
        for (const char *name : kSignals) {
            now[name] = rng.chance(1, 2);
            sim.poke(name, now[name]);
        }
        now["rst"] = rng.chance(1, 8);
        sim.poke("rst", now["rst"]);

        bool hw = sim.peek("fail") != 0;
        bool sw = eval.step(
            [&](const std::string &name) { return now[name]; });
        ASSERT_EQ(hw, sw) << "divergence at cycle " << cycle
                          << " (seed " << GetParam() << ")";
        sim.step();
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SvaRandomProperty,
                         ::testing::Range<uint64_t>(0, 40));
