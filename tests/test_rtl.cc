/**
 * @file
 * Unit tests for the RTL IR and Builder: structural invariants,
 * scope bookkeeping, width checks, and topological ordering.
 */

#include <gtest/gtest.h>

#include "rtl/builder.hh"
#include "rtl/ir.hh"

using namespace zoomie;
using rtl::Builder;
using rtl::Op;
using rtl::Value;

TEST(RtlBuilder, CounterHasExpectedShape)
{
    Builder b("counter");
    auto count = b.reg("count", 8, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.output("value", count.q);
    rtl::Design d = b.finish();

    EXPECT_EQ(d.regs.size(), 1u);
    EXPECT_EQ(d.regs[0].name, "count");
    EXPECT_EQ(d.regs[0].width, 8u);
    EXPECT_EQ(d.outputs.size(), 1u);
    EXPECT_EQ(d.stateBits(), 8u);
}

TEST(RtlBuilder, ScopesPrefixNames)
{
    Builder b("scoped");
    b.pushScope("tile0");
    b.pushScope("core");
    auto r = b.reg("pc", 32, 0x80000000u);
    b.connect(r, r.q);
    EXPECT_EQ(b.scopePrefix(), "tile0/core/");
    b.popScope();
    b.popScope();
    b.output("pc", r.q);
    rtl::Design d = b.finish();

    EXPECT_EQ(d.regs[0].name, "tile0/core/pc");
    EXPECT_EQ(d.findReg("tile0/core/pc"), 0);
    // Scope table has "", "tile0/", "tile0/core/".
    ASSERT_EQ(d.scopeNames.size(), 3u);
    EXPECT_TRUE(d.scopeUnder(d.regScope[0], "tile0/"));
    EXPECT_TRUE(d.scopeUnder(d.regScope[0], "tile0/core/"));
    EXPECT_FALSE(d.scopeUnder(d.regScope[0], "tile1/"));
}

TEST(RtlBuilder, ReusedScopeGetsSameId)
{
    Builder b("reuse");
    b.pushScope("a");
    Value x = b.lit(1, 1);
    b.popScope();
    b.pushScope("a");
    Value y = b.lit(0, 1);
    b.popScope();
    b.output("x", x);
    b.output("y", y);
    rtl::Design d = b.finish();
    EXPECT_EQ(d.nodeScope[x.id], d.nodeScope[y.id]);
}

TEST(RtlBuilder, TopoOrderRespectsDependencies)
{
    Builder b("topo");
    Value in = b.input("in", 4);
    Value x = b.addLit(in, 3);
    Value y = b.bxor(x, in);
    b.output("out", y);
    rtl::Design d = b.finish();

    auto order = d.topoOrder();
    std::vector<size_t> pos(d.nodes.size());
    for (size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    EXPECT_LT(pos[in.id], pos[x.id]);
    EXPECT_LT(pos[x.id], pos[y.id]);
}

TEST(RtlBuilder, RegisterFeedbackIsNotACycle)
{
    Builder b("feedback");
    auto r = b.reg("r", 1, 0);
    b.connect(r, b.bnot(r.q));
    b.output("out", r.q);
    EXPECT_NO_FATAL_FAILURE(b.finish());
}

TEST(RtlBuilderDeath, WidthMismatchPanics)
{
    Builder b("bad");
    Value a = b.input("a", 4);
    Value c = b.input("c", 5);
    EXPECT_DEATH(b.band(a, c), "width mismatch");
}

TEST(RtlBuilderDeath, UnconnectedRegisterPanics)
{
    Builder b("bad2");
    auto r = b.reg("r", 4, 0);
    b.output("out", r.q);
    EXPECT_DEATH(b.finish(), "never connected");
}

TEST(RtlBuilderDeath, SliceOutOfRangePanics)
{
    Builder b("bad3");
    Value a = b.input("a", 4);
    EXPECT_DEATH(b.slice(a, 3, 2), "slice out of range");
}

TEST(RtlBuilderDeath, MuxSelectWidthPanics)
{
    Builder b("bad4");
    Value a = b.input("a", 2);
    Value t = b.input("t", 4);
    Value e = b.input("e", 4);
    EXPECT_DEATH(b.mux(a, t, e), "mux select");
}

TEST(RtlIr, OpArityMatchesSemantics)
{
    EXPECT_EQ(rtl::opArity(Op::Const), 0u);
    EXPECT_EQ(rtl::opArity(Op::Not), 1u);
    EXPECT_EQ(rtl::opArity(Op::Add), 2u);
    EXPECT_EQ(rtl::opArity(Op::Mux), 3u);
    EXPECT_EQ(rtl::opArity(Op::RegQ), 0u);
}

TEST(RtlIr, MemoryBitsAccounting)
{
    Builder b("mem");
    auto handle = b.mem("scratch", 32, 64);
    Value addr = b.input("addr", 6);
    Value data = b.memReadSync(handle, addr);
    b.output("data", data);
    rtl::Design d = b.finish();
    EXPECT_EQ(d.memoryBits(), 64u * 32u);
}

TEST(RtlIr, DecoupledIfaceRecorded)
{
    Builder b("iface");
    b.pushScope("mut");
    Value v = b.input("v", 1);
    Value r = b.input("r", 1);
    Value p = b.input("p", 8);
    b.declareIface("req", rtl::IfaceDir::In, v, r, {p}, true);
    b.popScope();
    b.output("sink", b.band(v, r));
    rtl::Design d = b.finish();

    ASSERT_EQ(d.ifaces.size(), 1u);
    EXPECT_EQ(d.ifaces[0].name, "mut/req");
    EXPECT_EQ(d.ifaces[0].scope, "mut/");
    EXPECT_TRUE(d.ifaces[0].irrevocable);
    EXPECT_EQ(d.ifaces[0].payload.size(), 1u);
}
