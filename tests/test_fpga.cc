/**
 * @file
 * Device-model tests: geometry, configuration flow over JTAG,
 * fabric execution equivalence against the RTL simulator, readback
 * capture, state injection through partial reconfiguration, the
 * GSR-mask quirk, clock gating, and the paper's §4.5 SLR-discovery
 * experiments (BOUT pulses vs. IDCODE mutation).
 */

#include <gtest/gtest.h>

#include "bitstream/builder.hh"
#include "common/rng.hh"
#include "fpga/device.hh"
#include "jtag/jtag.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"
#include "synth/techmap.hh"
#include "toolchain/bitgen.hh"
#include "toolchain/flows.hh"
#include "toolchain/logicloc.hh"
#include "toolchain/placer.hh"
#include "util/random_design.hh"

using namespace zoomie;
using bitstream::Command;
using bitstream::CommandBuilder;
using bitstream::ConfigReg;

namespace {

/** Compile a design for the test device and load it over JTAG. */
struct Loaded
{
    toolchain::CompileResult result;
    std::unique_ptr<fpga::Device> device;
    std::unique_ptr<jtag::JtagHost> host;

    explicit Loaded(const rtl::Design &design)
    {
        fpga::DeviceSpec spec = fpga::makeTestDevice();
        toolchain::VendorTool tool(spec);
        result = tool.compile(design);
        device = std::make_unique<fpga::Device>(spec);
        device->attach(result.netlist, result.placement);
        host = std::make_unique<jtag::JtagHost>(*device);
        host->send(result.bitstream);
    }
};

rtl::Design
counterDesign()
{
    rtl::Builder b("counter");
    auto count = b.reg("count", 8, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.output("value", count.q);
    return b.finish();
}

} // namespace

TEST(DeviceSpec, GeometryDerivations)
{
    fpga::DeviceSpec spec = fpga::makeU200();
    EXPECT_EQ(spec.numSlrs, 3u);
    EXPECT_EQ(spec.primarySlr, 1u);
    EXPECT_EQ(spec.totalLuts(), 1188000u);
    EXPECT_EQ(spec.totalBrams(), 2160u);
    auto ring = spec.ringOrder();
    ASSERT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring[0], 1u);  // primary first

    fpga::DeviceSpec u250 = fpga::makeU250();
    EXPECT_EQ(u250.numSlrs, 4u);
}

TEST(DeviceSpec, BitLocationsAreDistinct)
{
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    // Two different FFs in a tile and LUT bits must not collide.
    fpga::Site a{0, 3, 5, 0}, b{0, 3, 5, 1};
    auto la = spec.ffBit(a);
    auto lb = spec.ffBit(b);
    EXPECT_FALSE(la.frame == lb.frame && la.bit == lb.bit);
    auto lut0 = spec.lutBit({0, 3, 5, 0}, 0);
    auto lut63 = spec.lutBit({0, 3, 5, 0}, 63);
    EXPECT_FALSE(lut0.frame == lut63.frame && lut0.bit == lut63.bit);
    // BRAM frames live after all CLB frames.
    EXPECT_GE(spec.bramColFrameBase(0),
              spec.clbColFrameBase(spec.clbCols - 1) +
                  spec.framesPerClbCol());
}

TEST(ConfigMem, BitAndWordAccess)
{
    fpga::ConfigMem mem(4);
    fpga::BitLoc loc{0, 2, 37};
    EXPECT_FALSE(mem.bit(loc));
    mem.setBit(loc, true);
    EXPECT_TRUE(mem.bit(loc));
    EXPECT_EQ(mem.word(2, 1), 1u << 5);
    mem.setBits64({0, 1, 90}, 8, 0xA5);
    EXPECT_EQ(mem.bits64({0, 1, 90}, 8), 0xA5u);
}

TEST(Device, ConfiguresAndRunsCounter)
{
    Loaded loaded(counterDesign());
    ASSERT_TRUE(loaded.device->running());
    EXPECT_EQ(loaded.device->peekOutput("value"), 0u);
    loaded.device->runGlobal(5);
    EXPECT_EQ(loaded.device->peekOutput("value"), 5u);
}

TEST(Device, NoInputDesignHasEmptyPortListAndPanicsOnPeek)
{
    // The free-running counter has registers and outputs but no
    // input ports: enumeration must return the empty pool (not
    // fail), and name lookups must die with the typed panic —
    // callers distinguish "no inputs" from "bad name".
    Loaded loaded(counterDesign());
    EXPECT_TRUE(loaded.device->inputPorts().empty());
    EXPECT_DEATH(loaded.device->peekInput("count"),
                 "unknown input port");
    EXPECT_DEATH(loaded.device->pokeInput("en", 1),
                 "unknown input port");
    // Output names never alias into the input namespace.
    EXPECT_DEATH(loaded.device->peekInput("value"),
                 "unknown input port");
}

TEST(Device, PokeInputMasksValueToPortWidth)
{
    rtl::Builder b("adder");
    rtl::Value add = b.input("add", 4);
    auto count = b.reg("count", 8, 0);
    b.connect(count, b.add(count.q, b.zext(add, 8)));
    b.output("value", count.q);
    Loaded loaded(b.finish());

    ASSERT_EQ(loaded.device->inputPorts(),
              std::vector<std::string>{"add"});
    // Unpoked ports read back as driven-low.
    EXPECT_EQ(loaded.device->peekInput("add"), 0u);

    // An over-wide poke only lands on the port's own bits: the
    // readback is the 4-bit truncation, and the fabric computes
    // with the truncated value too.
    loaded.device->pokeInput("add", 0xFF5u);
    EXPECT_EQ(loaded.device->peekInput("add"), 0x5u);
    loaded.device->stepGlobal();
    EXPECT_EQ(loaded.device->peekOutput("value"), 5u);

    // A later poke overwrites, not accumulates.
    loaded.device->pokeInput("add", 0x13u);
    EXPECT_EQ(loaded.device->peekInput("add"), 0x3u);
    loaded.device->stepGlobal();
    EXPECT_EQ(loaded.device->peekOutput("value"), 8u);
}

TEST(Device, FabricMatchesRtlSimulatorOnRandomDesigns)
{
    for (uint64_t seed : {3ull, 11ull, 42ull}) {
        testutil::RandomDesignSpec spec;
        spec.seed = seed;
        spec.numOps = 50;
        spec.numRegs = 6;
        spec.numMems = 1;
        rtl::Design design = testutil::makeRandomDesign(spec);
        Loaded loaded(design);
        sim::Simulator gold(design);

        Rng rng(seed * 7 + 1);
        for (unsigned cycle = 0; cycle < 100; ++cycle) {
            for (const auto &in : design.inputs) {
                uint64_t v = rng.nextBits(in.width);
                gold.poke(in.name, v);
                loaded.device->pokeInput(in.name, v);
            }
            for (const auto &out : design.outputs) {
                ASSERT_EQ(gold.peek(out.name),
                          loaded.device->peekOutput(out.name))
                    << "cycle " << cycle << " seed " << seed;
            }
            gold.step();
            // All clock domains tick together on the test design.
            for (uint8_t c = 1; c < design.clocks.size(); ++c)
                gold.step(c);
            loaded.device->stepGlobal();
        }
    }
}

TEST(Device, CaptureThenReadbackRecoversRegisterValues)
{
    rtl::Design design = counterDesign();
    Loaded loaded(design);
    loaded.device->runGlobal(57);

    // Issue GCAPTURE through the config plane.
    CommandBuilder builder;
    builder.sync().command(Command::GCapture).desync();
    loaded.host->send(builder.take());

    // Read back the frame holding the counter FFs and decode via
    // logic-location metadata.
    auto locs = toolchain::buildLogicLocations(
        loaded.device->spec(), design, loaded.result.netlist,
        loaded.result.placement);
    const toolchain::RegLocation *reg = locs.findReg("count");
    ASSERT_NE(reg, nullptr);
    ASSERT_EQ(reg->width, 8);

    uint64_t value = 0;
    for (unsigned bit = 0; bit < reg->width; ++bit) {
        const fpga::BitLoc &loc = reg->bits[bit];
        // Send the request, drain the data, then desync.
        CommandBuilder req;
        req.sync().readRequest(loc.frame, fpga::kFrameWords);
        loaded.host->send(req.take());
        auto words = loaded.host->read(fpga::kFrameWords);
        CommandBuilder fin;
        fin.desync();
        loaded.host->send(fin.take());
        uint32_t word = words[loc.bit / 32];
        value |= uint64_t((word >> (loc.bit % 32)) & 1) << bit;
    }
    EXPECT_EQ(value, 57u);
}

TEST(Device, ReadbackWithoutRcfgReturnsGarbage)
{
    Loaded loaded(counterDesign());
    CommandBuilder builder;
    builder.sync();
    builder.writeReg(ConfigReg::FAR, 0);
    // Read FDRO without CMD=RCFG.
    builder.words();
    auto words = builder.take();
    words.push_back(bitstream::type1(bitstream::PacketOp::Read,
                                     ConfigReg::FDRO, 4));
    loaded.host->send(words);
    auto data = loaded.host->read(4);
    for (uint32_t w : data)
        EXPECT_EQ(w, 0xDEADBEEFu);
}

TEST(Device, PartialReconfigForcesRegisterState)
{
    rtl::Design design = counterDesign();
    Loaded loaded(design);
    loaded.device->runGlobal(3);

    auto locs = toolchain::buildLogicLocations(
        loaded.device->spec(), design, loaded.result.netlist,
        loaded.result.placement);
    const toolchain::RegLocation *reg = locs.findReg("count");
    ASSERT_NE(reg, nullptr);

    // Capture current state into frames, flip bits to value 200,
    // write the frame back, GRESTORE.
    CommandBuilder cap;
    cap.sync().command(Command::GCapture).desync();
    loaded.host->send(cap.take());

    // Read the affected frames, patch, write back.
    uint32_t frame = reg->bits[0].frame;
    CommandBuilder req;
    req.sync().readRequest(frame, fpga::kFrameWords);
    loaded.host->send(req.take());
    auto words = loaded.host->read(fpga::kFrameWords);
    CommandBuilder fin;
    fin.desync();
    loaded.host->send(fin.take());

    for (unsigned bit = 0; bit < reg->width; ++bit) {
        const fpga::BitLoc &loc = reg->bits[bit];
        ASSERT_EQ(loc.frame, frame);  // tiny design: one frame
        uint32_t &word = words[loc.bit / 32];
        uint32_t mask = 1u << (loc.bit % 32);
        if ((200u >> bit) & 1)
            word |= mask;
        else
            word &= ~mask;
    }

    toolchain::FrameSpan span;
    span.slr = reg->bits[0].slr;
    span.farStart = frame;
    span.words = words;
    auto partial = toolchain::partialBitstream(
        loaded.device->spec(), {span});
    loaded.host->send(partial);

    EXPECT_EQ(loaded.device->peekOutput("value"), 200u);
    loaded.device->runGlobal(1);
    EXPECT_EQ(loaded.device->peekOutput("value"), 201u);
}

TEST(Device, GsrMaskQuirkLeavesStaleCaptureOutsideRegion)
{
    rtl::Design design = counterDesign();
    Loaded loaded(design);
    auto locs = toolchain::buildLogicLocations(
        loaded.device->spec(), design, loaded.result.netlist,
        loaded.result.placement);
    const toolchain::RegLocation *reg = locs.findReg("count");
    uint32_t reg_frame = reg->bits[0].frame;

    // Partial reconfiguration of an *unrelated* frame leaves MASK
    // set with a region that excludes the counter's frame.
    uint32_t other_frame = reg_frame > 0 ? reg_frame - 1
                                         : reg_frame + 1;
    toolchain::FrameSpan span;
    span.slr = 0;
    span.farStart = other_frame;
    span.words.assign(fpga::kFrameWords, 0);
    // Read out that frame first so we rewrite identical content.
    {
        CommandBuilder req;
        req.sync().readRequest(other_frame, fpga::kFrameWords);
        loaded.host->send(req.take());
        span.words = loaded.host->read(fpga::kFrameWords);
        CommandBuilder fin;
        fin.desync();
        loaded.host->send(fin.take());
    }
    loaded.host->send(
        toolchain::partialBitstream(loaded.device->spec(), {span}));
    EXPECT_TRUE(loaded.device->controller(0).maskActive());

    loaded.device->runGlobal(99);

    // Naive capture: restricted by the stale mask -> counter frame
    // not updated.
    CommandBuilder cap;
    cap.sync().command(Command::GCapture).desync();
    loaded.host->send(cap.take());
    EXPECT_FALSE(
        loaded.device->slrMem(0).bit(reg->bits[0]) ||
        loaded.device->slrMem(0).bit(reg->bits[1]))
        << "capture should have been masked away (quirk)";

    // Zoomie's workaround: clear MASK before capturing (§4.7).
    CommandBuilder fix;
    fix.sync().writeReg(ConfigReg::MASK, 0)
        .command(Command::GCapture).desync();
    loaded.host->send(fix.take());
    uint64_t value = 0;
    for (unsigned bit = 0; bit < reg->width; ++bit) {
        value |= uint64_t(loaded.device->slrMem(0).bit(
                     reg->bits[bit])) << bit;
    }
    EXPECT_EQ(value, 99u);
}

TEST(Device, ClockGatePausesDomain)
{
    rtl::Builder b("gated");
    uint8_t gclk = b.addClock("gated_clk");
    auto en = b.reg("en", 1, 1);
    b.connect(en, en.q);  // constant enable register, forceable
    auto count = b.reg("count", 8, 0, gclk);
    b.connect(count, b.addLit(count.q, 1));
    b.output("value", count.q);
    b.output("clk_en", en.q);
    rtl::Design design = b.finish();

    Loaded loaded(design);
    loaded.device->bindClockGate(gclk, "clk_en");
    loaded.device->runGlobal(5);
    EXPECT_EQ(loaded.device->peekOutput("value"), 5u);
    EXPECT_EQ(loaded.device->cycles(gclk), 5u);

    // Force the enable FF low: capture all live state into frames
    // first (so a full-SLR restore is state-preserving), patch the
    // enable bit, then GRESTORE — the §3.3 manipulation flow.
    CommandBuilder cap;
    cap.sync().command(Command::GCapture).desync();
    loaded.host->send(cap.take());
    for (synth::SigId id = 0;
         id < loaded.result.netlist.cells.size(); ++id) {
        const auto &cell = loaded.result.netlist.cells[id];
        if (cell.kind == synth::CellKind::FF && cell.src == 0) {
            fpga::BitLoc loc = loaded.device->spec().ffBit(
                loaded.result.placement.cellSite[id]);
            loaded.device->slrMem(loc.slr).setBit(loc, false);
        }
    }
    CommandBuilder restore;
    restore.sync().command(Command::GRestore).desync();
    loaded.host->send(restore.take());

    loaded.device->runGlobal(10);
    EXPECT_EQ(loaded.device->peekOutput("value"), 5u);
    EXPECT_EQ(loaded.device->cycles(gclk), 5u);
    EXPECT_EQ(loaded.device->cycles(0), 15u);
}

// ---- §4.5 hypothesis-validation experiments -----------------------

namespace {

/** Three constant registers, one pinned per SLR via floorplan. */
struct SlrProbe
{
    rtl::Design design;
    toolchain::CompileResult result;
    std::unique_ptr<fpga::Device> device;
    std::unique_ptr<jtag::JtagHost> host;
    toolchain::LogicLocations locs;

    explicit SlrProbe(const fpga::DeviceSpec &spec)
    {
        rtl::Builder b("slr_probe");
        for (uint32_t i = 0; i < spec.numSlrs; ++i) {
            b.pushScope("probe" + std::to_string(i));
            auto r = b.reg("val", 8, 0x10 + i);
            b.connect(r, r.q);
            b.output("o", r.q);
            b.popScope();
        }
        design = b.finish();

        // One constant register constrained per SLR — the paper's
        // §4.3 experimental setup (Vivado Tcl LOC constraints).
        result.netlist = synth::techMap(design);
        toolchain::Floorplan floorplan;
        for (uint32_t i = 0; i < spec.numSlrs; ++i) {
            toolchain::FloorplanPart part;
            part.scopePrefix = "probe" + std::to_string(i) + "/";
            part.forcedSlr = static_cast<int>(i);
            floorplan.parts.push_back(std::move(part));
        }
        result.placement = toolchain::place(spec, result.netlist,
                                            &floorplan);
        result.bitstream = toolchain::fullBitstream(
            spec, result.netlist, result.placement);
        device = std::make_unique<fpga::Device>(spec);
        device->attach(result.netlist, result.placement);
        host = std::make_unique<jtag::JtagHost>(*device);
        host->send(result.bitstream);
        locs = toolchain::buildLogicLocations(
            spec, design, result.netlist, result.placement);
    }

    /** Readback one probe register's byte from its SLR using the
     *  given BOUT hop count (emulating the §4.5 experiments). */
    uint64_t readProbeViaHops(uint32_t probe, uint32_t hops)
    {
        const toolchain::RegLocation *reg = locs.findReg(
            "probe" + std::to_string(probe) + "/val");
        CommandBuilder cap;
        cap.sync().selectHop(hops).command(Command::GCapture)
            .desync();
        host->send(cap.take());

        uint64_t value = 0;
        for (unsigned bit = 0; bit < reg->width; ++bit) {
            const fpga::BitLoc &loc = reg->bits[bit];
            CommandBuilder req;
            req.sync().selectHop(hops)
                .readRequest(loc.frame, fpga::kFrameWords);
            host->send(req.take());
            auto words = host->read(fpga::kFrameWords);
            CommandBuilder fin;
            fin.desync();
            host->send(fin.take());
            value |= uint64_t((words[loc.bit / 32] >>
                               (loc.bit % 32)) & 1) << bit;
        }
        return value;
    }
};

} // namespace

TEST(SlrDiscovery, BoutPulsesSelectSlrs)
{
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    SlrProbe probe(spec);
    auto ring = spec.ringOrder();

    // The probes were placed per partition; figure out which SLR
    // each probe landed on, then address it by its ring hop.
    for (uint32_t p = 0; p < spec.numSlrs; ++p) {
        const auto *region = probe.result.placement.findRegion(
            "probe" + std::to_string(p) + "/");
        ASSERT_NE(region, nullptr);
        uint32_t hop = 0;
        for (uint32_t h = 0; h < ring.size(); ++h) {
            if (ring[h] == region->slr)
                hop = h;
        }
        EXPECT_EQ(probe.readProbeViaHops(p, hop), 0x10u + p)
            << "probe " << p;
    }
}

TEST(SlrDiscovery, IdcodeWritesDoNotSelectSlrs)
{
    // Following Bitfiltrator's hypothesis: inject different IDCODE
    // values without BOUT pulses. Readback must keep returning the
    // *primary* SLR's data no matter the IDCODE (§4.3).
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    SlrProbe probe(spec);

    uint32_t primary = spec.primarySlr;
    // Find the probe on the primary SLR.
    uint32_t primary_probe = 0;
    for (uint32_t p = 0; p < spec.numSlrs; ++p) {
        const auto *region = probe.result.placement.findRegion(
            "probe" + std::to_string(p) + "/");
        if (region->slr == primary)
            primary_probe = p;
    }
    const auto *reg = probe.locs.findReg(
        "probe" + std::to_string(primary_probe) + "/val");

    for (uint32_t fake_id : {0x11111111u, 0x22222222u, 0xDEADC0DEu}) {
        CommandBuilder cap;
        cap.sync();
        // IDCODE writes targeting "another SLR" (per the wrong
        // hypothesis) — no BOUT pulses.
        cap.writeReg(ConfigReg::IDCODE, fake_id);
        cap.command(Command::GCapture).desync();
        probe.host->send(cap.take());

        uint64_t value = 0;
        for (unsigned bit = 0; bit < reg->width; ++bit) {
            const fpga::BitLoc &loc = reg->bits[bit];
            CommandBuilder req;
            req.sync().readRequest(loc.frame, fpga::kFrameWords);
            probe.host->send(req.take());
            auto words = probe.host->read(fpga::kFrameWords);
            CommandBuilder fin;
            fin.desync();
            probe.host->send(fin.take());
            value |= uint64_t((words[loc.bit / 32] >>
                               (loc.bit % 32)) & 1) << bit;
        }
        EXPECT_EQ(value, 0x10u + primary_probe)
            << "IDCODE 0x" << std::hex << fake_id
            << " should not have redirected readback";
    }
}

TEST(SlrDiscovery, FourSlrDeviceNeedsThreePulsesForFinalSlr)
{
    // §4.5 "Verifying Repetition Pattern" on the U250: the last SLR
    // is reached with 3 BOUT pulses.
    fpga::DeviceSpec spec = fpga::makeU250();
    fpga::Device device(spec);
    CommandBuilder builder;
    builder.sync().selectHop(3);
    jtag::JtagHost host(device);
    host.send(builder.take());
    EXPECT_EQ(device.currentHop(), 3u);
    auto ring = spec.ringOrder();
    EXPECT_EQ(device.selectedSlr(), ring[3]);
}

TEST(Jtag, TimingAccumulatesAndHopsCostMore)
{
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    {
        fpga::Device device(spec);
        jtag::JtagHost host(device);
        CommandBuilder b0;
        b0.sync(0);
        std::vector<uint32_t> payload(1000, bitstream::kDummyWord);
        host.send(b0.take());
        host.send(payload);
        double t_primary = host.elapsedSeconds();
        EXPECT_GT(t_primary, 0.0);

        // Same payload after one hop costs strictly more.
        fpga::Device device2(spec);
        jtag::JtagHost host2(device2);
        CommandBuilder b1;
        b1.sync(0).selectHop(1);
        host2.send(b1.take());
        host2.resetTimer();
        host2.send(payload);
        EXPECT_GT(host2.elapsedSeconds(), t_primary * 0.99);
    }
}

TEST(Device, IdcodeMismatchLocksConfiguration)
{
    // The primary SLR verifies IDCODE; a mismatch must lock out
    // frame writes (how real devices reject foreign bitstreams).
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    fpga::Device device(spec);
    jtag::JtagHost host(device);

    CommandBuilder bad;
    bad.sync();
    bad.writeReg(ConfigReg::IDCODE, 0xBADC0DE);
    bad.writeFrames(0, std::vector<uint32_t>(fpga::kFrameWords,
                                             0xFFFF0000u));
    bad.desync();
    host.send(bad.take());
    EXPECT_TRUE(device.controller(spec.primarySlr).idcodeError());
    EXPECT_EQ(device.slrMem(spec.primarySlr).word(0, 0), 0u);

    // A fresh device with the right IDCODE accepts the same frames.
    fpga::Device good_device(spec);
    jtag::JtagHost good_host(good_device);
    CommandBuilder good;
    good.sync();
    good.writeReg(ConfigReg::IDCODE,
                  spec.idcode(spec.primarySlr));
    good.writeFrames(0, std::vector<uint32_t>(fpga::kFrameWords,
                                              0xFFFF0000u));
    good.desync();
    good_host.send(good.take());
    EXPECT_FALSE(
        good_device.controller(spec.primarySlr).idcodeError());
    EXPECT_EQ(good_device.slrMem(spec.primarySlr).word(0, 0),
              0xFFFF0000u);
}

TEST(Device, ReadbackAutoIncrementsAcrossFrames)
{
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    fpga::Device device(spec);
    jtag::JtagHost host(device);
    // Write two frames with distinct patterns, read them in one
    // burst.
    std::vector<uint32_t> frames(2 * fpga::kFrameWords);
    for (size_t i = 0; i < frames.size(); ++i)
        frames[i] = static_cast<uint32_t>(i * 7 + 1);
    CommandBuilder wr;
    wr.sync().writeFrames(5, frames).desync();
    host.send(wr.take());

    CommandBuilder rd;
    rd.sync().readRequest(5, 2 * fpga::kFrameWords);
    host.send(rd.take());
    auto out = host.read(2 * fpga::kFrameWords);
    CommandBuilder fin;
    fin.desync();
    host.send(fin.take());
    EXPECT_EQ(out, frames);
}
