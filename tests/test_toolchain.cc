/**
 * @file
 * Toolchain tests: placer invariants, partition linking
 * equivalence, the VTI incremental flow (correctness of the linked
 * result, placement stability of unchanged partitions, and the
 * work/time asymmetry that produces Figure 7), and the cost model.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"
#include "synth/netlistsim.hh"
#include "synth/techmap.hh"
#include "toolchain/costmodel.hh"
#include "toolchain/flows.hh"
#include "toolchain/linker.hh"
#include "toolchain/logicloc.hh"
#include "toolchain/placer.hh"
#include "toolchain/timing.hh"
#include "util/random_design.hh"

using namespace zoomie;
using rtl::Builder;
using rtl::Value;
using synth::MappedNetlist;

namespace {

/**
 * A two-tile mini SoC. Each tile accumulates a function of the
 * shared input; the top adds both accumulators. @p variant changes
 * tile1's internals only (the "edit" for incremental compiles).
 */
rtl::Design
twoTileSoc(int variant)
{
    Builder b("mini_soc");
    Value in = b.input("in", 8);

    b.pushScope("tile0");
    auto acc0 = b.reg("acc", 8, 0);
    b.connect(acc0, b.add(acc0.q, in));
    b.popScope();

    b.pushScope("tile1");
    auto acc1 = b.reg("acc", 8, 0);
    Value next;
    switch (variant) {
      case 0:
        next = b.bxor(acc1.q, in);
        break;
      case 1:
        next = b.add(acc1.q, b.bnot(in));
        break;
      default:
        next = b.sub(acc1.q, in);
        break;
    }
    b.connect(acc1, next);
    // An extra register in later variants changes resource usage.
    if (variant >= 1) {
        auto extra = b.reg("extra", 8, 7);
        b.connect(extra, b.bxor(extra.q, acc1.q));
        b.nameNet("extra_q", extra.q);
    }
    b.popScope();

    b.output("sum", b.add(acc0.q, acc1.q));
    return b.finish();
}

/** Equivalence of two runnable netlists on random stimulus. */
void
expectNetlistsEquivalent(const MappedNetlist &a, const MappedNetlist &b,
                         uint64_t seed, unsigned cycles)
{
    synth::NetlistSim sa(a);
    synth::NetlistSim sb(b);
    Rng rng(seed);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        for (const auto &in : a.inputs) {
            uint64_t v = rng.nextBits(
                static_cast<unsigned>(in.bits.size()));
            sa.poke(in.name, v);
            sb.poke(in.name, v);
        }
        for (const auto &out : a.outputs) {
            ASSERT_EQ(sa.peek(out.name), sb.peek(out.name))
                << out.name << " diverged at cycle " << cycle;
        }
        for (uint32_t c = 0; c < a.numClocks; ++c) {
            sa.step(static_cast<uint8_t>(c));
            sb.step(static_cast<uint8_t>(c));
        }
    }
}

} // namespace

TEST(Placer, SitesAreUniquePerResource)
{
    testutil::RandomDesignSpec spec;
    spec.seed = 5;
    spec.numOps = 100;
    spec.numRegs = 20;
    rtl::Design design = testutil::makeRandomDesign(spec);
    MappedNetlist net = synth::techMap(design);
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    fpga::Placement placement = toolchain::place(dev, net);

    std::set<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>> luts;
    std::set<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>> ffs;
    for (synth::SigId id = 0; id < net.cells.size(); ++id) {
        const auto &cell = net.cells[id];
        const fpga::Site &s = placement.cellSite[id];
        if (cell.kind == synth::CellKind::Lut) {
            EXPECT_TRUE(luts.insert({s.slr, s.col, s.row, s.slot})
                            .second) << "LUT site reused";
            EXPECT_LT(s.slot, fpga::kLutsPerClb);
        } else if (cell.kind == synth::CellKind::FF) {
            EXPECT_TRUE(ffs.insert({s.slr, s.col, s.row, s.slot})
                            .second) << "FF site reused";
            EXPECT_LT(s.slot, fpga::kFfsPerClb);
        }
    }
    // LUTRAM sites must be SLICEM and not collide with logic LUTs.
    for (uint32_t r = 0; r < net.rams.size(); ++r) {
        if (placement.ramSite[r].isBram)
            continue;
        for (const fpga::Site &s : placement.ramSite[r].sites) {
            EXPECT_TRUE(dev.isSlicemCol(s.col));
            EXPECT_TRUE(luts.insert({s.slr, s.col, s.row, s.slot})
                            .second) << "LUTRAM site collides";
        }
    }
}

TEST(Placer, FloorplanConfinesPartitionCells)
{
    rtl::Design design = twoTileSoc(0);
    MappedNetlist net = synth::techMap(design);
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    toolchain::Floorplan floorplan;
    toolchain::FloorplanPart part;
    part.scopePrefix = "tile1/";
    floorplan.parts.push_back(part);
    fpga::Placement placement =
        toolchain::place(dev, net, &floorplan);

    const fpga::Region *region = placement.findRegion("tile1/");
    ASSERT_NE(region, nullptr);
    for (synth::SigId id = 0; id < net.cells.size(); ++id) {
        const auto &cell = net.cells[id];
        if (cell.kind != synth::CellKind::Lut &&
            cell.kind != synth::CellKind::FF)
            continue;
        const fpga::Site &s = placement.cellSite[id];
        if (net.cellUnder(cell, "tile1/")) {
            EXPECT_EQ(s.slr, region->slr);
            EXPECT_GE(s.col, region->colLo);
            EXPECT_LE(s.col, region->colHi);
        } else {
            EXPECT_FALSE(s.slr == region->slr &&
                         s.col >= region->colLo &&
                         s.col <= region->colHi)
                << "static cell inside reserved region";
        }
    }
}

TEST(Placer, DeterministicAcrossRuns)
{
    rtl::Design design = twoTileSoc(1);
    MappedNetlist net = synth::techMap(design);
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    fpga::Placement p1 = toolchain::place(dev, net);
    fpga::Placement p2 = toolchain::place(dev, net);
    ASSERT_EQ(p1.cellSite.size(), p2.cellSite.size());
    for (size_t i = 0; i < p1.cellSite.size(); ++i) {
        EXPECT_EQ(p1.cellSite[i].col, p2.cellSite[i].col);
        EXPECT_EQ(p1.cellSite[i].row, p2.cellSite[i].row);
        EXPECT_EQ(p1.cellSite[i].slot, p2.cellSite[i].slot);
    }
    EXPECT_EQ(p1.hpwl, p2.hpwl);
}

TEST(Placer, ScopeBoundingBoxesCoverCells)
{
    rtl::Design design = twoTileSoc(0);
    MappedNetlist net = synth::techMap(design);
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    fpga::Placement placement = toolchain::place(dev, net);
    auto regions = toolchain::scopeBoundingBoxes(net, placement,
                                                 "tile0/");
    ASSERT_FALSE(regions.empty());
    for (synth::SigId id = 0; id < net.cells.size(); ++id) {
        const auto &cell = net.cells[id];
        if (!net.cellUnder(cell, "tile0/"))
            continue;
        if (cell.kind != synth::CellKind::Lut &&
            cell.kind != synth::CellKind::FF)
            continue;
        const fpga::Site &s = placement.cellSite[id];
        bool covered = false;
        for (const auto &region : regions) {
            covered |= region.slr == s.slr &&
                       s.col >= region.colLo && s.col <= region.colHi &&
                       s.row >= region.rowLo && s.row <= region.rowHi;
        }
        EXPECT_TRUE(covered);
    }
}

TEST(Linker, PartitionedMapMatchesMonolithic)
{
    for (int variant = 0; variant < 3; ++variant) {
        rtl::Design design = twoTileSoc(variant);
        MappedNetlist mono = synth::techMap(design);

        synth::MapOptions static_opts;
        static_opts.excludePrefixes = {"tile0/", "tile1/"};
        synth::MapOptions t0_opts, t1_opts;
        t0_opts.includePrefixes = {"tile0/"};
        t1_opts.includePrefixes = {"tile1/"};

        MappedNetlist part_static = synth::techMap(design,
                                                   static_opts);
        MappedNetlist part0 = synth::techMap(design, t0_opts);
        MappedNetlist part1 = synth::techMap(design, t1_opts);

        std::vector<toolchain::LinkInput> inputs(3);
        inputs[0].netlist = &part_static;
        inputs[0].boundary = synth::computeBoundary(design,
                                                    static_opts);
        inputs[1].netlist = &part0;
        inputs[1].boundary = synth::computeBoundary(design, t0_opts);
        inputs[2].netlist = &part1;
        inputs[2].boundary = synth::computeBoundary(design, t1_opts);

        toolchain::LinkResult linked = toolchain::link(inputs);
        ASSERT_TRUE(linked.ok) << linked.error;
        EXPECT_GT(linked.boundaryBits, 0u);
        expectNetlistsEquivalent(mono, linked.netlist,
                                 variant * 17 + 3, 200);
    }
}

TEST(Linker, RandomDesignPartitionEquivalence)
{
    for (uint64_t seed : {2ull, 9ull, 23ull, 31ull}) {
        testutil::RandomDesignSpec spec;
        spec.seed = seed;
        spec.numOps = 70;
        spec.numRegs = 8;
        spec.numMems = 1;
        spec.numScopes = 2;
        rtl::Design design = testutil::makeRandomDesign(spec);
        MappedNetlist mono = synth::techMap(design);

        synth::MapOptions s_opts, p_opts;
        s_opts.excludePrefixes = {"sub0/"};
        p_opts.includePrefixes = {"sub0/"};
        MappedNetlist part_s = synth::techMap(design, s_opts);
        MappedNetlist part_p = synth::techMap(design, p_opts);

        std::vector<toolchain::LinkInput> inputs(2);
        inputs[0].netlist = &part_s;
        inputs[0].boundary = synth::computeBoundary(design, s_opts);
        inputs[1].netlist = &part_p;
        inputs[1].boundary = synth::computeBoundary(design, p_opts);
        toolchain::LinkResult linked = toolchain::link(inputs);
        ASSERT_TRUE(linked.ok) << linked.error;
        expectNetlistsEquivalent(mono, linked.netlist, seed, 100);
    }
}

TEST(Vti, InitialCompileMatchesVendorBehaviour)
{
    rtl::Design design = twoTileSoc(0);
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    toolchain::VendorTool vendor(dev);
    toolchain::CompileResult mono = vendor.compile(design);

    toolchain::Vti::Options opts;
    opts.iteratedModules = {"tile1/"};
    toolchain::Vti vti(dev, opts);
    toolchain::CompileResult vres = vti.compileInitial(design);

    expectNetlistsEquivalent(mono.netlist, vres.netlist, 77, 200);
    EXPECT_FALSE(vres.bitstreamIsPartial);
    // VTI reserves area: its region exists and is on one SLR.
    EXPECT_NE(vres.placement.findRegion("tile1/"), nullptr);
}

TEST(Vti, IncrementalCompileIsCorrectAndCheaper)
{
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    toolchain::Vti::Options opts;
    opts.iteratedModules = {"tile1/"};
    toolchain::Vti vti(dev, opts);

    rtl::Design v0 = twoTileSoc(0);
    toolchain::CompileResult initial = vti.compileInitial(v0);

    rtl::Design v1 = twoTileSoc(1);
    toolchain::CompileResult incr =
        vti.compileIncremental(v1, "tile1/");

    // Correctness: the incrementally linked netlist behaves like a
    // from-scratch compile of the edited design.
    toolchain::VendorTool vendor(dev);
    toolchain::CompileResult fresh = vendor.compile(v1);
    expectNetlistsEquivalent(fresh.netlist, incr.netlist, 4, 200);

    // The bitstream is partial and the modeled time is lower.
    EXPECT_TRUE(incr.bitstreamIsPartial);
    EXPECT_LT(incr.time.synth, initial.time.synth);
    EXPECT_LT(incr.time.bitgen, initial.time.bitgen);

    // Placement stability: the unchanged tile0 register sits at the
    // same location in both compiles (this is what makes billing
    // only the changed region honest).
    auto locs_a = toolchain::buildLogicLocations(
        dev, v0, initial.netlist, initial.placement);
    auto locs_b = toolchain::buildLogicLocations(
        dev, v1, incr.netlist, incr.placement);
    const auto *ra = locs_a.findReg("tile0/acc");
    const auto *rb = locs_b.findReg("tile0/acc");
    ASSERT_NE(ra, nullptr);
    ASSERT_NE(rb, nullptr);
    for (unsigned bit = 0; bit < 8; ++bit) {
        EXPECT_EQ(ra->bits[bit].slr, rb->bits[bit].slr);
        EXPECT_EQ(ra->bits[bit].frame, rb->bits[bit].frame);
        EXPECT_EQ(ra->bits[bit].bit, rb->bits[bit].bit);
    }
}

TEST(Vti, RepeatedIncrementalEditsStayCorrect)
{
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    toolchain::Vti::Options opts;
    opts.iteratedModules = {"tile1/"};
    toolchain::Vti vti(dev, opts);
    vti.compileInitial(twoTileSoc(1));

    for (int variant : {2, 0, 1, 2}) {
        rtl::Design edited = twoTileSoc(variant);
        toolchain::CompileResult incr =
            vti.compileIncremental(edited, "tile1/");
        toolchain::VendorTool vendor(dev);
        toolchain::CompileResult fresh = vendor.compile(edited);
        expectNetlistsEquivalent(fresh.netlist, incr.netlist,
                                 variant + 100, 120);
    }
}

namespace {

/** First-scope partition whose edit ADDS a register (shifting every
 *  later register index — the provenance-staleness regression). */
rtl::Design
firstPartSoc(bool extra_reg)
{
    Builder b("first_part");
    b.pushScope("partA");
    auto a = b.reg("acc", 8, 0);
    Value in = b.input("in", 8);
    b.connect(a, b.add(a.q, in));
    if (extra_reg) {
        auto probe = b.reg("probe", 8, 0);
        b.connect(probe, a.q);
    }
    b.popScope();
    b.pushScope("partB");
    auto c = b.reg("acc", 8, 1);
    b.connect(c, b.bxor(c.q, a.q));
    b.popScope();
    b.output("out", b.add(a.q, c.q));
    return b.finish();
}

} // namespace

TEST(Vti, EditAddingRegistersKeepsProvenanceCorrect)
{
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    toolchain::Vti::Options opts;
    opts.iteratedModules = {"partA/"};
    toolchain::Vti vti(dev, opts);
    vti.compileInitial(firstPartSoc(false));

    rtl::Design edited = firstPartSoc(true);
    toolchain::CompileResult incr =
        vti.compileIncremental(edited, "partA/");

    // partB's register index shifted in the edited design; the
    // cached partition must still map its FF cells to the right
    // name and location.
    auto locs = toolchain::buildLogicLocations(
        dev, edited, incr.netlist, incr.placement);
    const auto *rb = locs.findReg("partB/acc");
    ASSERT_NE(rb, nullptr);
    EXPECT_EQ(rb->width, 8);

    toolchain::VendorTool vendor(dev);
    toolchain::CompileResult fresh = vendor.compile(edited);
    expectNetlistsEquivalent(fresh.netlist, incr.netlist, 42, 200);
}

TEST(CostModel, CongestionDivergesNearFull)
{
    using toolchain::CostModel;
    EXPECT_LT(CostModel::congestion(0.2), CostModel::congestion(0.8));
    EXPECT_LT(CostModel::congestion(0.8), CostModel::congestion(0.97));
}

TEST(CostModel, ParallelMaxIsPerPhase)
{
    toolchain::CompileTime a, b;
    a.synth = 10;
    a.place = 1;
    b.synth = 2;
    b.place = 5;
    auto m = toolchain::CompileTime::parallelMax(a, b);
    EXPECT_DOUBLE_EQ(m.synth, 10);
    EXPECT_DOUBLE_EQ(m.place, 5);
}

TEST(Timing, ReportsPathsAndScopes)
{
    rtl::Design design = twoTileSoc(0);
    MappedNetlist net = synth::techMap(design);
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    fpga::Placement placement = toolchain::place(dev, net);
    auto report = toolchain::analyzeTiming(dev, net, placement, 0.5);
    EXPECT_GT(report.criticalNs, 0.0);
    EXPECT_GT(report.fmaxMhz(), 0.0);
    ASSERT_FALSE(report.topPaths.empty());
    EXPECT_GE(report.topPaths.front().delayNs,
              report.topPaths.back().delayNs);
}

TEST(Timing, CongestionSlowsTheDesign)
{
    rtl::Design design = twoTileSoc(0);
    MappedNetlist net = synth::techMap(design);
    fpga::DeviceSpec dev = fpga::makeTestDevice();
    fpga::Placement placement = toolchain::place(dev, net);
    auto relaxed = toolchain::analyzeTiming(dev, net, placement, 0.2);
    auto congested = toolchain::analyzeTiming(dev, net, placement,
                                              0.95);
    EXPECT_GT(congested.criticalNs, relaxed.criticalNs);
}

TEST(Vti, BoundaryDriftFallsBackToFullRecompile)
{
    // An edit that changes the partition's *interface* (a new
    // cross-boundary consumer) invalidates cached partitions; VTI
    // must detect the drift and fall back to a full recompile while
    // staying correct.
    auto makeDesign = [](bool extra_input) {
        Builder b("drift");
        Value in = b.input("in", 8);
        Value in2 = b.input("in2", 8);
        b.pushScope("tileA");
        auto acc = b.reg("acc", 8, 0);
        Value next = b.add(acc.q, in);
        if (extra_input)
            next = b.bxor(next, in2);  // new boundary crossing
        b.connect(acc, next);
        b.popScope();
        b.output("out", b.bxor(acc.q, in2));
        return b.finish();
    };

    fpga::DeviceSpec dev = fpga::makeTestDevice();
    toolchain::Vti::Options opts;
    opts.iteratedModules = {"tileA/"};
    toolchain::Vti vti(dev, opts);
    vti.compileInitial(makeDesign(false));

    rtl::Design edited = makeDesign(true);
    toolchain::CompileResult incr =
        vti.compileIncremental(edited, "tileA/");

    toolchain::VendorTool vendor(dev);
    toolchain::CompileResult fresh = vendor.compile(edited);
    expectNetlistsEquivalent(fresh.netlist, incr.netlist, 909, 150);
}
