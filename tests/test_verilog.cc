/**
 * @file
 * Verilog front-end tests: table-driven over the on-disk corpus
 * (tests/verilog_corpus) plus targeted unit checks of the
 * lexer/parser/elaborator behaviours the corpus cannot pin down.
 * Accept entries carry a golden elaborated-IR summary — the same
 * shape line zoomie_vparse --summary prints — so a silent change in
 * lowering (an extra mux, a lost node) fails loudly here.
 */

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "verilog/verilog.hh"

using namespace zoomie;

namespace {

std::string
readCorpus(const std::string &relative)
{
    std::string path =
        std::string(ZOOMIE_VCORPUS_DIR) + "/" + relative;
    std::ifstream in(path);
    EXPECT_TRUE(bool(in)) << "cannot read corpus file " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** The golden shape line (mirrors zoomie_vparse's --summary). */
std::string
summarize(const verilog::CompileResult &result)
{
    const rtl::Design &d = *result.design;
    std::ostringstream out;
    out << "top=" << result.top << " nodes=" << d.nodes.size()
        << " regs=" << d.regs.size() << " mems=" << d.mems.size()
        << " inputs=" << d.inputs.size()
        << " outputs=" << d.outputs.size()
        << " clocks=" << d.clocks.size()
        << " state_bits=" << d.stateBits();
    return out.str();
}

verilog::CompileResult
compileText(const std::string &text, const std::string &top = "")
{
    verilog::CompileOptions options;
    options.file = "<test>";
    options.top = top;
    return verilog::compile(text, options);
}

// ---- the accept corpus: golden elaborated-IR summaries ---------------

struct AcceptCase
{
    const char *file;
    const char *golden;
};

const AcceptCase kAcceptCases[] = {
    {"accept/counter.v",
     "top=counter nodes=6 regs=1 mems=0 inputs=0 outputs=1 "
     "clocks=1 state_bits=16"},
    {"accept/counter_enable.v",
     "top=counter nodes=9 regs=1 mems=0 inputs=1 outputs=1 "
     "clocks=1 state_bits=16"},
    {"accept/params.v",
     "top=accum nodes=6 regs=1 mems=0 inputs=0 outputs=1 "
     "clocks=1 state_bits=8"},
    {"accept/mux_ternary.v",
     "top=pick nodes=9 regs=1 mems=0 inputs=3 outputs=1 "
     "clocks=1 state_bits=8"},
    {"accept/concat_slice.v",
     "top=swizzle nodes=13 regs=1 mems=0 inputs=1 outputs=1 "
     "clocks=1 state_bits=16"},
    {"accept/replication.v",
     "top=fill nodes=16 regs=1 mems=0 inputs=1 outputs=1 "
     "clocks=1 state_bits=16"},
    {"accept/reductions.v",
     "top=flags nodes=18 regs=4 mems=0 inputs=1 outputs=1 "
     "clocks=1 state_bits=4"},
    {"accept/fsm_case.v",
     "top=fsm nodes=44 regs=1 mems=0 inputs=2 outputs=2 "
     "clocks=1 state_bits=2"},
    {"accept/always_comb_if.v",
     "top=prio nodes=25 regs=1 mems=0 inputs=1 outputs=1 "
     "clocks=1 state_bits=2"},
    {"accept/memory.v",
     "top=scratch nodes=8 regs=1 mems=1 inputs=4 outputs=1 "
     "clocks=1 state_bits=8"},
    {"accept/fifo.v",
     "top=top nodes=25 regs=2 mems=1 inputs=3 outputs=2 "
     "clocks=1 state_bits=8"},
    {"accept/hierarchy.v",
     "top=pipe nodes=11 regs=2 mems=0 inputs=1 outputs=1 "
     "clocks=1 state_bits=16"},
    {"accept/classic_ports.v",
     "top=legacy nodes=2 regs=1 mems=0 inputs=1 outputs=1 "
     "clocks=1 state_bits=4"},
    {"accept/wide64.v",
     "top=wide nodes=7 regs=1 mems=0 inputs=2 outputs=2 "
     "clocks=1 state_bits=64"},
    {"accept/shift_ops.v",
     "top=shifter nodes=14 regs=1 mems=0 inputs=2 outputs=1 "
     "clocks=1 state_bits=16"},
    {"accept/multi_decl.v",
     "top=multi nodes=10 regs=2 mems=0 inputs=2 outputs=2 "
     "clocks=1 state_bits=16"},
    {"accept/case_default.v",
     "top=decode nodes=30 regs=1 mems=0 inputs=1 outputs=1 "
     "clocks=1 state_bits=8"},
    {"accept/rmw_bits.v",
     "top=bitset nodes=14 regs=1 mems=0 inputs=2 outputs=1 "
     "clocks=1 state_bits=8"},
};

class AcceptCorpus : public testing::TestWithParam<AcceptCase>
{
};

TEST_P(AcceptCorpus, ElaboratesToGoldenShape)
{
    const AcceptCase &c = GetParam();
    verilog::CompileResult result =
        compileText(readCorpus(c.file));
    ASSERT_TRUE(result.ok) << result.renderDiags();
    ASSERT_TRUE(result.design.has_value());
    EXPECT_EQ(summarize(result), c.golden) << c.file;
    // The elaborated IR must satisfy the non-aborting validator:
    // open_source admits designs on this basis.
    EXPECT_TRUE(result.design->check().empty());
    // Registers land under the "mut/" scope the debug server's
    // instrumentation gates.
    for (const rtl::Reg &reg : result.design->regs)
        EXPECT_EQ(reg.name.rfind("mut/", 0), 0u) << reg.name;
}

INSTANTIATE_TEST_SUITE_P(
    VerilogCorpus, AcceptCorpus, testing::ValuesIn(kAcceptCases),
    [](const testing::TestParamInfo<AcceptCase> &info) {
        std::string name = info.param.file;
        name = name.substr(name.find('/') + 1);
        return name.substr(0, name.find('.'));
    });

// ---- the reject corpus: positioned structured diagnostics ------------

struct RejectCase
{
    const char *file;
    /** Substring some error diagnostic must contain. */
    const char *needle;
};

const RejectCase kRejectCases[] = {
    {"reject/syntax_error.v", "expected ';'"},
    {"reject/latch.v", "latch inferred"},
    {"reject/unknown_module.v", "unknown module 'ghost'"},
    {"reject/undeclared.v", "undeclared identifier 'mystery'"},
    {"reject/comb_loop.v", "combinational cycle"},
    {"reject/double_driver.v", "multiple drivers for 'w'"},
    {"reject/width_overflow.v", "exceeds the 64-bit limit"},
    {"reject/xz_literal.v", "x/z digits are not supported"},
    {"reject/negedge.v", "negedge clocks are not supported"},
    {"reject/casez.v", "casez/casex are not supported"},
    {"reject/blocking_in_clocked.v", "nonblocking assignment"},
    {"reject/undriven_output.v", "'q' is never driven"},
    {"reject/ambiguous_top.v", "ambiguous top module"},
    {"reject/recursive_inst.v", "no top module"},
    {"reject/inout_port.v", "inout ports are not supported"},
};

class RejectCorpus : public testing::TestWithParam<RejectCase>
{
};

TEST_P(RejectCorpus, RejectsWithStructuredDiagnostic)
{
    const RejectCase &c = GetParam();
    verilog::CompileResult result =
        compileText(readCorpus(c.file));
    EXPECT_FALSE(result.ok) << c.file;
    EXPECT_TRUE(result.hasErrors()) << c.file;
    bool found = false;
    bool positioned = false;
    for (const verilog::Diag &d : result.diags) {
        if (d.severity != verilog::Diag::Severity::Error)
            continue;
        if (d.message.find(c.needle) != std::string::npos) {
            found = true;
            // Parser/elaborator item errors carry a position;
            // whole-design errors (top selection, comb cycles)
            // legitimately report 0:0.
            positioned = d.line > 0 || d.col > 0 ||
                         std::string(c.needle).find("top") !=
                             std::string::npos ||
                         std::string(c.needle).find("cycle") !=
                             std::string::npos;
        }
    }
    EXPECT_TRUE(found)
        << c.file << ": no error containing \"" << c.needle
        << "\"; got:\n"
        << result.renderDiags();
    EXPECT_TRUE(positioned) << c.file;
}

INSTANTIATE_TEST_SUITE_P(
    VerilogCorpus, RejectCorpus, testing::ValuesIn(kRejectCases),
    [](const testing::TestParamInfo<RejectCase> &info) {
        std::string name = info.param.file;
        name = name.substr(name.find('/') + 1);
        return name.substr(0, name.find('.'));
    });

// ---- targeted unit checks --------------------------------------------

TEST(VerilogFrontend, ExplicitTopSelection)
{
    std::string text = readCorpus("reject/ambiguous_top.v");
    verilog::CompileResult result = compileText(text, "two");
    ASSERT_TRUE(result.ok) << result.renderDiags();
    EXPECT_EQ(result.top, "two");
}

TEST(VerilogFrontend, UnknownTopIsAnError)
{
    verilog::CompileResult result = compileText(
        "module m(input clk); reg r; always @(posedge clk) "
        "r <= r; endmodule",
        "nosuch");
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.renderDiags().find("nosuch"),
              std::string::npos);
}

TEST(VerilogFrontend, ParameterOverrideChangesShape)
{
    const char *text =
        "module box #(parameter W = 4) (input clk, "
        "output [W-1:0] q);\n"
        "  reg [W-1:0] r;\n"
        "  always @(posedge clk) r <= r + 1;\n"
        "  assign q = r;\n"
        "endmodule\n"
        "module top(input clk, output [15:0] q);\n"
        "  box #(.W(16)) b (.clk(clk), .q(q));\n"
        "endmodule\n";
    verilog::CompileResult result = compileText(text);
    ASSERT_TRUE(result.ok) << result.renderDiags();
    EXPECT_EQ(result.design->stateBits(), 16u);
}

TEST(VerilogFrontend, DiagnosticRenderIsGccStyle)
{
    verilog::CompileResult result =
        compileText("module m(\n  input clk,,\n);\nendmodule\n");
    ASSERT_TRUE(result.hasErrors());
    const verilog::Diag &d = result.diags.front();
    EXPECT_EQ(d.file, "<test>");
    EXPECT_GT(d.line, 0);
    std::string rendered = d.render();
    EXPECT_NE(rendered.find("<test>:"), std::string::npos);
    EXPECT_NE(rendered.find("error:"), std::string::npos);
}

TEST(VerilogFrontend, NeverThrowsOnGarbage)
{
    const char *garbage[] = {
        "",
        "}{)(",
        "module",
        "module m",
        "module m(((((",
        "endmodule endmodule",
        "always @(posedge clk)",
        "module m(input clk); always @(posedge clk) begin begin "
        "begin end endmodule",
        "module m; wire [1+:2] x; endmodule",
        "\x01\x02\xff binary trash \x00",
    };
    for (const char *text : garbage) {
        verilog::CompileResult result = compileText(text);
        EXPECT_FALSE(result.ok);
        EXPECT_TRUE(result.hasErrors());
    }
}

TEST(VerilogFrontend, DiagnosticCountIsBounded)
{
    // A pathological input must not produce unbounded output.
    std::string text = "module m(input clk);\n";
    for (int i = 0; i < 500; ++i)
        text += "  assign q" + std::to_string(i) + " = !!!;\n";
    text += "endmodule\n";
    verilog::CompileResult result = compileText(text);
    EXPECT_FALSE(result.ok);
    EXPECT_LE(result.diags.size(), 80u);
}

} // namespace
