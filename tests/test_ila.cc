/**
 * @file
 * Tests for the baseline ILA (the traditional instrument Zoomie
 * replaces) and for Zoomie watchpoints. The ILA tests double as a
 * demonstration of the §2 criticisms: fixed probe lists, bounded
 * capture windows, observation-only debugging.
 */

#include <gtest/gtest.h>

#include "core/ila.hh"
#include "core/zoomie.hh"
#include "rtl/builder.hh"

using namespace zoomie;
using rtl::Builder;
using rtl::Value;

namespace {

/** Counter + a derived wave, both probeable. */
rtl::Design
waveDesign()
{
    Builder b("wave");
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.addLit(count.q, 1));
    auto wave = b.reg("wave", 8, 0);
    b.connect(wave, b.bxor(wave.q, b.slice(count.q, 0, 8)));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    return b.finish();
}

} // namespace

TEST(Ila, CapturesWindowAroundTrigger)
{
    core::IlaOptions ila_opts;
    ila_opts.probes = {"mut/count", "mut/wave"};
    ila_opts.depth = 32;
    ila_opts.postTrigger = 8;
    core::IlaResult ila = core::attachIla(waveDesign(), ila_opts);
    EXPECT_EQ(ila.sampleWidth, 24u);

    // Bring it up through the standard platform (no MUT prefix:
    // the ILA flow has no pause capability — observation only).
    core::PlatformOptions popts;
    popts.instrument.mutPrefix = "";
    popts.instrument.insertPauseBuffers = false;
    auto platform = core::Platform::create(ila.design, popts);
    core::Debugger &dbg = platform->debugger();

    core::ilaArm(dbg, 100);  // trigger when count == 100
    platform->run(200);

    core::IlaCapture capture = core::ilaReadCapture(dbg, ila);
    ASSERT_TRUE(capture.triggered);
    ASSERT_EQ(capture.samples.size(), 32u);

    // The window must contain the trigger value and consecutive
    // counter samples around it.
    bool saw_trigger = false;
    for (size_t i = 0; i + 1 < capture.samples.size(); ++i) {
        if (capture.samples[i][0] == 100)
            saw_trigger = true;
        EXPECT_EQ(capture.samples[i + 1][0],
                  capture.samples[i][0] + 1)
            << "samples not consecutive at " << i;
    }
    EXPECT_TRUE(saw_trigger);
    // Bounded window: roughly postTrigger samples after the hit.
    EXPECT_NEAR(double(capture.samples.back()[0]), 100.0 + 8, 2.0);
}

TEST(Ila, ObservingDifferentSignalsRequiresReinstrumenting)
{
    // The §2.1 pain point, mechanically: a new probe list is a new
    // design (new netlist, new compile) — unlike Zoomie, where any
    // register is readable after the fact.
    core::IlaOptions first;
    first.probes = {"mut/count"};
    core::IlaResult a = core::attachIla(waveDesign(), first);

    core::IlaOptions second;
    second.probes = {"mut/wave"};
    core::IlaResult b = core::attachIla(waveDesign(), second);

    // Different probe sets produce structurally different designs
    // (different sample widths and capture-buffer geometry), so a
    // full recompile is unavoidable.
    EXPECT_NE(a.sampleWidth, b.sampleWidth);
    int buf_a = -1, buf_b = -1;
    for (size_t m = 0; m < a.design.mems.size(); ++m) {
        if (a.design.mems[m].name == "ila/buf")
            buf_a = a.design.mems[m].width;
    }
    for (size_t m = 0; m < b.design.mems.size(); ++m) {
        if (b.design.mems[m].name == "ila/buf")
            buf_b = b.design.mems[m].width;
    }
    EXPECT_NE(buf_a, buf_b);
}

TEST(Watchpoint, PausesOnFirstChange)
{
    // A register that changes rarely: bit 7 of the counter.
    Builder b("wp");
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.addLit(count.q, 1));
    auto rare = b.reg("rare", 1, 0);
    b.connect(rare, b.bit(count.q, 7));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    rtl::Design design = b.finish();

    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "mut/";
    opts.instrument.watchSignals = {"mut/rare"};
    auto platform = core::Platform::create(design, opts);
    core::Debugger &dbg = platform->debugger();

    platform->run(5);
    dbg.setWatchpoint(0, true);
    platform->run(400);
    EXPECT_TRUE(dbg.isPaused());
    // rare flips when count crosses 128 (one cycle later through
    // the register).
    uint64_t count_at_pause = dbg.readRegister("mut/count");
    EXPECT_NEAR(double(count_at_pause), 129.0, 1.0);

    // Disable and resume: no further pauses.
    dbg.setWatchpoint(0, false);
    dbg.resume();
    platform->run(300);
    EXPECT_FALSE(dbg.isPaused());
}

TEST(Watchpoint, ClearValueBreakpointsAlsoClearsWatchpoints)
{
    Builder b("wp2");
    b.pushScope("mut");
    auto count = b.reg("count", 8, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    rtl::Design design = b.finish();

    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "mut/";
    opts.instrument.watchSignals = {"mut/count"};
    auto platform = core::Platform::create(design, opts);
    core::Debugger &dbg = platform->debugger();

    dbg.setWatchpoint(0, true);
    dbg.clearValueBreakpoints();
    platform->run(50);
    EXPECT_FALSE(dbg.isPaused());
}
