/**
 * @file
 * Session-scheduler tests: round-robin fairness of time-sliced
 * `run` tasks on a bounded worker pool, admission control beyond
 * the session cap (the typed `busy` error), per-session cycle
 * budgets, idle-session reaping, and clean cancellation on stop().
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "rdp/scheduler.hh"
#include "rdp/server.hh"

using namespace zoomie;
using rdp::Json;

namespace {

std::shared_ptr<rdp::Session>
openCounter(rdp::SessionRegistry &registry)
{
    rdp::SessionConfig config;
    config.design = "counter";
    return registry.create(std::move(config));
}

bool
okField(const Json &msg)
{
    const Json *ok = msg.find("ok");
    return ok && ok->asBool();
}

} // namespace

TEST(RdpScheduler, TwoSessionsShareOneWorkerFairly)
{
    rdp::SessionRegistry registry;
    rdp::SchedulerOptions options;
    options.workers = 1;
    options.quantum = 256;
    rdp::Scheduler scheduler(registry, options);

    auto slow = openCounter(registry);
    auto fast = openCounter(registry);

    // One worker, one long run in flight; a short run submitted
    // afterwards must not wait for the long one to finish —
    // round-robin slices them. 200k cycles is ~780 quanta, the 4k
    // run is 16, so the short run finishes while the long one is
    // still far from done.
    constexpr uint64_t kLongCycles = 200'000;
    constexpr uint64_t kShortCycles = 4'096;

    rdp::Scheduler::RunOutcome long_outcome;
    std::thread long_run([&] {
        long_outcome = scheduler.run(slow, kLongCycles);
    });

    // Wait until the long run demonstrably occupies the worker.
    while (slow->stats().cyclesRun.load() == 0)
        std::this_thread::yield();

    rdp::Scheduler::RunOutcome short_outcome =
        scheduler.run(fast, kShortCycles);
    EXPECT_EQ(short_outcome.cyclesRun, kShortCycles);
    EXPECT_FALSE(short_outcome.cancelled);

    // Fairness: the short run completed while the long run still
    // had most of its quanta left — both sessions' cycle counters
    // advanced concurrently on the single worker.
    uint64_t long_progress = slow->stats().cyclesRun.load();
    EXPECT_GT(long_progress, 0u);
    EXPECT_LT(long_progress, kLongCycles)
        << "short run was starved until the long run finished";
    EXPECT_EQ(fast->stats().cyclesRun.load(), kShortCycles);

    long_run.join();
    EXPECT_EQ(long_outcome.cyclesRun, kLongCycles);
    EXPECT_EQ(slow->stats().cyclesRun.load(), kLongCycles);

    // The devices really advanced (MUT cycle readback).
    EXPECT_EQ(slow->platform().mutCycles(), kLongCycles);
    EXPECT_EQ(fast->platform().mutCycles(), kShortCycles);

    // Metrics populated: the short run was queued behind at least
    // one of the long run's quanta.
    EXPECT_EQ(fast->stats().runRequests.load(), 1u);
    EXPECT_GT(fast->stats().execMicros.load(), 0u);
}

TEST(RdpScheduler, AdmissionControlReturnsTypedBusyError)
{
    rdp::ServerOptions options;
    options.scheduler.maxSessions = 1;
    rdp::Server server(options);

    bool quit = false;
    auto open = [&] {
        auto lines = server.handleLine(
            "{\"cmd\":\"open\",\"design\":\"counter\"}", quit);
        EXPECT_EQ(lines.size(), 1u);
        auto reply = Json::parse(lines.back());
        EXPECT_TRUE(reply);
        return reply ? *reply : Json();
    };

    Json first = open();
    EXPECT_TRUE(okField(first));

    Json refused = open();
    EXPECT_FALSE(okField(refused));
    EXPECT_EQ(refused.find("error")->asString(), "busy");

    // Closing the session frees the slot.
    auto lines = server.handleLine("{\"cmd\":\"close\"}", quit);
    auto closed = Json::parse(lines.back());
    ASSERT_TRUE(closed);
    EXPECT_TRUE(okField(*closed));
    EXPECT_TRUE(okField(open()));
}

TEST(RdpScheduler, CycleBudgetClampsAndThenRefuses)
{
    rdp::SessionRegistry registry;
    rdp::SchedulerOptions options;
    options.workers = 1;
    options.quantum = 64;
    options.cycleBudget = 500;
    rdp::Scheduler scheduler(registry, options);

    auto session = openCounter(registry);

    auto within = scheduler.run(session, 400);
    EXPECT_EQ(within.cyclesRun, 400u);
    EXPECT_FALSE(within.budgetExhausted);

    // Only 100 of the requested 400 cycles remain in the budget.
    auto clamped = scheduler.run(session, 400);
    EXPECT_EQ(clamped.cyclesRun, 100u);
    EXPECT_TRUE(clamped.budgetExhausted);

    // Budget spent: nothing runs.
    auto refused = scheduler.run(session, 10);
    EXPECT_EQ(refused.cyclesRun, 0u);
    EXPECT_TRUE(refused.budgetExhausted);
    EXPECT_EQ(session->platform().mutCycles(), 500u);
}

TEST(RdpScheduler, IdleReaperClosesOnlyIdleSessions)
{
    rdp::SessionRegistry registry;
    rdp::SchedulerOptions options;
    options.workers = 1;
    options.idleTimeoutMs = 20;
    rdp::Scheduler scheduler(registry, options);

    auto idle = openCounter(registry);
    auto busy = openCounter(registry);
    EXPECT_EQ(registry.count(), 2u);

    // Nothing is stale yet.
    EXPECT_EQ(scheduler.reapIdle(), 0u);

    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    // One session stays live: a queued run defers the reaper even
    // if the timestamp is stale.
    busy->stats().pendingRuns.fetch_add(1);

    EXPECT_EQ(scheduler.reapIdle(), 1u);
    EXPECT_EQ(registry.count(), 1u);
    EXPECT_FALSE(registry.find(idle->id()));
    EXPECT_TRUE(registry.find(busy->id()));

    // Once the run drains and the timeout passes again, it goes.
    busy->stats().pendingRuns.fetch_sub(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_EQ(scheduler.reapIdle(), 1u);
    EXPECT_EQ(registry.count(), 0u);
}

TEST(RdpScheduler, StopCancelsBlockedRuns)
{
    rdp::SessionRegistry registry;
    rdp::SchedulerOptions options;
    options.workers = 1;
    options.quantum = 128;
    rdp::Scheduler scheduler(registry, options);

    auto session = openCounter(registry);

    rdp::Scheduler::RunOutcome outcome;
    std::thread runner([&] {
        outcome = scheduler.run(session, 50'000'000);
    });
    while (session->stats().cyclesRun.load() == 0)
        std::this_thread::yield();

    scheduler.stop(); // must not hang with a run in flight
    runner.join();

    EXPECT_TRUE(outcome.cancelled);
    EXPECT_LT(outcome.cyclesRun, 50'000'000u);

    // After stop, new runs are refused as cancelled, not queued.
    auto refused = scheduler.run(session, 100);
    EXPECT_TRUE(refused.cancelled);
    EXPECT_EQ(refused.cyclesRun, 0u);
}
