/**
 * @file
 * Session-scheduler tests: round-robin fairness of time-sliced
 * `run` tasks on a bounded worker pool, admission control beyond
 * the session cap (the typed `busy` error), per-session cycle
 * budgets, idle-session reaping, and clean cancellation on stop().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/bits.hh"
#include "rdp/scheduler.hh"
#include "rdp/server.hh"

using namespace zoomie;
using rdp::Json;

namespace {

std::shared_ptr<rdp::Session>
openCounter(rdp::SessionRegistry &registry)
{
    rdp::SessionConfig config;
    config.design = "counter";
    return registry.create(std::move(config));
}

bool
okField(const Json &msg)
{
    const Json *ok = msg.find("ok");
    return ok && ok->asBool();
}

} // namespace

TEST(RdpScheduler, TwoSessionsShareOneWorkerFairly)
{
    rdp::SessionRegistry registry;
    rdp::SchedulerOptions options;
    options.workers = 1;
    options.quantum = 256;
    rdp::Scheduler scheduler(registry, options);

    auto slow = openCounter(registry);
    auto fast = openCounter(registry);

    // One worker, one long run in flight; a short run submitted
    // afterwards must not wait for the long one to finish —
    // round-robin slices them. 200k cycles is ~780 quanta, the 4k
    // run is 16, so the short run finishes while the long one is
    // still far from done.
    constexpr uint64_t kLongCycles = 200'000;
    constexpr uint64_t kShortCycles = 4'096;

    rdp::Scheduler::RunOutcome long_outcome;
    std::thread long_run([&] {
        long_outcome = scheduler.run(slow, kLongCycles);
    });

    // Wait until the long run demonstrably occupies the worker.
    while (slow->stats().cyclesRun.load() == 0)
        std::this_thread::yield();

    rdp::Scheduler::RunOutcome short_outcome =
        scheduler.run(fast, kShortCycles);
    EXPECT_EQ(short_outcome.cyclesRun, kShortCycles);
    EXPECT_FALSE(short_outcome.cancelled);

    // Fairness: the short run completed while the long run still
    // had most of its quanta left — both sessions' cycle counters
    // advanced concurrently on the single worker.
    uint64_t long_progress = slow->stats().cyclesRun.load();
    EXPECT_GT(long_progress, 0u);
    EXPECT_LT(long_progress, kLongCycles)
        << "short run was starved until the long run finished";
    EXPECT_EQ(fast->stats().cyclesRun.load(), kShortCycles);

    long_run.join();
    EXPECT_EQ(long_outcome.cyclesRun, kLongCycles);
    EXPECT_EQ(slow->stats().cyclesRun.load(), kLongCycles);

    // The devices really advanced (MUT cycle readback).
    EXPECT_EQ(slow->backend().mutCycles(), kLongCycles);
    EXPECT_EQ(fast->backend().mutCycles(), kShortCycles);

    // Metrics populated: the short run was queued behind at least
    // one of the long run's quanta.
    EXPECT_EQ(fast->stats().runRequests.load(), 1u);
    EXPECT_GT(fast->stats().execMicros.load(), 0u);
}

TEST(RdpScheduler, AdmissionControlReturnsTypedBusyError)
{
    rdp::ServerOptions options;
    options.scheduler.maxSessions = 1;
    rdp::Server server(options);

    bool quit = false;
    auto open = [&] {
        auto lines = server.handleLine(
            "{\"cmd\":\"open\",\"design\":\"counter\"}", quit);
        EXPECT_EQ(lines.size(), 1u);
        auto reply = Json::parse(lines.back());
        EXPECT_TRUE(reply);
        return reply ? *reply : Json();
    };

    Json first = open();
    EXPECT_TRUE(okField(first));

    Json refused = open();
    EXPECT_FALSE(okField(refused));
    EXPECT_EQ(refused.find("error")->asString(), "busy");

    // Closing the session frees the slot.
    auto lines = server.handleLine("{\"cmd\":\"close\"}", quit);
    auto closed = Json::parse(lines.back());
    ASSERT_TRUE(closed);
    EXPECT_TRUE(okField(*closed));
    EXPECT_TRUE(okField(open()));
}

TEST(RdpScheduler, CycleBudgetClampsAndThenRefuses)
{
    rdp::SessionRegistry registry;
    rdp::SchedulerOptions options;
    options.workers = 1;
    options.quantum = 64;
    options.cycleBudget = 500;
    rdp::Scheduler scheduler(registry, options);

    auto session = openCounter(registry);

    auto within = scheduler.run(session, 400);
    EXPECT_EQ(within.cyclesRun, 400u);
    EXPECT_FALSE(within.budgetExhausted);

    // Only 100 of the requested 400 cycles remain in the budget.
    auto clamped = scheduler.run(session, 400);
    EXPECT_EQ(clamped.cyclesRun, 100u);
    EXPECT_TRUE(clamped.budgetExhausted);

    // Budget spent: nothing runs.
    auto refused = scheduler.run(session, 10);
    EXPECT_EQ(refused.cyclesRun, 0u);
    EXPECT_TRUE(refused.budgetExhausted);
    EXPECT_EQ(session->backend().mutCycles(), 500u);
}

TEST(RdpScheduler, IdleReaperClosesOnlyIdleSessions)
{
    rdp::SessionRegistry registry;
    rdp::SchedulerOptions options;
    options.workers = 1;
    options.idleTimeoutMs = 20;
    rdp::Scheduler scheduler(registry, options);

    auto idle = openCounter(registry);
    auto busy = openCounter(registry);
    EXPECT_EQ(registry.count(), 2u);

    // Nothing is stale yet.
    EXPECT_EQ(scheduler.reapIdle(), 0u);

    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    // One session stays live: a queued run defers the reaper even
    // if the timestamp is stale.
    busy->stats().pendingRuns.fetch_add(1);

    EXPECT_EQ(scheduler.reapIdle(), 1u);
    EXPECT_EQ(registry.count(), 1u);
    EXPECT_FALSE(registry.find(idle->id()));
    EXPECT_TRUE(registry.find(busy->id()));

    // Once the run drains and the timeout passes again, it goes.
    busy->stats().pendingRuns.fetch_sub(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_EQ(scheduler.reapIdle(), 1u);
    EXPECT_EQ(registry.count(), 0u);
}

namespace {

/** Minimal JSONL client for the stress tests below: send one
 *  request, collect events until the matching reply. */
struct StressClient
{
    explicit StressClient(rdp::Transport &end) : transport(end) {}

    Json request(const std::string &line, uint64_t id)
    {
        transport.writeLine(line);
        std::string raw;
        while (transport.readLine(raw)) {
            auto msg = Json::parse(raw);
            if (!msg) {
                ADD_FAILURE() << "unparseable line: " << raw;
                return Json();
            }
            const Json *type = msg->find("type");
            if (type && type->asString() == "reply" &&
                msg->find("id") &&
                msg->find("id")->asU64() == id)
                return *msg;
            events.push_back(*msg);
        }
        ADD_FAILURE() << "pipe closed awaiting reply " << id;
        return Json();
    }

    rdp::Transport &transport;
    std::vector<Json> events;
};

} // namespace

TEST(RdpScheduler, EightStreamingSessionsKeepPerSessionOrder)
{
    // The stress shape from the issue: 8 connections stream traces
    // concurrently through a 2-worker pool. Each client must see
    // its own chunks in order — seq monotone from 0, offsets
    // contiguous — and reassemble a checksum-clean document, no
    // matter how the workers interleave the capture quanta.
    rdp::ServerOptions options;
    options.scheduler.workers = 2;
    options.scheduler.quantum = 16;
    options.traceChunkBytes = 64;
    rdp::Server server(options);

    constexpr int kClients = 8;
    std::vector<std::unique_ptr<rdp::DuplexPipe>> pipes;
    for (int i = 0; i < kClients; ++i)
        pipes.push_back(std::make_unique<rdp::DuplexPipe>());
    std::vector<std::thread> serve_threads;
    for (int i = 0; i < kClients; ++i) {
        rdp::DuplexPipe *pipe = pipes[i].get();
        serve_threads.emplace_back(
            [&server, pipe] { server.serve(pipe->serverEnd()); });
    }

    std::vector<std::string> documents(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
        clients.emplace_back([&, i] {
            StressClient client(pipes[i]->clientEnd());
            Json opened = client.request(
                R"({"cmd":"open","id":1,"design":"counter"})", 1);
            const Json *session = opened.find("session");
            ASSERT_TRUE(session) << opened.encode();
            uint64_t sid = session->asU64();

            // Desynchronise the captures a little.
            char run[96];
            std::snprintf(run, sizeof(run),
                          R"({"cmd":"run","id":2,"session":%llu,"n":%d})",
                          (unsigned long long)sid, 3 + i);
            client.request(run, 2);

            char trace[96];
            std::snprintf(trace, sizeof(trace),
                          R"({"cmd":"trace","id":3,"session":%llu,"n":%d})",
                          (unsigned long long)sid, 24 + i);
            Json reply = client.request(trace, 3);
            const Json *ok = reply.find("ok");
            ASSERT_TRUE(ok && ok->asBool()) << reply.encode();

            // Per-session ordering invariants.
            std::string document;
            uint64_t expect_seq = 0;
            uint64_t done_count = 0;
            std::string checksum;
            for (const Json &event : client.events) {
                const std::string type =
                    event.find("type")->asString();
                if (type == "trace_chunk") {
                    EXPECT_EQ(event.find("session")->asU64(), sid);
                    EXPECT_EQ(event.find("seq")->asU64(),
                              expect_seq++);
                    EXPECT_EQ(event.find("offset")->asU64(),
                              document.size());
                    document += event.find("data")->asString();
                } else if (type == "trace_done") {
                    ++done_count;
                    EXPECT_EQ(event.find("bytes")->asU64(),
                              document.size());
                    checksum = event.find("checksum")->asString();
                }
            }
            EXPECT_GT(expect_seq, 1u) << "expected a multi-chunk "
                                         "stream";
            EXPECT_EQ(done_count, 1u);
            EXPECT_EQ(std::strtoull(checksum.c_str(), nullptr, 16),
                      fnv1a64(document.data(), document.size()));
            documents[i] = document;
        });
    }
    for (std::thread &thread : clients)
        thread.join();
    for (int i = 0; i < kClients; ++i)
        pipes[i]->closeFromClient();
    for (std::thread &thread : serve_threads)
        thread.join();

    // Every client got a real, distinct-length VCD (n differs).
    for (int i = 0; i < kClients; ++i) {
        EXPECT_NE(documents[i].find("$enddefinitions"),
                  std::string::npos)
            << i;
    }
    EXPECT_NE(documents[0].size(), documents[kClients - 1].size());
}

TEST(RdpScheduler, StalledClientOverflowsInsteadOfWedging)
{
    // Backpressure: the client stops reading mid-stream. With a
    // 1-line pipe and a 2-line outbox the capacity chain absorbs a
    // handful of chunks; the rest must be dropped via the typed
    // trace_overflow path — and the server thread must never block
    // on the stalled client inside the trace handler.
    rdp::ServerOptions options;
    options.traceChunkBytes = 16;
    options.outboxCapacity = 2;
    rdp::Server server(options);

    rdp::DuplexPipe pipe(/*clientCapacity=*/1);
    std::thread serve_thread(
        [&] { server.serve(pipe.serverEnd()); });
    rdp::Transport &end = pipe.clientEnd();

    StressClient setup(end);
    Json opened = setup.request(
        R"({"cmd":"open","id":1,"design":"counter"})", 1);
    ASSERT_TRUE(opened.find("ok")->asBool());

    // Send the trace and *do not read*: a 64-sample capture at 16
    // bytes per chunk emits far more chunks than pipe (1) + writer
    // (1) + outbox (2) can hold, so the overflow is deterministic.
    end.writeLine(R"({"cmd":"trace","id":2,"n":64})");

    // Now drain. Everything the outbox accepted arrives, then the
    // overflow event, then the failing reply.
    std::vector<Json> events;
    Json reply;
    std::string raw;
    while (end.readLine(raw)) {
        auto msg = Json::parse(raw);
        ASSERT_TRUE(msg) << raw;
        const Json *type = msg->find("type");
        if (type && type->asString() == "reply") {
            reply = *msg;
            break;
        }
        events.push_back(*msg);
    }

    ASSERT_TRUE(reply.find("ok"));
    EXPECT_FALSE(reply.find("ok")->asBool());
    EXPECT_EQ(reply.find("error")->asString(), "trace-overflow");

    uint64_t chunks = 0;
    uint64_t overflows = 0;
    uint64_t delivered = 0;
    for (const Json &event : events) {
        const std::string type = event.find("type")->asString();
        if (type == "trace_chunk")
            ++chunks;
        if (type == "trace_overflow") {
            ++overflows;
            delivered = event.find("delivered")->asU64();
        }
    }
    ASSERT_EQ(overflows, 1u);
    // Every chunk the outbox accepted before the cut reaches the
    // client once it resumes reading — none vanish silently.
    EXPECT_EQ(chunks, delivered);
    EXPECT_GT(delivered, 0u);

    // The connection is alive and well after the overflow.
    StressClient after(end);
    Json info = after.request(R"({"cmd":"info","id":3})", 3);
    EXPECT_TRUE(info.find("ok")->asBool());

    pipe.closeFromClient();
    serve_thread.join();
}

TEST(RdpScheduler, StopCancelsBlockedRuns)
{
    rdp::SessionRegistry registry;
    rdp::SchedulerOptions options;
    options.workers = 1;
    options.quantum = 128;
    rdp::Scheduler scheduler(registry, options);

    auto session = openCounter(registry);

    rdp::Scheduler::RunOutcome outcome;
    std::thread runner([&] {
        outcome = scheduler.run(session, 50'000'000);
    });
    while (session->stats().cyclesRun.load() == 0)
        std::this_thread::yield();

    scheduler.stop(); // must not hang with a run in flight
    runner.join();

    EXPECT_TRUE(outcome.cancelled);
    EXPECT_LT(outcome.cyclesRun, 50'000'000u);

    // After stop, new runs are refused as cancelled, not queued.
    auto refused = scheduler.run(session, 100);
    EXPECT_TRUE(refused.cancelled);
    EXPECT_EQ(refused.cyclesRun, 0u);
}

/**
 * Regression for the admission TOCTOU: N opens racing at the cap
 * used to all pass the "count < cap" check before any insert
 * landed, overshooting the cap. The check-and-reserve in
 * SessionRegistry::create is now one atomic step, so exactly `cap`
 * opens win no matter how the threads interleave.
 */
TEST(RdpScheduler, ParallelOpensNeverOvershootTheCap)
{
    constexpr size_t kCap = 2;
    constexpr int kThreads = 8;
    for (int round = 0; round < 10; ++round) {
        rdp::SessionRegistry registry;
        registry.setMaxSessions(kCap);

        std::atomic<int> ready{0};
        std::atomic<bool> go{false};
        std::atomic<int> admitted{0};
        std::atomic<int> refused{0};
        std::vector<std::thread> openers;
        for (int t = 0; t < kThreads; ++t) {
            openers.emplace_back([&] {
                ++ready;
                while (!go.load())
                    std::this_thread::yield();
                try {
                    rdp::SessionConfig config;
                    config.design = "counter";
                    registry.create(std::move(config));
                    ++admitted;
                } catch (const rdp::RegistryFull &) {
                    ++refused;
                }
            });
        }
        while (ready.load() < kThreads)
            std::this_thread::yield();
        go = true;
        for (auto &opener : openers)
            opener.join();

        EXPECT_EQ(admitted.load(), int(kCap));
        EXPECT_EQ(refused.load(), kThreads - int(kCap));
        EXPECT_EQ(registry.count(), kCap);
        EXPECT_EQ(registry.admitted(), kCap);
    }
}

/** A bring-up that throws must release its reserved slot. */
TEST(RdpScheduler, FailedBringUpReleasesItsReservedSlot)
{
    rdp::SessionRegistry registry;
    registry.setMaxSessions(1);

    rdp::SessionConfig bogus;
    bogus.design = "no-such-design";
    EXPECT_THROW(registry.create(std::move(bogus)),
                 std::runtime_error);
    EXPECT_EQ(registry.admitted(), 0u);

    // The slot is free again: a valid open succeeds.
    rdp::SessionConfig config;
    config.design = "counter";
    EXPECT_NE(registry.create(std::move(config)), nullptr);
    EXPECT_EQ(registry.admitted(), 1u);
}

/**
 * Regression for the cycle-budget TOCTOU: two runs racing against
 * the same session's budget used to both read the spent counter
 * before either added to it, together executing more cycles than
 * the budget allows. Reservations now go through a CAS loop, so
 * concurrent grants are disjoint and the device never advances
 * past the budget.
 */
TEST(RdpScheduler, ConcurrentRunsNeverOvershootTheBudget)
{
    constexpr uint64_t kBudget = 1'000;
    for (int round = 0; round < 10; ++round) {
        rdp::SessionRegistry registry;
        rdp::SchedulerOptions options;
        options.workers = 2;
        options.quantum = 64;
        options.cycleBudget = kBudget;
        rdp::Scheduler scheduler(registry, options);
        auto session = openCounter(registry);

        // 2 clients x 4 runs x 200 cycles = 1600 requested against
        // a budget of 1000: the grants must sum to exactly 1000.
        std::atomic<uint64_t> executed{0};
        std::atomic<bool> go{false};
        std::vector<std::thread> clients;
        for (int t = 0; t < 2; ++t) {
            clients.emplace_back([&] {
                while (!go.load())
                    std::this_thread::yield();
                for (int i = 0; i < 4; ++i)
                    executed += scheduler
                                    .run(session, 200)
                                    .cyclesRun;
            });
        }
        go = true;
        for (auto &client : clients)
            client.join();

        EXPECT_EQ(executed.load(), kBudget);
        EXPECT_EQ(session->backend().mutCycles(), kBudget);
        EXPECT_EQ(session->stats().cyclesRun.load(), kBudget);

        // And the budget really is spent.
        auto refused = scheduler.run(session, 1);
        EXPECT_EQ(refused.cyclesRun, 0u);
        EXPECT_TRUE(refused.budgetExhausted);
    }
}

/**
 * Regression for the restore-vs-scheduled-run race: a `restore`
 * arriving while runs are queued or executing must preempt them
 * through cancelRuns (epoch bump + ready-queue sweep) and refund
 * every unexecuted cycle reservation through the same CAS path a
 * cancelled run takes. The canceller below does exactly what the
 * wire `restore` handler does — session mutex, cancelRuns, rewind
 * to the genesis snapshot — while two clients hammer runs, so TSan
 * sees the worker/restore interleaving and the budget ledger must
 * balance to the cycle afterwards.
 */
TEST(RdpScheduler, RestorePreemptionRefundsBudgetExactly)
{
    constexpr uint64_t kBudget = 200'000;
    uint64_t total_preempted = 0;
    for (int round = 0; round < 5; ++round) {
        rdp::SessionRegistry registry;
        rdp::SchedulerOptions options;
        options.workers = 2;
        options.quantum = 64;
        options.cycleBudget = kBudget;
        rdp::Scheduler scheduler(registry, options);
        auto session = openCounter(registry);

        std::atomic<uint64_t> preempted{0};
        std::atomic<bool> go{false};
        std::vector<std::thread> clients;
        for (int t = 0; t < 2; ++t) {
            clients.emplace_back([&] {
                while (!go.load())
                    std::this_thread::yield();
                for (int i = 0; i < 3; ++i) {
                    auto outcome = scheduler.run(session, 100'000);
                    if (outcome.preempted)
                        preempted.fetch_add(1);
                }
            });
        }
        std::thread restorer([&] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < 4; ++i) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                std::lock_guard<std::mutex> lock(session->mutex());
                scheduler.cancelRuns(session);
                auto ring = session->snapshots().list();
                EXPECT_FALSE(ring.empty());
                if (!ring.empty())
                    session->snapshots().restore(ring.front().id);
            }
        });
        go = true;
        for (auto &client : clients)
            client.join();
        restorer.join();
        total_preempted += preempted.load();

        // Every preempted or clamped run refunded what it did not
        // execute: the reservation ledger equals the cycles that
        // actually ran.
        uint64_t executed = session->stats().cyclesRun.load();
        EXPECT_LE(executed, kBudget);
        EXPECT_EQ(session->stats().budgetReserved.load(), executed);

        // And the remainder is exactly spendable — nothing leaked,
        // nothing refunded twice.
        auto rest = scheduler.run(session, kBudget);
        EXPECT_EQ(executed + rest.cyclesRun, kBudget);
        auto refused = scheduler.run(session, 1);
        EXPECT_EQ(refused.cyclesRun, 0u);
        EXPECT_TRUE(refused.budgetExhausted);
    }
    // Across the rounds the canceller must actually have caught
    // runs in flight — otherwise this test raced nothing.
    EXPECT_GT(total_preempted, 0u);
}
