/**
 * @file
 * Unit tests for the common utilities: bit manipulation, the
 * deterministic PRNG, table/number formatting and the logging
 * macros' failure behaviour.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"

using namespace zoomie;

TEST(Bits, MaskForWidthCoversFullRange)
{
    EXPECT_EQ(maskForWidth(1), 1u);
    EXPECT_EQ(maskForWidth(8), 0xFFu);
    EXPECT_EQ(maskForWidth(63), 0x7FFFFFFFFFFFFFFFull);
    EXPECT_EQ(maskForWidth(64), ~0ull);
}

TEST(Bits, TruncAndExtract)
{
    EXPECT_EQ(truncToWidth(0x1234, 8), 0x34u);
    EXPECT_EQ(extractBits(0xABCD, 4, 8), 0xBCu);
    EXPECT_EQ(getBit(0b1010, 1), 1u);
    EXPECT_EQ(getBit(0b1010, 2), 0u);
    EXPECT_EQ(setBit(0, 5, true), 32u);
    EXPECT_EQ(setBit(0xFF, 0, false), 0xFEu);
}

TEST(Bits, BitsToAddress)
{
    EXPECT_EQ(bitsToAddress(2), 1u);
    EXPECT_EQ(bitsToAddress(64), 6u);
    EXPECT_EQ(bitsToAddress(65), 7u);
    EXPECT_EQ(bitsToAddress(1024), 10u);
}

TEST(BitsDeath, ZeroWidthPanics)
{
    EXPECT_DEATH(maskForWidth(0), "bad signal width");
    EXPECT_DEATH(maskForWidth(65), "bad signal width");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBelow(17), 17u);
        EXPECT_LE(rng.nextBits(5), 31u);
    }
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng rng(99);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(1, 4);
    EXPECT_NEAR(hits, 2500, 200);
}

TEST(Table, AlignsColumns)
{
    TextTable table("t");
    table.setHeader({"a", "bbbb"});
    table.addRow({"xxxxx", "y"});
    std::ostringstream os;
    table.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("== t =="), std::string::npos);
    EXPECT_NE(text.find("xxxxx"), std::string::npos);
    // Header underline present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(formatCount(1234567), "1,234,567");
    EXPECT_EQ(formatCount(7), "7");
    EXPECT_EQ(formatRatio(18.07), "18.1x");
    EXPECT_EQ(formatPercent(0.9532), "95.32");
    EXPECT_EQ(formatSeconds(0.25), "0.250 s");
    EXPECT_EQ(formatSeconds(90), "1.5 min");
    EXPECT_EQ(formatSeconds(7200), "2.00 h");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom ", 42), "panic: boom 42");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT({ fatal("user error"); },
                ::testing::ExitedWithCode(1), "fatal: user error");
}

TEST(LoggingDeath, PanicIfConditionArms)
{
    int x = 3;
    EXPECT_DEATH(panic_if(x == 3, "x was ", x), "x was 3");
}
