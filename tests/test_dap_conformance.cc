/**
 * @file
 * DAP wire conformance: one golden request/response pair per DAP
 * command the bridge implements, executed against a fresh
 * rdp::Server + dap::Bridge and compared byte-for-byte — sequence
 * numbers, field order, capability set, event payloads. The
 * covered command set is enumerated from Bridge::commandNames(),
 * both ways: a command without a golden row fails the suite, and a
 * row naming an unknown command fails it too (the same contract
 * test_rdp_conformance pins for the JSONL protocol). DAP replies
 * carry no wall-clock fields, so no scrubbing is needed; the only
 * asynchronous row (`continue`) waits for its deterministic
 * breakpoint stop.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dap/bridge.hh"

using namespace zoomie;

namespace {

/** A bridge wired to an in-memory sink with arrival signalling. */
struct BridgeHarness
{
    rdp::Server server;
    std::mutex mutex;
    std::condition_variable arrived;
    std::vector<std::string> out;
    dap::Bridge bridge;

    BridgeHarness()
        : bridge(server,
                 [this](const std::string &body) {
                     {
                         std::lock_guard<std::mutex> lock(mutex);
                         out.push_back(body);
                     }
                     arrived.notify_all();
                 })
    {
    }

    size_t count()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return out.size();
    }

    bool waitForCount(size_t n, int timeoutMs = 10'000)
    {
        std::unique_lock<std::mutex> lock(mutex);
        return arrived.wait_for(
            lock, std::chrono::milliseconds(timeoutMs),
            [&] { return out.size() >= n; });
    }

    std::vector<std::string> snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return out;
    }
};

struct GoldenCase
{
    std::vector<std::string> setup; ///< requests run first
    std::string request;            ///< the golden request
    std::vector<std::string> expect; ///< its messages, in order
};

// Shared setup ladders. Client seqs count 1,2,3,...; the bridge's
// own seq counter ticks once per outgoing message, so each ladder
// leaves it at a known value (noted per ladder).
const std::string kInit =
    R"({"seq":1,"type":"request","command":"initialize","arguments":{"adapterID":"zoomie"}})";
const std::string kLaunch =
    R"({"seq":2,"type":"request","command":"launch","arguments":{"design":"counter"}})";
const std::string kConfigDone =
    R"({"seq":3,"type":"request","command":"configurationDone"})";
const std::string kBreakAt5 =
    R"({"seq":4,"type":"request","command":"setBreakpoints","arguments":{"breakpoints":[{"line":5}]}})";
const std::string kNext =
    R"({"seq":4,"type":"request","command":"next","arguments":{"threadId":1}})";

/** initialize → 2 messages out (response, initialized). */
const std::vector<std::string> SETUP_INIT = {kInit};
/** + launch → 3 messages out. */
const std::vector<std::string> SETUP_LAUNCH = {kInit, kLaunch};
/** + configurationDone → 5 messages out (+stopped entry). */
const std::vector<std::string> SETUP_CONFIG = {kInit, kLaunch,
                                               kConfigDone};
/** + one step to cycle 1 → 7 messages out (+stopped, +response). */
const std::vector<std::string> SETUP_STEPPED = {kInit, kLaunch,
                                                kConfigDone, kNext};

const std::vector<std::pair<std::string, GoldenCase>> &
goldenTable()
{
    static const std::vector<std::pair<std::string, GoldenCase>>
        rows = {
            {"initialize",
             {{},
              kInit,
              {R"({"seq":1,"type":"response","request_seq":1,"success":true,"command":"initialize","body":{"supportsConfigurationDoneRequest":true,"supportsEvaluateForHovers":true,"supportsSetVariable":true,"supportsDataBreakpoints":true,"supportsStepBack":true,"supportsFunctionBreakpoints":false,"supportsConditionalBreakpoints":false,"supportsRestartRequest":false,"supportsTerminateRequest":false}})",
               R"({"seq":2,"type":"event","event":"initialized","body":{}})"}}},
            {"launch",
             {SETUP_INIT,
              kLaunch,
              {R"({"seq":3,"type":"response","request_seq":2,"success":true,"command":"launch","body":{}})"}}},
            {"configurationDone",
             {SETUP_LAUNCH,
              kConfigDone,
              {R"({"seq":4,"type":"response","request_seq":3,"success":true,"command":"configurationDone","body":{}})",
               R"({"seq":5,"type":"event","event":"stopped","body":{"reason":"entry","description":"stopped on entry","threadId":1,"allThreadsStopped":true}})"}}},
            {"setBreakpoints",
             {SETUP_LAUNCH,
              R"({"seq":3,"type":"request","command":"setBreakpoints","arguments":{"breakpoints":[{"line":5}]}})",
              {R"({"seq":4,"type":"response","request_seq":3,"success":true,"command":"setBreakpoints","body":{"breakpoints":[{"verified":true,"line":5}]}})"}}},
            {"setDataBreakpoints",
             {SETUP_LAUNCH,
              R"({"seq":3,"type":"request","command":"setDataBreakpoints","arguments":{"breakpoints":[{"dataId":"mut/count"}]}})",
              {R"({"seq":4,"type":"response","request_seq":3,"success":true,"command":"setDataBreakpoints","body":{"breakpoints":[{"verified":true}]}})"}}},
            {"dataBreakpointInfo",
             {SETUP_LAUNCH,
              R"({"seq":3,"type":"request","command":"dataBreakpointInfo","arguments":{"name":"mut/count"}})",
              {R"({"seq":4,"type":"response","request_seq":3,"success":true,"command":"dataBreakpointInfo","body":{"dataId":"mut/count","description":"stop when mut/count changes","accessTypes":["write"],"canPersist":false}})"}}},
            {"threads",
             {{},
              R"({"seq":1,"type":"request","command":"threads"})",
              {R"({"seq":1,"type":"response","request_seq":1,"success":true,"command":"threads","body":{"threads":[{"id":1,"name":"device"}]}})"}}},
            {"stackTrace",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"stackTrace","arguments":{"threadId":1}})",
              {R"({"seq":6,"type":"response","request_seq":4,"success":true,"command":"stackTrace","body":{"stackFrames":[{"id":1,"name":"counter @ cycle 0","source":{"name":"counter"},"line":0,"column":0}],"totalFrames":1}})"}}},
            {"scopes",
             {{},
              R"({"seq":1,"type":"request","command":"scopes","arguments":{"frameId":1}})",
              {R"({"seq":1,"type":"response","request_seq":1,"success":true,"command":"scopes","body":{"scopes":[{"name":"Registers","variablesReference":1,"expensive":false}]}})"}}},
            {"variables",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"variables","arguments":{"variablesReference":1}})",
              {R"({"seq":6,"type":"response","request_seq":4,"success":true,"command":"variables","body":{"variables":[{"name":"mut/count","value":"0x0","variablesReference":0}]}})"}}},
            {"setVariable",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"setVariable","arguments":{"variablesReference":1,"name":"mut/count","value":"0x2a"}})",
              {R"({"seq":6,"type":"response","request_seq":4,"success":true,"command":"setVariable","body":{"value":"0x2a"}})"}}},
            {"evaluate",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"evaluate","arguments":{"expression":"print mut/count"}})",
              {R"({"seq":6,"type":"response","request_seq":4,"success":true,"command":"evaluate","body":{"result":"0x0","variablesReference":0}})"}}},
            {"continue",
             {{kInit, kLaunch, kConfigDone, kBreakAt5},
              R"({"seq":5,"type":"request","command":"continue","arguments":{"threadId":1}})",
              {R"({"seq":7,"type":"response","request_seq":5,"success":true,"command":"continue","body":{"allThreadsContinued":true}})",
               R"({"seq":8,"type":"event","event":"stopped","body":{"reason":"breakpoint","threadId":1,"allThreadsStopped":true}})"}}},
            {"next",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"next","arguments":{"threadId":1}})",
              {R"({"seq":6,"type":"event","event":"stopped","body":{"reason":"step","threadId":1,"allThreadsStopped":true}})",
               R"({"seq":7,"type":"response","request_seq":4,"success":true,"command":"next","body":{}})"}}},
            {"stepIn",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"stepIn","arguments":{"threadId":1}})",
              {R"({"seq":6,"type":"event","event":"stopped","body":{"reason":"step","threadId":1,"allThreadsStopped":true}})",
               R"({"seq":7,"type":"response","request_seq":4,"success":true,"command":"stepIn","body":{}})"}}},
            {"stepOut",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"stepOut","arguments":{"threadId":1}})",
              {R"({"seq":6,"type":"event","event":"stopped","body":{"reason":"step","threadId":1,"allThreadsStopped":true}})",
               R"({"seq":7,"type":"response","request_seq":4,"success":true,"command":"stepOut","body":{}})"}}},
            {"stepBack",
             {SETUP_STEPPED,
              R"({"seq":5,"type":"request","command":"stepBack","arguments":{"threadId":1}})",
              {R"({"seq":8,"type":"event","event":"stopped","body":{"reason":"step","description":"stepped back to cycle 0","threadId":1,"allThreadsStopped":true}})",
               R"({"seq":9,"type":"response","request_seq":5,"success":true,"command":"stepBack","body":{}})"}}},
            {"reverseContinue",
             {SETUP_STEPPED,
              R"({"seq":5,"type":"request","command":"reverseContinue","arguments":{"threadId":1}})",
              {R"({"seq":8,"type":"event","event":"stopped","body":{"reason":"pause","description":"rewound to cycle 0","threadId":1,"allThreadsStopped":true}})",
               R"({"seq":9,"type":"response","request_seq":5,"success":true,"command":"reverseContinue","body":{"allThreadsContinued":true}})"}}},
            {"pause",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"pause","arguments":{"threadId":1}})",
              {R"({"seq":6,"type":"event","event":"stopped","body":{"reason":"pause","threadId":1,"allThreadsStopped":true}})",
               R"({"seq":7,"type":"response","request_seq":4,"success":true,"command":"pause","body":{}})"}}},
            {"disconnect",
             {SETUP_CONFIG,
              R"({"seq":4,"type":"request","command":"disconnect"})",
              {R"({"seq":6,"type":"response","request_seq":4,"success":true,"command":"disconnect","body":{}})",
               R"({"seq":7,"type":"event","event":"terminated","body":{}})"}}},
        };
    return rows;
}

} // namespace

TEST(DapConformance, CommandNamesAreFullyCovered)
{
    // The coverage contract, in both directions: every DAP command
    // the bridge implements has a golden row, and every row names a
    // command the bridge actually implements.
    std::vector<std::string> names = dap::Bridge::commandNames();
    std::set<std::string> implemented(names.begin(), names.end());
    ASSERT_FALSE(implemented.empty());

    std::set<std::string> covered;
    for (const auto &[name, row] : goldenTable())
        covered.insert(name);

    for (const std::string &name : implemented) {
        EXPECT_TRUE(covered.count(name))
            << "DAP command '" << name
            << "' is implemented but has no conformance row — add "
               "a golden request/response pair";
    }
    for (const std::string &name : covered) {
        EXPECT_TRUE(implemented.count(name))
            << "conformance row '" << name
            << "' names a command the bridge does not implement";
    }
}

TEST(DapConformance, GoldenRequestResponsePairs)
{
    for (const auto &[name, row] : goldenTable()) {
        SCOPED_TRACE("command: " + name);
        // A fresh server and bridge per row keeps rows independent.
        BridgeHarness h;
        for (const std::string &line : row.setup)
            h.bridge.handleMessage(line);
        size_t base = h.count();

        h.bridge.handleMessage(row.request);
        ASSERT_TRUE(h.waitForCount(base + row.expect.size()))
            << "timed out waiting for " << row.expect.size()
            << " messages";
        std::vector<std::string> out = h.snapshot();
        for (size_t i = 0; i < row.expect.size(); ++i)
            EXPECT_EQ(out[base + i], row.expect[i])
                << "message " << i;
    }
}

TEST(DapConformance, UnsupportedCommandGetsTypedFailure)
{
    BridgeHarness h;
    h.bridge.handleMessage(
        R"({"seq":9,"type":"request","command":"restart"})");
    ASSERT_TRUE(h.waitForCount(1));
    EXPECT_EQ(
        h.snapshot()[0],
        R"({"seq":1,"type":"response","request_seq":9,"success":false,"command":"restart","message":"unsupported command 'restart'"})");
}

TEST(DapConformance, NonRequestMessagesAreIgnored)
{
    BridgeHarness h;
    h.bridge.handleMessage(
        R"({"seq":1,"type":"event","event":"stopped"})");
    h.bridge.handleMessage(
        R"({"seq":2,"type":"response","request_seq":1})");
    EXPECT_EQ(h.count(), 0u);
}

TEST(DapConformance, UndecodableMessageYieldsOutputEvent)
{
    BridgeHarness h;
    h.bridge.handleMessage("this is not json");
    ASSERT_TRUE(h.waitForCount(1));
    EXPECT_EQ(
        h.snapshot()[0],
        R"({"seq":1,"type":"event","event":"output","body":{"category":"stderr","output":"dropped an undecodable DAP message\n"}})");
}
