/**
 * @file
 * Tests for the RTL lint engine (src/lint): a firing and a silent
 * fixture per pass, diagnostic fingerprint stability, waiver file
 * parsing/application, the soundness gate on corrupt designs, the
 * Vti pre-compile lint gate, and a regression pinning every
 * built-in design clean modulo the checked-in waiver files.
 */

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "designs/beehive.hh"
#include "designs/cohort.hh"
#include "designs/serv_soc.hh"
#include "designs/tinyrv.hh"
#include "fpga/device_spec.hh"
#include "lint/lint.hh"
#include "rtl/builder.hh"
#include "toolchain/flows.hh"

using namespace zoomie;

namespace {

/** Free-running 16-bit counter (the RDP server's default design). */
rtl::Design
counterDesign()
{
    rtl::Builder b("app");
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    return b.finish();
}

std::vector<uint32_t>
demoProgram()
{
    using namespace designs::rv;
    return {
        addi(1, 0, 0), addi(2, 0, 1),
        add(1, 1, 2),  addi(2, 2, 1),
        sw(1, 0, 0x200), jal(0, -12),
    };
}

lint::Report
runPass(const rtl::Design &design, const std::string &pass)
{
    lint::Options options;
    options.passes = {pass};
    return lint::Linter().run(design, options);
}

/** First diagnostic emitted by @p pass, or nullptr. */
const lint::Diagnostic *
findFrom(const lint::Report &report, const std::string &pass)
{
    for (const auto &d : report.diags)
        if (d.pass == pass)
            return &d;
    return nullptr;
}

bool
hasObject(const lint::Diagnostic &diag, const std::string &name)
{
    for (const auto &o : diag.objects)
        if (o == name)
            return true;
    return false;
}

} // namespace

// ---- pass manager ------------------------------------------------

TEST(Linter, RegistersAllBuiltinPasses)
{
    const std::vector<std::string> expected = {
        "structural", "comb-loop",    "width",
        "undriven",   "unused",       "dead-logic",
        "mem-conflict", "cdc",        "iface",
        "reset-coverage",
    };
    EXPECT_EQ(lint::Linter::passIds(), expected);

    lint::Linter linter;
    for (const auto &id : expected)
        EXPECT_TRUE(linter.hasPass(id)) << id;
    EXPECT_FALSE(linter.hasPass("nosuch"));
    for (const auto &pass : linter.passes())
        EXPECT_STRNE(pass->description(), "");
}

TEST(Linter, UnknownPassIdIsAnErrorFindingNotAPanic)
{
    lint::Options options;
    options.passes = {"bogus", "width"};
    lint::Report report =
        lint::Linter().run(counterDesign(), options);
    const lint::Diagnostic *diag = findFrom(report, "lint");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Error);
    EXPECT_NE(diag->message.find("bogus"), std::string::npos);
}

TEST(Linter, MinSeverityDropsLowerFindings)
{
    // A 4-bit address over a depth-10 memory fires a width warning;
    // raising the floor to Error must drop it.
    rtl::Builder b("w");
    auto addr = b.input("addr", 4);
    auto m = b.mem("m", 8, 10);
    b.output("o", b.memReadAsync(m, addr));
    rtl::Design design = b.finish();

    lint::Options options;
    options.passes = {"width"};
    EXPECT_GE(lint::Linter().run(design, options).warnings(), 1u);

    options.minSeverity = lint::Severity::Error;
    EXPECT_TRUE(lint::Linter().run(design, options).diags.empty());
}

// ---- structural + soundness gate ---------------------------------

TEST(LintStructural, CorruptReferenceGatesUnsafePasses)
{
    rtl::Design design = counterDesign();
    size_t add_node = design.nodes.size();
    for (size_t i = 0; i < design.nodes.size(); ++i)
        if (design.nodes[i].op == rtl::Op::Add)
            add_node = i;
    ASSERT_LT(add_node, design.nodes.size());
    design.nodes[add_node].a = 999999; // dangling operand

    lint::Analysis analysis(design);
    EXPECT_FALSE(analysis.sound());

    lint::Report report = lint::Linter().run(design);
    const lint::Diagnostic *corrupt = findFrom(report, "structural");
    ASSERT_NE(corrupt, nullptr);
    EXPECT_EQ(corrupt->severity, lint::Severity::Error);

    // Reference-unsafe passes must be skipped with a note, and must
    // not have produced findings of their own.
    const lint::Diagnostic *skipped = findFrom(report, "lint");
    ASSERT_NE(skipped, nullptr);
    EXPECT_EQ(skipped->severity, lint::Severity::Note);
    EXPECT_NE(skipped->message.find("skipped"), std::string::npos);
    EXPECT_EQ(findFrom(report, "width"), nullptr);
    EXPECT_EQ(findFrom(report, "unused"), nullptr);
}

TEST(LintStructural, SilentOnValidDesign)
{
    EXPECT_TRUE(
        runPass(counterDesign(), "structural").diags.empty());
}

// ---- comb-loop ---------------------------------------------------

TEST(LintCombLoop, NamesEveryNetOnTheCycle)
{
    rtl::Builder b("loop");
    auto x = b.input("x", 1);
    auto n1 = b.bnot(x);
    auto n2 = b.bnot(n1);
    b.nameNet("a", n1);
    b.nameNet("b", n2);
    b.output("y", n2);
    rtl::Design design = b.peek(); // copy before validation
    design.nodes[n1.id].a = n2.id; // close the loop

    // The non-aborting IR entry points must localize, not panic.
    rtl::Design::TopoResult topo = design.tryTopoOrder();
    EXPECT_FALSE(topo.ok);
    EXPECT_FALSE(topo.cycle.empty());
    EXPECT_FALSE(design.check().empty());

    lint::Report report = runPass(design, "comb-loop");
    const lint::Diagnostic *diag = findFrom(report, "comb-loop");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Error);
    ASSERT_EQ(diag->objects.size(), 2u);
    // Rotated so the lexicographically smallest name leads, which
    // keeps the fingerprint stable however the walk entered.
    EXPECT_EQ(diag->objects[0], "a");
    EXPECT_EQ(diag->objects[1], "b");
    EXPECT_NE(diag->message.find("combinational cycle"),
              std::string::npos);
    EXPECT_NE(diag->message.find("a -> b -> a"), std::string::npos);
}

TEST(LintCombLoop, SilentOnAcyclicDesign)
{
    EXPECT_TRUE(
        runPass(counterDesign(), "comb-loop").diags.empty());
}

// ---- width -------------------------------------------------------

TEST(LintWidth, FlagsOperandWidthMismatch)
{
    rtl::Builder b("w");
    auto x = b.input("x", 8);
    auto y = b.input("y", 8);
    auto s = b.add(x, y);
    b.output("o", s);
    rtl::Design design = b.peek();
    design.nodes[s.id].width = 4; // Builder would have refused this

    lint::Report report = runPass(design, "width");
    const lint::Diagnostic *diag = findFrom(report, "width");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Error);
}

TEST(LintWidth, FlagsAddressWiderThanDepth)
{
    rtl::Builder b("w");
    auto addr = b.input("addr", 4); // 16 slots over depth 10
    auto m = b.mem("m", 8, 10);
    b.output("o", b.memReadAsync(m, addr));
    lint::Report report = runPass(b.finish(), "width");
    const lint::Diagnostic *diag = findFrom(report, "width");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Warning);
    EXPECT_TRUE(hasObject(*diag, "m"));
}

TEST(LintWidth, SilentOnWellFormedDesign)
{
    EXPECT_TRUE(runPass(counterDesign(), "width").diags.empty());
}

// ---- undriven ----------------------------------------------------

TEST(LintUndriven, FlagsUnconnectedRegister)
{
    rtl::Builder b("ud");
    auto r = b.reg("r", 8, 0);
    b.output("o", r.q);
    rtl::Design design = b.peek(); // connect() never called

    lint::Report report = runPass(design, "undriven");
    const lint::Diagnostic *diag = findFrom(report, "undriven");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Error);
    EXPECT_TRUE(hasObject(*diag, "r"));
}

TEST(LintUndriven, SilentOnConnectedDesign)
{
    EXPECT_TRUE(
        runPass(counterDesign(), "undriven").diags.empty());
}

// ---- unused ------------------------------------------------------

TEST(LintUnused, FlagsUnconsumedInput)
{
    rtl::Builder b("uu");
    b.input("ghost", 8); // never consumed
    auto live = b.input("live", 8);
    b.output("o", live);
    lint::Report report = runPass(b.finish(), "unused");
    const lint::Diagnostic *diag = findFrom(report, "unused");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Warning);
    EXPECT_TRUE(hasObject(*diag, "ghost"));
}

TEST(LintUnused, SilentWhenEverythingIsConsumed)
{
    EXPECT_TRUE(runPass(counterDesign(), "unused").diags.empty());
}

// ---- dead-logic --------------------------------------------------

TEST(LintDeadLogic, FlagsConstantMuxSelect)
{
    rtl::Builder b("dl");
    auto x = b.input("x", 8);
    auto y = b.input("y", 8);
    auto m = b.mux(b.lit(1, 1), x, y); // always picks x
    b.output("o", m);
    lint::Report report = runPass(b.finish(), "dead-logic");
    const lint::Diagnostic *diag = findFrom(report, "dead-logic");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Warning);
}

TEST(LintDeadLogic, SilentOnLiveDesign)
{
    EXPECT_TRUE(
        runPass(counterDesign(), "dead-logic").diags.empty());
}

// ---- mem-conflict ------------------------------------------------

TEST(LintMemConflict, FlagsUnprovenWriteWritePair)
{
    rtl::Builder b("mc");
    auto addr = b.input("addr", 4);
    auto din = b.input("din", 8);
    auto en1 = b.input("en1", 1);
    auto en2 = b.input("en2", 1);
    auto m = b.mem("m", 8, 16);
    b.memWrite(m, addr, din, en1);
    b.memWrite(m, addr, din, en2);
    b.output("o", b.memReadAsync(m, addr));
    lint::Report report = runPass(b.finish(), "mem-conflict");
    const lint::Diagnostic *diag = findFrom(report, "mem-conflict");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Warning);
    EXPECT_TRUE(hasObject(*diag, "m"));
}

TEST(LintMemConflict, SilentWhenEnablesAreComplementary)
{
    rtl::Builder b("mc");
    auto addr = b.input("addr", 4);
    auto din = b.input("din", 8);
    auto en1 = b.input("en1", 1);
    auto m = b.mem("m", 8, 16);
    b.memWrite(m, addr, din, en1);
    b.memWrite(m, addr, din, b.lnot(en1));
    b.output("o", b.memReadAsync(m, addr));
    EXPECT_TRUE(
        runPass(b.finish(), "mem-conflict").diags.empty());
}

// ---- cdc ---------------------------------------------------------

TEST(LintCdc, FlagsUnsynchronizedCrossingButNotSyncChain)
{
    rtl::Builder b("cdc");
    uint8_t clkb = b.addClock("clkb");
    auto src = b.reg("src", 1, 0);
    b.connect(src, b.bnot(src.q));
    // Crossing through combinational logic: a real hazard.
    auto bad = b.reg("bad", 1, 0, clkb);
    b.connect(bad, b.bnot(src.q));
    // Canonical two-flop synchronizer: recognized, demoted to note.
    auto s1 = b.reg("sync1", 1, 0, clkb);
    b.connect(s1, src.q);
    auto s2 = b.reg("sync2", 1, 0, clkb);
    b.connect(s2, s1.q);
    b.output("o", s2.q);
    b.output("p", bad.q);

    lint::Report report = runPass(b.finish(), "cdc");
    EXPECT_EQ(report.warnings(), 1u);
    EXPECT_EQ(report.notes(), 1u);
    bool warned_bad = false, noted_sync = false;
    for (const auto &d : report.diags) {
        if (d.severity == lint::Severity::Warning)
            warned_bad = hasObject(d, "bad");
        if (d.severity == lint::Severity::Note)
            noted_sync = hasObject(d, "sync1");
    }
    EXPECT_TRUE(warned_bad);
    EXPECT_TRUE(noted_sync);
}

TEST(LintCdc, TriviallySilentOnSingleClockDesign)
{
    EXPECT_TRUE(runPass(counterDesign(), "cdc").diags.empty());
}

// ---- iface -------------------------------------------------------

TEST(LintIface, FlagsIrrevocableValidDependingOnOwnReady)
{
    rtl::Builder b("if");
    auto ready = b.input("ready", 1);
    auto data = b.input("data", 8);
    auto valid = b.lnot(ready); // comb dependence: protocol break
    b.declareIface("tx", rtl::IfaceDir::Out, valid, ready, {data},
                   /*irrevocable=*/true);
    b.output("v", valid);
    lint::Report report = runPass(b.finish(), "iface");
    const lint::Diagnostic *diag = findFrom(report, "iface");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Error);
    EXPECT_TRUE(hasObject(*diag, "tx"));
}

TEST(LintIface, SilentWhenValidIsRegistered)
{
    rtl::Builder b("if");
    auto ready = b.input("ready", 1);
    auto data = b.input("data", 8);
    auto vreg = b.reg("vreg", 1, 0);
    b.connect(vreg, b.lnot(ready));
    b.declareIface("tx", rtl::IfaceDir::Out, vreg.q, ready, {data},
                   /*irrevocable=*/true);
    b.output("v", vreg.q);
    EXPECT_TRUE(runPass(b.finish(), "iface").diags.empty());
}

// ---- reset-coverage ----------------------------------------------

TEST(LintResetCoverage, FlagsUnresetRegisterFeedingControl)
{
    rtl::Builder b("rc");
    auto rst = b.input("rst", 1);
    auto a = b.reg("a", 8, 0);
    b.connect(a, b.addLit(a.q, 1));
    b.resetTo(a, rst, 0); // establishes a reset discipline
    auto ctrl = b.reg("ctrl", 1, 0); // unreset, steers a mux
    b.connect(ctrl, b.bnot(ctrl.q));
    b.output("o", b.mux(ctrl.q, a.q, b.lit(0, 8)));

    lint::Report report = runPass(b.finish(), "reset-coverage");
    const lint::Diagnostic *diag =
        findFrom(report, "reset-coverage");
    ASSERT_NE(diag, nullptr);
    EXPECT_EQ(diag->severity, lint::Severity::Warning);
    EXPECT_TRUE(hasObject(*diag, "ctrl"));
}

TEST(LintResetCoverage, SilentWhenDesignDeclaresNoResets)
{
    EXPECT_TRUE(
        runPass(counterDesign(), "reset-coverage").diags.empty());
}

// ---- analysis ----------------------------------------------------

TEST(LintAnalysis, ConstantPropagationAndNaming)
{
    rtl::Builder b("an");
    auto c = b.add(b.lit(2, 8), b.lit(3, 8));
    auto x = b.input("x", 8);
    auto s = b.add(x, c);
    b.nameNet("sum", s);
    b.output("o", s);
    rtl::Design design = b.finish();

    lint::Analysis analysis(design);
    EXPECT_TRUE(analysis.sound());
    ASSERT_TRUE(analysis.constOf(c.id).has_value());
    EXPECT_EQ(*analysis.constOf(c.id), 5u);
    EXPECT_FALSE(analysis.constOf(s.id).has_value());
    EXPECT_EQ(analysis.netName(s.id), "sum");
    EXPECT_EQ(analysis.netName(x.id), "x");
    EXPECT_TRUE(analysis.combDependsOn(s.id, x.id));
    EXPECT_FALSE(analysis.combDependsOn(c.id, x.id));
    EXPECT_EQ(analysis.useCount(s.id), 1u); // the output port
}

TEST(LintAnalysis, IrAccessorsAreTotalOnBadIds)
{
    rtl::Design design = counterDesign();
    EXPECT_EQ(design.widthOf(rtl::kNoNet), 0u);
    EXPECT_EQ(design.widthOf(design.nodes.size() + 7), 0u);
    EXPECT_FALSE(design.validNet(rtl::kNoNet));
    EXPECT_TRUE(design.validNet(0));
    EXPECT_EQ(design.findReg("nosuch"), -1);
    EXPECT_EQ(design.findNet("nosuch"), rtl::kNoNet);
    EXPECT_TRUE(design.check().empty());
}

// ---- fingerprints + waivers --------------------------------------

TEST(LintFingerprint, StableAcrossRunsAndWellFormed)
{
    rtl::Design design = designs::buildServSoc({});
    lint::Report a = lint::Linter().run(design);
    lint::Report b = lint::Linter().run(design);
    ASSERT_EQ(a.diags.size(), b.diags.size());
    for (size_t i = 0; i < a.diags.size(); ++i) {
        EXPECT_EQ(a.diags[i].fingerprint, b.diags[i].fingerprint);
        ASSERT_EQ(a.diags[i].fingerprint.size(), 16u);
        for (char ch : a.diags[i].fingerprint)
            EXPECT_TRUE((ch >= '0' && ch <= '9') ||
                        (ch >= 'a' && ch <= 'f'))
                << a.diags[i].fingerprint;
    }
}

TEST(LintWaivers, ParseSerializeRoundTrip)
{
    const std::string text =
        "# header comment\n"
        "\n"
        "0123456789abcdef width  # a pinned finding\n"
        "fedcba9876543210\n";
    lint::WaiverSet set;
    std::string error;
    ASSERT_TRUE(lint::WaiverSet::parse(text, set, &error)) << error;
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.entries()[0].fingerprint, "0123456789abcdef");
    EXPECT_EQ(set.entries()[0].pass, "width");
    EXPECT_EQ(set.entries()[1].pass, "");

    lint::WaiverSet again;
    ASSERT_TRUE(
        lint::WaiverSet::parse(set.serialize(), again, &error))
        << error;
    EXPECT_EQ(again.size(), set.size());
}

TEST(LintWaivers, RejectsMalformedLinesWithLineNumber)
{
    lint::WaiverSet set;
    std::string error;
    EXPECT_FALSE(
        lint::WaiverSet::parse("# ok\nnot-a-fingerprint\n", set,
                               &error));
    EXPECT_NE(error.find("2"), std::string::npos) << error;
}

TEST(LintWaivers, ApplyWaivesMatchesAndReportsStaleEntries)
{
    // Real finding: 4-bit address over a depth-10 memory.
    rtl::Builder b("wv");
    auto addr = b.input("addr", 4);
    auto m = b.mem("m", 8, 10);
    b.output("o", b.memReadAsync(m, addr));
    rtl::Design design = b.finish();

    lint::Report probe = runPass(design, "width");
    ASSERT_GE(probe.diags.size(), 1u);
    const std::string fp = probe.diags[0].fingerprint;

    lint::Options options;
    options.passes = {"width"};
    options.waivers.add({fp, "width", "known narrow memory"});
    options.waivers.add({"0000000000000000", "", "stale"});
    lint::Report report = lint::Linter().run(design, options);

    EXPECT_TRUE(report.clean());
    const lint::Diagnostic *waived = findFrom(report, "width");
    ASSERT_NE(waived, nullptr);
    EXPECT_TRUE(waived->waived);
    // The stale entry surfaces as a note so checked-in waiver
    // files cannot silently rot.
    const lint::Diagnostic *stale = findFrom(report, "lint");
    ASSERT_NE(stale, nullptr);
    EXPECT_EQ(stale->severity, lint::Severity::Note);
    EXPECT_NE(stale->message.find("0000000000000000"),
              std::string::npos);
}

TEST(LintWaivers, PassRestrictionMustMatch)
{
    rtl::Builder b("wv");
    auto addr = b.input("addr", 4);
    auto m = b.mem("m", 8, 10);
    b.output("o", b.memReadAsync(m, addr));
    rtl::Design design = b.finish();
    const std::string fp =
        runPass(design, "width").diags[0].fingerprint;

    lint::Options options;
    options.passes = {"width"};
    options.reportUnusedWaivers = false;
    options.waivers.add({fp, "cdc", "wrong pass"});
    lint::Report report = lint::Linter().run(design, options);
    const lint::Diagnostic *diag = findFrom(report, "width");
    ASSERT_NE(diag, nullptr);
    EXPECT_FALSE(diag->waived);
    EXPECT_FALSE(report.clean());
}

// ---- built-in design regression ----------------------------------

TEST(LintRegression, BuiltinDesignsLintCleanModuloWaivers)
{
    struct Entry
    {
        std::string key;
        rtl::Design design;
    };
    const std::vector<Entry> entries = {
        {"counter", counterDesign()},
        {"tinyrv", designs::buildTinyRv(demoProgram())},
        {"serv_soc", designs::buildServSoc({})},
        {"cohort", designs::buildCohortAccel({})},
        {"beehive", designs::buildBeehive({})},
    };
    for (const auto &entry : entries) {
        lint::Options options;
        const std::string path = std::string(ZOOMIE_WAIVER_DIR) +
                                 "/" + entry.key + ".waive";
        if (std::ifstream(path).good()) {
            std::string error;
            ASSERT_TRUE(lint::WaiverSet::load(
                path, options.waivers, &error))
                << path << ": " << error;
        }
        lint::Report report =
            lint::Linter().run(entry.design, options);
        EXPECT_TRUE(report.clean())
            << entry.key << " is not lint-clean:\n"
            << report.renderText(true);
        // A stale waiver is a note finding from pass "lint".
        EXPECT_EQ(findFrom(report, "lint"), nullptr)
            << entry.key << " has stale waivers:\n"
            << report.renderText(true);
    }
}

TEST(LintRegression, ServSocWaiversPinRealFindings)
{
    lint::Report report =
        lint::Linter().run(designs::buildServSoc({}));
    // The two known width findings must still exist (else the
    // checked-in waiver file has rotted) and be warnings.
    EXPECT_EQ(report.warnings(), 2u);
    EXPECT_EQ(report.errors(), 0u);
}

// ---- toolchain gate ----------------------------------------------

TEST(LintGate, VtiRefusesDesignWithErrorFindings)
{
    rtl::Builder b("gate");
    auto x = b.input("x", 8);
    auto y = b.input("y", 8);
    auto s = b.add(x, y);
    b.output("o", s);
    rtl::Design design = b.peek();
    design.nodes[s.id].width = 4; // width error finding

    toolchain::Vti::Options opts;
    opts.lintBeforeCompile = true;
    toolchain::Vti vti(fpga::makeTestDevice(), opts);
    try {
        vti.compileInitial(design);
        FAIL() << "lint gate did not fire";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("lint gate"),
                  std::string::npos);
    }
}

TEST(LintGate, VtiCompilesCleanDesignWithGateEnabled)
{
    toolchain::Vti::Options opts;
    opts.lintBeforeCompile = true;
    opts.iteratedModules = {"mut/"};
    toolchain::Vti vti(fpga::makeTestDevice(), opts);
    toolchain::CompileResult result =
        vti.compileInitial(counterDesign());
    EXPECT_FALSE(result.bitstream.empty());
}
