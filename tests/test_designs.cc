/**
 * @file
 * Behavioural tests for the evaluation designs: TinyRV executes
 * programs (arithmetic, branches, memory, CSRs, nested exceptions),
 * the Cohort accelerator completes when fixed and hangs with the
 * paper's TLB bug, BeehiveLite routes and drops packets, and the
 * ServLite core / SoC have the expected synthesized shape.
 */

#include <gtest/gtest.h>

#include "designs/beehive.hh"
#include "designs/cohort.hh"
#include "designs/serv_soc.hh"
#include "designs/tinyrv.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"
#include "synth/techmap.hh"

using namespace zoomie;
using namespace zoomie::designs;

// ---- TinyRV ------------------------------------------------------------

namespace {

/** Run until `retired` has pulsed @p n times (with a cycle cap). */
void
runInstructions(sim::Simulator &sim, unsigned n,
                unsigned max_cycles = 20000)
{
    unsigned retired = 0;
    for (unsigned c = 0; c < max_cycles && retired < n; ++c) {
        retired += sim.peek("retired");
        sim.step();
    }
    ASSERT_GE(retired, n) << "program did not retire " << n
                          << " instructions";
}

} // namespace

TEST(TinyRv, ArithmeticAndRegisterFile)
{
    using namespace rv;
    std::vector<uint32_t> prog = {
        addi(1, 0, 5),      // x1 = 5
        addi(2, 0, 7),      // x2 = 7
        add(3, 1, 2),       // x3 = 12
        sub(4, 2, 1),       // x4 = 2
        xor_(5, 1, 2),      // x5 = 2
        slli(6, 1, 3),      // x6 = 40
        sw(3, 0, 0x100),    // mem[0x40] = 12
        jal(0, 0),          // spin
    };
    rtl::Design d = buildTinyRv(prog);
    sim::Simulator sim(d);
    runInstructions(sim, 8);
    EXPECT_EQ(sim.memWord(0, 0x40), 12u);
}

TEST(TinyRv, BranchLoopComputesSum)
{
    using namespace rv;
    // sum = 1 + 2 + ... + 10, stored at word 0x80.
    std::vector<uint32_t> prog = {
        addi(1, 0, 0),        // x1 = sum
        addi(2, 0, 1),        // x2 = i
        addi(3, 0, 11),       // x3 = bound
        // loop:
        add(1, 1, 2),         // sum += i
        addi(2, 2, 1),        // i++
        bne(2, 3, -8),        // while i != 11
        sw(1, 0, 0x200),      // mem[0x80] = 55
        jal(0, 0),
    };
    rtl::Design d = buildTinyRv(prog);
    sim::Simulator sim(d);
    runInstructions(sim, 3 + 3 * 10 + 2);
    EXPECT_EQ(sim.memWord(0, 0x80), 55u);
}

TEST(TinyRv, LoadAfterStore)
{
    using namespace rv;
    std::vector<uint32_t> prog = {
        addi(1, 0, 99),
        sw(1, 0, 0x100),
        lw(2, 0, 0x100),
        add(3, 2, 2),        // x3 = 198
        sw(3, 0, 0x104),
        jal(0, 0),
    };
    rtl::Design d = buildTinyRv(prog);
    sim::Simulator sim(d);
    runInstructions(sim, 6);
    EXPECT_EQ(sim.memWord(0, 0x41), 198u);
}

TEST(TinyRv, EcallTrapsAndMretReturns)
{
    using namespace rv;
    // Handler at 0x80 (default mtvec): mark and mret.
    std::vector<uint32_t> prog(64, rv::addi(0, 0, 0));
    prog[0] = addi(1, 0, 1);
    prog[1] = ecall();
    prog[2] = addi(2, 0, 2);      // after return
    prog[3] = sw(2, 0, 0x100);
    prog[4] = jal(0, 0);
    // handler at word 0x80/4 = 32:
    prog[32] = addi(3, 0, 77);
    prog[33] = csrrs(4, kCsrMepc, 0);   // x4 = mepc
    prog[34] = addi(4, 4, 4);           // skip the ecall
    prog[35] = csrrw(0, kCsrMepc, 4);
    prog[36] = mret();

    rtl::Design d = buildTinyRv(prog);
    sim::Simulator sim(d);
    runInstructions(sim, 10);
    EXPECT_EQ(sim.regByName("cpu/mcause"),
              uint32_t(TrapCause::EnvCall));
    EXPECT_EQ(sim.memWord(0, 0x40), 2u);
    // After mret, MIE is restored.
    EXPECT_EQ(sim.regByName("cpu/mstatus_mie"), 1u);
}

TEST(TinyRv, BadMtvecCausesNestedExceptionLoop)
{
    using namespace rv;
    // §5.6: point mtvec at an invalid address and trap.
    std::vector<uint32_t> prog = {
        lui(2, 0x5),                 // x2 = 0x5000 (out of range)
        csrrw(0, kCsrMtvec, 2),
        ecall(),
    };
    rtl::Design d = buildTinyRv(prog);
    sim::Simulator sim(d);
    sim.run(200);
    // The CPU is in the double-trap state: executing at mtvec with
    // exceptions on the exception path.
    EXPECT_EQ(sim.regByName("cpu/pc"), 0x5000u);
    EXPECT_EQ(sim.regByName("cpu/mepc"), 0x5000u);
    EXPECT_EQ(sim.regByName("cpu/mcause"),
              uint32_t(TrapCause::InstrAccessFault));
    EXPECT_EQ(sim.regByName("cpu/mstatus_mie"), 0u);
    EXPECT_EQ(sim.regByName("cpu/mstatus_mpie"), 0u);
}

TEST(TinyRv, IllegalInstructionTraps)
{
    std::vector<uint32_t> prog = {0xFFFFFFFFu};
    rtl::Design d = buildTinyRv(prog);
    sim::Simulator sim(d);
    sim.run(10);
    EXPECT_EQ(sim.regByName("cpu/mcause"),
              uint32_t(TrapCause::IllegalInstr));
}

// ---- Cohort -------------------------------------------------------------

TEST(Cohort, FixedAcceleratorCompletesWithCorrectSum)
{
    CohortConfig config;
    config.elements = 24;
    config.fixTlbBug = true;
    rtl::Design d = buildCohortAccel(config);
    sim::Simulator sim(d);
    sim.poke("accel/result_ready", 1);
    unsigned cycles = 0;
    while (sim.peek("done") == 0 && cycles < 5000) {
        sim.step();
        ++cycles;
    }
    ASSERT_EQ(sim.peek("done"), 1u) << "fixed accelerator hung";
    // sum of dram[0..23] = 1+2+...+24.
    EXPECT_EQ(sim.peek("sum"), 24u * 25u / 2u);
}

TEST(Cohort, BuggyAcceleratorHangsPartWay)
{
    CohortConfig config;
    config.elements = 24;
    config.fixTlbBug = false;
    rtl::Design d = buildCohortAccel(config);
    sim::Simulator sim(d);
    sim.poke("accel/result_ready", 1);
    sim.run(20000);
    EXPECT_EQ(sim.peek("done"), 0u)
        << "expected the seeded TLB bug to hang the accelerator";
    // Partial progress before the hang (§5.5: "return part of the
    // result before hanging").
    EXPECT_GT(sim.peek("count"), 0u);
    EXPECT_LT(sim.peek("count"), 24u);
}

// ---- Beehive --------------------------------------------------------------

TEST(Beehive, RoutesPacketsEndToEnd)
{
    rtl::Design d = buildBeehive({});
    sim::Simulator sim(d);
    sim.poke("tx_ready", 1);
    sim.poke("rx_valid", 0);

    auto sendPacket = [&](uint32_t dst, uint32_t payload) {
        sim.poke("rx_data", (dst << 24) | (payload & 0xFFFFFF));
        sim.poke("rx_valid", 1);
        sim.step();
        sim.poke("rx_valid", 0);
        for (int i = 0; i < 6; ++i)
            sim.step();
    };

    sendPacket(2, 0xABC);
    sendPacket(5, 0xDEF);
    EXPECT_EQ(sim.peek("delivered"), 2u);
    EXPECT_EQ(sim.peek("rx_dropped"), 0u);
    EXPECT_EQ(sim.peek("route_err"), 0u);
    // Routing table: port = (dst * 5 + 3) & 0xF.
    uint32_t out = static_cast<uint32_t>(sim.peek("tx_data"));
    EXPECT_EQ(out >> 24, (5u * 5 + 3) & 0xFu);
    EXPECT_EQ(out & 0xFFFFFF, 0xDEFu);
}

TEST(Beehive, PoisonPacketSetsRouteError)
{
    rtl::Design d = buildBeehive({});
    sim::Simulator sim(d);
    sim.poke("tx_ready", 1);
    sim.poke("rx_data", 0xFF000123u);
    sim.poke("rx_valid", 1);
    sim.step();
    sim.poke("rx_valid", 0);
    sim.run(8);
    EXPECT_EQ(sim.peek("route_err"), 1u);
}

TEST(Beehive, QueueDropsWhenBackpressured)
{
    rtl::Design d = buildBeehive({});
    sim::Simulator sim(d);
    sim.poke("tx_ready", 0);  // stall the stack
    sim.poke("rx_valid", 1);
    for (uint32_t i = 0; i < 20; ++i) {
        sim.poke("rx_data", i);
        sim.step();
    }
    EXPECT_GT(sim.peek("rx_dropped"), 0u);
    sim.poke("rx_valid", 0);
    sim.poke("tx_ready", 1);
    sim.run(60);
    // The frames that were queued still flow out.
    EXPECT_GT(sim.peek("delivered"), 0u);
}

// ---- ServLite / SoC ---------------------------------------------------------

TEST(ServSoc, CoreHasServLikeFootprint)
{
    rtl::Builder b("one_core");
    rtl::Value rdata = b.input("rdata", 32);
    rtl::Value grant = b.input("grant", 1);
    rtl::Value ready = b.input("ready", 1);
    b.pushScope("core0");
    auto ports = buildServLite(b, rdata, grant, ready, 42);
    b.popScope();
    b.output("res", ports.result);
    b.output("req", ports.memReq);
    rtl::Design d = b.finish();

    auto net = synth::techMap(d);
    auto totals = net.totals();
    // SERV-like: a few hundred LUTs/FFs and a 10-LUT register file.
    EXPECT_GT(totals.luts, 50u);
    EXPECT_LT(totals.luts, 400u);
    EXPECT_GT(totals.ffs, 150u);
    EXPECT_LT(totals.ffs, 300u);
    EXPECT_EQ(totals.lutramLuts, 10u);
}

TEST(ServSoc, SmallSocElaboratesAndRuns)
{
    ServSocConfig config;
    config.cores = 4;
    config.coresPerCluster = 2;
    config.clusterBrams = 1;
    config.l2Brams = 2;
    rtl::Design d = buildServSoc(config);
    sim::Simulator sim(d);
    sim.run(300);
    // The SoC is alive: the checksum ring has mixed in core output.
    EXPECT_EQ(d.findReg("cluster0/core0/pc") >= 0, true);
    EXPECT_EQ(servCoreScope(config, 3), "cluster1/core1/");
}

TEST(ServSoc, ResourceCountsScaleWithCores)
{
    ServSocConfig small;
    small.cores = 2;
    small.coresPerCluster = 2;
    small.clusterBrams = 1;
    small.l2Brams = 0;
    ServSocConfig big = small;
    big.cores = 6;
    big.coresPerCluster = 2;

    auto net_s = synth::techMap(buildServSoc(small));
    auto net_b = synth::techMap(buildServSoc(big));
    EXPECT_GT(net_b.totals().luts, 2 * net_s.totals().luts);
    EXPECT_GT(net_b.totals().ffs, 2 * net_s.totals().ffs);
    EXPECT_EQ(net_b.totals().lutramLuts, 60u);  // 10 per core
}
