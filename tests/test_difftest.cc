/**
 * @file
 * The differential-testing harness under test — and, through it,
 * the backend-agreement claim itself. Seeded sweeps drive the
 * fabric and interpreter backends through identical wire-command
 * sequences over every checked-in design and a slice of the
 * Verilog corpus, requiring bit-identical normalized output at
 * every step and equal register state at every quiescent point.
 * A planted fault (the executor skews `force` values on one side)
 * must be detected, shrunk to a handful of commands, and encoded
 * as a replayable JSONL repro.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "difftest/difftest.hh"

using namespace zoomie;
using difftest::GeneratorOptions;
using difftest::LockstepOptions;
using difftest::Vocabulary;

namespace {

LockstepOptions
pairedOptions()
{
    LockstepOptions options;
    // Small slots/budget keep hostile-but-valid requests cheap;
    // identical on both sides, so budget errors stay symmetric.
    options.server.scheduler.maxSessions = 4;
    options.server.scheduler.cycleBudget = 100'000;
    return options;
}

/** Sweep `count` seeded sequences over one design; fail loudly
 *  with the shrunk repro when any of them diverges. */
void
expectSweepClean(const GeneratorOptions &gen, size_t count,
                 const LockstepOptions &options)
{
    difftest::SweepResult result =
        difftest::sweep(gen, options, count);
    EXPECT_EQ(result.sequences, count);
    if (!result.failure)
        return;
    ADD_FAILURE() << "backends diverged (seed "
                  << result.failingSeed << ", "
                  << result.failure->divergence.kind << " after '"
                  << result.failure->divergence.command << "'):\n--- "
                  << options.backendA << " ---\n"
                  << result.failure->divergence.lhs << "\n--- "
                  << options.backendB << " ---\n"
                  << result.failure->divergence.rhs << "\nrepro:\n"
                  << encodeRepro(*result.failure, options,
                                 result.failingSeed);
}

void
expectSweepClean(const GeneratorOptions &gen, size_t count)
{
    expectSweepClean(gen, count, pairedOptions());
}

/** The fabric-vs-sim options retargeted at the jit engine. */
LockstepOptions
jitOptions(const std::string &backend_a)
{
    LockstepOptions options = pairedOptions();
    options.backendA = backend_a;
    options.backendB = "jit";
    return options;
}

} // namespace

TEST(Difftest, NormalizeScrubsVolatileFields)
{
    // Timing is scrubbed anywhere it appears.
    EXPECT_EQ(difftest::normalizeLine(
                  R"({"type":"reply","queue_wait_us":17,"n":3})"),
              R"({"type":"reply","n":3})");
    // Snapshot descriptors lose identity/size (backend-specific
    // frame encodings hash differently) but keep the cycle.
    EXPECT_EQ(
        difftest::normalizeLine(
            R"({"snapshot":{"id":"ab12","cycle":40,"bytes":512,)"
            R"("delta_frames":3},"ok":true})"),
        R"({"snapshot":{"cycle":40},"ok":true})");
    // Reply-level ids (request echo) are NOT snapshot ids.
    EXPECT_EQ(difftest::normalizeLine(R"({"id":7,"ok":true})"),
              R"({"id":7,"ok":true})");
    // Backend identity is the comparison axis, never a divergence.
    EXPECT_EQ(difftest::normalizeLine(
                  R"({"ok":true,"backend":"jit"})"),
              R"({"ok":true})");
    // Non-JSON lines pass through for raw comparison.
    EXPECT_EQ(difftest::normalizeLine("not json"), "not json");
}

TEST(Difftest, VocabularyIsDiscoveredOverTheWire)
{
    GeneratorOptions gen;
    gen.design = "counter";
    auto vocab = difftest::discoverVocabulary(
        difftest::openLine(gen));
    ASSERT_TRUE(vocab.has_value());

    auto has = [](const std::vector<std::string> &pool,
                  const std::string &name) {
        return std::find(pool.begin(), pool.end(), name) !=
               pool.end();
    };
    EXPECT_TRUE(has(vocab->prefixes, "zoomie/"));
    EXPECT_TRUE(has(vocab->prefixes, "mut/"));
    EXPECT_TRUE(has(vocab->registers, "mut/count"));
    EXPECT_TRUE(has(vocab->registers, "zoomie/pause_state"));
    // The built-in counter is free-running: no input ports, which
    // discovery must report as an empty pool (not a parse error).
    EXPECT_TRUE(vocab->inputs.empty());
    EXPECT_FALSE(vocab->watchSignals.empty());
}

TEST(Difftest, GenerationIsDeterministicFromTheSeed)
{
    GeneratorOptions gen;
    gen.design = "counter";
    gen.seed = 42;
    auto vocab = difftest::discoverVocabulary(
        difftest::openLine(gen));
    ASSERT_TRUE(vocab.has_value());
    auto one = difftest::generateSequence(gen, *vocab);
    auto two = difftest::generateSequence(gen, *vocab);
    EXPECT_EQ(one, two);
    ASSERT_EQ(one.size(), gen.length + 1);
    gen.seed = 43;
    EXPECT_NE(difftest::generateSequence(gen, *vocab), one);
}

// ---- the tentpole sweeps: fabric vs interpreter ----------------------

TEST(Difftest, CounterSweepAgreesAcrossBackends)
{
    // The headline sweep: 1000 seeded sequences, every command
    // compared, state probed at every quiescent point.
    GeneratorOptions gen;
    gen.design = "counter";
    gen.seed = 1000;
    gen.length = 24;
    expectSweepClean(gen, 1000);
}

TEST(Difftest, TinyRvSweepAgreesAcrossBackends)
{
    GeneratorOptions gen;
    gen.design = "tinyrv";
    gen.seed = 2000;
    gen.length = 20;
    expectSweepClean(gen, 30);
}

TEST(Difftest, ServSocSweepAgreesAcrossBackends)
{
    GeneratorOptions gen;
    gen.design = "serv_soc";
    gen.seed = 3000;
    gen.length = 20;
    expectSweepClean(gen, 100);
}

TEST(Difftest, VerilogCorpusSweepsAgreeAcrossBackends)
{
    namespace fs = std::filesystem;
    const fs::path corpus =
        fs::path(ZOOMIE_VCORPUS_DIR) / "accept";
    ASSERT_TRUE(fs::exists(corpus));

    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(corpus))
        if (entry.path().extension() == ".v")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 10u);

    size_t opened = 0;
    for (const fs::path &file : files) {
        std::ifstream in(file);
        std::stringstream text;
        text << in.rdbuf();
        GeneratorOptions gen;
        gen.source = text.str();
        gen.seed = 4000;
        gen.length = 12;
        // Some corpus files are refused pre-admission (no
        // registers, multiple clocks): both backends must refuse
        // them identically, which the sweep still checks — the
        // generated commands then all fail `no-session` on both
        // sides. Count the ones that genuinely open.
        if (difftest::discoverVocabulary(
                difftest::openLine(gen)))
            ++opened;
        expectSweepClean(gen, 2);
        if (HasFailure())
            FAIL() << "first divergence in corpus file " << file;
    }
    // The sweep exercised real sessions, not just refusals.
    EXPECT_GE(opened, 10u);
}

// ---- the jit engine against both established backends -----------------

TEST(Difftest, JitCounterSweepAgreesWithInterpreter)
{
    GeneratorOptions gen;
    gen.design = "counter";
    gen.seed = 6000;
    gen.length = 24;
    expectSweepClean(gen, 300, jitOptions("sim"));
}

TEST(Difftest, JitCounterSweepAgreesWithFabric)
{
    // The strong form of the backend-matrix claim: the compiled
    // engine agrees with the fabric too, not just with the
    // interpreter it was pinned against.
    GeneratorOptions gen;
    gen.design = "counter";
    gen.seed = 6500;
    gen.length = 24;
    expectSweepClean(gen, 100, jitOptions("fabric"));
}

TEST(Difftest, JitTinyRvSweepAgreesWithInterpreter)
{
    GeneratorOptions gen;
    gen.design = "tinyrv";
    gen.seed = 7000;
    gen.length = 20;
    expectSweepClean(gen, 20, jitOptions("sim"));
}

TEST(Difftest, JitServSocSweepAgreesWithInterpreter)
{
    GeneratorOptions gen;
    gen.design = "serv_soc";
    gen.seed = 8000;
    gen.length = 20;
    expectSweepClean(gen, 30, jitOptions("sim"));
}

// ---- planted divergence: detection, shrinking, repro ------------------

TEST(Difftest, PlantedForceSkewIsDetectedAndShrunk)
{
    GeneratorOptions gen;
    gen.design = "counter";
    gen.seed = 77;
    gen.length = 18;
    auto vocab = difftest::discoverVocabulary(
        difftest::openLine(gen));
    ASSERT_TRUE(vocab.has_value());

    // A realistic noisy session with one guaranteed observable
    // force buried in the middle.
    std::vector<std::string> sequence =
        difftest::generateSequence(gen, *vocab);
    sequence.insert(
        sequence.begin() + sequence.size() / 2,
        R"({"cmd":"force","name":"mut/count","value":9})");

    LockstepOptions options = pairedOptions();
    options.skewForces = true;
    options.probePrefixes = {"mut/", "zoomie/"};

    auto divergence = difftest::runLockstep(sequence, options);
    ASSERT_TRUE(divergence.has_value())
        << "planted force skew went undetected";

    difftest::ShrinkResult shrunk =
        difftest::shrink(sequence, options);
    EXPECT_LE(shrunk.sequence.size(), 6u)
        << "shrinker left " << shrunk.sequence.size()
        << " commands";
    ASSERT_FALSE(shrunk.sequence.empty());
    // The reproducer still opens a session and still forces.
    EXPECT_NE(shrunk.sequence.front().find("\"open\""),
              std::string::npos);
    bool has_force = false;
    for (const std::string &line : shrunk.sequence)
        has_force = has_force ||
                    line.find("\"force\"") != std::string::npos;
    EXPECT_TRUE(has_force);
    EXPECT_GE(shrunk.attempts, 2u);

    // The minimized sequence must still diverge stand-alone.
    EXPECT_TRUE(
        difftest::runLockstep(shrunk.sequence, options)
            .has_value());

    // And the repro file round-trips into the same sequence.
    std::string repro =
        difftest::encodeRepro(shrunk, options, gen.seed);
    auto decoded = difftest::decodeRepro(repro);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, shrunk.sequence);
}

TEST(Difftest, ReproDecodeRejectsForeignDocuments)
{
    std::string err;
    EXPECT_FALSE(
        difftest::decodeRepro("not json at all\n", &err)
            .has_value());
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(difftest::decodeRepro(
                     R"({"type":"something_else"})" "\n", &err)
                     .has_value());
    EXPECT_EQ(err, "not a difftest_repro document");
}

TEST(Difftest, IdenticalBackendsNeverDiverge)
{
    // Self-check against comparator false positives: sim vs sim
    // must agree even with snapshots and traces in the mix.
    GeneratorOptions gen;
    gen.design = "counter";
    gen.seed = 5000;
    gen.length = 24;
    auto vocab = difftest::discoverVocabulary(
        difftest::openLine(gen));
    ASSERT_TRUE(vocab.has_value());

    LockstepOptions options = pairedOptions();
    options.backendA = "sim";
    options.backendB = "sim";
    options.probePrefixes = vocab->prefixes;
    for (uint64_t seed = 5000; seed < 5006; ++seed) {
        GeneratorOptions g = gen;
        g.seed = seed;
        auto divergence = difftest::runLockstep(
            difftest::generateSequence(g, *vocab), options);
        EXPECT_FALSE(divergence.has_value())
            << "seed " << seed << ": " << divergence->kind
            << " divergence between identical backends after '"
            << divergence->command << "'";
    }
}

TEST(Difftest, UnknownBackendPairFailsTypedOnBothSides)
{
    LockstepOptions options = pairedOptions();
    options.backendA = "warp-drive";
    options.backendB = "warp-drive";
    // Both sides answer the same typed bad-args error, so the
    // comparator sees agreement — an unknown backend is a typed
    // refusal, not a crash or a divergence.
    auto divergence = difftest::runLockstep(
        {R"({"cmd":"open","design":"counter"})",
         R"({"cmd":"info"})"},
        options);
    EXPECT_FALSE(divergence.has_value());
}
