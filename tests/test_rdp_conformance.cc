/**
 * @file
 * Wire-protocol conformance: one golden request/reply pair per
 * command in the Dispatcher CommandSpec table and the Server
 * ServerCommandSpec table, executed against a fresh server through
 * the public handleLine() entry point and compared byte-for-byte
 * (after scrubbing wall-clock fields). The covered command set is
 * auto-enumerated from the `commands` introspection reply, so
 * adding a command without adding a conformance row fails the
 * suite — and any drift in a reply's shape, field order, or error
 * taxonomy shows up as a diff against the pinned golden line.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rdp/server.hh"

using namespace zoomie;
using rdp::Json;

namespace {

/**
 * Zero the wall-clock metric fields so golden replies stay stable:
 * these are the only values in any reply that depend on timing.
 */
std::string
scrub(std::string line)
{
    for (const char *key :
         {"queue_wait_us", "exec_us", "idle_us"}) {
        std::string pat = std::string("\"") + key + "\":";
        size_t pos = 0;
        while ((pos = line.find(pat, pos)) != std::string::npos) {
            size_t value = pos + pat.size();
            size_t end = value;
            while (end < line.size() &&
                   std::isdigit((unsigned char)line[end]))
                ++end;
            line.replace(value, end - value, "0");
            pos = value + 1;
        }
    }
    return line;
}

struct GoldenCase
{
    std::vector<std::string> setup; ///< lines run first, must be ok
    std::string request;            ///< the golden request (id 1)
    std::string reply;              ///< expected reply, scrubbed
    bool expectQuit = false;
};

const std::string kOpen = R"({"cmd":"open","design":"counter"})";
const std::string kOpenRv = R"({"cmd":"open","design":"tinyrv"})";
const std::string kOpenAssert =
    R"({"cmd":"open","design":"counter","assertions":["assert property (mut/count != 50);"]})";
const std::string kPause = R"({"cmd":"pause"})";
const std::string kSnap = R"({"cmd":"snapshot"})";
const std::string kRun3 = R"({"cmd":"run","n":3})";
const std::string kRun10 = R"({"cmd":"run","n":10})";

/** Upload the counter-with-enable design through the wire. */
const std::string kOpenSource =
    R"({"cmd":"open_source","text":"module counter(input clk, input en, output [15:0] value);\n  reg [15:0] count;\n  always @(posedge clk) if (en) count <= count + 1;\n  assign value = count;\nendmodule\n"})";

/** One golden row per wire command — session and server scope. */
const std::vector<std::pair<std::string, GoldenCase>> &
goldenTable()
{
    static const std::vector<std::pair<std::string, GoldenCase>>
        rows = {
            {"hello",
             {{},
              R"({"cmd":"hello","id":1,"version":2})",
              R"({"type":"reply","id":1,"cmd":"hello","ok":true,"server":"zoomie-server","protocol":"zoomie-rdp","version":2,"max_sessions":64,"workers":2,"commands":["run","pause","resume","step","break","watch","clear","print","x","force","poke","forcemem","regs","snapshot","snapshots","restore","trace","info","assert","lint","hello","open","open_source","close","sessions","cache_stats","commands","batch","quit","shutdown"]})"}},
            {"open",
             {{},
              R"({"cmd":"open","id":1,"design":"counter"})",
              R"({"type":"reply","id":1,"cmd":"open","ok":true,"session":1,"design":"counter","backend":"fabric","watch":["mut/count"]})"}},
            {"close",
             {{kOpen},
              R"({"cmd":"close","id":1})",
              R"({"type":"reply","id":1,"cmd":"close","ok":true,"session":1})"}},
            {"sessions",
             {{kOpen},
              R"({"cmd":"sessions","id":1})",
              R"({"type":"reply","id":1,"cmd":"sessions","ok":true,"sessions":[{"session":1,"design":"counter","backend":"fabric","cycles":0,"run_requests":0,"exec_us":0,"queue_wait_us":0,"pending_runs":0,"idle_us":0,"lint_cache_hits":0,"lint_cache_misses":0,"artifact_hits":0,"artifact_misses":1}]})"}},
            {"cache_stats",
             {{},
              R"({"cmd":"cache_stats","id":1})",
              R"({"type":"reply","id":1,"cmd":"cache_stats","ok":true,"enabled":true,"lint":{"hits":0,"misses":0,"stores":0,"entries":0,"bytes":0,"evictions":0,"corrupt_evictions":0},"artifacts":{"hits":0,"misses":0,"stores":0,"entries":0,"bytes":0,"corrupt_evictions":0}})"}},
            {"commands",
             {{},
              R"({"cmd":"commands","id":1})",
              R"json({"type":"reply","id":1,"cmd":"commands","ok":true,"version":2,"commands":[{"name":"run","scope":"session","help":"advance the external clock N cycles","args":[{"name":"n","type":"u64","required":true}],"events":true,"min_version":1},{"name":"pause","scope":"session","help":"pause the MUT clock","args":[],"events":true,"min_version":1},{"name":"resume","alias":"c","scope":"session","help":"resume execution","args":[],"events":false,"min_version":1},{"name":"step","scope":"session","help":"execute exactly N MUT cycles, then pause","args":[{"name":"n","type":"u64","required":true}],"events":true,"min_version":1},{"name":"break","scope":"session","help":"value breakpoint on a watch slot (group: and|or)","args":[{"name":"slot","type":"u64","required":true},{"name":"value","type":"u64","required":true},{"name":"group","type":"string","required":false}],"events":false,"min_version":1},{"name":"watch","scope":"session","help":"watchpoint: pause when the slot's signal changes","args":[{"name":"slot","type":"u64","required":true},{"name":"on","type":"u64","required":false}],"events":false,"min_version":1},{"name":"clear","scope":"session","help":"clear all triggers","args":[],"events":false,"min_version":1},{"name":"print","alias":"p","scope":"session","help":"read a register through the config plane","args":[{"name":"name","type":"string","required":true}],"events":false,"min_version":1},{"name":"x","scope":"session","help":"read a memory word","args":[{"name":"name","type":"string","required":true},{"name":"addr","type":"u64","required":true}],"events":false,"min_version":1},{"name":"force","scope":"session","help":"inject a register value","args":[{"name":"name","type":"string","required":true},{"name":"value","type":"u64","required":true}],"events":false,"min_version":1},{"name":"poke","scope":"session","help":"drive a top-level input port","args":[{"name":"name","type":"string","required":true},{"name":"value","type":"u64","required":true}],"events":false,"min_version":1},{"name":"forcemem","scope":"session","help":"inject a memory word","args":[{"name":"name","type":"string","required":true},{"name":"addr","type":"u64","required":true},{"name":"value","type":"u64","required":true}],"events":false,"min_version":1},{"name":"regs","scope":"session","help":"dump every register under a scope prefix","args":[{"name":"prefix","type":"string","required":true}],"events":false,"min_version":1},{"name":"snapshot","alias":"snap","scope":"session","help":"capture a pinned content-addressed snapshot","args":[],"events":false,"min_version":2},{"name":"snapshots","scope":"session","help":"list the snapshot ring, oldest first","args":[],"events":false,"min_version":2},{"name":"restore","scope":"session","help":"time-travel to CYCLE, or restore SNAPSHOT by id (default: newest)","args":[{"name":"cycle","type":"u64","required":false},{"name":"snapshot","type":"u64","required":false}],"events":false,"min_version":2},{"name":"trace","scope":"session","help":"sample signals N cycles; stream VCD chunks or write FILE","args":[{"name":"n","type":"u64","required":true},{"name":"file","type":"string","required":false},{"name":"signals","type":"string","required":false}],"events":true,"min_version":1},{"name":"info","scope":"session","help":"session status","args":[],"events":false,"min_version":1},{"name":"assert","scope":"session","help":"enable/disable an assertion breakpoint","args":[{"name":"index","type":"u64","required":true},{"name":"on","type":"u64","required":false}],"events":false,"min_version":1},{"name":"lint","scope":"session","help":"static-analysis findings for the session's user design","args":[{"name":"pass","type":"string","required":false},{"name":"severity","type":"string","required":false}],"events":false,"min_version":1},{"name":"hello","scope":"server","help":"negotiate the protocol version","args":[{"name":"version","type":"u64","required":false},{"name":"min","type":"u64","required":false}],"min_version":1},{"name":"open","scope":"server","help":"bring up a new debug session","args":[{"name":"design","type":"string","required":false},{"name":"program","type":"array","required":false},{"name":"watch","type":"array","required":false},{"name":"assertions","type":"array","required":false},{"name":"backend","type":"string","required":false}],"min_version":1},{"name":"open_source","scope":"server","help":"compile uploaded Verilog into a new debug session","args":[{"name":"text","type":"string","required":false},{"name":"chunk","type":"string","required":false},{"name":"seq","type":"u64","required":false},{"name":"last","type":"bool","required":false},{"name":"top","type":"string","required":false},{"name":"watch","type":"array","required":false},{"name":"assertions","type":"array","required":false},{"name":"lint","type":"bool","required":false},{"name":"backend","type":"string","required":false}],"min_version":2},{"name":"close","scope":"server","help":"tear down a session","args":[{"name":"session","type":"u64","required":false}],"min_version":1},{"name":"sessions","scope":"server","help":"list open sessions with scheduling metrics","args":[],"min_version":1},{"name":"cache_stats","scope":"server","help":"content-addressed analysis/compile cache counters","args":[],"min_version":2},{"name":"commands","scope":"server","help":"machine-readable command schema","args":[],"min_version":1},{"name":"batch","scope":"server","help":"execute an ordered array of sub-requests","args":[{"name":"requests","type":"array","required":true},{"name":"abort_on_error","type":"bool","required":false}],"min_version":2},{"name":"quit","scope":"server","help":"end this connection","args":[],"min_version":1},{"name":"shutdown","scope":"server","help":"stop the whole server","args":[],"min_version":1}]})json"}},
            {"batch",
             {{kOpen},
              R"({"cmd":"batch","id":1,"requests":[{"cmd":"snapshot"}]})",
              R"({"type":"reply","id":1,"cmd":"batch","ok":true,"executed":1,"failed":0,"results":[{"type":"reply","cmd":"snapshot","ok":true,"snapshot":{"id":"0xa8c7f832281a39c5","cycle":0,"bytes":0,"delta_frames":0},"index":0}]})"}},
            {"quit",
             {{},
              R"({"cmd":"quit","id":1})",
              R"({"type":"reply","id":1,"cmd":"quit","ok":true})",
              /*expectQuit=*/true}},
            {"shutdown",
             {{},
              R"({"cmd":"shutdown","id":1})",
              R"({"type":"reply","id":1,"cmd":"shutdown","ok":true})",
              /*expectQuit=*/true}},
            {"run",
             {{kOpen},
              R"({"cmd":"run","id":1,"n":4})",
              R"({"type":"reply","id":1,"cmd":"run","ok":true,"cycles_run":4,"queue_wait_us":0,"cycle":4,"paused":false})"}},
            {"pause",
             {{kOpen},
              R"({"cmd":"pause","id":1})",
              R"({"type":"reply","id":1,"cmd":"pause","ok":true,"cycle":0})"}},
            {"resume",
             {{kOpen, kPause},
              R"({"cmd":"resume","id":1})",
              R"({"type":"reply","id":1,"cmd":"resume","ok":true,"cycle":0})"}},
            {"step",
             {{kOpen, kPause},
              R"({"cmd":"step","id":1,"n":3})",
              R"({"type":"reply","id":1,"cmd":"step","ok":true,"cycle":3,"paused":true})"}},
            {"break",
             {{kOpen},
              R"({"cmd":"break","id":1,"slot":0,"value":5})",
              R"({"type":"reply","id":1,"cmd":"break","ok":true,"slot":0,"value":5,"group":"and","signal":"mut/count"})"}},
            {"watch",
             {{kOpen},
              R"({"cmd":"watch","id":1,"slot":0})",
              R"({"type":"reply","id":1,"cmd":"watch","ok":true,"slot":0,"on":true,"signal":"mut/count"})"}},
            {"clear",
             {{kOpen},
              R"({"cmd":"clear","id":1})",
              R"({"type":"reply","id":1,"cmd":"clear","ok":true})"}},
            {"print",
             {{kOpen, kRun3},
              R"({"cmd":"print","id":1,"name":"mut/count"})",
              R"({"type":"reply","id":1,"cmd":"print","ok":true,"name":"mut/count","value":3})"}},
            {"x",
             {{kOpenRv},
              R"({"cmd":"x","id":1,"name":"cpu/mem","addr":0})",
              R"({"type":"reply","id":1,"cmd":"x","ok":true,"name":"cpu/mem","addr":0,"value":147})"}},
            {"force",
             {{kOpen},
              R"({"cmd":"force","id":1,"name":"mut/count","value":9})",
              R"({"type":"reply","id":1,"cmd":"force","ok":true,"name":"mut/count","value":9})"}},
            {"forcemem",
             {{kOpenRv},
              R"({"cmd":"forcemem","id":1,"name":"cpu/mem","addr":4,"value":7})",
              R"({"type":"reply","id":1,"cmd":"forcemem","ok":true,"name":"cpu/mem","addr":4,"value":7})"}},
            {"regs",
             {{kOpen},
              R"({"cmd":"regs","id":1,"prefix":"mut/"})",
              R"({"type":"reply","id":1,"cmd":"regs","ok":true,"regs":{"mut/count":0}})"}},
            {"snapshot",
             {{kOpen},
              R"({"cmd":"snapshot","id":1})",
              R"({"type":"reply","id":1,"cmd":"snapshot","ok":true,"snapshot":{"id":"0xa8c7f832281a39c5","cycle":0,"bytes":0,"delta_frames":0}})"}},
            {"restore",
             {{kOpen, kSnap},
              R"({"cmd":"restore","id":1})",
              R"({"type":"reply","id":1,"cmd":"restore","ok":true,"snapshot":{"id":"0xa8c7f832281a39c5","cycle":0,"bytes":0,"delta_frames":0},"cycle":0})"}},
            {"snapshots",
             {{kOpen, kSnap, kRun10, kSnap},
              R"({"cmd":"snapshots","id":1})",
              R"({"type":"reply","id":1,"cmd":"snapshots","ok":true,"snapshots":[{"id":"0xa8c7f832281a39c5","cycle":0,"bytes":0,"delta_frames":0,"pinned":true},{"id":"0x8c618a7d53b72be0","cycle":10,"bytes":372,"delta_frames":1,"pinned":true}],"capacity":16})"}},
            {"trace",
             {{kOpen},
              R"({"cmd":"trace","id":1,"n":4,"file":"conformance_trace.vcd"})",
              R"({"type":"reply","id":1,"cmd":"trace","ok":true,"samples":4,"file":"conformance_trace.vcd"})"}},
            {"info",
             {{kOpen},
              R"({"cmd":"info","id":1})",
              R"({"type":"reply","id":1,"cmd":"info","ok":true,"design":"counter","cycle":0,"paused":false,"watch":["mut/count"],"assertions":[]})"}},
            {"assert",
             {{kOpenAssert},
              R"({"cmd":"assert","id":1,"index":0,"on":0})",
              R"({"type":"reply","id":1,"cmd":"assert","ok":true,"index":0,"on":false})"}},
            {"lint",
             {{kOpen},
              R"({"cmd":"lint","id":1})",
              R"({"type":"reply","id":1,"cmd":"lint","ok":true,"design":"counter","findings":[],"errors":0,"warnings":0,"notes":0,"clean":true,"cache_hits":0,"cache_misses":3})"}},
            {"open_source",
             {{},
              R"({"cmd":"open_source","id":1,"text":"module counter(input clk, input en, output [15:0] value);\n  reg [15:0] count;\n  always @(posedge clk) if (en) count <= count + 1;\n  assign value = count;\nendmodule\n"})",
              R"({"type":"reply","id":1,"cmd":"open_source","ok":true,"session":1,"design":"source","backend":"fabric","top":"counter","nodes":9,"regs":1,"mems":0,"state_bits":16,"watch":["mut/count"],"lint_cache_hits":0,"lint_cache_misses":3,"artifact_hits":0,"artifact_misses":1})"}},
            {"poke",
             {{kOpenSource},
              R"({"cmd":"poke","id":1,"name":"en","value":1})",
              R"({"type":"reply","id":1,"cmd":"poke","ok":true,"name":"en","value":1})"}},
        };
    return rows;
}

/** Command names the server itself advertises via introspection. */
std::set<std::string>
introspectedNames()
{
    rdp::Server server;
    bool quit = false;
    auto out =
        server.handleLine(R"({"cmd":"commands","id":1})", quit);
    std::set<std::string> names;
    if (out.empty()) {
        ADD_FAILURE() << "commands introspection gave no reply";
        return names;
    }
    auto reply = Json::parse(out.back());
    if (!reply) {
        ADD_FAILURE() << "unparseable reply: " << out.back();
        return names;
    }
    const Json *commands = reply->find("commands");
    if (!commands || !commands->isArray()) {
        ADD_FAILURE() << "no commands array in " << out.back();
        return names;
    }
    for (size_t i = 0; i < commands->size(); ++i) {
        const Json *name = commands->at(i).find("name");
        if (name && name->isString())
            names.insert(name->asString());
    }
    return names;
}

} // namespace

TEST(RdpConformance, IntrospectionIsFullyCovered)
{
    // The coverage contract, in both directions: every command the
    // server advertises has a golden row (a new command without a
    // conformance entry fails here), and every golden row names a
    // real command (a renamed command fails here too).
    std::set<std::string> advertised = introspectedNames();
    ASSERT_FALSE(advertised.empty());

    std::set<std::string> covered;
    for (const auto &[name, row] : goldenTable())
        covered.insert(name);

    for (const std::string &name : advertised) {
        EXPECT_TRUE(covered.count(name))
            << "command '" << name
            << "' is advertised by introspection but has no "
               "conformance row — add a golden request/reply pair";
    }
    for (const std::string &name : covered) {
        EXPECT_TRUE(advertised.count(name))
            << "conformance row '" << name
            << "' names a command introspection does not "
               "advertise";
    }
}

TEST(RdpConformance, GoldenRequestReplyPairs)
{
    for (const auto &[name, row] : goldenTable()) {
        SCOPED_TRACE("command: " + name);
        // Fresh server per row: rows are order-independent and a
        // failure in one cannot poison another.
        rdp::Server server;
        rdp::ConnState conn;
        bool quit = false;
        for (const std::string &line : row.setup) {
            auto out = server.handleLine(line, conn, quit);
            ASSERT_FALSE(out.empty()) << "setup: " << line;
            ASSERT_NE(out.back().find("\"ok\":true"),
                      std::string::npos)
                << "setup failed: " << out.back();
        }
        auto out = server.handleLine(row.request, conn, quit);
        ASSERT_FALSE(out.empty());
        EXPECT_EQ(scrub(out.back()), row.reply);
        EXPECT_EQ(quit, row.expectQuit);
    }
    std::remove("conformance_trace.vcd");
}

TEST(RdpConformance, GoldenRequestsRoundTripThroughTheParser)
{
    // Every golden request must itself be a well-formed protocol
    // request: parse → encode → parse yields the same command.
    for (const auto &[name, row] : goldenTable()) {
        SCOPED_TRACE("command: " + name);
        auto msg = Json::parse(row.request);
        ASSERT_TRUE(msg);
        std::string err;
        auto req = rdp::parseRequest(*msg, &err);
        ASSERT_TRUE(req) << err;
        EXPECT_EQ(req->cmd, name);
        ASSERT_TRUE(req->id);
        EXPECT_EQ(*req->id, 1u);
    }
}

// ---- open_source error-path goldens ----------------------------------
//
// The upload pipeline's typed rejections, pinned byte-for-byte:
// each failure mode answers its own Errc and none of them consumes
// a registry slot.

TEST(RdpConformance, OpenSourceParseErrorGolden)
{
    rdp::Server server;
    bool quit = false;
    auto out = server.handleLine(
        R"({"cmd":"open_source","id":1,"text":"module broken(input clk; endmodule"})",
        quit);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(
        out.back(),
        R"x({"type":"reply","id":1,"cmd":"open_source","ok":false,"error":"parse-error","detail":"Verilog compile failed with 1 error(s)","diagnostics":[{"file":"<upload>","line":1,"col":24,"severity":"error","message":"expected ')' to close the port list, got ';'"}]})x");
    EXPECT_EQ(server.sessions().count(), 0u);
}

TEST(RdpConformance, OpenSourceLintRejectedGolden)
{
    // A constant memory address beyond a non-power-of-two depth is
    // legal source, passes elaboration, and trips the lint width
    // pass with an error-severity finding: exactly the class of
    // defect the gate exists for.
    const std::string upload =
        R"("text":"module m(input clk, input [7:0] d, output [7:0] q);\n  reg [7:0] store [0:5];\n  reg [7:0] r;\n  always @(posedge clk) begin\n    store[7] <= d;\n    r <= store[0];\n  end\n  assign q = r;\nendmodule\n")";
    rdp::Server server;
    bool quit = false;
    auto out = server.handleLine(
        R"({"cmd":"open_source","id":1,)" + upload + "}", quit);
    ASSERT_FALSE(out.empty());
    // The reply must be the typed lint-rejected error with at
    // least one structured finding, and no session may exist.
    EXPECT_NE(out.back().find("\"error\":\"lint-rejected\""),
              std::string::npos)
        << out.back();
    EXPECT_NE(out.back().find("\"findings\":["), std::string::npos)
        << out.back();
    EXPECT_NE(out.back().find("\"pass\":\"width\""),
              std::string::npos)
        << out.back();
    EXPECT_NE(out.back().find("constant 7 >= depth 6"),
              std::string::npos)
        << out.back();
    EXPECT_EQ(server.sessions().count(), 0u);

    // The same design with {"lint":false} must be admitted: the
    // gate, not the compiler, rejected it.
    auto out2 = server.handleLine(
        R"({"cmd":"open_source","id":2,"lint":false,)" + upload +
            "}",
        quit);
    ASSERT_FALSE(out2.empty());
    EXPECT_NE(out2.back().find("\"ok\":true"), std::string::npos)
        << out2.back();
    EXPECT_EQ(server.sessions().count(), 1u);
}

TEST(RdpConformance, OpenSourceBusyGolden)
{
    rdp::ServerOptions options;
    options.scheduler.maxSessions = 1;
    rdp::Server server(options);
    bool quit = false;
    auto ok = server.handleLine(
        R"({"cmd":"open","design":"counter"})", quit);
    ASSERT_NE(ok.back().find("\"ok\":true"), std::string::npos);
    auto out = server.handleLine(
        R"({"cmd":"open_source","id":1,"text":"module counter(input clk, output [15:0] value);\n  reg [15:0] count;\n  always @(posedge clk) count <= count + 1;\n  assign value = count;\nendmodule\n"})",
        quit);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(
        out.back(),
        R"({"type":"reply","id":1,"cmd":"open_source","ok":false,"error":"busy","detail":"session limit reached (1 open); close one or retry later"})");
    EXPECT_EQ(server.sessions().count(), 1u);
}

TEST(RdpConformance, OpenSourceGatedOnV1Golden)
{
    rdp::Server server;
    rdp::ConnState conn;
    bool quit = false;
    auto hello = server.handleLine(
        R"({"cmd":"hello","version":1})", conn, quit);
    ASSERT_NE(hello.back().find("\"version\":1"),
              std::string::npos);
    auto out = server.handleLine(
        R"({"cmd":"open_source","id":1,"text":"module m(); endmodule"})",
        conn, quit);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(
        out.back(),
        R"x({"type":"reply","id":1,"cmd":"open_source","ok":false,"error":"unknown-command","detail":"\"open_source\" requires protocol >= 2 (negotiated 1)"})x");
    EXPECT_EQ(server.sessions().count(), 0u);
}

TEST(RdpConformance, OpenSourceNoRegistersGolden)
{
    rdp::Server server;
    bool quit = false;
    auto out = server.handleLine(
        R"({"cmd":"open_source","id":1,"text":"module w(input a, output b);\n  assign b = !a;\nendmodule\n"})",
        quit);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(
        out.back(),
        R"({"type":"reply","id":1,"cmd":"open_source","ok":false,"error":"bad-args","detail":"design has no registers; nothing to debug"})");
    EXPECT_EQ(server.sessions().count(), 0u);
}

TEST(RdpConformance, OpenSourceChunkedGolden)
{
    rdp::Server server;
    rdp::ConnState conn;
    bool quit = false;
    auto first = server.handleLine(
        R"({"cmd":"open_source","id":1,"chunk":"module counter(input clk, output [15:0] value);\n  reg [15:0] count;\n","seq":0})",
        conn, quit);
    EXPECT_EQ(
        first.back(),
        R"({"type":"reply","id":1,"cmd":"open_source","ok":true,"received":68,"next_seq":1})");
    auto last = server.handleLine(
        R"({"cmd":"open_source","id":2,"chunk":"  always @(posedge clk) count <= count + 1;\n  assign value = count;\nendmodule\n","seq":1,"last":true})",
        conn, quit);
    EXPECT_EQ(
        last.back(),
        R"({"type":"reply","id":2,"cmd":"open_source","ok":true,"session":1,"design":"source","backend":"fabric","top":"counter","nodes":6,"regs":1,"mems":0,"state_bits":16,"watch":["mut/count"],"lint_cache_hits":0,"lint_cache_misses":3,"artifact_hits":0,"artifact_misses":1})");
    EXPECT_EQ(server.sessions().count(), 1u);

    // An out-of-order chunk resets the buffer with a typed error.
    auto bad = server.handleLine(
        R"({"cmd":"open_source","id":3,"chunk":"x","seq":7})",
        conn, quit);
    EXPECT_EQ(
        bad.back(),
        R"({"type":"reply","id":3,"cmd":"open_source","ok":false,"error":"bad-args","detail":"\"seq\" 7 out of order (expected 0); upload discarded"})");
    EXPECT_EQ(server.sessions().count(), 1u);
}

// ---- snapshot / restore error-path and gating goldens ----------------
//
// The time-travel surface's typed failures, pinned byte-for-byte:
// restore-by-cycle replays deterministically, an unknown content
// address answers `snapshot-not-found`, and a v1 connection cannot
// see any of the snapshot commands.

TEST(RdpConformance, RestoreByCycleReplaysGolden)
{
    rdp::Server server;
    rdp::ConnState conn;
    bool quit = false;
    for (const std::string &line : {kOpen, kSnap, kRun10}) {
        auto out = server.handleLine(line, conn, quit);
        ASSERT_NE(out.back().find("\"ok\":true"),
                  std::string::npos)
            << out.back();
    }
    auto out = server.handleLine(
        R"({"cmd":"restore","id":1,"cycle":6})", conn, quit);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(
        scrub(out.back()),
        R"({"type":"reply","id":1,"cmd":"restore","ok":true,"snapshot":{"id":"0xa8c7f832281a39c5","cycle":0,"bytes":0,"delta_frames":0},"cycle":6,"replayed":6,"paused":true})");
}

TEST(RdpConformance, RestoreUnknownIdGolden)
{
    rdp::Server server;
    rdp::ConnState conn;
    bool quit = false;
    auto ok = server.handleLine(kOpen, conn, quit);
    ASSERT_NE(ok.back().find("\"ok\":true"), std::string::npos);
    auto out = server.handleLine(
        R"({"cmd":"restore","id":1,"snapshot":99})", conn, quit);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(
        out.back(),
        R"({"type":"reply","id":1,"cmd":"restore","ok":false,"error":"snapshot-not-found","detail":"no snapshot with id 0x63"})");
}

TEST(RdpConformance, SnapshotCommandsGatedOnV1Golden)
{
    // One connection, negotiated down to v1: all three snapshot
    // commands answer the same typed unknown-command refusal the
    // server commands use, and hello's advertisement omits them.
    rdp::Server server;
    rdp::ConnState conn;
    bool quit = false;
    auto hello = server.handleLine(
        R"({"cmd":"hello","id":1,"version":1})", conn, quit);
    ASSERT_FALSE(hello.empty());
    EXPECT_EQ(
        hello.back(),
        R"({"type":"reply","id":1,"cmd":"hello","ok":true,"server":"zoomie-server","protocol":"zoomie-rdp","version":1,"max_sessions":64,"workers":2,"commands":["run","pause","resume","step","break","watch","clear","print","x","force","poke","forcemem","regs","trace","info","assert","lint","hello","open","close","sessions","commands","quit","shutdown"]})");
    auto ok = server.handleLine(kOpen, conn, quit);
    ASSERT_NE(ok.back().find("\"ok\":true"), std::string::npos);

    auto snap = server.handleLine(
        R"({"cmd":"snapshot","id":1})", conn, quit);
    EXPECT_EQ(
        snap.back(),
        R"x({"type":"reply","id":1,"cmd":"snapshot","ok":false,"error":"unknown-command","detail":"\"snapshot\" requires protocol >= 2 (negotiated 1)"})x");
    auto list = server.handleLine(
        R"({"cmd":"snapshots","id":1})", conn, quit);
    EXPECT_EQ(
        list.back(),
        R"x({"type":"reply","id":1,"cmd":"snapshots","ok":false,"error":"unknown-command","detail":"\"snapshots\" requires protocol >= 2 (negotiated 1)"})x");
    auto restore = server.handleLine(
        R"({"cmd":"restore","id":1})", conn, quit);
    EXPECT_EQ(
        restore.back(),
        R"x({"type":"reply","id":1,"cmd":"restore","ok":false,"error":"unknown-command","detail":"\"restore\" requires protocol >= 2 (negotiated 1)"})x");
}
