/**
 * @file
 * Conformance and unit tests for the compiled-simulation backend
 * (src/jit). The contract under test: jit::JitSim is observably
 * identical to sim::Simulator, cycle for cycle, on every surface
 * the debugger touches — outputs, registers, sync-read latches,
 * memories, nets (including nets the compiler folded or fused
 * away), cycle counters, snapshots and panics. Conformance runs
 * lockstep sweeps over random designs, the checked-in SoC/CPU
 * designs, and the full Verilog accept corpus, in both execution
 * tiers (portable bytecode and, where supported, native code).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "designs/serv_soc.hh"
#include "designs/tinyrv.hh"
#include "jit/compiler.hh"
#include "jit/jitsim.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"
#include "util/random_design.hh"
#include "verilog/verilog.hh"

using namespace zoomie;
using rtl::Builder;
using rtl::Value;

namespace {

uint64_t
splitmix(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * Drive the interpreter and the jit through identical stimulus and
 * require equality on every observable each cycle. @p nets_every
 * additionally compares every net in the design (0 = never): this
 * is what proves on-demand evaluation of compiler-elided nets.
 */
void
expectLockstep(const rtl::Design &d, bool native, uint64_t seed,
               unsigned cycles, unsigned nets_every = 0)
{
    sim::Simulator ref(d);
    jit::JitSim dut(d, native);

    auto compareMems = [&](unsigned cycle) {
        for (uint32_t m = 0; m < d.mems.size(); ++m)
            for (uint32_t a = 0; a < d.mems[m].depth; ++a)
                ASSERT_EQ(ref.memWord(m, a), dut.memWord(m, a))
                    << "cycle " << cycle << " mem "
                    << d.mems[m].name << "[" << a << "]";
    };

    uint64_t rng = seed;
    for (unsigned cycle = 0; cycle <= cycles; ++cycle) {
        for (const rtl::InputPort &in : d.inputs) {
            uint64_t v = splitmix(rng);
            ref.poke(in.name, v);
            dut.poke(in.name, v);
        }
        for (const rtl::OutputPort &out : d.outputs)
            ASSERT_EQ(ref.peek(out.name), dut.peek(out.name))
                << "cycle " << cycle << " output " << out.name;
        for (uint32_t r = 0; r < d.regs.size(); ++r)
            ASSERT_EQ(ref.regValue(r), dut.regValue(r))
                << "cycle " << cycle << " reg " << d.regs[r].name;
        ASSERT_EQ(ref.syncLatchCount(), dut.syncLatchCount());
        for (size_t l = 0; l < ref.syncLatchCount(); ++l)
            ASSERT_EQ(ref.syncLatchValue(l), dut.syncLatchValue(l))
                << "cycle " << cycle << " latch " << l;
        if (nets_every && cycle % nets_every == 0) {
            for (rtl::NetId id = 0; id < d.nodes.size(); ++id)
                ASSERT_EQ(ref.net(id), dut.net(id))
                    << "cycle " << cycle << " net " << id << " ("
                    << rtl::opName(d.nodes[id].op) << ")";
        }
        if (cycle == cycles)
            break;
        ref.run(1);
        dut.run(1);
    }
    compareMems(cycles);
    for (uint8_t c = 0; c < d.clocks.size(); ++c)
        EXPECT_EQ(ref.cycles(c), dut.cycles(c));
    EXPECT_EQ(ref.snapshotRegs(), dut.snapshotRegs());
}

/** Run @p body under both execution tiers. */
template <typename Fn>
void
eachTier(Fn body)
{
    {
        SCOPED_TRACE("tier: bytecode");
        body(false);
    }
    if (jit::NativeCode::supported()) {
        SCOPED_TRACE("tier: native");
        body(true);
    }
}

rtl::Design
counterDesign(unsigned width)
{
    Builder b("counter");
    auto count = b.reg("count", width, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.output("value", count.q);
    return b.finish();
}

} // namespace

// ---- unit semantics (mirrors of the interpreter's own tests) ---------

TEST(JitSim, CounterCounts)
{
    rtl::Design d = counterDesign(8);
    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        EXPECT_EQ(s.peek("value"), 0u);
        s.run(5);
        EXPECT_EQ(s.peek("value"), 5u);
        s.run(251);
        EXPECT_EQ(s.peek("value"), 0u);  // wraps at 8 bits
    });
}

TEST(JitSim, ResetHasPriorityOverData)
{
    Builder b("rst");
    Value rst = b.input("rst", 1);
    auto r = b.reg("r", 8, 7);
    b.connect(r, b.addLit(r.q, 1));
    b.resetTo(r, rst, 42);
    b.output("q", r.q);
    rtl::Design d = b.finish();

    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        EXPECT_EQ(s.peek("q"), 7u);  // power-on init
        s.poke("rst", 1);
        s.step();
        EXPECT_EQ(s.peek("q"), 42u);
        s.poke("rst", 0);
        s.step();
        EXPECT_EQ(s.peek("q"), 43u);
    });
}

TEST(JitSim, EnableGatesUpdates)
{
    Builder b("en");
    Value en = b.input("en", 1);
    auto r = b.reg("r", 4, 0);
    b.connect(r, b.addLit(r.q, 1));
    b.enable(r, en);
    b.output("q", r.q);
    rtl::Design d = b.finish();

    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        s.poke("en", 0);
        s.run(3);
        EXPECT_EQ(s.peek("q"), 0u);
        s.poke("en", 1);
        s.run(3);
        EXPECT_EQ(s.peek("q"), 3u);
    });
}

TEST(JitSim, SyncMemReadHasOneCycleLatency)
{
    Builder b("mem");
    Value addr = b.input("addr", 3);
    auto m = b.mem("m", 8, 8, rtl::MemStyle::Block,
                   {10, 11, 12, 13, 14, 15, 16, 17});
    Value data = b.memReadSync(m, addr);
    b.output("data", data);
    rtl::Design d = b.finish();

    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        s.poke("addr", 3);
        EXPECT_EQ(s.peek("data"), 0u);  // nothing latched yet
        s.step();
        EXPECT_EQ(s.peek("data"), 13u);
        s.poke("addr", 5);
        EXPECT_EQ(s.peek("data"), 13u);  // still the old word
        s.step();
        EXPECT_EQ(s.peek("data"), 15u);
    });
}

TEST(JitSim, AsyncMemReadIsCombinational)
{
    Builder b("memA");
    Value addr = b.input("addr", 3);
    auto m = b.mem("m", 8, 8, rtl::MemStyle::Distributed,
                   {10, 11, 12, 13, 14, 15, 16, 17});
    b.output("data", b.memReadAsync(m, addr));
    rtl::Design d = b.finish();

    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        s.poke("addr", 2);
        EXPECT_EQ(s.peek("data"), 12u);
        s.poke("addr", 7);
        EXPECT_EQ(s.peek("data"), 17u);
    });
}

TEST(JitSim, MemWriteReadsPreWriteWordOnSamePort)
{
    // The sync read latch must capture the pre-write word when a
    // write lands on the same address in the same cycle — exactly
    // the interpreter's (and BRAM's) read-before-write order.
    Builder b("rw");
    Value addr = b.input("addr", 3);
    Value data = b.input("data", 8);
    Value we = b.input("we", 1);
    auto m = b.mem("m", 8, 8, rtl::MemStyle::Block, {1, 2, 3});
    Value q = b.memReadSync(m, addr);
    b.memWrite(m, addr, data, we);
    b.output("q", q);
    rtl::Design d = b.finish();

    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        s.poke("addr", 1);
        s.poke("data", 99);
        s.poke("we", 1);
        s.step();
        EXPECT_EQ(s.peek("q"), 2u);  // pre-write word latched
        s.poke("we", 0);
        s.step();
        EXPECT_EQ(s.peek("q"), 99u);  // write did land
    });
}

// ---- compiler structure ----------------------------------------------

TEST(JitCompile, FoldsAndShrinksTheProgram)
{
    designs::ServSocConfig config;
    config.cores = 2;
    config.coresPerCluster = 2;
    config.clusterBrams = 1;
    config.l2Brams = 1;
    rtl::Design d = designs::buildServSoc(config);
    jit::Program p = jit::compileProgram(d);

    EXPECT_EQ(p.sourceNodes, d.nodes.size());
    EXPECT_GT(p.instrCount, 0u);
    // The whole point of compiling: far fewer executed instructions
    // than design nodes, batched into far fewer dispatch points.
    EXPECT_LT(p.instrCount, p.sourceNodes / 2);
    EXPECT_LT(p.runCount(), p.instrCount);
    EXPECT_EQ(p.slotOf.size(), d.nodes.size());
    EXPECT_EQ(p.regSlot.size(), d.regs.size());
    // The SoC's shift-register datapath must trigger the fusions.
    EXPECT_GT(p.shiftAbsorbs, 0u);
    EXPECT_GT(p.enableRewrites, 0u);
}

TEST(JitCompile, EveryOpcodeHasAMnemonic)
{
    for (unsigned op = 0;
         op < unsigned(jit::BOp::kNumOps); ++op) {
        const char *name = jit::opMnemonic(jit::BOp(op));
        ASSERT_NE(name, nullptr) << "op " << op;
        EXPECT_NE(std::string(name), "") << "op " << op;
    }
}

TEST(JitSim, ElidedNetsAreReadableOnDemand)
{
    // `sum` folds into the register commit; `top` is a dead slice.
    // Neither gets a slot, yet both must read back correctly.
    Builder b("elide");
    Value a = b.input("a", 8);
    auto r = b.reg("r", 8, 0);
    Value sum = b.add(r.q, a);
    b.nameNet("sum", sum);
    Value top = b.slice(sum, 4, 4);
    b.nameNet("top", top);
    b.connect(r, sum);
    b.output("q", r.q);
    rtl::Design d = b.finish();

    eachTier([&](bool native) {
        sim::Simulator ref(d);
        jit::JitSim s(d, native);
        for (uint64_t v : {3u, 250u, 77u}) {
            ref.poke("a", v);
            s.poke("a", v);
            EXPECT_EQ(s.netByName("sum"), ref.netByName("sum"));
            EXPECT_EQ(s.netByName("top"), ref.netByName("top"));
            ref.step();
            s.step();
        }
        EXPECT_EQ(s.peek("q"), ref.peek("q"));
    });
}

// ---- state manipulation ----------------------------------------------

TEST(JitSim, ForceSnapshotRestoreRoundTrip)
{
    rtl::Design d = counterDesign(8);
    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        s.run(10);
        s.forceRegByName("count", 0x1ff);  // truncated to 8 bits
        EXPECT_EQ(s.regByName("count"), 0xffu);
        std::vector<uint64_t> image = s.snapshotRegs();
        s.run(7);
        EXPECT_EQ(s.peek("value"), 6u);
        s.restoreRegs(image);
        EXPECT_EQ(s.peek("value"), 0xffu);
    });
}

TEST(JitSim, ForceMemWordFeedsTheNextRead)
{
    Builder b("fm");
    Value addr = b.input("addr", 2);
    auto m = b.mem("m", 8, 4, rtl::MemStyle::Block);
    b.output("data", b.memReadAsync(m, addr));
    rtl::Design d = b.finish();

    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        s.forceMemWord(0, 2, 0x1aa);  // truncated to 8 bits
        EXPECT_EQ(s.memWord(0, 2), 0xaau);
        s.poke("addr", 2);
        EXPECT_EQ(s.peek("data"), 0xaau);
    });
}

TEST(JitSim, ResetRestoresPowerOnStateButKeepsInputs)
{
    Builder b("rs");
    Value a = b.input("a", 4);
    auto r = b.reg("r", 4, 9);
    b.connect(r, a);
    b.output("q", r.q);
    rtl::Design d = b.finish();

    eachTier([&](bool native) {
        sim::Simulator ref(d);
        jit::JitSim s(d, native);
        for (auto *e : {(sim::Engine *)&ref, (sim::Engine *)&s}) {
            e->poke("a", 5);
            e->run(3);
            e->reset();
        }
        // Identical post-reset observables: init value back, poked
        // input retained, cycle counter NOT cleared.
        EXPECT_EQ(s.peek("q"), ref.peek("q"));
        EXPECT_EQ(s.peek("q"), 9u);
        EXPECT_EQ(s.cycles(0), ref.cycles(0));
        EXPECT_EQ(s.cycles(0), 3u);
        s.step();
        ref.step();
        EXPECT_EQ(s.peek("q"), ref.peek("q"));
        EXPECT_EQ(s.peek("q"), 5u);
    });
}

// ---- multiple clock domains ------------------------------------------

namespace {

/** Two domains with cross-coupled registers plus a domain-1 sync
 *  memory: the canonical simultaneity trap. */
rtl::Design
twoClockDesign()
{
    Builder b("twoclk");
    uint8_t clk1 = b.addClock("clk1");
    Value din = b.input("din", 8);
    auto r0 = b.reg("r0", 8, 1, 0);
    auto r1 = b.reg("r1", 8, 2, clk1);
    b.connect(r0, r1.q);  // cross-coupled: swap on a joint edge
    b.connect(r1, r0.q);
    auto m = b.mem("m", 8, 4, rtl::MemStyle::Block, {7, 8, 9, 10});
    Value q = b.memReadSync(m, b.slice(din, 0, 2), clk1);
    b.memWrite(m, b.slice(din, 2, 2), din, b.bit(din, 7), 0);
    b.output("o0", r0.q);
    b.output("o1", r1.q);
    b.output("md", q);
    return b.finish();
}

} // namespace

TEST(JitSim, RunStepsAllDomainsSimultaneously)
{
    rtl::Design d = twoClockDesign();
    eachTier([&](bool native) {
        jit::JitSim s(d, native);
        s.poke("din", 0);
        s.run(1);
        // A sequential (domain-at-a-time) implementation would
        // read the already-updated partner; simultaneous commit
        // swaps the values.
        EXPECT_EQ(s.peek("o0"), 2u);
        EXPECT_EQ(s.peek("o1"), 1u);
        s.run(1);
        EXPECT_EQ(s.peek("o0"), 1u);
        EXPECT_EQ(s.peek("o1"), 2u);
        EXPECT_EQ(s.cycles(0), 2u);
        EXPECT_EQ(s.cycles(1), 2u);
    });
}

TEST(JitSim, StepDomainsFiltersClocks)
{
    rtl::Design d = twoClockDesign();
    eachTier([&](bool native) {
        sim::Simulator ref(d);
        jit::JitSim s(d, native);
        uint64_t rng = 77;
        // A mix of subset, full, duplicate and empty clock lists.
        const std::vector<std::vector<uint8_t>> plans = {
            {0}, {1}, {0, 1}, {1, 0}, {0, 0}, {}, {1, 1, 0}};
        for (unsigned i = 0; i < 40; ++i) {
            uint64_t v = splitmix(rng);
            ref.poke("din", v);
            s.poke("din", v);
            const auto &clocks = plans[i % plans.size()];
            ref.stepDomains(clocks);
            s.stepDomains(clocks);
            ASSERT_EQ(ref.peek("o0"), s.peek("o0")) << "step " << i;
            ASSERT_EQ(ref.peek("o1"), s.peek("o1")) << "step " << i;
            ASSERT_EQ(ref.peek("md"), s.peek("md")) << "step " << i;
            for (uint32_t a = 0; a < 4; ++a)
                ASSERT_EQ(ref.memWord(0, a), s.memWord(0, a))
                    << "step " << i;
            // Duplicate entries double-count, on both engines.
            ASSERT_EQ(ref.cycles(0), s.cycles(0)) << "step " << i;
            ASSERT_EQ(ref.cycles(1), s.cycles(1)) << "step " << i;
        }
    });
}

// ---- native tier gating ----------------------------------------------

TEST(JitSim, NativeTierCanBeDisabled)
{
    rtl::Design d = counterDesign(16);
    jit::JitSim forced_off(d, false);
    EXPECT_FALSE(forced_off.nativeActive());
    forced_off.run(3);
    EXPECT_EQ(forced_off.peek("value"), 3u);

    jit::JitSim on(d, true);
    if (!jit::NativeCode::supported()) {
        EXPECT_FALSE(on.nativeActive());
    }
    on.run(3);
    EXPECT_EQ(on.peek("value"), 3u);
}

// ---- panic parity -----------------------------------------------------

TEST(JitSimDeathTest, PanicsMatchTheInterpreter)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    rtl::Design d = counterDesign(8);
    jit::JitSim s(d, false);
    EXPECT_DEATH(s.poke("nope", 1), "unknown input port 'nope'");
    EXPECT_DEATH(s.peek("nope"), "unknown output port 'nope'");
    EXPECT_DEATH(s.regByName("nope"), "unknown register 'nope'");
    EXPECT_DEATH(s.netByName("nope"), "unknown net 'nope'");
    EXPECT_DEATH(s.regValue(99), "register index out of range");
    EXPECT_DEATH(s.memWord(0, 0), "memory index out of range");
    EXPECT_DEATH(s.restoreRegs({1, 2, 3}),
                 "snapshot size mismatch");
}

// ---- lockstep conformance sweeps -------------------------------------

TEST(JitConformance, RandomDesignsMatchInterpreter)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        testutil::RandomDesignSpec spec;
        spec.seed = seed;
        spec.numOps = 80 + unsigned(seed) * 10;
        spec.numRegs = 10;
        spec.numMems = 2;
        rtl::Design d = testutil::makeRandomDesign(spec);
        eachTier([&](bool native) {
            SCOPED_TRACE("seed " + std::to_string(seed));
            // Compare every net every 8 cycles: elided-net
            // evaluation agrees with the interpreter everywhere.
            expectLockstep(d, native, seed * 101, 64, 8);
        });
    }
}

TEST(JitConformance, ServSocMatchesInterpreterCycleForCycle)
{
    designs::ServSocConfig config;
    config.cores = 2;
    config.coresPerCluster = 2;
    config.clusterBrams = 1;
    config.l2Brams = 1;
    rtl::Design d = designs::buildServSoc(config);
    eachTier(
        [&](bool native) { expectLockstep(d, native, 42, 400); });
}

TEST(JitConformance, TinyRvMatchesInterpreterCycleForCycle)
{
    using namespace designs::rv;
    // Arithmetic, memory traffic, a loop, and a trap: the whole
    // micro-FSM plus the exception path.
    std::vector<uint32_t> prog = {
        addi(1, 0, 5),       // x1 = 5
        addi(2, 0, 0),       // x2 = 0 (accumulator)
        add(2, 2, 1),        // loop: x2 += x1
        addi(1, 1, -1),      // x1 -= 1
        bne(1, 0, -8),       // until x1 == 0
        sw(2, 0, 0x100),     // mem[0x40] = 15
        lw(3, 0, 0x100),     // x3 = 15
        ecall(),             // trap (mtvec=0 -> refetch)
    };
    rtl::Design d = designs::buildTinyRv(prog);
    eachTier(
        [&](bool native) { expectLockstep(d, native, 7, 1200); });
}

TEST(JitConformance, VerilogAcceptCorpusMatchesInterpreter)
{
    namespace fs = std::filesystem;
    const fs::path corpus =
        fs::path(ZOOMIE_VCORPUS_DIR) / "accept";
    ASSERT_TRUE(fs::exists(corpus));

    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(corpus))
        if (entry.path().extension() == ".v")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 18u);

    for (const fs::path &file : files) {
        std::ifstream in(file);
        std::stringstream text;
        text << in.rdbuf();
        verilog::CompileOptions options;
        options.file = file.filename().string();
        verilog::CompileResult result =
            verilog::compile(text.str(), options);
        ASSERT_TRUE(result.ok)
            << file << "\n" << result.renderDiags();
        eachTier([&](bool native) {
            SCOPED_TRACE(file.filename().string());
            expectLockstep(*result.design, native, 0xc0ffee, 64,
                           16);
        });
    }
}
