/**
 * @file
 * Tests for technology mapping: structural properties (LUT arity,
 * provenance, RAM inference) and differential equivalence between
 * the RTL simulator and the mapped-netlist interpreter on both
 * hand-written and randomly generated designs.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"
#include "synth/netlistsim.hh"
#include "synth/techmap.hh"
#include "util/random_design.hh"

using namespace zoomie;
using rtl::Builder;
using rtl::Value;
using synth::CellKind;
using synth::MappedNetlist;

namespace {

/** Drive both simulators with the same random stimulus and compare
 *  every output for @p cycles cycles. */
void
expectEquivalent(const rtl::Design &design, uint64_t seed,
                 unsigned cycles)
{
    MappedNetlist net = synth::techMap(design);
    sim::Simulator gold(design);
    synth::NetlistSim mapped(net);

    Rng rng(seed);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        for (const auto &in : design.inputs) {
            uint64_t v = rng.nextBits(in.width);
            gold.poke(in.name, v);
            mapped.poke(in.name, v);
        }
        for (const auto &out : design.outputs) {
            ASSERT_EQ(gold.peek(out.name), mapped.peek(out.name))
                << "output '" << out.name << "' diverged at cycle "
                << cycle << " (design " << design.name << ")";
        }
        gold.step();
        mapped.step();
    }
}

} // namespace

TEST(TechMap, LutArityNeverExceedsSix)
{
    testutil::RandomDesignSpec spec;
    spec.seed = 7;
    spec.numOps = 120;
    rtl::Design d = testutil::makeRandomDesign(spec);
    MappedNetlist net = synth::techMap(d);
    for (const auto &cell : net.cells) {
        if (cell.kind == CellKind::Lut) {
            EXPECT_GE(cell.nIn, 1u);
            EXPECT_LE(cell.nIn, 6u);
            for (unsigned i = 0; i < cell.nIn; ++i)
                EXPECT_LT(cell.in[i], net.cells.size());
        }
    }
}

TEST(TechMap, FFProvenanceCoversEveryRegisterBit)
{
    Builder b("prov");
    b.pushScope("core");
    auto r = b.reg("pc", 12, 0x123);
    b.connect(r, b.addLit(r.q, 4));
    b.popScope();
    b.output("pc", r.q);
    rtl::Design d = b.finish();

    MappedNetlist net = synth::techMap(d);
    unsigned ff_bits = 0;
    for (const auto &cell : net.cells) {
        if (cell.kind != CellKind::FF)
            continue;
        EXPECT_EQ(cell.src, 0u);
        EXPECT_LT(cell.srcBit, 12u);
        EXPECT_EQ(net.scopeNames[cell.scope], "core/");
        // init bits must reproduce the power-on value
        EXPECT_EQ(cell.init, ((0x123u >> cell.srcBit) & 1) != 0);
        ++ff_bits;
    }
    EXPECT_EQ(ff_bits, 12u);
}

TEST(TechMap, SmallMemoryBecomesLutram)
{
    Builder b("lr");
    Value addr = b.input("addr", 5);
    auto m = b.mem("rf", 32, 32);  // 1024 bits, depth 32 -> LUTRAM
    b.output("q", b.memReadAsync(m, addr));
    rtl::Design d = b.finish();

    MappedNetlist net = synth::techMap(d);
    ASSERT_EQ(net.rams.size(), 1u);
    EXPECT_EQ(net.rams[0].style, synth::RamStyle::Lutram);
    EXPECT_EQ(net.rams[0].physCells, 32u);  // ceil(32/64)*32*1 port
    EXPECT_EQ(net.totals().lutramLuts, 32u);
}

TEST(TechMap, LargeMemoryBecomesBram)
{
    Builder b("br");
    Value addr = b.input("addr", 12);
    auto m = b.mem("buf", 32, 4096);
    b.output("q", b.memReadSync(m, addr));
    rtl::Design d = b.finish();

    MappedNetlist net = synth::techMap(d);
    ASSERT_EQ(net.rams.size(), 1u);
    EXPECT_EQ(net.rams[0].style, synth::RamStyle::Bram);
    // 4096 x 32b = 128Kb needs 4 BRAM36 (1Kx36 config, 4 deep).
    EXPECT_EQ(net.rams[0].physCells, 4u);
}

TEST(TechMap, BramAspectRatioPicksMinimalCount)
{
    // 512 x 64 fits one 512x72 BRAM36.
    Builder b("ar");
    Value addr = b.input("addr", 9);
    auto m = b.mem("wide", 64, 512);
    b.output("q", b.memReadSync(m, addr));
    rtl::Design d = b.finish();
    MappedNetlist net = synth::techMap(d);
    EXPECT_EQ(net.rams[0].physCells, 1u);
}

TEST(TechMap, ConstantsFoldAway)
{
    Builder b("fold");
    Value a = b.input("a", 8);
    Value zero = b.lit(0, 8);
    b.output("o1", b.band(a, zero));       // == 0
    b.output("o2", b.bor(a, b.lit(0xFF, 8)));  // == 0xFF
    rtl::Design d = b.finish();

    MappedNetlist net = synth::techMap(d);
    EXPECT_EQ(net.totals().luts, 0u);
}

TEST(TechMap, CounterEquivalence)
{
    Builder b("counter");
    auto count = b.reg("count", 8, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.output("value", count.q);
    expectEquivalent(b.finish(), 99, 300);
}

TEST(TechMap, AluEquivalence)
{
    Builder b("alu");
    Value a = b.input("a", 16);
    Value c = b.input("c", 16);
    Value op = b.input("op", 2);
    Value add = b.add(a, c);
    Value sub = b.sub(a, c);
    Value andv = b.band(a, c);
    Value orv = b.bor(a, c);
    Value lo = b.mux(b.bit(op, 0), sub, add);
    Value hi = b.mux(b.bit(op, 0), orv, andv);
    b.output("y", b.mux(b.bit(op, 1), hi, lo));
    b.output("eq", b.eq(a, c));
    b.output("lt", b.ult(a, c));
    b.output("mul", b.mul(b.slice(a, 0, 8), b.slice(c, 0, 8)));
    expectEquivalent(b.finish(), 123, 200);
}

TEST(TechMap, ShifterEquivalence)
{
    Builder b("shift");
    Value a = b.input("a", 32);
    Value amt = b.input("amt", 6);
    b.output("l", b.shl(a, amt));
    b.output("r", b.shr(a, amt));
    expectEquivalent(b.finish(), 5, 200);
}

TEST(TechMap, MemoryEquivalence)
{
    Builder b("memdiff");
    Value addr = b.input("addr", 6);
    Value waddr = b.input("waddr", 6);
    Value data = b.input("data", 16);
    Value we = b.input("we", 1);
    auto m = b.mem("m", 16, 64, rtl::MemStyle::Block);
    b.output("q", b.memReadSync(m, addr));
    b.memWrite(m, waddr, data, we);
    auto m2 = b.mem("m2", 8, 32, rtl::MemStyle::Distributed);
    b.output("q2", b.memReadAsync(m2, b.slice(addr, 0, 5)));
    b.memWrite(m2, b.slice(waddr, 0, 5), b.slice(data, 0, 8), we);
    expectEquivalent(b.finish(), 321, 300);
}

/** Property sweep: random designs stay equivalent after mapping. */
class TechMapRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TechMapRandom, RandomDesignEquivalence)
{
    testutil::RandomDesignSpec spec;
    spec.seed = GetParam();
    spec.numOps = 80;
    spec.numRegs = 10;
    spec.numMems = 2;
    rtl::Design d = testutil::makeRandomDesign(spec);
    expectEquivalent(d, spec.seed * 31 + 7, 120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TechMapRandom,
                         ::testing::Range<uint64_t>(1, 21));

TEST(TechMap, WorkCountersPopulated)
{
    testutil::RandomDesignSpec spec;
    spec.seed = 3;
    rtl::Design d = testutil::makeRandomDesign(spec);
    synth::MapWork work;
    MappedNetlist net = synth::techMap(d, {}, &work);
    EXPECT_GT(work.gatesLowered, 0u);
    EXPECT_GT(work.cutsEvaluated, 0u);
    EXPECT_EQ(work.lutsEmitted, net.totals().luts);
}

TEST(TechMap, LogicLevelsPositiveForCombPath)
{
    Builder b("lvl");
    Value a = b.input("a", 32);
    Value c = b.input("c", 32);
    b.output("y", b.add(b.add(a, c), b.add(a, c)));
    rtl::Design d = b.finish();
    MappedNetlist net = synth::techMap(d);
    EXPECT_GE(net.logicLevels(), 2u);
}

TEST(TechMap, ComputeBoundaryMatchesMapperBookkeeping)
{
    // The VTI linker trusts computeBoundary() to reproduce exactly
    // the boundary lists a techMap() call records — check the
    // invariant on random partitioned designs.
    for (uint64_t seed : {4ull, 13ull, 27ull, 55ull, 81ull}) {
        testutil::RandomDesignSpec spec;
        spec.seed = seed;
        spec.numOps = 90;
        spec.numRegs = 10;
        spec.numScopes = 3;
        rtl::Design d = testutil::makeRandomDesign(spec);

        for (const char *prefix : {"sub0/", "sub1/", "sub2/"}) {
            synth::MapOptions inc, exc;
            inc.includePrefixes = {prefix};
            exc.excludePrefixes = {prefix};
            for (const synth::MapOptions &opts : {inc, exc}) {
                MappedNetlist net = synth::techMap(d, opts);
                synth::PartitionBoundary boundary =
                    synth::computeBoundary(d, opts);
                EXPECT_EQ(net.boundaryInNets,
                          std::vector<uint32_t>(boundary.ins.begin(),
                                                boundary.ins.end()))
                    << "ins mismatch seed " << seed << " prefix "
                    << prefix;
                EXPECT_EQ(net.boundaryOutNets,
                          std::vector<uint32_t>(
                              boundary.outs.begin(),
                              boundary.outs.end()))
                    << "outs mismatch seed " << seed << " prefix "
                    << prefix;
            }
        }
    }
}

TEST(TechMap, PartitionNetlistRefusesDirectExecution)
{
    rtl::Builder b("p");
    b.pushScope("sub");
    auto r = b.reg("r", 4, 0);
    b.popScope();
    rtl::Value in = b.input("in", 4);
    b.pushScope("sub");
    b.connect(r, b.add(r.q, in));
    b.popScope();
    b.output("out", r.q);
    rtl::Design d = b.finish();

    synth::MapOptions opts;
    opts.includePrefixes = {"sub/"};
    MappedNetlist part = synth::techMap(d, opts);
    ASSERT_FALSE(part.boundaryInNets.empty());
    EXPECT_DEATH(synth::NetlistSim sim(part), "unlinked partition");
}
