/**
 * @file
 * The incremental lint engine and content-addressed caches, pinned
 * from every angle the PR promises:
 *
 *  - differential sweep: cached-vs-cold lint reports byte-identical
 *    over the whole Verilog accept corpus and serv_soc (with its
 *    checked-in waiver file), on both the whole-design (L1) and the
 *    per-module slice (L2) paths;
 *  - incrementality: editing one module of a multi-module design
 *    re-runs module-local analysis for *only* that module, pinned
 *    by the RunMetrics pass-invocation list;
 *  - integrity: poisoned or truncated cache entries are detected by
 *    the checksum re-check and recomputed, never served;
 *  - toolchain: cached-vs-cold VendorTool/Vti compile outputs are
 *    byte-identical (bitstream *and* modeled times);
 *  - concurrency: many threads sharing one AnalysisCache and one
 *    ArtifactStore (the TSan job runs this file);
 *  - the wire: a second open_source of identical RTL reports
 *    partition-artifact hits through `cache_stats`/`sessions`.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "designs/serv_soc.hh"
#include "lint/cache.hh"
#include "lint/lint.hh"
#include "lint/modhash.hh"
#include "rdp/server.hh"
#include "rtl/builder.hh"
#include "toolchain/flows.hh"
#include "verilog/verilog.hh"

using namespace zoomie;

namespace {

/** Every file in the accept corpus (mirrors test_verilog.cc). */
const std::vector<std::string> kAcceptCorpus = {
    "always_comb_if.v", "case_default.v", "classic_ports.v",
    "concat_slice.v",   "counter.v",      "counter_enable.v",
    "fifo.v",           "fsm_case.v",     "hierarchy.v",
    "memory.v",         "multi_decl.v",   "mux_ternary.v",
    "params.v",         "reductions.v",   "replication.v",
    "rmw_bits.v",       "shift_ops.v",    "wide64.v",
};

std::string
readCorpus(const std::string &name)
{
    std::string path =
        std::string(ZOOMIE_VCORPUS_DIR) + "/accept/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(bool(in)) << "cannot read corpus file " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

rtl::Design
compileCorpus(const std::string &name)
{
    verilog::CompileOptions options;
    options.file = name;
    verilog::CompileResult result =
        verilog::compile(readCorpus(name), options);
    EXPECT_TRUE(result.ok && result.design) << name;
    return std::move(*result.design);
}

/** Full report text including waived findings: the byte-identity
 *  oracle for every cached-vs-cold comparison. */
std::string
reportText(const lint::Report &report)
{
    return report.renderText(/*showWaived=*/true);
}

/**
 * Two independent single-register modules plus top-level outputs.
 * @p incA is modA's increment: changing it is an edit confined to
 * modA (same node count, same net ids) — modB's and the top's
 * content *and* context digests must survive it.
 */
rtl::Design
buildDuo(uint64_t incA)
{
    rtl::Builder b("duo");
    b.pushScope("modA");
    auto a = b.reg("count", 16, 0);
    b.connect(a, b.addLit(a.q, incA));
    b.popScope();
    b.pushScope("modB");
    auto c = b.reg("count", 16, 0);
    b.connect(c, b.addLit(c.q, 1));
    b.popScope();
    b.output("a_value", b.handleFor(a.q.id));
    b.output("b_value", b.handleFor(c.q.id));
    return b.finish();
}

/** The RDP demo counter (all logic inside scope "mut/"). */
rtl::Design
buildCounter()
{
    rtl::Builder b("app");
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    return b.finish();
}

/**
 * A two-tile accumulator SoC small enough for the stock test
 * device; the artifact-cache tests compile it whole and partition
 * it on "tileB/".
 */
rtl::Design
buildSoc()
{
    rtl::Builder b("cache_soc");
    rtl::Value in = b.input("in", 8);
    b.pushScope("tileA");
    auto accA = b.reg("acc", 8, 0);
    b.connect(accA, b.add(accA.q, in));
    b.popScope();
    b.pushScope("tileB");
    auto accB = b.reg("acc", 8, 0);
    b.connect(accB, b.bxor(accB.q, in));
    b.popScope();
    b.output("sum", b.add(accA.q, accB.q));
    return b.finish();
}

/** Module-local pass ids (the slice-cacheable set). */
const std::set<std::string> kGlobalPasses = {
    "structural", "comb-loop", "reset-coverage"};

} // namespace

// ---- differential sweep: cached == cold, byte for byte ---------------

TEST(LintCacheSweep, CorpusWarmL1MatchesColdByteForByte)
{
    lint::Linter linter;
    for (const std::string &name : kAcceptCorpus) {
        SCOPED_TRACE(name);
        rtl::Design design = compileCorpus(name);
        std::string cold =
            reportText(linter.run(design, lint::Options{}));

        lint::AnalysisCache cache;
        lint::RunMetrics first, second;
        std::string warm1 = reportText(linter.run(
            design, lint::Options{}, &cache, &first));
        std::string warm2 = reportText(linter.run(
            design, lint::Options{}, &cache, &second));

        EXPECT_EQ(warm1, cold);
        EXPECT_EQ(warm2, cold);
        EXPECT_FALSE(first.l1Hit);
        EXPECT_TRUE(second.l1Hit) << "second run must serve the "
                                     "whole-design entry";
        EXPECT_TRUE(second.invoked.empty())
            << "an L1 hit must not execute any pass";
    }
}

TEST(LintCacheSweep, CorpusSlicePathMatchesColdByteForByte)
{
    lint::Linter linter;
    for (const std::string &name : kAcceptCorpus) {
        SCOPED_TRACE(name);
        rtl::Design design = compileCorpus(name);
        std::string cold =
            reportText(linter.run(design, lint::Options{}));

        lint::AnalysisCache cache;
        lint::RunMetrics populate, sliced;
        linter.run(design, lint::Options{}, &cache, &populate);
        // Dropping the whole-design entry forces the per-module
        // slice path on the re-run.
        ASSERT_FALSE(populate.wholeKey.empty());
        cache.erase(populate.wholeKey);
        std::string merged = reportText(linter.run(
            design, lint::Options{}, &cache, &sliced));

        EXPECT_EQ(merged, cold);
        EXPECT_FALSE(sliced.l1Hit);
        if (sliced.sliceCaching) {
            EXPECT_GT(sliced.cacheHits, 0u) << "sound designs must "
                                               "reuse module slices";
            // Every module-local invocation would mean a slice was
            // recomputed although nothing changed.
            for (const auto &[pass, module] : sliced.invoked) {
                EXPECT_TRUE(kGlobalPasses.count(pass))
                    << pass << " re-ran for module '" << module
                    << "' despite unchanged digests";
            }
        }
    }
}

TEST(LintCacheSweep, ServSocWithWaiversMatchesCold)
{
    // Waivers are applied post-merge: the cached run must reproduce
    // the waived report byte-for-byte, stale notes included.
    lint::Options options;
    std::string error;
    ASSERT_TRUE(lint::WaiverSet::load(
        std::string(ZOOMIE_WAIVER_DIR) + "/serv_soc.waive",
        options.waivers, &error))
        << error;

    rtl::Design design = designs::buildServSoc({});
    lint::Linter linter;
    std::string cold = reportText(linter.run(design, options));

    lint::AnalysisCache cache;
    lint::RunMetrics first, second;
    std::string warm1 =
        reportText(linter.run(design, options, &cache, &first));
    std::string warm2 =
        reportText(linter.run(design, options, &cache, &second));
    EXPECT_EQ(warm1, cold);
    EXPECT_EQ(warm2, cold);
    EXPECT_TRUE(second.l1Hit);

    // And the slice path, with waivers still applied post-merge.
    cache.erase(first.wholeKey);
    lint::RunMetrics sliced;
    std::string merged =
        reportText(linter.run(design, options, &cache, &sliced));
    EXPECT_EQ(merged, cold);
}

// ---- incrementality: one edited module re-lints alone ----------------

TEST(LintCacheIncremental, EditReRunsOnlyTheChangedModule)
{
    lint::Linter linter;
    lint::AnalysisCache cache;

    lint::RunMetrics populate;
    rtl::Design v0 = buildDuo(1);
    linter.run(v0, lint::Options{}, &cache, &populate);
    ASSERT_TRUE(populate.sliceCaching);

    // The edit: modA increments by 2. Same shape, same net ids —
    // only modA's content digest may change.
    rtl::Design v1 = buildDuo(2);
    std::string cold =
        reportText(linter.run(v1, lint::Options{}));
    lint::RunMetrics metrics;
    std::string merged = reportText(
        linter.run(v1, lint::Options{}, &cache, &metrics));

    EXPECT_EQ(merged, cold) << "merged cached+fresh report must be "
                               "byte-identical to a cold run";
    EXPECT_FALSE(metrics.l1Hit);
    ASSERT_TRUE(metrics.sliceCaching);

    // Slice bookkeeping: modA stale, modB and the top reused.
    EXPECT_EQ(metrics.cacheHits, 2u);   // modB + top slices
    EXPECT_EQ(metrics.cacheMisses, 2u); // L1 + modA slice
    for (const lint::RunMetrics::ModuleRecord &m : metrics.modules) {
        if (m.module == "modA")
            EXPECT_FALSE(m.reused);
        else
            EXPECT_TRUE(m.reused) << "module '" << m.module << "'";
    }

    // The pass-invocation counter that pins incrementality: every
    // module-local pass execution names modA and nothing else.
    bool sawLocal = false;
    for (const auto &[pass, module] : metrics.invoked) {
        if (kGlobalPasses.count(pass)) {
            EXPECT_EQ(module, "*");
            continue;
        }
        sawLocal = true;
        EXPECT_EQ(module, "modA")
            << pass << " re-ran for unchanged module '" << module
            << "'";
    }
    EXPECT_TRUE(sawLocal);
}

TEST(LintCacheIncremental, IdenticalRerunExecutesNoPasses)
{
    lint::Linter linter;
    lint::AnalysisCache cache;
    rtl::Design design = buildDuo(1);
    linter.run(design, lint::Options{}, &cache, nullptr);

    lint::RunMetrics metrics;
    linter.run(design, lint::Options{}, &cache, &metrics);
    EXPECT_TRUE(metrics.l1Hit);
    EXPECT_EQ(metrics.cacheHits, 1u);
    EXPECT_EQ(metrics.cacheMisses, 0u);
    EXPECT_TRUE(metrics.invoked.empty());
}

TEST(LintCacheIncremental, PassSelectionKeysAreDisjoint)
{
    // A slice cached under one pass selection must not serve a run
    // with another: the selection is part of every key.
    lint::Linter linter;
    lint::AnalysisCache cache;
    rtl::Design design = buildDuo(1);

    lint::Options width_only;
    width_only.passes = {"width"};
    linter.run(design, width_only, &cache, nullptr);

    lint::Options unused_only;
    unused_only.passes = {"unused"};
    lint::RunMetrics metrics;
    std::string cached = reportText(
        linter.run(design, unused_only, &cache, &metrics));
    EXPECT_FALSE(metrics.l1Hit);
    EXPECT_EQ(cached,
              reportText(linter.run(design, unused_only)));
}

// ---- integrity: poisoned entries are recomputed, never served --------

TEST(LintCacheIntegrity, CorruptedEntryIsEvictedAndRecomputed)
{
    lint::Linter linter;
    lint::AnalysisCache cache;
    rtl::Design design = designs::buildServSoc({});
    std::string cold = reportText(linter.run(design, lint::Options{}));

    lint::RunMetrics populate;
    linter.run(design, lint::Options{}, &cache, &populate);
    ASSERT_TRUE(cache.corruptEntryForTest(populate.wholeKey));

    lint::RunMetrics metrics;
    std::string recomputed = reportText(
        linter.run(design, lint::Options{}, &cache, &metrics));
    EXPECT_EQ(recomputed, cold);
    EXPECT_FALSE(metrics.l1Hit)
        << "a poisoned entry must never be served";
    EXPECT_GE(cache.stats().corruptEvictions, 1u);
}

TEST(LintCacheIntegrity, TruncatedDiskEntryIsRejected)
{
    const std::string dir = "lint_cache_trunc_dir";
    rtl::Design design = buildCounter();
    lint::Linter linter;
    std::string cold = reportText(linter.run(design, lint::Options{}));

    std::string wholeKey;
    {
        lint::AnalysisCache cache(dir);
        lint::RunMetrics populate;
        linter.run(design, lint::Options{}, &cache, &populate);
        wholeKey = populate.wholeKey;
    }
    ASSERT_FALSE(wholeKey.empty());

    // Truncate the mirrored blob mid-payload: a partial write.
    std::string path = dir + "/" + wholeKey + ".zlc";
    {
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(bool(in)) << "no disk mirror at " << path;
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string blob = buf.str();
        ASSERT_GT(blob.size(), 8u);
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(blob.data(),
                  std::streamsize(blob.size() / 2));
    }

    // A fresh cache instance falls back to disk, must detect the
    // truncation, and recomputes an identical report.
    lint::AnalysisCache cache(dir);
    lint::RunMetrics metrics;
    std::string recomputed = reportText(
        linter.run(design, lint::Options{}, &cache, &metrics));
    EXPECT_EQ(recomputed, cold);
    EXPECT_FALSE(metrics.l1Hit);
    EXPECT_GE(cache.stats().corruptEvictions, 1u);
    std::remove(path.c_str());
}

// ---- satellite: stale-waiver notes are deduplicated ------------------

TEST(LintWaivers, DuplicateStaleWaiversReportOnce)
{
    // The same waiver file loaded once per partition used to emit
    // one stale note per copy; apply() now dedups by fingerprint.
    lint::Options options;
    for (int copy = 0; copy < 3; ++copy) {
        lint::Waiver w;
        w.fingerprint = "deadbeefdeadbeef";
        options.waivers.add(w);
    }
    lint::Linter linter;
    lint::Report report = linter.run(buildCounter(), options);
    size_t staleNotes = 0;
    for (const lint::Diagnostic &d : report.diags) {
        if (d.pass == "lint" &&
            d.message.find("waiver deadbeefdeadbeef") !=
                std::string::npos)
            ++staleNotes;
    }
    EXPECT_EQ(staleNotes, 1u);
}

// ---- toolchain: cached compiles are byte-identical -------------------

namespace {

void
expectCompileResultsIdentical(const toolchain::CompileResult &a,
                              const toolchain::CompileResult &b)
{
    EXPECT_EQ(a.bitstream, b.bitstream);
    EXPECT_EQ(a.netlist.cells.size(), b.netlist.cells.size());
    EXPECT_EQ(a.netlist.rams.size(), b.netlist.rams.size());
    // Modeled wall-clock must match exactly: the cached path
    // restores the synthesis work counters the cost model bills.
    EXPECT_EQ(a.time.synth, b.time.synth);
    EXPECT_EQ(a.time.place, b.time.place);
    EXPECT_EQ(a.time.route, b.time.route);
    EXPECT_EQ(a.time.bitgen, b.time.bitgen);
    EXPECT_EQ(a.time.link, b.time.link);
}

} // namespace

TEST(ArtifactCache, VendorToolCachedCompileIsByteIdentical)
{
    rtl::Design design = buildSoc();
    fpga::DeviceSpec dev = fpga::makeTestDevice();

    toolchain::VendorTool cold_tool(dev);
    toolchain::CompileResult cold = cold_tool.compile(design);
    EXPECT_EQ(cold.artifactHits, 0u);
    EXPECT_EQ(cold.artifactMisses, 0u);

    toolchain::ArtifactStore store;
    toolchain::VendorTool tool(dev);
    tool.artifacts = &store;
    toolchain::CompileResult first = tool.compile(design);
    EXPECT_EQ(first.artifactMisses, 1u);
    toolchain::CompileResult second = tool.compile(design);
    EXPECT_EQ(second.artifactHits, 1u);

    expectCompileResultsIdentical(cold, first);
    expectCompileResultsIdentical(cold, second);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().stores, 1u);
}

TEST(ArtifactCache, VtiSecondSessionReusesEveryPartition)
{
    rtl::Design design = buildSoc();
    fpga::DeviceSpec dev = fpga::makeTestDevice();

    toolchain::ArtifactStore store;
    toolchain::Vti::Options opts;
    opts.iteratedModules = {"tileB/"};
    opts.artifacts = &store;

    // Two Vti instances model two sessions compiling identical RTL.
    toolchain::Vti first_session(dev, opts);
    toolchain::CompileResult first =
        first_session.compileInitial(design);
    EXPECT_EQ(first.artifactHits, 0u);
    EXPECT_GE(first.artifactMisses, 2u); // static + iterated part

    toolchain::Vti second_session(dev, opts);
    toolchain::CompileResult second =
        second_session.compileInitial(design);
    EXPECT_EQ(second.artifactMisses, 0u);
    EXPECT_EQ(second.artifactHits, first.artifactMisses);

    expectCompileResultsIdentical(first, second);
}

TEST(ArtifactCache, CorruptedArtifactIsRecomputed)
{
    rtl::Design design = buildCounter();
    fpga::DeviceSpec dev = fpga::makeTestDevice();

    toolchain::ArtifactStore store;
    toolchain::VendorTool tool(dev);
    tool.artifacts = &store;
    toolchain::CompileResult first = tool.compile(design);

    std::string key = toolchain::ArtifactStore::partitionKey(
        design, synth::MapOptions{});
    ASSERT_TRUE(store.corruptEntryForTest(key));

    toolchain::CompileResult second = tool.compile(design);
    EXPECT_EQ(second.artifactHits, 0u)
        << "a poisoned artifact must never be served";
    EXPECT_EQ(second.artifactMisses, 1u);
    EXPECT_GE(store.stats().corruptEvictions, 1u);
    expectCompileResultsIdentical(first, second);
}

// ---- concurrency: shared caches under parallel sessions --------------

TEST(LintCacheConcurrency, ManyThreadsShareOneCache)
{
    // Run under TSan in CI: concurrent fetch/store/evict on one
    // AnalysisCache and one ArtifactStore, mixed hit/miss traffic.
    lint::Linter linter;
    lint::AnalysisCache cache(/*dir=*/"", /*max_bytes=*/1 << 16);
    toolchain::ArtifactStore store;
    fpga::DeviceSpec dev = fpga::makeTestDevice();

    rtl::Design duo = buildDuo(1);
    std::string expected =
        reportText(linter.run(duo, lint::Options{}));

    constexpr int kThreads = 4;
    constexpr int kIters = 8;
    std::vector<std::string> failures(kThreads);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                // Distinct designs per thread keep keys colliding
                // and evicting under the tiny byte cap.
                rtl::Design design = buildDuo(1 + (t + i) % 3);
                lint::Report report = linter.run(
                    design, lint::Options{}, &cache, nullptr);
                if ((t + i) % 3 == 0 &&
                    reportText(report) != expected) {
                    failures[t] = "report mismatch at iter " +
                                  std::to_string(i);
                    return;
                }
                toolchain::VendorTool tool(dev);
                tool.artifacts = &store;
                toolchain::CompileResult res = tool.compile(design);
                if (res.bitstream.empty()) {
                    failures[t] = "empty bitstream at iter " +
                                  std::to_string(i);
                    return;
                }
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_TRUE(failures[t].empty())
            << "thread " << t << ": " << failures[t];
    EXPECT_GT(store.stats().hits, 0u);
}

// ---- the wire: cache_stats / sessions / lint counters ----------------

namespace {

const std::string kUpload =
    R"({"cmd":"open_source","text":"module counter(input clk, output [15:0] value);\n  reg [15:0] count;\n  always @(posedge clk) count <= count + 1;\n  assign value = count;\nendmodule\n"})";

rdp::Json
parsedReply(const std::vector<std::string> &out)
{
    EXPECT_FALSE(out.empty());
    auto reply = rdp::Json::parse(out.back());
    EXPECT_TRUE(reply) << out.back();
    return reply ? *reply : rdp::Json::object();
}

uint64_t
field(const rdp::Json &obj, const std::string &key)
{
    const rdp::Json *v = obj.find(key);
    EXPECT_NE(v, nullptr) << "missing field " << key;
    return v ? v->asU64() : 0;
}

} // namespace

TEST(LintCacheWire, SecondUploadOfIdenticalRtlHitsBothCaches)
{
    rdp::Server server;
    bool quit = false;

    rdp::Json first = parsedReply(server.handleLine(kUpload, quit));
    EXPECT_EQ(field(first, "artifact_hits"), 0u);
    EXPECT_GT(field(first, "artifact_misses"), 0u);
    EXPECT_GT(field(first, "lint_cache_misses"), 0u);

    rdp::Json second =
        parsedReply(server.handleLine(kUpload, quit));
    EXPECT_GE(field(second, "artifact_hits"), 1u)
        << "identical RTL must reuse the first session's partitions";
    EXPECT_EQ(field(second, "artifact_misses"), 0u);
    EXPECT_GE(field(second, "lint_cache_hits"), 1u);
    EXPECT_EQ(field(second, "lint_cache_misses"), 0u);

    // cache_stats aggregates both sessions' traffic.
    rdp::Json stats = parsedReply(server.handleLine(
        R"({"cmd":"cache_stats"})", quit));
    const rdp::Json *artifacts = stats.find("artifacts");
    ASSERT_NE(artifacts, nullptr);
    EXPECT_GE(field(*artifacts, "hits"), 1u);
    EXPECT_GT(field(*artifacts, "stores"), 0u);
    const rdp::Json *lintStats = stats.find("lint");
    ASSERT_NE(lintStats, nullptr);
    EXPECT_GE(field(*lintStats, "hits"), 1u);

    // And `sessions` carries the per-session counters.
    rdp::Json sessions = parsedReply(
        server.handleLine(R"({"cmd":"sessions"})", quit));
    const rdp::Json *list = sessions.find("sessions");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 2u);
    EXPECT_GE(field(list->at(1), "artifact_hits"), 1u);
}

TEST(LintCacheWire, RepeatedLintCommandHitsTheCache)
{
    rdp::Server server;
    bool quit = false;
    auto open = server.handleLine(
        R"({"cmd":"open","design":"counter"})", quit);
    ASSERT_NE(open.back().find("\"ok\":true"), std::string::npos);

    rdp::Json first = parsedReply(
        server.handleLine(R"({"cmd":"lint"})", quit));
    EXPECT_EQ(field(first, "cache_hits"), 0u);
    EXPECT_GT(field(first, "cache_misses"), 0u);

    rdp::Json second = parsedReply(
        server.handleLine(R"({"cmd":"lint"})", quit));
    EXPECT_GE(field(second, "cache_hits"), 1u);
    EXPECT_EQ(field(second, "cache_misses"), 0u);
}

TEST(LintCacheWire, UnknownPassListsTheValidIds)
{
    rdp::Server server;
    bool quit = false;
    auto open = server.handleLine(
        R"({"cmd":"open","design":"counter"})", quit);
    ASSERT_NE(open.back().find("\"ok\":true"), std::string::npos);

    auto out = server.handleLine(
        R"({"cmd":"lint","pass":"bogus"})", quit);
    ASSERT_FALSE(out.empty());
    EXPECT_NE(out.back().find("\"error\":\"unknown-name\""),
              std::string::npos)
        << out.back();
    EXPECT_NE(out.back().find("known: structural, comb-loop"),
              std::string::npos)
        << out.back();
}

TEST(LintCacheWire, ContentCachesOffDisablesEverything)
{
    rdp::ServerOptions options;
    options.contentCaches = false;
    rdp::Server server(options);
    bool quit = false;

    parsedReply(server.handleLine(kUpload, quit));
    rdp::Json second =
        parsedReply(server.handleLine(kUpload, quit));
    EXPECT_EQ(field(second, "artifact_hits"), 0u);
    EXPECT_EQ(field(second, "artifact_misses"), 0u);
    EXPECT_EQ(field(second, "lint_cache_hits"), 0u);
    EXPECT_EQ(field(second, "lint_cache_misses"), 0u);

    rdp::Json stats = parsedReply(server.handleLine(
        R"({"cmd":"cache_stats"})", quit));
    const rdp::Json *enabled = stats.find("enabled");
    ASSERT_NE(enabled, nullptr);
    EXPECT_FALSE(enabled->asBool());
    const rdp::Json *lintStats = stats.find("lint");
    ASSERT_NE(lintStats, nullptr);
    EXPECT_EQ(field(*lintStats, "hits"), 0u);
    EXPECT_EQ(field(*lintStats, "misses"), 0u);
}
