/**
 * @file
 * Unit tests for the cycle-accurate RTL simulator: sequential
 * semantics, resets/enables, memories (sync and async read),
 * multiple clock domains, state forcing, and snapshot/restore.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "rtl/builder.hh"
#include "sim/simulator.hh"

using namespace zoomie;
using rtl::Builder;
using rtl::Value;

namespace {

rtl::Design
counterDesign(unsigned width)
{
    Builder b("counter");
    auto count = b.reg("count", width, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.output("value", count.q);
    return b.finish();
}

} // namespace

TEST(Simulator, CounterCounts)
{
    rtl::Design d = counterDesign(8);
    sim::Simulator s(d);
    EXPECT_EQ(s.peek("value"), 0u);
    s.run(5);
    EXPECT_EQ(s.peek("value"), 5u);
    s.run(251);
    EXPECT_EQ(s.peek("value"), 0u);  // wraps at 8 bits
}

TEST(Simulator, ResetHasPriorityOverData)
{
    Builder b("rst");
    Value rst = b.input("rst", 1);
    auto r = b.reg("r", 8, 7);
    b.connect(r, b.addLit(r.q, 1));
    b.resetTo(r, rst, 42);
    b.output("q", r.q);
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    EXPECT_EQ(s.peek("q"), 7u);  // power-on init
    s.poke("rst", 1);
    s.step();
    EXPECT_EQ(s.peek("q"), 42u);
    s.poke("rst", 0);
    s.step();
    EXPECT_EQ(s.peek("q"), 43u);
}

TEST(Simulator, EnableGatesUpdates)
{
    Builder b("en");
    Value en = b.input("en", 1);
    auto r = b.reg("r", 4, 0);
    b.connect(r, b.addLit(r.q, 1));
    b.enable(r, en);
    b.output("q", r.q);
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.poke("en", 0);
    s.run(3);
    EXPECT_EQ(s.peek("q"), 0u);
    s.poke("en", 1);
    s.run(3);
    EXPECT_EQ(s.peek("q"), 3u);
}

TEST(Simulator, SyncMemReadHasOneCycleLatency)
{
    Builder b("mem");
    Value addr = b.input("addr", 3);
    auto m = b.mem("m", 8, 8, rtl::MemStyle::Block,
                   {10, 11, 12, 13, 14, 15, 16, 17});
    Value data = b.memReadSync(m, addr);
    b.output("data", data);
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.poke("addr", 3);
    EXPECT_EQ(s.peek("data"), 0u);  // nothing latched yet
    s.step();
    EXPECT_EQ(s.peek("data"), 13u);
    s.poke("addr", 5);
    EXPECT_EQ(s.peek("data"), 13u);  // still the old word
    s.step();
    EXPECT_EQ(s.peek("data"), 15u);
}

TEST(Simulator, AsyncMemReadIsCombinational)
{
    Builder b("memA");
    Value addr = b.input("addr", 3);
    auto m = b.mem("m", 8, 8, rtl::MemStyle::Distributed,
                   {10, 11, 12, 13, 14, 15, 16, 17});
    Value data = b.memReadAsync(m, addr);
    b.output("data", data);
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.poke("addr", 2);
    EXPECT_EQ(s.peek("data"), 12u);
    s.poke("addr", 7);
    EXPECT_EQ(s.peek("data"), 17u);
}

TEST(Simulator, MemWriteThenRead)
{
    Builder b("rw");
    Value addr = b.input("addr", 4);
    Value data = b.input("data", 16);
    Value we = b.input("we", 1);
    auto m = b.mem("m", 16, 16);
    Value q = b.memReadAsync(m, addr);
    b.memWrite(m, addr, data, we);
    b.output("q", q);
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.poke("addr", 9);
    s.poke("data", 0xBEEF);
    s.poke("we", 1);
    s.step();
    s.poke("we", 0);
    EXPECT_EQ(s.peek("q"), 0xBEEFu);
}

TEST(Simulator, TwoClockDomainsAdvanceIndependently)
{
    Builder b("clk2");
    uint8_t clk_b = b.addClock("clkb");
    auto ra = b.reg("ra", 8, 0, 0);
    b.connect(ra, b.addLit(ra.q, 1));
    auto rb = b.reg("rb", 8, 0, clk_b);
    b.connect(rb, b.addLit(rb.q, 1));
    b.output("a", ra.q);
    b.output("b", rb.q);
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.step(0);
    s.step(0);
    s.step(clk_b);
    EXPECT_EQ(s.peek("a"), 2u);
    EXPECT_EQ(s.peek("b"), 1u);
    EXPECT_EQ(s.cycles(0), 2u);
    EXPECT_EQ(s.cycles(clk_b), 1u);
}

TEST(Simulator, ForceRegOverridesState)
{
    rtl::Design d = counterDesign(8);
    sim::Simulator s(d);
    s.run(3);
    s.forceRegByName("count", 100);
    EXPECT_EQ(s.peek("value"), 100u);
    s.step();
    EXPECT_EQ(s.peek("value"), 101u);
}

TEST(Simulator, SnapshotRestoreReplaysIdentically)
{
    rtl::Design d = counterDesign(16);
    sim::Simulator s(d);
    s.run(37);
    auto snap = s.snapshotRegs();
    s.run(100);
    uint64_t later = s.peek("value");
    s.restoreRegs(snap);
    EXPECT_EQ(s.peek("value"), 37u);
    s.run(100);
    EXPECT_EQ(s.peek("value"), later);
}

TEST(Simulator, WideArithmetic64Bit)
{
    Builder b("wide");
    Value a = b.input("a", 64);
    Value c = b.input("c", 64);
    b.output("sum", b.add(a, c));
    b.output("lt", b.ult(a, c));
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.poke("a", ~0ULL);
    s.poke("c", 1);
    EXPECT_EQ(s.peek("sum"), 0u);  // wraps
    EXPECT_EQ(s.peek("lt"), 0u);   // 2^64-1 is not < 1
    s.poke("a", 1);
    s.poke("c", ~0ULL);
    EXPECT_EQ(s.peek("lt"), 1u);
}

TEST(Simulator, ShiftBeyondWidthYieldsZero)
{
    Builder b("sh");
    Value a = b.input("a", 8);
    Value amt = b.input("amt", 8);
    b.output("l", b.shl(a, amt));
    b.output("r", b.shr(a, amt));
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.poke("a", 0xFF);
    s.poke("amt", 9);
    EXPECT_EQ(s.peek("l"), 0u);
    EXPECT_EQ(s.peek("r"), 0u);
    s.poke("amt", 4);
    EXPECT_EQ(s.peek("l"), 0xF0u);
    EXPECT_EQ(s.peek("r"), 0x0Fu);
}

TEST(Simulator, ReductionsMatchDefinition)
{
    Builder b("red");
    Value a = b.input("a", 5);
    b.output("and", b.redAnd(a));
    b.output("or", b.redOr(a));
    b.output("xor", b.redXor(a));
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.poke("a", 0b10110);
    EXPECT_EQ(s.peek("and"), 0u);
    EXPECT_EQ(s.peek("or"), 1u);
    EXPECT_EQ(s.peek("xor"), 1u);
    s.poke("a", 0b11111);
    EXPECT_EQ(s.peek("and"), 1u);
    EXPECT_EQ(s.peek("xor"), 1u);
}

// ---- multi-domain run() semantics ------------------------------------

TEST(Simulator, RunStepsAllDomainsSimultaneously)
{
    // Cross-coupled registers in different domains: run() must
    // commit both domains from the same pre-edge values (a swap),
    // not one domain after the other (which would copy one value
    // over both).
    Builder b("xclk");
    uint8_t clk1 = b.addClock("clk1");
    auto r0 = b.reg("r0", 8, 1, 0);
    auto r1 = b.reg("r1", 8, 2, clk1);
    b.connect(r0, r1.q);
    b.connect(r1, r0.q);
    b.output("o0", r0.q);
    b.output("o1", r1.q);
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.run(1);
    EXPECT_EQ(s.peek("o0"), 2u);
    EXPECT_EQ(s.peek("o1"), 1u);
    s.run(1);
    EXPECT_EQ(s.peek("o0"), 1u);
    EXPECT_EQ(s.peek("o1"), 2u);
    // And every domain's counter advanced.
    EXPECT_EQ(s.cycles(0), 2u);
    EXPECT_EQ(s.cycles(1), 2u);
}

// ---- allocation-free hot path ----------------------------------------

namespace {

bool g_count_allocs = false;
size_t g_alloc_count = 0;

} // namespace

void *
operator new(std::size_t size)
{
    if (g_count_allocs)
        ++g_alloc_count;
    void *p = std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

TEST(Simulator, SteadyStateSteppingAllocatesNothing)
{
    // The interpreter's hot path (evaluate + commit, including the
    // memory-write buffer and both scratch vectors) must reuse
    // member scratch after warm-up: zero heap traffic per cycle.
    Builder b("hot");
    uint8_t clk1 = b.addClock("clk1");
    Value din = b.input("din", 8);
    auto r0 = b.reg("r0", 8, 0, 0);
    auto r1 = b.reg("r1", 8, 0, clk1);
    b.connect(r0, b.add(r0.q, din));
    b.connect(r1, r0.q);
    auto m = b.mem("m", 8, 16, rtl::MemStyle::Block);
    Value q = b.memReadSync(m, b.slice(r0.q, 0, 4), clk1);
    b.memWrite(m, b.slice(r1.q, 0, 4), r0.q, b.redOr(din), 0);
    b.output("o", b.add(q, r1.q));
    rtl::Design d = b.finish();

    sim::Simulator s(d);
    s.poke("din", 3);
    const std::vector<uint8_t> domain0 = {0};
    s.run(4);             // warm up every scratch buffer
    s.stepDomains(domain0);

    g_alloc_count = 0;
    g_count_allocs = true;
    s.run(100);
    s.stepDomains(domain0);
    g_count_allocs = false;
    EXPECT_EQ(g_alloc_count, 0u);
}
