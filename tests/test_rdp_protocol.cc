/**
 * @file
 * rdp/protocol tests: JSON encode/parse round-trips (escaping,
 * unicode, nesting, 64-bit integers), a fuzz-ish table of malformed
 * inputs that must be rejected with an error (never a crash),
 * hardened numeric argument parsing, and the request/reply/event
 * schemas.
 */

#include <gtest/gtest.h>

#include <limits>

#include "rdp/json.hh"
#include "rdp/protocol.hh"

using namespace zoomie;
using rdp::Json;

// ---- encoding ---------------------------------------------------------

TEST(Json, EncodesScalars)
{
    EXPECT_EQ(Json().encode(), "null");
    EXPECT_EQ(Json(true).encode(), "true");
    EXPECT_EQ(Json(false).encode(), "false");
    EXPECT_EQ(Json(uint64_t(0)).encode(), "0");
    EXPECT_EQ(Json(uint64_t(18446744073709551615ull)).encode(),
              "18446744073709551615");
    EXPECT_EQ(Json(int64_t(-42)).encode(), "-42");
    EXPECT_EQ(Json("hi").encode(), "\"hi\"");
}

TEST(Json, EscapesStrings)
{
    EXPECT_EQ(Json("a\"b").encode(), "\"a\\\"b\"");
    EXPECT_EQ(Json("a\\b").encode(), "\"a\\\\b\"");
    EXPECT_EQ(Json("a\nb\tc\rd").encode(), "\"a\\nb\\tc\\rd\"");
    EXPECT_EQ(Json(std::string("a\x01z")).encode(),
              "\"a\\u0001z\"");
}

TEST(Json, EncodesContainers)
{
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    arr.push(Json());
    EXPECT_EQ(arr.encode(), "[1,\"two\",null]");

    Json obj = Json::object();
    obj.set("a", 1);
    obj.set("b", Json::array());
    EXPECT_EQ(obj.encode(), "{\"a\":1,\"b\":[]}");
    // Insertion order is preserved; re-setting replaces in place.
    obj.set("a", 7);
    EXPECT_EQ(obj.encode(), "{\"a\":7,\"b\":[]}");
}

// ---- round trips ------------------------------------------------------

namespace {

std::string
roundTrip(const std::string &text)
{
    std::string err;
    auto parsed = Json::parse(text, &err);
    EXPECT_TRUE(parsed) << text << ": " << err;
    return parsed ? parsed->encode() : "<parse failed>";
}

} // namespace

TEST(Json, RoundTripsValues)
{
    for (const char *text : {
             "null",
             "true",
             "false",
             "0",
             "-1",
             "18446744073709551615",
             "-9223372036854775808",
             "\"\"",
             "\"plain\"",
             "\"tab\\tnewline\\nquote\\\"\"",
             "[]",
             "{}",
             "[1,2,3]",
             "{\"k\":\"v\"}",
             "{\"nested\":{\"deep\":[{\"er\":[null,false]}]}}",
         }) {
        EXPECT_EQ(roundTrip(text), text);
    }
}

TEST(Json, RoundTripsFullUint64)
{
    // Register values need all 64 bits — doubles would lose the
    // bottom bits of e.g. 2^64-1.
    Json obj = Json::object();
    obj.set("value", uint64_t(0xFFFFFFFFFFFFFFFEull));
    auto parsed = Json::parse(obj.encode());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->find("value")->asU64(),
              0xFFFFFFFFFFFFFFFEull);
}

TEST(Json, ParsesWhitespaceAndDoubles)
{
    auto parsed =
        Json::parse("  { \"a\" : [ 1 , 2.5 ,\t-3e2 ] }  ");
    ASSERT_TRUE(parsed);
    const Json *a = parsed->find("a");
    ASSERT_TRUE(a && a->isArray());
    EXPECT_TRUE(a->at(0).isInt());
    EXPECT_DOUBLE_EQ(a->at(1).asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(a->at(2).asDouble(), -300.0);
}

TEST(Json, DecodesUnicodeEscapes)
{
    auto parsed = Json::parse("\"\\u0041\\u00e9\\u20ac\"");
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->asString(), "A\xC3\xA9\xE2\x82\xAC");
    // Surrogate pair: U+1F600.
    auto emoji = Json::parse("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(emoji);
    EXPECT_EQ(emoji->asString(), "\xF0\x9F\x98\x80");
}

TEST(Json, SurvivesDeepNesting)
{
    std::string deep;
    for (int i = 0; i < 60; ++i)
        deep += '[';
    deep += "1";
    for (int i = 0; i < 60; ++i)
        deep += ']';
    EXPECT_TRUE(Json::parse(deep));
}

// ---- malformed input rejection ----------------------------------------

TEST(Json, RejectsMalformedInput)
{
    const char *bad[] = {
        "",
        "   ",
        "nul",
        "truth",
        "falsey",
        "{",
        "}",
        "[",
        "]",
        "[1,",
        "[1 2]",
        "{\"a\"}",
        "{\"a\":}",
        "{\"a\":1,}",
        "{a:1}",
        "{1:2}",
        "{\"a\":1 \"b\":2}",
        "\"unterminated",
        "\"bad escape \\q\"",
        "\"truncated \\u00\"",
        "\"lone surrogate \\ud800\"",
        "\"control \x01 char\"",
        "01",
        "1.",
        ".5",
        "+1",
        "- 1",
        "1e",
        "1e+",
        "0x10",
        "99999999999999999999999999",
        "nan",
        "Infinity",
        "[1] trailing",
        "{} {}",
        "'single'",
    };
    for (const char *text : bad) {
        std::string err;
        EXPECT_FALSE(Json::parse(text, &err))
            << "accepted malformed input: " << text;
        EXPECT_FALSE(err.empty()) << text;
    }
    // Nesting beyond the depth cap is rejected, not a stack fault.
    std::string too_deep(100, '[');
    EXPECT_FALSE(Json::parse(too_deep + "1" +
                             std::string(100, ']')));
}

// ---- hardened numeric parsing -----------------------------------------

TEST(Protocol, ParseU64AcceptsDecimalAndHex)
{
    uint64_t v = 0;
    EXPECT_TRUE(rdp::parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(rdp::parseU64("1234", v));
    EXPECT_EQ(v, 1234u);
    EXPECT_TRUE(rdp::parseU64("0x1f", v));
    EXPECT_EQ(v, 0x1fu);
    EXPECT_TRUE(rdp::parseU64("0XFF", v));
    EXPECT_EQ(v, 0xffu);
    EXPECT_TRUE(rdp::parseU64("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(Protocol, ParseU64RejectsMalformedNumbers)
{
    uint64_t v = 0;
    for (const char *text :
         {"", " ", "xyz", "12a", "a12", "-1", "+1", "1.5", "0x",
          "0xzz", " 12", "12 ", "18446744073709551616",
          "0x10000000000000000", "१२"}) {
        EXPECT_FALSE(rdp::parseU64(text, v))
            << "accepted malformed number: '" << text << "'";
    }
    uint32_t narrow = 0;
    EXPECT_TRUE(rdp::parseU32("4294967295", narrow));
    EXPECT_FALSE(rdp::parseU32("4294967296", narrow));
}

// ---- request / reply / event schemas ----------------------------------

TEST(Protocol, ParsesRequests)
{
    auto msg = Json::parse(
        "{\"cmd\":\"step\",\"id\":7,\"session\":2,\"n\":3}");
    ASSERT_TRUE(msg);
    std::string err;
    auto req = rdp::parseRequest(*msg, &err);
    ASSERT_TRUE(req) << err;
    EXPECT_EQ(req->cmd, "step");
    ASSERT_TRUE(req->id);
    EXPECT_EQ(*req->id, 7u);
    ASSERT_TRUE(req->session);
    EXPECT_EQ(*req->session, 2u);
    EXPECT_EQ(req->args.find("n")->asU64(), 3u);
}

TEST(Protocol, RejectsMalformedRequests)
{
    std::string err;
    for (const char *text :
         {"[]", "42", "{\"id\":1}", "{\"cmd\":3}",
          "{\"cmd\":\"\"}", "{\"cmd\":\"run\",\"id\":-1}",
          "{\"cmd\":\"run\",\"session\":\"one\"}"}) {
        auto msg = Json::parse(text);
        ASSERT_TRUE(msg) << text;
        EXPECT_FALSE(rdp::parseRequest(*msg, &err)) << text;
        EXPECT_FALSE(err.empty());
    }
}

TEST(Protocol, BuildsReplyAndEventSchemas)
{
    rdp::Request req;
    req.cmd = "run";
    req.id = 9;
    Json ok = rdp::okReply(req);
    EXPECT_EQ(ok.find("type")->asString(), "reply");
    EXPECT_EQ(ok.find("id")->asU64(), 9u);
    EXPECT_TRUE(ok.find("ok")->asBool());

    Json fail = rdp::errorReply(req, rdp::Errc::BadArgs, "nope");
    EXPECT_FALSE(fail.find("ok")->asBool());
    EXPECT_EQ(fail.find("error")->asString(), "bad-args");

    // The typed taxonomy maps one wire name per code.
    EXPECT_STREQ(rdp::errcName(rdp::Errc::Busy), "busy");
    EXPECT_STREQ(rdp::errcName(rdp::Errc::Timeout), "timeout");
    EXPECT_STREQ(rdp::errcName(rdp::Errc::NoSession),
                 "no-session");
    EXPECT_STREQ(rdp::errcName(rdp::Errc::BadRequest),
                 "bad-request");
    EXPECT_STREQ(rdp::errcName(rdp::Errc::Internal), "internal");

    Json stop = rdp::dbgStopEvent(3, "watchpoint", 17);
    EXPECT_EQ(stop.find("type")->asString(), "dbg_stop");
    EXPECT_EQ(stop.find("session")->asU64(), 3u);
    EXPECT_EQ(stop.find("reason")->asString(), "watchpoint");
    EXPECT_EQ(stop.find("cycle")->asU64(), 17u);

    Json hit = rdp::watchHitEvent(3, 1, "cpu/pc", 4, 8, 17);
    EXPECT_EQ(hit.find("type")->asString(), "watch_hit");
    EXPECT_EQ(hit.find("old")->asU64(), 4u);
    EXPECT_EQ(hit.find("new")->asU64(), 8u);

    Json fired = rdp::assertionFiredEvent(3, 0, "a0", 17);
    EXPECT_EQ(fired.find("type")->asString(), "assertion_fired");
    EXPECT_EQ(fired.find("name")->asString(), "a0");

    // Every event encodes to one line (JSONL framing).
    EXPECT_EQ(stop.encode().find('\n'), std::string::npos);
}

/**
 * JSON has no inf/nan literals. Non-finite doubles must encode as
 * the strings "inf"/"-inf"/"nan" — never as bare `inf` tokens that
 * would corrupt the JSONL stream for every standard parser.
 */
TEST(Json, NonFiniteDoublesEncodeAsStrings)
{
    double inf = std::numeric_limits<double>::infinity();
    double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(Json(inf).encode(), "\"inf\"");
    EXPECT_EQ(Json(-inf).encode(), "\"-inf\"");
    EXPECT_EQ(Json(nan).encode(), "\"nan\"");

    // Inside a message the result stays valid, parseable JSON.
    Json msg = Json::object();
    msg.set("ratio", Json(inf));
    msg.set("mean", Json(nan));
    EXPECT_EQ(msg.encode(),
              "{\"ratio\":\"inf\",\"mean\":\"nan\"}");
    auto parsed = Json::parse(msg.encode());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->find("ratio")->asString(), "inf");

    // Finite doubles are untouched by the clamp.
    EXPECT_EQ(Json(2.5).encode(), "2.5");
}
