/**
 * @file
 * End-to-end tests of the Zoomie debug server: scripted sessions
 * through rdp::Server over the in-memory duplex pipe. Reproduces
 * case study 2 (§5.6, the TinyRV nested-exception breakpoint
 * `mcause[31]==0 && !MIE && !MPIE`) entirely over the wire
 * protocol, asserting on the emitted `dbg_stop` events; runs two
 * concurrent sessions on independent devices; and checks the
 * structured error replies and the REPL/wire command-table parity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/bits.hh"
#include "designs/tinyrv.hh"
#include "rdp/server.hh"

using namespace zoomie;
using rdp::Json;

namespace {

/**
 * A JSONL client on the pipe's client end: sends one request,
 * collects event lines until the matching reply arrives.
 */
class Client
{
  public:
    explicit Client(rdp::Transport &transport)
        : _transport(transport)
    {
    }

    /** Send @p req (id auto-assigned) and wait for its reply. */
    Json request(Json req)
    {
        uint64_t id = _next++;
        req.set("id", id);
        _transport.writeLine(req.encode());
        std::string line;
        while (_transport.readLine(line)) {
            auto msg = Json::parse(line);
            if (!msg) {
                ADD_FAILURE() << "unparseable line: " << line;
                return Json();
            }
            const Json *type = msg->find("type");
            if (type && type->asString() == "reply" &&
                msg->find("id") &&
                msg->find("id")->asU64() == id) {
                return *msg;
            }
            events.push_back(*msg);
        }
        ADD_FAILURE() << "transport closed awaiting reply " << id;
        return Json();
    }

    /** Build-and-send convenience for flat argument lists. */
    Json cmd(const std::string &name,
             std::vector<std::pair<std::string, Json>> args = {})
    {
        Json req = Json::object();
        req.set("cmd", name);
        for (auto &[key, value] : args)
            req.set(key, std::move(value));
        return request(std::move(req));
    }

    /** Events of one type seen so far, in arrival order. */
    std::vector<Json> eventsOfType(const std::string &type) const
    {
        std::vector<Json> out;
        for (const Json &event : events) {
            const Json *t = event.find("type");
            if (t && t->asString() == type)
                out.push_back(event);
        }
        return out;
    }

    std::vector<Json> events;

  private:
    rdp::Transport &_transport;
    uint64_t _next = 1;
};

/** A server thread bound to one pipe for the test's lifetime. */
class ServedPipe
{
  public:
    explicit ServedPipe(rdp::Server &server)
        : _thread([this, &server] {
              server.serve(_pipe.serverEnd());
          })
    {
    }
    ~ServedPipe()
    {
        _pipe.closeFromClient();
        _thread.join();
    }
    rdp::Transport &clientEnd() { return _pipe.clientEnd(); }

  private:
    rdp::DuplexPipe _pipe;
    std::thread _thread;
};

uint64_t
u64Field(const Json &msg, const char *key)
{
    const Json *field = msg.find(key);
    EXPECT_TRUE(field) << "missing field " << key << " in "
                       << msg.encode();
    return field ? field->asU64() : 0;
}

bool
okField(const Json &msg)
{
    const Json *ok = msg.find("ok");
    return ok && ok->asBool();
}

} // namespace

TEST(RdpServer, HelloNegotiatesProtocolVersion)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    // A v1 client keeps v1 semantics on its connection...
    Json welcome =
        client.cmd("hello", {{"version", Json(uint64_t(1))}});
    ASSERT_TRUE(okField(welcome));
    EXPECT_EQ(u64Field(welcome, "version"), 1u);
    EXPECT_EQ(welcome.find("protocol")->asString(), "zoomie-rdp");

    // ...a current client gets the full protocol...
    Json current = client.cmd(
        "hello", {{"version", Json(rdp::kProtocolVersion)}});
    ASSERT_TRUE(okField(current));
    EXPECT_EQ(u64Field(current, "version"), rdp::kProtocolVersion);

    // ...a newer client degrades to our version...
    Json newer =
        client.cmd("hello", {{"version", Json(uint64_t(99))}});
    ASSERT_TRUE(okField(newer));
    EXPECT_EQ(u64Field(newer, "version"), rdp::kProtocolVersion);

    // ...but a client *requiring* a newer protocol gets an error.
    Json refused = client.cmd("hello",
                              {{"version", Json(uint64_t(99))},
                               {"min", Json(uint64_t(99))}});
    EXPECT_FALSE(okField(refused));
    EXPECT_EQ(refused.find("error")->asString(),
              "unsupported-version");
}

TEST(RdpServer, StructuredErrorsNeverCrash)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    // Session-scoped command with no session open.
    Json nosession = client.cmd("run", {{"n", Json(uint64_t(5))}});
    EXPECT_FALSE(okField(nosession));
    EXPECT_EQ(nosession.find("error")->asString(),
              "no-session");

    // Unknown design.
    Json baddesign = client.cmd("open", {{"design", Json("vax")}});
    EXPECT_FALSE(okField(baddesign));
    EXPECT_EQ(baddesign.find("error")->asString(), "bad-args");

    // Unknown watch signal is a reply, not instrument()'s fatal.
    Json watch = Json::array();
    watch.push("mut/no_such_signal");
    Json badwatch = client.cmd("open",
                               {{"design", Json("counter")},
                                {"watch", std::move(watch)}});
    EXPECT_FALSE(okField(badwatch));

    Json opened = client.cmd("open", {{"design", Json("counter")}});
    ASSERT_TRUE(okField(opened));

    // Malformed / out-of-range arguments per command.
    Json badnum = client.cmd("step", {{"n", Json("xyz")}});
    EXPECT_FALSE(okField(badnum));
    EXPECT_EQ(badnum.find("error")->asString(), "bad-args");

    Json badslot = client.cmd("break",
                              {{"slot", Json(uint64_t(99))},
                               {"value", Json(uint64_t(0))}});
    EXPECT_FALSE(okField(badslot));
    EXPECT_EQ(badslot.find("error")->asString(), "bad-args");

    Json badreg =
        client.cmd("print", {{"name", Json("zz/top")}});
    EXPECT_FALSE(okField(badreg));
    EXPECT_EQ(badreg.find("error")->asString(), "unknown-name");

    Json badcmd = client.cmd("frobnicate");
    EXPECT_FALSE(okField(badcmd));
    EXPECT_EQ(badcmd.find("error")->asString(), "unknown-command");

    Json toolong =
        client.cmd("run", {{"n", Json(uint64_t(1) << 62)}});
    EXPECT_FALSE(okField(toolong));

    // The session survived all of it.
    Json run = client.cmd("run", {{"n", Json(uint64_t(10))}});
    EXPECT_TRUE(okField(run));
    EXPECT_EQ(u64Field(run, "cycle"), 10u);
}

TEST(RdpServer, WatchpointEmitsWatchHitAndDbgStop)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")}})));
    ASSERT_TRUE(okField(client.cmd("run", {{"n", Json(5)}})));
    ASSERT_TRUE(
        okField(client.cmd("watch", {{"slot", Json(0)}})));
    Json run = client.cmd("run", {{"n", Json(50)}});
    ASSERT_TRUE(okField(run));
    EXPECT_TRUE(run.find("paused")->asBool());

    auto hits = client.eventsOfType("watch_hit");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].find("signal")->asString(), "mut/count");
    EXPECT_EQ(u64Field(hits[0], "new"),
              u64Field(hits[0], "old") + 1);

    auto stops = client.eventsOfType("dbg_stop");
    ASSERT_EQ(stops.size(), 1u);
    EXPECT_EQ(stops[0].find("reason")->asString(), "watchpoint");

    // Running further while paused must not duplicate the stop.
    ASSERT_TRUE(okField(client.cmd("run", {{"n", Json(20)}})));
    EXPECT_EQ(client.eventsOfType("dbg_stop").size(), 1u);
}

TEST(RdpServer, AssertionEmitsAssertionFiredEvent)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    Json asserts = Json::array();
    asserts.push("assert property (mut/count != 50);");
    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")},
                            {"assertions", std::move(asserts)}})));
    Json run = client.cmd("run", {{"n", Json(400)}});
    ASSERT_TRUE(okField(run));
    EXPECT_TRUE(run.find("paused")->asBool());

    auto fired = client.eventsOfType("assertion_fired");
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(u64Field(fired[0], "index"), 0u);
    auto stops = client.eventsOfType("dbg_stop");
    ASSERT_EQ(stops.size(), 1u);
    EXPECT_EQ(stops[0].find("reason")->asString(), "assertion");
}

TEST(RdpServer, CaseStudy2NestedExceptionOverTheWire)
{
    // §5.6: mtvec is misconfigured to an unmapped address; an ecall
    // traps, the CPU re-faults on its own vector forever. The
    // paper's breakpoint — mcause == instr-access-fault && MIE == 0
    // && MPIE == 0 (a double-nested exception) — catches it in the
    // act. Everything below goes through the wire protocol.
    using namespace designs::rv;
    std::vector<uint32_t> program = {
        addi(1, 0, 1),
        lui(2, 0x5),                  // x2 = 0x5000: invalid
        csrrw(0, designs::rv::kCsrMtvec, 2),  // the bug
        addi(1, 1, 41),               // x1 = 42
        ecall(),                      // -> trap -> invalid vector
        sw(1, 0, 0x100),              // (reached after the repair)
        jal(0, 0),
    };

    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    Json words = Json::array();
    for (uint32_t word : program)
        words.push(uint64_t(word));
    Json watch = Json::array();
    watch.push("cpu/mcause");
    watch.push("cpu/mstatus_mie");
    watch.push("cpu/mstatus_mpie");
    Json opened = client.cmd("open",
                             {{"design", Json("tinyrv")},
                              {"program", std::move(words)},
                              {"watch", std::move(watch)}});
    ASSERT_TRUE(okField(opened)) << opened.encode();

    // The paper's AND-group breakpoint, one slot per conjunct.
    uint64_t fault =
        uint64_t(designs::TrapCause::InstrAccessFault);
    ASSERT_TRUE(okField(client.cmd(
        "break", {{"slot", Json(0)}, {"value", Json(fault)}})));
    ASSERT_TRUE(okField(client.cmd(
        "break", {{"slot", Json(1)}, {"value", Json(0)}})));
    ASSERT_TRUE(okField(client.cmd(
        "break", {{"slot", Json(2)}, {"value", Json(0)}})));

    Json run = client.cmd("run", {{"n", Json(4000)}});
    ASSERT_TRUE(okField(run));
    ASSERT_TRUE(run.find("paused")->asBool())
        << "breakpoint never hit";

    // The machine-readable stop event external tooling consumes.
    auto stops = client.eventsOfType("dbg_stop");
    ASSERT_EQ(stops.size(), 1u);
    EXPECT_EQ(stops[0].find("reason")->asString(), "breakpoint");
    EXPECT_EQ(u64Field(stops[0], "cycle"), u64Field(run, "cycle"));
    EXPECT_GT(u64Field(stops[0], "cycle"), 0u);

    // Readback over the wire: pc == mepc == mtvec proves legal
    // hardware re-trapping on a software misconfiguration.
    auto read = [&](const char *name) {
        Json reply = client.cmd("print", {{"name", Json(name)}});
        EXPECT_TRUE(okField(reply)) << name;
        return u64Field(reply, "value");
    };
    uint64_t pc = read("cpu/pc");
    uint64_t mepc = read("cpu/mepc");
    uint64_t mtvec = read("cpu/mtvec");
    uint64_t mcause = read("cpu/mcause");
    EXPECT_EQ(pc, 0x5000u);
    EXPECT_EQ(pc, mepc);
    EXPECT_EQ(pc, mtvec);
    EXPECT_EQ(mcause, fault);

    // Software repair by state injection, then resume past the bad
    // ecall — still all over the wire.
    ASSERT_TRUE(okField(client.cmd("clear")));
    auto force = [&](const char *name, uint64_t value) {
        EXPECT_TRUE(okField(client.cmd(
            "force",
            {{"name", Json(name)}, {"value", Json(value)}})))
            << name;
    };
    force("cpu/mtvec", 0x80);
    force("cpu/mepc", 5 * 4);
    force("cpu/mstatus_mie", 1);
    force("cpu/pc", 5 * 4);
    force("cpu/state", 0);
    ASSERT_TRUE(okField(client.cmd("resume")));
    ASSERT_TRUE(okField(client.cmd("run", {{"n", Json(200)}})));

    Json word = client.cmd(
        "x", {{"name", Json("cpu/mem")}, {"addr", Json(0x40)}});
    ASSERT_TRUE(okField(word));
    EXPECT_EQ(u64Field(word, "value"), 42u)
        << "post-repair store did not land";
    // No further stop events: the repaired core runs free.
    EXPECT_EQ(client.eventsOfType("dbg_stop").size(), 1u);
}

TEST(RdpServer, TwoConcurrentSessionsStayIsolated)
{
    rdp::Server server;

    // Two transports served on two threads against one registry;
    // each client brings up its own device and debugs it while the
    // other is mid-flight.
    ServedPipe pipe_a(server);
    ServedPipe pipe_b(server);

    auto drive = [&server](rdp::Transport &end, uint64_t bp,
                           uint64_t run_for, uint64_t &out_session,
                           uint64_t &out_count) {
        Client client(end);
        Json opened =
            client.cmd("open", {{"design", Json("counter")}});
        ASSERT_TRUE(okField(opened));
        uint64_t session = u64Field(opened, "session");
        out_session = session;
        // With two sessions open, every command names its session.
        ASSERT_TRUE(okField(client.cmd(
            "break", {{"session", Json(session)},
                      {"slot", Json(0)}, {"value", Json(bp)}})));
        Json run = client.cmd("run", {{"session", Json(session)},
                                      {"n", Json(run_for)}});
        ASSERT_TRUE(okField(run));
        ASSERT_TRUE(run.find("paused")->asBool());
        auto stops = client.eventsOfType("dbg_stop");
        ASSERT_EQ(stops.size(), 1u);
        EXPECT_EQ(u64Field(stops[0], "session"), session);
        Json count =
            client.cmd("print", {{"session", Json(session)},
                                 {"name", Json("mut/count")}});
        ASSERT_TRUE(okField(count));
        out_count = u64Field(count, "value");
        (void)server;
    };

    uint64_t session_a = 0, session_b = 0;
    uint64_t count_a = 0, count_b = 0;
    std::thread thread_a([&] {
        drive(pipe_a.clientEnd(), 57, 400, session_a, count_a);
    });
    std::thread thread_b([&] {
        drive(pipe_b.clientEnd(), 123, 700, session_b, count_b);
    });
    thread_a.join();
    thread_b.join();

    // Independent devices: each stopped at its own breakpoint.
    EXPECT_NE(session_a, session_b);
    EXPECT_EQ(count_a, 57u);
    EXPECT_EQ(count_b, 123u);
    EXPECT_EQ(server.sessions().count(), 2u);

    // Closing one session leaves the other addressable.
    Client closer(pipe_a.clientEnd());
    ASSERT_TRUE(okField(closer.cmd(
        "close", {{"session", Json(session_a)}})));
    EXPECT_EQ(server.sessions().count(), 1u);
    Json gone = closer.cmd("run", {{"session", Json(session_a)},
                                   {"n", Json(1)}});
    EXPECT_FALSE(okField(gone));
    EXPECT_EQ(gone.find("error")->asString(), "no-session");
    Json alive = closer.cmd("run", {{"session", Json(session_b)},
                                    {"n", Json(1)}});
    EXPECT_TRUE(okField(alive));
}

TEST(RdpServer, BatchExecutesInOneRoundTrip)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    ASSERT_TRUE(okField(
        client.cmd("hello", {{"version", Json(uint64_t(2))}})));
    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")}})));

    // The acceptance batch: snapshot, force, run — three commands,
    // one request line, one reply line.
    Json requests = Json::array();
    {
        Json snap = Json::object();
        snap.set("cmd", "snapshot");
        requests.push(std::move(snap));
        Json force = Json::object();
        force.set("cmd", "force");
        force.set("name", "mut/count");
        force.set("value", uint64_t(7));
        requests.push(std::move(force));
        Json run = Json::object();
        run.set("cmd", "run");
        run.set("n", uint64_t(10));
        requests.push(std::move(run));
    }
    Json reply =
        client.cmd("batch", {{"requests", std::move(requests)}});
    ASSERT_TRUE(okField(reply)) << reply.encode();
    EXPECT_EQ(u64Field(reply, "executed"), 3u);
    EXPECT_EQ(u64Field(reply, "failed"), 0u);

    const Json *results = reply.find("results");
    ASSERT_TRUE(results && results->isArray());
    ASSERT_EQ(results->size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(okField(results->at(i))) << i;
        EXPECT_EQ(u64Field(results->at(i), "index"), i);
    }
    // The scheduled run's metrics surface inside the batch too.
    EXPECT_EQ(u64Field(results->at(2), "cycles_run"), 10u);

    // The batch really mutated the device: count was forced to 7
    // and then ran 10 cycles.
    Json count =
        client.cmd("print", {{"name", Json("mut/count")}});
    ASSERT_TRUE(okField(count));
    EXPECT_EQ(u64Field(count, "value"), 17u);

    // And the snapshot taken as sub-request 0 restores pre-force
    // state.
    ASSERT_TRUE(okField(client.cmd("restore")));
    Json restored =
        client.cmd("print", {{"name", Json("mut/count")}});
    EXPECT_EQ(u64Field(restored, "value"), 0u);
}

TEST(RdpServer, BatchMidErrorContinuesOrAborts)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());
    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")}})));

    auto makeRequests = [] {
        Json requests = Json::array();
        Json run1 = Json::object();
        run1.set("cmd", "run");
        run1.set("n", uint64_t(5));
        requests.push(std::move(run1));
        Json bad = Json::object();
        bad.set("cmd", "print");
        bad.set("name", "zz/top"); // unknown-name mid-batch
        requests.push(std::move(bad));
        Json run2 = Json::object();
        run2.set("cmd", "run");
        run2.set("n", uint64_t(5));
        requests.push(std::move(run2));
        return requests;
    };

    // Without abort_on_error the batch runs to completion: the
    // outer reply reports the first failure, later sub-requests
    // still execute.
    Json keep_going =
        client.cmd("batch", {{"requests", makeRequests()}});
    EXPECT_FALSE(okField(keep_going));
    EXPECT_EQ(keep_going.find("error")->asString(),
              "unknown-name");
    EXPECT_EQ(u64Field(keep_going, "executed"), 3u);
    EXPECT_EQ(u64Field(keep_going, "failed"), 1u);
    EXPECT_FALSE(keep_going.find("aborted"));
    const Json *results = keep_going.find("results");
    ASSERT_TRUE(results && results->size() == 3u);
    EXPECT_TRUE(okField(results->at(0)));
    EXPECT_FALSE(okField(results->at(1)));
    EXPECT_TRUE(okField(results->at(2)));
    Json count =
        client.cmd("print", {{"name", Json("mut/count")}});
    EXPECT_EQ(u64Field(count, "value"), 10u); // both runs landed

    // With abort_on_error the failing sub-request is the last one
    // executed.
    Json aborted = client.cmd("batch",
                              {{"requests", makeRequests()},
                               {"abort_on_error", Json(true)}});
    EXPECT_FALSE(okField(aborted));
    EXPECT_EQ(u64Field(aborted, "executed"), 2u);
    EXPECT_EQ(u64Field(aborted, "failed"), 1u);
    const Json *flag = aborted.find("aborted");
    ASSERT_TRUE(flag);
    EXPECT_TRUE(flag->asBool());
    Json after =
        client.cmd("print", {{"name", Json("mut/count")}});
    EXPECT_EQ(u64Field(after, "value"), 15u); // run2 never ran

    // Nested batches and connection-control commands are refused
    // inside a batch.
    Json nested = Json::array();
    Json inner = Json::object();
    inner.set("cmd", "batch");
    inner.set("requests", Json::array());
    nested.push(std::move(inner));
    Json refused =
        client.cmd("batch", {{"requests", std::move(nested)}});
    EXPECT_FALSE(okField(refused));
    EXPECT_EQ(refused.find("results")->at(0)
                  .find("error")->asString(),
              "bad-args");
}

TEST(RdpServer, BatchRequiresProtocolV2)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    // A connection that negotiated v1 must keep seeing the v1
    // surface: batch does not exist there.
    ASSERT_TRUE(okField(
        client.cmd("hello", {{"version", Json(uint64_t(1))}})));
    Json refused =
        client.cmd("batch", {{"requests", Json::array()}});
    EXPECT_FALSE(okField(refused));
    EXPECT_EQ(refused.find("error")->asString(),
              "unknown-command");

    // Re-negotiating v2 on the same connection unlocks it.
    ASSERT_TRUE(okField(
        client.cmd("hello", {{"version", Json(uint64_t(2))}})));
    Json empty =
        client.cmd("batch", {{"requests", Json::array()}});
    EXPECT_TRUE(okField(empty));
    EXPECT_EQ(u64Field(empty, "executed"), 0u);
}

TEST(RdpServer, CommandsIntrospectionDescribesTheApi)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    Json reply = client.cmd("commands");
    ASSERT_TRUE(okField(reply));
    const Json *commands = reply.find("commands");
    ASSERT_TRUE(commands && commands->isArray());

    auto entry = [&](const std::string &name) -> const Json * {
        for (size_t i = 0; i < commands->size(); ++i) {
            const Json *n = commands->at(i).find("name");
            if (n && n->asString() == name)
                return &commands->at(i);
        }
        return nullptr;
    };

    // A session command with its machine-readable arg schema.
    const Json *run = entry("run");
    ASSERT_TRUE(run);
    EXPECT_EQ(run->find("scope")->asString(), "session");
    const Json *args = run->find("args");
    ASSERT_TRUE(args && args->isArray());
    ASSERT_GE(args->size(), 1u);
    EXPECT_EQ(args->at(0).find("name")->asString(), "n");
    EXPECT_EQ(args->at(0).find("type")->asString(), "u64");
    EXPECT_TRUE(args->at(0).find("required")->asBool());

    // Server commands carry scope and the minimum protocol
    // version, so a client can feature-detect batch.
    const Json *open = entry("open");
    ASSERT_TRUE(open);
    EXPECT_EQ(open->find("scope")->asString(), "server");
    EXPECT_EQ(u64Field(*open, "min_version"), 1u);
    const Json *batch = entry("batch");
    ASSERT_TRUE(batch);
    EXPECT_EQ(u64Field(*batch, "min_version"), 2u);

    // Every REPL command name appears in the introspection.
    for (const std::string &name :
         rdp::Dispatcher::commandNames())
        EXPECT_TRUE(entry(name)) << name;
}

TEST(RdpServer, SessionsReportSchedulerMetrics)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")}})));
    ASSERT_TRUE(
        okField(client.cmd("run", {{"n", Json(uint64_t(64))}})));

    Json reply = client.cmd("sessions");
    ASSERT_TRUE(okField(reply));
    const Json *sessions = reply.find("sessions");
    ASSERT_TRUE(sessions && sessions->isArray());
    ASSERT_EQ(sessions->size(), 1u);
    const Json &entry = sessions->at(0);
    EXPECT_EQ(u64Field(entry, "cycles"), 64u);
    EXPECT_EQ(u64Field(entry, "run_requests"), 1u);
    EXPECT_TRUE(entry.find("exec_us"));
    EXPECT_TRUE(entry.find("queue_wait_us"));
    EXPECT_EQ(u64Field(entry, "pending_runs"), 0u);
    EXPECT_TRUE(entry.find("idle_us"));
}

namespace {

/** Reassemble a streamed trace from a client's collected events,
 *  asserting ordering invariants along the way: seq starts at 0 and
 *  is monotone, offsets are contiguous, bytes matches the payload. */
std::string
reassembleTrace(const Client &client)
{
    std::string document;
    uint64_t expect_seq = 0;
    for (const Json &chunk : client.eventsOfType("trace_chunk")) {
        EXPECT_EQ(u64Field(chunk, "seq"), expect_seq);
        EXPECT_EQ(u64Field(chunk, "offset"), document.size());
        const Json *data = chunk.find("data");
        EXPECT_TRUE(data && data->isString());
        if (data)
            document += data->asString();
        EXPECT_EQ(u64Field(chunk, "bytes"),
                  data ? data->asString().size() : 0);
        ++expect_seq;
    }
    return document;
}

} // namespace

TEST(RdpServer, TraceStreamsChunksThatReassembleByteIdentically)
{
    // The tentpole acceptance path: a v2 client runs `trace` with no
    // file argument and reconstructs the exact VCD from trace_chunk
    // events — sequence-numbered, offset-contiguous, and checksummed
    // by the terminal trace_done.
    rdp::ServerOptions options;
    options.traceChunkBytes = 32; // force a multi-chunk stream
    rdp::Server server(options);
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")}})));
    ASSERT_TRUE(okField(client.cmd("snapshot")));

    Json reply = client.cmd("trace", {{"n", Json(uint64_t(8))}});
    ASSERT_TRUE(okField(reply)) << reply.encode();
    EXPECT_TRUE(reply.find("streamed")->asBool());
    EXPECT_FALSE(reply.find("file"));
    EXPECT_EQ(u64Field(reply, "samples"), 8u);

    std::string document = reassembleTrace(client);
    EXPECT_GT(u64Field(reply, "chunks"), 1u);
    EXPECT_EQ(u64Field(reply, "bytes"), document.size());

    // trace_done seals the stream: totals and checksum must match
    // what the client reassembled.
    auto done = client.eventsOfType("trace_done");
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(u64Field(done[0], "chunks"),
              client.eventsOfType("trace_chunk").size());
    EXPECT_EQ(u64Field(done[0], "bytes"), document.size());
    EXPECT_EQ(u64Field(done[0], "samples"), 8u);
    const Json *checksum = done[0].find("checksum");
    ASSERT_TRUE(checksum && checksum->isString());
    EXPECT_EQ(std::strtoull(checksum->asString().c_str(),
                            nullptr, 16),
              fnv1a64(document.data(), document.size()));

    // Byte identity with the legacy file export: restore the
    // snapshot so the second capture sees identical state, write
    // the same trace to a server-side file, and diff.
    ASSERT_TRUE(okField(client.cmd("restore")));
    const char *path = "stream_check.vcd";
    Json filed = client.cmd("trace",
                            {{"n", Json(uint64_t(8))},
                             {"file", Json(path)}});
    ASSERT_TRUE(okField(filed)) << filed.encode();
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    std::ostringstream file_bytes;
    file_bytes << in.rdbuf();
    in.close();
    std::remove(path);
    EXPECT_EQ(document, file_bytes.str());

    // The VCD really is one: header plus the watch signal.
    EXPECT_NE(document.find("$timescale"), std::string::npos);
    EXPECT_NE(document.find("mut.count"), std::string::npos);
}

TEST(RdpServer, TraceWithoutFileRequiresProtocolV2)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    ASSERT_TRUE(okField(
        client.cmd("hello", {{"version", Json(uint64_t(1))}})));
    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")}})));

    // On a v1 connection the streaming form does not exist; the
    // refusal explains the upgrade path instead of silently writing
    // a file nobody asked for.
    Json refused = client.cmd("trace", {{"n", Json(uint64_t(4))}});
    EXPECT_FALSE(okField(refused));
    EXPECT_EQ(refused.find("error")->asString(), "bad-args");
    EXPECT_NE(refused.find("detail")->asString().find("v2"),
              std::string::npos);
    EXPECT_TRUE(client.eventsOfType("trace_chunk").empty());

    // Upgrading the same connection unlocks streaming.
    ASSERT_TRUE(okField(
        client.cmd("hello", {{"version", Json(uint64_t(2))}})));
    Json streamed =
        client.cmd("trace", {{"n", Json(uint64_t(4))}});
    ASSERT_TRUE(okField(streamed));
    EXPECT_TRUE(streamed.find("streamed")->asBool());
    EXPECT_FALSE(client.eventsOfType("trace_done").empty());
}

TEST(RdpServer, TraceValidatesSignalsBeforeOpeningTheFile)
{
    // Regression: an unknown signal used to surface only after the
    // sink was open, leaving a partial file behind. Validation now
    // precedes both the capture and the open.
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());
    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")}})));

    const char *path = "partial_check.vcd";
    std::remove(path);
    Json refused =
        client.cmd("trace",
                   {{"n", Json(uint64_t(4))},
                    {"file", Json(path)},
                    {"signals", Json("mut/count,mut/bogus")}});
    EXPECT_FALSE(okField(refused));
    EXPECT_EQ(refused.find("error")->asString(), "unknown-name");
    EXPECT_NE(refused.find("detail")->asString().find("mut/bogus"),
              std::string::npos);
    std::ifstream leftover(path);
    EXPECT_FALSE(leftover.is_open())
        << "rejected trace left a partial file behind";

    // An explicit valid list works in both modes.
    Json good = client.cmd("trace",
                           {{"n", Json(uint64_t(4))},
                            {"file", Json(path)},
                            {"signals", Json("mut/count")}});
    EXPECT_TRUE(okField(good)) << good.encode();
    std::ifstream written(path);
    EXPECT_TRUE(written.is_open());
    written.close();
    std::remove(path);

    // The same bad list is equally refused on the streaming path,
    // with no stray chunk events.
    Json stream_refused =
        client.cmd("trace",
                   {{"n", Json(uint64_t(4))},
                    {"signals", Json("mut/bogus")}});
    EXPECT_FALSE(okField(stream_refused));
    EXPECT_EQ(stream_refused.find("error")->asString(),
              "unknown-name");
    EXPECT_TRUE(client.eventsOfType("trace_chunk").empty());
}

TEST(RdpServer, ReplAndWireShareTheCommandTable)
{
    // The REPL's positional grammar must resolve to the same
    // canonical requests the wire accepts — one command table, two
    // front ends (the acceptance criterion of the subsystem).
    std::string err;
    auto parsed =
        rdp::Dispatcher::parseLine("break 0 0x14 or", &err);
    ASSERT_TRUE(parsed) << err;
    EXPECT_EQ(parsed->cmd, "break");
    EXPECT_EQ(parsed->args.find("slot")->asU64(), 0u);
    EXPECT_EQ(parsed->args.find("value")->asU64(), 0x14u);
    EXPECT_EQ(parsed->args.find("group")->asString(), "or");

    // Aliases resolve to canonical wire commands.
    auto aliased = rdp::Dispatcher::parseLine("c", &err);
    ASSERT_TRUE(aliased);
    EXPECT_EQ(aliased->cmd, "resume");
    auto snap = rdp::Dispatcher::parseLine("snap", &err);
    ASSERT_TRUE(snap);
    EXPECT_EQ(snap->cmd, "snapshot");

    // Malformed numbers are rejected at parse time, with usage.
    EXPECT_FALSE(rdp::Dispatcher::parseLine("step xyz", &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(rdp::Dispatcher::parseLine("run", &err));
    EXPECT_FALSE(
        rdp::Dispatcher::parseLine("print a b c", &err));
    EXPECT_FALSE(rdp::Dispatcher::parseLine("bogus 1", &err));

    // Every REPL-parseable command is a wire command.
    auto names = rdp::Dispatcher::commandNames();
    for (const char *cmd :
         {"run", "pause", "resume", "step", "break", "watch",
          "clear", "print", "x", "force", "regs", "snapshot",
          "restore", "trace", "info"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), cmd),
                  names.end())
            << cmd;
    }
}

/**
 * Pin of the wire contract the DAP bridge and CLI clients rely on:
 * any `Num` argument also accepts a "0x..." hex string, and a
 * malformed one is a typed bad-args error, not a silent zero.
 */
TEST(RdpServer, NumArgumentsAcceptHexStrings)
{
    rdp::Server server;
    ServedPipe pipe(server);
    Client client(pipe.clientEnd());

    ASSERT_TRUE(okField(
        client.cmd("open", {{"design", Json("counter")}})));

    Json ran = client.cmd("run", {{"n", Json("0x10")}});
    ASSERT_TRUE(okField(ran));
    EXPECT_EQ(u64Field(ran, "cycles_run"), 16u);

    Json printed =
        client.cmd("print", {{"name", Json("mut/count")}});
    ASSERT_TRUE(okField(printed));
    EXPECT_EQ(u64Field(printed, "value"), 16u);

    Json refused = client.cmd("run", {{"n", Json("0xzz")}});
    EXPECT_FALSE(okField(refused));
    EXPECT_EQ(refused.find("error")->asString(), "bad-args");
}
