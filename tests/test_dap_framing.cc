/**
 * @file
 * The DAP Content-Length framing layer (dap/framing.hh), exercised
 * the way a socket would: whole frames, frames torn at every byte
 * boundary, many frames per read, and then the hostile cases —
 * truncated headers, oversized and malformed Content-Length
 * values, junk streams — which must each land in a typed, sticky
 * FrameError instead of unbounded buffering or a crash. A seeded
 * mutation sweep (SplitMix64, common/rng.hh) closes with the fuzz
 * invariant: feed() never throws, and it refuses input only with a
 * typed error set.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dap/framing.hh"

using namespace zoomie;
using dap::FrameError;
using dap::FrameReader;

namespace {

std::vector<std::string>
drain(FrameReader &reader)
{
    std::vector<std::string> bodies;
    std::string body;
    while (reader.next(body))
        bodies.push_back(body);
    return bodies;
}

} // namespace

TEST(DapFraming, EncodeProducesExactWireBytes)
{
    EXPECT_EQ(dap::encodeFrame("{\"seq\":1}"),
              "Content-Length: 9\r\n\r\n{\"seq\":1}");
    EXPECT_EQ(dap::encodeFrame(""), "Content-Length: 0\r\n\r\n");
}

TEST(DapFraming, RoundTripsOneFrame)
{
    FrameReader reader;
    ASSERT_TRUE(reader.feed(dap::encodeFrame("{\"a\":1}")));
    EXPECT_EQ(drain(reader),
              std::vector<std::string>{"{\"a\":1}"});
    EXPECT_EQ(reader.error(), FrameError::None);
}

TEST(DapFraming, RoundTripsAnEmptyBody)
{
    FrameReader reader;
    ASSERT_TRUE(reader.feed(dap::encodeFrame("")));
    EXPECT_EQ(drain(reader), std::vector<std::string>{""});
}

TEST(DapFraming, SplitsAtEveryByteBoundary)
{
    const std::string wire = dap::encodeFrame("{\"seq\":1}") +
                             dap::encodeFrame("{\"seq\":22}");
    for (size_t cut = 0; cut <= wire.size(); ++cut) {
        FrameReader reader;
        ASSERT_TRUE(reader.feed(
            std::string_view(wire).substr(0, cut)));
        ASSERT_TRUE(
            reader.feed(std::string_view(wire).substr(cut)));
        EXPECT_EQ(drain(reader),
                  (std::vector<std::string>{"{\"seq\":1}",
                                            "{\"seq\":22}"}))
            << "split at byte " << cut;
    }
}

TEST(DapFraming, FeedsOneByteAtATime)
{
    const std::string wire = dap::encodeFrame("{\"x\":true}");
    FrameReader reader;
    for (char byte : wire)
        ASSERT_TRUE(reader.feed(std::string_view(&byte, 1)));
    EXPECT_EQ(drain(reader),
              std::vector<std::string>{"{\"x\":true}"});
}

TEST(DapFraming, ManyFramesInOneRead)
{
    std::string wire;
    std::vector<std::string> expect;
    for (int i = 0; i < 20; ++i) {
        std::string body =
            "{\"seq\":" + std::to_string(i) + "}";
        wire += dap::encodeFrame(body);
        expect.push_back(body);
    }
    FrameReader reader;
    ASSERT_TRUE(reader.feed(wire));
    EXPECT_EQ(drain(reader), expect);
}

TEST(DapFraming, IgnoresUnknownHeaderFields)
{
    FrameReader reader;
    ASSERT_TRUE(reader.feed("Content-Type: application/json\r\n"
                            "Content-Length: 2\r\n"
                            "X-Extra: yes\r\n"
                            "\r\n"
                            "{}"));
    EXPECT_EQ(drain(reader), std::vector<std::string>{"{}"});
}

TEST(DapFraming, HeaderNameIsCaseInsensitive)
{
    FrameReader reader;
    ASSERT_TRUE(reader.feed("CONTENT-LENGTH: 2\r\n\r\nhi"));
    EXPECT_EQ(drain(reader), std::vector<std::string>{"hi"});
}

TEST(DapFraming, AcceptsMatchingDuplicateLengths)
{
    FrameReader reader;
    ASSERT_TRUE(reader.feed(
        "Content-Length: 2\r\nContent-Length: 2\r\n\r\nok"));
    EXPECT_EQ(drain(reader), std::vector<std::string>{"ok"});
}

TEST(DapFraming, TruncatedHeaderJustWaits)
{
    FrameReader reader;
    ASSERT_TRUE(reader.feed("Content-Length: 13\r\n"));
    EXPECT_TRUE(drain(reader).empty());
    EXPECT_EQ(reader.error(), FrameError::None);
    // The rest can still arrive later.
    ASSERT_TRUE(reader.feed("\r\n{\"late\":true}"));
    EXPECT_EQ(drain(reader),
              std::vector<std::string>{"{\"late\":true}"});
}

TEST(DapFraming, HeaderOverflowWithNoTerminator)
{
    FrameReader reader(FrameReader::Limits{64, 1024});
    std::string junk(65, 'x');
    EXPECT_FALSE(reader.feed(junk));
    EXPECT_EQ(reader.error(), FrameError::HeaderOverflow);
    EXPECT_STREQ(dap::frameErrorName(reader.error()),
                 "header-overflow");
}

TEST(DapFraming, HeaderOverflowWithTerminator)
{
    FrameReader reader(FrameReader::Limits{32, 1024});
    std::string header = "A: " + std::string(40, 'y') +
                         "\r\nContent-Length: 1\r\n\r\nz";
    EXPECT_FALSE(reader.feed(header));
    EXPECT_EQ(reader.error(), FrameError::HeaderOverflow);
}

TEST(DapFraming, OversizedContentLengthIsTyped)
{
    FrameReader reader(FrameReader::Limits{4096, 1000});
    EXPECT_FALSE(reader.feed("Content-Length: 1001\r\n\r\n"));
    EXPECT_EQ(reader.error(), FrameError::LengthOverflow);
    EXPECT_NE(reader.errorDetail().find("1001"),
              std::string::npos);
}

TEST(DapFraming, AstronomicalContentLengthCannotWrap)
{
    FrameReader reader;
    EXPECT_FALSE(reader.feed(
        "Content-Length: 99999999999999999999999999\r\n\r\n"));
    EXPECT_EQ(reader.error(), FrameError::LengthOverflow);
}

TEST(DapFraming, RejectsNonDecimalLength)
{
    for (const char *bad : {"0x10", "12abc", "-4", " ", "1 2"}) {
        FrameReader reader;
        EXPECT_FALSE(reader.feed(std::string("Content-Length: ") +
                                 bad + "\r\n\r\n"))
            << bad;
        EXPECT_EQ(reader.error(), FrameError::BadHeader) << bad;
    }
}

TEST(DapFraming, RejectsConflictingLengths)
{
    FrameReader reader;
    EXPECT_FALSE(reader.feed(
        "Content-Length: 2\r\nContent-Length: 3\r\n\r\n"));
    EXPECT_EQ(reader.error(), FrameError::BadHeader);
}

TEST(DapFraming, RejectsHeaderLineWithoutColon)
{
    FrameReader reader;
    EXPECT_FALSE(
        reader.feed("Content-Length 2\r\n\r\nhi"));
    EXPECT_EQ(reader.error(), FrameError::BadHeader);
}

TEST(DapFraming, MissingLengthIsTyped)
{
    FrameReader reader;
    EXPECT_FALSE(
        reader.feed("Content-Type: application/json\r\n\r\n"));
    EXPECT_EQ(reader.error(), FrameError::MissingLength);
    EXPECT_STREQ(dap::frameErrorName(reader.error()),
                 "missing-length");
}

TEST(DapFraming, ErrorsAreSticky)
{
    FrameReader reader;
    EXPECT_FALSE(reader.feed("no colon here\r\n\r\n"));
    ASSERT_EQ(reader.error(), FrameError::BadHeader);
    // A perfectly valid frame afterwards is still refused: DAP
    // framing has no resync point, the connection must close.
    EXPECT_FALSE(reader.feed(dap::encodeFrame("{}")));
    EXPECT_EQ(reader.error(), FrameError::BadHeader);
    EXPECT_TRUE(drain(reader).empty());
}

/**
 * The fuzz invariant: whatever bytes arrive, however they are
 * split, feed() never throws and never grows state without bound —
 * it either keeps accepting or parks on a typed error.
 */
TEST(DapFraming, SeededMutationSweepNeverCrashes)
{
    std::vector<std::string> corpus = {
        dap::encodeFrame("{\"seq\":1,\"type\":\"request\","
                         "\"command\":\"initialize\"}"),
        dap::encodeFrame(""),
        "Content-Length: 5\r\nContent-Type: json\r\n\r\nhello",
        "Content-Length: 0\r\n\r\n",
    };
    Rng rng(0xda9f4a11ULL);
    for (int round = 0; round < 4000; ++round) {
        std::string wire = corpus[rng.nextBelow(corpus.size())];
        // Byte-level mutation: flips, truncation, duplication.
        unsigned edits = unsigned(rng.nextBelow(4));
        for (unsigned e = 0; e < edits && !wire.empty(); ++e) {
            switch (rng.nextBelow(3)) {
              case 0:
                wire[rng.nextBelow(wire.size())] =
                    char(rng.nextBits(8));
                break;
              case 1:
                wire.resize(rng.nextBelow(wire.size() + 1));
                break;
              default:
                wire += wire.substr(
                    rng.nextBelow(wire.size() + 1));
                break;
            }
        }
        FrameReader reader(FrameReader::Limits{512, 4096});
        size_t pos = 0;
        bool alive = true;
        while (pos < wire.size()) {
            size_t take = 1 + rng.nextBelow(7);
            take = std::min(take, wire.size() - pos);
            alive = reader.feed(
                std::string_view(wire).substr(pos, take));
            pos += take;
            if (!alive)
                break;
        }
        if (!alive) {
            EXPECT_NE(reader.error(), FrameError::None);
            EXPECT_FALSE(reader.errorDetail().empty());
        }
        drain(reader); // must not throw either way
    }
}

/** Random split points never change what a valid stream decodes to. */
TEST(DapFraming, RandomSplitsAreTransparent)
{
    std::string wire;
    std::vector<std::string> expect;
    for (int i = 0; i < 8; ++i) {
        std::string body(size_t(1) << i, char('a' + i));
        wire += dap::encodeFrame(body);
        expect.push_back(body);
    }
    Rng rng(7);
    for (int round = 0; round < 200; ++round) {
        FrameReader reader;
        size_t pos = 0;
        while (pos < wire.size()) {
            size_t take = 1 + rng.nextBelow(97);
            take = std::min(take, wire.size() - pos);
            ASSERT_TRUE(reader.feed(
                std::string_view(wire).substr(pos, take)));
            pos += take;
        }
        EXPECT_EQ(drain(reader), expect);
    }
}
