/**
 * @file
 * Tests for the configuration packet format, the command builder
 * and the disassembler (the §4.4 analysis tooling).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bitstream/builder.hh"
#include "bitstream/disassembler.hh"
#include "bitstream/packets.hh"

using namespace zoomie::bitstream;

TEST(Packets, Type1RoundTrip)
{
    uint32_t word = type1(PacketOp::Write, ConfigReg::FAR, 1);
    PacketHeader header = decodeHeader(word);
    EXPECT_EQ(header.type, PacketHeader::Type::Type1);
    EXPECT_EQ(header.op, PacketOp::Write);
    EXPECT_EQ(header.reg, ConfigReg::FAR);
    EXPECT_EQ(header.wordCount, 1u);
}

TEST(Packets, Type2RoundTrip)
{
    uint32_t word = type2(PacketOp::Read, 123456);
    PacketHeader header = decodeHeader(word);
    EXPECT_EQ(header.type, PacketHeader::Type::Type2);
    EXPECT_EQ(header.op, PacketOp::Read);
    EXPECT_EQ(header.wordCount, 123456u);
}

TEST(Packets, GarbageDecodesInvalid)
{
    EXPECT_EQ(decodeHeader(0x00000001).type,
              PacketHeader::Type::Invalid);
    EXPECT_EQ(decodeHeader(0xE0000000).type,
              PacketHeader::Type::Invalid);
}

TEST(Packets, SpecialWordsAreNotValidHeaders)
{
    // 0xAA995566 has type bits 101 -> invalid as a packet header,
    // which is why it is safe as a sync marker.
    EXPECT_EQ(decodeHeader(kSyncWord).type,
              PacketHeader::Type::Invalid);
}

TEST(CommandBuilder, SectionStructure)
{
    CommandBuilder builder;
    builder.sync(4)
        .selectHop(2)
        .writeReg(ConfigReg::IDCODE, 0x12345678)
        .writeFrames(7, std::vector<uint32_t>(93, 0xCAFE))
        .command(Command::Start)
        .desync();
    auto words = builder.words();

    DisasmStats stats = analyze(words);
    EXPECT_EQ(stats.boutPulses, 2u);
    EXPECT_EQ(stats.frameDataWords, 93u);
    ASSERT_EQ(stats.idcodes.size(), 1u);
    EXPECT_EQ(stats.idcodes[0], 0x12345678u);
    // Two BOUT pulses before the single FDRI section.
    ASSERT_EQ(stats.boutBeforeSection.size(), 1u);
    EXPECT_EQ(stats.boutBeforeSection[0], 2u);
}

TEST(Disassembler, BoutRepetitionPatternAcrossSections)
{
    // Emulate a 3-SLR full bitstream: sections with 0, 1, 2 pulses,
    // the pattern §4.4 observed on a U200.
    CommandBuilder builder;
    for (uint32_t hop = 0; hop < 3; ++hop) {
        builder.sync().selectHop(hop);
        builder.writeFrames(0, std::vector<uint32_t>(93, 0));
        builder.desync();
    }
    DisasmStats stats = analyze(builder.words());
    ASSERT_EQ(stats.boutBeforeSection.size(), 3u);
    EXPECT_EQ(stats.boutBeforeSection[0], 0u);
    EXPECT_EQ(stats.boutBeforeSection[1], 1u);
    EXPECT_EQ(stats.boutBeforeSection[2], 2u);
}

TEST(Disassembler, EmptyBoutWritesCarryNoData)
{
    CommandBuilder builder;
    builder.sync().selectHop(1);
    auto events = disassemble(builder.words());
    bool saw_bout = false;
    for (const auto &ev : events) {
        if (ev.kind == DisasmEvent::Kind::BoutPulse) {
            saw_bout = true;
            EXPECT_TRUE(ev.data.empty());
        }
    }
    EXPECT_TRUE(saw_bout);
}

TEST(Disassembler, PrintsReadableText)
{
    CommandBuilder builder;
    builder.sync(2).command(Command::GCapture).desync();
    std::ostringstream os;
    printDisassembly(disassemble(builder.words()), os);
    std::string text = os.str();
    EXPECT_NE(text.find("SYNC"), std::string::npos);
    EXPECT_NE(text.find("GCAPTURE"), std::string::npos);
    EXPECT_NE(text.find("DESYNC"), std::string::npos);
}

TEST(Disassembler, DummyRunsCoalesce)
{
    std::vector<uint32_t> words(5, kDummyWord);
    auto events = disassemble(words);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, DisasmEvent::Kind::Dummy);
    EXPECT_EQ(events[0].count, 5u);
}
