/**
 * @file
 * Cross-module integration tests: full-bitstream structure matches
 * the §4.4 observations, configuration images land verbatim in
 * config memory, TinyRV programs execute on the *fabric* under the
 * debugger (memory readback, state forcing, snapshot/replay on a
 * CPU), pauses never perturb architectural execution, and the
 * four-SLR U250 behaves like the paper's validation experiment.
 */

#include <gtest/gtest.h>

#include "bitstream/builder.hh"
#include "bitstream/disassembler.hh"
#include "common/rng.hh"
#include "core/snapshot.hh"
#include "core/zoomie.hh"
#include "designs/serv_soc.hh"
#include "designs/tinyrv.hh"
#include "fpga/device.hh"
#include "jtag/jtag.hh"
#include "sim/simulator.hh"
#include "synth/techmap.hh"
#include "toolchain/bitgen.hh"
#include "toolchain/flows.hh"
#include "toolchain/placer.hh"
#include "util/random_design.hh"

using namespace zoomie;

TEST(Integration, FullBitstreamShowsTheBoutPattern)
{
    // A generated full bitstream for a 2-SLR device must show the
    // §4.4 structure: one FDRI section per SLR, 0 BOUT pulses
    // before the primary's, 1 before the secondary's, per-SLR
    // IDCODE writes.
    designs::ServSocConfig config;
    config.cores = 2;
    config.coresPerCluster = 2;
    config.clusterBrams = 1;
    config.l2Brams = 0;
    rtl::Design design = designs::buildServSoc(config);
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    toolchain::VendorTool tool(spec);
    auto result = tool.compile(design);

    auto stats = bitstream::analyze(result.bitstream);
    ASSERT_EQ(stats.boutBeforeSection.size(), spec.numSlrs);
    EXPECT_EQ(stats.boutBeforeSection[0], 0u);
    EXPECT_EQ(stats.boutBeforeSection[1], 1u);
    EXPECT_EQ(stats.idcodes.size(), spec.numSlrs);
    for (uint32_t slr = 0; slr < spec.numSlrs; ++slr) {
        uint32_t ring_slr = spec.ringOrder()[slr];
        EXPECT_EQ(stats.idcodes[slr], spec.idcode(ring_slr));
    }
    EXPECT_EQ(stats.frameDataWords,
              spec.framesPerSlr() * fpga::kFrameWords *
                  spec.numSlrs);
}

TEST(Integration, ConfigurationImagesLandVerbatim)
{
    testutil::RandomDesignSpec rspec;
    rspec.seed = 77;
    rtl::Design design = testutil::makeRandomDesign(rspec);
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    auto net = synth::techMap(design);
    auto placement = toolchain::place(spec, net);
    auto images = toolchain::buildConfigImages(spec, net, placement);
    auto words = toolchain::fullBitstream(spec, net, placement);

    fpga::Device device(spec);
    device.attach(net, placement);
    jtag::JtagHost host(device);
    host.send(words);

    for (uint32_t slr = 0; slr < spec.numSlrs; ++slr) {
        for (uint32_t frame = 0; frame < spec.framesPerSlr();
             ++frame) {
            for (uint32_t w = 0; w < fpga::kFrameWords; w += 13) {
                ASSERT_EQ(device.slrMem(slr).word(frame, w),
                          images[slr][uint64_t(frame) *
                                      fpga::kFrameWords + w])
                    << "slr " << slr << " frame " << frame;
            }
        }
    }
}

// ---- TinyRV on the fabric, under the debugger -----------------------

namespace {

std::unique_ptr<core::Platform>
cpuPlatform(const std::vector<uint32_t> &program,
            std::vector<std::string> watch = {"cpu/pc"})
{
    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "cpu/";
    opts.instrument.watchSignals = std::move(watch);
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    spec.clbCols = 32;
    spec.clbRows = 64;  // TinyRV needs ~4k LUTs
    spec.bramCols = 4;
    opts.spec = spec;
    return core::Platform::create(designs::buildTinyRv(program),
                                  opts);
}

} // namespace

TEST(Integration, TinyRvRunsOnTheFabric)
{
    using namespace designs::rv;
    // sum = 1..10 -> mem[0x80]
    std::vector<uint32_t> program = {
        addi(1, 0, 0), addi(2, 0, 1), addi(3, 0, 11),
        add(1, 1, 2), addi(2, 2, 1), bne(2, 3, -8),
        sw(1, 0, 0x200), jal(0, 0),
    };
    auto platform = cpuPlatform(program);
    platform->run(400);
    // Read the result out of the BRAM through capture + readback.
    EXPECT_EQ(platform->debugger().readMemWord("cpu/mem", 0x80),
              55u);
    // And a CSR for good measure.
    EXPECT_EQ(platform->debugger().readRegister("cpu/mstatus_mie"),
              1u);
}

TEST(Integration, DebuggerBreakpointOnProgramCounter)
{
    using namespace designs::rv;
    std::vector<uint32_t> program = {
        addi(1, 0, 1), addi(1, 1, 1), addi(1, 1, 1),
        addi(1, 1, 1), jal(0, 0),
    };
    auto platform = cpuPlatform(program);
    auto &dbg = platform->debugger();
    dbg.setValueBreakpoint(0, 0xC, true, false);  // pc == 12
    dbg.armTriggers(true, false);
    platform->run(200);
    ASSERT_TRUE(dbg.isPaused());
    EXPECT_EQ(dbg.readRegister("cpu/pc"), 0xCu);
    // pc advances to 12 in the same edge that retires the
    // instruction at 8, so exactly three addis have executed when
    // the breakpoint freezes the core — cycle-precise.
    uint64_t x1 = dbg.readMemWord("cpu/rf", 1);
    EXPECT_EQ(x1, 3u);
}

TEST(Integration, ForcingMemoryRedirectsExecution)
{
    using namespace designs::rv;
    // The program stores 7; we overwrite the *instruction* that
    // loads the constant, turning 7 into 123 — code patching
    // through partial reconfiguration, no recompile.
    std::vector<uint32_t> program = {
        addi(5, 0, 7),
        sw(5, 0, 0x100),
        jal(0, 0),
    };
    auto platform = cpuPlatform(program);
    auto &dbg = platform->debugger();
    dbg.pause();
    platform->run(1);
    dbg.forceMemWord("cpu/mem", 0, addi(5, 0, 123));
    dbg.forceRegister("cpu/pc", 0);
    dbg.forceRegister("cpu/state", 0);
    dbg.resume();
    platform->run(60);
    EXPECT_EQ(dbg.readMemWord("cpu/mem", 0x40), 123u);
}

TEST(Integration, SnapshotReplayOnACpu)
{
    using namespace designs::rv;
    std::vector<uint32_t> program = {
        addi(1, 0, 0),
        addi(1, 1, 3),
        jal(0, -4),
    };
    auto platform = cpuPlatform(program);
    auto &dbg = platform->debugger();
    core::SnapshotStore store(*platform);

    platform->run(101);
    dbg.pause();
    platform->run(1);
    auto snap = store.capture(/*pinned=*/true);
    ASSERT_TRUE(snap.has_value());
    uint64_t x1_at_snap = dbg.readMemWord("cpu/rf", 1);

    dbg.resume();
    platform->run(100);
    dbg.pause();
    platform->run(1);
    uint64_t x1_later = dbg.readMemWord("cpu/rf", 1);
    ASSERT_GT(x1_later, x1_at_snap);

    // Replay: restore and run the same distance again.
    ASSERT_TRUE(store.restore(snap->id).has_value());
    EXPECT_EQ(dbg.readMemWord("cpu/rf", 1), x1_at_snap);
    dbg.resume();
    platform->run(100);
    dbg.pause();
    platform->run(1);
    EXPECT_EQ(dbg.readMemWord("cpu/rf", 1), x1_later);
}

TEST(Integration, PausesNeverPerturbArchitecturalExecution)
{
    using namespace designs::rv;
    std::vector<uint32_t> program = {
        addi(1, 0, 0), addi(2, 0, 1),
        add(1, 1, 2), addi(2, 2, 1), jal(0, -8),
    };
    // Reference: RTL simulation, never paused, for N MUT cycles.
    rtl::Design ref_design = designs::buildTinyRv(program);
    sim::Simulator ref(ref_design);
    const uint64_t kMutCycles = 300;
    for (uint64_t i = 0; i < kMutCycles; ++i)
        ref.step();

    // Fabric run with random pauses until the same MUT cycles.
    auto platform = cpuPlatform(program);
    auto &dbg = platform->debugger();
    Rng rng(404);
    while (platform->mutCycles() < kMutCycles) {
        uint64_t remaining = kMutCycles - platform->mutCycles();
        uint64_t chunk = 1 + rng.nextBelow(37);
        if (chunk > remaining)
            chunk = remaining;
        dbg.stepCycles(chunk);
        platform->run(chunk + 4);
        ASSERT_TRUE(dbg.isPaused());
    }
    EXPECT_EQ(platform->mutCycles(), kMutCycles);
    EXPECT_EQ(dbg.readRegister("cpu/pc"), ref.regByName("cpu/pc"));
    EXPECT_EQ(dbg.readMemWord("cpu/rf", 1), ref.memWord(1, 1));
    EXPECT_EQ(dbg.readMemWord("cpu/rf", 2), ref.memWord(1, 2));
}

TEST(Integration, FourSlrU250FullFlow)
{
    // §4.5 repetition-pattern validation at system level: a design
    // floorplanned onto all four SLRs of a U250 configures and
    // reads back correctly; the bitstream carries 0/1/2/3 BOUT
    // pulses before the four sections.
    fpga::DeviceSpec spec = fpga::makeU250();
    spec.clbCols = 8;
    spec.clbRows = 8;
    spec.bramCols = 1;
    spec.bramRows = 2;

    rtl::Builder b("u250");
    for (int i = 0; i < 4; ++i) {
        b.pushScope("part" + std::to_string(i));
        auto r = b.reg("marker", 8, 0xA0 + i);
        b.connect(r, r.q);
        b.popScope();
    }
    b.output("dummy", b.lit(1, 1));
    rtl::Design design = b.finish();

    auto net = synth::techMap(design);
    toolchain::Floorplan floorplan;
    for (int i = 0; i < 4; ++i) {
        toolchain::FloorplanPart part;
        part.scopePrefix = "part" + std::to_string(i) + "/";
        part.forcedSlr = i;
        floorplan.parts.push_back(std::move(part));
    }
    auto placement = toolchain::place(spec, net, &floorplan);
    auto words = toolchain::fullBitstream(spec, net, placement);

    auto stats = bitstream::analyze(words);
    ASSERT_EQ(stats.boutBeforeSection.size(), 4u);
    for (uint32_t h = 0; h < 4; ++h)
        EXPECT_EQ(stats.boutBeforeSection[h], h);

    fpga::Device device(spec);
    device.attach(net, placement);
    jtag::JtagHost host(device);
    host.send(words);
    ASSERT_TRUE(device.running());

    // Each marker must be readable from its own SLR.
    auto locs = toolchain::buildLogicLocations(spec, design, net,
                                               placement);
    for (int i = 0; i < 4; ++i) {
        const auto *reg = locs.findReg(
            "part" + std::to_string(i) + "/marker");
        ASSERT_NE(reg, nullptr);
        EXPECT_EQ(reg->bits[0].slr, uint32_t(i));
        // Capture that SLR and decode through config memory.
        bitstream::CommandBuilder cb;
        uint32_t hop = 0;
        auto ring = spec.ringOrder();
        for (uint32_t h = 0; h < ring.size(); ++h) {
            if (ring[h] == uint32_t(i))
                hop = h;
        }
        cb.sync().selectHop(hop)
            .command(bitstream::Command::GCapture).desync();
        host.send(cb.take());
        uint64_t value = 0;
        for (unsigned bit = 0; bit < 8; ++bit) {
            value |= uint64_t(device.slrMem(i).bit(reg->bits[bit]))
                     << bit;
        }
        EXPECT_EQ(value, 0xA0u + i);
    }
}
