#include "util/fuzz.hh"

namespace zoomie::testutil {

using rdp::Json;

const std::set<std::string> &
knownErrors()
{
    static const std::set<std::string> names = {
        "bad-request", "bad-args",   "unknown-command",
        "no-session",  "unknown-name", "unsupported-version",
        "busy",        "timeout",    "trace-overflow",
        "parse-error", "lint-rejected",
        "snapshot-not-found", "snapshot-overflow",
        "internal",
    };
    return names;
}

const std::vector<std::string> &
seedCorpus()
{
    static const std::vector<std::string> seeds = {
        R"({"cmd":"hello","version":2})",
        R"({"cmd":"hello","version":1,"min":1})",
        R"({"cmd":"open","design":"counter"})",
        R"({"cmd":"run","id":3,"n":16})",
        R"({"cmd":"step","n":2})",
        R"({"cmd":"pause"})",
        R"({"cmd":"resume"})",
        R"({"cmd":"break","slot":0,"value":7,"group":"or"})",
        R"({"cmd":"watch","slot":0,"on":1})",
        R"({"cmd":"clear"})",
        R"({"cmd":"print","name":"mut/count"})",
        R"({"cmd":"x","name":"cpu/mem","addr":4})",
        R"({"cmd":"force","name":"mut/count","value":9})",
        R"({"cmd":"regs","prefix":"mut/"})",
        R"({"cmd":"snapshot"})",
        R"({"cmd":"snapshots"})",
        R"({"cmd":"restore"})",
        R"({"cmd":"restore","cycle":6})",
        R"({"cmd":"restore","snapshot":99})",
        R"({"cmd":"restore","snapshot":1,"cycle":2})",
        R"({"cmd":"trace","n":4,"signals":"mut/count"})",
        R"({"cmd":"info"})",
        R"({"cmd":"assert","index":0,"on":0})",
        R"({"cmd":"sessions"})",
        R"({"cmd":"commands"})",
        R"({"cmd":"close","session":1})",
        R"({"cmd":"batch","requests":[{"cmd":"info"},{"cmd":"run","n":2}]})",
        R"({"cmd":"batch","requests":[],"abort_on_error":true})",
        // Near-protocol junk the decoder must refuse typed-ly.
        R"({"cmd":42})",
        R"({"id":-1,"cmd":"run","n":1})",
        R"({"session":"x","cmd":"info"})",
        R"([1,2,3])",
        R"("just a string")",
        R"({"cmd":"run","n":18446744073709551615})",
        R"({"cmd":"run","n":1e308})",
        R"({"cmd":"print","name":" ￿"})",
    };
    return seeds;
}

const std::vector<std::string> &
rtlSeedCorpus()
{
    static const std::vector<std::string> seeds = {
        // The counter-with-enable the e2e recipes debug.
        "module counter(input clk, input en, output [15:0] q);\n"
        "  reg [15:0] count;\n"
        "  always @(posedge clk) if (en) count <= count + 1;\n"
        "  assign q = count;\n"
        "endmodule\n",
        // Parameterized hierarchy: instantiations survive mutation
        // poorly, probing the elaborator's error paths.
        "module box #(parameter W = 8) "
        "(input clk, output [W-1:0] q);\n"
        "  reg [W-1:0] r;\n"
        "  always @(posedge clk) r <= r + 1;\n"
        "  assign q = r;\n"
        "endmodule\n"
        "module top(input clk, output [7:0] q);\n"
        "  box #(.W(8)) b (.clk(clk), .q(q));\n"
        "endmodule\n",
        // Lint-gate fodder: a constant memory address past the
        // depth is an error-severity finding → `lint-rejected`.
        "module m(input clk, input [7:0] d, output [7:0] q);\n"
        "  reg [7:0] store [0:5];\n"
        "  reg [7:0] r;\n"
        "  always @(posedge clk) begin\n"
        "    store[7] <= d;\n"
        "    r <= store[0];\n"
        "  end\n"
        "  assign q = r;\n"
        "endmodule\n",
        // Register-less: compiles, then refused pre-admission.
        "module thru(input [3:0] a, output [3:0] y);\n"
        "  assign y = a;\n"
        "endmodule\n",
    };
    return seeds;
}

std::string
clampDigitRuns(const std::string &line)
{
    std::string out;
    size_t digits = 0;
    for (char ch : line) {
        if (ch >= '0' && ch <= '9') {
            if (++digits > 3)
                continue;
        } else {
            digits = 0;
        }
        out += ch;
    }
    return out;
}

std::string
mutate(const std::string &seed,
       const std::vector<std::string> &corpus, Rng &rng)
{
    std::string line = seed;
    // Occasionally splice two seeds together mid-line.
    if (rng.chance(1, 4)) {
        const std::string &other =
            corpus[rng.nextBelow(corpus.size())];
        size_t cut_a = rng.nextBelow(line.size() + 1);
        size_t cut_b = rng.nextBelow(other.size() + 1);
        line = line.substr(0, cut_a) + other.substr(cut_b);
    }
    unsigned edits = unsigned(rng.nextBelow(4));
    for (unsigned e = 0; e < edits; ++e) {
        if (line.empty())
            break;
        switch (rng.nextBelow(4)) {
        case 0: { // flip one byte (full range incl. non-ASCII)
            line[rng.nextBelow(line.size())] =
                char(rng.nextBits(8));
            break;
        }
        case 1: { // truncate
            line.resize(rng.nextBelow(line.size() + 1));
            break;
        }
        case 2: { // insert a structural character
            const char structural[] = "{}[]\",:0123456789eE+-. ";
            size_t at = rng.nextBelow(line.size() + 1);
            line.insert(line.begin() + at,
                        structural[rng.nextBelow(
                            sizeof(structural) - 1)]);
            break;
        }
        default: { // duplicate a span
            size_t from = rng.nextBelow(line.size());
            size_t len = rng.nextBelow(line.size() - from) + 1;
            size_t at = rng.nextBelow(line.size() + 1);
            line.insert(at, line.substr(from, len));
            break;
        }
        }
    }
    return clampDigitRuns(line);
}

std::string
checkServerOutput(const std::vector<std::string> &out,
                  const std::string &input)
{
    for (const std::string &line : out) {
        std::string err;
        auto msg = Json::parse(line, &err);
        if (!msg)
            return "unparseable server output '" + line + "' (" +
                   err + ") for input: " + input;
        const Json *type = msg->find("type");
        if (!type || !type->isString())
            return "untyped output " + line;
        const Json *ok = msg->find("ok");
        bool failed = (ok && !ok->asBool()) ||
                      type->asString() == "error";
        if (!failed)
            continue;
        const Json *code = msg->find("error");
        if (!code || !code->isString())
            return "failure without an error code: " + line;
        if (!knownErrors().count(code->asString()))
            return "unknown error code '" + code->asString() +
                   "' for input: " + input;
    }
    return "";
}

rdp::ServerOptions
fuzzOptions()
{
    rdp::ServerOptions options;
    // Keep accidental-but-valid requests cheap: few session slots,
    // a small per-session cycle budget (clamped runs come back as
    // the typed `busy` error).
    options.scheduler.maxSessions = 4;
    options.scheduler.cycleBudget = 5000;
    return options;
}

} // namespace zoomie::testutil
