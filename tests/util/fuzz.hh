/**
 * @file
 * Shared seeded-fuzz helpers for the wire-protocol harnesses. The
 * JSONL fuzzer (test_rdp_fuzz) and the differential tester
 * (src/difftest, test_difftest) both start from the same
 * valid-request corpus, mutate it with the same deterministic
 * byte-level mutator, and hold the server to the same oracle: every
 * output line parses, carries a type, and names a known typed
 * rdp::Errc on failure. Keeping one copy here means a new command
 * or error code is added to the corpus/oracle exactly once.
 */

#ifndef ZOOMIE_TESTS_UTIL_FUZZ_HH
#define ZOOMIE_TESTS_UTIL_FUZZ_HH

#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "rdp/server.hh"

namespace zoomie::testutil {

/** Every wire-legal error code (errcName() images). */
const std::set<std::string> &knownErrors();

/** Valid request lines the mutator starts from. */
const std::vector<std::string> &seedCorpus();

/** Verilog texts the RTL-upload mutator starts from. */
const std::vector<std::string> &rtlSeedCorpus();

/**
 * Clamp every digit run to 3 characters so a lucky mutation can
 * never assemble a valid multi-million-cycle `run`/`step` request:
 * the fuzzer probes the protocol surface, not simulator throughput.
 */
std::string clampDigitRuns(const std::string &line);

/** One deterministic mutation pass over @p seed. */
std::string mutate(const std::string &seed,
                   const std::vector<std::string> &corpus, Rng &rng);

/**
 * The fuzz oracle: every line the server emits must parse, carry a
 * type, and name a known error code when it reports failure.
 * @return "" when @p out passes, else a one-line diagnostic (kept
 * gtest-free so non-test harnesses can use it too).
 */
std::string checkServerOutput(const std::vector<std::string> &out,
                              const std::string &input);

/** Server sized for adversarial traffic: few session slots, small
 *  per-session cycle budget. */
rdp::ServerOptions fuzzOptions();

} // namespace zoomie::testutil

#endif // ZOOMIE_TESTS_UTIL_FUZZ_HH
