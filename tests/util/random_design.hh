/**
 * @file
 * Random RTL design generator for property-based tests: emits a
 * well-formed design mixing combinational operators, registers and
 * memories, with a known set of output ports to compare across the
 * RTL simulator, the mapped-netlist interpreter and the FPGA fabric.
 */

#ifndef ZOOMIE_TESTS_RANDOM_DESIGN_HH
#define ZOOMIE_TESTS_RANDOM_DESIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/ir.hh"

namespace zoomie::testutil {

struct RandomDesignSpec
{
    uint64_t seed = 1;
    unsigned numInputs = 4;
    unsigned numOps = 60;
    unsigned numRegs = 8;
    unsigned numMems = 1;
    unsigned maxWidth = 16;
    unsigned numOutputs = 4;
    unsigned numScopes = 3;   ///< random sub-scopes to attribute logic to
};

/** Input port names are "in0".."inN-1"; outputs "out0".."outM-1". */
rtl::Design makeRandomDesign(const RandomDesignSpec &spec);

} // namespace zoomie::testutil

#endif // ZOOMIE_TESTS_RANDOM_DESIGN_HH
