#include "random_design.hh"

#include "common/rng.hh"
#include "rtl/builder.hh"

namespace zoomie::testutil {

using rtl::Builder;
using rtl::Value;

rtl::Design
makeRandomDesign(const RandomDesignSpec &spec)
{
    Rng rng(spec.seed);
    Builder b("random_" + std::to_string(spec.seed));

    std::vector<Value> pool;
    for (unsigned i = 0; i < spec.numInputs; ++i) {
        unsigned width = 1 + rng.nextBelow(spec.maxWidth);
        pool.push_back(b.input("in" + std::to_string(i), width));
    }
    pool.push_back(b.lit(rng.next(), 1 + rng.nextBelow(spec.maxWidth)));
    pool.push_back(b.lit(0, 1));
    pool.push_back(b.lit(1, 1));

    // Declare registers up front so feedback paths are possible.
    std::vector<rtl::RegHandle> regs;
    for (unsigned i = 0; i < spec.numRegs; ++i) {
        unsigned width = 1 + rng.nextBelow(spec.maxWidth);
        if (rng.chance(1, 4) && spec.numScopes > 0)
            b.pushScope("sub" + std::to_string(
                rng.nextBelow(spec.numScopes)));
        regs.push_back(b.reg("r" + std::to_string(i), width,
                             rng.next()));
        if (b.scopePrefix() != "")
            b.popScope();
        pool.push_back(regs.back().q);
    }

    auto pick = [&]() { return pool[rng.nextBelow(pool.size())]; };
    auto pickW = [&](unsigned width) {
        // Adapt a random pool value to the requested width.
        Value v = pick();
        if (v.width == width)
            return v;
        if (v.width > width) {
            // Can't call builder here; handled by caller via slice.
            return v;
        }
        return v;
    };
    (void)pickW;

    auto adapt = [&](Value v, unsigned width) -> Value {
        if (v.width == width)
            return v;
        if (v.width > width)
            return b.slice(v, 0, width);
        return b.zext(v, width);
    };

    for (unsigned i = 0; i < spec.numOps; ++i) {
        bool scoped = rng.chance(1, 3) && spec.numScopes > 0;
        if (scoped)
            b.pushScope("sub" + std::to_string(
                rng.nextBelow(spec.numScopes)));
        Value a = pick();
        Value bb = pick();
        Value out;
        switch (rng.nextBelow(16)) {
          case 0: out = b.band(a, adapt(bb, a.width)); break;
          case 1: out = b.bor(a, adapt(bb, a.width)); break;
          case 2: out = b.bxor(a, adapt(bb, a.width)); break;
          case 3: out = b.bnot(a); break;
          case 4: out = b.add(a, adapt(bb, a.width)); break;
          case 5: out = b.sub(a, adapt(bb, a.width)); break;
          case 6: out = b.eq(a, adapt(bb, a.width)); break;
          case 7: out = b.ult(a, adapt(bb, a.width)); break;
          case 8: out = b.shl(a, adapt(bb, a.width)); break;
          case 9: out = b.shr(a, adapt(bb, a.width)); break;
          case 10: {
            Value sel = adapt(pick(), 1);
            out = b.mux(sel, a, adapt(bb, a.width));
            break;
          }
          case 11:
            if (a.width + bb.width <= 64) {
                out = b.concat(a, bb);
            } else {
                out = b.bnot(a);
            }
            break;
          case 12: {
            unsigned lo = rng.nextBelow(a.width);
            unsigned len = 1 + rng.nextBelow(a.width - lo);
            out = b.slice(a, lo, len);
            break;
          }
          case 13: out = b.redOr(a); break;
          case 14: out = b.redXor(a); break;
          default:
            if (a.width <= 8) {
                out = b.mul(a, adapt(bb, a.width));
            } else {
                out = b.ule(a, adapt(bb, a.width));
            }
            break;
        }
        pool.push_back(out);
        if (scoped)
            b.popScope();
    }

    // Connect registers with random data / enables / resets.
    for (unsigned i = 0; i < spec.numRegs; ++i) {
        unsigned width = regs[i].q.width;
        b.connect(regs[i], adapt(pick(), width));
        if (rng.chance(1, 3))
            b.enable(regs[i], adapt(pick(), 1));
        if (rng.chance(1, 3))
            b.resetTo(regs[i], adapt(pick(), 1), rng.next());
    }

    // Memories exercised through both port styles.
    for (unsigned i = 0; i < spec.numMems; ++i) {
        unsigned width = 1 + rng.nextBelow(16);
        uint32_t depth = 8u << rng.nextBelow(4);
        std::vector<uint64_t> init(depth);
        for (auto &word : init)
            word = rng.next();
        auto handle = b.mem("m" + std::to_string(i), width, depth,
                            rng.chance(1, 2)
                                ? rtl::MemStyle::Distributed
                                : rtl::MemStyle::Block,
                            std::move(init));
        Value raddr = adapt(pick(), 8);
        Value data = rng.chance(1, 2) && i % 2 == 0
            ? b.memReadAsync(handle, raddr)
            : b.memReadSync(handle, raddr);
        pool.push_back(data);
        b.memWrite(handle, adapt(pick(), 8), adapt(pick(), width),
                   adapt(pick(), 1));
    }

    for (unsigned i = 0; i < spec.numOutputs; ++i)
        b.output("out" + std::to_string(i), pick());

    return b.finish();
}

} // namespace zoomie::testutil
