/**
 * @file
 * Zoomie core tests: pause-buffer bounded model checking and
 * RTL-vs-model differential, the instrumentation pass, and the full
 * platform end-to-end — pause/resume/step precision, runtime
 * trigger reconfiguration, state inspection and forcing through the
 * configuration plane, snapshot/replay, and assertion breakpoints.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/instrument.hh"
#include "core/pause_buffer.hh"
#include "core/snapshot.hh"
#include "core/zoomie.hh"
#include "rtl/builder.hh"
#include "sim/simulator.hh"

using namespace zoomie;
using core::PauseBufferModel;
using rtl::Builder;
using rtl::Value;

// ---- pause buffer: bounded exhaustive model check ---------------------

namespace {

/**
 * Golden transaction semantics: run the model against a producer
 * that emits 1,2,3,... (advancing only on its observed handshake)
 * and a consumer that records accepted payloads (only on cycles it
 * executes). Checks the three §3.1 properties on every bounded
 * input pattern.
 */
void
checkSequence(bool producer_paused, uint32_t pattern, unsigned depth)
{
    PauseBufferModel model(producer_paused);
    uint64_t produce_next = 1;
    std::vector<uint64_t> delivered;
    bool pending_valid = true;  // producer always has data

    for (unsigned t = 0; t < depth; ++t) {
        bool pause = (pattern >> (2 * t)) & 1;
        bool consumer_ready_raw = (pattern >> (2 * t + 1)) & 1;

        // The paused side's signals freeze: model that by gating
        // what each side *does*, as the clock gate would.
        bool in_valid = pending_valid;
        uint64_t in_data = produce_next;
        bool consumer_ready = consumer_ready_raw;

        auto out = model.outputs(in_valid, in_data, consumer_ready,
                                 pause);

        // Consumer side accepts when its handshake completes on a
        // cycle it executes.
        bool consumer_runs = producer_paused ? true : !pause;
        if (consumer_runs && out.consumerValid && consumer_ready) {
            delivered.push_back(out.consumerData);
        }

        // Producer advances when its handshake completes on a cycle
        // it executes.
        bool producer_runs = producer_paused ? !pause : true;
        if (producer_runs && in_valid && out.producerReady)
            ++produce_next;

        model.step(in_valid, in_data, consumer_ready, pause);
    }
    // Drain with no pauses: everything accepted must come out.
    for (unsigned t = 0; t < 4; ++t) {
        auto out = model.outputs(true, produce_next, true, false);
        if (out.consumerValid)
            delivered.push_back(out.consumerData);
        if (out.producerReady)
            ++produce_next;
        model.step(true, out.producerReady ? produce_next - 1
                                           : produce_next,
                   true, false);
    }

    // Property: delivered payloads are exactly 1, 2, 3, ... — no
    // loss, duplication or reordering across pauses.
    for (size_t i = 0; i < delivered.size(); ++i) {
        ASSERT_EQ(delivered[i], i + 1)
            << "pattern 0x" << std::hex << pattern
            << (producer_paused ? " (producer paused)"
                                : " (consumer paused)");
    }
    // Everything produced was eventually delivered (minus at most
    // the one in-flight buffered entry).
    ASSERT_GE(delivered.size() + 2, produce_next - 1);
}

} // namespace

TEST(PauseBufferModel, ExhaustiveBoundedCheckConsumerPaused)
{
    const unsigned depth = 9;
    for (uint32_t pattern = 0; pattern < (1u << (2 * depth));
         ++pattern)
        checkSequence(false, pattern, depth);
}

TEST(PauseBufferModel, ExhaustiveBoundedCheckProducerPaused)
{
    const unsigned depth = 9;
    for (uint32_t pattern = 0; pattern < (1u << (2 * depth));
         ++pattern)
        checkSequence(true, pattern, depth);
}

TEST(PauseBufferRtl, MatchesGoldenModel)
{
    for (bool producer_paused : {false, true}) {
        Builder b("pbuf");
        Value in_valid = b.input("in_valid", 1);
        Value in_data = b.input("in_data", 8);
        Value ready = b.input("ready", 1);
        Value pause = b.input("pause", 1);
        auto ports = core::buildPauseBuffer(
            b, in_valid, in_data, ready, pause, producer_paused);
        b.output("p_ready", ports.producerReady);
        b.output("c_valid", ports.consumerValid);
        b.output("c_data", ports.consumerData);
        rtl::Design d = b.finish();

        sim::Simulator sim(d);
        PauseBufferModel model(producer_paused);
        Rng rng(producer_paused ? 7 : 13);
        for (unsigned t = 0; t < 2000; ++t) {
            bool iv = rng.chance(2, 3);
            uint64_t data = rng.nextBits(8);
            bool rdy = rng.chance(1, 2);
            bool pse = rng.chance(1, 3);
            sim.poke("in_valid", iv);
            sim.poke("in_data", data);
            sim.poke("ready", rdy);
            sim.poke("pause", pse);
            auto out = model.outputs(iv, data, rdy, pse);
            ASSERT_EQ(sim.peek("p_ready") != 0, out.producerReady);
            ASSERT_EQ(sim.peek("c_valid") != 0, out.consumerValid);
            if (out.consumerValid) {
                ASSERT_EQ(sim.peek("c_data"), out.consumerData);
            }
            sim.step();
            model.step(iv, data, rdy, pse);
        }
    }
}

// ---- instrumentation ---------------------------------------------------

namespace {

/** Counter design with the counter inside scope "mut/". */
rtl::Design
mutCounter()
{
    Builder b("app");
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    return b.finish();
}

} // namespace

TEST(Instrument, AddsControllerAndReclocksMut)
{
    core::InstrumentOptions opts;
    opts.mutPrefix = "mut/";
    opts.watchSignals = {"mut/count"};
    auto result = core::instrument(mutCounter(), opts);

    EXPECT_EQ(result.reclockedState, 1u);
    EXPECT_EQ(result.gatedClock, 1u);
    // The counter now lives on the gated clock.
    int idx = result.design.findReg("mut/count");
    ASSERT_GE(idx, 0);
    EXPECT_EQ(result.design.regs[idx].clock, result.gatedClock);
    // Controller state exists.
    EXPECT_GE(result.design.findReg(core::ControlRegs::pauseState),
              0);
    EXPECT_GE(result.design.findReg(core::ControlRegs::stepCount), 0);
    EXPECT_NE(result.design.findNet("zoomie/clk_en"), rtl::kNoNet);
}

TEST(Instrument, ReportsUnsynthesizableAssertions)
{
    core::InstrumentOptions opts;
    opts.mutPrefix = "mut/";
    opts.assertions = {
        "assert property (mut/count != 9999);",
        "assert property (v |-> !$isunknown(mut/count));",
    };
    auto result = core::instrument(mutCounter(), opts);
    ASSERT_EQ(result.assertions.size(), 2u);
    EXPECT_TRUE(result.assertions[0].synthesizable);
    EXPECT_FALSE(result.assertions[1].synthesizable);
    EXPECT_FALSE(result.assertions[1].error.empty());
}

// ---- platform end-to-end -----------------------------------------------

namespace {

std::unique_ptr<core::Platform>
counterPlatform(std::vector<std::string> watch = {"mut/count"},
                std::vector<std::string> assertions = {})
{
    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "mut/";
    opts.instrument.watchSignals = std::move(watch);
    opts.instrument.assertions = std::move(assertions);
    return core::Platform::create(mutCounter(), opts);
}

} // namespace

TEST(Platform, PauseFreezesMutWhileWorldRuns)
{
    auto p = counterPlatform();
    p->run(10);
    EXPECT_EQ(p->peek("value"), 10u);
    p->debugger().pause();
    p->run(1);  // pause takes effect
    uint64_t frozen = p->peek("value");
    p->run(25);
    EXPECT_EQ(p->peek("value"), frozen);
    EXPECT_TRUE(p->debugger().isPaused());
    p->debugger().resume();
    p->run(5);
    EXPECT_EQ(p->peek("value"), frozen + 5);
}

TEST(Platform, StepExecutesExactCycleCount)
{
    auto p = counterPlatform();
    p->debugger().pause();
    p->run(2);
    uint64_t start = p->peek("value");
    p->debugger().stepCycles(7);
    p->run(50);  // plenty of wall clock; MUT must stop at +7
    EXPECT_EQ(p->peek("value"), start + 7);
    EXPECT_TRUE(p->debugger().isPaused());
    p->debugger().stepCycles(1);
    p->run(50);
    EXPECT_EQ(p->peek("value"), start + 8);
}

TEST(Platform, ValueBreakpointPausesAtExactValue)
{
    auto p = counterPlatform();
    p->debugger().setValueBreakpoint(0, 123, true, false);
    p->debugger().armTriggers(true, false);
    p->run(500);
    // Timing-precise: the design froze in the exact cycle count
    // reached 123 (§3.1).
    EXPECT_EQ(p->peek("value"), 123u);
    EXPECT_TRUE(p->debugger().isPaused());

    // Reconfigure on the fly and continue to a new breakpoint.
    p->debugger().setValueBreakpoint(0, 200, true, false);
    p->debugger().resume();
    p->run(500);
    EXPECT_EQ(p->peek("value"), 200u);
}

TEST(Platform, ReadAndForceRegistersThroughConfigPlane)
{
    auto p = counterPlatform();
    p->run(42);
    EXPECT_EQ(p->debugger().readRegister("mut/count"), 42u);

    p->debugger().pause();
    p->run(1);
    p->debugger().forceRegister("mut/count", 1000);
    EXPECT_EQ(p->debugger().readRegister("mut/count"), 1000u);
    p->debugger().resume();
    p->run(5);
    EXPECT_EQ(p->peek("value"), 1005u);
}

TEST(Platform, ReadAllRegistersGivesFullVisibility)
{
    auto p = counterPlatform();
    p->run(17);
    auto regs = p->debugger().readAllRegisters("mut/");
    ASSERT_EQ(regs.count("mut/count"), 1u);
    EXPECT_EQ(regs["mut/count"], 17u);
}

TEST(Platform, SnapshotAndReplayReproducesExecution)
{
    auto p = counterPlatform();
    core::SnapshotStore store(*p);
    p->run(30);
    p->debugger().pause();
    p->run(1);
    auto snap = store.capture(/*pinned=*/true);
    ASSERT_TRUE(snap.has_value());

    p->debugger().resume();
    p->run(100);
    uint64_t later = p->peek("value");

    // Replay: restore and rerun the same 100 cycles.
    p->debugger().pause();
    p->run(1);
    ASSERT_TRUE(store.restore(snap->id).has_value());
    EXPECT_EQ(p->debugger().readRegister("mut/count"), 30u);
    p->debugger().resume();
    p->run(100);
    EXPECT_EQ(p->peek("value"), later);
}

TEST(Platform, AssertionBreakpointPausesOnViolation)
{
    // count != 50 fails exactly when count reaches 50.
    auto p = counterPlatform({"mut/count"},
                             {"assert property (mut/count != 50);"});
    ASSERT_TRUE(p->instrumented().assertions[0].synthesizable)
        << p->instrumented().assertions[0].error;
    p->run(400);
    EXPECT_TRUE(p->debugger().isPaused());
    EXPECT_EQ(p->peek("value"), 50u);
    EXPECT_EQ(p->debugger().assertionsFired(), 1u);

    // Disable the assertion and resume past the value.
    p->debugger().enableAssertion(0, false);
    p->debugger().resume();
    p->run(30);
    EXPECT_EQ(p->peek("value"), 80u);
}

// ---- pause buffers end-to-end ------------------------------------------

namespace {

/**
 * Producer (free-running) streams 1,2,3,... into a consumer inside
 * the MUT through a declared decoupled interface. The consumer
 * accumulates; sum and count let us detect any lost or duplicated
 * transaction caused by pausing.
 */
rtl::Design
streamDesign()
{
    Builder b("stream");
    // Producer (top scope).
    auto next_val = b.reg("next_val", 16, 1);
    Value valid = b.lit(1, 1);

    b.pushScope("mut");
    auto phase = b.reg("phase", 2, 0);
    b.connect(phase, b.addLit(phase.q, 1));
    Value ready = b.eqLit(phase.q, 0);  // ready every 4th cycle
    auto sum = b.reg("sum", 32, 0);
    auto cnt = b.reg("cnt", 16, 0);
    Value fire = b.land(valid, ready);
    b.connect(sum, b.mux(fire,
                         b.add(sum.q, b.zext(b.handleFor(
                             next_val.q.id), 32)),
                         sum.q));
    b.connect(cnt, b.mux(fire, b.addLit(cnt.q, 1), cnt.q));
    b.declareIface("in", rtl::IfaceDir::In, valid, ready,
                   {next_val.q});
    b.popScope();

    // Producer advances on its observed handshake.
    Value p_fire = b.land(valid, ready);
    b.connect(next_val, b.mux(p_fire, b.addLit(next_val.q, 1),
                              next_val.q));

    b.output("sum", b.handleFor(sum.q.id));
    b.output("cnt", b.handleFor(cnt.q.id));
    return b.finish();
}

} // namespace

TEST(Platform, PauseBuffersPreserveStreamAcrossPauses)
{
    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "mut/";
    opts.instrument.watchSignals = {"mut/cnt"};
    auto p = core::Platform::create(streamDesign(), opts);
    EXPECT_EQ(p->instrumented().pauseBuffersInserted, 1u);

    Rng rng(2026);
    for (int round = 0; round < 12; ++round) {
        p->run(1 + rng.nextBelow(9));
        p->debugger().pause();
        p->run(1 + rng.nextBelow(5));  // world keeps running
        p->debugger().resume();
    }
    p->run(40);

    uint64_t cnt = p->debugger().readRegister("mut/cnt");
    uint64_t sum = p->debugger().readRegister("mut/sum");
    ASSERT_GT(cnt, 4u);
    // Transactions arrived exactly once, in order: 1 + 2 + ... + cnt.
    EXPECT_EQ(sum, cnt * (cnt + 1) / 2)
        << "pause corrupted the stream";
}

TEST(Platform, WithoutPauseBuffersPausingCorruptsTheStream)
{
    // The Figure 3 failure mode: the producer sees a frozen ready
    // and loses transactions across pauses.
    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "mut/";
    opts.instrument.watchSignals = {"mut/cnt"};
    opts.instrument.insertPauseBuffers = false;
    auto p = core::Platform::create(streamDesign(), opts);

    for (int round = 0; round < 10; ++round) {
        p->run(7);
        p->debugger().pause();
        p->run(3);
        p->debugger().resume();
    }
    p->run(40);
    uint64_t cnt = p->debugger().readRegister("mut/cnt");
    uint64_t sum = p->debugger().readRegister("mut/sum");
    EXPECT_NE(sum, cnt * (cnt + 1) / 2)
        << "expected the unprotected interface to corrupt";
}
