/**
 * @file
 * Case study 2 (§5.6): distinguishing hardware from software bugs
 * on a hanging RISC-V core.
 *
 * The program misconfigures mtvec to an invalid address and traps;
 * the CPU then loops through nested exceptions showing no useful
 * error. A Zoomie breakpoint on the double-nested-exception
 * condition (mcause is an exception && MIE == 0 && MPIE == 0)
 * pauses the core in the act; readback shows pc == mepc == mtvec,
 * proving the hardware is legally re-trapping on a software
 * misconfiguration — no recompile, no ILA.
 */

#include <cstdio>

#include "core/zoomie.hh"
#include "designs/tinyrv.hh"

using namespace zoomie;
using namespace zoomie::designs;

int
main()
{
    // The buggy software: points mtvec at 0x5000 (outside the
    // 16 KiB code region), then takes an ecall.
    using namespace rv;
    std::vector<uint32_t> program = {
        addi(1, 0, 1),
        lui(2, 0x5),                  // x2 = 0x5000: invalid
        csrrw(0, kCsrMtvec, 2),       // mtvec = 0x5000  (the bug)
        addi(1, 1, 41),               // x1 = 42
        ecall(),                      // -> trap -> invalid vector
        sw(1, 0, 0x100),              // (reached after the repair)
        jal(0, 0),
    };

    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "cpu/";
    opts.instrument.watchSignals = {"cpu/mcause", "cpu/mstatus_mie",
                                    "cpu/mstatus_mpie"};
    auto platform = core::Platform::create(buildTinyRv(program),
                                           opts);
    core::Debugger &dbg = platform->debugger();

    std::printf("Case study 2: hardware or software bug?\n\n");
    std::printf("The core hangs after boot; software shows no "
                "output. Set the paper's breakpoint:\n"
                "  mcause == instr-access-fault && MIE == 0 && "
                "MPIE == 0   (double-nested exception)\n\n");

    dbg.setValueBreakpoint(
        0, uint32_t(TrapCause::InstrAccessFault), true, false);
    dbg.setValueBreakpoint(1, 0, true, false);  // MIE == 0
    dbg.setValueBreakpoint(2, 0, true, false);  // MPIE == 0
    dbg.armTriggers(true, false);

    platform->run(4000);
    if (!dbg.isPaused()) {
        std::printf("breakpoint never hit — giving up\n");
        return 1;
    }

    uint64_t pc = dbg.readRegister("cpu/pc");
    uint64_t mepc = dbg.readRegister("cpu/mepc");
    uint64_t mtvec = dbg.readRegister("cpu/mtvec");
    uint64_t mcause = dbg.readRegister("cpu/mcause");
    std::printf("breakpoint hit after %llu MUT cycles:\n",
                (unsigned long long)platform->mutCycles());
    std::printf("  pc     = 0x%llx\n  mepc   = 0x%llx\n"
                "  mtvec  = 0x%llx\n  mcause = %llu "
                "(instruction access fault)\n\n",
                (unsigned long long)pc, (unsigned long long)mepc,
                (unsigned long long)mtvec,
                (unsigned long long)mcause);

    if (pc == mepc && pc == mtvec) {
        std::printf("pc == mepc == mtvec: the CPU keeps faulting on "
                    "its own exception vector.\nThis is *legal* "
                    "hardware behaviour — the trap vector points "
                    "at an unmapped address.\nVerdict: software "
                    "misconfiguration (bad mtvec), not an RTL "
                    "bug.\n\n");
    }

    // The fix is a software fix: repair mtvec and mepc by state
    // injection, then resume past the bad ecall.
    dbg.clearValueBreakpoints();
    dbg.forceRegister("cpu/mtvec", 0x80);
    dbg.forceRegister("cpu/mepc", 5 * 4);
    dbg.forceRegister("cpu/mstatus_mie", 1);
    dbg.forceRegister("cpu/pc", 5 * 4);
    dbg.forceRegister("cpu/state", 0);
    dbg.resume();
    platform->run(200);
    std::printf("after repairing the vector by state injection the "
                "core executes again:\n  mem[0x100] = %llu "
                "(x1's value, stored by the post-ecall code) — "
                "no recompilation.\n",
                (unsigned long long)dbg.readMemWord("cpu/mem",
                                                    0x40));
    return 0;
}
