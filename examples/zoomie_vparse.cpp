/**
 * @file
 * `zoomie_vparse`: CLI front end of the Verilog compiler
 * (src/verilog). Compiles one or more .v files (or stdin when no
 * file is given) through lex/parse/elaborate and prints gcc-style
 * diagnostics, so the same pipeline the `open_source` wire command
 * runs can be exercised offline and in CI.
 *
 *     zoomie_vparse [--top NAME] [--summary] [--lint] [FILE...]
 *
 * --summary prints one elaborated-IR line per accepted file
 * (module/net/reg/mem counts — the golden format test_verilog
 * checks). --lint additionally runs the lint engine over the
 * elaborated design, as the server's upload gate does.
 *
 * Exit status: 0 = every input accepted, 1 = any input rejected
 * (parse/elaborate error, or lint errors with --lint),
 * 2 = bad usage or unreadable file.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hh"
#include "verilog/verilog.hh"

using namespace zoomie;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--top NAME] [--summary] [--lint] "
                 "[FILE...]\n",
                 argv0);
    return 2;
}

/** One line of elaborated-IR shape, stable for golden tests. */
std::string
summarize(const verilog::CompileResult &result)
{
    const rtl::Design &d = *result.design;
    std::ostringstream out;
    out << "top=" << result.top << " nodes=" << d.nodes.size()
        << " regs=" << d.regs.size() << " mems=" << d.mems.size()
        << " inputs=" << d.inputs.size()
        << " outputs=" << d.outputs.size()
        << " clocks=" << d.clocks.size()
        << " state_bits=" << d.stateBits();
    return out.str();
}

/** Compile one source; returns false when it is rejected. */
bool
compileOne(const std::string &file, const std::string &text,
           const std::string &top, bool summary, bool lintGate)
{
    verilog::CompileOptions options;
    options.file = file;
    options.top = top;
    verilog::CompileResult result = verilog::compile(text, options);
    std::fputs(result.renderDiags().c_str(), stderr);
    if (!result.ok)
        return false;
    if (lintGate) {
        lint::Linter linter;
        lint::Report report =
            linter.run(*result.design, lint::Options{});
        std::fputs(report.renderText(false).c_str(), stderr);
        if (report.errors() > 0)
            return false;
    }
    if (summary)
        std::printf("%s: %s\n", file.c_str(),
                    summarize(result).c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string top;
    bool summary = false;
    bool lintGate = false;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            top = argv[++i];
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--lint") {
            lintGate = true;
        } else if (arg == "--help") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "zoomie_vparse: unknown option %s\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }

    bool allOk = true;
    if (files.empty()) {
        std::ostringstream text;
        text << std::cin.rdbuf();
        allOk = compileOne("<stdin>", text.str(), top, summary,
                           lintGate);
    }
    for (const std::string &file : files) {
        std::ifstream in(file);
        if (!in) {
            std::fprintf(stderr,
                         "zoomie_vparse: cannot read %s\n",
                         file.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        if (!compileOne(file, text.str(), top, summary, lintGate))
            allOk = false;
    }
    return allOk ? 0 : 1;
}
