/**
 * @file
 * zoomie-dbg: a gdb-style interactive debugger shell over the
 * platform — the "software-like debugging experience" of the title,
 * as a tool. Drives the TinyRV CPU by default. Reads commands from
 * stdin (or from the command line after "--", for scripted runs).
 *
 * Commands:
 *   run N            advance the external clock N cycles
 *   pause | resume   control the MUT clock gate
 *   step N           execute exactly N MUT cycles, then pause
 *   break SLOT VAL   value breakpoint (AND group) on a watch slot
 *   watch SLOT       watchpoint: pause when the slot's signal changes
 *   clear            clear all triggers
 *   print NAME       read a register through the config plane
 *   x NAME ADDR      read a memory word
 *   force NAME VAL   inject a register value
 *   regs PREFIX      dump every register under a scope prefix
 *   snap | restore   snapshot / restore the whole design state
 *   trace N FILE     sample watch signals for N cycles, write VCD
 *   info             platform status
 *   quit
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/zoomie.hh"
#include "designs/tinyrv.hh"
#include "sim/trace.hh"
#include "sim/vcd.hh"

using namespace zoomie;

namespace {

std::vector<std::string>
tokenize(const std::string &line)
{
    std::istringstream is(line);
    std::vector<std::string> tokens;
    std::string token;
    while (is >> token)
        tokens.push_back(token);
    return tokens;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace designs::rv;
    // Default workload: sum loop with a store per iteration.
    std::vector<uint32_t> program = {
        addi(1, 0, 0), addi(2, 0, 1),
        add(1, 1, 2), addi(2, 2, 1),
        sw(1, 0, 0x200), jal(0, -12),
    };

    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "cpu/";
    opts.instrument.watchSignals = {"cpu/pc", "cpu/mcause",
                                    "cpu/state"};
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    spec.clbCols = 32;
    spec.clbRows = 64;
    spec.bramCols = 4;
    opts.spec = spec;

    std::printf("zoomie-dbg: bringing up TinyRV on %s...\n",
                spec.name.c_str());
    auto platform = core::Platform::create(
        designs::buildTinyRv(program), opts);
    core::Debugger &dbg = platform->debugger();
    std::printf("watch slots: 0=cpu/pc 1=cpu/mcause 2=cpu/state\n");

    // Scripted mode: everything after "--" is a ';'-separated
    // command list.
    std::vector<std::string> script;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--") {
            std::string joined;
            for (int j = i + 1; j < argc; ++j) {
                joined += argv[j];
                joined += ' ';
            }
            std::string piece;
            std::istringstream is(joined);
            while (std::getline(is, piece, ';'))
                script.push_back(piece);
        }
    }
    size_t script_pos = 0;
    std::unique_ptr<core::Snapshot> snapshot;

    while (true) {
        std::string line;
        if (!script.empty()) {
            if (script_pos >= script.size())
                break;
            line = script[script_pos++];
            std::printf("(zoomie) %s\n", line.c_str());
        } else {
            std::printf("(zoomie) ");
            std::fflush(stdout);
            if (!std::getline(std::cin, line))
                break;
        }
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string &cmd = tokens[0];
        try {
            if (cmd == "quit" || cmd == "q") {
                break;
            } else if (cmd == "run" && tokens.size() >= 2) {
                platform->run(std::stoull(tokens[1]));
                std::printf("mut cycles: %llu%s\n",
                            (unsigned long long)platform->mutCycles(),
                            dbg.isPaused() ? "  [paused]" : "");
            } else if (cmd == "pause") {
                dbg.pause();
                platform->run(1);
                std::printf("paused at mut cycle %llu\n",
                            (unsigned long long)platform->mutCycles());
            } else if (cmd == "resume" || cmd == "c") {
                dbg.resume();
                std::printf("running\n");
            } else if (cmd == "step" && tokens.size() >= 2) {
                uint64_t n = std::stoull(tokens[1]);
                dbg.stepCycles(n);
                platform->run(n + 4);
                std::printf("stepped %llu; pc = 0x%llx\n",
                            (unsigned long long)n,
                            (unsigned long long)dbg.readRegister(
                                "cpu/pc"));
            } else if (cmd == "break" && tokens.size() >= 3) {
                unsigned slot = std::stoul(tokens[1]);
                dbg.setValueBreakpoint(
                    slot, std::stoull(tokens[2], nullptr, 0), true,
                    false);
                dbg.armTriggers(true, false);
                std::printf("breakpoint armed on slot %u\n", slot);
            } else if (cmd == "watch" && tokens.size() >= 2) {
                dbg.setWatchpoint(std::stoul(tokens[1]), true);
                std::printf("watchpoint armed\n");
            } else if (cmd == "clear") {
                dbg.clearValueBreakpoints();
                std::printf("triggers cleared\n");
            } else if (cmd == "print" && tokens.size() >= 2) {
                std::printf("%s = 0x%llx\n", tokens[1].c_str(),
                            (unsigned long long)dbg.readRegister(
                                tokens[1]));
            } else if (cmd == "x" && tokens.size() >= 3) {
                uint32_t addr = std::stoul(tokens[2], nullptr, 0);
                std::printf("%s[0x%x] = 0x%llx\n", tokens[1].c_str(),
                            addr,
                            (unsigned long long)dbg.readMemWord(
                                tokens[1], addr));
            } else if (cmd == "force" && tokens.size() >= 3) {
                dbg.forceRegister(tokens[1],
                                  std::stoull(tokens[2], nullptr, 0));
                std::printf("forced\n");
            } else if (cmd == "regs" && tokens.size() >= 2) {
                for (const auto &[name, value] :
                     dbg.readAllRegisters(tokens[1])) {
                    std::printf("  %-24s = 0x%llx\n", name.c_str(),
                                (unsigned long long)value);
                }
            } else if (cmd == "snap") {
                snapshot = std::make_unique<core::Snapshot>(
                    dbg.snapshot());
                std::printf("snapshot taken at mut cycle %llu\n",
                            (unsigned long long)snapshot->mutCycles);
            } else if (cmd == "restore") {
                if (!snapshot) {
                    std::printf("no snapshot\n");
                    continue;
                }
                dbg.restore(*snapshot);
                std::printf("restored\n");
            } else if (cmd == "trace" && tokens.size() >= 3) {
                uint64_t n = std::stoull(tokens[1]);
                sim::Trace trace;
                for (const std::string &signal :
                     platform->instrumented().watchSignals) {
                    trace.addSignal(signal, [&platform, &dbg,
                                             signal]() {
                        return dbg.readRegister(signal);
                    });
                }
                for (uint64_t i = 0; i < n; ++i) {
                    trace.sample();
                    platform->run(1);
                }
                std::ofstream out(tokens[2]);
                sim::writeVcd(trace, out);
                std::printf("wrote %llu samples to %s\n",
                            (unsigned long long)n,
                            tokens[2].c_str());
            } else if (cmd == "info") {
                std::printf("mut cycles: %llu  paused: %s  "
                            "assertions fired: 0x%llx\n",
                            (unsigned long long)platform->mutCycles(),
                            dbg.isPaused() ? "yes" : "no",
                            (unsigned long long)0);
            } else {
                std::printf("unknown command: %s\n", cmd.c_str());
            }
        } catch (const std::exception &e) {
            std::printf("error: %s\n", e.what());
        }
    }
    return 0;
}
