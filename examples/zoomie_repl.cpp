/**
 * @file
 * zoomie-dbg: a gdb-style interactive debugger shell over the
 * platform — the "software-like debugging experience" of the title,
 * as a tool. Drives the TinyRV CPU by default. Reads commands from
 * stdin (or from the command line after "--", for scripted runs).
 *
 * The shell is a thin front end over rdp::Dispatcher — the same
 * command table the wire protocol (`zoomie_server`) serves, so
 * every command here exists on the wire with identical semantics
 * and argument validation. Type `help` for the command list.
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rdp/dispatcher.hh"
#include "rdp/session.hh"

using namespace zoomie;

int
main(int argc, char **argv)
{
    rdp::SessionConfig config;  // tinyrv + demo sum loop
    std::printf("zoomie-dbg: bringing up TinyRV...\n");
    rdp::Session session(0, config);
    rdp::Dispatcher dispatcher(session);
    const auto &watch =
        session.platform().instrumented().watchSignals;
    for (size_t slot = 0; slot < watch.size(); ++slot)
        std::printf("watch slot %zu: %s\n", slot,
                    watch[slot].c_str());

    // Scripted mode: everything after "--" is a ';'-separated
    // command list.
    std::vector<std::string> script;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--") {
            std::string joined;
            for (int j = i + 1; j < argc; ++j) {
                joined += argv[j];
                joined += ' ';
            }
            std::string piece;
            std::istringstream is(joined);
            while (std::getline(is, piece, ';'))
                script.push_back(piece);
        }
    }
    size_t script_pos = 0;

    while (true) {
        std::string line;
        if (!script.empty()) {
            if (script_pos >= script.size())
                break;
            line = script[script_pos++];
            std::printf("(zoomie) %s\n", line.c_str());
        } else {
            std::printf("(zoomie) ");
            std::fflush(stdout);
            if (!std::getline(std::cin, line))
                break;
        }
        std::istringstream is(line);
        std::string first;
        if (!(is >> first))
            continue;
        if (first == "quit" || first == "q")
            break;
        if (first == "help" || first == "?") {
            for (const std::string &entry :
                 rdp::Dispatcher::helpLines())
                std::printf("%s\n", entry.c_str());
            continue;
        }
        std::string error;
        auto request = rdp::Dispatcher::parseLine(line, &error);
        if (!request) {
            std::printf("error: %s\n", error.c_str());
            continue;
        }
        auto result = dispatcher.execute(*request);
        std::fputs(rdp::Dispatcher::renderText(result).c_str(),
                   stdout);
    }
    return 0;
}
