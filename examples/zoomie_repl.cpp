/**
 * @file
 * zoomie-dbg: a gdb-style interactive debugger shell over the
 * platform — the "software-like debugging experience" of the title,
 * as a tool. Drives the TinyRV CPU by default; `source FILE.v`
 * compiles a Verilog file through the src/verilog front end and
 * swaps the live session for one debugging the uploaded design.
 * Reads commands from stdin (or from the command line after "--",
 * for scripted runs).
 *
 * The shell is a thin front end over rdp::Dispatcher — the same
 * command table the wire protocol (`zoomie_server`) serves, so
 * every command here exists on the wire with identical semantics
 * and argument validation. Type `help` for the command list.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "rdp/dispatcher.hh"
#include "rdp/session.hh"
#include "verilog/verilog.hh"

using namespace zoomie;

namespace {

void
printWatchSlots(rdp::Session &session)
{
    const auto &watch =
        session.backend().instrumented().watchSignals;
    for (size_t slot = 0; slot < watch.size(); ++slot)
        std::printf("watch slot %zu: %s\n", slot,
                    watch[slot].c_str());
}

/**
 * `source FILE.v`: compile the file and bring up a fresh session
 * around the elaborated design. On any failure the current session
 * stays live and the diagnostics are printed.
 * @return the new session, or null when the file was rejected.
 */
std::unique_ptr<rdp::Session>
sourceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::printf("error: cannot read %s\n", path.c_str());
        return nullptr;
    }
    std::ostringstream text;
    text << in.rdbuf();

    verilog::CompileOptions options;
    options.file = path;
    verilog::CompileResult result =
        verilog::compile(text.str(), options);
    std::fputs(result.renderDiags().c_str(), stdout);
    if (!result.ok || !result.design) {
        std::printf("error: %s rejected\n", path.c_str());
        return nullptr;
    }
    if (result.design->regs.empty()) {
        std::printf("error: %s has no registers; nothing to "
                    "debug\n",
                    path.c_str());
        return nullptr;
    }

    rdp::SessionConfig config;
    config.design = "source";
    config.topModule = result.top;
    config.uploaded = std::make_shared<const rtl::Design>(
        std::move(*result.design));
    try {
        auto session =
            std::make_unique<rdp::Session>(0, std::move(config));
        std::printf("sourced %s: top=%s, %zu regs\n", path.c_str(),
                    session->config().topModule.c_str(),
                    session->userDesign().regs.size());
        return session;
    } catch (const std::exception &e) {
        std::printf("error: %s\n", e.what());
        return nullptr;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    rdp::SessionConfig config;  // tinyrv + demo sum loop
    std::printf("zoomie-dbg: bringing up TinyRV...\n");
    auto session = std::make_unique<rdp::Session>(0, config);
    auto dispatcher =
        std::make_unique<rdp::Dispatcher>(*session);
    printWatchSlots(*session);

    // Scripted mode: everything after "--" is a ';'-separated
    // command list.
    std::vector<std::string> script;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--") {
            std::string joined;
            for (int j = i + 1; j < argc; ++j) {
                joined += argv[j];
                joined += ' ';
            }
            std::string piece;
            std::istringstream is(joined);
            while (std::getline(is, piece, ';'))
                script.push_back(piece);
        }
    }
    size_t script_pos = 0;

    while (true) {
        std::string line;
        if (!script.empty()) {
            if (script_pos >= script.size())
                break;
            line = script[script_pos++];
            std::printf("(zoomie) %s\n", line.c_str());
        } else {
            std::printf("(zoomie) ");
            std::fflush(stdout);
            if (!std::getline(std::cin, line))
                break;
        }
        std::istringstream is(line);
        std::string first;
        if (!(is >> first))
            continue;
        if (first == "quit" || first == "q")
            break;
        if (first == "help" || first == "?") {
            for (const std::string &entry :
                 rdp::Dispatcher::helpLines())
                std::printf("%s\n", entry.c_str());
            std::printf(
                "  source FILE.v               compile a Verilog "
                "file and debug it\n");
            continue;
        }
        if (first == "source") {
            std::string path;
            if (!(is >> path)) {
                std::printf("usage: source FILE.v\n");
                continue;
            }
            // The new session replaces the old one only after a
            // fully successful bring-up; the dispatcher is rebound
            // because it holds a reference to the live session.
            if (auto fresh = sourceFile(path)) {
                dispatcher.reset();
                session = std::move(fresh);
                dispatcher =
                    std::make_unique<rdp::Dispatcher>(*session);
                printWatchSlots(*session);
            }
            continue;
        }
        std::string error;
        auto request = rdp::Dispatcher::parseLine(line, &error);
        if (!request) {
            std::printf("error: %s\n", error.c_str());
            continue;
        }
        auto result = dispatcher->execute(*request);
        std::fputs(rdp::Dispatcher::renderText(result).c_str(),
                   stdout);
    }
    return 0;
}
