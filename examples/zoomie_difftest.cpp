/**
 * @file
 * `zoomie_difftest`: the differential-testing CLI (src/difftest).
 * Sweeps seeded random-but-guided wire-command sequences through
 * two backends of the same design in lockstep — fabric execution
 * vs the RTL interpreter by default — and reports the first
 * divergence as a shrunk, replayable JSONL repro.
 *
 *     zoomie_difftest [--seed N] [--design NAME | --source FILE]
 *                     [--count N] [--length N]
 *                     [--backends A,B] [--repro FILE]
 *                     [--replay FILE] [--skew-forces]
 *
 * Designs: counter, tinyrv, serv_soc (the server's built-ins);
 * --source uploads a Verilog file through open_source instead.
 * --replay re-executes a repro file and reports whether it still
 * diverges. --skew-forces plants a fault (backend B executes every
 * `force` with value+1) to demonstrate detection and shrinking.
 * Exit status: 0 = no divergence, 1 = divergence found (repro
 * printed and, with --repro, written), 2 = bad usage.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "difftest/difftest.hh"

using namespace zoomie;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed N] [--design NAME | --source FILE]\n"
        "          [--count N] [--length N] [--backends A,B]\n"
        "          [--repro FILE] [--replay FILE] [--skew-forces]\n",
        argv0);
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::stringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
}

void
printDivergence(const difftest::Divergence &d)
{
    std::printf("divergence (%s) at command %zu: %s\n",
                d.kind.c_str(), d.commandIndex,
                d.command.c_str());
    std::printf("--- backend A ---\n%s\n", d.lhs.c_str());
    std::printf("--- backend B ---\n%s\n", d.rhs.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    difftest::GeneratorOptions gen;
    difftest::LockstepOptions options;
    size_t count = 20;
    std::string repro_path;
    std::string replay_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--seed") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            gen.seed = std::strtoull(v, nullptr, 0);
        } else if (arg == "--design") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            gen.design = v;
        } else if (arg == "--source") {
            const char *v = value();
            if (!v || !readFile(v, gen.source)) {
                std::fprintf(stderr, "cannot read %s\n",
                             v ? v : "(missing)");
                return 2;
            }
        } else if (arg == "--count") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            count = std::strtoull(v, nullptr, 0);
        } else if (arg == "--length") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            gen.length = std::strtoull(v, nullptr, 0);
        } else if (arg == "--backends") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            std::string pair = v;
            size_t comma = pair.find(',');
            if (comma == std::string::npos)
                return usage(argv[0]);
            options.backendA = pair.substr(0, comma);
            options.backendB = pair.substr(comma + 1);
        } else if (arg == "--repro") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            repro_path = v;
        } else if (arg == "--replay") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            replay_path = v;
        } else if (arg == "--skew-forces") {
            options.skewForces = true;
        } else {
            return usage(argv[0]);
        }
    }

    // ---- replay mode --------------------------------------------------
    if (!replay_path.empty()) {
        std::string text;
        if (!readFile(replay_path, text)) {
            std::fprintf(stderr, "cannot read %s\n",
                         replay_path.c_str());
            return 2;
        }
        std::string err;
        auto sequence = difftest::decodeRepro(text, &err);
        if (!sequence) {
            std::fprintf(stderr, "%s: %s\n", replay_path.c_str(),
                         err.c_str());
            return 2;
        }
        auto divergence =
            difftest::runLockstep(*sequence, options);
        if (!divergence) {
            std::printf("replay of %zu commands: no divergence\n",
                        sequence->size());
            return 0;
        }
        printDivergence(*divergence);
        return 1;
    }

    // ---- sweep mode ---------------------------------------------------
    difftest::SweepResult result =
        difftest::sweep(gen, options, count);
    if (!result.failure) {
        std::printf(
            "%zu sequences (%zu commands) on %s vs %s: "
            "no divergence\n",
            result.sequences, result.commands,
            options.backendA.c_str(), options.backendB.c_str());
        return 0;
    }

    std::printf("seed %llu diverged; shrunk to %zu commands "
                "in %zu attempts\n",
                static_cast<unsigned long long>(
                    result.failingSeed),
                result.failure->sequence.size(),
                result.failure->attempts);
    printDivergence(result.failure->divergence);
    std::string repro = difftest::encodeRepro(
        *result.failure, options, result.failingSeed);
    if (!repro_path.empty()) {
        std::ofstream out(repro_path);
        out << repro;
        std::printf("repro written to %s\n", repro_path.c_str());
    } else {
        std::printf("repro:\n%s", repro.c_str());
    }
    return 1;
}
