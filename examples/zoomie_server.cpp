/**
 * @file
 * zoomie-server: the Zoomie debug server over stdin/stdout. Speaks
 * line-framed JSON (JSONL): one request object per input line, one
 * reply object per request on stdout, preceded by any events
 * (`dbg_stop`, `assertion_fired`, `watch_hit`) the command
 * provoked. Diagnostics go to stderr so stdout stays clean JSONL
 * for pipelines (zem-style); `--events-only` silences the banner
 * entirely.
 *
 * Usage:
 *   zoomie_server                 serve requests from stdin
 *   zoomie_server --script FILE   serve requests from FILE, then exit
 *   zoomie_server --events-only   no stderr banner; stdout is
 *                                 machine-readable JSONL only
 *
 * A minimal session:
 *   {"cmd":"hello","version":1}
 *   {"cmd":"open","design":"tinyrv"}
 *   {"cmd":"break","slot":0,"value":12,"id":1}
 *   {"cmd":"run","n":200,"id":2}
 *   {"cmd":"print","name":"cpu/pc","id":3}
 *   {"cmd":"quit"}
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "rdp/server.hh"

int
main(int argc, char **argv)
{
    bool events_only = false;
    std::string script;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--events-only") == 0) {
            events_only = true;
        } else if (std::strcmp(argv[i], "--script") == 0 &&
                   i + 1 < argc) {
            script = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--script FILE] "
                         "[--events-only]\n",
                         argv[0]);
            return 2;
        }
    }

    if (!events_only) {
        std::fprintf(stderr,
                     "zoomie-server: protocol v%llu, JSONL on "
                     "stdin/stdout (send "
                     "{\"cmd\":\"hello\"} to begin)\n",
                     (unsigned long long)
                         zoomie::rdp::kProtocolVersion);
    }

    zoomie::rdp::Server server;
    if (!script.empty()) {
        std::ifstream in(script);
        if (!in) {
            std::fprintf(stderr,
                         "zoomie-server: cannot open script "
                         "'%s'\n",
                         script.c_str());
            return 1;
        }
        zoomie::rdp::StreamTransport transport(in, std::cout);
        server.serve(transport);
    } else {
        zoomie::rdp::StreamTransport transport(std::cin,
                                               std::cout);
        server.serve(transport);
    }
    return 0;
}
