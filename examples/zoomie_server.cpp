/**
 * @file
 * zoomie-server: the Zoomie debug server. Speaks line-framed JSON
 * (JSONL): one request object per input line, one reply object per
 * request, preceded by any events (`dbg_stop`, `assertion_fired`,
 * `watch_hit`) the command provoked. Serves either stdin/stdout
 * (the default) or a TCP port (`--listen`), where every accepted
 * connection gets its own serve thread against the shared session
 * registry and the scheduler time-slices device cycles across
 * sessions. Diagnostics go to stderr so stdout stays clean JSONL
 * for pipelines (zem-style); `--events-only` silences the banner
 * entirely.
 *
 * With `--dap` the same server also (or instead) speaks the Debug
 * Adapter Protocol on a second port, so IDE debuggers (VS Code,
 * anything DAP-capable) attach directly: each DAP connection gets
 * its own bridge that translates requests onto the shared session
 * registry — see the "IDE debugging" recipe in README.md.
 *
 * Usage:
 *   zoomie_server                     serve requests from stdin
 *   zoomie_server --script FILE       serve requests from FILE
 *   zoomie_server --events-only       no stderr banner
 *   zoomie_server --listen PORT       serve TCP on 127.0.0.1:PORT
 *   zoomie_server --dap PORT          serve DAP on 127.0.0.1:PORT
 *     [--bind ADDR]                   listen address
 *     [--workers N]                   scheduler worker threads
 *     [--max-sessions N]              admission cap (busy beyond)
 *     [--quantum N]                   cycles per scheduler slice
 *     [--idle-timeout-ms N]           reap sessions idle > N ms
 *     [--read-timeout-ms N]           per-connection read deadline
 *     [--trace-chunk-bytes N]         VCD bytes per trace_chunk
 *
 * A minimal session (pipe or `nc 127.0.0.1 PORT`):
 *   {"cmd":"hello","version":2}
 *   {"cmd":"open","design":"tinyrv"}
 *   {"cmd":"batch","id":1,"requests":[{"cmd":"snapshot"},
 *     {"cmd":"break","slot":0,"value":12},{"cmd":"run","n":200}]}
 *   {"cmd":"print","name":"cpu/pc","id":2}
 *   {"cmd":"quit"}
 *
 * A v2 `trace` without a "file" argument streams the VCD back as
 * ordered `trace_chunk` events plus a checksummed `trace_done` —
 * see the "Remote trace" recipe in README.md for a reassembler.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "dap/net.hh"
#include "rdp/net.hh"
#include "rdp/server.hh"

namespace {

bool
parseArgNum(const char *flag, const char *text, uint64_t &out)
{
    if (!zoomie::rdp::parseU64(text, out)) {
        std::fprintf(stderr,
                     "zoomie-server: %s wants an unsigned "
                     "integer, got '%s'\n",
                     flag, text);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool events_only = false;
    bool listen = false;
    bool dap = false;
    std::string script;
    zoomie::rdp::ServerOptions server_options;
    zoomie::rdp::NetOptions net_options;
    zoomie::dap::NetOptions dap_options;
    net_options.readTimeoutMs = 60'000;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "zoomie-server: %s wants a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        uint64_t num = 0;
        if (std::strcmp(argv[i], "--events-only") == 0) {
            events_only = true;
        } else if (std::strcmp(argv[i], "--script") == 0) {
            script = value("--script");
        } else if (std::strcmp(argv[i], "--listen") == 0) {
            if (!parseArgNum("--listen", value("--listen"), num) ||
                num > 65535)
                return 2;
            net_options.port = uint16_t(num);
            listen = true;
        } else if (std::strcmp(argv[i], "--dap") == 0) {
            if (!parseArgNum("--dap", value("--dap"), num) ||
                num > 65535)
                return 2;
            dap_options.port = uint16_t(num);
            dap = true;
        } else if (std::strcmp(argv[i], "--bind") == 0) {
            net_options.bindAddress = value("--bind");
            dap_options.bindAddress = net_options.bindAddress;
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            if (!parseArgNum("--workers", value("--workers"), num))
                return 2;
            server_options.scheduler.workers = unsigned(num);
        } else if (std::strcmp(argv[i], "--max-sessions") == 0) {
            if (!parseArgNum("--max-sessions",
                             value("--max-sessions"), num))
                return 2;
            server_options.scheduler.maxSessions = size_t(num);
        } else if (std::strcmp(argv[i], "--quantum") == 0) {
            if (!parseArgNum("--quantum", value("--quantum"), num))
                return 2;
            server_options.scheduler.quantum = num;
        } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
            if (!parseArgNum("--idle-timeout-ms",
                             value("--idle-timeout-ms"), num))
                return 2;
            server_options.scheduler.idleTimeoutMs = num;
            server_options.scheduler.reapIntervalMs =
                std::max<uint64_t>(1, num / 4);
        } else if (std::strcmp(argv[i], "--read-timeout-ms") == 0) {
            if (!parseArgNum("--read-timeout-ms",
                             value("--read-timeout-ms"), num))
                return 2;
            net_options.readTimeoutMs = int(num);
        } else if (std::strcmp(argv[i], "--trace-chunk-bytes") ==
                   0) {
            if (!parseArgNum("--trace-chunk-bytes",
                             value("--trace-chunk-bytes"), num) ||
                num == 0)
                return 2;
            server_options.traceChunkBytes = size_t(num);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--script FILE] [--events-only]\n"
                "       %s [--listen PORT] [--dap PORT] "
                "[--bind ADDR] [--workers N] [--max-sessions N] "
                "[--quantum N] [--idle-timeout-ms N] "
                "[--read-timeout-ms N] [--trace-chunk-bytes N]\n",
                argv[0], argv[0]);
            return 2;
        }
    }

    zoomie::rdp::Server server(server_options);

    if (listen || dap) {
        zoomie::rdp::TcpServer tcp(server, net_options);
        zoomie::dap::TcpServer dap_tcp(server, dap_options);
        server.setShutdownHook([&] {
            tcp.requestStop();
            dap_tcp.requestStop();
        });
        std::string error;
        if (listen && !tcp.start(&error)) {
            std::fprintf(stderr, "zoomie-server: %s\n",
                         error.c_str());
            return 1;
        }
        if (dap && !dap_tcp.start(&error)) {
            std::fprintf(stderr, "zoomie-server: %s\n",
                         error.c_str());
            tcp.stop();
            return 1;
        }
        if (!events_only) {
            if (listen) {
                std::fprintf(
                    stderr,
                    "zoomie-server: protocol v%llu, listening on "
                    "%s:%u (%u workers, %zu session slots; send "
                    "{\"cmd\":\"shutdown\"} to stop)\n",
                    (unsigned long long)
                        zoomie::rdp::kProtocolVersion,
                    net_options.bindAddress.c_str(),
                    unsigned(tcp.port()),
                    server.options().scheduler.workers,
                    server.options().scheduler.maxSessions);
            }
            if (dap) {
                std::fprintf(
                    stderr,
                    "zoomie-server: DAP bridge on %s:%u "
                    "(attach an IDE debugger here)\n",
                    dap_options.bindAddress.c_str(),
                    unsigned(dap_tcp.port()));
            }
        }
        if (listen)
            tcp.wait();
        if (dap)
            dap_tcp.wait();
        return 0;
    }

    if (!events_only) {
        std::fprintf(stderr,
                     "zoomie-server: protocol v%llu, JSONL on "
                     "stdin/stdout (send "
                     "{\"cmd\":\"hello\"} to begin)\n",
                     (unsigned long long)
                         zoomie::rdp::kProtocolVersion);
    }

    if (!script.empty()) {
        std::ifstream in(script);
        if (!in) {
            std::fprintf(stderr,
                         "zoomie-server: cannot open script "
                         "'%s'\n",
                         script.c_str());
            return 1;
        }
        zoomie::rdp::StreamTransport transport(in, std::cout);
        server.serve(transport);
    } else {
        zoomie::rdp::StreamTransport transport(std::cin,
                                               std::cout);
        server.serve(transport);
    }
    return 0;
}
