/**
 * @file
 * Case study 1 (§5.5): the Cohort accelerator's TLB ack bug,
 * debugged interactively. The accelerator hangs partway through a
 * job; one pause plus a full-visibility readback localizes the
 * broken handshake that took five ILA recompiles in the
 * traditional flow; the bug is hidden by state forcing to preserve
 * emulation progress; and the one-line fix is deployed through a
 * VTI incremental compile.
 */

#include <cstdio>

#include "core/zoomie.hh"
#include "designs/cohort.hh"

using namespace zoomie;

int
main()
{
    designs::CohortConfig buggy;
    buggy.elements = 24;
    buggy.fixTlbBug = false;

    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "accel/";
    opts.instrument.watchSignals = {"accel/datapath/count"};
    opts.useVti = true;
    auto platform = core::Platform::create(
        designs::buildCohortAccel(buggy), opts);
    core::Debugger &dbg = platform->debugger();
    platform->poke("accel/result_ready", 1);

    std::printf("Case study 1: the accelerator returns part of the "
                "result, then hangs.\n\n");
    platform->run(4000);
    std::printf("[observe] after 4000 cycles: done=%llu, "
                "count=%llu/24\n",
                (unsigned long long)platform->peek("done"),
                (unsigned long long)platform->peek("count"));

    dbg.pause();
    platform->run(2);
    auto regs = dbg.readAllRegisters("accel/");
    std::printf("[pause+readback] every register of the "
                "accelerator, one readback:\n");
    for (const char *name :
         {"accel/lsu/waiting0", "accel/lsu/waiting1",
          "accel/mmu/busy", "accel/mmu/req_id_r",
          "accel/mmu/tlb_sel_r", "accel/datapath/wb_pending"}) {
        std::printf("    %-26s = %llu\n", name,
                    (unsigned long long)regs[name]);
    }
    std::printf("[diagnose] a wait station is pending while the "
                "MMU sits idle: its ack was raised from\n"
                "           tlb_sel_r alone and went to the wrong "
                "requester (the §2.2 missing `&& id == i`).\n\n");

    std::printf("[hide] clear the stuck handshake bits to preserve "
                "emulation progress (§3.3)...\n");
    dbg.forceRegisters({{"accel/lsu/waiting0", 0},
                        {"accel/lsu/waiting1", 0},
                        {"accel/datapath/wb_pending", 0}});
    dbg.resume();
    platform->run(600);
    std::printf("       count now %llu (progress resumed until the "
                "bug strikes again).\n\n",
                (unsigned long long)platform->peek("count"));

    std::printf("[fix] apply the one-line RTL fix; VTI recompiles "
                "only the accelerator partition...\n");
    designs::CohortConfig fixed = buggy;
    fixed.fixTlbBug = true;
    const auto &result =
        platform->applyEdit(designs::buildCohortAccel(fixed));
    std::printf("      incremental compile: %.1f s modeled "
                "(vs hours for a full run)\n",
                result.time.total());

    platform->poke("accel/result_ready", 1);
    platform->run(4000);
    std::printf("      rerun: done=%llu sum=%llu (expected %u)\n",
                (unsigned long long)platform->peek("done"),
                (unsigned long long)platform->peek("sum"),
                24 * 25 / 2);
    return 0;
}
