/**
 * @file
 * Case study 3 (§5.7): debugging a hardware network stack.
 *
 * BeehiveLite's pipeline sits behind a MAC-side drop queue. A
 * malformed packet poisons the route stage; an assertion breakpoint
 * pauses the stack the moment it happens, with the offending header
 * still in the parse/route registers. While the stack is paused the
 * "PHY" keeps delivering packets — the drop queue sheds them, which
 * is exactly the §6.2 behaviour (the queue must exist for
 * correctness regardless of Zoomie, and debugging behind it is
 * fully transparent).
 */

#include <cstdio>

#include "core/zoomie.hh"
#include "designs/beehive.hh"

using namespace zoomie;

int
main()
{
    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "stack/";
    opts.instrument.watchSignals = {"stack/route/err"};
    opts.instrument.assertions = {
        // A packet for the poison destination must never reach the
        // route stage. (Header register bits 24..31 are the dst.)
        "bad_dst: assert property (stack/parse/hdr_vld |-> "
        "stack/route/malformed == 0);",
    };
    auto platform = core::Platform::create(
        designs::buildBeehive({}), opts);
    core::Debugger &dbg = platform->debugger();
    const auto &info = platform->instrumented().assertions[0];
    std::printf("Case study 3: 100 Gbps-style stack with Zoomie "
                "attached.\n");
    std::printf("assertion '%s': %s\n\n", info.name.c_str(),
                info.synthesizable ? "synthesized into a breakpoint"
                                   : info.error.c_str());

    platform->poke("tx_ready", 1);

    auto sendPacket = [&](uint32_t dst, uint32_t payload) {
        platform->poke("rx_data",
                       (dst << 24) | (payload & 0xFFFFFF));
        platform->poke("rx_valid", 1);
        platform->run(1);
        platform->poke("rx_valid", 0);
        platform->run(3);
    };

    // Normal traffic flows.
    for (uint32_t i = 1; i <= 8; ++i)
        sendPacket(i & 0xF, 0x1000 + i);
    std::printf("warm-up: delivered=%llu dropped=%llu\n",
                (unsigned long long)platform->peek("delivered"),
                (unsigned long long)platform->peek("rx_dropped"));

    // The bug manifests some time after the cause: a malformed
    // packet (dst 0xFF) slips in between normal ones.
    sendPacket(3, 0x2001);
    sendPacket(0xFF, 0xBAD);  // the culprit
    sendPacket(4, 0x2002);
    platform->run(4);

    if (!dbg.isPaused()) {
        std::printf("assertion breakpoint missed\n");
        return 1;
    }
    std::printf("\nassertion breakpoint PAUSED the stack "
                "(fired mask 0x%llx).\n",
                (unsigned long long)dbg.assertionsFired());

    // Full visibility: the offending header is still in flight.
    auto regs = dbg.readAllRegisters("stack/");
    std::printf("in-flight state at the violation cycle:\n");
    std::printf("  parse/hdr   = 0x%08llx  (dst byte 0x%02llx — "
                "the malformed packet)\n",
                (unsigned long long)regs["stack/parse/hdr"],
                (unsigned long long)(regs["stack/parse/hdr"] >> 24));
    std::printf("  route/err   = %llu\n",
                (unsigned long long)regs["stack/route/err"]);
    auto mac = dbg.readAllRegisters("mac/");
    std::printf("  rxq wr/rd   = %llu/%llu (the MAC-side queue "
                "keeps running)\n",
                (unsigned long long)mac["mac/rxq/wr"],
                (unsigned long long)mac["mac/rxq/rd"]);

    // While paused, line traffic keeps arriving: the drop queue
    // sheds it (§6.2) — no protocol corruption behind the queue.
    uint64_t drops_before = platform->peek("rx_dropped");
    for (uint32_t i = 0; i < 12; ++i)
        sendPacket(2, 0x3000 + i);
    std::printf("\nwhile paused, 12 more packets arrived: "
                "dropped %llu -> %llu (the queue protects the "
                "stack).\n",
                (unsigned long long)drops_before,
                (unsigned long long)platform->peek("rx_dropped"));

    // Patch the routing state and continue.
    dbg.enableAssertion(0, false);
    dbg.forceRegister("stack/route/err", 0);
    dbg.resume();
    for (uint32_t i = 1; i <= 4; ++i)
        sendPacket(i, 0x4000 + i);
    std::printf("\nresumed: delivered=%llu route_err=%llu — the "
                "stack recovered without recompilation.\n",
                (unsigned long long)platform->peek("delivered"),
                (unsigned long long)platform->peek("route_err"));
    return 0;
}
