/**
 * @file
 * Quickstart: the Zoomie debugging loop on a minimal design.
 *
 * Build a small RTL design with the module under test in its own
 * scope, bring it up on the simulated multi-SLR FPGA, then walk the
 * paper's feature set: pause/resume, single stepping, value
 * breakpoints configured at runtime, full-visibility readback,
 * state forcing, and snapshot/replay — all through the
 * configuration plane (capture, frame readback, partial
 * reconfiguration), never through a simulator backdoor.
 */

#include <cstdio>

#include "core/snapshot.hh"
#include "core/zoomie.hh"
#include "rtl/builder.hh"

using namespace zoomie;

namespace {

/** A counter plus a small FSM inside the "mut/" scope. */
rtl::Design
makeDesign()
{
    rtl::Builder b("quickstart");
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.addLit(count.q, 1));
    auto phase = b.reg("phase", 2, 0);
    b.connect(phase, b.addLit(phase.q, 1));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    return b.finish();
}

} // namespace

int
main()
{
    // 1. Instrument + compile + configure. The watch list fixes
    //    which wires the trigger comparators observe; everything
    //    else about the triggers is runtime-configurable.
    core::PlatformOptions opts;
    opts.instrument.mutPrefix = "mut/";
    opts.instrument.watchSignals = {"mut/count"};
    opts.instrument.assertions = {
        "assert property (mut/count != 5000);",
    };
    auto platform = core::Platform::create(makeDesign(), opts);
    core::Debugger &dbg = platform->debugger();

    std::printf("Zoomie quickstart on %s\n\n",
                platform->device().spec().name.c_str());

    // 2. Run, pause, observe.
    platform->run(100);
    dbg.pause();
    platform->run(1);  // the pause takes effect on the next edge
    std::printf("paused:     count = %llu (world keeps running, "
                "MUT frozen)\n",
                (unsigned long long)dbg.readRegister("mut/count"));

    // 3. Step exactly 10 cycles (gdb 'until'-style).
    dbg.stepCycles(10);
    platform->run(50);
    std::printf("step 10:    count = %llu\n",
                (unsigned long long)dbg.readRegister("mut/count"));

    // 4. Runtime breakpoint: pause when count reaches 500.
    dbg.setValueBreakpoint(0, 500, /*and*/ true, /*or*/ false);
    dbg.armTriggers(true, false);
    dbg.resume();
    platform->run(1000);
    std::printf("breakpoint: count = %llu (timing-precise pause "
                "in the trigger cycle)\n",
                (unsigned long long)platform->peek("value"));

    // 5. Full visibility + state forcing.
    auto all = dbg.readAllRegisters("mut/");
    std::printf("readback:   %zu registers under mut/ (phase=%llu)\n",
                all.size(),
                (unsigned long long)all["mut/phase"]);
    dbg.clearValueBreakpoints();
    dbg.forceRegister("mut/count", 4000);
    std::printf("forced:     count = %llu\n",
                (unsigned long long)dbg.readRegister("mut/count"));

    // 6. Snapshot, run ahead, time-travel back, replay. Snapshots
    //    are content-addressed dirty-frame deltas in a bounded
    //    ring; restoring writes only the frames that changed.
    core::SnapshotStore snapshots(*platform);
    auto snap = snapshots.capture(/*pinned=*/true);
    std::printf("snapshot:   id 0x%llx at cycle %llu (%llu delta "
                "frames, %llu bytes vs %llu full)\n",
                (unsigned long long)snap->id,
                (unsigned long long)snap->cycle,
                (unsigned long long)snap->deltaFrames,
                (unsigned long long)snap->bytes,
                (unsigned long long)snapshots.fullImageBytes());
    dbg.resume();
    platform->run(200);
    uint64_t ahead = platform->peek("value");
    dbg.pause();
    platform->run(1);
    snapshots.restore(snap->id);
    dbg.resume();
    platform->run(200);
    std::printf("replay:     %llu == %llu (deterministic)\n",
                (unsigned long long)platform->peek("value"),
                (unsigned long long)ahead);

    // 7. Assertion breakpoint: count != 5000 must fail eventually.
    platform->run(2000);
    std::printf("assertion:  %s at count = %llu (fired mask 0x%llx)"
                "\n",
                dbg.isPaused() ? "paused the design" : "missed",
                (unsigned long long)platform->peek("value"),
                (unsigned long long)dbg.assertionsFired());
    return 0;
}
