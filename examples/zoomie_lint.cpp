/**
 * @file
 * `zoomie_lint`: the standalone CLI front end of the lint engine
 * (src/lint). Runs the static-analysis passes over one of the
 * built-in designs and prints gcc-style findings; exits nonzero
 * when unwaived error-severity findings remain, so it slots into
 * CI pipelines and pre-compile hooks.
 *
 *     zoomie_lint [--design NAME] [--pass ID[,ID...]]
 *                 [--severity note|warning|error]
 *                 [--waivers FILE] [--show-waived] [--list-passes]
 *                 [--cache-dir DIR] [--no-cache]
 *
 * Designs: counter, tinyrv, serv_soc, cohort, beehive.
 * Caching: by default a run keeps an in-memory analysis cache
 * (which only helps repeated runs inside one process); --cache-dir
 * mirrors entries to DIR so *subsequent invocations* of identical
 * RTL reuse the analysis, and --no-cache forces the cold path. The
 * report text is byte-identical either way; cache probe counters go
 * to stderr so stdout stays diffable.
 * Exit status: 0 = no unwaived errors, 1 = error findings,
 * 2 = bad usage, unknown pass id or unreadable waiver file.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "designs/beehive.hh"
#include "designs/cohort.hh"
#include "designs/serv_soc.hh"
#include "designs/tinyrv.hh"
#include "lint/cache.hh"
#include "lint/lint.hh"
#include "rtl/builder.hh"

using namespace zoomie;

namespace {

/** The RDP server's demo workload, for design parity with it. */
std::vector<uint32_t>
demoProgram()
{
    using namespace designs::rv;
    return {
        addi(1, 0, 0), addi(2, 0, 1),
        add(1, 1, 2),  addi(2, 2, 1),
        sw(1, 0, 0x200), jal(0, -12),
    };
}

/** Free-running 16-bit counter, matching the RDP "counter". */
rtl::Design
buildCounter()
{
    rtl::Builder b("app");
    b.pushScope("mut");
    auto count = b.reg("count", 16, 0);
    b.connect(count, b.addLit(count.q, 1));
    b.popScope();
    b.output("value", b.handleFor(count.q.id));
    return b.finish();
}

bool
buildDesign(const std::string &name, rtl::Design &out)
{
    if (name == "counter") {
        out = buildCounter();
    } else if (name == "tinyrv") {
        out = designs::buildTinyRv(demoProgram());
    } else if (name == "serv_soc") {
        out = designs::buildServSoc({});
    } else if (name == "cohort") {
        out = designs::buildCohortAccel({});
    } else if (name == "beehive") {
        out = designs::buildBeehive({});
    } else {
        return false;
    }
    return true;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--design counter|tinyrv|serv_soc|cohort|"
        "beehive]\n"
        "          [--pass ID[,ID...]] "
        "[--severity note|warning|error]\n"
        "          [--waivers FILE] [--show-waived] "
        "[--list-passes]\n"
        "          [--cache-dir DIR] [--no-cache]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string design_name = "tinyrv";
    lint::Options options;
    bool show_waived = false;
    bool use_cache = true;
    std::string cache_dir;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--list-passes") {
            lint::Linter linter;
            for (const auto &pass : linter.passes()) {
                std::printf("%-16s %s\n", pass->id(),
                            pass->description());
            }
            return 0;
        } else if (arg == "--design") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            design_name = v;
        } else if (arg == "--pass") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            std::string list = v;
            size_t start = 0;
            while (start <= list.size()) {
                size_t comma = list.find(',', start);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > start)
                    options.passes.push_back(
                        list.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (arg == "--severity") {
            const char *v = value();
            if (!v || !lint::parseSeverity(v, options.minSeverity))
                return usage(argv[0]);
        } else if (arg == "--waivers") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            std::string error;
            if (!lint::WaiverSet::load(v, options.waivers,
                                       &error)) {
                std::fprintf(stderr, "zoomie_lint: %s\n",
                             error.c_str());
                return 2;
            }
        } else if (arg == "--show-waived") {
            show_waived = true;
        } else if (arg == "--cache-dir") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            cache_dir = v;
        } else if (arg == "--no-cache") {
            use_cache = false;
        } else {
            std::fprintf(stderr, "zoomie_lint: unknown option %s\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    rtl::Design design;
    if (!buildDesign(design_name, design)) {
        std::fprintf(stderr, "zoomie_lint: unknown design '%s'\n",
                     design_name.c_str());
        return usage(argv[0]);
    }

    lint::Linter linter;
    for (const std::string &id : options.passes) {
        if (!linter.hasPass(id)) {
            std::string known;
            for (const std::string &pass :
                 lint::Linter::passIds()) {
                if (!known.empty())
                    known += ", ";
                known += pass;
            }
            std::fprintf(stderr,
                         "zoomie_lint: unknown pass '%s' "
                         "(known: %s)\n",
                         id.c_str(), known.c_str());
            return 2;
        }
    }

    lint::Report report;
    if (use_cache) {
        lint::AnalysisCache cache(cache_dir);
        lint::RunMetrics metrics;
        report = linter.run(design, options, &cache, &metrics);
        // Counters go to stderr: stdout stays byte-identical to an
        // uncached run, so pipelines can diff reports freely.
        std::fprintf(stderr,
                     "zoomie_lint: cache %llu hit(s), %llu "
                     "miss(es)%s\n",
                     (unsigned long long)metrics.cacheHits,
                     (unsigned long long)metrics.cacheMisses,
                     cache_dir.empty() ? " (in-memory)" : "");
    } else {
        report = linter.run(design, options);
    }
    std::string text = report.renderText(show_waived);
    std::fputs(text.c_str(), stdout);
    std::printf("%s: %zu errors, %zu warnings, %zu notes\n",
                design.name.c_str(), report.errors(),
                report.warnings(), report.notes());
    return report.errors() > 0 ? 1 : 0;
}
