/**
 * @file
 * The VTI incremental-compilation workflow on its own (§3.5): a
 * small SoC is compiled once with declared iterated modules; an
 * edit to one core then recompiles in a fraction of the time and
 * produces a *partial* bitstream covering only that partition's
 * frames. Also shows the honesty checks that make incremental
 * reuse legitimate: unchanged partitions re-place to identical
 * locations, and the incrementally linked netlist behaves exactly
 * like a from-scratch compile.
 */

#include <cstdio>

#include "bitstream/disassembler.hh"
#include "common/rng.hh"
#include "designs/serv_soc.hh"
#include "fpga/device_spec.hh"
#include "synth/netlistsim.hh"
#include "toolchain/flows.hh"
#include "toolchain/logicloc.hh"

using namespace zoomie;

int
main()
{
    designs::ServSocConfig config;
    config.cores = 16;
    config.coresPerCluster = 8;
    config.clusterBrams = 1;
    config.l2Brams = 2;
    const std::string mut = designs::servCoreScope(config, 0);
    fpga::DeviceSpec spec = fpga::makeTestDevice();
    spec.clbCols = 64;
    spec.clbRows = 64;

    std::printf("VTI incremental compilation, %u-core SoC, "
                "iterated module: %s\n\n",
                config.cores, mut.c_str());

    toolchain::Vti::Options vti_opts;
    vti_opts.iteratedModules = {mut};
    toolchain::Vti vti(spec, vti_opts);

    rtl::Design base = designs::buildServSoc(config);
    toolchain::CompileResult initial = vti.compileInitial(base);
    std::printf("initial compile: %.1f s modeled "
                "(synth %.1f / place %.1f / route %.1f / "
                "bitgen %.1f / link %.1f)\n",
                initial.time.total(), initial.time.synth,
                initial.time.place, initial.time.route,
                initial.time.bitgen, initial.time.link);

    designs::ServSocConfig edited_cfg = config;
    edited_cfg.debugVariant = 2;  // expose a probe register
    rtl::Design edited = designs::buildServSoc(edited_cfg);
    toolchain::CompileResult incr =
        vti.compileIncremental(edited, mut);
    std::printf("incremental:     %.1f s modeled "
                "(synth %.1f / place %.1f / route %.1f / "
                "bitgen %.1f / link %.1f / fixed %.1f)\n",
                incr.time.total(), incr.time.synth,
                incr.time.place, incr.time.route, incr.time.bitgen,
                incr.time.link, incr.time.overhead);
    std::printf("on this toy SoC the DFX fixed costs dominate; at "
                "the paper's 5400-core scale the same flow\n"
                "is ~18x faster than a full compile (run "
                "bench_fig7_incremental_compile).\n\n");

    // The incremental result carries a partial bitstream: only the
    // edited partition's frames travel to the FPGA.
    auto full_stats = bitstream::analyze(initial.bitstream);
    auto part_stats = bitstream::analyze(incr.bitstream);
    std::printf("bitstream: full %u frame-words vs partial %u "
                "(%.1f%% of the device)\n",
                full_stats.frameDataWords, part_stats.frameDataWords,
                100.0 * part_stats.frameDataWords /
                    full_stats.frameDataWords);

    // Honesty check 1: unchanged partitions kept their placement.
    auto locs_a = toolchain::buildLogicLocations(
        spec, base, initial.netlist, initial.placement);
    auto locs_b = toolchain::buildLogicLocations(
        spec, edited, incr.netlist, incr.placement);
    std::string other = designs::servCoreScope(config, 5) + "pc";
    const auto *ra = locs_a.findReg(other);
    const auto *rb = locs_b.findReg(other);
    bool stable = ra && rb && ra->bits[0].frame == rb->bits[0].frame
        && ra->bits[0].bit == rb->bits[0].bit;
    std::printf("placement stability of untouched core 5: %s\n",
                stable ? "identical" : "MOVED (reuse unsound!)");

    // Honesty check 2: the linked netlist behaves like a fresh
    // compile of the edited design.
    toolchain::VendorTool vendor(spec);
    toolchain::CompileResult fresh = vendor.compile(edited);
    synth::NetlistSim sim_a(fresh.netlist);
    synth::NetlistSim sim_b(incr.netlist);
    bool equal = true;
    for (int cycle = 0; cycle < 300 && equal; ++cycle) {
        equal = sim_a.peek("checksum") == sim_b.peek("checksum");
        for (uint32_t c = 0; c < fresh.netlist.numClocks; ++c) {
            sim_a.step(static_cast<uint8_t>(c));
            sim_b.step(static_cast<uint8_t>(c));
        }
    }
    std::printf("behavioural equivalence over 300 cycles: %s\n",
                equal ? "identical" : "DIVERGED");
    return equal && stable ? 0 : 1;
}
