#include "tinyrv.hh"

#include "common/logging.hh"

namespace zoomie::designs {

using rtl::Builder;
using rtl::Value;

rtl::Design
buildTinyRv(const std::vector<uint32_t> &program)
{
    panic_if(program.size() > kTinyRvMemWords,
             "program exceeds memory");
    Builder b("tinyrv");
    b.pushScope("cpu");

    // Micro states.
    constexpr uint64_t kFetch = 0, kDecode = 1, kExec = 2,
                       kMem = 3, kWb = 4;

    auto state = b.reg("state", 3, kFetch);
    auto pc = b.reg("pc", 32, 0);
    auto ir = b.reg("ir", 32, 0x13 /* nop */);
    auto mie = b.reg("mstatus_mie", 1, 1);
    auto mpie = b.reg("mstatus_mpie", 1, 1);
    auto mtvec = b.reg("mtvec", 32, 0x80);
    auto mepc = b.reg("mepc", 32, 0);
    auto mcause = b.reg("mcause", 32, 0);

    Value in_fetch = b.eqLit(state.q, kFetch);
    Value in_decode = b.eqLit(state.q, kDecode);
    Value in_exec = b.eqLit(state.q, kExec);
    Value in_mem = b.eqLit(state.q, kMem);
    Value in_wb = b.eqLit(state.q, kWb);

    // Unified memory (BRAM, sync read).
    std::vector<uint64_t> image(program.begin(), program.end());
    auto mem = b.mem("mem", 32, kTinyRvMemWords,
                     rtl::MemStyle::Block, std::move(image));

    // Register file (LUTRAM, two async read ports).
    auto rf = b.mem("rf", 32, 32, rtl::MemStyle::Distributed);

    // ---- decode fields ------------------------------------------
    Value opc = b.slice(ir.q, 0, 7);
    Value rd = b.slice(ir.q, 7, 5);
    Value f3 = b.slice(ir.q, 12, 3);
    Value rs1 = b.slice(ir.q, 15, 5);
    Value rs2 = b.slice(ir.q, 20, 5);
    Value f7 = b.slice(ir.q, 25, 7);
    Value csr_addr = b.slice(ir.q, 20, 12);

    Value a = b.memReadAsync(rf, rs1);
    Value bb = b.memReadAsync(rf, rs2);

    // Immediates.
    Value sign = b.bit(ir.q, 31);
    Value sext20 = b.mux(sign, b.lit(0xFFFFF, 20), b.lit(0, 20));
    Value imm_i = b.concat(sext20, b.slice(ir.q, 20, 12));
    Value imm_u = b.concat(b.slice(ir.q, 12, 20), b.lit(0, 12));
    Value imm_s = b.concat(sext20,
                           b.concat(b.slice(ir.q, 25, 7),
                                    b.slice(ir.q, 7, 5)));
    // B-type: imm[12|10:5|4:1|11] << 1
    Value imm_b = b.concat(
        b.mux(sign, b.lit(0xFFFFF, 20), b.lit(0, 20)),
        b.concat(b.bit(ir.q, 7),
                 b.concat(b.slice(ir.q, 25, 6),
                          b.concat(b.slice(ir.q, 8, 4),
                                   b.lit(0, 1)))));
    // J-type: imm[20|10:1|11|19:12] << 1
    Value imm_j = b.concat(
        b.mux(sign, b.lit(0xFFF, 12), b.lit(0, 12)),
        b.concat(b.slice(ir.q, 12, 8),
                 b.concat(b.bit(ir.q, 20),
                          b.concat(b.slice(ir.q, 21, 10),
                                   b.lit(0, 1)))));

    auto is = [&](uint64_t code) { return b.eqLit(opc, code); };
    Value is_lui = is(0x37), is_auipc = is(0x17), is_jal = is(0x6F),
          is_jalr = is(0x67), is_branch = is(0x63), is_load = is(0x03),
          is_store = is(0x23), is_opimm = is(0x13), is_op = is(0x33),
          is_system = is(0x73);

    Value known = is_lui;
    for (Value v : {is_auipc, is_jal, is_jalr, is_branch, is_load,
                    is_store, is_opimm, is_op, is_system})
        known = b.lor(known, v);

    // ---- ALU -------------------------------------------------------
    Value op_b = b.mux(is_op, bb, imm_i);
    Value addv = b.add(a, op_b);
    Value subv = b.sub(a, bb);
    Value xorv = b.bxor(a, op_b);
    Value orv = b.bor(a, op_b);
    Value andv = b.band(a, op_b);
    Value sll = b.shl(a, b.zext(b.slice(op_b, 0, 5), 32));
    Value srl = b.shr(a, b.zext(b.slice(op_b, 0, 5), 32));
    Value flip = b.lit(0x80000000u, 32);
    Value slt_s = b.zext(b.ult(b.bxor(a, flip), b.bxor(op_b, flip)),
                         32);
    Value slt_u = b.zext(b.ult(a, op_b), 32);

    Value use_sub = b.land(is_op, b.eqLit(b.bit(f7, 5), 1));
    Value alu =
        b.mux(b.eqLit(f3, 0), b.mux(use_sub, subv, addv),
        b.mux(b.eqLit(f3, 1), sll,
        b.mux(b.eqLit(f3, 2), slt_s,
        b.mux(b.eqLit(f3, 3), slt_u,
        b.mux(b.eqLit(f3, 4), xorv,
        b.mux(b.eqLit(f3, 5), srl,
        b.mux(b.eqLit(f3, 6), orv, andv)))))));

    // ---- branches ---------------------------------------------------
    Value eqv = b.eq(a, bb);
    Value lt_s = b.ult(b.bxor(a, flip), b.bxor(bb, flip));
    Value lt_u = b.ult(a, bb);
    Value take =
        b.mux(b.eqLit(f3, 0), eqv,
        b.mux(b.eqLit(f3, 1), b.lnot(eqv),
        b.mux(b.eqLit(f3, 4), lt_s,
        b.mux(b.eqLit(f3, 5), b.lnot(lt_s),
        b.mux(b.eqLit(f3, 6), lt_u, b.lnot(lt_u))))));

    Value pc_plus4 = b.addLit(pc.q, 4);
    Value branch_target = b.mux(take, b.add(pc.q, imm_b), pc_plus4);

    // ---- CSRs --------------------------------------------------------
    // mstatus layout: bit 3 = MIE, bit 7 = MPIE.
    Value mstatus = b.bor(
        b.shl(b.zext(mie.q, 32), b.lit(3, 32)),
        b.shl(b.zext(mpie.q, 32), b.lit(7, 32)));
    Value is_mstatus = b.eqLit(csr_addr, rv::kCsrMstatus);
    Value is_mtvec = b.eqLit(csr_addr, rv::kCsrMtvec);
    Value is_mepc = b.eqLit(csr_addr, rv::kCsrMepc);
    Value is_mcause = b.eqLit(csr_addr, rv::kCsrMcause);
    Value csr_rdata =
        b.mux(is_mstatus, mstatus,
        b.mux(is_mtvec, mtvec.q,
        b.mux(is_mepc, mepc.q,
              b.mux(is_mcause, mcause.q, b.lit(0, 32)))));

    Value is_csrrw = b.land(is_system, b.eqLit(f3, 1));
    Value is_csrrs = b.land(is_system, b.eqLit(f3, 2));
    Value is_csr = b.lor(is_csrrw, is_csrrs);
    Value csr_wdata = b.mux(is_csrrw, a, b.bor(csr_rdata, a));

    Value is_ecall = b.land(is_system,
                            b.land(b.eqLit(f3, 0),
                                   b.eqLit(csr_addr, 0)));
    Value is_mret = b.land(is_system,
                           b.land(b.eqLit(f3, 0),
                                  b.eqLit(csr_addr, 0x302)));

    // ---- exceptions ----------------------------------------------------
    Value fetch_fault = b.lor(
        b.ne(b.slice(pc.q, 0, 2), b.lit(0, 2)),
        b.ule(b.lit(kTinyRvMemWords * 4, 32), pc.q));
    Value exc_fetch = b.land(in_fetch, fetch_fault);
    Value illegal = b.land(in_exec,
                           b.lor(b.lnot(known),
                                 b.land(is_system,
                                        b.lnot(b.lor(is_csr,
                                               b.lor(is_ecall,
                                                     is_mret))))));
    Value exc_ecall = b.land(in_exec, is_ecall);
    Value exc_taken = b.lor(exc_fetch, b.lor(illegal, exc_ecall));
    Value cause =
        b.mux(exc_fetch,
              b.lit(uint32_t(TrapCause::InstrAccessFault), 32),
        b.mux(illegal, b.lit(uint32_t(TrapCause::IllegalInstr), 32),
              b.lit(uint32_t(TrapCause::EnvCall), 32)));
    b.nameNet("exc_taken", exc_taken);
    b.nameNet("is_ecall_w", is_ecall);

    // ---- memory interface ----------------------------------------------
    Value load_addr = addv;  // rs1 + imm_i
    Value store_addr = b.add(a, imm_s);
    Value mem_addr =
        b.mux(in_fetch, b.slice(pc.q, 2, 12),
              b.mux(is_store, b.slice(store_addr, 2, 12),
                    b.slice(load_addr, 2, 12)));
    Value mem_rdata = b.memReadSync(mem, mem_addr);
    b.memWrite(mem, mem_addr, bb,
               b.land(in_mem, is_store));

    // ---- register file write -------------------------------------------
    Value wb_alu = b.land(in_exec,
                          b.lor(is_opimm,
                          b.lor(is_op,
                          b.lor(is_lui,
                          b.lor(is_auipc,
                          b.lor(is_jal,
                          b.lor(is_jalr, is_csr)))))));
    Value rd_data =
        b.mux(is_lui, imm_u,
        b.mux(is_auipc, b.add(pc.q, imm_u),
        b.mux(b.lor(is_jal, is_jalr), pc_plus4,
              b.mux(is_csr, csr_rdata, alu))));
    Value wb_load = b.land(in_wb, is_load);
    Value rf_wdata = b.mux(wb_load, mem_rdata, rd_data);
    Value rf_wen = b.land(b.lor(b.land(wb_alu, b.lnot(exc_taken)),
                                wb_load),
                          b.ne(rd, b.lit(0, 5)));
    b.memWrite(rf, rd, rf_wdata, rf_wen);

    // ---- next pc ---------------------------------------------------------
    Value next_pc_exec =
        b.mux(is_jal, b.add(pc.q, imm_j),
        b.mux(is_jalr,
              b.band(addv, b.lit(0xFFFFFFFEu, 32)),
        b.mux(is_branch, branch_target,
              b.mux(is_mret, mepc.q, pc_plus4))));

    // ---- state transitions -------------------------------------------
    Value after_exec =
        b.mux(is_load, b.lit(kMem, 3),
              b.mux(is_store, b.lit(kMem, 3), b.lit(kFetch, 3)));
    Value next_state =
        b.mux(exc_taken, b.lit(kFetch, 3),
        b.mux(in_fetch, b.lit(kDecode, 3),
        b.mux(in_decode, b.lit(kExec, 3),
        b.mux(in_exec, after_exec,
        b.mux(in_mem, b.mux(is_load, b.lit(kWb, 3), b.lit(kFetch, 3)),
              b.lit(kFetch, 3))))));
    b.connect(state, next_state);

    // IR latches in decode.
    b.connect(ir, b.mux(in_decode, mem_rdata, ir.q));

    // PC update: on exception -> mtvec; in EXEC -> computed.
    Value pc_next =
        b.mux(exc_taken, mtvec.q,
              b.mux(b.land(in_exec, b.lnot(exc_taken)),
                    next_pc_exec, pc.q));
    b.connect(pc, pc_next);

    // CSR state updates.
    Value csr_we = b.land(b.land(in_exec, is_csr),
                          b.lnot(exc_taken));
    b.connect(mie,
              b.mux(exc_taken, b.lit(0, 1),
              b.mux(b.land(in_exec, is_mret), mpie.q,
                    b.mux(b.land(csr_we, is_mstatus),
                          b.bit(csr_wdata, 3), mie.q))));
    b.connect(mpie,
              b.mux(exc_taken, mie.q,
              b.mux(b.land(in_exec, is_mret), b.lit(1, 1),
                    b.mux(b.land(csr_we, is_mstatus),
                          b.bit(csr_wdata, 7), mpie.q))));
    b.connect(mtvec, b.mux(b.land(csr_we, is_mtvec), csr_wdata,
                           mtvec.q));
    b.connect(mepc,
              b.mux(exc_taken, pc.q,
                    b.mux(b.land(csr_we, is_mepc), csr_wdata,
                          mepc.q)));
    b.connect(mcause,
              b.mux(exc_taken, cause,
                    b.mux(b.land(csr_we, is_mcause), csr_wdata,
                          mcause.q)));

    Value retired = b.land(in_exec, b.lnot(exc_taken));
    b.nameNet("retired", retired);

    b.popScope();
    b.output("pc", pc.q);
    b.output("retired", retired);
    b.output("trap", exc_taken);
    return b.finish();
}

} // namespace zoomie::designs
