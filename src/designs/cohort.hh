/**
 * @file
 * A Cohort-style accelerator (§2.2, §5.5): a datapath that streams
 * elements from memory through a load-store unit and an MMU/TLB,
 * accumulating a result, with a writeback channel storing partial
 * sums. The MMU contains the paper's seeded bug — the TLB ack is
 * raised from the round-robin selector alone, missing the requester
 * id check (`ack = tlb_sel_r == i` instead of
 * `ack = tlb_sel_r == i && id == i`) — so for certain interleavings
 * an ack is routed to the wrong channel, the real requester waits
 * forever, and the accelerator returns only part of the result
 * before hanging.
 *
 * Scopes: accel/datapath, accel/lsu, accel/mmu. Decoupled result
 * interface declared on accel/ for pause-buffer insertion.
 */

#ifndef ZOOMIE_DESIGNS_COHORT_HH
#define ZOOMIE_DESIGNS_COHORT_HH

#include <cstdint>

#include "rtl/builder.hh"

namespace zoomie::designs {

struct CohortConfig
{
    uint32_t elements = 24;  ///< job size
    bool fixTlbBug = false;  ///< apply the one-line fix
};

/**
 * Outputs: "sum" (32-bit result), "count" (elements processed),
 * "done" (1 when the job completed).
 *
 * Debug-relevant registers: accel/lsu/waiting0, accel/lsu/waiting1,
 * accel/mmu/busy, accel/mmu/req_id_r, accel/mmu/tlb_sel_r,
 * accel/datapath/idx, accel/datapath/sum.
 */
rtl::Design buildCohortAccel(const CohortConfig &config);

} // namespace zoomie::designs

#endif // ZOOMIE_DESIGNS_COHORT_HH
