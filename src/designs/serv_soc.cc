#include "serv_soc.hh"

#include "common/logging.hh"

namespace zoomie::designs {

using rtl::Builder;
using rtl::Value;

ServSocConfig
corescore5400()
{
    ServSocConfig config;
    config.cores = 5400;
    config.coresPerCluster = 8;
    config.clusterBrams = 3;
    config.l2Brams = 95;
    return config;
}

namespace {

/** 32-bit shift register with parallel feedback mux (the SERV
 *  idiom: every architectural register is a serial shifter). */
rtl::RegHandle
serialReg(Builder &b, const std::string &name, Value shift_en,
          Value serial_in, uint64_t init)
{
    auto r = b.reg(name, 32, init);
    Value shifted = b.concat(serial_in, b.slice(r.q, 1, 31));
    b.connect(r, b.mux(shift_en, shifted, r.q));
    return r;
}

} // namespace

ServLitePorts
buildServLite(Builder &b, Value mem_rdata, Value mem_grant,
              Value result_ready, uint32_t seed, int debug_variant)
{
    // Micro-FSM: 0 fetch, 1 decode, 2 execute (32 serial steps),
    // 3 writeback, 4 emit result.
    auto state = b.reg("state", 3, 0);
    auto cnt = b.reg("cnt", 5, 0);
    auto rf_wen_r = b.reg("rf_wen", 1, 0);

    Value in_fetch = b.eqLit(state.q, 0);
    Value in_decode = b.eqLit(state.q, 1);
    Value in_exec = b.eqLit(state.q, 2);
    Value in_wb = b.eqLit(state.q, 3);
    Value in_emit = b.eqLit(state.q, 4);

    // Serial datapath registers.
    Value exec_shift = in_exec;
    auto acc_bit = b.reg("carry", 1, 0);

    auto pc = serialReg(b, "pc", in_wb, b.lit(0, 1), 0x100 + seed);
    // Instruction register: loaded serially from scratchpad data.
    auto ir = serialReg(b, "ir", in_fetch, b.bit(mem_rdata, 0),
                        seed * 7);

    // Serialized register file: 64 x 10 distributed RAM (two
    // architectural registers per row in SERV's packed layout).
    auto rf = b.mem("rf", 10, 64, rtl::MemStyle::Distributed);
    Value rf_addr = b.concat(b.bit(ir.q, 2), cnt.q);
    Value rf_rdata = b.memReadAsync(rf, rf_addr);

    // Operand shifters fed from the register file.
    auto rs1 = serialReg(b, "rs1", exec_shift, b.bit(rf_rdata, 0),
                         seed);
    auto rs2 = serialReg(b, "rs2", exec_shift, b.bit(rf_rdata, 1),
                         ~uint64_t(seed));

    // 1-bit ALU slice: serial add with carry, plus xor/and paths
    // selected by the "opcode" (ir bits).
    Value a = b.bit(rs1.q, 0);
    Value c2 = b.bit(rs2.q, 0);
    Value carry = acc_bit.q;
    Value sum = b.bxor(b.bxor(a, c2), carry);
    Value carry_next = b.lor(b.land(a, c2),
                             b.land(carry, b.bxor(a, c2)));
    Value op_xor = b.bxor(a, c2);
    Value op_and = b.land(a, c2);
    Value alu_bit = b.mux(b.bit(ir.q, 0), sum,
                          b.mux(b.bit(ir.q, 1), op_xor, op_and));
    b.connect(acc_bit, b.mux(in_exec, carry_next, b.lit(0, 1)));

    // Accumulator shifts with a clock enable (cheaper than the
    // feedback mux used by the operand shifters).
    auto acc = b.reg("acc", 32, 0x5EED ^ seed);
    b.connect(acc, b.concat(alu_bit, b.slice(acc.q, 1, 31)));
    b.enable(acc, exec_shift);

    // Address-mix network (PC-relative scratchpad hashing).
    Value mix = b.add(b.slice(acc.q, 0, 14), b.slice(rs1.q, 0, 14));

    // Writeback into the register file, serially.
    b.memWrite(rf, rf_addr,
               b.concat(b.slice(acc.q, 0, 5), b.slice(pc.q, 0, 5)),
               b.land(in_wb, rf_wen_r.q));
    b.connect(rf_wen_r, b.mux(in_decode, b.bit(ir.q, 5),
                              rf_wen_r.q));

    // Control: counter wraps through the serial phases.
    Value cnt_done = b.eqLit(cnt.q, 31);
    b.connect(cnt, b.mux(b.lor(in_exec, in_fetch),
                         b.addLit(cnt.q, 1), b.lit(0, 5)));

    // Performance counter and a serial timestamp chain (SERV's CSR
    // block keeps similar state).
    auto mcycle = b.reg("mcycle", 12, 0);
    b.connect(mcycle, b.addLit(mcycle.q, 1));
    auto tstamp = b.reg("tstamp", 20, 0xBEEF);
    b.connect(tstamp, b.concat(b.bxor(b.bit(acc.q, 0), carry),
                               b.slice(tstamp.q, 1, 19)));

    // Result stream: a decoupled interface (pause-buffer target).
    auto out_val = b.reg("out_val", 32, 0);
    auto out_vld = b.reg("out_vld", 1, 0);
    Value fire = b.land(out_vld.q, result_ready);
    b.connect(out_val, acc.q);
    b.enable(out_val, in_wb);
    b.connect(out_vld, b.mux(in_emit, b.lit(1, 1),
                             b.mux(fire, b.lit(0, 1), out_vld.q)));
    b.declareIface("result", rtl::IfaceDir::Out, out_vld.q,
                   result_ready, {out_val.q});

    // Next-state logic.
    Value next_state =
        b.mux(in_fetch, b.mux(b.land(mem_grant, cnt_done),
                              b.lit(1, 3), b.lit(0, 3)),
        b.mux(in_decode, b.lit(2, 3),
        b.mux(in_exec, b.mux(cnt_done, b.lit(3, 3), b.lit(2, 3)),
        b.mux(in_wb, b.lit(4, 3),
              b.mux(fire, b.lit(0, 3), b.lit(4, 3))))));
    b.connect(state, next_state);

    // Debug edits (Figure 7): expose one internal signal through a
    // probe register. Each variant is a different "minor change".
    if (debug_variant > 0) {
        auto probe = b.reg("dbg_probe", 32, 0);
        Value src = acc.q;
        switch (debug_variant) {
          case 1: src = rs1.q; break;
          case 2: src = rs2.q; break;
          case 3: src = pc.q; break;
          case 4: src = ir.q; break;
          default:
            src = b.bxor(acc.q, ir.q);
            break;
        }
        b.connect(probe, src);
        b.enable(probe, in_exec);
        b.nameNet("dbg_probe_q", probe.q);
    }

    ServLitePorts ports;
    ports.memReq = in_fetch;
    ports.memAddr = b.bxor(b.slice(pc.q, 2, 10),
                           b.slice(mix, 0, 10));
    ports.resultValid = out_vld.q;
    ports.result = out_val.q;
    return ports;
}

rtl::Design
buildServSoc(const ServSocConfig &config)
{
    panic_if(config.cores == 0, "SoC needs at least one core");
    Builder b("serv_soc_" + std::to_string(config.cores));

    const uint32_t clusters =
        (config.cores + config.coresPerCluster - 1) /
        config.coresPerCluster;

    Value checksum_in = b.lit(0, 32);
    Value beat_in = b.lit(0, 1);
    uint32_t core_index = 0;

    // Ring NoC register between clusters (ungated, top level).
    Value ring = b.lit(0, 32);

    for (uint32_t cl = 0; cl < clusters; ++cl) {
        const bool in_dut = cl < config.dutSpread;
        if (in_dut)
            b.pushScope("dut" + std::to_string(cl));
        b.pushScope("cluster" + std::to_string(cl));
        uint32_t cores_here =
            std::min(config.coresPerCluster,
                     config.cores - core_index);

        // Cluster scratchpad: clusterBrams independent 1Kx36 BRAMs
        // (one BRAM36 each), addressed by the granted core.
        b.pushScope("mem");
        std::vector<Value> bank_data;
        auto bank_sel = b.reg("bank_sel", 10, cl & 0x3ff);
        b.connect(bank_sel, b.addLit(bank_sel.q, 1));
        // Registered bank address, driven by the arbiter below
        // (declared first so the banks can consume it).
        auto bank_addr = b.reg("bank_addr", 10, 0);
        for (uint32_t bk = 0; bk < config.clusterBrams; ++bk) {
            auto bank = b.mem("bank" + std::to_string(bk), 36, 1024,
                              rtl::MemStyle::Block);
            Value rd = b.memReadSync(bank, bank_addr.q);
            bank_data.push_back(rd);
            // Light write traffic keeps the banks alive.
            b.memWrite(bank, bank_addr.q,
                       b.zext(b.slice(bank_sel.q, 0, 10), 36),
                       b.eqLit(b.slice(bank_sel.q, 0, 2), bk & 3));
        }
        Value mem_word = bank_data[0];
        for (size_t i = 1; i < bank_data.size(); ++i)
            mem_word = b.bxor(mem_word, bank_data[i]);
        b.popScope();  // mem

        // Round-robin grant across the cluster's cores.
        auto grant_ctr = b.reg("grant", 3, 0);
        b.connect(grant_ctr, b.addLit(grant_ctr.q, 1));

        Value cluster_sum = b.lit(0, 32);
        Value addr_mix = b.lit(0, 8);
        Value req_any = b.lit(0, 1);
        for (uint32_t k = 0; k < cores_here; ++k) {
            b.pushScope("core" + std::to_string(k));
            Value grant = b.eqLit(grant_ctr.q, k & 7);
            Value ready = b.lit(1, 1);
            ServLitePorts core = buildServLite(
                b, b.slice(mem_word, 0, 32), grant, ready,
                core_index * 2654435761u,
                core_index == config.debugCore
                    ? config.debugVariant : 0);
            b.popScope();
            cluster_sum = b.bxor(cluster_sum, core.result);
            // Granted core's scratchpad address reaches the banks.
            Value gated = b.mux(b.land(grant, core.memReq),
                                b.slice(core.memAddr, 0, 8),
                                b.lit(0, 8));
            addr_mix = b.bxor(addr_mix, gated);
            req_any = b.lor(req_any, core.memReq);
            ++core_index;
        }
        // The arbiter output registers into the banks' address.
        b.pushScope("mem");
        b.connect(bank_addr,
                  b.bxor(b.zext(addr_mix, 10),
                         b.mux(req_any, bank_sel.q,
                               b.bnot(bank_sel.q))));
        b.popScope();

        // Cluster output joins the ring through a register stage.
        b.popScope();  // cluster
        if (in_dut)
            b.popScope();  // dut wrapper
        b.pushScope("noc");
        ring = b.pipe("hop" + std::to_string(cl),
                      b.bxor(ring, cluster_sum));
        b.popScope();
    }

    checksum_in = ring;
    beat_in = b.redXor(ring);

    // Shared L2: one wide, deep BRAM array.
    if (config.l2Brams > 0) {
        b.pushScope("l2");
        auto addr = b.reg("addr", 16, 0);
        b.connect(addr, b.addLit(addr.q, 1));
        // depth chosen so the minimal BRAM36 tiling is exactly
        // l2Brams blocks of 512x72.
        auto l2 = b.mem("array", 64, config.l2Brams * 512,
                        rtl::MemStyle::Block);
        Value rd = b.memReadSync(l2, b.zext(addr.q, 16));
        b.memWrite(l2, b.zext(addr.q, 16),
                   b.bxor(rd, b.zext(checksum_in, 64)),
                   b.eqLit(b.slice(addr.q, 0, 4), 0));
        b.popScope();
    }

    b.output("checksum", checksum_in);
    b.output("beat", beat_in);
    return b.finish();
}

std::string
servCoreScope(const ServSocConfig &config, uint32_t index)
{
    uint32_t cl = index / config.coresPerCluster;
    uint32_t k = index % config.coresPerCluster;
    return "cluster" + std::to_string(cl) + "/core" +
           std::to_string(k) + "/";
}

} // namespace zoomie::designs
