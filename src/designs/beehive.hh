/**
 * @file
 * BeehiveLite (§5.7): a compact model of a hardware network stack —
 * a MAC-side frame drop queue followed by parse, route and transmit
 * stages connected by decoupled interfaces. Packets are single
 * words: {dst[7:0], payload[24:0] implicit in the low bits}. The
 * drop queue discards whole frames when the stack back-pressures
 * (necessary for correctness regardless of Zoomie, §6.2); all
 * stages behind the queue are fully pausable.
 *
 * Scopes: mac/rxq (line rate, outside the pausable region),
 * stack/parse, stack/route, stack/tx. Interfaces declared between
 * the stages so Zoomie interposes pause buffers on the stack
 * boundary.
 */

#ifndef ZOOMIE_DESIGNS_BEEHIVE_HH
#define ZOOMIE_DESIGNS_BEEHIVE_HH

#include <cstdint>

#include "rtl/builder.hh"

namespace zoomie::designs {

struct BeehiveConfig
{
    uint32_t queueDepth = 4;   ///< drop-queue entries (power of two)
    /** dst value considered malformed (routing error). */
    uint32_t poisonDst = 0xFF;
};

/**
 * Inputs: "rx_valid", "rx_data" (32), "tx_ready".
 * Outputs: "tx_valid", "tx_data" (32), "rx_dropped" (16-bit drop
 * counter), "route_err" (sticky malformed-packet flag),
 * "delivered" (16-bit count).
 *
 * Debug-relevant registers: mac/rxq/{rd,wr,dropped},
 * stack/parse/hdr, stack/route/{err,port_r}, stack/tx/out_r.
 */
rtl::Design buildBeehive(const BeehiveConfig &config);

} // namespace zoomie::designs

#endif // ZOOMIE_DESIGNS_BEEHIVE_HH
