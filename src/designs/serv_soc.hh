/**
 * @file
 * A CoreScore-style manycore SoC built from SERV-inspired bit-serial
 * cores (§5.2's evaluation workload). Each core is a small serial
 * datapath: 32-bit architectural registers implemented as shift
 * registers, a 1-bit ALU slice, a serialized register file in
 * distributed LUTRAM, and a 5-stage micro-FSM. Cores are grouped
 * into clusters sharing BRAM scratchpads through a round-robin
 * arbiter; clusters hang off a registered ring NoC; a BRAM-heavy
 * shared L2 rounds out the memory system.
 *
 * The SoC is used two ways:
 *  - full size (5400 cores) for the Table 2 / Figure 7 / Table 3
 *    compile-time and readback experiments (synthesis + placement
 *    only);
 *  - small configurations (a few cores) executed on the fabric
 *    model for debugging case studies and tests.
 */

#ifndef ZOOMIE_DESIGNS_SERV_SOC_HH
#define ZOOMIE_DESIGNS_SERV_SOC_HH

#include <cstdint>
#include <string>

#include "rtl/builder.hh"

namespace zoomie::designs {

/** SoC configuration. */
struct ServSocConfig
{
    uint32_t cores = 8;
    uint32_t coresPerCluster = 8;
    /** BRAM36 blocks per cluster scratchpad. */
    uint32_t clusterBrams = 3;
    /** BRAM36 blocks in the shared L2 (0 disables it). */
    uint32_t l2Brams = 95;

    /**
     * Debug-edit state (the Figure 7 experiment): variant > 0 adds
     * a probe register capturing a different internal signal of
     * core `debugCore` — the "minor changes to expose signals for
     * debugging" the paper recompiles for.
     */
    int debugVariant = 0;
    uint32_t debugCore = 0;

    /**
     * Wrap the first N clusters in scopes "dut0/", "dut1/", ... so
     * a module under test can be floorplanned across SLRs (the
     * Table 3 multi-SLR readback setup; the common prefix "dut"
     * then selects all of them).
     */
    uint32_t dutSpread = 0;
};

/** The paper's 5400-core configuration. */
ServSocConfig corescore5400();

/**
 * Emit one ServLite core into the current scope. The core exposes a
 * decoupled result stream (declared, so Zoomie can interpose pause
 * buffers) and a scratchpad request port wired by the cluster.
 *
 * @param mem_rdata  serial scratchpad read data presented to the core
 * @param mem_grant  scratchpad arbiter grant
 * @param result_ready downstream ready for the core's result stream
 * @param seed       per-core constant diversifying the datapath
 */
struct ServLitePorts
{
    rtl::Value memReq;      ///< scratchpad request
    rtl::Value memAddr;     ///< scratchpad address (10 bits)
    rtl::Value resultValid;
    rtl::Value result;      ///< 32-bit result stream payload
};

ServLitePorts buildServLite(rtl::Builder &b, rtl::Value mem_rdata,
                            rtl::Value mem_grant,
                            rtl::Value result_ready, uint32_t seed,
                            int debug_variant = 0);

/**
 * Build the full SoC. Scopes: "cluster<i>/core<j>/" per core,
 * "cluster<i>/mem/" per scratchpad, "noc/", "l2/".
 *
 * Outputs: "checksum" (32-bit rolling xor of all result streams)
 * and "beat" (1-bit activity heartbeat).
 */
rtl::Design buildServSoc(const ServSocConfig &config);

/** Scope prefix of core @p index (its tile, the usual MUT). */
std::string servCoreScope(const ServSocConfig &config, uint32_t index);

} // namespace zoomie::designs

#endif // ZOOMIE_DESIGNS_SERV_SOC_HH
