#include "beehive.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace zoomie::designs {

using rtl::Builder;
using rtl::Value;

rtl::Design
buildBeehive(const BeehiveConfig &config)
{
    panic_if(popCount(config.queueDepth) != 1,
             "queue depth must be a power of two");
    Builder b("beehive");

    Value rx_valid = b.input("rx_valid", 1);
    Value rx_data = b.input("rx_data", 32);
    Value tx_ready = b.input("tx_ready", 1);

    // ---- drop queue (MAC side, runs at line rate: never
    // back-pressures the PHY; drops frames when full; stays
    // OUTSIDE the pausable stack, §6.2) ---------------------------
    b.pushScope("mac");
    b.pushScope("rxq");
    const unsigned ptr_bits = bitsToAddress(config.queueDepth) + 1;
    auto wr = b.reg("wr", ptr_bits, 0);
    auto rd = b.reg("rd", ptr_bits, 0);
    auto dropped = b.reg("dropped", 16, 0);
    auto fifo = b.mem("fifo", 32, config.queueDepth,
                      rtl::MemStyle::Distributed);

    Value level = b.sub(wr.q, rd.q);
    Value fifo_full = b.eqLit(level, config.queueDepth);
    Value fifo_empty = b.eqLit(level, 0);

    Value enq = b.land(rx_valid, b.lnot(fifo_full));
    Value drop = b.land(rx_valid, fifo_full);
    b.memWrite(fifo, b.slice(wr.q, 0, ptr_bits - 1), rx_data, enq);
    b.connect(wr, b.mux(enq, b.addLit(wr.q, 1), wr.q));
    b.connect(dropped, b.mux(drop, b.addLit(dropped.q, 1),
                             dropped.q));

    Value q_valid = b.lnot(fifo_empty);
    Value q_data = b.memReadAsync(fifo,
                                  b.slice(rd.q, 0, ptr_bits - 1));
    b.popScope();  // rxq
    b.popScope();  // mac

    b.pushScope("stack");

    // ---- parse stage --------------------------------------------
    b.pushScope("parse");
    auto hdr = b.reg("hdr", 32, 0);
    auto hdr_vld = b.reg("hdr_vld", 1, 0);
    Value parse_ready = b.lnot(hdr_vld.q);
    // Consume from the queue.
    Value q_fire = b.land(q_valid, parse_ready);
    b.declareIface("from_rxq", rtl::IfaceDir::In, q_valid,
                   parse_ready, {q_data});
    b.popScope();

    b.popScope();  // stack
    b.pushScope("mac");
    b.pushScope("rxq");
    b.connect(rd, b.mux(q_fire, b.addLit(rd.q, 1), rd.q));
    b.popScope();
    b.popScope();
    b.pushScope("stack");

    b.pushScope("parse");
    Value dst = b.slice(hdr.q, 24, 8);
    b.nameNet("dst", dst);
    b.popScope();

    // ---- route stage ----------------------------------------------
    b.pushScope("route");
    auto port_r = b.reg("port_r", 4, 0);
    auto route_vld = b.reg("route_vld", 1, 0);
    auto payload_r = b.reg("payload_r", 32, 0);
    auto err = b.reg("err", 1, 0);
    Value route_ready = b.lnot(route_vld.q);
    Value parse_fire = b.land(hdr_vld.q, route_ready);

    // Static routing table in distributed RAM.
    std::vector<uint64_t> table;
    for (uint32_t i = 0; i < 16; ++i)
        table.push_back((i * 5 + 3) & 0xF);
    auto rtab = b.mem("table", 4, 16, rtl::MemStyle::Distributed,
                      std::move(table));
    Value port = b.memReadAsync(rtab, b.slice(hdr.q, 24, 4));
    Value malformed = b.eqLit(dst, config.poisonDst);
    b.nameNet("malformed", malformed);

    b.connect(port_r, b.mux(parse_fire, port, port_r.q));
    b.connect(payload_r, b.mux(parse_fire, hdr.q, payload_r.q));
    b.connect(err, b.lor(err.q, b.land(parse_fire, malformed)));
    b.popScope();

    b.pushScope("parse");
    b.connect(hdr, b.mux(q_fire, q_data, hdr.q));
    b.connect(hdr_vld, b.mux(q_fire, b.lit(1, 1),
                             b.mux(parse_fire, b.lit(0, 1),
                                   hdr_vld.q)));
    b.declareIface("to_route", rtl::IfaceDir::Out, hdr_vld.q,
                   route_ready, {hdr.q});
    b.popScope();

    // ---- tx stage ----------------------------------------------------
    b.pushScope("tx");
    auto out_r = b.reg("out_r", 32, 0);
    auto out_vld = b.reg("out_vld", 1, 0);
    auto delivered = b.reg("delivered", 16, 0);
    Value tx_ready_int = b.lnot(out_vld.q);
    Value route_fire = b.land(route_vld.q, tx_ready_int);
    Value tx_fire = b.land(out_vld.q, tx_ready);
    b.connect(out_r, b.mux(route_fire,
                           b.concat(b.zext(port_r.q, 8),
                                    b.slice(payload_r.q, 0, 24)),
                           out_r.q));
    b.connect(out_vld, b.mux(route_fire, b.lit(1, 1),
                             b.mux(tx_fire, b.lit(0, 1),
                                   out_vld.q)));
    b.connect(delivered, b.mux(tx_fire, b.addLit(delivered.q, 1),
                               delivered.q));
    b.popScope();

    b.pushScope("route");
    b.connect(route_vld, b.mux(parse_fire, b.lit(1, 1),
                               b.mux(route_fire, b.lit(0, 1),
                                     route_vld.q)));
    b.popScope();

    b.popScope();  // stack

    b.output("tx_valid", out_vld.q);
    b.output("tx_data", out_r.q);
    b.output("rx_dropped", dropped.q);
    b.output("route_err", err.q);
    b.output("delivered", delivered.q);
    return b.finish();
}

} // namespace zoomie::designs
