#include "cohort.hh"

#include "common/logging.hh"

namespace zoomie::designs {

using rtl::Builder;
using rtl::Value;

rtl::Design
buildCohortAccel(const CohortConfig &config)
{
    panic_if(config.elements == 0 || config.elements > 255,
             "bad job size");
    Builder b("cohort");
    b.pushScope("accel");

    // ---- MMU / TLB ------------------------------------------------
    // One translation pipeline shared by two requester channels:
    // ch0 = datapath loads, ch1 = writeback stores. Requests are
    // declared below; the MMU is built first with placeholder
    // request wires resolved through registers to avoid
    // combinational cycles between units.
    b.pushScope("mmu");
    auto tlb_sel_r = b.reg("tlb_sel_r", 1, 0);
    b.connect(tlb_sel_r, b.lnot(tlb_sel_r.q));

    auto busy = b.reg("busy", 1, 0);
    auto req_id_r = b.reg("req_id_r", 1, 0);
    auto addr_r = b.reg("addr_r", 8, 0);
    auto lat = b.reg("lat", 2, 0);

    // Backing memory ("system bus always responds", §5.5 step 4).
    std::vector<uint64_t> init;
    for (uint32_t i = 0; i < 256; ++i)
        init.push_back(i + 1);
    auto dram = b.mem("tlb_backing", 32, 256,
                      rtl::MemStyle::Block, std::move(init));
    Value resp_data = b.memReadSync(dram, addr_r.q);

    Value resp_valid = b.land(busy.q, b.eqLit(lat.q, 1));
    b.popScope();  // mmu (reopened below to finish hookup)

    // ---- LSU wait stations -----------------------------------------
    b.pushScope("lsu");
    auto waiting0 = b.reg("waiting0", 1, 0);
    auto waiting1 = b.reg("waiting1", 1, 0);

    // The paper's bug: the ack omits the requester-id check.
    Value ack0_buggy = b.land(resp_valid, b.eqLit(tlb_sel_r.q, 0));
    Value ack1_buggy = b.land(resp_valid, b.eqLit(tlb_sel_r.q, 1));
    Value ack0_fixed = b.land(resp_valid, b.eqLit(req_id_r.q, 0));
    Value ack1_fixed = b.land(resp_valid, b.eqLit(req_id_r.q, 1));
    Value ack0 = config.fixTlbBug ? ack0_fixed : ack0_buggy;
    Value ack1 = config.fixTlbBug ? ack1_fixed : ack1_buggy;
    b.nameNet("ack0", ack0);
    b.nameNet("ack1", ack1);
    b.popScope();  // lsu

    // ---- datapath -----------------------------------------------------
    b.pushScope("datapath");
    auto idx = b.reg("idx", 8, 0);
    auto sum = b.reg("sum", 32, 0);
    auto count = b.reg("count", 8, 0);
    auto wb_pending = b.reg("wb_pending", 1, 0);

    Value done = b.eqLit(count.q, config.elements);

    // Issue a load when idle; a writeback every fourth element.
    Value want_load = b.land(b.lnot(done),
                             b.land(b.lnot(waiting0.q),
                                    b.lnot(wb_pending.q)));
    Value want_store = b.land(wb_pending.q, b.lnot(waiting1.q));

    // Data delivery: ch0's data arrives with its ack.
    Value got_elem = b.land(waiting0.q, ack0);
    b.connect(sum, b.mux(got_elem, b.add(sum.q, resp_data), sum.q));
    b.connect(count, b.mux(got_elem, b.addLit(count.q, 1),
                           count.q));
    // Every 4th delivered element queues a writeback.
    Value queue_wb = b.land(got_elem,
                            b.eqLit(b.slice(count.q, 0, 2), 3));
    b.connect(wb_pending,
              b.mux(queue_wb, b.lit(1, 1),
                    b.mux(b.land(waiting1.q, ack1), b.lit(0, 1),
                          wb_pending.q)));
    b.popScope();  // datapath

    // ---- finish LSU hookup ---------------------------------------------
    b.pushScope("lsu");
    // A channel becomes waiting when the MMU accepts its request.
    Value mmu_free = b.lnot(busy.q);
    Value grant0 = b.land(mmu_free,
                          b.land(want_load,
                                 b.eqLit(tlb_sel_r.q, 0)));
    Value grant1 = b.land(mmu_free,
                          b.land(want_store,
                                 b.land(b.eqLit(tlb_sel_r.q, 1),
                                        b.lnot(grant0))));
    b.connect(waiting0,
              b.mux(grant0, b.lit(1, 1),
                    b.mux(ack0, b.lit(0, 1), waiting0.q)));
    b.connect(waiting1,
              b.mux(grant1, b.lit(1, 1),
                    b.mux(ack1, b.lit(0, 1), waiting1.q)));
    b.popScope();  // lsu

    // idx advances when the load is actually granted.
    b.pushScope("datapath");
    b.connect(idx, b.mux(grant0, b.addLit(idx.q, 1), idx.q));
    b.popScope();

    // ---- finish MMU hookup ------------------------------------------------
    b.pushScope("mmu");
    Value accept = b.lor(grant0, grant1);
    b.connect(busy, b.mux(accept, b.lit(1, 1),
                          b.mux(resp_valid, b.lit(0, 1), busy.q)));
    b.connect(req_id_r, b.mux(accept,
                              b.mux(grant1, b.lit(1, 1),
                                    b.lit(0, 1)),
                              req_id_r.q));
    b.connect(addr_r, b.mux(accept, idx.q, addr_r.q));
    // Variable translation latency (2 or 3 cycles) so ack parity
    // drifts — some elements complete before the bug bites.
    Value start_lat = b.mux(b.bit(idx.q, 2), b.lit(3, 2),
                            b.lit(2, 2));
    b.connect(lat, b.mux(accept, start_lat,
                         b.mux(b.land(busy.q,
                                      b.ne(lat.q, b.lit(0, 2))),
                               b.sub(lat.q, b.lit(1, 2)), lat.q)));
    b.popScope();  // mmu

    // Result interface (decoupled, for pause buffers).
    Value out_ready = b.input("result_ready", 1);
    b.declareIface("result", rtl::IfaceDir::Out, done, out_ready,
                   {sum.q});
    b.popScope();  // accel

    b.output("sum", sum.q);
    b.output("count", b.zext(count.q, 8));
    b.output("done", done);
    return b.finish();
}

} // namespace zoomie::designs
