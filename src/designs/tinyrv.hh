/**
 * @file
 * TinyRV: an executing multicycle RV32I-subset CPU with machine-mode
 * CSRs and precise nested exceptions — the stand-in for the
 * Ariane/CVA6 core in case study 2 (§5.6) and the host of the
 * Figure 8 assertions. Five-state micro-architecture
 * (FETCH/DECODE/EXEC/MEM/WB), a unified BRAM memory, and a LUTRAM
 * register file.
 *
 * Supported: LUI AUIPC JAL JALR branches LW SW OP-IMM OP
 * CSRRW/CSRRS (mstatus/mtvec/mepc/mcause) ECALL MRET. Exceptions:
 * instruction access fault (misaligned or out-of-range fetch),
 * illegal instruction, environment call. A misconfigured mtvec
 * therefore produces the paper's infinite nested-exception loop.
 */

#ifndef ZOOMIE_DESIGNS_TINYRV_HH
#define ZOOMIE_DESIGNS_TINYRV_HH

#include <cstdint>
#include <vector>

#include "rtl/builder.hh"

namespace zoomie::designs {

/** Memory size in words (code must fetch below this * 4). */
constexpr uint32_t kTinyRvMemWords = 4096;

/** Exception causes (mcause values). */
enum class TrapCause : uint32_t {
    InstrAccessFault = 1,
    IllegalInstr = 2,
    EnvCall = 11,
};

/**
 * Build the CPU under scope "cpu/" with its memory preloaded from
 * @p program (word 0 = address 0; the CPU resets to pc 0).
 *
 * Debug-relevant state: cpu/pc, cpu/state, cpu/ir, cpu/mstatus_mie,
 * cpu/mstatus_mpie, cpu/mcause, cpu/mepc, cpu/mtvec, cpu/mem (the
 * unified memory), cpu/rf (register file). Named nets:
 * cpu/exc_taken, cpu/retired.
 *
 * Outputs: "pc", "retired" (instruction-retired pulse), "trap"
 * (exception-taken pulse).
 */
rtl::Design buildTinyRv(const std::vector<uint32_t> &program);

// ---- tiny assembler ---------------------------------------------------

namespace rv {

constexpr uint32_t
rtype(uint32_t f7, uint32_t rs2, uint32_t rs1, uint32_t f3,
      uint32_t rd, uint32_t opc)
{
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
           (rd << 7) | opc;
}

constexpr uint32_t
itype(int32_t imm, uint32_t rs1, uint32_t f3, uint32_t rd,
      uint32_t opc)
{
    return (uint32_t(imm & 0xfff) << 20) | (rs1 << 15) |
           (f3 << 12) | (rd << 7) | opc;
}

constexpr uint32_t addi(uint32_t rd, uint32_t rs1, int32_t imm)
{ return itype(imm, rs1, 0, rd, 0x13); }
constexpr uint32_t andi(uint32_t rd, uint32_t rs1, int32_t imm)
{ return itype(imm, rs1, 7, rd, 0x13); }
constexpr uint32_t xori(uint32_t rd, uint32_t rs1, int32_t imm)
{ return itype(imm, rs1, 4, rd, 0x13); }
constexpr uint32_t slli(uint32_t rd, uint32_t rs1, uint32_t sh)
{ return itype(int32_t(sh), rs1, 1, rd, 0x13); }

constexpr uint32_t add(uint32_t rd, uint32_t rs1, uint32_t rs2)
{ return rtype(0, rs2, rs1, 0, rd, 0x33); }
constexpr uint32_t sub(uint32_t rd, uint32_t rs1, uint32_t rs2)
{ return rtype(0x20, rs2, rs1, 0, rd, 0x33); }
constexpr uint32_t xor_(uint32_t rd, uint32_t rs1, uint32_t rs2)
{ return rtype(0, rs2, rs1, 4, rd, 0x33); }
constexpr uint32_t slt(uint32_t rd, uint32_t rs1, uint32_t rs2)
{ return rtype(0, rs2, rs1, 2, rd, 0x33); }

constexpr uint32_t lui(uint32_t rd, uint32_t imm20)
{ return (imm20 << 12) | (rd << 7) | 0x37; }

constexpr uint32_t lw(uint32_t rd, uint32_t rs1, int32_t imm)
{ return itype(imm, rs1, 2, rd, 0x03); }

constexpr uint32_t
sw(uint32_t rs2, uint32_t rs1, int32_t imm)
{
    uint32_t u = uint32_t(imm & 0xfff);
    return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (2u << 12) |
           ((u & 0x1f) << 7) | 0x23;
}

constexpr uint32_t
branch(uint32_t f3, uint32_t rs1, uint32_t rs2, int32_t offset)
{
    uint32_t u = uint32_t(offset);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) |
           (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
           (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0x63;
}
constexpr uint32_t beq(uint32_t a, uint32_t c, int32_t off)
{ return branch(0, a, c, off); }
constexpr uint32_t bne(uint32_t a, uint32_t c, int32_t off)
{ return branch(1, a, c, off); }
constexpr uint32_t blt(uint32_t a, uint32_t c, int32_t off)
{ return branch(4, a, c, off); }

constexpr uint32_t
jal(uint32_t rd, int32_t offset)
{
    uint32_t u = uint32_t(offset);
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) |
           (((u >> 11) & 1) << 20) | (((u >> 12) & 0xff) << 12) |
           (rd << 7) | 0x6F;
}

constexpr uint32_t jalr(uint32_t rd, uint32_t rs1, int32_t imm)
{ return itype(imm, rs1, 0, rd, 0x67); }

constexpr uint32_t kCsrMstatus = 0x300;
constexpr uint32_t kCsrMtvec = 0x305;
constexpr uint32_t kCsrMepc = 0x341;
constexpr uint32_t kCsrMcause = 0x342;

constexpr uint32_t csrrw(uint32_t rd, uint32_t csr, uint32_t rs1)
{ return itype(int32_t(csr), rs1, 1, rd, 0x73); }
constexpr uint32_t csrrs(uint32_t rd, uint32_t csr, uint32_t rs1)
{ return itype(int32_t(csr), rs1, 2, rd, 0x73); }

constexpr uint32_t ecall() { return 0x73; }
constexpr uint32_t mret() { return 0x30200073; }

} // namespace rv

} // namespace zoomie::designs

#endif // ZOOMIE_DESIGNS_TINYRV_HH
