/**
 * @file
 * Zoomie's host-side debugger. Every operation goes through the
 * honest hardware path: GCAPTURE + frame readback for inspection,
 * frame patching + partial reconfiguration + GRESTORE for state
 * injection — including the controller's own trigger registers, so
 * breakpoints are reconfigured at runtime exactly as §3.4
 * describes. Readback always clears the GSR mask first (§4.7).
 */

#ifndef ZOOMIE_CORE_DEBUGGER_HH
#define ZOOMIE_CORE_DEBUGGER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/instrument.hh"
#include "fpga/device.hh"
#include "jtag/jtag.hh"
#include "toolchain/bitgen.hh"
#include "toolchain/logicloc.hh"

namespace zoomie::core {

/**
 * Why the MUT clock is (or is not) stopped, read back from the
 * debug controller's own registers — the host learns the stop
 * cause the same way it learns everything else: capture + readback.
 */
struct StopInfo
{
    /** One observed watchpoint hit: the change detector's view. */
    struct WatchHit
    {
        unsigned slot;
        std::string signal;
        uint64_t oldValue;
        uint64_t newValue;
    };

    bool paused = false;
    bool hostPauseRequested = false;   ///< host_pause is set
    bool stepDone = false;             ///< step counter expired
    uint64_t assertionsFired = 0;      ///< sticky fired mask
    std::vector<WatchHit> watchHits;   ///< armed detectors that hit
};

/** Host-side debugger bound to a configured device. */
class Debugger
{
  public:
    Debugger(fpga::Device &device, jtag::JtagHost &host,
             const rtl::Design &design,
             const synth::MappedNetlist &netlist,
             const fpga::Placement &placement,
             const InstrumentResult &meta);

    // ---- execution control ---------------------------------------
    /** Request a pause (takes effect at the next MUT cycle). */
    void pause();

    /** Resume execution (clears the pause latch and host request). */
    void resume();

    /**
     * Arm the cycle breakpoint so the MUT executes exactly @p n
     * more cycles, then pauses (gdb 'until'-style stepping).
     */
    void stepCycles(uint64_t n);

    /** Is the MUT currently paused? */
    bool isPaused();

    /**
     * Classify the current stop by reading the controller's trigger
     * registers (pause state, host request, step counter, sticky
     * assertion mask, and each armed change detector). Watch hits
     * are only reported for watched signals that are themselves
     * readable registers; a gated clock keeps the shadow register
     * one value behind, so detector-vs-live comparison identifies
     * the slot that fired.
     */
    StopInfo stopInfo();

    /** Number of instrumented watch/breakpoint slots. */
    size_t watchSlotCount() const { return _meta.watchSignals.size(); }

    /** Does @p name resolve to a placed register? (readRegister on
     *  an unknown name is fatal; front ends validate first.) */
    bool hasRegister(const std::string &name) const
    {
        return _locs.findReg(name) != nullptr;
    }

    /** Does @p name resolve to a placed memory? */
    bool hasMemory(const std::string &name) const
    {
        return _locs.findMem(name) != nullptr;
    }

    // ---- triggers -------------------------------------------------
    /**
     * Configure value-breakpoint slot @p slot (a watch signal from
     * instrumentation) to compare against @p ref_val.
     */
    void setValueBreakpoint(unsigned slot, uint64_t ref_val,
                            bool in_and_group, bool in_or_group);

    /**
     * Watchpoint on slot @p slot: pause the moment the watched
     * signal changes value (§3.4's watchpoints).
     */
    void setWatchpoint(unsigned slot, bool enabled);

    /** Clear every value-breakpoint and watchpoint mask. */
    void clearValueBreakpoints();

    /** Arm/disarm the AND / OR trigger groups. */
    void armTriggers(bool and_group, bool or_group);

    /** Enable or disable assertion breakpoint @p index. */
    void enableAssertion(unsigned index, bool enabled);

    /** Sticky bitmask of assertions that have fired. */
    uint64_t assertionsFired();

    // ---- state inspection / manipulation ---------------------------
    /** Read a register by hierarchical name (capture + readback). */
    uint64_t readRegister(const std::string &name);

    /** Force a register value (frame patch + partial reconfig). */
    void forceRegister(const std::string &name, uint64_t value);

    /** Force several registers in one partial reconfiguration. */
    void forceRegisters(
        const std::vector<std::pair<std::string, uint64_t>> &writes);

    /** Read one word of a memory. */
    uint64_t readMemWord(const std::string &name, uint32_t addr);

    /** Force one word of a memory. */
    void forceMemWord(const std::string &name, uint32_t addr,
                      uint64_t value);

    /** Read every register under a scope prefix (full visibility). */
    std::map<std::string, uint64_t> readAllRegisters(
        const std::string &prefix);

    // ---- snapshots --------------------------------------------------
    /**
     * Capture + read back the full frame image of every SLR,
     * indexed [slr][word]. This is the raw material SnapshotStore
     * diffs against its base image; the capture path is identical
     * to the one readRegister uses (GSR mask cleared first, §4.7).
     */
    std::vector<std::vector<uint32_t>> readbackImage();

    /**
     * Write a set of frame spans back into configuration memory
     * (partial reconfiguration + GRESTORE). Spans may cover any
     * subset of frames — SnapshotStore sends only dirty frames.
     */
    void writeFrames(const std::vector<toolchain::FrameSpan> &spans);

    // ---- readback measurement (Table 3) ------------------------------
    /**
     * Scan state frames of one SLR and return the modeled seconds
     * it took. Optimized mode scans only the frames overlapping the
     * MUT's placed region (§4.7); naive mode scans the whole SLR.
     */
    double scanSlrState(uint32_t slr, bool optimized);

    const InstrumentResult &meta() const { return _meta; }
    const toolchain::LogicLocations &locations() const
    {
        return _locs;
    }

  private:
    uint32_t hopOf(uint32_t slr) const;
    void clearMaskAndCapture(const std::vector<uint32_t> &slrs);
    std::vector<uint32_t> readFrame(uint32_t slr, uint32_t frame);
    uint64_t decodeBits(const std::vector<fpga::BitLoc> &bits);

    fpga::Device &_device;
    jtag::JtagHost &_host;
    const rtl::Design &_design;
    const synth::MappedNetlist &_netlist;
    const fpga::Placement &_placement;
    const InstrumentResult &_meta;
    toolchain::LogicLocations _locs;
};

} // namespace zoomie::core

#endif // ZOOMIE_CORE_DEBUGGER_HH
