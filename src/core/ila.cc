#include "ila.hh"

#include "common/bits.hh"
#include "common/logging.hh"
#include "core/debugger.hh"
#include "rtl/builder.hh"

namespace zoomie::core {

using rtl::Builder;
using rtl::Value;

IlaResult
attachIla(const rtl::Design &design, const IlaOptions &options)
{
    panic_if(options.probes.empty(), "ILA needs at least one probe");
    panic_if(options.postTrigger >= options.depth,
             "post-trigger window exceeds buffer depth");
    IlaResult result;
    Builder b(design);

    b.pushScope("ila");

    // Concatenate the probes into one sample word (probe 0 ends up
    // in the low bits).
    Value sample;
    bool first = true;
    for (auto it = options.probes.rbegin();
         it != options.probes.rend(); ++it) {
        rtl::NetId net = b.peek().findNet(*it);
        Value v;
        if (net != rtl::kNoNet) {
            v = b.handleFor(net);
        } else {
            int reg = b.peek().findReg(*it);
            fatal_if(reg < 0, "ILA: unknown probe '", *it, "'");
            v = b.handleFor(b.peek().regs[reg].q);
        }
        sample = first ? v : b.concat(sample, v);
        first = false;
    }
    unsigned offset = 0;
    for (const std::string &probe : options.probes) {
        rtl::NetId net = design.findNet(probe);
        unsigned width = net != rtl::kNoNet
            ? design.nodes[net].width
            : design.regs[design.findReg(probe)].width;
        result.probes.push_back(probe);
        result.probeWidths.push_back(width);
        result.probeOffsets.push_back(offset);
        offset += width;
    }
    result.sampleWidth = offset;
    fatal_if(offset > 64, "ILA sample wider than 64 bits");

    // Control registers (host writes them by state injection, as
    // Vivado's hw_ila does through JTAG).
    auto trig_ref = b.reg("trig_ref",
                          result.probeWidths[0], 0);
    b.connect(trig_ref, trig_ref.q);
    auto armed = b.reg("armed", 1, 0);
    auto done = b.reg("done", 1, 0);
    auto post = b.reg("post", 16, 0);
    auto wr = b.reg("wr", 16, 0);

    Value probe0 = b.slice(sample, 0, result.probeWidths[0]);
    Value hit = b.land(armed.q, b.eq(probe0, trig_ref.q));
    Value capturing = b.land(armed.q, b.lnot(done.q));

    // Ring buffer in BRAM.
    auto buf = b.mem("buf", result.sampleWidth, options.depth,
                     rtl::MemStyle::Block);
    const unsigned abits = bitsToAddress(options.depth);
    b.memWrite(buf, b.slice(wr.q, 0, abits),
               b.zext(sample, result.sampleWidth), capturing);
    b.connect(wr, b.mux(capturing, b.addLit(wr.q, 1), wr.q));

    // Post-trigger countdown; capture stops when it expires.
    Value counting = b.ne(post.q, b.lit(0, 16));
    b.connect(post,
              b.mux(b.land(hit, b.lnot(counting)),
                    b.lit(options.postTrigger, 16),
                    b.mux(b.land(capturing, counting),
                          b.sub(post.q, b.lit(1, 16)), post.q)));
    b.connect(done,
              b.lor(done.q,
                    b.land(counting, b.eqLit(post.q, 1))));
    b.connect(armed, armed.q);
    b.popScope();

    result.depth = options.depth;
    result.design = b.finish();
    return result;
}

void
ilaArm(Debugger &debugger, uint64_t trigger_value)
{
    debugger.forceRegisters({{"ila/trig_ref", trigger_value},
                             {"ila/done", 0},
                             {"ila/post", 0},
                             {"ila/wr", 0},
                             {"ila/armed", 1}});
}

IlaCapture
ilaReadCapture(Debugger &debugger, const IlaResult &meta)
{
    IlaCapture capture;
    capture.triggered = debugger.readRegister("ila/done") != 0;
    uint64_t wr = debugger.readRegister("ila/wr");

    // Oldest sample first: the ring starts at wr (mod depth) once
    // the buffer has wrapped.
    for (uint32_t i = 0; i < meta.depth; ++i) {
        uint32_t addr =
            static_cast<uint32_t>((wr + i) % meta.depth);
        uint64_t word = debugger.readMemWord("ila/buf", addr);
        std::vector<uint64_t> sample;
        for (size_t p = 0; p < meta.probes.size(); ++p) {
            sample.push_back(extractBits(word, meta.probeOffsets[p],
                                         meta.probeWidths[p]));
        }
        capture.samples.push_back(std::move(sample));
    }
    return capture;
}

} // namespace zoomie::core
