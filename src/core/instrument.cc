#include "instrument.hh"

#include "common/logging.hh"
#include "core/pause_buffer.hh"
#include "rtl/builder.hh"

namespace zoomie::core {

using rtl::Builder;
using rtl::Value;

namespace {

/** Resolve a user signal name to a net (named net or register q). */
Value
resolveSignal(Builder &b, const std::string &name)
{
    const rtl::Design &d = b.peek();
    rtl::NetId net = d.findNet(name);
    if (net != rtl::kNoNet)
        return b.handleFor(net);
    int reg = d.findReg(name);
    if (reg >= 0)
        return b.handleFor(d.regs[reg].q);
    fatal("Zoomie: unknown signal '", name,
          "' (name a net via nameNet() or use a register name)");
}

} // namespace

InstrumentResult
instrument(const rtl::Design &design, const InstrumentOptions &options)
{
    InstrumentResult result;
    result.mutPrefix = options.mutPrefix;

    Builder b(design);
    uint8_t gated = b.addClock("zoomie_gated");
    result.gatedClock = gated;
    result.reclockedState = b.reclockScope(options.mutPrefix, gated);
    fatal_if(result.reclockedState == 0 && !options.mutPrefix.empty(),
             "Zoomie: no state found under MUT prefix '",
             options.mutPrefix, "'");

    // ---- trigger unit (Algorithm 1) ------------------------------
    b.pushScope("zoomie");

    auto configReg = [&](const std::string &name, unsigned width,
                         uint64_t init = 0) {
        auto r = b.reg(name, width, init);
        b.connect(r, r.q);  // holds; written via state injection
        return r;
    };

    auto host_pause = configReg("host_pause", 1);
    auto and_sel = configReg("and_sel", 1);
    auto or_sel = configReg("or_sel", 1);

    // Value breakpoints.
    Value one = b.lit(1, 1);
    Value zero = b.lit(0, 1);
    Value and_stop = one;
    Value any_and_mask = zero;
    Value or_stop = zero;
    Value watch_stop = zero;
    for (size_t i = 0; i < options.watchSignals.size(); ++i) {
        Value sig = resolveSignal(b, options.watchSignals[i]);
        result.watchSignals.push_back(options.watchSignals[i]);
        result.watchWidths.push_back(sig.width);
        auto ref = configReg("bp" + std::to_string(i) + "_ref",
                             sig.width);
        auto mask_and = configReg("bp" + std::to_string(i) + "_and",
                                  1);
        auto mask_or = configReg("bp" + std::to_string(i) + "_or", 1);
        Value eq = b.eq(sig, ref.q);
        // A signal not selected by the and-mask is neutral (the
        // paper's Algorithm 1 gates it with the mask; we use the
        // neutral form so partially-masked AND groups make sense).
        and_stop = b.land(and_stop, b.lor(eq, b.lnot(mask_and.q)));
        any_and_mask = b.lor(any_and_mask, mask_and.q);
        or_stop = b.lor(or_stop, b.land(eq, mask_or.q));

        // Watchpoint: pause when the signal *changes* (sampled on
        // the gated clock so the comparison is in MUT time).
        auto mask_chg = configReg("bp" + std::to_string(i) + "_chg",
                                  1);
        auto prev = b.reg("bp" + std::to_string(i) + "_prev",
                          sig.width, 0, gated);
        b.connect(prev, sig);
        Value changed = b.ne(sig, prev.q);
        watch_stop = b.lor(watch_stop,
                           b.land(changed, mask_chg.q));
    }
    and_stop = b.land(and_stop, any_and_mask);

    // Cycle breakpoint / single stepping (§3.4): a 64-bit counter
    // of remaining cycles; the design pauses when it reaches one.
    auto step_armed = configReg("step_armed", 1);
    auto step_count = b.reg("step_count", 64);
    Value step_hit = b.land(step_armed.q,
                            b.eq(step_count.q, b.lit(1, 64)));

    // ---- assertion breakpoints -----------------------------------
    std::vector<Value> assert_fails;
    for (size_t i = 0; i < options.assertions.size(); ++i) {
        AssertionInfo info;
        info.text = options.assertions[i];
        auto outcome = sva::compileAssertion(info.text);
        info.name = outcome.ok && !outcome.prop.ast.name.empty()
            ? outcome.prop.ast.name
            : "assert" + std::to_string(i);
        if (!outcome.ok) {
            info.error = outcome.error;
            result.assertions.push_back(std::move(info));
            continue;
        }
        b.pushScope("sva" + std::to_string(i));
        Value fail = sva::buildMonitor(
            b, outcome.prop,
            [&](const std::string &name) {
                return resolveSignal(b, name);
            },
            gated, &info.stats);
        b.popScope();
        info.synthesizable = true;
        assert_fails.push_back(fail);
        result.assertions.push_back(std::move(info));
    }

    Value assert_pulse = zero;
    if (!assert_fails.empty()) {
        unsigned n = static_cast<unsigned>(assert_fails.size());
        auto assert_en = configReg("assert_en", n,
                                   (n == 64 ? ~0ULL
                                            : (1ULL << n) - 1));
        // Sticky on the free-running clock: the gated domain stops
        // in the violation cycle, so the record must latch outside
        // it (the fail condition holds while frozen).
        auto fired = b.reg("assert_fired", n, 0);
        Value gated_fails = zero;
        Value fired_next = fired.q;
        for (unsigned i = 0; i < n; ++i) {
            Value en = b.bit(assert_en.q, i);
            Value hit = b.land(assert_fails[i], en);
            gated_fails = b.lor(gated_fails, hit);
            // Sticky record of which assertion fired.
            Value bit_mask = b.lit(1ULL << i, n);
            fired_next = b.mux(hit, b.bor(fired_next, bit_mask),
                               fired_next);
        }
        b.connect(fired, fired_next);
        assert_pulse = gated_fails;
    }

    // ---- pause control -------------------------------------------
    Value stop_now = b.lor(
        b.lor(b.lor(b.land(and_stop, and_sel.q),
                    b.land(or_stop, or_sel.q)),
              watch_stop),
        b.lor(step_hit, b.lor(assert_pulse, host_pause.q)));
    b.nameNet("stop_now", stop_now);

    auto pause_state = b.reg("pause_state", 1);
    b.connect(pause_state, b.lor(pause_state.q, stop_now));

    Value clk_en = b.lnot(b.lor(stop_now, pause_state.q));
    b.nameNet("clk_en", clk_en);

    // The step counter decrements once per executed MUT cycle.
    b.connect(step_count, b.sub(step_count.q, b.lit(1, 64)));
    b.enable(step_count, b.land(step_armed.q, clk_en));

    b.popScope();
    b.output("zoomie/clk_en", clk_en);
    b.output("zoomie/paused", pause_state.q);

    // ---- pause buffers -------------------------------------------
    if (options.insertPauseBuffers && !options.mutPrefix.empty()) {
        Value pause = b.lnot(clk_en);
        const rtl::Design &d = b.peek();
        // Snapshot the interface list: buffers add no new ifaces.
        std::vector<rtl::DecoupledIface> ifaces = d.ifaces;
        uint32_t index = 0;
        for (const auto &iface : ifaces) {
            bool under = iface.scope.size() >=
                             options.mutPrefix.size() &&
                         iface.scope.compare(
                             0, options.mutPrefix.size(),
                             options.mutPrefix) == 0;
            if (!under)
                continue;

            // Concatenate the payload nets (MSB-first) into one
            // buffered word.
            Value data;
            bool first = true;
            unsigned total = 0;
            for (rtl::NetId net : iface.payload) {
                Value v = b.handleFor(net);
                total += v.width;
                data = first ? v : b.concat(data, v);
                first = false;
            }
            fatal_if(total > 64,
                     "pause buffer payload wider than 64 bits on '",
                     iface.name, "'");

            const bool producer_paused =
                iface.dir == rtl::IfaceDir::Out;
            std::string scope = "zoomie_pbuf" + std::to_string(index);
            b.pushScope(scope);
            PauseBufferPorts ports = buildPauseBuffer(
                b, b.handleFor(iface.valid), data,
                b.handleFor(iface.ready), pause, producer_paused);
            b.popScope();

            // Rewire the paused side's consumers onto the buffer.
            const std::string buf_prefix = scope + "/";
            auto insideMut = [&](const std::string &s) {
                return s.size() >= options.mutPrefix.size() &&
                       s.compare(0, options.mutPrefix.size(),
                                 options.mutPrefix) == 0;
            };
            auto outsideMut = [&](const std::string &s) {
                if (insideMut(s))
                    return false;
                // The debug controller (and every pause buffer)
                // observes the *raw* design signals — routing its
                // monitors through a buffer whose gating depends on
                // the trigger output would be a combinational loop.
                if (s.rfind("zoomie", 0) == 0)
                    return false;
                return s.compare(0, buf_prefix.size(), buf_prefix) !=
                       0;
            };
            (void)buf_prefix;

            auto rewirePayload = [&](bool to_inside) {
                unsigned hi = total;
                for (rtl::NetId net : iface.payload) {
                    Value v = b.handleFor(net);
                    hi -= v.width;
                    Value piece =
                        b.slice(ports.consumerData, hi, v.width);
                    b.rewireConsumers(
                        net, piece.id,
                        to_inside
                            ? std::function<bool(
                                  const std::string &)>(insideMut)
                            : std::function<bool(
                                  const std::string &)>(outsideMut));
                }
            };

            if (iface.dir == rtl::IfaceDir::In) {
                // Producer outside, consumer (MUT) paused.
                b.rewireConsumers(iface.valid, ports.consumerValid.id,
                                  insideMut);
                rewirePayload(true);
                b.rewireConsumers(iface.ready,
                                  ports.producerReady.id, outsideMut);
            } else {
                // Producer (MUT) paused, consumer outside.
                b.rewireConsumers(iface.valid, ports.consumerValid.id,
                                  outsideMut);
                rewirePayload(false);
                b.rewireConsumers(iface.ready,
                                  ports.producerReady.id, insideMut);
            }
            ++result.pauseBuffersInserted;
            ++index;
        }
    }

    result.design = b.finish();
    return result;
}

} // namespace zoomie::core
