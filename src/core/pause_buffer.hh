/**
 * @file
 * Pause buffers (§3.1): formally verified interposers for decoupled
 * (valid/ready) interfaces that make pausing the module under test
 * safe. They guarantee:
 *
 *  1. a transaction initiated while the responder is paused is held
 *     and delivered after resume;
 *  2. a transaction in flight at the pause cycle is restarted for
 *     the paused side after resume;
 *  3. no added latency when there is no pending transaction
 *     (pass-through when empty and unpaused).
 *
 * The buffer always runs on the free-running (ungated) clock; the
 * `pause` input mirrors the MUT clock gate. Verification: the test
 * suite model-checks the golden model exhaustively over bounded
 * input sequences and differentially checks the RTL against it.
 */

#ifndef ZOOMIE_CORE_PAUSE_BUFFER_HH
#define ZOOMIE_CORE_PAUSE_BUFFER_HH

#include <cstdint>

#include "rtl/builder.hh"

namespace zoomie::core {

/** Nets of one interposed interface after insertion. */
struct PauseBufferPorts
{
    rtl::Value producerReady;  ///< ready presented to the producer
    rtl::Value consumerValid;  ///< valid presented to the consumer
    rtl::Value consumerData;   ///< payload presented to the consumer
};

/**
 * Emit a pause buffer into @p builder (under the current scope).
 *
 * The producer side is (in_valid, in_data) with the returned
 * producerReady completing the handshake; the consumer side is the
 * returned (consumerValid, consumerData) with @p consumer_ready
 * completing it. @p pause freezes whichever side is the MUT — the
 * buffer itself never pauses.
 *
 * @param producer_paused  true if the producer is inside the MUT
 *                         (its outputs freeze under pause)
 */
PauseBufferPorts buildPauseBuffer(rtl::Builder &builder,
                                  rtl::Value in_valid,
                                  rtl::Value in_data,
                                  rtl::Value consumer_ready,
                                  rtl::Value pause,
                                  bool producer_paused,
                                  uint8_t clock = 0);

/**
 * Golden reference model of the pause buffer, used for exhaustive
 * bounded model checking in the tests and as executable
 * documentation of the intended behaviour.
 */
class PauseBufferModel
{
  public:
    struct Outputs
    {
        bool producerReady = false;
        bool consumerValid = false;
        uint64_t consumerData = 0;
    };

    explicit PauseBufferModel(bool producer_paused)
        : _producerPaused(producer_paused) {}

    /** Combinational outputs for the current inputs. */
    Outputs outputs(bool in_valid, uint64_t in_data,
                    bool consumer_ready, bool pause) const;

    /** Advance one clock edge. */
    void step(bool in_valid, uint64_t in_data, bool consumer_ready,
              bool pause);

    bool full() const { return _full; }

  private:
    bool _producerPaused;
    bool _full = false;
    uint64_t _data = 0;
};

} // namespace zoomie::core

#endif // ZOOMIE_CORE_PAUSE_BUFFER_HH
