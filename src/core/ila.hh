/**
 * @file
 * A traditional Integrated Logic Analyzer — the baseline debugging
 * instrument Zoomie is compared against (§2.1, Figure 1). The ILA
 * is everything the paper criticizes, implemented faithfully:
 *
 *  - the probe list is fixed at compile time: observing different
 *    signals means re-instrumenting and recompiling the design;
 *  - it only records a bounded window of samples into a BRAM ring
 *    buffer around a trigger (print-style debugging);
 *  - it observes without being able to pause or mutate the design.
 *
 * Host access goes through the same configuration-plane readback the
 * rest of the platform uses (capture + BRAM frame reads).
 */

#ifndef ZOOMIE_CORE_ILA_HH
#define ZOOMIE_CORE_ILA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/device.hh"
#include "jtag/jtag.hh"
#include "toolchain/logicloc.hh"

namespace zoomie::core {

/** ILA insertion request. */
struct IlaOptions
{
    /** Probed signals (net or register names) — fixed at compile. */
    std::vector<std::string> probes;
    /** Ring-buffer depth (samples). */
    uint32_t depth = 64;
    /** Samples recorded after the trigger fires. */
    uint32_t postTrigger = 32;
};

/** Result of inserting an ILA. */
struct IlaResult
{
    rtl::Design design;
    std::vector<std::string> probes;
    std::vector<unsigned> probeWidths;
    std::vector<unsigned> probeOffsets;  ///< bit offset in a sample
    unsigned sampleWidth = 0;
    uint32_t depth = 0;
};

/**
 * Attach an ILA to @p design. Control state (all under "ila/"):
 * trig_ref (compared against probe 0), armed, done, wr.
 * The capture buffer is the memory "ila/buf".
 */
IlaResult attachIla(const rtl::Design &design,
                    const IlaOptions &options);

/** One decoded capture. */
struct IlaCapture
{
    bool triggered = false;
    /** Oldest-first samples; sample[i][p] = value of probe p. */
    std::vector<std::vector<uint64_t>> samples;
};

/**
 * Host side: arm the ILA with a trigger value, by state injection.
 */
void ilaArm(class Debugger &debugger, uint64_t trigger_value);

/**
 * Read out and decode the capture buffer once `ila/done` is set.
 */
IlaCapture ilaReadCapture(class Debugger &debugger,
                          const IlaResult &meta);

} // namespace zoomie::core

#endif // ZOOMIE_CORE_ILA_HH
