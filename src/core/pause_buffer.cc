#include "pause_buffer.hh"

namespace zoomie::core {

using rtl::Builder;
using rtl::Value;

PauseBufferPorts
buildPauseBuffer(Builder &b, Value in_valid, Value in_data,
                 Value consumer_ready, Value pause,
                 bool producer_paused, uint8_t clock)
{
    Value run = b.lnot(pause);
    Value one = b.lit(1, 1);
    // Gates: the paused side's handshakes only count on cycles the
    // MUT actually executes.
    Value gp = producer_paused ? run : one;
    Value gc = producer_paused ? one : run;

    auto full = b.reg("full", 1, 0, clock);
    auto data = b.reg("data", in_data.width, 0, clock);

    Value consumer_valid =
        b.land(gc, b.lor(full.q, b.land(in_valid, gp)));
    Value consumer_data = b.mux(full.q, data.q, in_data);
    Value producer_ready = b.lnot(full.q);

    Value fire_in = b.land(in_valid, b.land(producer_ready, gp));
    Value fire_out = b.land(consumer_valid, consumer_ready);

    Value next_full = b.mux(full.q, b.lnot(fire_out),
                            b.land(fire_in, b.lnot(fire_out)));
    b.connect(full, next_full);
    b.connect(data, b.mux(b.land(fire_in, b.lnot(fire_out)),
                          in_data, data.q));

    b.nameNet("pb_full", full.q);
    return {producer_ready, consumer_valid, consumer_data};
}

PauseBufferModel::Outputs
PauseBufferModel::outputs(bool in_valid, uint64_t in_data,
                          bool consumer_ready, bool pause) const
{
    (void)consumer_ready;
    const bool gp = _producerPaused ? !pause : true;
    const bool gc = _producerPaused ? true : !pause;
    Outputs out;
    out.consumerValid = gc && (_full || (in_valid && gp));
    out.consumerData = _full ? _data : in_data;
    out.producerReady = !_full;
    return out;
}

void
PauseBufferModel::step(bool in_valid, uint64_t in_data,
                       bool consumer_ready, bool pause)
{
    const bool gp = _producerPaused ? !pause : true;
    Outputs out = outputs(in_valid, in_data, consumer_ready, pause);
    const bool fire_in = in_valid && out.producerReady && gp;
    const bool fire_out = out.consumerValid && consumer_ready;
    if (_full) {
        _full = !fire_out;
    } else {
        if (fire_in && !fire_out) {
            _full = true;
            _data = in_data;
        }
    }
}

} // namespace zoomie::core
