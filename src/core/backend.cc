#include "backend.hh"

#include <algorithm>
#include <stdexcept>

#include "common/bits.hh"
#include "common/logging.hh"
#include "jit/jitsim.hh"
#include "sim/simulator.hh"

namespace zoomie::core {

// ---- FabricBackend ----------------------------------------------------

std::unique_ptr<FabricBackend>
FabricBackend::create(const rtl::Design &user_design,
                      PlatformOptions options)
{
    auto platform =
        Platform::create(user_design, std::move(options));
    auto backend =
        std::make_unique<FabricBackend>(*platform);
    backend->_owned = std::move(platform);
    backend->_platform = backend->_owned.get();
    return backend;
}

uint64_t
FabricBackend::mutCycles() const
{
    return _platform->mutCycles();
}

void
FabricBackend::setMutCycles(uint64_t n)
{
    _platform->device().setCycles(
        _platform->instrumented().gatedClock, n);
}

std::vector<std::string>
FabricBackend::inputPorts() const
{
    return _platform->device().inputPorts();
}

uint64_t
FabricBackend::peekInput(const std::string &port) const
{
    return _platform->device().peekInput(port);
}

size_t
FabricBackend::watchSlotCount() const
{
    return _platform->instrumented().watchSignals.size();
}

bool
FabricBackend::hasRegister(const std::string &name) const
{
    return _platform->debugger().hasRegister(name);
}

bool
FabricBackend::hasMemory(const std::string &name) const
{
    return _platform->debugger().hasMemory(name);
}

uint32_t
FabricBackend::memoryDepth(const std::string &name) const
{
    const toolchain::MemLocation *mem =
        _platform->debugger().locations().findMem(name);
    return mem ? mem->depth : 0;
}

uint32_t
FabricBackend::numSlrs() const
{
    return _platform->device().spec().numSlrs;
}

uint32_t
FabricBackend::framesPerSlr() const
{
    return _platform->device().spec().framesPerSlr();
}

// ---- SimBackend -------------------------------------------------------

std::unique_ptr<SimBackend>
SimBackend::create(const rtl::Design &user_design,
                   PlatformOptions options,
                   const std::string &engine_kind)
{
    std::unique_ptr<SimBackend> backend(new SimBackend());
    backend->_meta = instrument(user_design, options.instrument);
    if (engine_kind == "jit") {
        backend->_sim =
            std::make_unique<jit::JitSim>(backend->_meta.design);
    } else {
        backend->_sim =
            std::make_unique<sim::Simulator>(backend->_meta.design);
    }

    // Pseudo-frame geometry: every state word (register, sync read
    // latch, memory word) as two uint32s, padded to whole frames on
    // one pseudo-SLR. The SnapshotStore never interprets frames —
    // only diffs, hashes and restores them — so this encoding gets
    // content-addressed deltas and time travel for free.
    const rtl::Design &design = backend->_meta.design;
    uint64_t words = design.regs.size();
    words += backend->_sim->syncLatchCount();
    for (const rtl::Mem &mem : design.mems)
        words += mem.depth;
    backend->_stateWords = uint32_t(words);
    backend->_frames = uint32_t(
        (words * 2 + fpga::kFrameWords - 1) / fpga::kFrameWords);
    if (backend->_frames == 0)
        backend->_frames = 1;

    for (const rtl::InputPort &in : design.inputs)
        backend->_inputs.emplace_back(in.name, 0);
    return backend;
}

void
SimBackend::run(uint64_t n)
{
    // Mirror fpga::Device::stepGlobal: evaluate, sample the clock
    // gate, then step every enabled domain *simultaneously* from
    // the same pre-edge values. Only the gated domain has a gate;
    // everything else free-runs.
    const size_t domains = _meta.design.clocks.size();
    std::vector<uint8_t> enabled;
    enabled.reserve(domains);
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t gate = _sim->peek("zoomie/clk_en");
        enabled.clear();
        for (size_t d = 0; d < domains; ++d) {
            if (uint8_t(d) != _meta.gatedClock || gate)
                enabled.push_back(uint8_t(d));
        }
        _sim->stepDomains(enabled);
    }
}

void
SimBackend::poke(const std::string &port, uint64_t value)
{
    _sim->poke(port, value);
    for (auto &[name, cur] : _inputs) {
        if (name == port) {
            cur = value;
            return;
        }
    }
}

std::vector<std::string>
SimBackend::inputPorts() const
{
    std::vector<std::string> out;
    for (const auto &[name, value] : _inputs)
        out.push_back(name);
    return out;
}

uint64_t
SimBackend::peekInput(const std::string &port) const
{
    for (const auto &[name, value] : _inputs) {
        if (name == port)
            return value;
    }
    panic("unknown input port '", port, "'");
}

void
SimBackend::pause()
{
    forceRegister(ControlRegs::hostPause, 1);
}

void
SimBackend::resume()
{
    forceRegisters({{ControlRegs::hostPause, 0},
                    {ControlRegs::stepArmed, 0},
                    {ControlRegs::pauseState, 0}});
}

void
SimBackend::stepCycles(uint64_t n)
{
    // Preload n + 1: the counter pauses the design at 1, exactly
    // like the fabric debugger's step (§3.4).
    forceRegisters({{ControlRegs::stepCount, n + 1},
                    {ControlRegs::stepArmed, 1},
                    {ControlRegs::hostPause, 0},
                    {ControlRegs::pauseState, 0}});
}

bool
SimBackend::isPaused()
{
    return readRegister(ControlRegs::pauseState) != 0;
}

StopInfo
SimBackend::stopInfo()
{
    // Same classification as Debugger::stopInfo, reading the same
    // controller registers — by interpretation instead of capture
    // + readback.
    StopInfo info;
    info.paused = isPaused();
    info.hostPauseRequested =
        readRegister(ControlRegs::hostPause) != 0;
    if (readRegister(ControlRegs::stepArmed) != 0)
        info.stepDone = readRegister(ControlRegs::stepCount) <= 1;
    info.assertionsFired = assertionsFired();
    for (unsigned slot = 0; slot < _meta.watchSignals.size();
         ++slot) {
        if (readRegister(ControlRegs::bpChg(slot)) == 0)
            continue;
        const std::string &watched = _meta.watchSignals[slot];
        if (!hasRegister(watched))
            continue;  // watched wire: live value not readable
        uint64_t prev = readRegister(ControlRegs::bpPrev(slot));
        uint64_t cur = readRegister(watched);
        if (cur != prev)
            info.watchHits.push_back({slot, watched, prev, cur});
    }
    return info;
}

void
SimBackend::setValueBreakpoint(unsigned slot, uint64_t ref_val,
                               bool in_and_group, bool in_or_group)
{
    fatal_if(slot >= _meta.watchSignals.size(),
             "Zoomie: breakpoint slot ", slot, " not instrumented");
    forceRegisters({{ControlRegs::bpRef(slot), ref_val},
                    {ControlRegs::bpAnd(slot),
                     in_and_group ? 1u : 0u},
                    {ControlRegs::bpOr(slot),
                     in_or_group ? 1u : 0u}});
}

void
SimBackend::setWatchpoint(unsigned slot, bool enabled)
{
    fatal_if(slot >= _meta.watchSignals.size(),
             "Zoomie: watchpoint slot ", slot, " not instrumented");
    std::vector<std::pair<std::string, uint64_t>> writes;
    if (enabled) {
        const std::string &watched = _meta.watchSignals[slot];
        uint64_t baseline =
            hasRegister(watched)
                ? readRegister(watched)
                : readRegister(ControlRegs::bpPrev(slot));
        writes.emplace_back(ControlRegs::bpPrev(slot), baseline);
    }
    writes.emplace_back(ControlRegs::bpChg(slot), enabled ? 1 : 0);
    forceRegisters(writes);
}

void
SimBackend::clearValueBreakpoints()
{
    std::vector<std::pair<std::string, uint64_t>> writes;
    for (unsigned i = 0; i < _meta.watchSignals.size(); ++i) {
        writes.emplace_back(ControlRegs::bpAnd(i), 0);
        writes.emplace_back(ControlRegs::bpOr(i), 0);
        writes.emplace_back(ControlRegs::bpChg(i), 0);
    }
    writes.emplace_back(ControlRegs::andSel, 0);
    writes.emplace_back(ControlRegs::orSel, 0);
    forceRegisters(writes);
}

void
SimBackend::armTriggers(bool and_group, bool or_group)
{
    forceRegisters({{ControlRegs::andSel, and_group ? 1u : 0u},
                    {ControlRegs::orSel, or_group ? 1u : 0u}});
}

void
SimBackend::enableAssertion(unsigned index, bool enabled)
{
    uint64_t mask = readRegister(ControlRegs::assertEn);
    mask = setBit(mask, index, enabled);
    forceRegister(ControlRegs::assertEn, mask);
}

uint64_t
SimBackend::assertionsFired()
{
    if (!hasRegister(ControlRegs::assertFired))
        return 0;
    return readRegister(ControlRegs::assertFired);
}

bool
SimBackend::hasRegister(const std::string &name) const
{
    return _meta.design.findReg(name) >= 0;
}

int
SimBackend::findMem(const std::string &name) const
{
    const auto &mems = _meta.design.mems;
    for (size_t m = 0; m < mems.size(); ++m) {
        if (mems[m].name == name)
            return int(m);
    }
    return -1;
}

bool
SimBackend::hasMemory(const std::string &name) const
{
    return findMem(name) >= 0;
}

uint32_t
SimBackend::memoryDepth(const std::string &name) const
{
    int mem = findMem(name);
    return mem < 0 ? 0 : _meta.design.mems[mem].depth;
}

uint64_t
SimBackend::readRegister(const std::string &name)
{
    return _sim->regByName(name);
}

void
SimBackend::forceRegister(const std::string &name, uint64_t value)
{
    _sim->forceRegByName(name, value);
}

void
SimBackend::forceRegisters(
    const std::vector<std::pair<std::string, uint64_t>> &writes)
{
    for (const auto &[name, value] : writes)
        _sim->forceRegByName(name, value);
}

uint64_t
SimBackend::readMemWord(const std::string &name, uint32_t addr)
{
    int mem = findMem(name);
    fatal_if(mem < 0, "Zoomie: unknown memory '", name, "'");
    return _sim->memWord(uint32_t(mem), addr);
}

void
SimBackend::forceMemWord(const std::string &name, uint32_t addr,
                         uint64_t value)
{
    int mem = findMem(name);
    fatal_if(mem < 0, "Zoomie: unknown memory '", name, "'");
    _sim->forceMemWord(uint32_t(mem), addr, value);
}

std::map<std::string, uint64_t>
SimBackend::readAllRegisters(const std::string &prefix)
{
    std::map<std::string, uint64_t> out;
    const auto &regs = _meta.design.regs;
    for (uint32_t i = 0; i < regs.size(); ++i) {
        if (regs[i].name.compare(0, prefix.size(), prefix) != 0)
            continue;
        out[regs[i].name] = _sim->regValue(i);
    }
    return out;
}

// ---- pseudo-frame state encoding --------------------------------------

std::vector<uint32_t>
SimBackend::encodeState()
{
    std::vector<uint32_t> flat;
    flat.reserve(size_t(_frames) * fpga::kFrameWords);
    auto push64 = [&flat](uint64_t value) {
        flat.push_back(uint32_t(value));
        flat.push_back(uint32_t(value >> 32));
    };
    const rtl::Design &design = _meta.design;
    for (uint32_t i = 0; i < design.regs.size(); ++i)
        push64(_sim->regValue(i));
    for (size_t i = 0; i < _sim->syncLatchCount(); ++i)
        push64(_sim->syncLatchValue(i));
    for (uint32_t m = 0; m < design.mems.size(); ++m) {
        for (uint32_t a = 0; a < design.mems[m].depth; ++a)
            push64(_sim->memWord(m, a));
    }
    flat.resize(size_t(_frames) * fpga::kFrameWords, 0);
    return flat;
}

void
SimBackend::decodeState(const std::vector<uint32_t> &flat)
{
    size_t at = 0;
    auto pull64 = [&flat, &at]() {
        uint64_t lo = flat[at++];
        uint64_t hi = flat[at++];
        return lo | (hi << 32);
    };
    const rtl::Design &design = _meta.design;
    for (uint32_t i = 0; i < design.regs.size(); ++i)
        _sim->forceReg(i, pull64());
    for (size_t i = 0; i < _sim->syncLatchCount(); ++i)
        _sim->setSyncLatchValue(i, pull64());
    for (uint32_t m = 0; m < design.mems.size(); ++m) {
        for (uint32_t a = 0; a < design.mems[m].depth; ++a)
            _sim->forceMemWord(m, a, pull64());
    }
}

std::vector<std::vector<uint32_t>>
SimBackend::readbackImage()
{
    return {encodeState()};
}

void
SimBackend::writeFrames(
    const std::vector<toolchain::FrameSpan> &spans)
{
    std::vector<uint32_t> flat = encodeState();
    for (const toolchain::FrameSpan &span : spans) {
        panic_if(span.slr != 0,
                 "sim backend has one pseudo-SLR");
        size_t at = size_t(span.farStart) * fpga::kFrameWords;
        panic_if(at + span.words.size() > flat.size(),
                 "frame span past the state image");
        std::copy(span.words.begin(), span.words.end(),
                  flat.begin() + at);
    }
    decodeState(flat);
}

// ---- factory ----------------------------------------------------------

std::unique_ptr<Backend>
makeBackend(const std::string &kind,
            const rtl::Design &user_design, PlatformOptions options)
{
    if (kind == "fabric")
        return FabricBackend::create(user_design,
                                     std::move(options));
    if (kind == "sim" || kind == "jit")
        return SimBackend::create(user_design, std::move(options),
                                  kind);
    throw std::runtime_error("unknown backend '" + kind +
                             "' (supported: fabric, sim, jit)");
}

} // namespace zoomie::core
