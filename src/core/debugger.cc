#include "debugger.hh"

#include <algorithm>
#include <set>

#include "bitstream/builder.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "toolchain/bitgen.hh"
#include "toolchain/placer.hh"

namespace zoomie::core {

using bitstream::Command;
using bitstream::CommandBuilder;
using bitstream::ConfigReg;
using fpga::BitLoc;

Debugger::Debugger(fpga::Device &device, jtag::JtagHost &host,
                   const rtl::Design &design,
                   const synth::MappedNetlist &netlist,
                   const fpga::Placement &placement,
                   const InstrumentResult &meta)
    : _device(device), _host(host), _design(design),
      _netlist(netlist), _placement(placement), _meta(meta),
      _locs(toolchain::buildLogicLocations(device.spec(), design,
                                           netlist, placement))
{
}

uint32_t
Debugger::hopOf(uint32_t slr) const
{
    auto ring = _device.spec().ringOrder();
    for (uint32_t h = 0; h < ring.size(); ++h) {
        if (ring[h] == slr)
            return h;
    }
    panic("slr not in ring");
}

void
Debugger::clearMaskAndCapture(const std::vector<uint32_t> &slrs)
{
    for (uint32_t slr : slrs) {
        CommandBuilder cb;
        cb.sync().selectHop(hopOf(slr));
        // §4.7: always clear the (possibly stale) GSR mask before
        // capture, or readback returns stale values.
        cb.writeReg(ConfigReg::MASK, 0);
        cb.command(Command::GCapture);
        cb.desync();
        _host.send(cb.take());
    }
}

std::vector<uint32_t>
Debugger::readFrame(uint32_t slr, uint32_t frame)
{
    CommandBuilder cb;
    cb.sync().selectHop(hopOf(slr))
        .readRequest(frame, fpga::kFrameWords);
    _host.send(cb.take());
    std::vector<uint32_t> words = _host.read(fpga::kFrameWords);
    CommandBuilder fin;
    fin.desync();
    _host.send(fin.take());
    return words;
}

uint64_t
Debugger::decodeBits(const std::vector<BitLoc> &bits)
{
    // Group by (slr, frame) so each frame is read at most once.
    std::map<std::pair<uint32_t, uint32_t>,
             std::vector<uint32_t>> frames;
    uint64_t value = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
        const BitLoc &loc = bits[i];
        auto key = std::make_pair(loc.slr, loc.frame);
        auto it = frames.find(key);
        if (it == frames.end()) {
            it = frames.emplace(key,
                                readFrame(loc.slr, loc.frame)).first;
        }
        uint32_t word = it->second[loc.bit / 32];
        value |= uint64_t((word >> (loc.bit % 32)) & 1) << i;
    }
    return value;
}

uint64_t
Debugger::readRegister(const std::string &name)
{
    const toolchain::RegLocation *reg = _locs.findReg(name);
    fatal_if(!reg, "Zoomie: unknown register '", name, "'");
    std::set<uint32_t> slr_set;
    for (const BitLoc &loc : reg->bits)
        slr_set.insert(loc.slr);
    clearMaskAndCapture({slr_set.begin(), slr_set.end()});
    return decodeBits(reg->bits);
}

void
Debugger::forceRegisters(
    const std::vector<std::pair<std::string, uint64_t>> &writes)
{
    // Collect all touched frames, capture first (so neighbours in
    // the same frames keep their live values), read-modify-write.
    struct Patch { BitLoc loc; bool value; };
    std::vector<Patch> patches;
    std::set<uint32_t> slr_set;
    for (const auto &[name, value] : writes) {
        const toolchain::RegLocation *reg = _locs.findReg(name);
        fatal_if(!reg, "Zoomie: unknown register '", name, "'");
        for (unsigned bit = 0; bit < reg->width; ++bit) {
            patches.push_back({reg->bits[bit],
                               getBit(value, bit) != 0});
            slr_set.insert(reg->bits[bit].slr);
        }
    }
    clearMaskAndCapture({slr_set.begin(), slr_set.end()});

    std::map<std::pair<uint32_t, uint32_t>,
             std::vector<uint32_t>> frames;
    for (const Patch &patch : patches) {
        auto key = std::make_pair(patch.loc.slr, patch.loc.frame);
        auto it = frames.find(key);
        if (it == frames.end()) {
            it = frames.emplace(key, readFrame(patch.loc.slr,
                                               patch.loc.frame))
                     .first;
        }
        uint32_t &word = it->second[patch.loc.bit / 32];
        uint32_t mask = 1u << (patch.loc.bit % 32);
        word = patch.value ? (word | mask) : (word & ~mask);
    }

    std::vector<toolchain::FrameSpan> spans;
    for (auto &[key, words] : frames) {
        toolchain::FrameSpan span;
        span.slr = key.first;
        span.farStart = key.second;
        span.words = std::move(words);
        spans.push_back(std::move(span));
    }
    _host.send(toolchain::partialBitstream(_device.spec(), spans));
}

void
Debugger::forceRegister(const std::string &name, uint64_t value)
{
    forceRegisters({{name, value}});
}

uint64_t
Debugger::readMemWord(const std::string &name, uint32_t addr)
{
    const toolchain::MemLocation *mem = _locs.findMem(name);
    fatal_if(!mem, "Zoomie: unknown memory '", name, "'");
    const synth::MRam &ram = _netlist.rams[mem->ramIndex];
    std::vector<BitLoc> bits;
    for (uint32_t bit = 0; bit < mem->width; ++bit) {
        bits.push_back(fpga::ramBitLoc(
            _device.spec(), ram, _placement.ramSite[mem->ramIndex],
            addr, bit));
    }
    std::set<uint32_t> slr_set;
    for (const BitLoc &loc : bits)
        slr_set.insert(loc.slr);
    clearMaskAndCapture({slr_set.begin(), slr_set.end()});
    return decodeBits(bits);
}

void
Debugger::forceMemWord(const std::string &name, uint32_t addr,
                       uint64_t value)
{
    const toolchain::MemLocation *mem = _locs.findMem(name);
    fatal_if(!mem, "Zoomie: unknown memory '", name, "'");
    const synth::MRam &ram = _netlist.rams[mem->ramIndex];

    std::set<uint32_t> slr_set;
    std::vector<BitLoc> bits;
    for (uint32_t bit = 0; bit < mem->width; ++bit) {
        bits.push_back(fpga::ramBitLoc(
            _device.spec(), ram, _placement.ramSite[mem->ramIndex],
            addr, bit));
        slr_set.insert(bits.back().slr);
    }
    clearMaskAndCapture({slr_set.begin(), slr_set.end()});

    std::map<std::pair<uint32_t, uint32_t>,
             std::vector<uint32_t>> frames;
    for (uint32_t bit = 0; bit < mem->width; ++bit) {
        const BitLoc &loc = bits[bit];
        auto key = std::make_pair(loc.slr, loc.frame);
        auto it = frames.find(key);
        if (it == frames.end()) {
            it = frames.emplace(key,
                                readFrame(loc.slr, loc.frame)).first;
        }
        uint32_t &word = it->second[loc.bit / 32];
        uint32_t mask = 1u << (loc.bit % 32);
        word = getBit(value, bit) ? (word | mask) : (word & ~mask);
    }
    std::vector<toolchain::FrameSpan> spans;
    for (auto &[key, words] : frames) {
        toolchain::FrameSpan span;
        span.slr = key.first;
        span.farStart = key.second;
        span.words = std::move(words);
        spans.push_back(std::move(span));
    }
    _host.send(toolchain::partialBitstream(_device.spec(), spans));
}

std::map<std::string, uint64_t>
Debugger::readAllRegisters(const std::string &prefix)
{
    std::set<uint32_t> slr_set;
    auto regs = _locs.regsUnder(prefix);
    for (const auto *reg : regs) {
        for (const BitLoc &loc : reg->bits)
            slr_set.insert(loc.slr);
    }
    clearMaskAndCapture({slr_set.begin(), slr_set.end()});

    // One pass over unique frames, then decode every register.
    std::map<std::pair<uint32_t, uint32_t>,
             std::vector<uint32_t>> frames;
    std::map<std::string, uint64_t> out;
    for (const auto *reg : regs) {
        uint64_t value = 0;
        for (size_t i = 0; i < reg->bits.size(); ++i) {
            const BitLoc &loc = reg->bits[i];
            auto key = std::make_pair(loc.slr, loc.frame);
            auto it = frames.find(key);
            if (it == frames.end()) {
                it = frames.emplace(key, readFrame(loc.slr,
                                                   loc.frame))
                         .first;
            }
            uint32_t word = it->second[loc.bit / 32];
            value |= uint64_t((word >> (loc.bit % 32)) & 1) << i;
        }
        out[reg->name] = value;
    }
    return out;
}

// ---- execution control ------------------------------------------------

void
Debugger::pause()
{
    forceRegister(ControlRegs::hostPause, 1);
}

void
Debugger::resume()
{
    forceRegisters({{ControlRegs::hostPause, 0},
                    {ControlRegs::stepArmed, 0},
                    {ControlRegs::pauseState, 0}});
}

void
Debugger::stepCycles(uint64_t n)
{
    // The counter pauses the design when it reaches 1, so n
    // executed cycles need a preload of n + 1 (§3.4 / §4.7).
    forceRegisters({{ControlRegs::stepCount, n + 1},
                    {ControlRegs::stepArmed, 1},
                    {ControlRegs::hostPause, 0},
                    {ControlRegs::pauseState, 0}});
}

bool
Debugger::isPaused()
{
    return readRegister(ControlRegs::pauseState) != 0;
}

StopInfo
Debugger::stopInfo()
{
    StopInfo info;
    info.paused = isPaused();
    info.hostPauseRequested =
        readRegister(ControlRegs::hostPause) != 0;
    if (readRegister(ControlRegs::stepArmed) != 0)
        info.stepDone = readRegister(ControlRegs::stepCount) <= 1;
    info.assertionsFired = assertionsFired();
    for (unsigned slot = 0; slot < _meta.watchSignals.size();
         ++slot) {
        if (readRegister(ControlRegs::bpChg(slot)) == 0)
            continue;
        const std::string &watched = _meta.watchSignals[slot];
        if (!_locs.findReg(watched))
            continue;  // watched wire: live value not readable
        uint64_t prev = readRegister(ControlRegs::bpPrev(slot));
        uint64_t cur = readRegister(watched);
        if (cur != prev)
            info.watchHits.push_back({slot, watched, prev, cur});
    }
    return info;
}

void
Debugger::setValueBreakpoint(unsigned slot, uint64_t ref_val,
                             bool in_and_group, bool in_or_group)
{
    fatal_if(slot >= _meta.watchSignals.size(),
             "Zoomie: breakpoint slot ", slot, " not instrumented");
    forceRegisters({{ControlRegs::bpRef(slot), ref_val},
                    {ControlRegs::bpAnd(slot), in_and_group ? 1u : 0u},
                    {ControlRegs::bpOr(slot), in_or_group ? 1u : 0u}});
}

void
Debugger::setWatchpoint(unsigned slot, bool enabled)
{
    fatal_if(slot >= _meta.watchSignals.size(),
             "Zoomie: watchpoint slot ", slot, " not instrumented");
    // Arm the change detector with the current value as baseline so
    // it fires on the *next* change, not on stale history. When the
    // watched signal is a register we can read its live value; for
    // wires the shadow register (one gated cycle behind) is used.
    std::vector<std::pair<std::string, uint64_t>> writes;
    if (enabled) {
        const std::string &watched = _meta.watchSignals[slot];
        uint64_t baseline = _locs.findReg(watched)
            ? readRegister(watched)
            : readRegister(ControlRegs::bpPrev(slot));
        writes.emplace_back(ControlRegs::bpPrev(slot), baseline);
    }
    writes.emplace_back(ControlRegs::bpChg(slot), enabled ? 1 : 0);
    forceRegisters(writes);
}

void
Debugger::clearValueBreakpoints()
{
    std::vector<std::pair<std::string, uint64_t>> writes;
    for (unsigned i = 0; i < _meta.watchSignals.size(); ++i) {
        writes.emplace_back(ControlRegs::bpAnd(i), 0);
        writes.emplace_back(ControlRegs::bpOr(i), 0);
        writes.emplace_back(ControlRegs::bpChg(i), 0);
    }
    writes.emplace_back(ControlRegs::andSel, 0);
    writes.emplace_back(ControlRegs::orSel, 0);
    if (!writes.empty())
        forceRegisters(writes);
}

void
Debugger::armTriggers(bool and_group, bool or_group)
{
    forceRegisters({{ControlRegs::andSel, and_group ? 1u : 0u},
                    {ControlRegs::orSel, or_group ? 1u : 0u}});
}

void
Debugger::enableAssertion(unsigned index, bool enabled)
{
    uint64_t mask = readRegister(ControlRegs::assertEn);
    mask = setBit(mask, index, enabled);
    forceRegister(ControlRegs::assertEn, mask);
}

uint64_t
Debugger::assertionsFired()
{
    // The fired register only exists when assertions were
    // instrumented; without any, nothing can ever have fired.
    if (!_locs.findReg(ControlRegs::assertFired))
        return 0;
    return readRegister(ControlRegs::assertFired);
}

// ---- snapshots ----------------------------------------------------------

std::vector<std::vector<uint32_t>>
Debugger::readbackImage()
{
    const fpga::DeviceSpec &spec = _device.spec();
    std::vector<uint32_t> all_slrs;
    for (uint32_t slr = 0; slr < spec.numSlrs; ++slr)
        all_slrs.push_back(slr);
    clearMaskAndCapture(all_slrs);

    std::vector<std::vector<uint32_t>> images(spec.numSlrs);
    for (uint32_t slr = 0; slr < spec.numSlrs; ++slr) {
        CommandBuilder cb;
        uint32_t words = spec.framesPerSlr() * fpga::kFrameWords;
        cb.sync().selectHop(hopOf(slr)).readRequest(0, words);
        _host.send(cb.take());
        images[slr] = _host.read(words);
        CommandBuilder fin;
        fin.desync();
        _host.send(fin.take());
    }
    return images;
}

void
Debugger::writeFrames(const std::vector<toolchain::FrameSpan> &spans)
{
    _host.send(toolchain::partialBitstream(_device.spec(), spans));
}

// ---- readback measurement -----------------------------------------------

double
Debugger::scanSlrState(uint32_t slr, bool optimized)
{
    const fpga::DeviceSpec &spec = _device.spec();
    _host.resetTimer();

    clearMaskAndCapture({slr});

    uint32_t frame_lo = 0;
    uint32_t frame_hi = spec.framesPerSlr() - 1;
    if (optimized) {
        // Scan only the frames overlapping the MUT's placed region
        // on this SLR (§4.7). If the MUT has no cells here, only
        // the capture overhead is paid.
        auto regions = toolchain::scopeBoundingBoxes(
            _netlist, _placement, _meta.mutPrefix);
        bool found = false;
        for (const auto &region : regions) {
            if (region.slr != slr)
                continue;
            region.frameRange(spec, frame_lo, frame_hi);
            found = true;
        }
        if (!found)
            return _host.elapsedSeconds();
    }

    uint32_t frames = frame_hi - frame_lo + 1;
    CommandBuilder cb;
    cb.sync().selectHop(hopOf(slr))
        .readRequest(frame_lo, frames * fpga::kFrameWords);
    _host.send(cb.take());
    (void)_host.read(frames * fpga::kFrameWords);
    CommandBuilder fin;
    fin.desync();
    _host.send(fin.take());
    return _host.elapsedSeconds();
}

} // namespace zoomie::core
