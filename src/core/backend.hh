/**
 * @file
 * Execution-backend abstraction. Zoomie has more than one way to
 * execute the same instrumented design — fabric execution of the
 * configured bitstream (src/fpga behind a Platform), direct
 * interpretation of the elaborated circuit (src/sim), and compiled
 * simulation of the same circuit (src/jit). A Backend is
 * the complete surface the serving layer (sessions, dispatcher,
 * scheduler, snapshot store) needs from one execution: run the
 * external clock, drive/observe IO, and perform every debugger
 * operation. Because the Debug Controller is ordinary RTL inside
 * the instrumented design, a backend implements breakpoints,
 * stepping and pause by reading/forcing the same "zoomie/" scope
 * registers the fabric debugger patches through configuration
 * frames — the semantics live in the RTL, not in the backend.
 *
 * Two backends over the same design must agree cycle-for-cycle on
 * every observable: that redundancy is what the differential-test
 * harness (src/difftest) checks, and what keeps every future
 * backend honest.
 */

#ifndef ZOOMIE_CORE_BACKEND_HH
#define ZOOMIE_CORE_BACKEND_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/debugger.hh"
#include "core/zoomie.hh"
#include "sim/engine.hh"

namespace zoomie::core {

/** One execution of an instrumented design plus its debug plane. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Backend family name ("fabric", "sim", "jit"). */
    virtual std::string kind() const = 0;

    /** Partition-artifact cache outcome of this backend's compile.
     *  Backends that never synthesize (sim/jit) report 0/0. */
    virtual uint64_t artifactHits() const { return 0; }
    virtual uint64_t artifactMisses() const { return 0; }

    /** Instrumentation metadata (watch slots, assertions, ...). */
    virtual const InstrumentResult &instrumented() const = 0;

    // ---- execution -------------------------------------------------
    /** Advance the external (free-running) clock @p n cycles. */
    virtual void run(uint64_t n) = 0;

    /** MUT cycles executed (the gated domain's count). */
    virtual uint64_t mutCycles() const = 0;

    /** Rewind/overwrite the MUT cycle counter (snapshot restore). */
    virtual void setMutCycles(uint64_t n) = 0;

    // ---- top-level IO ----------------------------------------------
    virtual void poke(const std::string &port, uint64_t value) = 0;
    virtual uint64_t peek(const std::string &port) = 0;
    virtual std::vector<std::string> inputPorts() const = 0;
    virtual uint64_t peekInput(const std::string &port) const = 0;

    // ---- execution control ------------------------------------------
    virtual void pause() = 0;
    virtual void resume() = 0;
    virtual void stepCycles(uint64_t n) = 0;
    virtual bool isPaused() = 0;
    virtual StopInfo stopInfo() = 0;

    // ---- triggers ----------------------------------------------------
    virtual size_t watchSlotCount() const = 0;
    virtual void setValueBreakpoint(unsigned slot, uint64_t ref_val,
                                    bool in_and_group,
                                    bool in_or_group) = 0;
    virtual void setWatchpoint(unsigned slot, bool enabled) = 0;
    virtual void clearValueBreakpoints() = 0;
    virtual void armTriggers(bool and_group, bool or_group) = 0;
    virtual void enableAssertion(unsigned index, bool enabled) = 0;
    virtual uint64_t assertionsFired() = 0;

    // ---- state inspection / manipulation -----------------------------
    virtual bool hasRegister(const std::string &name) const = 0;
    virtual bool hasMemory(const std::string &name) const = 0;

    /** Depth in words of memory @p name (0 when unknown). */
    virtual uint32_t memoryDepth(const std::string &name) const = 0;

    virtual uint64_t readRegister(const std::string &name) = 0;
    virtual void forceRegister(const std::string &name,
                               uint64_t value) = 0;
    virtual void forceRegisters(
        const std::vector<std::pair<std::string, uint64_t>>
            &writes) = 0;
    virtual uint64_t readMemWord(const std::string &name,
                                 uint32_t addr) = 0;
    virtual void forceMemWord(const std::string &name, uint32_t addr,
                              uint64_t value) = 0;
    virtual std::map<std::string, uint64_t> readAllRegisters(
        const std::string &prefix) = 0;

    // ---- snapshot material --------------------------------------------
    //
    // Every backend exposes its complete state as frame images so
    // the content-addressed SnapshotStore (core/snapshot.hh) works
    // unchanged over any of them: [slr][word] images, dirty-frame
    // spans, fpga::kFrameWords granularity. For non-fabric backends
    // the "frames" are a deterministic pseudo-frame encoding of
    // register/memory/latch state — the store never interprets
    // frame contents, only diffs and restores them.
    virtual std::vector<std::vector<uint32_t>> readbackImage() = 0;
    virtual void writeFrames(
        const std::vector<toolchain::FrameSpan> &spans) = 0;
    virtual uint32_t numSlrs() const = 0;
    virtual uint32_t framesPerSlr() const = 0;
};

/**
 * Fabric execution: forwards to a Platform (configured device +
 * JTAG host + frame-level Debugger). Non-owning by default so the
 * many direct Platform users (examples, tests) can layer a Backend
 * view over an existing bring-up; the owning factory is what
 * sessions use.
 */
class FabricBackend : public Backend
{
  public:
    /** Wrap an existing Platform (caller keeps ownership). */
    explicit FabricBackend(Platform &platform)
        : _platform(&platform)
    {
    }

    /** Own the full bring-up for @p user_design. */
    static std::unique_ptr<FabricBackend> create(
        const rtl::Design &user_design, PlatformOptions options);

    Platform &platform() { return *_platform; }

    std::string kind() const override { return "fabric"; }
    uint64_t artifactHits() const override
    {
        return _platform->compileResult().artifactHits;
    }
    uint64_t artifactMisses() const override
    {
        return _platform->compileResult().artifactMisses;
    }
    const InstrumentResult &instrumented() const override
    {
        return _platform->instrumented();
    }

    void run(uint64_t n) override { _platform->run(n); }
    uint64_t mutCycles() const override;
    void setMutCycles(uint64_t n) override;

    void poke(const std::string &port, uint64_t value) override
    {
        _platform->poke(port, value);
    }
    uint64_t peek(const std::string &port) override
    {
        return _platform->peek(port);
    }
    std::vector<std::string> inputPorts() const override;
    uint64_t peekInput(const std::string &port) const override;

    void pause() override { dbg().pause(); }
    void resume() override { dbg().resume(); }
    void stepCycles(uint64_t n) override { dbg().stepCycles(n); }
    bool isPaused() override { return dbg().isPaused(); }
    StopInfo stopInfo() override { return dbg().stopInfo(); }

    size_t watchSlotCount() const override;
    void setValueBreakpoint(unsigned slot, uint64_t ref_val,
                            bool in_and_group,
                            bool in_or_group) override
    {
        dbg().setValueBreakpoint(slot, ref_val, in_and_group,
                                 in_or_group);
    }
    void setWatchpoint(unsigned slot, bool enabled) override
    {
        dbg().setWatchpoint(slot, enabled);
    }
    void clearValueBreakpoints() override
    {
        dbg().clearValueBreakpoints();
    }
    void armTriggers(bool and_group, bool or_group) override
    {
        dbg().armTriggers(and_group, or_group);
    }
    void enableAssertion(unsigned index, bool enabled) override
    {
        dbg().enableAssertion(index, enabled);
    }
    uint64_t assertionsFired() override
    {
        return dbg().assertionsFired();
    }

    bool hasRegister(const std::string &name) const override;
    bool hasMemory(const std::string &name) const override;
    uint32_t memoryDepth(const std::string &name) const override;
    uint64_t readRegister(const std::string &name) override
    {
        return dbg().readRegister(name);
    }
    void forceRegister(const std::string &name,
                       uint64_t value) override
    {
        dbg().forceRegister(name, value);
    }
    void forceRegisters(
        const std::vector<std::pair<std::string, uint64_t>> &writes)
        override
    {
        dbg().forceRegisters(writes);
    }
    uint64_t readMemWord(const std::string &name,
                         uint32_t addr) override
    {
        return dbg().readMemWord(name, addr);
    }
    void forceMemWord(const std::string &name, uint32_t addr,
                      uint64_t value) override
    {
        dbg().forceMemWord(name, addr, value);
    }
    std::map<std::string, uint64_t> readAllRegisters(
        const std::string &prefix) override
    {
        return dbg().readAllRegisters(prefix);
    }

    std::vector<std::vector<uint32_t>> readbackImage() override
    {
        return dbg().readbackImage();
    }
    void writeFrames(
        const std::vector<toolchain::FrameSpan> &spans) override
    {
        dbg().writeFrames(spans);
    }
    uint32_t numSlrs() const override;
    uint32_t framesPerSlr() const override;

  private:
    /** applyEdit() rebuilds the debugger; re-fetch per call. */
    Debugger &dbg() { return _platform->debugger(); }

    Platform *_platform;
    std::unique_ptr<Platform> _owned;  ///< set by create()
};

/**
 * Software execution: instruments the user design exactly like
 * Platform::create, then runs the instrumented circuit in a
 * sim::Engine — no synthesis, no placement, no bitstream. Two
 * engines sit behind the same surface: the RTL interpreter
 * (sim::Simulator, kind "sim") and the compiled-simulation
 * bytecode/native VM (jit::JitSim, kind "jit"). Debug operations
 * read/force the controller's "zoomie/" registers by name, so
 * trigger/step/pause behavior is byte-identical to the fabric by
 * construction (the same RTL computes it). The external clock loop
 * mirrors fpga::Device::stepGlobal: evaluate, sample the
 * "zoomie/clk_en" gate, then commit every enabled domain
 * simultaneously from pre-edge values.
 */
class SimBackend : public Backend
{
  public:
    /** Instrument and bring up @p user_design on engine
     *  @p engine_kind ("sim" or "jit"). Only options.instrument is
     *  honored (no device to size). */
    static std::unique_ptr<SimBackend> create(
        const rtl::Design &user_design, PlatformOptions options,
        const std::string &engine_kind = "sim");

    sim::Engine &engine() { return *_sim; }

    std::string kind() const override { return _sim->kind(); }
    const InstrumentResult &instrumented() const override
    {
        return _meta;
    }

    void run(uint64_t n) override;
    uint64_t mutCycles() const override
    {
        return _sim->cycles(_meta.gatedClock);
    }
    void setMutCycles(uint64_t n) override
    {
        _sim->setCycles(_meta.gatedClock, n);
    }

    void poke(const std::string &port, uint64_t value) override;
    uint64_t peek(const std::string &port) override
    {
        return _sim->peek(port);
    }
    std::vector<std::string> inputPorts() const override;
    uint64_t peekInput(const std::string &port) const override;

    void pause() override;
    void resume() override;
    void stepCycles(uint64_t n) override;
    bool isPaused() override;
    StopInfo stopInfo() override;

    size_t watchSlotCount() const override
    {
        return _meta.watchSignals.size();
    }
    void setValueBreakpoint(unsigned slot, uint64_t ref_val,
                            bool in_and_group,
                            bool in_or_group) override;
    void setWatchpoint(unsigned slot, bool enabled) override;
    void clearValueBreakpoints() override;
    void armTriggers(bool and_group, bool or_group) override;
    void enableAssertion(unsigned index, bool enabled) override;
    uint64_t assertionsFired() override;

    bool hasRegister(const std::string &name) const override;
    bool hasMemory(const std::string &name) const override;
    uint32_t memoryDepth(const std::string &name) const override;
    uint64_t readRegister(const std::string &name) override;
    void forceRegister(const std::string &name,
                       uint64_t value) override;
    void forceRegisters(
        const std::vector<std::pair<std::string, uint64_t>> &writes)
        override;
    uint64_t readMemWord(const std::string &name,
                         uint32_t addr) override;
    void forceMemWord(const std::string &name, uint32_t addr,
                      uint64_t value) override;
    std::map<std::string, uint64_t> readAllRegisters(
        const std::string &prefix) override;

    std::vector<std::vector<uint32_t>> readbackImage() override;
    void writeFrames(
        const std::vector<toolchain::FrameSpan> &spans) override;
    uint32_t numSlrs() const override { return 1; }
    uint32_t framesPerSlr() const override { return _frames; }

  private:
    SimBackend() = default;

    int findMem(const std::string &name) const;
    std::vector<uint32_t> encodeState();
    void decodeState(const std::vector<uint32_t> &image);

    InstrumentResult _meta;
    std::unique_ptr<sim::Engine> _sim;
    uint32_t _frames = 0;   ///< pseudo-frame image size per "SLR"
    uint32_t _stateWords = 0;

    /** Last poked value per input port, declaration order. The
     *  simulator only stores net values, but Device remembers poked
     *  inputs for snapshot replay — mirror that here. */
    std::vector<std::pair<std::string, uint64_t>> _inputs;
};

/**
 * Build the backend @p kind ("fabric", "sim" or "jit") over
 * @p user_design. Throws std::runtime_error on an unknown kind so
 * front ends can answer a typed error.
 */
std::unique_ptr<Backend> makeBackend(const std::string &kind,
                                     const rtl::Design &user_design,
                                     PlatformOptions options);

} // namespace zoomie::core

#endif // ZOOMIE_CORE_BACKEND_HH
