/**
 * @file
 * Content-addressed snapshot store and time travel. Snapshots are
 * no longer value blobs: each one is a set of dirty-frame deltas
 * against a per-session base image, addressed by an FNV-1a-64 hash
 * of its capture cycle and delta payload (a SnapshotId). The store
 * keeps a bounded ring — explicit snapshots are pinned, periodic
 * auto-snapshots (taken from the scheduler's cycle hook) are
 * evicted oldest-first — and implements reverse execution as
 * restore-nearest-snapshot + deterministic re-run, replaying the
 * session's recorded input pokes at their original cycles. The
 * delta format (slr, frame, kFrameWords payload) doubles as the
 * future shard-migration wire format.
 */

#ifndef ZOOMIE_CORE_SNAPSHOT_HH
#define ZOOMIE_CORE_SNAPSHOT_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.hh"

namespace zoomie::core {

/** Content address of a stored snapshot: FNV-1a-64 over the
 *  capture cycle and every dirty frame (slr, far, payload). */
using SnapshotId = uint64_t;

/** One dirty frame relative to the store's base image. */
struct SnapshotDelta
{
    uint32_t slr = 0;
    uint32_t frame = 0;           ///< frame address within the SLR
    std::vector<uint32_t> words;  ///< fpga::kFrameWords payload
};

/** Wire-facing summary of one stored snapshot. */
struct SnapshotInfo
{
    SnapshotId id = 0;
    uint64_t cycle = 0;        ///< MUT cycle at capture
    uint64_t bytes = 0;        ///< delta payload bytes
    uint64_t deltaFrames = 0;  ///< dirty frames vs the base image
    bool pinned = false;       ///< explicit snapshots never auto-evict
};

/** One recorded input poke, replayed during time travel. */
struct PokeRecord
{
    uint64_t cycle = 0;  ///< MUT cycle the poke took effect at
    std::string port;
    uint64_t value = 0;
};

/** What a travel() landed on. */
struct TravelResult
{
    SnapshotInfo from;      ///< the snapshot restored before replay
    uint64_t cycle = 0;     ///< MUT cycle after replay (the target)
    uint64_t replayed = 0;  ///< cycles re-executed from the snapshot
};

/**
 * Bounded per-session ring of content-addressed snapshots over one
 * Backend. Not internally synchronized: every caller (dispatcher
 * handlers, the scheduler's worker loop) already holds the session
 * mutex. The store never interprets frame contents — any backend's
 * frame image (real configuration frames or a sim pseudo-frame
 * encoding) diffs, hashes and restores the same way.
 */
class SnapshotStore
{
  public:
    static constexpr size_t kDefaultCapacity = 16;
    static constexpr size_t kMaxPokeLog = 65'536;

    explicit SnapshotStore(Backend &backend,
                           size_t capacity = kDefaultCapacity);

    /** Convenience: snapshot a bare Platform through an internally
     *  owned FabricBackend view (direct-embedding users). */
    explicit SnapshotStore(Platform &platform,
                           size_t capacity = kDefaultCapacity);

    /**
     * Capture the current state as deltas against the base image
     * (the first capture also establishes the base). Identical
     * content at the same cycle dedups onto the existing ring
     * entry. Returns std::nullopt when the ring is full of pinned
     * snapshots: callers taking an explicit (pinned) snapshot map
     * that to snapshot-overflow; the auto path silently skips.
     */
    std::optional<SnapshotInfo> capture(bool pinned);

    /**
     * Restore snapshot @p id exactly: reconstruct base + deltas,
     * write only the frames that differ from the device's current
     * state, rewind the gated-clock counter, and re-drive every
     * input port to the value captured with the snapshot (ports
     * live outside configuration memory, so they are recorded
     * separately — without this, a port poked after the capture
     * would leak its live value into the restored timeline).
     * std::nullopt when @p id is not in the ring.
     */
    std::optional<SnapshotInfo> restore(SnapshotId id);

    /**
     * Time travel: restore the nearest snapshot at or before
     * @p targetCycle, then deterministically re-run to the target,
     * replaying recorded pokes at their original cycles. Leaves
     * the design paused at the target. std::nullopt when no
     * snapshot covers the target.
     */
    std::optional<TravelResult> travel(uint64_t targetCycle);

    /**
     * Record an input poke for replay, stamped with the current
     * MUT cycle. A poke after a rewind truncates the recorded
     * future — the timeline has diverged.
     */
    void recordPoke(const std::string &port, uint64_t value);

    /** Periodic hook: capture an unpinned snapshot when at least
     *  @p interval MUT cycles have passed since the last auto
     *  capture. interval 0 disables. */
    void autoTick(uint64_t interval);

    /** Ring contents, oldest first. */
    std::vector<SnapshotInfo> list() const;

    /** Summary of one snapshot, if present. */
    std::optional<SnapshotInfo> info(SnapshotId id) const;

    size_t size() const { return _ring.size(); }
    size_t capacity() const { return _capacity; }
    size_t pokeLogSize() const { return _pokes.size(); }

    /** Bytes of a full (non-delta) device image, for comparison. */
    uint64_t fullImageBytes() const;

  private:
    struct Record
    {
        SnapshotId id = 0;
        uint64_t cycle = 0;
        std::vector<SnapshotDelta> deltas;
        /** Input-port values at capture, netlist order. */
        std::vector<std::pair<std::string, uint64_t>> inputs;
        bool pinned = false;
    };

    SnapshotInfo infoOf(const Record &rec) const;
    std::vector<SnapshotDelta>
    diffAgainstBase(const std::vector<std::vector<uint32_t>> &image)
        const;
    void restoreRecord(const Record &rec);
    void stepExactly(uint64_t cycles);
    void compactPokes();

    /** Set only by the Platform& convenience constructor. */
    std::unique_ptr<FabricBackend> _ownedView;
    Backend &_backend;
    size_t _capacity;
    /** Per SLR: the frame image every delta is relative to. */
    std::vector<std::vector<uint32_t>> _base;
    std::deque<Record> _ring;  ///< oldest first
    std::vector<PokeRecord> _pokes;
    uint64_t _lastAutoCycle = 0;
};

} // namespace zoomie::core

#endif // ZOOMIE_CORE_SNAPSHOT_HH
