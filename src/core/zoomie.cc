#include "zoomie.hh"

#include "common/logging.hh"

namespace zoomie::core {

std::unique_ptr<Platform>
Platform::create(const rtl::Design &user_design,
                 PlatformOptions options)
{
    auto platform = std::unique_ptr<Platform>(new Platform());
    platform->_options = options;
    platform->_meta = instrument(user_design, options.instrument);

    if (options.useVti) {
        toolchain::Vti::Options vti_opts;
        fatal_if(options.instrument.mutPrefix.empty(),
                 "VTI flow needs a MUT prefix (iterated module)");
        vti_opts.iteratedModules = {options.instrument.mutPrefix};
        vti_opts.overprovision = options.overprovision;
        vti_opts.artifacts = options.artifacts;
        platform->_vti = std::make_unique<toolchain::Vti>(
            options.spec, vti_opts);
        platform->_result =
            platform->_vti->compileInitial(platform->_meta.design);
    } else {
        platform->_vendor = std::make_unique<toolchain::VendorTool>(
            options.spec);
        platform->_vendor->artifacts = options.artifacts;
        platform->_result =
            platform->_vendor->compile(platform->_meta.design);
    }

    platform->_device =
        std::make_unique<fpga::Device>(options.spec);
    platform->_host =
        std::make_unique<jtag::JtagHost>(*platform->_device);
    platform->loadAndAttach();

    platform->_debugger = std::make_unique<Debugger>(
        *platform->_device, *platform->_host,
        platform->_meta.design, platform->_result.netlist,
        platform->_result.placement, platform->_meta);
    return platform;
}

void
Platform::loadAndAttach()
{
    _device->attach(_result.netlist, _result.placement);
    _host->send(_result.bitstream);
    panic_if(!_device->running(),
             "device did not start after configuration");
    _device->bindClockGate(_meta.gatedClock, "zoomie/clk_en");
}

const toolchain::CompileResult &
Platform::applyEdit(const rtl::Design &edited_design)
{
    _meta = instrument(edited_design, _options.instrument);
    if (_vti) {
        _result = _vti->compileIncremental(
            _meta.design, _options.instrument.mutPrefix);
        // The partial bitstream alone reconfigures the edited
        // region on real hardware; the model reloads the full
        // image so the executable netlist matches the edit.
        _result.bitstream = toolchain::fullBitstream(
            _options.spec, _result.netlist, _result.placement);
        _result.bitstreamIsPartial = false;
    } else {
        toolchain::CompileResult prev = std::move(_result);
        _result = _vendor->compileIncremental(_meta.design, prev);
    }
    loadAndAttach();
    _debugger = std::make_unique<Debugger>(
        *_device, *_host, _meta.design, _result.netlist,
        _result.placement, _meta);
    return _result;
}

} // namespace zoomie::core
