#include "snapshot.hh"

#include <algorithm>
#include <map>

#include "common/bits.hh"
#include "common/logging.hh"
#include "fpga/device.hh"
#include "toolchain/bitgen.hh"

namespace zoomie::core {

SnapshotStore::SnapshotStore(Backend &backend, size_t capacity)
    : _backend(backend), _capacity(capacity)
{
    fatal_if(_capacity == 0, "Zoomie: snapshot ring needs room");
}

SnapshotStore::SnapshotStore(Platform &platform, size_t capacity)
    : _ownedView(std::make_unique<FabricBackend>(platform)),
      _backend(*_ownedView), _capacity(capacity)
{
    fatal_if(_capacity == 0, "Zoomie: snapshot ring needs room");
}

static SnapshotId
hashOf(uint64_t cycle, const std::vector<SnapshotDelta> &deltas,
       const std::vector<std::pair<std::string, uint64_t>> &inputs)
{
    uint64_t hash = fnv1a64(reinterpret_cast<const char *>(&cycle),
                            sizeof cycle);
    for (const SnapshotDelta &delta : deltas) {
        hash = fnv1a64(reinterpret_cast<const char *>(&delta.slr),
                       sizeof delta.slr, hash);
        hash = fnv1a64(reinterpret_cast<const char *>(&delta.frame),
                       sizeof delta.frame, hash);
        hash = fnv1a64(
            reinterpret_cast<const char *>(delta.words.data()),
            delta.words.size() * sizeof(uint32_t), hash);
    }
    // Input ports live outside configuration memory but are part
    // of the captured state: address them too.
    for (const auto &[port, value] : inputs) {
        hash = fnv1a64(port.data(), port.size(), hash);
        hash = fnv1a64(reinterpret_cast<const char *>(&value),
                       sizeof value, hash);
    }
    return hash;
}

SnapshotInfo
SnapshotStore::infoOf(const Record &rec) const
{
    SnapshotInfo info;
    info.id = rec.id;
    info.cycle = rec.cycle;
    info.deltaFrames = rec.deltas.size();
    info.bytes =
        rec.deltas.size() * fpga::kFrameWords * sizeof(uint32_t);
    info.pinned = rec.pinned;
    return info;
}

std::vector<SnapshotDelta>
SnapshotStore::diffAgainstBase(
    const std::vector<std::vector<uint32_t>> &image) const
{
    std::vector<SnapshotDelta> deltas;
    for (uint32_t slr = 0; slr < _backend.numSlrs(); ++slr) {
        for (uint32_t frame = 0; frame < _backend.framesPerSlr();
             ++frame) {
            const uint32_t *have =
                image[slr].data() + frame * fpga::kFrameWords;
            const uint32_t *base =
                _base[slr].data() + frame * fpga::kFrameWords;
            if (std::equal(have, have + fpga::kFrameWords, base))
                continue;
            SnapshotDelta delta;
            delta.slr = slr;
            delta.frame = frame;
            delta.words.assign(have, have + fpga::kFrameWords);
            deltas.push_back(std::move(delta));
        }
    }
    return deltas;
}

std::optional<SnapshotInfo>
SnapshotStore::capture(bool pinned)
{
    auto image = _backend.readbackImage();
    if (_base.empty())
        _base = image;
    uint64_t cycle = _backend.mutCycles();
    std::vector<SnapshotDelta> deltas = diffAgainstBase(image);
    std::vector<std::pair<std::string, uint64_t>> inputs;
    for (const std::string &port : _backend.inputPorts())
        inputs.emplace_back(port, _backend.peekInput(port));
    SnapshotId id = hashOf(cycle, deltas, inputs);

    // Content addressing makes re-capturing the same state at the
    // same cycle idempotent: refresh the existing entry.
    for (Record &rec : _ring) {
        if (rec.id == id) {
            rec.pinned = rec.pinned || pinned;
            return infoOf(rec);
        }
    }

    if (_ring.size() >= _capacity) {
        auto victim =
            std::find_if(_ring.begin(), _ring.end(),
                         [](const Record &rec) {
                             return !rec.pinned;
                         });
        if (victim == _ring.end())
            return std::nullopt;  // ring full of pinned snapshots
        _ring.erase(victim);
    }

    Record rec;
    rec.id = id;
    rec.cycle = cycle;
    rec.deltas = std::move(deltas);
    rec.inputs = std::move(inputs);
    rec.pinned = pinned;
    _ring.push_back(std::move(rec));
    return infoOf(_ring.back());
}

void
SnapshotStore::restoreRecord(const Record &rec)
{
    // Materialize the target image (base + deltas), then write
    // back only the frames that differ from the backend's *current*
    // state — byte-identical to a full-image restore, with the
    // frame set minimized against live readback.
    std::vector<std::vector<uint32_t>> target = _base;
    for (const SnapshotDelta &delta : rec.deltas) {
        std::copy(delta.words.begin(), delta.words.end(),
                  target[delta.slr].begin() +
                      delta.frame * fpga::kFrameWords);
    }

    auto current = _backend.readbackImage();
    std::vector<toolchain::FrameSpan> spans;
    for (uint32_t slr = 0; slr < _backend.numSlrs(); ++slr) {
        for (uint32_t frame = 0; frame < _backend.framesPerSlr();
             ++frame) {
            const uint32_t *want =
                target[slr].data() + frame * fpga::kFrameWords;
            const uint32_t *have =
                current[slr].data() + frame * fpga::kFrameWords;
            if (std::equal(want, want + fpga::kFrameWords, have))
                continue;
            toolchain::FrameSpan span;
            span.slr = slr;
            span.farStart = frame;
            span.words.assign(want, want + fpga::kFrameWords);
            spans.push_back(std::move(span));
        }
    }
    if (!spans.empty())
        _backend.writeFrames(spans);

    // The cycle counter and input ports live outside the captured
    // frames: rewind the counter so the restored state and the
    // clock agree, and re-drive every port to its captured value
    // (deriving ports from the poke log would leave a port poked
    // *after* the capture at its live value when nothing was
    // recorded before).
    _backend.setMutCycles(rec.cycle);
    for (const auto &[port, value] : rec.inputs)
        _backend.poke(port, value);
}

std::optional<SnapshotInfo>
SnapshotStore::restore(SnapshotId id)
{
    for (const Record &rec : _ring) {
        if (rec.id != id)
            continue;
        restoreRecord(rec);
        return infoOf(rec);
    }
    return std::nullopt;
}

void
SnapshotStore::stepExactly(uint64_t cycles)
{
    // The step counter pauses the MUT after exactly @p cycles; the
    // extra external ticks let the pause latch settle without
    // advancing the gated clock once paused (same idiom as the
    // wire `step` command).
    _backend.stepCycles(cycles);
    _backend.run(cycles + 4);
}

std::optional<TravelResult>
SnapshotStore::travel(uint64_t targetCycle)
{
    const Record *best = nullptr;
    for (const Record &rec : _ring) {
        if (rec.cycle <= targetCycle &&
            (!best || rec.cycle > best->cycle))
            best = &rec;
    }
    if (!best)
        return std::nullopt;

    restoreRecord(*best);

    // Deterministic re-run: step to each recorded poke cycle in
    // order, re-apply the pokes, then step to the target. Always
    // ends paused — a zero-length replay still pauses the design.
    uint64_t cur = best->cycle;
    std::map<uint64_t, std::vector<const PokeRecord *>> groups;
    for (const PokeRecord &poke : _pokes) {
        if (poke.cycle > cur && poke.cycle <= targetCycle)
            groups[poke.cycle].push_back(&poke);
    }
    for (const auto &[cycle, pokes] : groups) {
        stepExactly(cycle - cur);
        cur = cycle;
        for (const PokeRecord *poke : pokes)
            _backend.poke(poke->port, poke->value);
    }
    stepExactly(targetCycle - cur);

    TravelResult result;
    result.from = infoOf(*best);
    result.cycle = targetCycle;
    result.replayed = targetCycle - best->cycle;
    return result;
}

void
SnapshotStore::recordPoke(const std::string &port, uint64_t value)
{
    uint64_t cycle = _backend.mutCycles();
    // A poke after a rewind rewrites history: the recorded future
    // belongs to an abandoned timeline and must not replay.
    while (!_pokes.empty() && _pokes.back().cycle > cycle)
        _pokes.pop_back();
    _pokes.push_back({cycle, port, value});
    compactPokes();
}

void
SnapshotStore::compactPokes()
{
    if (_pokes.size() <= kMaxPokeLog)
        return;
    // Replay only ever needs (a) the latest poke per port at or
    // before the oldest snapshot in the ring and (b) everything
    // newer — fold the prefix down to (a).
    uint64_t horizon = _backend.mutCycles();
    for (const Record &rec : _ring)
        horizon = std::min(horizon, rec.cycle);
    std::map<std::string, PokeRecord> latest;
    std::vector<PokeRecord> newer;
    for (PokeRecord &poke : _pokes) {
        if (poke.cycle <= horizon)
            latest[poke.port] = std::move(poke);
        else
            newer.push_back(std::move(poke));
    }
    std::vector<PokeRecord> kept;
    for (auto &[port, poke] : latest)
        kept.push_back(std::move(poke));
    std::sort(kept.begin(), kept.end(),
              [](const PokeRecord &a, const PokeRecord &b) {
                  return a.cycle < b.cycle;
              });
    kept.insert(kept.end(),
                std::make_move_iterator(newer.begin()),
                std::make_move_iterator(newer.end()));
    _pokes = std::move(kept);
}

void
SnapshotStore::autoTick(uint64_t interval)
{
    if (interval == 0)
        return;
    uint64_t cur = _backend.mutCycles();
    if (cur < _lastAutoCycle)
        _lastAutoCycle = cur;  // the session travelled backwards
    if (cur - _lastAutoCycle < interval)
        return;
    _lastAutoCycle = cur;
    capture(false);
}

std::vector<SnapshotInfo>
SnapshotStore::list() const
{
    std::vector<SnapshotInfo> out;
    for (const Record &rec : _ring)
        out.push_back(infoOf(rec));
    return out;
}

std::optional<SnapshotInfo>
SnapshotStore::info(SnapshotId id) const
{
    for (const Record &rec : _ring) {
        if (rec.id == id)
            return infoOf(rec);
    }
    return std::nullopt;
}

uint64_t
SnapshotStore::fullImageBytes() const
{
    return uint64_t(_backend.numSlrs()) * _backend.framesPerSlr() *
           fpga::kFrameWords * sizeof(uint32_t);
}

} // namespace zoomie::core
