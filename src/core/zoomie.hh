/**
 * @file
 * The Zoomie platform facade: instruments a user design with the
 * Debug Controller, compiles it (vendor-monolithic or VTI flow),
 * loads the bitstream onto the device model over JTAG, binds the
 * clock gate, and hands out a Debugger. This is the public
 * entry point examples and case studies use.
 */

#ifndef ZOOMIE_CORE_ZOOMIE_HH
#define ZOOMIE_CORE_ZOOMIE_HH

#include <memory>

#include "core/debugger.hh"
#include "core/instrument.hh"
#include "fpga/device.hh"
#include "jtag/jtag.hh"
#include "toolchain/flows.hh"

namespace zoomie::core {

/** Platform construction options. */
struct PlatformOptions
{
    InstrumentOptions instrument;
    fpga::DeviceSpec spec = fpga::makeTestDevice();

    /**
     * Compile with the VTI flow (the MUT becomes an iterated
     * partition) instead of the monolithic vendor flow.
     */
    bool useVti = false;
    double overprovision = 0.30;

    /**
     * Optional shared partition-artifact store (not owned): the
     * compile flow consults it before synthesizing and publishes
     * fresh results into it, so sessions compiling identical RTL
     * share synthesis work. Null disables caching.
     */
    toolchain::ArtifactStore *artifacts = nullptr;
};

/** Owns the full bring-up: instrumented design to live debugger. */
class Platform
{
  public:
    /** Instrument, compile, configure and start @p user_design. */
    static std::unique_ptr<Platform> create(
        const rtl::Design &user_design, PlatformOptions options);

    Debugger &debugger() { return *_debugger; }
    fpga::Device &device() { return *_device; }
    jtag::JtagHost &jtag() { return *_host; }
    const InstrumentResult &instrumented() const { return _meta; }
    const toolchain::CompileResult &compileResult() const
    {
        return _result;
    }

    /** Advance the external (free-running) clock @p n cycles. */
    void run(uint64_t n) { _device->runGlobal(n); }

    /** Drive / observe top-level design IO. */
    void poke(const std::string &port, uint64_t value)
    {
        _device->pokeInput(port, value);
    }
    uint64_t peek(const std::string &port)
    {
        return _device->peekOutput(port);
    }

    /** MUT cycles executed (the gated domain's count). */
    uint64_t mutCycles() const
    {
        return _device->cycles(_meta.gatedClock);
    }

    /**
     * Apply an RTL edit confined to the MUT: re-instruments,
     * recompiles incrementally through VTI (when enabled; otherwise
     * the vendor incremental flow), reloads the device and rebinds
     * the debugger.
     *
     * @return the compile result (with modeled times) of the edit
     */
    const toolchain::CompileResult &applyEdit(
        const rtl::Design &edited_design);

  private:
    Platform() = default;
    void loadAndAttach();

    PlatformOptions _options;
    InstrumentResult _meta;
    toolchain::CompileResult _result;
    std::unique_ptr<toolchain::Vti> _vti;
    std::unique_ptr<toolchain::VendorTool> _vendor;
    std::unique_ptr<fpga::Device> _device;
    std::unique_ptr<jtag::JtagHost> _host;
    std::unique_ptr<Debugger> _debugger;
};

} // namespace zoomie::core

#endif // ZOOMIE_CORE_ZOOMIE_HH
