/**
 * @file
 * Zoomie's instrumentation pass: inserts the Debug Controller (§3)
 * into a user design. The module under test (a scope prefix) is
 * moved onto a gated clock domain; pause buffers are interposed on
 * its declared decoupled interfaces; a trigger unit implementing
 * Algorithm 1 (value breakpoints with and/or masks, a 64-bit cycle
 * counter for stepping, assertion breakpoints from synthesized
 * SVAs, and a host pause request) drives the clock gate.
 *
 * Every controller knob is an ordinary register in the "zoomie/"
 * scope, so the host configures triggers at runtime through the
 * same state-injection mechanism used for user state (§3.3-3.4) —
 * no recompilation, ever.
 */

#ifndef ZOOMIE_CORE_INSTRUMENT_HH
#define ZOOMIE_CORE_INSTRUMENT_HH

#include <string>
#include <vector>

#include "rtl/ir.hh"
#include "sva/compiler.hh"

namespace zoomie::core {

/** Instrumentation request. */
struct InstrumentOptions
{
    /** Scope prefix of the module under test (e.g. "tile0/"). */
    std::string mutPrefix;

    /**
     * Signals observed by the value-breakpoint comparators (net or
     * register names). Reference values and masks are configured at
     * runtime; the set of observed wires is fixed at compile time,
     * like any hardware trigger.
     */
    std::vector<std::string> watchSignals;

    /** SVA assertion texts to synthesize into breakpoints. */
    std::vector<std::string> assertions;

    /** Interpose pause buffers on the MUT's declared interfaces. */
    bool insertPauseBuffers = true;
};

/** Outcome for one requested assertion. */
struct AssertionInfo
{
    std::string name;
    std::string text;
    bool synthesizable = false;
    std::string error;
    sva::MonitorStats stats;
};

/** Names of the controller's state (all under "zoomie/"). */
struct ControlRegs
{
    static constexpr const char *hostPause = "zoomie/host_pause";
    static constexpr const char *pauseState = "zoomie/pause_state";
    static constexpr const char *stepCount = "zoomie/step_count";
    static constexpr const char *stepArmed = "zoomie/step_armed";
    static constexpr const char *andSel = "zoomie/and_sel";
    static constexpr const char *orSel = "zoomie/or_sel";
    static constexpr const char *assertEn = "zoomie/assert_en";
    static constexpr const char *assertFired = "zoomie/assert_fired";

    static std::string bpRef(unsigned i)
    {
        return "zoomie/bp" + std::to_string(i) + "_ref";
    }
    static std::string bpAnd(unsigned i)
    {
        return "zoomie/bp" + std::to_string(i) + "_and";
    }
    static std::string bpOr(unsigned i)
    {
        return "zoomie/bp" + std::to_string(i) + "_or";
    }
    static std::string bpChg(unsigned i)
    {
        return "zoomie/bp" + std::to_string(i) + "_chg";
    }
    static std::string bpPrev(unsigned i)
    {
        return "zoomie/bp" + std::to_string(i) + "_prev";
    }
};

/** Instrumentation result. */
struct InstrumentResult
{
    rtl::Design design;
    uint8_t gatedClock = 0;
    std::string mutPrefix;
    std::vector<std::string> watchSignals;   ///< resolved, in order
    std::vector<unsigned> watchWidths;
    std::vector<AssertionInfo> assertions;
    uint32_t pauseBuffersInserted = 0;
    uint32_t reclockedState = 0;
};

/**
 * Instrument @p design with a Debug Controller.
 *
 * Unknown watch signals are fatal; unsynthesizable assertions are
 * reported in the result (and skipped), mirroring §5.4.
 */
InstrumentResult instrument(const rtl::Design &design,
                            const InstrumentOptions &options);

} // namespace zoomie::core

#endif // ZOOMIE_CORE_INSTRUMENT_HH
