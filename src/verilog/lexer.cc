#include "lexer.hh"

#include <cctype>

namespace zoomie::verilog {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
}

/** Digit value in @p base, or -1. Underscores are handled upstream. */
int
digitValue(char c, int base)
{
    int v;
    if (c >= '0' && c <= '9')
        v = c - '0';
    else if (c >= 'a' && c <= 'f')
        v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F')
        v = c - 'A' + 10;
    else
        return -1;
    return v < base ? v : -1;
}

/** Multi-character punctuation, longest first. */
const char *const kPuncts[] = {
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||",
    "<<",  ">>",  "~&",  "~|",  "~^", "^~", "+:", "-:", "->", "**",
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : _src(src) {}

    std::vector<Token> run()
    {
        std::vector<Token> out;
        for (;;) {
            skipSpaceAndComments(out);
            Token tok;
            tok.line = _line;
            tok.col = _col;
            if (_pos >= _src.size()) {
                tok.kind = Token::Kind::End;
                out.push_back(std::move(tok));
                return out;
            }
            char c = _src[_pos];
            if (identStart(c))
                lexIdent(tok);
            else if (std::isdigit(static_cast<unsigned char>(c)) ||
                     c == '\'')
                lexNumber(tok);
            else
                lexPunct(tok);
            out.push_back(std::move(tok));
        }
    }

  private:
    char peek(size_t ahead = 0) const
    {
        return _pos + ahead < _src.size() ? _src[_pos + ahead] : '\0';
    }

    void advance()
    {
        if (_src[_pos] == '\n') {
            ++_line;
            _col = 1;
        } else {
            ++_col;
        }
        ++_pos;
    }

    void skipSpaceAndComments(std::vector<Token> &out)
    {
        for (;;) {
            while (_pos < _src.size() &&
                   std::isspace(static_cast<unsigned char>(
                       _src[_pos])))
                advance();
            if (peek() == '/' && peek(1) == '/') {
                while (_pos < _src.size() && _src[_pos] != '\n')
                    advance();
                continue;
            }
            if (peek() == '/' && peek(1) == '*') {
                Token err;
                err.line = _line;
                err.col = _col;
                advance();
                advance();
                bool closed = false;
                while (_pos < _src.size()) {
                    if (peek() == '*' && peek(1) == '/') {
                        advance();
                        advance();
                        closed = true;
                        break;
                    }
                    advance();
                }
                if (!closed) {
                    err.kind = Token::Kind::Error;
                    err.text = "unterminated block comment";
                    out.push_back(std::move(err));
                }
                continue;
            }
            // Compiler directives (`timescale, `define...) are out
            // of subset: skip the rest of the line, like a comment,
            // so common headers don't poison whole files.
            if (peek() == '`') {
                while (_pos < _src.size() && _src[_pos] != '\n')
                    advance();
                continue;
            }
            return;
        }
    }

    void lexIdent(Token &tok)
    {
        tok.kind = Token::Kind::Ident;
        while (_pos < _src.size() && identChar(_src[_pos])) {
            tok.text += _src[_pos];
            advance();
        }
    }

    /**
     * Numbers: `123`, `8'hFF`, `'b1010`, `4'd9`; underscores
     * allowed between digits. x/z digits are an Error token (4-state
     * constants are out of subset).
     */
    void lexNumber(Token &tok)
    {
        tok.kind = Token::Kind::Number;
        uint64_t lead = 0;
        bool leadDigits = false;
        bool overflow = false;
        while (std::isdigit(static_cast<unsigned char>(peek())) ||
               peek() == '_') {
            if (peek() != '_') {
                leadDigits = true;
                if (lead > (UINT64_MAX - 9) / 10)
                    overflow = true;
                lead = lead * 10 + uint64_t(peek() - '0');
            }
            tok.text += peek();
            advance();
        }
        if (peek() != '\'') {
            // Plain unsized decimal.
            tok.value = lead;
            tok.width = 0;
            if (!leadDigits || overflow) {
                tok.kind = Token::Kind::Error;
                tok.text = overflow
                               ? "decimal literal overflows 64 bits"
                               : "malformed number";
            }
            return;
        }
        tok.text += '\'';
        advance();
        if (leadDigits && (lead == 0 || lead > 64)) {
            tok.kind = Token::Kind::Error;
            tok.text = "literal size " + std::to_string(lead) +
                       " out of range (1..64)";
            skipBasedDigits();
            return;
        }
        tok.width = leadDigits ? int(lead) : 32;
        int base = 0;
        char b = peek();
        if (b == 's' || b == 'S') {
            tok.kind = Token::Kind::Error;
            tok.text = "signed literals are not supported";
            advance();
            skipBasedDigits();
            return;
        }
        switch (b) {
          case 'b': case 'B': base = 2; break;
          case 'o': case 'O': base = 8; break;
          case 'd': case 'D': base = 10; break;
          case 'h': case 'H': base = 16; break;
          default:
            tok.kind = Token::Kind::Error;
            tok.text = std::string("bad literal base '") + b + "'";
            if (b != '\0')
                advance();
            skipBasedDigits();
            return;
        }
        tok.text += b;
        advance();
        uint64_t value = 0;
        bool any = false;
        while (_pos < _src.size()) {
            char c = peek();
            if (c == '_') {
                advance();
                continue;
            }
            if (c == 'x' || c == 'X' || c == 'z' || c == 'Z' ||
                c == '?') {
                tok.kind = Token::Kind::Error;
                tok.text = "x/z digits are not supported "
                           "(2-state subset)";
                skipBasedDigits();
                return;
            }
            int d = digitValue(c, base);
            if (d < 0)
                break;
            any = true;
            // Detect overflow of the 64-bit accumulator.
            if (value > (UINT64_MAX - uint64_t(d)) / uint64_t(base)) {
                tok.kind = Token::Kind::Error;
                tok.text = "literal overflows 64 bits";
                skipBasedDigits();
                return;
            }
            value = value * uint64_t(base) + uint64_t(d);
            tok.text += c;
            advance();
        }
        if (!any) {
            tok.kind = Token::Kind::Error;
            tok.text = "literal has no digits";
            return;
        }
        // A sized literal must fit its declared width.
        if (tok.width < 64 && tok.width > 0 &&
            value >> tok.width != 0) {
            tok.kind = Token::Kind::Error;
            tok.text = "literal value does not fit in " +
                       std::to_string(tok.width) + " bits";
            return;
        }
        tok.value = value;
    }

    void skipBasedDigits()
    {
        while (_pos < _src.size() &&
               (identChar(peek()) || peek() == '?'))
            advance();
    }

    void lexPunct(Token &tok)
    {
        tok.kind = Token::Kind::Punct;
        for (const char *p : kPuncts) {
            size_t len = std::char_traits<char>::length(p);
            if (_src.compare(_pos, len, p) == 0) {
                tok.text = p;
                for (size_t i = 0; i < len; ++i)
                    advance();
                return;
            }
        }
        char c = _src[_pos];
        static const std::string kSingles = "()[]{}:;,.#?@=+-*/%&|^~<>!";
        if (kSingles.find(c) == std::string::npos) {
            tok.kind = Token::Kind::Error;
            tok.text = std::string("stray character '") + c + "'";
            advance();
            return;
        }
        tok.text = c;
        advance();
    }

    const std::string &_src;
    size_t _pos = 0;
    int _line = 1;
    int _col = 1;
};

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    return Lexer(source).run();
}

} // namespace zoomie::verilog
