/**
 * @file
 * Tokenizer for the synthesizable Verilog-2005 subset the front end
 * accepts (verilog.hh). Produces a flat token stream with source
 * positions (line, column) so every later stage — parser,
 * elaborator — can report structured {file,line,col,message}
 * diagnostics instead of aborting. Handles // and block comments,
 * identifiers (keywords are recognized by text, not a separate
 * kind), sized and unsized numeric literals with underscores
 * (`8'hFF`, `'b1010`, `42`), and the multi-character operators of
 * the expression grammar. x/z digits and other out-of-subset
 * lexemes become Error tokens carrying a message, never exceptions.
 */

#ifndef ZOOMIE_VERILOG_LEXER_HH
#define ZOOMIE_VERILOG_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace zoomie::verilog {

/** One lexed token. */
struct Token
{
    enum class Kind : uint8_t {
        End,    ///< end of input
        Ident,  ///< identifier or keyword (text distinguishes)
        Number, ///< numeric literal (value/width decoded)
        Punct,  ///< operator or punctuation (text is the lexeme)
        Error,  ///< bad lexeme; text carries the message
    };

    Kind kind = Kind::End;
    std::string text;   ///< lexeme (Error: the message)
    uint64_t value = 0; ///< Number: decoded value
    int width = 0;      ///< Number: declared size; 0 = unsized
    int line = 1;
    int col = 1;
};

/**
 * Lex the whole input up front. Lexing never fails as a whole:
 * malformed lexemes become Error tokens in place, so the parser
 * can turn each into one diagnostic and resynchronize.
 */
std::vector<Token> lex(const std::string &source);

} // namespace zoomie::verilog

#endif // ZOOMIE_VERILOG_LEXER_HH
