#include "verilog.hh"

#include "verilog/elaborate.hh"
#include "verilog/parser.hh"

namespace zoomie::verilog {

std::string
Diag::render() const
{
    const char *sev =
        severity == Severity::Error ? "error" : "warning";
    return file + ":" + std::to_string(line) + ":" +
           std::to_string(col) + ": " + sev + ": " + message;
}

bool
CompileResult::hasErrors() const
{
    for (const Diag &d : diags)
        if (d.severity == Diag::Severity::Error)
            return true;
    return false;
}

std::string
CompileResult::renderDiags() const
{
    std::string out;
    for (const Diag &d : diags) {
        out += d.render();
        out += '\n';
    }
    return out;
}

CompileResult
compile(const std::string &source, const CompileOptions &options)
{
    CompileResult result;
    ast::SourceUnit unit =
        parse(source, options.file, result.diags);
    if (result.hasErrors())
        return result;
    result.design = elaborate(unit, options, result.diags,
                              result.top);
    result.ok = result.design.has_value() && !result.hasErrors();
    if (!result.ok)
        result.design.reset();
    return result;
}

} // namespace zoomie::verilog
