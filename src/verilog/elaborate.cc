#include "elaborate.hh"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "rtl/builder.hh"

namespace zoomie::verilog {

namespace {

using namespace ast;

/** Unwind to the enclosing module-item loop after a diagnostic. */
struct ElabAbort
{
};

/** Unwind the whole elaboration (error cap / size cap reached). */
struct ElabFatal
{
};

/** Address width needed to index @p depth entries. */
unsigned
addrBits(uint32_t depth)
{
    unsigned bits = 0;
    while ((uint64_t(1) << bits) < depth && bits < 31)
        ++bits;
    return bits ? bits : 1;
}

/** Natural width of an elaborated parameter/constant value. */
unsigned
constWidth(uint64_t value)
{
    return (value >> 32) != 0 ? 64 : 32;
}

class Elaborator
{
  public:
    Elaborator(const SourceUnit &unit, const CompileOptions &opts,
               std::vector<Diag> &diags)
        : _unit(unit), _opts(opts), _diags(diags)
    {
    }

    std::optional<rtl::Design> run(std::string &topName)
    {
        try {
            const Module *top = selectTop();
            if (!top)
                return std::nullopt;
            topName = top->name;
            elabTop(*top);
        } catch (const ElabAbort &) {
            return std::nullopt;
        } catch (const ElabFatal &) {
            return std::nullopt;
        }
        if (_errors > 0)
            return std::nullopt;
        rtl::Design design = _b->peek();
        // The elaborator never calls Builder::finish()/validate()
        // (they abort the process); check() reports residual
        // violations — in practice only combinational cycles routed
        // through logic, which the placeholder-rewiring scheme
        // cannot see locally.
        std::vector<std::string> violations = design.check();
        if (!violations.empty()) {
            for (const std::string &v : violations)
                errorKeep(0, 0, v + " (combinational loop?)");
            return std::nullopt;
        }
        return design;
    }

  private:
    static constexpr size_t kMaxErrors = 60;
    static constexpr size_t kMaxNodes = 500000;
    static constexpr int kMaxDepth = 32;
    static constexpr uint64_t kMaxMemDepth = 65536;

    // ---- symbols --------------------------------------------------
    struct Entry
    {
        enum class Kind : uint8_t {
            Unset,  ///< declared, role not yet known
            Wire,   ///< placeholder-driven net (incl. input ports)
            Flop,   ///< posedge always target
            Comb,   ///< always @* target
            Memory,
            Clock,
            Param,
        };

        Kind kind = Kind::Unset;
        unsigned width = 1;
        int line = 0;
        int col = 0;
        bool declaredReg = false;
        bool isPort = false;
        bool isInput = false;
        bool isOutput = false;
        int ownerBlock = -1; ///< always block that assigns this reg

        rtl::Value placeholder{};
        bool resolved = false;
        rtl::Value value{};
        bool readBeforeDrive = false;

        rtl::RegHandle reg{};
        uint8_t clock = 0; ///< Clock: domain index

        rtl::MemHandle mem{};
        uint32_t depth = 0;

        uint64_t paramValue = 0;
    };

    /** Per-module elaboration state. */
    struct ModCtx
    {
        const Module *mod = nullptr;
        std::map<std::string, uint64_t> params;
        std::map<std::string, Entry> entries;
        std::vector<uint8_t> blockClock; ///< per always index
        std::set<size_t> badBlocks;      ///< failed scanAlways
    };

    /** What an instance connection binds a child port to. */
    struct Sym
    {
        enum class Kind : uint8_t { Value, Clock };
        Kind kind = Kind::Value;
        rtl::Value v{};
        uint8_t clock = 0;
    };

    struct ProcState
    {
        std::map<std::string, rtl::Value> pending;
    };

    /** Expression-evaluation context. */
    struct EvalCtx
    {
        ModCtx &m;
        ProcState *ps = nullptr;
        /** Targets of the always @* block being executed. */
        const std::set<std::string> *combTargets = nullptr;
    };

    struct ScopeGuard
    {
        rtl::Builder &b;
        ScopeGuard(rtl::Builder &builder, const std::string &scope)
            : b(builder)
        {
            b.pushScope(scope);
        }
        ~ScopeGuard() { b.popScope(); }
    };

    // ---- diagnostics ----------------------------------------------
    void emit(Diag::Severity sev, int line, int col,
              std::string message)
    {
        Diag d;
        d.severity = sev;
        d.file = _opts.file;
        d.line = line;
        d.col = col;
        d.message = std::move(message);
        _diags.push_back(std::move(d));
        if (sev == Diag::Severity::Error &&
            ++_errors >= kMaxErrors)
            throw ElabFatal{};
    }

    [[noreturn]] void errorAt(int line, int col, std::string msg)
    {
        emit(Diag::Severity::Error, line, col, std::move(msg));
        throw ElabAbort{};
    }

    /** Record an error without unwinding (epilogue sweeps). */
    void errorKeep(int line, int col, std::string msg)
    {
        emit(Diag::Severity::Error, line, col, std::move(msg));
    }

    void warnAt(int line, int col, std::string msg)
    {
        emit(Diag::Severity::Warning, line, col, std::move(msg));
    }

    void checkNodeBudget()
    {
        if (_b->peek().nodes.size() > kMaxNodes) {
            errorKeep(0, 0, "design exceeds " +
                                std::to_string(kMaxNodes) +
                                " nodes after elaboration");
            throw ElabFatal{};
        }
    }

    // ---- net plumbing ---------------------------------------------
    /** Follow placeholder-to-driver links to the final net. */
    rtl::Value chase(rtl::Value v) const
    {
        for (int i = 0; i < 1000000; ++i) {
            auto it = _forward.find(v.id);
            if (it == _forward.end())
                return v;
            v.id = it->second;
        }
        return v; // unreachable: links are acyclic by construction
    }

    rtl::Value fit(rtl::Value v, unsigned width)
    {
        if (v.width == width)
            return v;
        if (v.width < width)
            return _b->zext(v, width);
        return _b->slice(v, 0, width);
    }

    rtl::Value boolify(rtl::Value v)
    {
        return v.width == 1 ? v : _b->redOr(v);
    }

    rtl::Value pathAnd(rtl::Value path, rtl::Value cond)
    {
        return path.valid() ? _b->land(path, cond) : cond;
    }

    /** Resolve @p e (a Wire/Comb placeholder) to driver @p v. */
    void resolveNet(Entry &e, const std::string &name,
                    rtl::Value v, int line, int col)
    {
        v = chase(fit(v, e.width));
        if (v.id == e.placeholder.id)
            errorAt(line, col,
                    "'" + name + "' is driven by itself");
        _b->rewireConsumers(e.placeholder.id, v.id,
                            [](const std::string &) { return true; });
        _forward[e.placeholder.id] = v.id;
        e.value = v;
        e.resolved = true;
    }

    // ---- constant expressions -------------------------------------
    std::optional<uint64_t> cEval(const ModCtx &m, const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Number:
            return e.value;
          case Expr::Kind::Ident: {
            auto it = m.params.find(e.name);
            if (it == m.params.end())
                return std::nullopt;
            return it->second;
          }
          case Expr::Kind::Unary: {
            auto v = cEval(m, *e.ops[0]);
            if (!v)
                return std::nullopt;
            if (e.name == "+")
                return *v;
            if (e.name == "-")
                return uint64_t(0) - *v;
            if (e.name == "~")
                return ~*v;
            if (e.name == "!")
                return uint64_t(*v == 0);
            return std::nullopt;
          }
          case Expr::Kind::Binary: {
            auto a = cEval(m, *e.ops[0]);
            auto b = cEval(m, *e.ops[1]);
            if (!a || !b)
                return std::nullopt;
            const std::string &op = e.name;
            if (op == "+") return *a + *b;
            if (op == "-") return *a - *b;
            if (op == "*") return *a * *b;
            if (op == "/") return *b ? *a / *b
                                     : std::optional<uint64_t>{};
            if (op == "%") return *b ? *a % *b
                                     : std::optional<uint64_t>{};
            if (op == "<<") return *b >= 64 ? 0 : *a << *b;
            if (op == ">>") return *b >= 64 ? 0 : *a >> *b;
            if (op == "&") return *a & *b;
            if (op == "|") return *a | *b;
            if (op == "^") return *a ^ *b;
            if (op == "^~" || op == "~^") return ~(*a ^ *b);
            if (op == "==") return uint64_t(*a == *b);
            if (op == "!=") return uint64_t(*a != *b);
            if (op == "<") return uint64_t(*a < *b);
            if (op == "<=") return uint64_t(*a <= *b);
            if (op == ">") return uint64_t(*a > *b);
            if (op == ">=") return uint64_t(*a >= *b);
            if (op == "&&") return uint64_t(*a && *b);
            if (op == "||") return uint64_t(*a || *b);
            return std::nullopt;
          }
          case Expr::Kind::Ternary: {
            auto c = cEval(m, *e.ops[0]);
            auto a = cEval(m, *e.ops[1]);
            auto b = cEval(m, *e.ops[2]);
            if (!c || !a || !b)
                return std::nullopt;
            return *c ? *a : *b;
          }
          default:
            return std::nullopt;
        }
    }

    uint64_t cEvalOrError(const ModCtx &m, const Expr &e,
                          const std::string &what)
    {
        auto v = cEval(m, e);
        if (!v)
            errorAt(e.line, e.col,
                    what + " must be a constant expression");
        return *v;
    }

    /** [msb:0] range to a width; absent range = 1 bit. */
    unsigned rangeWidth(const ModCtx &m, const Range &range)
    {
        if (!range.present)
            return 1;
        uint64_t msb = cEvalOrError(m, *range.msb, "range bound");
        uint64_t lsb = cEvalOrError(m, *range.lsb, "range bound");
        if (lsb != 0)
            errorAt(range.lsb->line, range.lsb->col,
                    "ranges must be [N:0] in this subset");
        if (msb > 63)
            errorAt(range.msb->line, range.msb->col,
                    "width " + std::to_string(msb + 1) +
                        " exceeds the 64-bit limit");
        return unsigned(msb) + 1;
    }

    /** Best-effort width for pre-elaboration port sizing. */
    unsigned tryRangeWidth(const ModCtx &m, const Range &range)
    {
        if (!range.present)
            return 1;
        auto msb = cEval(m, *range.msb);
        auto lsb = cEval(m, *range.lsb);
        if (!msb || !lsb || *lsb != 0 || *msb > 63)
            return 1; // the real diagnostic comes from rangeWidth
        return unsigned(*msb) + 1;
    }

    uint32_t arrayDepth(const ModCtx &m, const Range &range)
    {
        uint64_t first = cEvalOrError(m, *range.msb, "array bound");
        uint64_t last = cEvalOrError(m, *range.lsb, "array bound");
        if (first != 0 || last < first)
            errorAt(range.msb->line, range.msb->col,
                    "memory ranges must be [0:depth-1]");
        if (last + 1 > kMaxMemDepth)
            errorAt(range.lsb->line, range.lsb->col,
                    "memory depth " + std::to_string(last + 1) +
                        " exceeds " + std::to_string(kMaxMemDepth));
        return uint32_t(last) + 1;
    }

    // ---- module table / top selection -----------------------------
    const Module *findModule(const std::string &name) const
    {
        auto it = _mods.find(name);
        return it == _mods.end() ? nullptr : it->second;
    }

    const Module *selectTop()
    {
        if (_unit.modules.empty()) {
            errorKeep(0, 0, "input contains no modules");
            return nullptr;
        }
        for (const Module &mod : _unit.modules) {
            if (_mods.count(mod.name)) {
                errorKeep(mod.line, mod.col,
                          "duplicate module '" + mod.name + "'");
                continue;
            }
            _mods[mod.name] = &mod;
        }
        if (_errors > 0)
            return nullptr;
        if (!_opts.top.empty()) {
            const Module *top = findModule(_opts.top);
            if (!top)
                errorKeep(0, 0, "top module '" + _opts.top +
                                    "' not found");
            return top;
        }
        std::set<std::string> instantiated;
        for (const Module &mod : _unit.modules)
            for (const Instance &inst : mod.instances)
                instantiated.insert(inst.moduleName);
        std::vector<const Module *> roots;
        for (const Module &mod : _unit.modules)
            if (!instantiated.count(mod.name))
                roots.push_back(&mod);
        if (roots.size() == 1)
            return roots[0];
        if (roots.empty()) {
            errorKeep(0, 0, "no top module: every module is "
                            "instantiated by another");
            return nullptr;
        }
        std::string names;
        for (const Module *r : roots)
            names += (names.empty() ? "" : ", ") + r->name;
        errorKeep(0, 0, "ambiguous top module (" + names +
                            "); select one explicitly");
        return nullptr;
    }

    // ---- clock-sink analysis --------------------------------------
    /**
     * Port/identifier names of @p mod that (transitively) feed a
     * posedge sensitivity list — these must be bound to clocks.
     */
    const std::set<std::string> &clockSinks(const Module &mod)
    {
        auto it = _sinkMemo.find(&mod);
        if (it != _sinkMemo.end())
            return it->second;
        _sinkMemo[&mod]; // breaks instantiation cycles
        std::set<std::string> sinks;
        for (const AlwaysItem &a : mod.always)
            if (!a.comb)
                sinks.insert(a.clock);
        for (const Instance &inst : mod.instances) {
            const Module *child = findModule(inst.moduleName);
            if (!child)
                continue;
            const std::set<std::string> &cs = clockSinks(*child);
            for (size_t i = 0; i < inst.conns.size(); ++i) {
                const Connection &conn = inst.conns[i];
                std::string port = conn.port;
                if (inst.connsPositional) {
                    if (i >= child->portOrder.size())
                        break;
                    port = child->portOrder[i];
                }
                if (cs.count(port) && conn.expr &&
                    conn.expr->kind == Expr::Kind::Ident)
                    sinks.insert(conn.expr->name);
            }
        }
        return _sinkMemo[&mod] = std::move(sinks);
    }

    // ---- ports ----------------------------------------------------
    struct PortInfo
    {
        std::string name;
        Dir dir = Dir::Input;
        bool isReg = false;
        unsigned width = 1;
        int line = 0;
        int col = 0;
    };

    static const PortDecl *findPortDecl(const Module &mod,
                                        const std::string &name)
    {
        for (const PortDecl &p : mod.ports)
            if (p.name == name)
                return &p;
        return nullptr;
    }

    /**
     * Validate the port declarations against the header list and
     * merge classic-style body redeclarations (`output [3:0] q;`
     * followed by `reg [3:0] q;`). Net declarations absorbed into a
     * port land in @p consumedNets.
     */
    std::vector<PortInfo> buildPorts(ModCtx &m,
                                     std::set<size_t> &consumedNets)
    {
        const Module &mod = *m.mod;
        std::vector<PortInfo> out;
        std::set<std::string> seen;
        for (const PortDecl &p : mod.ports) {
            if (std::find(mod.portOrder.begin(),
                          mod.portOrder.end(),
                          p.name) == mod.portOrder.end())
                errorKeep(p.line, p.col,
                          "'" + p.name + "' is declared as a port "
                          "but is not in the module header");
        }
        for (const std::string &name : mod.portOrder) {
            if (!seen.insert(name).second) {
                errorKeep(mod.line, mod.col,
                          "port '" + name +
                              "' listed twice in the header");
                continue;
            }
            const PortDecl *decl = findPortDecl(mod, name);
            if (!decl) {
                errorKeep(mod.line, mod.col,
                          "port '" + name + "' has no input/output "
                          "declaration");
                continue;
            }
            PortInfo info;
            info.name = name;
            info.dir = decl->dir;
            info.isReg = decl->isReg;
            info.line = decl->line;
            info.col = decl->col;
            try {
                info.width = rangeWidth(m, decl->range);
            } catch (const ElabAbort &) {
                info.width = 1;
            }
            for (size_t j = 0; j < mod.nets.size(); ++j) {
                const NetDecl &net = mod.nets[j];
                if (net.name != name)
                    continue;
                consumedNets.insert(j);
                if (net.array.present) {
                    errorKeep(net.line, net.col,
                              "port '" + name +
                                  "' cannot be a memory");
                    continue;
                }
                unsigned nw = 1;
                try {
                    nw = rangeWidth(m, net.range);
                } catch (const ElabAbort &) {
                }
                if (nw != info.width)
                    errorKeep(net.line, net.col,
                              "conflicting widths for port '" +
                                  name + "'");
                if (net.isReg) {
                    if (decl->dir != Dir::Output)
                        errorKeep(net.line, net.col,
                                  "input port '" + name +
                                      "' cannot be a reg");
                    else
                        info.isReg = true;
                }
            }
            out.push_back(std::move(info));
        }
        return out;
    }

    // ---- parameters -----------------------------------------------
    std::map<std::string, uint64_t>
    resolveParams(const Module &mod,
                  const std::map<std::string, uint64_t> &overrides)
    {
        ModCtx tmp;
        tmp.mod = &mod;
        for (const ParamDecl &p : mod.params) {
            if (tmp.params.count(p.name)) {
                errorKeep(p.line, p.col,
                          "duplicate parameter '" + p.name + "'");
                continue;
            }
            uint64_t value;
            auto ov = overrides.find(p.name);
            if (!p.local && ov != overrides.end())
                value = ov->second;
            else
                value = cEvalOrError(tmp, *p.value,
                                     "parameter '" + p.name + "'");
            tmp.params[p.name] = value;
        }
        return std::move(tmp.params);
    }

    // ---- expressions ----------------------------------------------
    Entry *findEntry(ModCtx &m, const std::string &name)
    {
        auto it = m.entries.find(name);
        return it == m.entries.end() ? nullptr : &it->second;
    }

    Entry &requireEntry(EvalCtx &x, const std::string &name,
                        int line, int col)
    {
        Entry *e = findEntry(x.m, name);
        if (!e)
            errorAt(line, col,
                    "undeclared identifier '" + name + "'");
        return *e;
    }

    rtl::Value readSym(EvalCtx &x, const std::string &name,
                       int line, int col)
    {
        Entry &e = requireEntry(x, name, line, col);
        switch (e.kind) {
          case Entry::Kind::Param:
            return _b->lit(e.paramValue, constWidth(e.paramValue));
          case Entry::Kind::Clock:
            errorAt(line, col, "clock '" + name +
                                   "' cannot be used in an "
                                   "expression");
          case Entry::Kind::Memory:
            errorAt(line, col,
                    "memory '" + name + "' must be indexed");
          case Entry::Kind::Flop:
            // Nonblocking semantics: reads see the registered
            // value, even inside the assigning block.
            return e.reg.q;
          case Entry::Kind::Comb:
            if (x.combTargets && x.combTargets->count(name)) {
                auto it = x.ps->pending.find(name);
                if (it != x.ps->pending.end())
                    return it->second;
                errorAt(line, col,
                        "'" + name + "' is read in always @* "
                        "before it is assigned");
            }
            [[fallthrough]];
          case Entry::Kind::Wire:
          case Entry::Kind::Unset:
            if (e.resolved)
                return e.value = chase(e.value);
            e.readBeforeDrive = true;
            return e.placeholder;
        }
        errorAt(line, col, "internal: bad symbol kind");
    }

    rtl::Value evalBinary(const std::string &op, rtl::Value a,
                          rtl::Value b, int line, int col)
    {
        unsigned w = std::max(a.width, b.width);
        if (op == "+")
            return _b->add(fit(a, w), fit(b, w));
        if (op == "-")
            return _b->sub(fit(a, w), fit(b, w));
        if (op == "*")
            return _b->mul(fit(a, w), fit(b, w));
        if (op == "&")
            return _b->band(fit(a, w), fit(b, w));
        if (op == "|")
            return _b->bor(fit(a, w), fit(b, w));
        if (op == "^")
            return _b->bxor(fit(a, w), fit(b, w));
        if (op == "^~" || op == "~^")
            return _b->bnot(_b->bxor(fit(a, w), fit(b, w)));
        if (op == "==")
            return _b->eq(fit(a, w), fit(b, w));
        if (op == "!=")
            return _b->ne(fit(a, w), fit(b, w));
        if (op == "<")
            return _b->ult(fit(a, w), fit(b, w));
        if (op == "<=")
            return _b->ule(fit(a, w), fit(b, w));
        if (op == ">")
            return _b->ult(fit(b, w), fit(a, w));
        if (op == ">=")
            return _b->ule(fit(b, w), fit(a, w));
        if (op == "<<")
            return _b->shl(a, b);
        if (op == ">>")
            return _b->shr(a, b);
        if (op == "&&")
            return _b->land(boolify(a), boolify(b));
        if (op == "||")
            return _b->lor(boolify(a), boolify(b));
        errorAt(line, col,
                "operator '" + op + "' is not supported");
    }

    rtl::Value evalUnary(const std::string &op, rtl::Value v,
                         int line, int col)
    {
        if (op == "+")
            return v;
        if (op == "-")
            return _b->sub(_b->lit(0, v.width), v);
        if (op == "~")
            return _b->bnot(v);
        if (op == "!")
            return _b->lnot(boolify(v));
        if (op == "&")
            return _b->redAnd(v);
        if (op == "|")
            return _b->redOr(v);
        if (op == "^")
            return _b->redXor(v);
        if (op == "~&")
            return _b->bnot(_b->redAnd(v));
        if (op == "~|")
            return _b->bnot(_b->redOr(v));
        if (op == "~^" || op == "^~")
            return _b->bnot(_b->redXor(v));
        errorAt(line, col,
                "operator '" + op + "' is not supported");
    }

    rtl::Value evalExpr(EvalCtx &x, const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Number: {
            unsigned w = e.width ? unsigned(e.width)
                                 : constWidth(e.value);
            return _b->lit(e.value, w);
          }
          case Expr::Kind::Ident:
            return readSym(x, e.name, e.line, e.col);
          case Expr::Kind::Unary:
            return evalUnary(e.name, evalExpr(x, *e.ops[0]),
                             e.line, e.col);
          case Expr::Kind::Binary: {
            if (e.name == "/" || e.name == "%") {
                auto v = cEval(x.m, e);
                if (!v)
                    errorAt(e.line, e.col,
                            "'" + e.name + "' is only supported "
                            "in constant expressions");
                return _b->lit(*v, constWidth(*v));
            }
            rtl::Value a = evalExpr(x, *e.ops[0]);
            rtl::Value b = evalExpr(x, *e.ops[1]);
            return evalBinary(e.name, a, b, e.line, e.col);
          }
          case Expr::Kind::Ternary: {
            rtl::Value c = boolify(evalExpr(x, *e.ops[0]));
            rtl::Value t = evalExpr(x, *e.ops[1]);
            rtl::Value f = evalExpr(x, *e.ops[2]);
            unsigned w = std::max(t.width, f.width);
            return _b->mux(c, fit(t, w), fit(f, w));
          }
          case Expr::Kind::Concat: {
            unsigned total = 0;
            std::vector<rtl::Value> parts;
            for (const ExprP &op : e.ops)
                parts.push_back(evalExpr(x, *op));
            for (const rtl::Value &p : parts)
                total += p.width;
            if (total > 64)
                errorAt(e.line, e.col,
                        "concatenation is " + std::to_string(total) +
                            " bits wide (limit 64)");
            rtl::Value acc = parts[0];
            for (size_t i = 1; i < parts.size(); ++i)
                acc = _b->concat(acc, parts[i]);
            return acc;
          }
          case Expr::Kind::Repl: {
            uint64_t n = cEvalOrError(x.m, *e.ops[0],
                                      "replication count");
            if (n == 0)
                errorAt(e.line, e.col,
                        "replication count must be positive");
            rtl::Value v = evalExpr(x, *e.ops[1]);
            if (n * v.width > 64)
                errorAt(e.line, e.col,
                        "replication is " +
                            std::to_string(n * v.width) +
                            " bits wide (limit 64)");
            rtl::Value acc = v;
            for (uint64_t i = 1; i < n; ++i)
                acc = _b->concat(acc, v);
            return acc;
          }
          case Expr::Kind::Select: {
            Entry &ent = requireEntry(x, e.name, e.line, e.col);
            if (ent.kind == Entry::Kind::Memory) {
                if (e.isRange)
                    errorAt(e.line, e.col,
                            "part-select of memory '" + e.name +
                                "' is not supported");
                rtl::Value addr = fit(evalExpr(x, *e.ops[0]),
                                      addrBits(ent.depth));
                return _b->memReadAsync(ent.mem, addr);
            }
            rtl::Value base = readSym(x, e.name, e.line, e.col);
            if (e.isRange) {
                uint64_t msb = cEvalOrError(x.m, *e.ops[0],
                                            "part-select bound");
                uint64_t lsb = cEvalOrError(x.m, *e.ops[1],
                                            "part-select bound");
                if (msb < lsb || msb >= base.width)
                    errorAt(e.line, e.col,
                            "select [" + std::to_string(msb) + ":" +
                                std::to_string(lsb) +
                                "] is out of range for '" + e.name +
                                "' (" + std::to_string(base.width) +
                                " bits)");
                return _b->slice(base, unsigned(lsb),
                                 unsigned(msb - lsb) + 1);
            }
            if (auto idx = cEval(x.m, *e.ops[0])) {
                if (*idx >= base.width)
                    errorAt(e.line, e.col,
                            "bit " + std::to_string(*idx) +
                                " is out of range for '" + e.name +
                                "' (" +
                                std::to_string(base.width) +
                                " bits)");
                return _b->slice(base, unsigned(*idx), 1);
            }
            rtl::Value idx = evalExpr(x, *e.ops[0]);
            return _b->slice(_b->shr(base, idx), 0, 1);
          }
        }
        errorAt(e.line, e.col, "internal: bad expression kind");
    }

    // ---- always blocks --------------------------------------------
    struct ExecCtx
    {
        ModCtx &m;
        ProcState &ps;
        bool clocked = false;
        uint8_t clock = 0;
        const std::set<std::string> *targets = nullptr;
        size_t block = 0;
    };

    static void collectLhs(const Stmt &s,
                           std::vector<const Expr *> &out)
    {
        switch (s.kind) {
          case Stmt::Kind::Block:
            for (const StmtP &c : s.stmts)
                collectLhs(*c, out);
            break;
          case Stmt::Kind::If:
            for (const StmtP &c : s.thenStmts)
                collectLhs(*c, out);
            for (const StmtP &c : s.elseStmts)
                collectLhs(*c, out);
            break;
          case Stmt::Kind::Case:
            for (const Stmt::CaseItem &item : s.items)
                for (const StmtP &c : item.body)
                    collectLhs(*c, out);
            break;
          case Stmt::Kind::Blocking:
          case Stmt::Kind::NonBlocking:
            out.push_back(s.lhs.get());
            break;
        }
    }

    void scanAlways(ModCtx &m, size_t idx)
    {
        const AlwaysItem &a = m.mod->always[idx];
        uint8_t clock = 0;
        if (!a.comb) {
            Entry *ce = findEntry(m, a.clock);
            if (!ce)
                errorAt(a.line, a.col,
                        "undeclared identifier '" + a.clock +
                            "' in the sensitivity list");
            if (ce->kind != Entry::Kind::Clock)
                errorAt(a.line, a.col,
                        "'" + a.clock + "' is not a clock input; "
                        "derived clocks are not supported");
            clock = ce->clock;
        }
        m.blockClock[idx] = clock;
        std::vector<const Expr *> lhsList;
        collectLhs(*a.body, lhsList);
        for (const Expr *lhs : lhsList) {
            Entry *e = findEntry(m, lhs->name);
            if (!e)
                errorAt(lhs->line, lhs->col,
                        "undeclared identifier '" + lhs->name +
                            "'");
            if (e->kind == Entry::Kind::Memory) {
                if (lhs->kind != Expr::Kind::Select)
                    errorAt(lhs->line, lhs->col,
                            "memory '" + lhs->name +
                                "' must be written with an index");
                if (a.comb)
                    errorAt(lhs->line, lhs->col,
                            "memories can only be written in "
                            "clocked always blocks");
                continue;
            }
            if (e->kind == Entry::Kind::Clock ||
                e->kind == Entry::Kind::Param)
                errorAt(lhs->line, lhs->col,
                        "cannot assign to '" + lhs->name + "'");
            if (e->isInput)
                errorAt(lhs->line, lhs->col,
                        "cannot assign to input port '" +
                            lhs->name + "'");
            if (!e->declaredReg)
                errorAt(lhs->line, lhs->col,
                        "assignment to wire '" + lhs->name +
                            "' in an always block (declare it "
                            "'reg')");
            if (e->ownerBlock >= 0 &&
                e->ownerBlock != int(idx))
                errorAt(lhs->line, lhs->col,
                        "'" + lhs->name + "' is assigned in more "
                        "than one always block");
            if (e->ownerBlock == int(idx))
                continue;
            e->ownerBlock = int(idx);
            if (a.comb) {
                e->kind = Entry::Kind::Comb;
            } else {
                e->kind = Entry::Kind::Flop;
                e->reg = _b->reg(lhs->name, e->width, 0, clock);
            }
        }
    }

    /** Pre-branch value a signal holds when a path skips it. */
    rtl::Value baseValue(ExecCtx &x, const std::string &name,
                         int line, int col)
    {
        Entry &e = *findEntry(x.m, name);
        if (x.clocked)
            return e.reg.q; // hold
        errorAt(line, col,
                "latch inferred: '" + name + "' is not assigned "
                "on every path of always @*; assign a default "
                "value first");
    }

    void mergeBranches(ExecCtx &x, rtl::Value cond,
                       ProcState &psT, ProcState &psE,
                       int line, int col)
    {
        std::set<std::string> names;
        for (const auto &kv : psT.pending)
            names.insert(kv.first);
        for (const auto &kv : psE.pending)
            names.insert(kv.first);
        for (const std::string &name : names) {
            auto tIt = psT.pending.find(name);
            auto eIt = psE.pending.find(name);
            rtl::Value tv = tIt != psT.pending.end()
                                ? tIt->second
                                : baseValue(x, name, line, col);
            rtl::Value ev = eIt != psE.pending.end()
                                ? eIt->second
                                : baseValue(x, name, line, col);
            x.ps.pending[name] =
                tv.id == ev.id ? tv : _b->mux(cond, tv, ev);
        }
    }

    /** Write @p data into bits [lo, lo+len) of @p cur. */
    rtl::Value setBits(rtl::Value cur, unsigned lo, unsigned len,
                       rtl::Value data)
    {
        rtl::Value out = fit(data, len);
        if (lo > 0)
            out = _b->concat(out, _b->slice(cur, 0, lo));
        if (lo + len < cur.width)
            out = _b->concat(
                _b->slice(cur, lo + len, cur.width - lo - len),
                out);
        return out;
    }

    void execAssign(ExecCtx &x, const Stmt &s, rtl::Value path)
    {
        if (x.clocked && s.kind == Stmt::Kind::Blocking)
            errorAt(s.line, s.col,
                    "use nonblocking assignment (<=) in clocked "
                    "always blocks");
        if (!x.clocked && s.kind == Stmt::Kind::NonBlocking)
            errorAt(s.line, s.col,
                    "use blocking assignment (=) in always @*");
        EvalCtx ev{x.m, &x.ps,
                   x.clocked ? nullptr : x.targets};
        const Expr &lhs = *s.lhs;
        Entry &e = requireEntry(ev, lhs.name, lhs.line, lhs.col);
        if (lhs.kind == Expr::Kind::Ident) {
            if (e.kind == Entry::Kind::Memory)
                errorAt(lhs.line, lhs.col,
                        "memory '" + lhs.name +
                            "' must be written with an index");
            rtl::Value v = evalExpr(ev, *s.rhs);
            x.ps.pending[lhs.name] = fit(v, e.width);
            return;
        }
        // Select target.
        if (e.kind == Entry::Kind::Memory) {
            if (lhs.isRange)
                errorAt(lhs.line, lhs.col,
                        "range writes to memories are not "
                        "supported");
            rtl::Value addr = fit(evalExpr(ev, *lhs.ops[0]),
                                  addrBits(e.depth));
            rtl::Value data = fit(evalExpr(ev, *s.rhs), e.width);
            rtl::Value en =
                path.valid() ? path : _b->lit(1, 1);
            _b->memWrite(e.mem, addr, data, en, x.clock);
            return;
        }
        // Read-modify-write on a register's bits.
        rtl::Value cur;
        auto pend = x.ps.pending.find(lhs.name);
        if (pend != x.ps.pending.end())
            cur = pend->second;
        else if (x.clocked)
            cur = e.reg.q;
        else
            errorAt(lhs.line, lhs.col,
                    "latch inferred: bits of '" + lhs.name +
                        "' outside the select are unassigned; "
                        "assign the whole reg first");
        rtl::Value result;
        if (lhs.isRange) {
            uint64_t msb = cEvalOrError(x.m, *lhs.ops[0],
                                        "part-select bound");
            uint64_t lsb = cEvalOrError(x.m, *lhs.ops[1],
                                        "part-select bound");
            if (msb < lsb || msb >= cur.width)
                errorAt(lhs.line, lhs.col,
                        "select out of range for '" + lhs.name +
                            "'");
            rtl::Value data = evalExpr(ev, *s.rhs);
            result = setBits(cur, unsigned(lsb),
                             unsigned(msb - lsb) + 1, data);
        } else if (auto idx = cEval(x.m, *lhs.ops[0])) {
            if (*idx >= cur.width)
                errorAt(lhs.line, lhs.col,
                        "bit " + std::to_string(*idx) +
                            " is out of range for '" + lhs.name +
                            "'");
            rtl::Value data = evalExpr(ev, *s.rhs);
            result = setBits(cur, unsigned(*idx), 1, data);
        } else {
            // Dynamic bit index: mask out the bit, OR in the new.
            rtl::Value at = evalExpr(ev, *lhs.ops[0]);
            rtl::Value bitv = fit(evalExpr(ev, *s.rhs), 1);
            rtl::Value mask =
                _b->shl(_b->lit(1, cur.width), at);
            rtl::Value cleared = _b->band(cur, _b->bnot(mask));
            rtl::Value placed =
                _b->shl(_b->zext(bitv, cur.width), at);
            result = _b->bor(cleared, placed);
        }
        x.ps.pending[lhs.name] = result;
    }

    void execCaseChain(ExecCtx &x, rtl::Value sel,
                       const std::vector<const Stmt::CaseItem *> &items,
                       size_t i, const Stmt::CaseItem *defItem,
                       rtl::Value path)
    {
        EvalCtx ev{x.m, &x.ps, x.clocked ? nullptr : x.targets};
        if (i == items.size()) {
            if (defItem)
                for (const StmtP &c : defItem->body)
                    execStmt(x, *c, path);
            return;
        }
        const Stmt::CaseItem &item = *items[i];
        rtl::Value cond{};
        for (const ExprP &label : item.labels) {
            rtl::Value lv = evalExpr(ev, *label);
            unsigned w = std::max(sel.width, lv.width);
            rtl::Value c = _b->eq(fit(sel, w), fit(lv, w));
            cond = cond.valid() ? _b->lor(cond, c) : c;
        }
        ProcState psT = x.ps;
        ProcState psE = x.ps;
        {
            ExecCtx xt{x.m, psT, x.clocked, x.clock, x.targets,
                       x.block};
            rtl::Value pT = pathAnd(path, cond);
            for (const StmtP &c : item.body)
                execStmt(xt, *c, pT);
        }
        {
            ExecCtx xe{x.m, psE, x.clocked, x.clock, x.targets,
                       x.block};
            execCaseChain(xe, sel, items, i + 1, defItem,
                          pathAnd(path, _b->lnot(cond)));
        }
        ExecCtx xm{x.m, x.ps, x.clocked, x.clock, x.targets,
                   x.block};
        mergeBranches(xm, cond, psT, psE, item.line, item.col);
    }

    void execStmt(ExecCtx &x, const Stmt &s, rtl::Value path)
    {
        switch (s.kind) {
          case Stmt::Kind::Block:
            for (const StmtP &c : s.stmts)
                execStmt(x, *c, path);
            return;
          case Stmt::Kind::If: {
            EvalCtx ev{x.m, &x.ps,
                       x.clocked ? nullptr : x.targets};
            rtl::Value cond = boolify(evalExpr(ev, *s.cond));
            ProcState psT = x.ps;
            ProcState psE = x.ps;
            {
                ExecCtx xt{x.m, psT, x.clocked, x.clock,
                           x.targets, x.block};
                rtl::Value pT = pathAnd(path, cond);
                for (const StmtP &c : s.thenStmts)
                    execStmt(xt, *c, pT);
            }
            {
                ExecCtx xe{x.m, psE, x.clocked, x.clock,
                           x.targets, x.block};
                rtl::Value pE = pathAnd(path, _b->lnot(cond));
                for (const StmtP &c : s.elseStmts)
                    execStmt(xe, *c, pE);
            }
            ExecCtx xm{x.m, x.ps, x.clocked, x.clock, x.targets,
                       x.block};
            mergeBranches(xm, cond, psT, psE, s.line, s.col);
            return;
          }
          case Stmt::Kind::Case: {
            EvalCtx ev{x.m, &x.ps,
                       x.clocked ? nullptr : x.targets};
            rtl::Value sel = evalExpr(ev, *s.caseExpr);
            const Stmt::CaseItem *defItem = nullptr;
            std::vector<const Stmt::CaseItem *> items;
            for (const Stmt::CaseItem &item : s.items) {
                if (item.labels.empty()) {
                    if (defItem)
                        errorAt(item.line, item.col,
                                "multiple default items in case");
                    defItem = &item;
                } else {
                    items.push_back(&item);
                }
            }
            execCaseChain(x, sel, items, 0, defItem, path);
            return;
          }
          case Stmt::Kind::Blocking:
          case Stmt::Kind::NonBlocking:
            execAssign(x, s, path);
            return;
        }
    }

    void doAlways(ModCtx &m, size_t idx)
    {
        if (m.badBlocks.count(idx))
            return;
        const AlwaysItem &a = m.mod->always[idx];
        std::set<std::string> targets;
        for (const auto &kv : m.entries)
            if (kv.second.ownerBlock == int(idx))
                targets.insert(kv.first);
        ProcState ps;
        ExecCtx x{m, ps, !a.comb, m.blockClock[idx], &targets,
                  idx};
        execStmt(x, *a.body, rtl::Value{});
        if (!a.comb) {
            for (const std::string &name : targets) {
                Entry &e = *findEntry(m, name);
                if (e.kind != Entry::Kind::Flop)
                    continue;
                auto it = ps.pending.find(name);
                _b->connect(e.reg, it != ps.pending.end()
                                       ? it->second
                                       : e.reg.q);
            }
        } else {
            for (const std::string &name : targets) {
                Entry &e = *findEntry(m, name);
                if (e.kind != Entry::Kind::Comb)
                    continue;
                auto it = ps.pending.find(name);
                if (it == ps.pending.end())
                    continue; // diagnostics already emitted
                resolveNet(e, name, it->second, a.line, a.col);
            }
        }
    }

    // ---- continuous assigns ---------------------------------------
    void doAssign(ModCtx &m, const AssignItem &a)
    {
        EvalCtx ev{m, nullptr, nullptr};
        const Expr &lhs = *a.lhs;
        if (lhs.kind != Expr::Kind::Ident)
            errorAt(lhs.line, lhs.col,
                    "part-select targets are not supported in "
                    "continuous assigns");
        Entry &e = requireEntry(ev, lhs.name, lhs.line, lhs.col);
        if (e.kind == Entry::Kind::Memory ||
            e.kind == Entry::Kind::Clock ||
            e.kind == Entry::Kind::Param)
            errorAt(lhs.line, lhs.col,
                    "cannot assign to '" + lhs.name + "'");
        if (e.isInput)
            errorAt(lhs.line, lhs.col,
                    "cannot drive input port '" + lhs.name + "'");
        if (e.declaredReg || e.kind == Entry::Kind::Flop ||
            e.kind == Entry::Kind::Comb)
            errorAt(lhs.line, lhs.col,
                    "'" + lhs.name + "' is a reg; drive it from "
                    "an always block, not 'assign'");
        if (e.resolved)
            errorAt(lhs.line, lhs.col,
                    "multiple drivers for '" + lhs.name + "'");
        rtl::Value v = evalExpr(ev, *a.rhs);
        resolveNet(e, lhs.name, v, lhs.line, lhs.col);
    }

    // ---- instances ------------------------------------------------
    std::map<std::string, const Connection *>
    mapConnections(const Instance &inst, const Module &child)
    {
        std::map<std::string, const Connection *> out;
        if (inst.connsPositional) {
            if (inst.conns.size() > child.portOrder.size())
                errorAt(inst.line, inst.col,
                        "too many connections for '" +
                            child.name + "' (" +
                            std::to_string(inst.conns.size()) +
                            " given, " +
                            std::to_string(
                                child.portOrder.size()) +
                            " ports)");
            for (size_t i = 0; i < inst.conns.size(); ++i)
                out[child.portOrder[i]] = &inst.conns[i];
            return out;
        }
        for (const Connection &conn : inst.conns) {
            if (std::find(child.portOrder.begin(),
                          child.portOrder.end(),
                          conn.port) == child.portOrder.end())
                errorAt(conn.line, conn.col,
                        "'" + child.name + "' has no port '" +
                            conn.port + "'");
            if (out.count(conn.port))
                errorAt(conn.line, conn.col,
                        "port '" + conn.port +
                            "' connected twice");
            out[conn.port] = &conn;
        }
        return out;
    }

    std::map<std::string, uint64_t>
    overrideMap(ModCtx &m, const Instance &inst,
                const Module &child)
    {
        std::map<std::string, uint64_t> out;
        std::vector<const ParamDecl *> settable;
        for (const ParamDecl &p : child.params)
            if (!p.local)
                settable.push_back(&p);
        if (inst.paramsPositional) {
            if (inst.paramOverrides.size() > settable.size())
                errorAt(inst.line, inst.col,
                        "too many parameter overrides for '" +
                            child.name + "'");
            for (size_t i = 0; i < inst.paramOverrides.size();
                 ++i) {
                const Connection &ov = inst.paramOverrides[i];
                out[settable[i]->name] = cEvalOrError(
                    m, *ov.expr, "parameter override");
            }
            return out;
        }
        for (const Connection &ov : inst.paramOverrides) {
            bool found = false;
            for (const ParamDecl *p : settable)
                found = found || p->name == ov.port;
            if (!found)
                errorAt(ov.line, ov.col,
                        "'" + child.name +
                            "' has no overridable parameter '" +
                            ov.port + "'");
            if (!ov.expr)
                errorAt(ov.line, ov.col,
                        "parameter override '" + ov.port +
                            "' has no value");
            out[ov.port] = cEvalOrError(m, *ov.expr,
                                        "parameter override");
        }
        return out;
    }

    void doInstance(ModCtx &m, const Instance &inst, int depth)
    {
        const Module *child = findModule(inst.moduleName);
        if (!child)
            errorAt(inst.line, inst.col,
                    "unknown module '" + inst.moduleName + "'");
        if (depth + 1 > kMaxDepth)
            errorAt(inst.line, inst.col,
                    "instantiation nests deeper than " +
                        std::to_string(kMaxDepth) +
                        " (recursive instantiation?)");
        if (m.entries.count(inst.name))
            errorAt(inst.line, inst.col,
                    "instance name '" + inst.name +
                        "' collides with a declaration");
        std::map<std::string, uint64_t> overrides =
            overrideMap(m, inst, *child);
        std::map<std::string, uint64_t> env =
            resolveParams(*child, overrides);
        std::map<std::string, const Connection *> conns =
            mapConnections(inst, *child);
        const std::set<std::string> &sinks = clockSinks(*child);
        std::map<std::string, Sym> bindings;
        EvalCtx ev{m, nullptr, nullptr};
        for (const std::string &port : child->portOrder) {
            const PortDecl *decl = findPortDecl(*child, port);
            if (!decl || decl->dir != Dir::Input)
                continue;
            auto cIt = conns.find(port);
            const Connection *conn =
                cIt == conns.end() ? nullptr : cIt->second;
            if (!conn || !conn->expr)
                errorAt(inst.line, inst.col,
                        "input port '" + port + "' of '" +
                            child->name + "' is not connected");
            if (sinks.count(port)) {
                Sym sym;
                sym.kind = Sym::Kind::Clock;
                const Expr &ce = *conn->expr;
                Entry *pe = ce.kind == Expr::Kind::Ident
                                ? findEntry(m, ce.name)
                                : nullptr;
                if (!pe || pe->kind != Entry::Kind::Clock)
                    errorAt(ce.line, ce.col,
                            "port '" + port + "' of '" +
                                child->name + "' is a clock and "
                                "must be driven by a clock "
                                "input");
                sym.clock = pe->clock;
                bindings[port] = sym;
            } else {
                Sym sym;
                sym.v = evalExpr(ev, *conn->expr);
                bindings[port] = sym;
            }
        }
        std::map<std::string, rtl::Value> outs;
        {
            ScopeGuard scope(*_b, inst.name);
            outs = elabModule(*child, std::move(env), bindings,
                              depth + 1);
        }
        for (const std::string &port : child->portOrder) {
            const PortDecl *decl = findPortDecl(*child, port);
            if (!decl || decl->dir != Dir::Output)
                continue;
            auto cIt = conns.find(port);
            if (cIt == conns.end() || !cIt->second->expr)
                continue; // floating output
            const Connection &conn = *cIt->second;
            auto oIt = outs.find(port);
            if (oIt == outs.end())
                continue; // child-side error already reported
            if (conn.expr->kind != Expr::Kind::Ident)
                errorAt(conn.expr->line, conn.expr->col,
                        "output port connections must be plain "
                        "wires");
            Entry *pe = findEntry(m, conn.expr->name);
            if (!pe)
                errorAt(conn.expr->line, conn.expr->col,
                        "undeclared identifier '" +
                            conn.expr->name + "'");
            if (pe->kind != Entry::Kind::Wire &&
                pe->kind != Entry::Kind::Unset)
                errorAt(conn.expr->line, conn.expr->col,
                        "output port '" + port +
                            "' must drive a wire");
            if (pe->isInput)
                errorAt(conn.expr->line, conn.expr->col,
                        "cannot drive input port '" +
                            conn.expr->name + "'");
            if (pe->resolved)
                errorAt(conn.expr->line, conn.expr->col,
                        "multiple drivers for '" +
                            conn.expr->name + "'");
            resolveNet(*pe, conn.expr->name, oIt->second,
                       conn.expr->line, conn.expr->col);
        }
    }

    // ---- module elaboration ---------------------------------------
    std::map<std::string, rtl::Value>
    elabModule(const Module &mod,
               std::map<std::string, uint64_t> env,
               const std::map<std::string, Sym> &bindings,
               int depth)
    {
        ModCtx m;
        m.mod = &mod;
        m.params = std::move(env);
        m.blockClock.assign(mod.always.size(), 0);

        // Parameter entries.
        for (const auto &kv : m.params) {
            Entry e;
            e.kind = Entry::Kind::Param;
            e.paramValue = kv.second;
            m.entries[kv.first] = e;
        }

        // Port entries.
        std::set<size_t> consumedNets;
        std::vector<PortInfo> ports = buildPorts(m, consumedNets);
        for (const PortInfo &pi : ports) {
            if (m.entries.count(pi.name)) {
                errorKeep(pi.line, pi.col,
                          "port '" + pi.name +
                              "' collides with a parameter");
                continue;
            }
            Entry e;
            e.width = pi.width;
            e.line = pi.line;
            e.col = pi.col;
            e.isPort = true;
            if (pi.dir == Dir::Input) {
                e.isInput = true;
                auto bIt = bindings.find(pi.name);
                if (bIt == bindings.end()) {
                    errorKeep(pi.line, pi.col,
                              "input port '" + pi.name +
                                  "' has no driver");
                    e.kind = Entry::Kind::Wire;
                    e.placeholder = _b->lit(0, e.width);
                } else if (bIt->second.kind ==
                           Sym::Kind::Clock) {
                    e.kind = Entry::Kind::Clock;
                    e.clock = bIt->second.clock;
                } else {
                    e.kind = Entry::Kind::Wire;
                    e.resolved = true;
                    e.value = fit(bIt->second.v, e.width);
                }
            } else {
                e.isOutput = true;
                e.declaredReg = pi.isReg;
            }
            m.entries[pi.name] = e;
        }

        // Net and memory entries.
        for (size_t j = 0; j < mod.nets.size(); ++j) {
            if (consumedNets.count(j))
                continue;
            const NetDecl &net = mod.nets[j];
            if (m.entries.count(net.name)) {
                errorKeep(net.line, net.col,
                          "duplicate declaration of '" +
                              net.name + "'");
                continue;
            }
            Entry e;
            e.line = net.line;
            e.col = net.col;
            try {
                e.width = rangeWidth(m, net.range);
                if (net.array.present) {
                    e.kind = Entry::Kind::Memory;
                    e.depth = arrayDepth(m, net.array);
                    e.mem = _b->mem(net.name, e.width, e.depth);
                } else {
                    e.declaredReg = net.isReg;
                }
            } catch (const ElabAbort &) {
                // Width diagnostics recorded; keep a 1-bit stub
                // so later references don't cascade.
            }
            m.entries[net.name] = e;
        }

        // Classify always-block targets (flops vs. comb).
        for (size_t i = 0; i < mod.always.size(); ++i) {
            try {
                scanAlways(m, i);
            } catch (const ElabAbort &) {
                m.badBlocks.insert(i);
            }
        }

        // Give every undriven-as-yet net a placeholder; regs no
        // always block assigns become hold-state flops.
        for (auto &kv : m.entries) {
            Entry &e = kv.second;
            if (e.kind == Entry::Kind::Unset) {
                if (e.declaredReg) {
                    e.kind = Entry::Kind::Flop;
                    e.reg = _b->reg(kv.first, e.width, 0, 0);
                    _b->connect(e.reg, e.reg.q);
                    warnAt(e.line, e.col,
                           "reg '" + kv.first +
                               "' is never assigned; it holds "
                               "its power-on value");
                } else {
                    e.kind = Entry::Kind::Wire;
                    e.placeholder = _b->lit(0, e.width);
                }
            } else if (e.kind == Entry::Kind::Comb) {
                e.placeholder = _b->lit(0, e.width);
            }
        }

        // Replay the body in source order.
        for (const Module::Item &item : mod.items) {
            try {
                switch (item.kind) {
                  case Module::Item::Kind::Assign:
                    doAssign(m, mod.assigns[item.index]);
                    break;
                  case Module::Item::Kind::Always:
                    doAlways(m, item.index);
                    break;
                  case Module::Item::Kind::Instance:
                    doInstance(m, mod.instances[item.index],
                               depth);
                    break;
                }
            } catch (const ElabAbort &) {
            }
            checkNodeBudget();
        }

        // Epilogue: undriven nets, debug names, output map.
        for (auto &kv : m.entries) {
            Entry &e = kv.second;
            bool placeholderNet =
                e.kind == Entry::Kind::Wire ||
                e.kind == Entry::Kind::Comb;
            if (!placeholderNet)
                continue;
            if (!e.resolved && !e.isInput) {
                if (e.readBeforeDrive)
                    errorKeep(e.line, e.col,
                              "'" + kv.first +
                                  "' is read but never driven");
                else if (e.isOutput)
                    errorKeep(e.line, e.col,
                              "output port '" + kv.first +
                                  "' is never driven");
                else
                    warnAt(e.line, e.col,
                           "wire '" + kv.first +
                               "' is never driven");
                continue;
            }
            if (e.resolved)
                _b->nameNet(kv.first, chase(e.value));
        }
        std::map<std::string, rtl::Value> outs;
        for (const PortInfo &pi : ports) {
            if (pi.dir != Dir::Output)
                continue;
            Entry *e = findEntry(m, pi.name);
            if (!e)
                continue;
            rtl::Value v{};
            if (e->kind == Entry::Kind::Flop)
                v = e->reg.q;
            else if (e->resolved)
                v = chase(e->value);
            else if (e->placeholder.valid())
                v = e->placeholder; // error already recorded
            else
                continue;
            outs[pi.name] = v;
        }
        return outs;
    }

    // ---- top ------------------------------------------------------
    void elabTop(const Module &top)
    {
        _b.emplace(top.name);
        std::map<std::string, uint64_t> env =
            resolveParams(top, {});
        const std::set<std::string> &sinks = clockSinks(top);
        std::map<std::string, Sym> bindings;
        bool haveClock = false;
        // Ports are created at the root scope (unprefixed names);
        // the module body elaborates under options.topScope so the
        // debug server's module-under-test prefix matches.
        ModCtx widthCtx;
        widthCtx.mod = &top;
        widthCtx.params = env;
        for (const std::string &name : top.portOrder) {
            const PortDecl *decl = findPortDecl(top, name);
            if (!decl || decl->dir != Dir::Input)
                continue; // buildPorts reports missing decls
            unsigned w = tryRangeWidth(widthCtx, decl->range);
            if (sinks.count(name)) {
                Sym sym;
                sym.kind = Sym::Kind::Clock;
                sym.clock =
                    haveClock ? _b->addClock(name) : 0;
                haveClock = true;
                bindings[name] = sym;
            } else {
                Sym sym;
                sym.v = _b->input(name, w);
                bindings[name] = sym;
            }
        }
        std::map<std::string, rtl::Value> outs;
        if (_opts.topScope.empty()) {
            outs = elabModule(top, std::move(env), bindings, 0);
        } else {
            ScopeGuard scope(*_b, _opts.topScope);
            outs = elabModule(top, std::move(env), bindings, 0);
        }
        for (const std::string &name : top.portOrder) {
            const PortDecl *decl = findPortDecl(top, name);
            if (!decl || decl->dir != Dir::Output)
                continue;
            auto it = outs.find(name);
            if (it != outs.end())
                _b->output(name, it->second);
        }
    }

    const SourceUnit &_unit;
    const CompileOptions &_opts;
    std::vector<Diag> &_diags;
    std::optional<rtl::Builder> _b;
    std::map<std::string, const Module *> _mods;
    std::map<const Module *, std::set<std::string>> _sinkMemo;
    std::unordered_map<rtl::NetId, rtl::NetId> _forward;
    size_t _errors = 0;
};

} // namespace

std::optional<rtl::Design>
elaborate(const ast::SourceUnit &unit, const CompileOptions &options,
          std::vector<Diag> &diags, std::string &top_name)
{
    return Elaborator(unit, options, diags).run(top_name);
}

} // namespace zoomie::verilog
