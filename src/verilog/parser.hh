/**
 * @file
 * Recursive-descent parser for the Verilog subset: token stream
 * (lexer.hh) to ast::SourceUnit. Parse errors become structured
 * Diags; the parser resynchronizes at the next ';' / 'end' /
 * 'endmodule' after each error so one typo yields one diagnostic,
 * not a cascade, and later modules in the same file still parse.
 */

#ifndef ZOOMIE_VERILOG_PARSER_HH
#define ZOOMIE_VERILOG_PARSER_HH

#include <string>
#include <vector>

#include "verilog/ast.hh"
#include "verilog/verilog.hh"

namespace zoomie::verilog {

/**
 * Parse @p source into an AST, appending diagnostics (with
 * @p file as their file field) to @p diags. The returned tree is
 * structurally complete only for the modules that parsed without
 * errors; callers must treat any error-severity diagnostic as
 * "do not elaborate".
 */
ast::SourceUnit parse(const std::string &source,
                      const std::string &file,
                      std::vector<Diag> &diags);

} // namespace zoomie::verilog

#endif // ZOOMIE_VERILOG_PARSER_HH
