/**
 * @file
 * The Verilog front end facade: text in, rtl::Design out. This is
 * what the `open_source` wire command, the `source` REPL command
 * and the zoomie_vparse CLI call. A compile is
 *
 *     lex -> parse (ast.hh) -> elaborate (elaborate.hh)
 *
 * and never throws or aborts on bad input: every failure — lexical,
 * syntactic, semantic (latch inference, undriven wires, width
 * violations, recursive instantiation) — is a structured Diag with
 * file/line/column, so servers turn user RTL straight into typed
 * error replies.
 *
 * Supported subset (DESIGN.md §12 has the full table): modules with
 * ANSI or classic port lists, parameters/localparams, wire/reg
 * declarations, memories (`reg [w:0] m [0:d];`), continuous
 * assigns, `always @(posedge clk)` with nonblocking assigns and
 * `always @*` with blocking assigns (if/case inside), the
 * binary/unary/ternary/concat/replication/slice expression grammar,
 * and module instantiation with named or positional connections.
 * Two-state semantics, unsigned arithmetic, widths up to 64 bits.
 */

#ifndef ZOOMIE_VERILOG_VERILOG_HH
#define ZOOMIE_VERILOG_VERILOG_HH

#include <optional>
#include <string>
#include <vector>

#include "rtl/ir.hh"

namespace zoomie::verilog {

/** One structured diagnostic. */
struct Diag
{
    enum class Severity : uint8_t { Error, Warning };

    Severity severity = Severity::Error;
    std::string file;
    int line = 0;
    int col = 0;
    std::string message;

    /** "file:line:col: error: message" (gcc style). */
    std::string render() const;
};

/** Compile configuration. */
struct CompileOptions
{
    /** Name reported in diagnostics. */
    std::string file = "<input>";

    /** Top module; empty = infer (the one module no other module
     *  instantiates; ambiguity is an error). */
    std::string top;

    /**
     * Scope the flattened top module's state lives under. The
     * default "mut" matches the debug server's module-under-test
     * convention: an uploaded design's registers become
     * "mut/<name>" and instrumentation gates exactly that scope.
     * Empty = no wrapping scope.
     */
    std::string topScope = "mut";
};

/** Outcome of a compile. */
struct CompileResult
{
    /** True when design holds a valid elaborated rtl::Design. */
    bool ok = false;

    std::optional<rtl::Design> design;

    /** The top module that was elaborated. */
    std::string top;

    std::vector<Diag> diags;

    bool hasErrors() const;

    /** All diagnostics rendered one per line. */
    std::string renderDiags() const;
};

/** Compile Verilog source text. Never throws on bad input. */
CompileResult compile(const std::string &source,
                      const CompileOptions &options = {});

} // namespace zoomie::verilog

#endif // ZOOMIE_VERILOG_VERILOG_HH
