#include "parser.hh"

#include <set>

#include "verilog/lexer.hh"

namespace zoomie::verilog {

namespace {

using namespace ast;

/** Internal unwind after a recorded diagnostic; never escapes. */
struct ParseAbort
{
};

/** Words that can never be identifiers in this subset. */
const std::set<std::string> &
keywords()
{
    static const std::set<std::string> words = {
        "module",   "endmodule", "input",    "output",   "inout",
        "wire",     "reg",       "parameter", "localparam",
        "assign",   "always",    "begin",    "end",      "if",
        "else",     "case",      "casez",    "casex",    "endcase",
        "default",  "posedge",   "negedge",  "or",       "initial",
        "integer",  "genvar",    "generate", "endgenerate",
        "for",      "while",     "function", "endfunction",
        "task",     "endtask",   "signed",   "real",     "wand",
        "wor",      "tri",       "supply0",  "supply1",  "time",
        "forever",  "repeat",    "wait",     "fork",     "join",
        "deassign", "force",     "release",  "disable",  "specify",
    };
    return words;
}

class Parser
{
  public:
    Parser(std::vector<Token> toks, std::string file,
           std::vector<Diag> &diags)
        : _toks(std::move(toks)), _file(std::move(file)),
          _diags(diags)
    {
    }

    SourceUnit run()
    {
        SourceUnit unit;
        while (!atEnd() && _diags.size() < kMaxDiags) {
            if (peekIdent("module")) {
                try {
                    unit.modules.push_back(parseModule());
                } catch (const ParseAbort &) {
                    // Skip to the next 'endmodule' / 'module'.
                    while (!atEnd() && !peekIdent("module")) {
                        bool wasEnd = peekIdent("endmodule");
                        next();
                        if (wasEnd)
                            break;
                    }
                }
                continue;
            }
            Token tok = peek();
            error(tok, "expected 'module', got " + describe(tok));
            next();
            // Resync to the next module keyword.
            while (!atEnd() && !peekIdent("module"))
                next();
        }
        return unit;
    }

  private:
    static constexpr size_t kMaxDiags = 50;
    static constexpr int kMaxExprDepth = 64;

    // ---- token plumbing ------------------------------------------
    const Token &peek(size_t ahead = 0) const
    {
        size_t i = _idx + ahead;
        return i < _toks.size() ? _toks[i] : _toks.back();
    }

    bool atEnd() const
    {
        return peek().kind == Token::Kind::End;
    }

    Token next()
    {
        Token tok = peek();
        if (_idx + 1 < _toks.size())
            ++_idx;
        if (tok.kind == Token::Kind::Error) {
            // A bad lexeme surfaces exactly once, where it occurs.
            error(tok, tok.text);
        }
        return tok;
    }

    bool peekIdent(const char *word, size_t ahead = 0) const
    {
        const Token &tok = peek(ahead);
        return tok.kind == Token::Kind::Ident && tok.text == word;
    }

    bool peekPunct(const char *punct, size_t ahead = 0) const
    {
        const Token &tok = peek(ahead);
        return tok.kind == Token::Kind::Punct && tok.text == punct;
    }

    bool acceptIdent(const char *word)
    {
        if (!peekIdent(word))
            return false;
        next();
        return true;
    }

    bool acceptPunct(const char *punct)
    {
        if (!peekPunct(punct))
            return false;
        next();
        return true;
    }

    void expectPunct(const char *punct, const char *context)
    {
        if (!acceptPunct(punct)) {
            error(peek(), std::string("expected '") + punct +
                              "' " + context + ", got " +
                              describe(peek()));
            throw ParseAbort{};
        }
    }

    void expectIdent(const char *word, const char *context)
    {
        if (!acceptIdent(word)) {
            error(peek(), std::string("expected '") + word + "' " +
                              context + ", got " +
                              describe(peek()));
            throw ParseAbort{};
        }
    }

    std::string expectName(const char *context)
    {
        const Token &tok = peek();
        if (tok.kind != Token::Kind::Ident ||
            keywords().count(tok.text)) {
            error(tok, std::string("expected identifier ") +
                           context + ", got " + describe(tok));
            throw ParseAbort{};
        }
        return next().text;
    }

    static std::string describe(const Token &tok)
    {
        switch (tok.kind) {
          case Token::Kind::End:
            return "end of input";
          case Token::Kind::Number:
            return "number '" + tok.text + "'";
          case Token::Kind::Error:
            return "bad token";
          default:
            return "'" + tok.text + "'";
        }
    }

    void error(const Token &at, const std::string &message)
    {
        if (_diags.size() >= kMaxDiags)
            return;
        Diag d;
        d.severity = Diag::Severity::Error;
        d.file = _file;
        d.line = at.line;
        d.col = at.col;
        d.message = message;
        _diags.push_back(std::move(d));
    }

    [[noreturn]] void fail(const Token &at,
                           const std::string &message)
    {
        error(at, message);
        throw ParseAbort{};
    }

    /** Skip to just past the next ';' (or before endmodule/end). */
    void resyncStatement()
    {
        while (!atEnd()) {
            if (peekIdent("endmodule") || peekIdent("end") ||
                peekIdent("endcase"))
                return;
            bool wasSemi = peekPunct(";");
            next();
            if (wasSemi)
                return;
        }
    }

    // ---- module structure ----------------------------------------
    Module parseModule()
    {
        Module mod;
        Token kw = peek();
        expectIdent("module", "to start a module");
        mod.line = kw.line;
        mod.col = kw.col;
        mod.name = expectName("after 'module'");

        if (acceptPunct("#"))
            parseHeaderParams(mod);
        if (peekPunct("("))
            parsePortList(mod);
        expectPunct(";", "after the module header");

        while (!atEnd() && !peekIdent("endmodule")) {
            if (_diags.size() >= kMaxDiags)
                throw ParseAbort{};
            try {
                parseModuleItem(mod);
            } catch (const ParseAbort &) {
                resyncStatement();
            }
        }
        expectIdent("endmodule", "to close the module");
        return mod;
    }

    void parseHeaderParams(Module &mod)
    {
        expectPunct("(", "after '#'");
        do {
            acceptIdent("parameter"); // optional on continuations
            parseOneParam(mod, /*local=*/false);
        } while (acceptPunct(","));
        expectPunct(")", "after the parameter list");
    }

    void parseOneParam(Module &mod, bool local)
    {
        // Optional (ignored) range on the parameter itself.
        if (peekPunct("["))
            parseRange();
        ParamDecl p;
        p.local = local;
        Token at = peek();
        p.name = expectName("in parameter declaration");
        p.line = at.line;
        p.col = at.col;
        expectPunct("=", "after the parameter name");
        p.value = parseExpr();
        mod.params.push_back(std::move(p));
    }

    /** `[msb:lsb]` with constant-expression bounds. */
    Range parseRange()
    {
        Range range;
        expectPunct("[", "to open the range");
        range.present = true;
        range.msb = parseExpr();
        expectPunct(":", "in the range");
        range.lsb = parseExpr();
        expectPunct("]", "to close the range");
        return range;
    }

    /** Header ports: ANSI (`input [3:0] a, output reg b`) or the
     *  classic bare name list (`a, b, clk`). */
    void parsePortList(Module &mod)
    {
        expectPunct("(", "to open the port list");
        if (acceptPunct(")"))
            return;
        bool ansi = peekIdent("input") || peekIdent("output") ||
                    peekIdent("inout");
        if (ansi) {
            Dir dir = Dir::Input;
            bool isReg = false;
            Range range;
            do {
                Token at = peek();
                if (peekIdent("inout"))
                    fail(at, "inout ports are not supported");
                bool newDecl = false;
                if (acceptIdent("input")) {
                    dir = Dir::Input;
                    newDecl = true;
                } else if (acceptIdent("output")) {
                    dir = Dir::Output;
                    newDecl = true;
                }
                if (newDecl) {
                    isReg = false;
                    range = Range{};
                    acceptIdent("wire");
                    if (acceptIdent("reg"))
                        isReg = true;
                    if (acceptIdent("signed"))
                        fail(at, "signed ports are not supported");
                    if (peekPunct("["))
                        range = parseRange();
                }
                PortDecl port;
                port.dir = dir;
                port.isReg = isReg;
                port.range = cloneRange(range);
                Token nameAt = peek();
                port.name = expectName("in the port list");
                port.line = nameAt.line;
                port.col = nameAt.col;
                if (isReg && dir == Dir::Input)
                    fail(nameAt, "input ports cannot be 'reg'");
                mod.portOrder.push_back(port.name);
                mod.ports.push_back(std::move(port));
            } while (acceptPunct(","));
        } else {
            do {
                mod.portOrder.push_back(
                    expectName("in the port list"));
            } while (acceptPunct(","));
        }
        expectPunct(")", "to close the port list");
    }

    void parseModuleItem(Module &mod)
    {
        const Token &tok = peek();
        if (tok.kind == Token::Kind::Error) {
            next(); // reports the lexeme error
            throw ParseAbort{};
        }
        if (tok.kind != Token::Kind::Ident)
            fail(tok, "expected a module item, got " +
                          describe(tok));

        const std::string &word = tok.text;
        if (word == "parameter" || word == "localparam") {
            bool local = word == "localparam";
            next();
            do {
                parseOneParam(mod, local);
            } while (acceptPunct(","));
            expectPunct(";", "after the parameter declaration");
            return;
        }
        if (word == "input" || word == "output") {
            parseClassicPortDecl(mod);
            return;
        }
        if (word == "inout")
            fail(tok, "inout ports are not supported");
        if (word == "wire" || word == "reg") {
            parseNetDecl(mod);
            return;
        }
        if (word == "assign") {
            parseAssign(mod);
            return;
        }
        if (word == "always") {
            parseAlways(mod);
            return;
        }
        static const std::set<std::string> unsupported = {
            "initial",  "generate", "genvar",   "integer",
            "function", "task",     "real",     "for",
            "specify",  "wand",     "wor",      "tri",
            "supply0",  "supply1",  "signed",   "time",
        };
        if (unsupported.count(word))
            fail(tok, "'" + word +
                          "' is outside the supported subset");
        if (keywords().count(word))
            fail(tok, "unexpected '" + word + "'");
        parseInstance(mod);
    }

    /** Body `input`/`output` declarations for header-name ports. */
    void parseClassicPortDecl(Module &mod)
    {
        Token at = peek();
        Dir dir = acceptIdent("input") ? Dir::Input
                                       : (next(), Dir::Output);
        bool isReg = false;
        acceptIdent("wire");
        if (acceptIdent("reg"))
            isReg = true;
        if (acceptIdent("signed"))
            fail(at, "signed ports are not supported");
        Range range;
        if (peekPunct("["))
            range = parseRange();
        do {
            PortDecl port;
            port.dir = dir;
            port.isReg = isReg;
            port.range = cloneRange(range);
            Token nameAt = peek();
            port.name = expectName("in the port declaration");
            port.line = nameAt.line;
            port.col = nameAt.col;
            if (isReg && dir == Dir::Input)
                fail(nameAt, "input ports cannot be 'reg'");
            mod.ports.push_back(std::move(port));
        } while (acceptPunct(","));
        expectPunct(";", "after the port declaration");
    }

    void parseNetDecl(Module &mod)
    {
        bool isReg = acceptIdent("reg");
        if (!isReg)
            expectIdent("wire", "in a net declaration");
        if (acceptIdent("signed"))
            fail(peek(), "signed nets are not supported");
        Range range;
        if (peekPunct("["))
            range = parseRange();
        do {
            NetDecl net;
            net.isReg = isReg;
            net.range = cloneRange(range);
            Token nameAt = peek();
            net.name = expectName("in the net declaration");
            net.line = nameAt.line;
            net.col = nameAt.col;
            if (peekPunct("[")) {
                if (!isReg)
                    fail(peek(), "only 'reg' arrays (memories) "
                                 "are supported");
                net.array = parseRange();
            }
            if (peekPunct("=")) {
                // `wire x = expr;` sugar: declaration + assign.
                if (isReg)
                    fail(peek(), "reg initializers are not "
                                 "supported (state powers on as 0)");
                next();
                AssignItem item;
                item.line = nameAt.line;
                item.col = nameAt.col;
                item.lhs = identExpr(net.name, nameAt);
                item.rhs = parseExpr();
                mod.items.push_back(
                    {Module::Item::Kind::Assign,
                     mod.assigns.size()});
                mod.assigns.push_back(std::move(item));
            }
            mod.nets.push_back(std::move(net));
        } while (acceptPunct(","));
        expectPunct(";", "after the net declaration");
    }

    void parseAssign(Module &mod)
    {
        Token at = peek();
        expectIdent("assign", "to start a continuous assign");
        do {
            AssignItem item;
            item.line = at.line;
            item.col = at.col;
            item.lhs = parseLvalue();
            expectPunct("=", "in the continuous assign");
            item.rhs = parseExpr();
            mod.items.push_back(
                {Module::Item::Kind::Assign, mod.assigns.size()});
            mod.assigns.push_back(std::move(item));
        } while (acceptPunct(","));
        expectPunct(";", "after the continuous assign");
    }

    void parseAlways(Module &mod)
    {
        Token at = peek();
        expectIdent("always", "to start an always block");
        expectPunct("@", "after 'always'");
        AlwaysItem item;
        item.line = at.line;
        item.col = at.col;
        if (acceptPunct("*")) {
            item.comb = true;
        } else {
            expectPunct("(", "after '@'");
            if (acceptPunct("*")) {
                item.comb = true;
            } else if (acceptIdent("posedge")) {
                item.clock = expectName("after 'posedge'");
                if (peekIdent("or") || peekPunct(",")) {
                    fail(peek(),
                         "multiple events in one sensitivity list "
                         "are not supported (use synchronous "
                         "resets)");
                }
            } else if (peekIdent("negedge")) {
                fail(peek(), "negedge clocks are not supported");
            } else {
                // An explicit signal list: treat as combinational
                // only when it is pure identifiers (classic
                // pre-2001 style); the elaborator recomputes the
                // true sensitivity anyway.
                do {
                    if (peekIdent("posedge") ||
                        peekIdent("negedge"))
                        fail(peek(), "mixed edge/level "
                                     "sensitivity lists are not "
                                     "supported");
                    expectName("in the sensitivity list");
                } while (acceptIdent("or") || acceptPunct(","));
                item.comb = true;
            }
            expectPunct(")", "to close the sensitivity list");
        }
        item.body = parseStmt();
        mod.items.push_back(
            {Module::Item::Kind::Always, mod.always.size()});
        mod.always.push_back(std::move(item));
    }

    void parseInstance(Module &mod)
    {
        Instance inst;
        Token at = peek();
        inst.line = at.line;
        inst.col = at.col;
        inst.moduleName = expectName("naming a module to "
                                     "instantiate");
        if (acceptPunct("#")) {
            expectPunct("(", "after '#'");
            parseConnections(inst.paramOverrides,
                             inst.paramsPositional);
            expectPunct(")", "after the parameter overrides");
        }
        inst.name = expectName("naming the instance");
        expectPunct("(", "to open the connection list");
        if (!peekPunct(")"))
            parseConnections(inst.conns, inst.connsPositional);
        expectPunct(")", "to close the connection list");
        expectPunct(";", "after the instantiation");
        mod.items.push_back(
            {Module::Item::Kind::Instance, mod.instances.size()});
        mod.instances.push_back(std::move(inst));
    }

    void parseConnections(std::vector<Connection> &out,
                          bool &positional)
    {
        positional = !peekPunct(".");
        do {
            Connection conn;
            Token at = peek();
            conn.line = at.line;
            conn.col = at.col;
            if (!positional) {
                expectPunct(".", "in the named connection list");
                conn.port = expectName("after '.'");
                expectPunct("(", "after the port name");
                if (!peekPunct(")"))
                    conn.expr = parseExpr();
                expectPunct(")", "after the connection");
            } else {
                conn.expr = parseExpr();
            }
            out.push_back(std::move(conn));
        } while (acceptPunct(","));
    }

    // ---- statements ----------------------------------------------
    StmtP parseStmt()
    {
        Token at = peek();
        if (acceptIdent("begin")) {
            auto stmt = std::make_unique<Stmt>();
            stmt->kind = Stmt::Kind::Block;
            stmt->line = at.line;
            stmt->col = at.col;
            while (!atEnd() && !peekIdent("end")) {
                if (_diags.size() >= kMaxDiags)
                    throw ParseAbort{};
                try {
                    stmt->stmts.push_back(parseStmt());
                } catch (const ParseAbort &) {
                    resyncStatement();
                    if (peekIdent("endmodule"))
                        throw;
                }
            }
            expectIdent("end", "to close the block");
            return stmt;
        }
        if (acceptIdent("if")) {
            auto stmt = std::make_unique<Stmt>();
            stmt->kind = Stmt::Kind::If;
            stmt->line = at.line;
            stmt->col = at.col;
            expectPunct("(", "after 'if'");
            stmt->cond = parseExpr();
            expectPunct(")", "after the if condition");
            stmt->thenStmts.push_back(parseStmt());
            if (acceptIdent("else"))
                stmt->elseStmts.push_back(parseStmt());
            return stmt;
        }
        if (peekIdent("casez") || peekIdent("casex"))
            fail(at, "casez/casex are not supported (2-state "
                     "subset)");
        if (acceptIdent("case")) {
            auto stmt = std::make_unique<Stmt>();
            stmt->kind = Stmt::Kind::Case;
            stmt->line = at.line;
            stmt->col = at.col;
            expectPunct("(", "after 'case'");
            stmt->caseExpr = parseExpr();
            expectPunct(")", "after the case expression");
            while (!atEnd() && !peekIdent("endcase")) {
                if (_diags.size() >= kMaxDiags)
                    throw ParseAbort{};
                Stmt::CaseItem item;
                Token itemAt = peek();
                item.line = itemAt.line;
                item.col = itemAt.col;
                if (acceptIdent("default")) {
                    acceptPunct(":");
                } else {
                    do {
                        item.labels.push_back(parseExpr());
                    } while (acceptPunct(","));
                    expectPunct(":", "after the case labels");
                }
                item.body.push_back(parseStmt());
                stmt->items.push_back(std::move(item));
            }
            expectIdent("endcase", "to close the case");
            return stmt;
        }
        if (acceptPunct(";")) {
            auto stmt = std::make_unique<Stmt>();
            stmt->kind = Stmt::Kind::Block;
            stmt->line = at.line;
            stmt->col = at.col;
            return stmt;
        }
        if (peekIdent("for") || peekIdent("while") ||
            peekIdent("forever") || peekIdent("repeat"))
            fail(at, "'" + at.text +
                         "' loops are not supported");

        // Assignment.
        auto stmt = std::make_unique<Stmt>();
        stmt->line = at.line;
        stmt->col = at.col;
        stmt->lhs = parseLvalue();
        if (acceptPunct("<=")) {
            stmt->kind = Stmt::Kind::NonBlocking;
        } else if (acceptPunct("=")) {
            stmt->kind = Stmt::Kind::Blocking;
        } else {
            fail(peek(), "expected '=' or '<=' in the assignment, "
                         "got " + describe(peek()));
        }
        stmt->rhs = parseExpr();
        expectPunct(";", "after the assignment");
        return stmt;
    }

    // ---- expressions ---------------------------------------------
    ExprP identExpr(const std::string &name, const Token &at)
    {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Ident;
        e->name = name;
        e->line = at.line;
        e->col = at.col;
        return e;
    }

    /** lvalue := ident | ident[expr] | ident[msb:lsb] */
    ExprP parseLvalue()
    {
        if (peekPunct("{"))
            fail(peek(), "concatenation targets are not supported");
        Token at = peek();
        std::string name = expectName("as the assignment target");
        if (!peekPunct("["))
            return identExpr(name, at);
        return parseSelect(name, at);
    }

    ExprP parseSelect(const std::string &name, const Token &at)
    {
        expectPunct("[", "in the select");
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Select;
        e->name = name;
        e->line = at.line;
        e->col = at.col;
        e->ops.push_back(parseExpr());
        if (peekPunct("+:") || peekPunct("-:"))
            fail(peek(), "indexed part-selects (+: -:) are not "
                         "supported");
        if (acceptPunct(":")) {
            e->isRange = true;
            e->ops.push_back(parseExpr());
        }
        expectPunct("]", "to close the select");
        if (peekPunct("["))
            fail(peek(), "multi-dimensional selects are not "
                         "supported");
        return e;
    }

    ExprP parseExpr()
    {
        if (++_exprDepth > kMaxExprDepth) {
            --_exprDepth;
            fail(peek(), "expression nests too deeply");
        }
        ExprP e = parseTernary();
        --_exprDepth;
        return e;
    }

    ExprP parseTernary()
    {
        ExprP cond = parseBinary(0);
        if (!acceptPunct("?"))
            return cond;
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::Ternary;
        e->line = cond->line;
        e->col = cond->col;
        e->ops.push_back(std::move(cond));
        e->ops.push_back(parseExpr());
        expectPunct(":", "in the conditional expression");
        e->ops.push_back(parseExpr());
        return e;
    }

    /** Binary precedence levels, lowest first. */
    static int binaryLevel(const std::string &op)
    {
        if (op == "||")
            return 0;
        if (op == "&&")
            return 1;
        if (op == "|")
            return 2;
        if (op == "^" || op == "^~" || op == "~^")
            return 3;
        if (op == "&")
            return 4;
        if (op == "==" || op == "!=")
            return 5;
        if (op == "<" || op == "<=" || op == ">" || op == ">=")
            return 6;
        if (op == "<<" || op == ">>")
            return 7;
        if (op == "+" || op == "-")
            return 8;
        if (op == "*" || op == "/" || op == "%")
            return 9;
        return -1;
    }

    ExprP parseBinary(int level)
    {
        if (level > 9)
            return parseUnary();
        ExprP lhs = parseBinary(level + 1);
        for (;;) {
            const Token &tok = peek();
            if (tok.kind != Token::Kind::Punct ||
                binaryLevel(tok.text) != level)
                return lhs;
            if (tok.text == "===" || tok.text == "!==")
                fail(tok, "case equality (===) is not supported "
                          "(2-state subset)");
            Token op = next();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Binary;
            e->name = op.text;
            e->line = op.line;
            e->col = op.col;
            e->ops.push_back(std::move(lhs));
            e->ops.push_back(parseBinary(level + 1));
            lhs = std::move(e);
        }
    }

    ExprP parseUnary()
    {
        const Token &tok = peek();
        if (tok.kind == Token::Kind::Punct) {
            const std::string &op = tok.text;
            if (op == "~" || op == "!" || op == "-" || op == "+" ||
                op == "&" || op == "|" || op == "^" || op == "~&" ||
                op == "~|" || op == "~^" || op == "^~") {
                Token opTok = next();
                auto e = std::make_unique<Expr>();
                e->kind = Expr::Kind::Unary;
                e->name = opTok.text;
                e->line = opTok.line;
                e->col = opTok.col;
                e->ops.push_back(parseUnary());
                return e;
            }
            if (op == "**")
                fail(tok, "the power operator is not supported");
        }
        return parsePrimary();
    }

    ExprP parsePrimary()
    {
        Token tok = peek();
        if (tok.kind == Token::Kind::Number) {
            next();
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Number;
            e->value = tok.value;
            e->width = tok.width;
            e->line = tok.line;
            e->col = tok.col;
            return e;
        }
        if (acceptPunct("(")) {
            ExprP e = parseExpr();
            expectPunct(")", "to close the parenthesized "
                             "expression");
            return e;
        }
        if (acceptPunct("{")) {
            // Concatenation or replication.
            ExprP first = parseExpr();
            if (acceptPunct("{")) {
                auto e = std::make_unique<Expr>();
                e->kind = Expr::Kind::Repl;
                e->line = tok.line;
                e->col = tok.col;
                e->ops.push_back(std::move(first));
                e->ops.push_back(parseExpr());
                expectPunct("}", "to close the replication");
                expectPunct("}", "after the replication");
                return e;
            }
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Concat;
            e->line = tok.line;
            e->col = tok.col;
            e->ops.push_back(std::move(first));
            while (acceptPunct(","))
                e->ops.push_back(parseExpr());
            expectPunct("}", "to close the concatenation");
            return e;
        }
        if (tok.kind == Token::Kind::Ident &&
            !keywords().count(tok.text)) {
            std::string name = next().text;
            if (peekPunct("("))
                fail(tok, "function calls are not supported");
            if (peekPunct("["))
                return parseSelect(name, tok);
            return identExpr(name, tok);
        }
        if (tok.kind == Token::Kind::Error) {
            next();
            throw ParseAbort{};
        }
        fail(tok, "expected an expression, got " + describe(tok));
    }

    static Range cloneRange(const Range &range);

    std::vector<Token> _toks;
    std::string _file;
    std::vector<Diag> &_diags;
    size_t _idx = 0;
    int _exprDepth = 0;
};

/** Deep-copy an expression (for shared declaration ranges). */
ExprP
cloneExpr(const ExprP &e)
{
    if (!e)
        return nullptr;
    auto out = std::make_unique<Expr>();
    out->kind = e->kind;
    out->line = e->line;
    out->col = e->col;
    out->value = e->value;
    out->width = e->width;
    out->name = e->name;
    out->isRange = e->isRange;
    for (const ExprP &op : e->ops)
        out->ops.push_back(cloneExpr(op));
    return out;
}

Range
Parser::cloneRange(const Range &range)
{
    Range out;
    out.present = range.present;
    out.msb = cloneExpr(range.msb);
    out.lsb = cloneExpr(range.lsb);
    return out;
}

} // namespace

ast::SourceUnit
parse(const std::string &source, const std::string &file,
      std::vector<Diag> &diags)
{
    return Parser(lex(source), file, diags).run();
}

} // namespace zoomie::verilog
