/**
 * @file
 * Elaboration: ast::SourceUnit to rtl::Design. Resolves parameters,
 * flattens the instance hierarchy into slash-separated scopes,
 * infers flip-flops from `always @(posedge clk)` blocks and
 * combinational logic from `always @*` (an inferred latch is an
 * error), and reports every failure as a structured Diag instead of
 * panicking — the elaborator pre-validates widths, ranges and
 * drivers itself and never calls a Builder entry point that can
 * abort the process on user input.
 */

#ifndef ZOOMIE_VERILOG_ELABORATE_HH
#define ZOOMIE_VERILOG_ELABORATE_HH

#include <optional>
#include <string>
#include <vector>

#include "rtl/ir.hh"
#include "verilog/ast.hh"
#include "verilog/verilog.hh"

namespace zoomie::verilog {

/**
 * Elaborate @p unit under @p options, appending diagnostics to
 * @p diags. Returns the design only when elaboration produced zero
 * error-severity diagnostics and the result passes
 * rtl::Design::check(); @p top_name receives the chosen top module.
 */
std::optional<rtl::Design> elaborate(const ast::SourceUnit &unit,
                                     const CompileOptions &options,
                                     std::vector<Diag> &diags,
                                     std::string &top_name);

} // namespace zoomie::verilog

#endif // ZOOMIE_VERILOG_ELABORATE_HH
