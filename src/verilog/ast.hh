/**
 * @file
 * Abstract syntax tree for the synthesizable Verilog-2005 subset.
 * The parser (parser.hh) produces one SourceUnit per input; the
 * elaborator (elaborate.hh) resolves parameters, flattens the
 * instance hierarchy and lowers the tree onto rtl::Design. Every
 * node carries its source position so both stages report
 * structured {file,line,col,message} diagnostics.
 *
 * The tree is deliberately small: expressions are one variant
 * struct, statements another, and a module is ordered lists of
 * declarations plus an item order vector so elaboration replays
 * the body exactly as written.
 */

#ifndef ZOOMIE_VERILOG_AST_HH
#define ZOOMIE_VERILOG_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace zoomie::verilog::ast {

struct Expr;
using ExprP = std::unique_ptr<Expr>;

/** One expression node. */
struct Expr
{
    enum class Kind : uint8_t {
        Number,  ///< value/width (width 0 = unsized)
        Ident,   ///< name
        Unary,   ///< op(name), ops[0]
        Binary,  ///< op(name), ops[0], ops[1]
        Ternary, ///< ops[0] ? ops[1] : ops[2]
        Concat,  ///< {ops...}, ops[0] is the high part
        Repl,    ///< {N{x}}: ops[0] = count, ops[1] = x
        Select,  ///< name[ops[0]] or name[ops[0]:ops[1]] (isRange)
    };

    Kind kind = Kind::Number;
    int line = 0;
    int col = 0;

    uint64_t value = 0; ///< Number: decoded value
    int width = 0;      ///< Number: declared size, 0 = unsized

    /** Ident/Select: identifier. Unary/Binary: operator lexeme. */
    std::string name;

    std::vector<ExprP> ops;
    bool isRange = false; ///< Select: [msb:lsb] part-select
};

struct Stmt;
using StmtP = std::unique_ptr<Stmt>;

/** One procedural statement. */
struct Stmt
{
    enum class Kind : uint8_t {
        Block,       ///< begin ... end (stmts)
        If,          ///< cond, thenStmts, elseStmts
        Case,        ///< caseExpr, items
        Blocking,    ///< lhs = rhs
        NonBlocking, ///< lhs <= rhs
    };

    struct CaseItem
    {
        /** Label expressions; empty = the `default` item. */
        std::vector<ExprP> labels;
        std::vector<StmtP> body;
        int line = 0;
        int col = 0;
    };

    Kind kind = Kind::Block;
    int line = 0;
    int col = 0;

    ExprP lhs; ///< assignment target (Ident or Select)
    ExprP rhs;

    ExprP cond;
    std::vector<StmtP> thenStmts;
    std::vector<StmtP> elseStmts;

    ExprP caseExpr;
    std::vector<CaseItem> items;

    std::vector<StmtP> stmts;
};

/** An optional [msb:lsb] range; both bounds are constant exprs. */
struct Range
{
    bool present = false;
    ExprP msb;
    ExprP lsb;
};

/** Port direction. */
enum class Dir : uint8_t { Input, Output };

/** One declared port (from the header or a body declaration). */
struct PortDecl
{
    Dir dir = Dir::Input;
    bool isReg = false; ///< `output reg ...`
    Range range;
    std::string name;
    int line = 0;
    int col = 0;
};

/** A body `wire`/`reg` declaration (one per declared name). */
struct NetDecl
{
    bool isReg = false;
    Range range;
    Range array; ///< present => memory ([0:depth-1])
    std::string name;
    int line = 0;
    int col = 0;
};

/** `parameter` / `localparam` declaration. */
struct ParamDecl
{
    bool local = false;
    std::string name;
    ExprP value;
    int line = 0;
    int col = 0;
};

/** One continuous assign. */
struct AssignItem
{
    ExprP lhs;
    ExprP rhs;
    int line = 0;
    int col = 0;
};

/** One always block: @* (comb) or @(posedge clock). */
struct AlwaysItem
{
    bool comb = false;
    std::string clock; ///< posedge identifier (when !comb)
    StmtP body;
    int line = 0;
    int col = 0;
};

/** Named or positional connection (port empty = positional). */
struct Connection
{
    std::string port;
    ExprP expr; ///< null for explicitly empty `.port()`
    int line = 0;
    int col = 0;
};

/** One module instantiation. */
struct Instance
{
    std::string moduleName;
    std::string name;
    std::vector<Connection> paramOverrides;
    std::vector<Connection> conns;
    bool paramsPositional = false;
    bool connsPositional = false;
    int line = 0;
    int col = 0;
};

/** One parsed module. */
struct Module
{
    std::string name;
    int line = 0;
    int col = 0;

    /** Header port names, in order (positional connections). */
    std::vector<std::string> portOrder;

    std::vector<PortDecl> ports;
    std::vector<ParamDecl> params;
    std::vector<NetDecl> nets;
    std::vector<AssignItem> assigns;
    std::vector<AlwaysItem> always;
    std::vector<Instance> instances;

    /** Body order: which list the next item lives in. */
    struct Item
    {
        enum class Kind : uint8_t { Assign, Always, Instance };
        Kind kind;
        size_t index;
    };
    std::vector<Item> items;
};

/** One parsed compilation unit. */
struct SourceUnit
{
    std::vector<Module> modules;
};

} // namespace zoomie::verilog::ast

#endif // ZOOMIE_VERILOG_AST_HH
