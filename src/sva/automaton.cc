#include "automaton.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"

namespace zoomie::sva {

int
AtomTable::intern(const Expr &expr)
{
    std::string key = expr.key();
    auto it = _byKey.find(key);
    if (it != _byKey.end())
        return it->second;
    int index = static_cast<int>(_atoms.size());
    _atoms.push_back(expr);
    _byKey[key] = index;
    return index;
}

int
AtomTable::internTrue()
{
    Expr truth;
    truth.kind = Expr::Kind::Const;
    truth.value = 1;
    return intern(truth);
}

int
AtomTable::internAnd(int a, int b)
{
    if (a == b)
        return a;
    // Canonical argument order keeps (a&&b) and (b&&a) identical.
    const Expr &ea = _atoms[std::min(a, b)];
    const Expr &eb = _atoms[std::max(a, b)];
    Expr conj;
    conj.kind = Expr::Kind::And;
    conj.args.push_back(ea);
    conj.args.push_back(eb);
    return intern(conj);
}

namespace {

/** NFA builder with error propagation. */
class NfaBuilder
{
  public:
    NfaBuilder(AtomTable &atoms, uint32_t max_states)
        : _atoms(atoms), _max(max_states) {}

    NfaResult run(const Seq &seq)
    {
        NfaResult result;
        Nfa nfa;
        if (!build(seq, nfa)) {
            result.error = _error.empty()
                ? "sequence too complex" : _error;
            return result;
        }
        result.ok = true;
        result.nfa = std::move(nfa);
        return result;
    }

  private:
    bool fail(const std::string &reason)
    {
        if (_error.empty())
            _error = reason;
        return false;
    }

    uint32_t newState(Nfa &nfa)
    {
        nfa.out.emplace_back();
        nfa.accept.push_back(false);
        return static_cast<uint32_t>(nfa.out.size() - 1);
    }

    bool checkSize(const Nfa &nfa)
    {
        if (nfa.size() > _max)
            return fail("sequence too complex (state bound)");
        return true;
    }

    /** Append `src` into `dst`, returning the state offset. */
    uint32_t merge(Nfa &dst, const Nfa &src)
    {
        uint32_t offset = static_cast<uint32_t>(dst.size());
        for (size_t s = 0; s < src.size(); ++s) {
            dst.out.emplace_back();
            for (const Nfa::Edge &edge : src.out[s])
                dst.out.back().push_back({edge.to + offset,
                                          edge.atom});
            dst.accept.push_back(src.accept[s]);
        }
        return offset;
    }

    /**
     * Concatenate: from every accept of `nfa`, after a delay of
     * [lo,hi] cycles, continue as `tail`. Accepts of `nfa` are
     * cleared; `tail`'s accepts (offset) become the new accepts.
     */
    bool concatenate(Nfa &nfa, const Nfa &tail, uint32_t lo,
                     uint32_t hi)
    {
        uint32_t offset = merge(nfa, tail);
        std::vector<uint32_t> ends;
        for (uint32_t s = 0; s < offset; ++s) {
            if (nfa.accept[s]) {
                ends.push_back(s);
                nfa.accept[s] = false;
            }
        }
        const auto &tail_start_edges = tail.out[tail.start];
        int true_atom = _atoms.internTrue();
        for (uint32_t end : ends) {
            // Delay d consumes d-1 idle cycles, then the tail's
            // first atom fires (##1 = immediately next cycle).
            uint32_t from = end;
            for (uint32_t d = 1; d <= hi; ++d) {
                if (d >= lo) {
                    for (const Nfa::Edge &edge : tail_start_edges) {
                        nfa.out[from].push_back(
                            {edge.to + offset, edge.atom});
                    }
                }
                if (d < hi) {
                    uint32_t chain = newState(nfa);
                    nfa.out[from].push_back({chain, true_atom});
                    from = chain;
                }
            }
        }
        return checkSize(nfa);
    }

    bool build(const Seq &seq, Nfa &nfa)
    {
        switch (seq.kind) {
          case Seq::Kind::Atom: {
            nfa = Nfa{};
            uint32_t s0 = newState(nfa);
            uint32_t s1 = newState(nfa);
            nfa.start = s0;
            nfa.out[s0].push_back({s1, _atoms.intern(seq.expr)});
            nfa.accept[s1] = true;
            return true;
          }
          case Seq::Kind::Delay: {
            if (!build(*seq.a, nfa))
                return false;
            Nfa tail;
            if (!build(*seq.b, tail))
                return false;
            return concatenate(nfa, tail, seq.lo, seq.hi);
          }
          case Seq::Kind::Or: {
            Nfa left, right;
            if (!build(*seq.a, left) || !build(*seq.b, right))
                return false;
            nfa = Nfa{};
            uint32_t s0 = newState(nfa);
            nfa.start = s0;
            uint32_t off_l = merge(nfa, left);
            uint32_t off_r = merge(nfa, right);
            for (const Nfa::Edge &edge : left.out[left.start])
                nfa.out[s0].push_back({edge.to + off_l, edge.atom});
            for (const Nfa::Edge &edge : right.out[right.start])
                nfa.out[s0].push_back({edge.to + off_r, edge.atom});
            return checkSize(nfa);
          }
          case Seq::Kind::Repeat: {
            Nfa base;
            if (!build(*seq.a, base))
                return false;
            // a[*lo:hi] = a ##1 a ... with accepts at lengths
            // lo..hi.
            nfa = base;
            std::vector<std::vector<bool>> accepts_at;
            for (uint32_t rep = 2; rep <= seq.hi; ++rep) {
                // Save which states accept at the previous depth,
                // clear them if below lo.
                Nfa copy = base;
                std::vector<uint32_t> ends;
                for (uint32_t s = 0; s < nfa.size(); ++s) {
                    if (nfa.accept[s])
                        ends.push_back(s);
                }
                uint32_t offset = merge(nfa, copy);
                for (uint32_t end : ends) {
                    for (const Nfa::Edge &edge :
                         copy.out[copy.start]) {
                        nfa.out[end].push_back(
                            {edge.to + offset, edge.atom});
                    }
                    // Intermediate end below lo is not a match.
                    if (rep - 1 < seq.lo)
                        nfa.accept[end] = false;
                }
                if (!checkSize(nfa))
                    return false;
            }
            (void)accepts_at;
            return true;
          }
          case Seq::Kind::And: {
            Nfa left, right;
            if (!build(*seq.a, left) || !build(*seq.b, right))
                return false;
            return product(left, right, nfa);
          }
        }
        return fail("unknown sequence node");
    }

    /**
     * `and` product: both sequences must match; the match ends at
     * the later endpoint. State space: (i, j) where either side may
     * be Done (already matched). Accept state = (Done, Done).
     */
    bool product(const Nfa &a, const Nfa &b, Nfa &nfa)
    {
        constexpr int kDone = -1;
        nfa = Nfa{};
        std::map<std::pair<int, int>, uint32_t> ids;
        std::vector<std::pair<int, int>> work;

        auto stateOf = [&](int i, int j) {
            auto key = std::make_pair(i, j);
            auto it = ids.find(key);
            if (it != ids.end())
                return it->second;
            uint32_t s = newState(nfa);
            ids[key] = s;
            nfa.accept[s] = i == kDone && j == kDone;
            work.push_back(key);
            return s;
        };

        int true_atom = _atoms.internTrue();
        nfa.start = stateOf(static_cast<int>(a.start),
                            static_cast<int>(b.start));

        while (!work.empty()) {
            auto [i, j] = work.back();
            work.pop_back();
            uint32_t from = ids[{i, j}];
            if (i == kDone && j == kDone)
                continue;
            if (nfa.size() > _max)
                return fail("'and' product too complex");

            // Successor candidates per side: (state, atom) pairs,
            // where entering an accept state may also mean Done.
            struct Cand { int to; int atom; };
            auto succs = [&](const Nfa &side, int s,
                             std::vector<Cand> &out_c) {
                out_c.clear();
                if (s == kDone) {
                    out_c.push_back({kDone, true_atom});
                    return;
                }
                for (const Nfa::Edge &edge : side.out[s]) {
                    out_c.push_back({static_cast<int>(edge.to),
                                     edge.atom});
                    if (side.accept[edge.to])
                        out_c.push_back({kDone, edge.atom});
                }
            };
            std::vector<Cand> ca, cb;
            succs(a, i, ca);
            succs(b, j, cb);
            for (const Cand &x : ca) {
                for (const Cand &y : cb) {
                    int atom = _atoms.internAnd(x.atom, y.atom);
                    uint32_t to = stateOf(x.to, y.to);
                    nfa.out[from].push_back({to, atom});
                }
            }
        }
        return checkSize(nfa);
    }

    AtomTable &_atoms;
    uint32_t _max;
    std::string _error;
};

} // namespace

NfaResult
buildNfa(const Seq &seq, AtomTable &atoms, uint32_t max_states)
{
    NfaBuilder builder(atoms, max_states);
    return builder.run(seq);
}

DfaResult
buildDfa(const Nfa &nfa, uint32_t max_states, uint32_t max_relevant)
{
    DfaResult result;
    Dfa &dfa = result.dfa;

    std::map<std::set<uint32_t>, int> ids;
    std::vector<std::set<uint32_t>> subsets;
    std::vector<int> work;

    auto stateOf = [&](const std::set<uint32_t> &subset) {
        auto it = ids.find(subset);
        if (it != ids.end())
            return it->second;
        int id = static_cast<int>(subsets.size());
        ids[subset] = id;
        subsets.push_back(subset);
        dfa.states.emplace_back();
        work.push_back(id);
        return id;
    };

    stateOf({nfa.start});

    while (!work.empty()) {
        int id = work.back();
        work.pop_back();
        if (dfa.states.size() > max_states) {
            result.error = "assertion too complex to determinize";
            return result;
        }
        const std::set<uint32_t> subset = subsets[id];

        // Relevant atoms of this subset.
        std::set<int> relevant_set;
        for (uint32_t s : subset) {
            for (const Nfa::Edge &edge : nfa.out[s])
                relevant_set.insert(edge.atom);
        }
        std::vector<int> relevant(relevant_set.begin(),
                                  relevant_set.end());
        if (relevant.size() > max_relevant) {
            result.error = "too many distinct conditions in one "
                           "assertion state";
            return result;
        }

        dfa.states[id].relevant = relevant;
        const uint32_t num_vals = 1u << relevant.size();
        dfa.states[id].action.resize(num_vals);

        auto atomPos = [&](int atom) {
            for (size_t k = 0; k < relevant.size(); ++k) {
                if (relevant[k] == atom)
                    return k;
            }
            panic("atom not relevant");
        };

        for (uint32_t v = 0; v < num_vals; ++v) {
            std::set<uint32_t> next;
            bool success = false;
            for (uint32_t s : subset) {
                for (const Nfa::Edge &edge : nfa.out[s]) {
                    if (!((v >> atomPos(edge.atom)) & 1))
                        continue;
                    if (nfa.accept[edge.to])
                        success = true;
                    else
                        next.insert(edge.to);
                }
            }
            int action;
            if (success)
                action = Dfa::kSuccess;
            else if (next.empty())
                action = Dfa::kFail;
            else
                action = stateOf(next);  // may grow dfa.states
            dfa.states[id].action[v] = action;
        }
    }
    result.ok = true;
    return result;
}

} // namespace zoomie::sva
