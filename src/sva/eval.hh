/**
 * @file
 * Software reference evaluator for compiled properties. Executes
 * the same automata the hardware monitor implements, over a signal
 * trace supplied cycle by cycle — used to differentially test the
 * Assertion Synthesis compiler and by Zoomie's host software to
 * re-check violations on extracted snapshots.
 */

#ifndef ZOOMIE_SVA_EVAL_HH
#define ZOOMIE_SVA_EVAL_HH

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "sva/compiler.hh"

namespace zoomie::sva {

/** Reads the current value of a named signal. */
using SignalReader = std::function<uint64_t(const std::string &)>;

/** Stepwise evaluator for one compiled property. */
class PropertyEvaluator
{
  public:
    explicit PropertyEvaluator(const CompiledProperty &prop)
        : _prop(prop)
    {
        reset();
    }

    /** Clear all attempt state and history. */
    void reset();

    /**
     * Evaluate one clock cycle.
     *
     * @param read signal accessor for this cycle
     * @return true if the property FAILS in this cycle
     */
    bool step(const SignalReader &read);

    /** Failures seen since reset. */
    uint64_t failCount() const { return _failCount; }

  private:
    bool truth(const Expr &expr, const SignalReader &read);
    uint64_t eval(const Expr &expr, const SignalReader &read);
    uint64_t history(const std::string &key, uint64_t now,
                     unsigned depth);

    const CompiledProperty &_prop;
    std::set<uint32_t> _antTokens;       ///< NFA states w/ tokens
    std::set<int> _active;               ///< DFA attempt states
    bool _spawnPending = false;          ///< |=> delayed spawn
    std::map<std::string, std::deque<uint64_t>> _history;
    std::map<std::string, uint64_t> *_staged = nullptr;
    uint64_t _failCount = 0;
};

} // namespace zoomie::sva

#endif // ZOOMIE_SVA_EVAL_HH
