/**
 * @file
 * Sequence automata for assertion synthesis. Sequences compile to
 * NFAs whose edges are labelled with *atoms* (boolean expressions
 * interned in an AtomTable; one edge fires when its atom evaluates
 * true that cycle). Antecedents run as nondeterministic token-
 * passing monitors (every match must spawn a consequent attempt);
 * consequents are determinized so an attempt's failure — the token
 * set dying without acceptance — is detectable in hardware. This is
 * the classic LTL/SVA-to-FSM construction (§7.5) specialized to the
 * finite Table 4 subset.
 */

#ifndef ZOOMIE_SVA_AUTOMATON_HH
#define ZOOMIE_SVA_AUTOMATON_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sva/ast.hh"

namespace zoomie::sva {

/** Interned boolean expressions used as edge labels. */
class AtomTable
{
  public:
    /** Intern an expression; returns its atom index. */
    int intern(const Expr &expr);

    /** Intern the conjunction of two atoms. */
    int internAnd(int a, int b);

    /** Constant-true atom. */
    int internTrue();

    const std::vector<Expr> &atoms() const { return _atoms; }
    size_t size() const { return _atoms.size(); }

  private:
    std::vector<Expr> _atoms;
    std::unordered_map<std::string, int> _byKey;
};

/** Nondeterministic sequence automaton. */
struct Nfa
{
    struct Edge
    {
        uint32_t to = 0;
        int atom = -1;   ///< index into AtomTable
    };

    uint32_t start = 0;
    std::vector<std::vector<Edge>> out;
    std::vector<bool> accept;

    size_t size() const { return out.size(); }
};

/** Build result (sequence complexity is bounded). */
struct NfaResult
{
    bool ok = false;
    Nfa nfa;
    std::string error;
};

/**
 * Compile a sequence to an NFA.
 *
 * @param max_states complexity bound (product constructions for
 *        `and` can blow up; exceeding the bound is reported as an
 *        unsupported-assertion error)
 */
NfaResult buildNfa(const Seq &seq, AtomTable &atoms,
                   uint32_t max_states = 512);

/** Deterministic fail-detecting automaton for consequents. */
struct Dfa
{
    /** Per-valuation action codes. */
    static constexpr int kFail = -2;
    static constexpr int kSuccess = -1;

    struct State
    {
        std::vector<int> relevant;  ///< atom indices observed here
        /** action[v] for valuation v over `relevant` (LSB =
         *  relevant[0]): kFail, kSuccess, or a target state. */
        std::vector<int> action;
    };

    std::vector<State> states;  ///< state 0 = start
};

/** Determinization result. */
struct DfaResult
{
    bool ok = false;
    Dfa dfa;
    std::string error;
};

/**
 * Subset-construct the fail-detecting DFA of an NFA.
 *
 * @param max_relevant per-state bound on distinct atoms (circuit
 *        size is exponential in this; realistic assertions use <=4)
 */
DfaResult buildDfa(const Nfa &nfa, uint32_t max_states = 256,
                   uint32_t max_relevant = 8);

} // namespace zoomie::sva

#endif // ZOOMIE_SVA_AUTOMATON_HH
