#include "ast.hh"

#include <sstream>

namespace zoomie::sva {

namespace {

const char *
kindTag(Expr::Kind kind)
{
    switch (kind) {
      case Expr::Kind::Signal: return "sig";
      case Expr::Kind::Const: return "c";
      case Expr::Kind::Index: return "idx";
      case Expr::Kind::Not: return "not";
      case Expr::Kind::And: return "and";
      case Expr::Kind::Or: return "or";
      case Expr::Kind::Xor: return "xor";
      case Expr::Kind::Eq: return "eq";
      case Expr::Kind::Ne: return "ne";
      case Expr::Kind::Lt: return "lt";
      case Expr::Kind::Le: return "le";
      case Expr::Kind::Gt: return "gt";
      case Expr::Kind::Ge: return "ge";
      case Expr::Kind::Past: return "past";
      case Expr::Kind::IsUnknown: return "isunk";
      case Expr::Kind::Rose: return "rose";
      case Expr::Kind::Fell: return "fell";
    }
    return "?";
}

} // namespace

std::string
Expr::key() const
{
    std::ostringstream os;
    os << kindTag(kind) << '(' << signal << ',' << value;
    for (const Expr &arg : args)
        os << ',' << arg.key();
    os << ')';
    return os.str();
}

bool
Expr::containsIsUnknown() const
{
    if (kind == Kind::IsUnknown)
        return true;
    for (const Expr &arg : args) {
        if (arg.containsIsUnknown())
            return true;
    }
    return false;
}

void
Expr::collectSignals(std::vector<std::string> &out) const
{
    if (kind == Kind::Signal)
        out.push_back(signal);
    for (const Expr &arg : args)
        arg.collectSignals(out);
}

std::unique_ptr<Seq>
Seq::clone() const
{
    auto out = std::make_unique<Seq>();
    out->kind = kind;
    out->expr = expr;
    out->lo = lo;
    out->hi = hi;
    if (a)
        out->a = a->clone();
    if (b)
        out->b = b->clone();
    return out;
}

} // namespace zoomie::sva
