/**
 * @file
 * The Assertion Synthesis compiler (§3.4): turns a parsed SVA into
 * a synthesizable monitor FSM emitted into an rtl::Builder. The
 * monitor raises a 1-bit `fail` pulse in the exact cycle a property
 * violation completes — Zoomie wires this into the debug
 * controller's trigger unit as an assertion breakpoint.
 *
 * Unsynthesizable constructs ($isunknown — four-state only) are
 * rejected here with a reason, reproducing the paper's assertion #3
 * outcome (§5.4).
 */

#ifndef ZOOMIE_SVA_COMPILER_HH
#define ZOOMIE_SVA_COMPILER_HH

#include <functional>
#include <string>

#include "rtl/builder.hh"
#include "sva/automaton.hh"
#include "sva/parser.hh"

namespace zoomie::sva {

/** A property compiled to automata, ready for circuit or software
 *  evaluation. */
struct CompiledProperty
{
    Property ast;
    AtomTable atoms;
    bool hasAntecedent = false;
    Nfa antecedent;      ///< valid when hasAntecedent
    Dfa consequent;      ///< valid unless ast.immediate
};

/** Outcome of compiling (parse + automata + synthesizability). */
struct CompileOutcome
{
    bool ok = false;
    std::string error;
    CompiledProperty prop;
};

/** Compile a parsed property into automata. */
CompileOutcome compileProperty(Property &&property);

/** Parse + compile in one step. */
CompileOutcome compileAssertion(const std::string &text);

/** Maps an SVA signal name to a design net. */
using SignalResolver =
    std::function<rtl::Value(const std::string &)>;

/** Monitor-size statistics (before technology mapping). */
struct MonitorStats
{
    uint32_t antecedentStates = 0;
    uint32_t consequentStates = 0;
    uint32_t atoms = 0;
    uint32_t pastRegs = 0;
};

/**
 * Emit the monitor circuit into @p builder (under the current
 * scope).
 *
 * @param resolver maps signal names in the assertion to design nets
 * @param clock    clock domain of the monitor
 * @return 1-bit fail pulse
 */
rtl::Value buildMonitor(rtl::Builder &builder,
                        const CompiledProperty &prop,
                        const SignalResolver &resolver,
                        uint8_t clock = 0,
                        MonitorStats *stats = nullptr);

/** Post-mapping area of a standalone monitor (Figure 8 data). */
struct AssertionArea
{
    bool synthesizable = false;
    std::string error;
    uint32_t luts = 0;
    uint32_t ffs = 0;
};

/**
 * Measure the mapped area of an assertion compiled standalone: the
 * referenced signals become module inputs with the given widths
 * (default 1 bit).
 */
AssertionArea measureAssertionArea(
    const std::string &text,
    const std::unordered_map<std::string, unsigned> &widths = {});

} // namespace zoomie::sva

#endif // ZOOMIE_SVA_COMPILER_HH
