/**
 * @file
 * AST for the SystemVerilog Assertion subset Zoomie synthesizes
 * (Table 4): immediate asserts, single-clock concurrent properties
 * with `disable iff`, implication (|-> and |=>), fixed delays ##N,
 * finite delay ranges ##[m:n], finite consecutive repetition [*m:n],
 * finite sequence `and`/`or`, and the $past system function.
 * $isunknown parses but is rejected at synthesis (four-state only);
 * local variables, asynchronous resets and first_match are rejected
 * at parse time.
 */

#ifndef ZOOMIE_SVA_AST_HH
#define ZOOMIE_SVA_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace zoomie::sva {

/** Boolean/bit-vector expression over design signals. */
struct Expr
{
    enum class Kind {
        Signal,     ///< named design signal
        Const,      ///< numeric literal
        Index,      ///< a[bit]
        Not,        ///< !a or ~a (context collapses them)
        And, Or, Xor,
        Eq, Ne, Lt, Le, Gt, Ge,
        Past,       ///< $past(a, n)
        IsUnknown,  ///< $isunknown(a) — unsynthesizable
        Rose,       ///< $rose(a)
        Fell,       ///< $fell(a)
    };

    Kind kind = Kind::Const;
    std::string signal;
    uint64_t value = 0;       ///< Const value / Index bit / Past depth
    std::vector<Expr> args;

    /** Canonical serialization for structural dedup. */
    std::string key() const;

    /** True if the tree contains $isunknown. */
    bool containsIsUnknown() const;

    /** Collect referenced signal names. */
    void collectSignals(std::vector<std::string> &out) const;
};

/** Sequence node. */
struct Seq
{
    enum class Kind {
        Atom,    ///< boolean expression, consumes one cycle
        Delay,   ///< a ##[lo:hi] b
        Or,      ///< a or b
        And,     ///< a and b (both match; ends at the later end)
        Repeat,  ///< a [*lo:hi] (consecutive)
    };

    Kind kind = Kind::Atom;
    Expr expr;                   ///< Atom payload
    std::unique_ptr<Seq> a, b;
    uint32_t lo = 1, hi = 1;     ///< Delay / Repeat bounds

    /** Deep copy. */
    std::unique_ptr<Seq> clone() const;
};

/** A parsed assertion. */
struct Property
{
    std::string name;
    bool immediate = false;
    Expr immediateExpr;          ///< for immediate asserts

    std::string clock;           ///< posedge clock signal name
    bool hasDisable = false;
    Expr disable;

    std::unique_ptr<Seq> antecedent;  ///< null => always-true
    bool overlapped = true;           ///< |-> vs |=>
    std::unique_ptr<Seq> consequent;
};

} // namespace zoomie::sva

#endif // ZOOMIE_SVA_AST_HH
