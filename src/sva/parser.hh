/**
 * @file
 * Recursive-descent parser for the SVA subset. Unsupported
 * constructs (local variables, first_match, asynchronous resets,
 * unbounded repetition, ##0 fusion, multiple clocks) are rejected
 * with a descriptive reason — this is what the Table 4 support
 * matrix bench queries.
 */

#ifndef ZOOMIE_SVA_PARSER_HH
#define ZOOMIE_SVA_PARSER_HH

#include <string>

#include "sva/ast.hh"

namespace zoomie::sva {

/** Parse outcome. */
struct ParseResult
{
    bool ok = false;
    Property property;
    std::string error;   ///< reason when !ok

    static ParseResult failure(std::string reason)
    {
        ParseResult result;
        result.error = std::move(reason);
        return result;
    }
};

/**
 * Parse one assertion, e.g.
 *
 *   ack_valid: assert property (@(posedge clk)
 *       disable iff (!resetn) valid |-> ##1 ack);
 *
 * or an immediate assertion:  assert (a == b);
 */
ParseResult parseAssertion(const std::string &text);

} // namespace zoomie::sva

#endif // ZOOMIE_SVA_PARSER_HH
