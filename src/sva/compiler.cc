#include "compiler.hh"

#include <map>

#include "common/logging.hh"
#include "synth/techmap.hh"

namespace zoomie::sva {

using rtl::Builder;
using rtl::Value;

CompileOutcome
compileProperty(Property &&property)
{
    CompileOutcome outcome;
    CompiledProperty &prop = outcome.prop;
    prop.ast = std::move(property);

    auto reject = [&](const std::string &reason) {
        outcome.error = reason;
    };

    if (prop.ast.immediate) {
        if (prop.ast.immediateExpr.containsIsUnknown()) {
            reject("$isunknown checks for X values, which "
                   "only exist in four-state simulation");
            return outcome;
        }
        outcome.ok = true;
        return outcome;
    }

    if (prop.ast.hasDisable &&
        prop.ast.disable.containsIsUnknown()) {
        reject("$isunknown in disable condition");
        return outcome;
    }

    if (prop.ast.antecedent) {
        NfaResult ant = buildNfa(*prop.ast.antecedent, prop.atoms);
        if (!ant.ok) {
            reject(ant.error);
            return outcome;
        }
        prop.antecedent = std::move(ant.nfa);
        prop.hasAntecedent = true;
    }
    panic_if(!prop.ast.consequent, "property without consequent");
    NfaResult con = buildNfa(*prop.ast.consequent, prop.atoms);
    if (!con.ok) {
        reject(con.error);
        return outcome;
    }
    DfaResult dfa = buildDfa(con.nfa);
    if (!dfa.ok) {
        reject(dfa.error);
        return outcome;
    }
    prop.consequent = std::move(dfa.dfa);

    for (const Expr &atom : prop.atoms.atoms()) {
        if (atom.containsIsUnknown()) {
            reject("$isunknown checks for X values, which "
                   "only exist in four-state simulation");
            return outcome;
        }
    }
    outcome.ok = true;
    return outcome;
}

CompileOutcome
compileAssertion(const std::string &text)
{
    ParseResult parsed = parseAssertion(text);
    if (!parsed.ok) {
        CompileOutcome outcome;
        outcome.error = parsed.error;
        return outcome;
    }
    return compileProperty(std::move(parsed.property));
}

namespace {

/** Circuit-side expression evaluation with $past sharing. */
class ExprBuilder
{
  public:
    ExprBuilder(Builder &builder, const SignalResolver &resolver,
                uint8_t clock, MonitorStats &stats)
        : _b(builder), _resolver(resolver), _clock(clock),
          _stats(stats) {}

    /** Evaluate to a 1-bit truth value. */
    Value truth(const Expr &expr)
    {
        Value v = eval(expr);
        return v.width == 1 ? v : _b.redOr(v);
    }

    Value eval(const Expr &expr)
    {
        switch (expr.kind) {
          case Expr::Kind::Signal:
            return _resolver(expr.signal);
          case Expr::Kind::Const: {
            unsigned width = 1;
            while (width < 64 && (expr.value >> width))
                ++width;
            return _b.lit(expr.value, width);
          }
          case Expr::Kind::Index: {
            Value base = eval(expr.args[0]);
            panic_if(expr.value >= base.width,
                     "bit index out of range in assertion");
            return _b.bit(base, static_cast<unsigned>(expr.value));
          }
          case Expr::Kind::Not:
            return _b.lnot(truth(expr.args[0]));
          case Expr::Kind::And:
            return _b.land(truth(expr.args[0]), truth(expr.args[1]));
          case Expr::Kind::Or:
            return _b.lor(truth(expr.args[0]), truth(expr.args[1]));
          case Expr::Kind::Xor:
            return _b.bxor(truth(expr.args[0]),
                           truth(expr.args[1]));
          case Expr::Kind::Eq:
          case Expr::Kind::Ne:
          case Expr::Kind::Lt:
          case Expr::Kind::Le:
          case Expr::Kind::Gt:
          case Expr::Kind::Ge: {
            Value a = eval(expr.args[0]);
            Value c = eval(expr.args[1]);
            unsigned width = std::max(a.width, c.width);
            a = _b.zext(a, width);
            c = _b.zext(c, width);
            switch (expr.kind) {
              case Expr::Kind::Eq: return _b.eq(a, c);
              case Expr::Kind::Ne: return _b.ne(a, c);
              case Expr::Kind::Lt: return _b.ult(a, c);
              case Expr::Kind::Le: return _b.ule(a, c);
              case Expr::Kind::Gt: return _b.ult(c, a);
              default: return _b.ule(c, a);
            }
          }
          case Expr::Kind::Past:
            return past(expr.args[0],
                        static_cast<unsigned>(expr.value));
          case Expr::Kind::Rose: {
            Value now = truth(expr.args[0]);
            Value prev = pastOf(now, 1, expr.args[0].key() + "#t");
            return _b.land(now, _b.lnot(prev));
          }
          case Expr::Kind::Fell: {
            Value now = truth(expr.args[0]);
            Value prev = pastOf(now, 1, expr.args[0].key() + "#t");
            return _b.land(_b.lnot(now), prev);
          }
          case Expr::Kind::IsUnknown:
            panic("$isunknown reached circuit generation");
        }
        panic("unhandled assertion expression");
    }

  private:
    Value past(const Expr &arg, unsigned depth)
    {
        Value now = eval(arg);
        return pastOf(now, depth, arg.key());
    }

    /** Shared shift-register chain keyed by expression. */
    Value pastOf(Value now, unsigned depth, const std::string &key)
    {
        Value cur = now;
        for (unsigned d = 1; d <= depth; ++d) {
            std::string reg_key = key + "#" + std::to_string(d);
            auto it = _pastRegs.find(reg_key);
            if (it != _pastRegs.end()) {
                cur = it->second;
                continue;
            }
            Value q = _b.pipe("past_" +
                                  std::to_string(_pastRegs.size()),
                              cur, 0, _clock);
            ++_stats.pastRegs;
            _pastRegs[reg_key] = q;
            cur = q;
        }
        return cur;
    }

    Builder &_b;
    const SignalResolver &_resolver;
    uint8_t _clock;
    MonitorStats &_stats;
    std::map<std::string, Value> _pastRegs;
};

} // namespace

Value
buildMonitor(Builder &builder, const CompiledProperty &prop,
             const SignalResolver &resolver, uint8_t clock,
             MonitorStats *stats_out)
{
    MonitorStats stats;
    ExprBuilder exprs(builder, resolver, clock, stats);

    if (prop.ast.immediate) {
        Value fail = builder.lnot(
            exprs.truth(prop.ast.immediateExpr));
        if (stats_out)
            *stats_out = stats;
        return fail;
    }

    // Atom values for this cycle.
    std::vector<Value> atom(prop.atoms.size());
    for (size_t i = 0; i < prop.atoms.size(); ++i)
        atom[i] = exprs.truth(prop.atoms.atoms()[i]);
    stats.atoms = static_cast<uint32_t>(prop.atoms.size());

    Value zero = builder.lit(0, 1);
    Value one = builder.lit(1, 1);
    Value dis = prop.ast.hasDisable ? exprs.truth(prop.ast.disable)
                                    : zero;

    auto guard = [&](Value next) {
        // disable iff clears all monitor state.
        return prop.ast.hasDisable
            ? builder.mux(dis, zero, next) : next;
    };

    // ---- antecedent: nondeterministic token passing -------------
    Value matchA = one;
    if (prop.hasAntecedent) {
        const Nfa &nfa = prop.antecedent;
        std::vector<rtl::RegHandle> tok(nfa.size());
        std::vector<Value> tok_val(nfa.size());
        for (uint32_t s = 0; s < nfa.size(); ++s) {
            if (s == nfa.start) {
                tok_val[s] = one;  // a new attempt every cycle
                continue;
            }
            tok[s] = builder.reg(
                "ant_tok" + std::to_string(s), 1, 0, clock);
            tok_val[s] = tok[s].q;
            ++stats.antecedentStates;
        }
        std::vector<Value> next(nfa.size(), zero);
        Value match = zero;
        for (uint32_t s = 0; s < nfa.size(); ++s) {
            for (const Nfa::Edge &edge : nfa.out[s]) {
                Value fire = builder.land(tok_val[s],
                                          atom[edge.atom]);
                if (nfa.accept[edge.to])
                    match = builder.lor(match, fire);
                if (edge.to != nfa.start)
                    next[edge.to] = builder.lor(next[edge.to], fire);
            }
        }
        for (uint32_t s = 0; s < nfa.size(); ++s) {
            if (s == nfa.start)
                continue;
            builder.connect(tok[s], guard(next[s]));
        }
        matchA = match;
    }

    // ---- spawn: overlapped |-> starts the consequent this cycle;
    // |=> delays it by one.
    Value spawn = matchA;
    if (!prop.ast.overlapped) {
        spawn = builder.pipe("spawn_dly", guard(matchA), 0, clock);
    }

    // ---- consequent: determinized attempt tracking ---------------
    const Dfa &dfa = prop.consequent;
    std::vector<rtl::RegHandle> act(dfa.states.size());
    std::vector<Value> effective(dfa.states.size());
    for (size_t d = 0; d < dfa.states.size(); ++d) {
        act[d] = builder.reg("con_act" + std::to_string(d), 1, 0,
                             clock);
        effective[d] = act[d].q;
        ++stats.consequentStates;
    }
    effective[0] = builder.lor(effective[0], spawn);

    std::vector<Value> next(dfa.states.size(), zero);
    Value fail = zero;
    for (size_t d = 0; d < dfa.states.size(); ++d) {
        const Dfa::State &state = dfa.states[d];
        const size_t k = state.relevant.size();
        for (uint32_t v = 0; v < (1u << k); ++v) {
            int action = state.action[v];
            if (action == Dfa::kSuccess)
                continue;
            // Minterm condition over the relevant atoms.
            Value cond = effective[d];
            for (size_t j = 0; j < k; ++j) {
                Value bit = atom[state.relevant[j]];
                if (!((v >> j) & 1))
                    bit = builder.lnot(bit);
                cond = builder.land(cond, bit);
            }
            if (action == Dfa::kFail)
                fail = builder.lor(fail, cond);
            else
                next[action] = builder.lor(next[action], cond);
        }
    }
    for (size_t d = 0; d < dfa.states.size(); ++d)
        builder.connect(act[d], guard(next[d]));

    if (prop.ast.hasDisable)
        fail = builder.land(fail, builder.lnot(dis));

    if (stats_out)
        *stats_out = stats;
    return fail;
}

AssertionArea
measureAssertionArea(
    const std::string &text,
    const std::unordered_map<std::string, unsigned> &widths)
{
    AssertionArea area;
    CompileOutcome outcome = compileAssertion(text);
    if (!outcome.ok) {
        area.error = outcome.error;
        return area;
    }

    Builder builder("sva_monitor");
    std::map<std::string, Value> ports;
    SignalResolver resolver = [&](const std::string &name) {
        auto it = ports.find(name);
        if (it != ports.end())
            return it->second;
        auto wit = widths.find(name);
        unsigned width = wit == widths.end() ? 1 : wit->second;
        Value v = builder.input(name, width);
        ports[name] = v;
        return v;
    };
    Value fail = buildMonitor(builder, outcome.prop, resolver);
    builder.output("fail", fail);
    rtl::Design design = builder.finish();

    synth::MappedNetlist net = synth::techMap(design);
    synth::ResourceCount totals = net.totals();
    area.synthesizable = true;
    area.luts = static_cast<uint32_t>(totals.luts);
    area.ffs = static_cast<uint32_t>(totals.ffs);
    return area;
}

} // namespace zoomie::sva
