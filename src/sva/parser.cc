#include "parser.hh"

#include <cctype>
#include <optional>
#include <vector>

namespace zoomie::sva {

namespace {

enum class Tok {
    End, Ident, Number, SysFunc,
    LParen, RParen, LBrack, RBrack, LBrackStar, LBrackEq, LBrackArrow,
    Colon, Semi, Comma, At, Star, Dollar, Assign,
    DelayDelay,           // ##
    ImplOverlap,          // |->
    ImplNonOverlap,       // |=>
    EqEq, NotEq, Lt, Le, Gt, Ge,
    AndAnd, OrOr, Amp, Pipe, Caret, Bang, Tilde,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;
    uint64_t value = 0;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &text) : _text(text) {}

    bool ok() const { return _error.empty(); }
    const std::string &error() const { return _error; }

    std::vector<Token> run()
    {
        std::vector<Token> tokens;
        while (true) {
            Token token = next();
            tokens.push_back(token);
            if (token.kind == Tok::End || !_error.empty())
                break;
        }
        return tokens;
    }

  private:
    char peek(size_t ahead = 0) const
    {
        return _pos + ahead < _text.size() ? _text[_pos + ahead] : 0;
    }

    Token next()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
        if (_pos >= _text.size())
            return {Tok::End, "", 0};

        char c = peek();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return ident();
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'')
            return number();
        if (c == '$') {
            ++_pos;
            Token t = ident();
            t.kind = Tok::SysFunc;
            return t;
        }

        auto two = [&](char a, char b) {
            return peek() == a && peek(1) == b;
        };
        if (two('#', '#')) { _pos += 2; return {Tok::DelayDelay, "##", 0}; }
        if (peek() == '|' && peek(1) == '-' && peek(2) == '>') {
            _pos += 3;
            return {Tok::ImplOverlap, "|->", 0};
        }
        if (peek() == '|' && peek(1) == '=' && peek(2) == '>') {
            _pos += 3;
            return {Tok::ImplNonOverlap, "|=>", 0};
        }
        if (two('[', '*')) { _pos += 2; return {Tok::LBrackStar, "[*", 0}; }
        if (two('[', '=')) { _pos += 2; return {Tok::LBrackEq, "[=", 0}; }
        if (peek() == '[' && peek(1) == '-' && peek(2) == '>') {
            _pos += 3;
            return {Tok::LBrackArrow, "[->", 0};
        }
        if (two('=', '=')) { _pos += 2; return {Tok::EqEq, "==", 0}; }
        if (two('!', '=')) { _pos += 2; return {Tok::NotEq, "!=", 0}; }
        if (two('<', '=')) { _pos += 2; return {Tok::Le, "<=", 0}; }
        if (two('>', '=')) { _pos += 2; return {Tok::Ge, ">=", 0}; }
        if (two('&', '&')) { _pos += 2; return {Tok::AndAnd, "&&", 0}; }
        if (two('|', '|')) { _pos += 2; return {Tok::OrOr, "||", 0}; }

        ++_pos;
        switch (c) {
          case '(': return {Tok::LParen, "(", 0};
          case ')': return {Tok::RParen, ")", 0};
          case '[': return {Tok::LBrack, "[", 0};
          case ']': return {Tok::RBrack, "]", 0};
          case ':': return {Tok::Colon, ":", 0};
          case ';': return {Tok::Semi, ";", 0};
          case ',': return {Tok::Comma, ",", 0};
          case '@': return {Tok::At, "@", 0};
          case '*': return {Tok::Star, "*", 0};
          case '$': return {Tok::Dollar, "$", 0};
          case '<': return {Tok::Lt, "<", 0};
          case '>': return {Tok::Gt, ">", 0};
          case '&': return {Tok::Amp, "&", 0};
          case '|': return {Tok::Pipe, "|", 0};
          case '^': return {Tok::Caret, "^", 0};
          case '!': return {Tok::Bang, "!", 0};
          case '~': return {Tok::Tilde, "~", 0};
          case '=': return {Tok::Assign, "=", 0};
          default:
            _error = std::string("unexpected character '") + c + "'";
            return {Tok::End, "", 0};
        }
    }

    Token ident()
    {
        size_t start = _pos;
        while (_pos < _text.size()) {
            char c = _text[_pos];
            if (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == '.' || c == '/')
                ++_pos;
            else
                break;
        }
        return {Tok::Ident, _text.substr(start, _pos - start), 0};
    }

    Token number()
    {
        // decimal, 0x hex, or SystemVerilog sized literals
        // (8'hFF, 'b101, 4'd9).
        uint64_t value = 0;
        if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
            _pos += 2;
            while (std::isxdigit(static_cast<unsigned char>(peek()))) {
                value = value * 16 +
                        (std::isdigit(
                             static_cast<unsigned char>(peek()))
                             ? peek() - '0'
                             : (std::tolower(peek()) - 'a') + 10);
                ++_pos;
            }
            return {Tok::Number, "", value};
        }
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            value = value * 10 + (peek() - '0');
            ++_pos;
        }
        if (peek() == '\'') {
            ++_pos;
            char base = static_cast<char>(
                std::tolower(static_cast<unsigned char>(peek())));
            ++_pos;
            uint64_t radix = base == 'h' ? 16 : base == 'b' ? 2
                : base == 'o' ? 8 : 10;
            value = 0;
            while (std::isxdigit(static_cast<unsigned char>(peek())) ||
                   peek() == '_') {
                if (peek() == '_') {
                    ++_pos;
                    continue;
                }
                uint64_t digit =
                    std::isdigit(static_cast<unsigned char>(peek()))
                        ? uint64_t(peek() - '0')
                        : uint64_t(std::tolower(peek()) - 'a') + 10;
                if (digit >= radix)
                    break;
                value = value * radix + digit;
                ++_pos;
            }
        }
        return {Tok::Number, "", value};
    }

    const std::string &_text;
    size_t _pos = 0;
    std::string _error;
};

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : _tokens(std::move(tokens)) {}

    ParseResult run()
    {
        ParseResult result;
        Property &prop = result.property;

        // Optional label.
        if (at(Tok::Ident) && cur().text != "assert") {
            prop.name = cur().text;
            ++_pos;
            if (!eat(Tok::Colon))
                return fail("expected ':' after assertion label");
        }
        if (!atKeyword("assert"))
            return fail("expected 'assert'");
        ++_pos;

        if (atKeyword("property")) {
            ++_pos;
            if (!eat(Tok::LParen))
                return fail("expected '(' after 'assert property'");
            if (!parseProperty(prop))
                return fail(_error);
            if (!eat(Tok::RParen))
                return fail("expected ')' closing the property");
        } else {
            // Immediate assertion.
            if (!eat(Tok::LParen))
                return fail("expected '('");
            prop.immediate = true;
            if (!parseExpr(prop.immediateExpr))
                return fail(_error);
            if (!eat(Tok::RParen))
                return fail("expected ')'");
        }
        eat(Tok::Semi);
        if (!at(Tok::End))
            return fail("trailing input after assertion");
        result.ok = true;
        return result;
    }

  private:
    const Token &cur() const { return _tokens[_pos]; }
    bool at(Tok kind) const { return cur().kind == kind; }
    bool atKeyword(const char *kw) const
    {
        return at(Tok::Ident) && cur().text == kw;
    }
    bool eat(Tok kind)
    {
        if (!at(kind))
            return false;
        ++_pos;
        return true;
    }
    ParseResult fail(const std::string &reason)
    {
        return ParseResult::failure(reason.empty()
                                        ? "parse error" : reason);
    }
    bool error(const std::string &reason)
    {
        if (_error.empty())
            _error = reason;
        return false;
    }

    bool parseProperty(Property &prop)
    {
        // Clocking.
        if (eat(Tok::At)) {
            if (!eat(Tok::LParen))
                return error("expected '(' after '@'");
            if (atKeyword("negedge"))
                return error("negedge clocking unsupported");
            if (!atKeyword("posedge"))
                return error("expected 'posedge'");
            ++_pos;
            if (!at(Tok::Ident))
                return error("expected clock signal name");
            prop.clock = cur().text;
            ++_pos;
            if (!eat(Tok::RParen))
                return error("expected ')' after clocking");
        }
        // Disable.
        if (atKeyword("disable")) {
            ++_pos;
            if (!atKeyword("iff"))
                return error("expected 'iff' after 'disable'");
            ++_pos;
            if (!eat(Tok::LParen))
                return error("expected '(' after 'disable iff'");
            if (!parseExpr(prop.disable))
                return false;
            if (!eat(Tok::RParen))
                return error("expected ')' after disable condition");
            prop.hasDisable = true;
        }
        if (at(Tok::At))
            return error("multiple clocking events unsupported");

        auto lhs = parseSeq();
        if (!lhs)
            return false;
        if (at(Tok::ImplOverlap) || at(Tok::ImplNonOverlap)) {
            prop.overlapped = at(Tok::ImplOverlap);
            ++_pos;
            prop.antecedent = std::move(lhs);
            prop.consequent = parseSeq();
            if (!prop.consequent)
                return false;
        } else {
            prop.consequent = std::move(lhs);
        }
        return true;
    }

    // seq := seq_and ('or' seq_and)*
    std::unique_ptr<Seq> parseSeq()
    {
        auto lhs = parseSeqAnd();
        if (!lhs)
            return nullptr;
        while (atKeyword("or")) {
            ++_pos;
            auto rhs = parseSeqAnd();
            if (!rhs)
                return nullptr;
            auto node = std::make_unique<Seq>();
            node->kind = Seq::Kind::Or;
            node->a = std::move(lhs);
            node->b = std::move(rhs);
            lhs = std::move(node);
        }
        return lhs;
    }

    std::unique_ptr<Seq> parseSeqAnd()
    {
        auto lhs = parseSeqCat();
        if (!lhs)
            return nullptr;
        while (atKeyword("and")) {
            ++_pos;
            auto rhs = parseSeqCat();
            if (!rhs)
                return nullptr;
            auto node = std::make_unique<Seq>();
            node->kind = Seq::Kind::And;
            node->a = std::move(lhs);
            node->b = std::move(rhs);
            lhs = std::move(node);
        }
        return lhs;
    }

    /** Parse ## delay; returns false on error. */
    bool parseDelay(uint32_t &lo, uint32_t &hi)
    {
        if (at(Tok::Number)) {
            lo = hi = static_cast<uint32_t>(cur().value);
            ++_pos;
        } else if (eat(Tok::LBrack)) {
            if (!at(Tok::Number))
                return error("expected delay lower bound");
            lo = static_cast<uint32_t>(cur().value);
            ++_pos;
            if (!eat(Tok::Colon))
                return error("expected ':' in delay range");
            if (at(Tok::Dollar) ||
                (at(Tok::SysFunc) && cur().text.empty()))
                return error("unbounded delay ranges unsupported "
                             "(finite ranges only)");
            if (!at(Tok::Number))
                return error("expected delay upper bound");
            hi = static_cast<uint32_t>(cur().value);
            ++_pos;
            if (!eat(Tok::RBrack))
                return error("expected ']' after delay range");
        } else {
            return error("expected delay after '##'");
        }
        if (lo == 0)
            return error("##0 fusion unsupported");
        if (hi < lo)
            return error("empty delay range");
        if (hi > 64)
            return error("delay range too large (max 64)");
        return true;
    }

    // seq_cat := [##d rep] rep (##d rep)*
    std::unique_ptr<Seq> parseSeqCat()
    {
        std::unique_ptr<Seq> lhs;
        if (eat(Tok::DelayDelay)) {
            // Leading delay, e.g. "|-> ##1 ack": prepend `true`.
            uint32_t lo, hi;
            if (!parseDelay(lo, hi))
                return nullptr;
            auto truth = std::make_unique<Seq>();
            truth->kind = Seq::Kind::Atom;
            truth->expr.kind = Expr::Kind::Const;
            truth->expr.value = 1;
            auto rhs = parseSeqRep();
            if (!rhs)
                return nullptr;
            auto node = std::make_unique<Seq>();
            node->kind = Seq::Kind::Delay;
            node->a = std::move(truth);
            node->b = std::move(rhs);
            node->lo = lo;
            node->hi = hi;
            lhs = std::move(node);
        } else {
            lhs = parseSeqRep();
            if (!lhs)
                return nullptr;
        }
        while (at(Tok::DelayDelay)) {
            ++_pos;
            uint32_t lo, hi;
            if (!parseDelay(lo, hi))
                return nullptr;
            auto rhs = parseSeqRep();
            if (!rhs)
                return nullptr;
            auto node = std::make_unique<Seq>();
            node->kind = Seq::Kind::Delay;
            node->a = std::move(lhs);
            node->b = std::move(rhs);
            node->lo = lo;
            node->hi = hi;
            lhs = std::move(node);
        }
        return lhs;
    }

    std::unique_ptr<Seq> parseSeqRep()
    {
        auto base = parseSeqPrim();
        if (!base)
            return nullptr;
        if (at(Tok::LBrackEq) || at(Tok::LBrackArrow)) {
            error("only consecutive repetition is supported");
            return nullptr;
        }
        if (eat(Tok::LBrackStar)) {
            if (!at(Tok::Number)) {
                error("unbounded repetition unsupported "
                      "(finite bounds only)");
                return nullptr;
            }
            uint32_t lo = static_cast<uint32_t>(cur().value);
            uint32_t hi = lo;
            ++_pos;
            if (eat(Tok::Colon)) {
                if (!at(Tok::Number)) {
                    error("unbounded repetition unsupported "
                          "(finite bounds only)");
                    return nullptr;
                }
                hi = static_cast<uint32_t>(cur().value);
                ++_pos;
            }
            if (!eat(Tok::RBrack)) {
                error("expected ']' after repetition");
                return nullptr;
            }
            if (lo == 0) {
                error("zero-repetition [*0...] unsupported");
                return nullptr;
            }
            if (hi < lo || hi > 32) {
                error("bad repetition bounds (max 32)");
                return nullptr;
            }
            auto node = std::make_unique<Seq>();
            node->kind = Seq::Kind::Repeat;
            node->a = std::move(base);
            node->lo = lo;
            node->hi = hi;
            return node;
        }
        return base;
    }

    std::unique_ptr<Seq> parseSeqPrim()
    {
        if (atKeyword("first_match")) {
            error("first_match unsupported");
            return nullptr;
        }
        if (at(Tok::LParen)) {
            // Could be a parenthesized sequence or expression; a
            // sequence subsumes the expression case. A local
            // variable assignment inside is detected up front for
            // a precise diagnostic.
            size_t save = _pos;
            int depth = 0;
            for (size_t i = _pos; i < _tokens.size(); ++i) {
                if (_tokens[i].kind == Tok::LParen)
                    ++depth;
                else if (_tokens[i].kind == Tok::RParen &&
                         --depth == 0)
                    break;
                if (_tokens[i].kind == Tok::Assign && depth >= 1) {
                    error("local variables unsupported");
                    return nullptr;
                }
            }
            ++_pos;
            auto seq = parseSeq();
            if (seq && eat(Tok::RParen)) {
                // Local-variable assignment? (unsupported); the
                // grammar would have failed already, so just check
                // for ", name =" style leftovers — handled below.
                return seq;
            }
            _pos = save;
            _error.clear();
        }
        // Bare boolean expression atom.
        auto node = std::make_unique<Seq>();
        node->kind = Seq::Kind::Atom;
        if (!parseExpr(node->expr))
            return nullptr;
        if (at(Tok::Assign)) {
            error("local variables unsupported");
            return nullptr;
        }
        return node;
    }

    // ---- expressions ---------------------------------------------
    bool parseExpr(Expr &out) { return parseOr(out); }

    bool parseOr(Expr &out)
    {
        if (!parseAnd(out))
            return false;
        while (at(Tok::OrOr) || at(Tok::Pipe)) {
            ++_pos;
            Expr rhs;
            if (!parseAnd(rhs))
                return false;
            Expr lhs = std::move(out);
            out = Expr{};
            out.kind = Expr::Kind::Or;
            out.args.push_back(std::move(lhs));
            out.args.push_back(std::move(rhs));
        }
        return true;
    }

    bool parseAnd(Expr &out)
    {
        if (!parseXor(out))
            return false;
        while (at(Tok::AndAnd) || at(Tok::Amp)) {
            ++_pos;
            Expr rhs;
            if (!parseXor(rhs))
                return false;
            Expr lhs = std::move(out);
            out = Expr{};
            out.kind = Expr::Kind::And;
            out.args.push_back(std::move(lhs));
            out.args.push_back(std::move(rhs));
        }
        return true;
    }

    bool parseXor(Expr &out)
    {
        if (!parseCmp(out))
            return false;
        while (at(Tok::Caret)) {
            ++_pos;
            Expr rhs;
            if (!parseCmp(rhs))
                return false;
            Expr lhs = std::move(out);
            out = Expr{};
            out.kind = Expr::Kind::Xor;
            out.args.push_back(std::move(lhs));
            out.args.push_back(std::move(rhs));
        }
        return true;
    }

    bool parseCmp(Expr &out)
    {
        if (!parseUnary(out))
            return false;
        Expr::Kind kind;
        if (at(Tok::EqEq))
            kind = Expr::Kind::Eq;
        else if (at(Tok::NotEq))
            kind = Expr::Kind::Ne;
        else if (at(Tok::Lt))
            kind = Expr::Kind::Lt;
        else if (at(Tok::Le))
            kind = Expr::Kind::Le;
        else if (at(Tok::Gt))
            kind = Expr::Kind::Gt;
        else if (at(Tok::Ge))
            kind = Expr::Kind::Ge;
        else
            return true;
        ++_pos;
        Expr rhs;
        if (!parseUnary(rhs))
            return false;
        Expr lhs = std::move(out);
        out = Expr{};
        out.kind = kind;
        out.args.push_back(std::move(lhs));
        out.args.push_back(std::move(rhs));
        return true;
    }

    bool parseUnary(Expr &out)
    {
        if (at(Tok::Bang) || at(Tok::Tilde)) {
            ++_pos;
            Expr inner;
            if (!parseUnary(inner))
                return false;
            out = Expr{};
            out.kind = Expr::Kind::Not;
            out.args.push_back(std::move(inner));
            return true;
        }
        return parsePrimary(out);
    }

    bool parsePrimary(Expr &out)
    {
        if (eat(Tok::LParen)) {
            if (!parseExpr(out))
                return false;
            if (!eat(Tok::RParen))
                return error("expected ')'");
            return true;
        }
        if (at(Tok::Number)) {
            out = Expr{};
            out.kind = Expr::Kind::Const;
            out.value = cur().value;
            ++_pos;
            return true;
        }
        if (at(Tok::SysFunc)) {
            std::string fn = cur().text;
            ++_pos;
            if (!eat(Tok::LParen))
                return error("expected '(' after $" + fn);
            Expr arg;
            if (!parseExpr(arg))
                return false;
            out = Expr{};
            if (fn == "past") {
                out.kind = Expr::Kind::Past;
                out.value = 1;
                if (eat(Tok::Comma)) {
                    if (!at(Tok::Number))
                        return error("expected $past depth");
                    out.value = cur().value;
                    ++_pos;
                    if (out.value == 0 || out.value > 64)
                        return error("bad $past depth");
                }
            } else if (fn == "isunknown") {
                out.kind = Expr::Kind::IsUnknown;
            } else if (fn == "rose") {
                out.kind = Expr::Kind::Rose;
            } else if (fn == "fell") {
                out.kind = Expr::Kind::Fell;
            } else {
                return error("unsupported system function $" + fn);
            }
            out.args.push_back(std::move(arg));
            if (!eat(Tok::RParen))
                return error("expected ')' after $" + fn);
            return true;
        }
        if (at(Tok::Ident)) {
            out = Expr{};
            out.kind = Expr::Kind::Signal;
            out.signal = cur().text;
            ++_pos;
            if (eat(Tok::LBrack)) {
                if (!at(Tok::Number))
                    return error("expected bit index");
                Expr index;
                index.kind = Expr::Kind::Index;
                index.value = cur().value;
                ++_pos;
                if (!eat(Tok::RBrack))
                    return error("expected ']' after bit index");
                index.args.push_back(std::move(out));
                out = std::move(index);
            }
            return true;
        }
        return error("expected expression");
    }

    std::vector<Token> _tokens;
    size_t _pos = 0;
    std::string _error;
};

} // namespace

ParseResult
parseAssertion(const std::string &text)
{
    Lexer lexer(text);
    auto tokens = lexer.run();
    if (!lexer.ok())
        return ParseResult::failure(lexer.error());
    Parser parser(std::move(tokens));
    return parser.run();
}

} // namespace zoomie::sva
