#include "eval.hh"

#include "common/logging.hh"

namespace zoomie::sva {

void
PropertyEvaluator::reset()
{
    _antTokens.clear();
    _active.clear();
    _spawnPending = false;
    _history.clear();
    _failCount = 0;
}

uint64_t
PropertyEvaluator::history(const std::string &key, uint64_t now,
                           unsigned depth)
{
    if (_staged)
        (*_staged)[key] = now;
    const auto &dq = _history[key];
    if (depth == 0)
        return now;
    return depth <= dq.size() ? dq[depth - 1] : 0;
}

bool
PropertyEvaluator::truth(const Expr &expr, const SignalReader &read)
{
    return eval(expr, read) != 0;
}

uint64_t
PropertyEvaluator::eval(const Expr &expr, const SignalReader &read)
{
    switch (expr.kind) {
      case Expr::Kind::Signal:
        return read(expr.signal);
      case Expr::Kind::Const:
        return expr.value;
      case Expr::Kind::Index:
        return (eval(expr.args[0], read) >> expr.value) & 1;
      case Expr::Kind::Not:
        return !truth(expr.args[0], read);
      case Expr::Kind::And:
        return truth(expr.args[0], read) &&
               truth(expr.args[1], read);
      case Expr::Kind::Or:
        return truth(expr.args[0], read) ||
               truth(expr.args[1], read);
      case Expr::Kind::Xor:
        return uint64_t(truth(expr.args[0], read)) ^
               uint64_t(truth(expr.args[1], read));
      case Expr::Kind::Eq:
        return eval(expr.args[0], read) == eval(expr.args[1], read);
      case Expr::Kind::Ne:
        return eval(expr.args[0], read) != eval(expr.args[1], read);
      case Expr::Kind::Lt:
        return eval(expr.args[0], read) < eval(expr.args[1], read);
      case Expr::Kind::Le:
        return eval(expr.args[0], read) <= eval(expr.args[1], read);
      case Expr::Kind::Gt:
        return eval(expr.args[0], read) > eval(expr.args[1], read);
      case Expr::Kind::Ge:
        return eval(expr.args[0], read) >= eval(expr.args[1], read);
      case Expr::Kind::Past: {
        uint64_t now = eval(expr.args[0], read);
        return history(expr.args[0].key(), now,
                       static_cast<unsigned>(expr.value));
      }
      case Expr::Kind::Rose: {
        uint64_t now = truth(expr.args[0], read);
        uint64_t prev = history(expr.args[0].key() + "#t", now, 1);
        return now && !prev;
      }
      case Expr::Kind::Fell: {
        uint64_t now = truth(expr.args[0], read);
        uint64_t prev = history(expr.args[0].key() + "#t", now, 1);
        return !now && prev;
      }
      case Expr::Kind::IsUnknown:
        panic("$isunknown reached the evaluator");
    }
    panic("unhandled expression in evaluator");
}

bool
PropertyEvaluator::step(const SignalReader &read)
{
    std::map<std::string, uint64_t> staged;
    _staged = &staged;

    bool fail = false;
    if (_prop.ast.immediate) {
        fail = !truth(_prop.ast.immediateExpr, read);
    } else {
        // Atom values.
        std::vector<bool> atom(_prop.atoms.size());
        for (size_t i = 0; i < _prop.atoms.size(); ++i)
            atom[i] = truth(_prop.atoms.atoms()[i], read);
        bool dis = _prop.ast.hasDisable &&
                   truth(_prop.ast.disable, read);

        // Antecedent token passing (virtual token at start).
        bool matchA = true;
        std::set<uint32_t> next_tokens;
        if (_prop.hasAntecedent) {
            const Nfa &nfa = _prop.antecedent;
            matchA = false;
            auto tokened = [&](uint32_t s) {
                return s == nfa.start || _antTokens.count(s) > 0;
            };
            for (uint32_t s = 0; s < nfa.size(); ++s) {
                if (!tokened(s))
                    continue;
                for (const Nfa::Edge &edge : nfa.out[s]) {
                    if (!atom[edge.atom])
                        continue;
                    if (nfa.accept[edge.to])
                        matchA = true;
                    if (edge.to != nfa.start)
                        next_tokens.insert(edge.to);
                }
            }
        }

        bool spawn = _prop.ast.overlapped ? matchA : _spawnPending;
        bool spawn_pending_next = matchA;

        std::set<int> effective = _active;
        if (spawn)
            effective.insert(0);

        std::set<int> next_active;
        for (int d : effective) {
            const Dfa::State &state = _prop.consequent.states[d];
            uint32_t v = 0;
            for (size_t j = 0; j < state.relevant.size(); ++j) {
                if (atom[state.relevant[j]])
                    v |= 1u << j;
            }
            int action = state.action[v];
            if (action == Dfa::kFail)
                fail = true;
            else if (action != Dfa::kSuccess)
                next_active.insert(action);
        }

        if (dis) {
            fail = false;
            next_tokens.clear();
            next_active.clear();
            spawn_pending_next = false;
        }
        _antTokens = std::move(next_tokens);
        _active = std::move(next_active);
        _spawnPending = spawn_pending_next;
    }

    // Commit history samples.
    for (const auto &[key, value] : staged)
        _history[key].push_front(value);
    for (auto &[key, dq] : _history) {
        if (dq.size() > 80)
            dq.pop_back();
    }
    _staged = nullptr;

    if (fail)
        ++_failCount;
    return fail;
}

} // namespace zoomie::sva
