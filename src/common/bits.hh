/**
 * @file
 * Bit-manipulation helpers shared by the IR, the mapper and the
 * configuration-memory model. All values are unsigned 64-bit words
 * carrying signals of width 1..64.
 */

#ifndef ZOOMIE_COMMON_BITS_HH
#define ZOOMIE_COMMON_BITS_HH

#include <cstddef>
#include <cstdint>

#include "logging.hh"

namespace zoomie {

/** All-ones mask for a signal of the given width (1..64). */
inline uint64_t
maskForWidth(unsigned width)
{
    panic_if(width == 0 || width > 64, "bad signal width ", width);
    return width == 64 ? ~0ULL : ((1ULL << width) - 1);
}

/** Truncate a value to the given width. */
inline uint64_t
truncToWidth(uint64_t value, unsigned width)
{
    return value & maskForWidth(width);
}

/** Extract bits [lo + len - 1 : lo] of a value. */
inline uint64_t
extractBits(uint64_t value, unsigned lo, unsigned len)
{
    panic_if(lo + len > 64, "slice out of range");
    return (value >> lo) & maskForWidth(len);
}

/** Return bit @p index of @p value as 0 or 1. */
inline uint64_t
getBit(uint64_t value, unsigned index)
{
    return (value >> index) & 1ULL;
}

/** Set or clear bit @p index of @p value. */
inline uint64_t
setBit(uint64_t value, unsigned index, bool on)
{
    const uint64_t mask = 1ULL << index;
    return on ? (value | mask) : (value & ~mask);
}

/** Number of bits needed to represent values 0..n-1 (at least 1). */
inline unsigned
bitsToAddress(uint64_t n)
{
    unsigned bits = 1;
    while ((1ULL << bits) < n && bits < 63)
        ++bits;
    return bits;
}

/** Population count helper for readability at call sites. */
inline unsigned
popCount(uint64_t value)
{
    return static_cast<unsigned>(__builtin_popcountll(value));
}

/** FNV-1a 64-bit offset basis: the seed for a fresh hash. */
inline constexpr uint64_t kFnv1aBasis = 0xcbf29ce484222325ULL;

/**
 * 64-bit FNV-1a over a byte string. Used as the end-to-end
 * checksum for streamed trace delivery (rdp `trace_done`): tiny,
 * dependency-free, and trivially reimplementable by wire clients
 * in any language (see the README reassembly recipe). Pass a
 * previous result as @p seed to hash a document incrementally.
 */
inline uint64_t
fnv1a64(const char *data, size_t size, uint64_t seed = kFnv1aBasis)
{
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= uint64_t(static_cast<unsigned char>(data[i]));
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace zoomie

#endif // ZOOMIE_COMMON_BITS_HH
