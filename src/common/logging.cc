#include "logging.hh"

#include <iostream>

namespace zoomie {

namespace {

const char *
prefixFor(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}

} // namespace

void
logFailureAndDie(LogLevel level, const char *where, const std::string &msg)
{
    std::cerr << prefixFor(level) << ": " << msg << " (" << where << ")"
              << std::endl;
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    std::cerr << prefixFor(level) << ": " << msg << std::endl;
}

} // namespace zoomie
