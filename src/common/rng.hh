/**
 * @file
 * Small deterministic PRNG (SplitMix64) used for workload generation
 * and property tests. Deterministic across platforms so tests and
 * benches are reproducible.
 */

#ifndef ZOOMIE_COMMON_RNG_HH
#define ZOOMIE_COMMON_RNG_HH

#include <cstdint>

namespace zoomie {

/** SplitMix64 generator; tiny state, good-enough statistical quality. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : _state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    uint64_t
    nextBelow(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value masked to @p width bits. */
    uint64_t
    nextBits(unsigned width)
    {
        return width >= 64 ? next() : (next() & ((1ULL << width) - 1));
    }

    /** Bernoulli draw with probability @p numer / @p denom. */
    bool
    chance(uint64_t numer, uint64_t denom)
    {
        return nextBelow(denom) < numer;
    }

  private:
    uint64_t _state;
};

} // namespace zoomie

#endif // ZOOMIE_COMMON_RNG_HH
