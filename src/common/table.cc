#include "table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace zoomie {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    _header = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    _rows.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(_header);
    for (const auto &row : _rows)
        grow(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        os << "\n";
    };

    if (!_title.empty())
        os << "== " << _title << " ==\n";
    if (!_header.empty()) {
        emit(_header);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
    for (const auto &row : _rows)
        emit(row);
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds >= 3600.0)
        std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
    else if (seconds >= 60.0)
        std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    return buf;
}

std::string
formatCount(uint64_t value)
{
    std::string raw = std::to_string(value);
    std::string out;
    int digits = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (digits && digits % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++digits;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
formatRatio(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", ratio);
    return buf;
}

std::string
formatPercent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", fraction * 100.0);
    return buf;
}

} // namespace zoomie
