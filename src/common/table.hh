/**
 * @file
 * ASCII table printer used by the benchmark harnesses to emit the
 * same rows/series the paper's tables and figures report.
 */

#ifndef ZOOMIE_COMMON_TABLE_HH
#define ZOOMIE_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace zoomie {

/**
 * Accumulates rows of string cells and renders them with aligned
 * columns. First row added via setHeader() is underlined.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : _title(std::move(title)) {}

    /** Set the column headers. */
    void setHeader(std::vector<std::string> cells);

    /** Append one data row. */
    void addRow(std::vector<std::string> cells);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

/** Format seconds compactly, e.g. "2.31 h", "14.2 min", "0.39 s". */
std::string formatSeconds(double seconds);

/** Format a count with thousands separators, e.g. "1,103,572". */
std::string formatCount(uint64_t value);

/** Format a ratio as e.g. "18.3x". */
std::string formatRatio(double ratio);

/** Format a percentage with two decimals, e.g. "95.32". */
std::string formatPercent(double fraction);

} // namespace zoomie

#endif // ZOOMIE_COMMON_TABLE_HH
