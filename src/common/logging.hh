/**
 * @file
 * Logging and error-reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (aborts), fatal() for user
 * errors (exits cleanly), warn()/inform() for status messages.
 */

#ifndef ZOOMIE_COMMON_LOGGING_HH
#define ZOOMIE_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace zoomie {

/** Severity classes understood by logMessage(). */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a formatted message to stderr with a severity prefix.
 *
 * @param level severity class; Fatal exits(1), Panic aborts.
 * @param where source location string ("file:line").
 * @param msg   already-formatted message body.
 */
[[noreturn]] void logFailureAndDie(LogLevel level, const char *where,
                                   const std::string &msg);

/** Emit a non-fatal message (Inform or Warn) to stderr. */
void logMessage(LogLevel level, const std::string &msg);

namespace detail {

/** Build a message from streamable parts. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

} // namespace zoomie

#define ZOOMIE_STR2(x) #x
#define ZOOMIE_STR(x) ZOOMIE_STR2(x)
#define ZOOMIE_WHERE __FILE__ ":" ZOOMIE_STR(__LINE__)

/** Internal invariant violation: print and abort (never user error). */
#define panic(...)                                                         \
    ::zoomie::logFailureAndDie(::zoomie::LogLevel::Panic, ZOOMIE_WHERE,    \
                               ::zoomie::detail::concat(__VA_ARGS__))

/** Unrecoverable user error: print and exit(1). */
#define fatal(...)                                                         \
    ::zoomie::logFailureAndDie(::zoomie::LogLevel::Fatal, ZOOMIE_WHERE,    \
                               ::zoomie::detail::concat(__VA_ARGS__))

/** Condition-checked panic, kept on in release builds. */
#define panic_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                        \
            panic("condition '" #cond "' held: ", __VA_ARGS__);           \
        }                                                                  \
    } while (0)

#define fatal_if(cond, ...)                                                \
    do {                                                                   \
        if (cond) {                                                        \
            fatal(__VA_ARGS__);                                            \
        }                                                                  \
    } while (0)

#define warn(...)                                                          \
    ::zoomie::logMessage(::zoomie::LogLevel::Warn,                         \
                         ::zoomie::detail::concat(__VA_ARGS__))

#define inform(...)                                                        \
    ::zoomie::logMessage(::zoomie::LogLevel::Inform,                       \
                         ::zoomie::detail::concat(__VA_ARGS__))

#endif // ZOOMIE_COMMON_LOGGING_HH
