#include "ir.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace zoomie::rtl {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Input: return "input";
      case Op::RegQ: return "regq";
      case Op::MemRdSync: return "mem_rd_sync";
      case Op::MemRdAsync: return "mem_rd_async";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Not: return "not";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Eq: return "eq";
      case Op::Ne: return "ne";
      case Op::Ult: return "ult";
      case Op::Ule: return "ule";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Mux: return "mux";
      case Op::Concat: return "concat";
      case Op::Slice: return "slice";
      case Op::Zext: return "zext";
      case Op::RedAnd: return "red_and";
      case Op::RedOr: return "red_or";
      case Op::RedXor: return "red_xor";
    }
    return "?";
}

unsigned
opArity(Op op)
{
    switch (op) {
      case Op::Const:
      case Op::Input:
      case Op::RegQ:
        return 0;
      case Op::MemRdSync:
      case Op::MemRdAsync:
      case Op::Not:
      case Op::Slice:
      case Op::Zext:
      case Op::RedAnd:
      case Op::RedOr:
      case Op::RedXor:
        return 1;
      case Op::Mux:
        return 3;
      default:
        return 2;
    }
}

bool
Design::scopeUnder(uint32_t scope_id, const std::string &prefix) const
{
    panic_if(scope_id >= scopeNames.size(), "bad scope id");
    if (prefix.empty())
        return true;
    const std::string &name = scopeNames[scope_id];
    return name.size() >= prefix.size() &&
           name.compare(0, prefix.size(), prefix) == 0;
}

uint64_t
Design::stateBits() const
{
    uint64_t bits = 0;
    for (const auto &reg : regs)
        bits += reg.width;
    return bits;
}

uint64_t
Design::memoryBits() const
{
    uint64_t bits = 0;
    for (const auto &mem : mems)
        bits += uint64_t(mem.depth) * mem.width;
    return bits;
}

int
Design::findReg(const std::string &reg_name) const
{
    for (size_t i = 0; i < regs.size(); ++i) {
        if (regs[i].name == reg_name)
            return static_cast<int>(i);
    }
    return -1;
}

NetId
Design::findNet(const std::string &net_name) const
{
    auto it = netNames.find(net_name);
    return it == netNames.end() ? kNoNet : it->second;
}

std::vector<NetId>
Design::topoOrder() const
{
    // Combinational dependencies only: RegQ and MemRdSync outputs
    // are sources (their inputs are sampled at clock edges), while
    // MemRdAsync depends combinationally on its address.
    const size_t n = nodes.size();
    std::vector<uint32_t> pending(n, 0);
    std::vector<std::vector<NetId>> fanout(n);

    auto addEdge = [&](NetId from, NetId to) {
        fanout[from].push_back(to);
        ++pending[to];
    };

    for (NetId id = 0; id < n; ++id) {
        const Node &node = nodes[id];
        if (node.op == Op::RegQ || node.op == Op::MemRdSync)
            continue;
        const unsigned arity = opArity(node.op);
        if (arity >= 1 && node.a != kNoNet)
            addEdge(node.a, id);
        if (arity >= 2 && node.b != kNoNet)
            addEdge(node.b, id);
        if (arity >= 3 && node.c != kNoNet)
            addEdge(node.c, id);
    }

    std::vector<NetId> order;
    order.reserve(n);
    for (NetId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            order.push_back(id);
    }
    for (size_t head = 0; head < order.size(); ++head) {
        for (NetId succ : fanout[order[head]]) {
            if (--pending[succ] == 0)
                order.push_back(succ);
        }
    }
    panic_if(order.size() != n,
             "combinational cycle in design '", name, "': ",
             n - order.size(), " nodes unreachable");
    return order;
}

void
Design::validate() const
{
    const size_t n = nodes.size();
    auto checkNet = [&](NetId net, const char *what) {
        panic_if(net == kNoNet || net >= n, "dangling ", what,
                 " in design '", name, "'");
    };

    for (NetId id = 0; id < n; ++id) {
        const Node &node = nodes[id];
        panic_if(node.width == 0 || node.width > 64,
                 "node ", id, " has bad width");
        const unsigned arity = opArity(node.op);
        if (arity >= 1)
            checkNet(node.a, "operand a");
        if (arity >= 2)
            checkNet(node.b, "operand b");
        if (arity >= 3)
            checkNet(node.c, "operand c");
        switch (node.op) {
          case Op::Mux:
            panic_if(nodes[node.a].width != 1, "mux select not 1 bit");
            panic_if(nodes[node.b].width != node.width ||
                     nodes[node.c].width != node.width,
                     "mux arm width mismatch at node ", id);
            break;
          case Op::Concat:
            panic_if(nodes[node.a].width + nodes[node.b].width !=
                     node.width, "concat width mismatch at node ", id);
            break;
          case Op::Slice:
            panic_if(node.imm + node.width > nodes[node.a].width,
                     "slice out of range at node ", id);
            break;
          case Op::Zext:
            panic_if(nodes[node.a].width > node.width,
                     "zext narrows at node ", id);
            break;
          case Op::Eq:
          case Op::Ne:
          case Op::Ult:
          case Op::Ule:
          case Op::RedAnd:
          case Op::RedOr:
          case Op::RedXor:
            panic_if(node.width != 1, "comparison width not 1");
            break;
          default:
            break;
        }
    }

    for (const Reg &reg : regs) {
        checkNet(reg.q, "reg q");
        checkNet(reg.d, "reg d");
        panic_if(nodes[reg.q].op != Op::RegQ, "reg q is not a RegQ");
        panic_if(nodes[reg.d].width != reg.width,
                 "reg '", reg.name, "' d width mismatch");
        if (reg.en != kNoNet)
            checkNet(reg.en, "reg en");
        if (reg.rst != kNoNet)
            checkNet(reg.rst, "reg rst");
        panic_if(reg.clock >= clocks.size(),
                 "reg '", reg.name, "' references missing clock");
    }

    for (const Mem &mem : mems) {
        panic_if(mem.depth == 0, "memory '", mem.name, "' empty");
        for (const auto &rp : mem.readPorts) {
            checkNet(rp.addr, "mem read addr");
            checkNet(rp.data, "mem read data");
        }
        for (const auto &wp : mem.writePorts) {
            checkNet(wp.addr, "mem write addr");
            checkNet(wp.data, "mem write data");
            checkNet(wp.en, "mem write en");
        }
    }

    for (const auto &out : outputs)
        checkNet(out.net, "output");

    // Ensures combinational acyclicity.
    topoOrder();
}

} // namespace zoomie::rtl
