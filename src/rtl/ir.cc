#include "ir.hh"

#include <algorithm>
#include <unordered_map>

#include "common/bits.hh"
#include "common/logging.hh"

namespace zoomie::rtl {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Const: return "const";
      case Op::Input: return "input";
      case Op::RegQ: return "regq";
      case Op::MemRdSync: return "mem_rd_sync";
      case Op::MemRdAsync: return "mem_rd_async";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Not: return "not";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Eq: return "eq";
      case Op::Ne: return "ne";
      case Op::Ult: return "ult";
      case Op::Ule: return "ule";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Mux: return "mux";
      case Op::Concat: return "concat";
      case Op::Slice: return "slice";
      case Op::Zext: return "zext";
      case Op::RedAnd: return "red_and";
      case Op::RedOr: return "red_or";
      case Op::RedXor: return "red_xor";
    }
    return "?";
}

unsigned
opArity(Op op)
{
    switch (op) {
      case Op::Const:
      case Op::Input:
      case Op::RegQ:
        return 0;
      case Op::MemRdSync:
      case Op::MemRdAsync:
      case Op::Not:
      case Op::Slice:
      case Op::Zext:
      case Op::RedAnd:
      case Op::RedOr:
      case Op::RedXor:
        return 1;
      case Op::Mux:
        return 3;
      default:
        return 2;
    }
}

bool
Design::scopeUnder(uint32_t scope_id, const std::string &prefix) const
{
    panic_if(scope_id >= scopeNames.size(), "bad scope id");
    if (prefix.empty())
        return true;
    const std::string &name = scopeNames[scope_id];
    return name.size() >= prefix.size() &&
           name.compare(0, prefix.size(), prefix) == 0;
}

uint64_t
Design::stateBits() const
{
    uint64_t bits = 0;
    for (const auto &reg : regs)
        bits += reg.width;
    return bits;
}

uint64_t
Design::memoryBits() const
{
    uint64_t bits = 0;
    for (const auto &mem : mems)
        bits += uint64_t(mem.depth) * mem.width;
    return bits;
}

int
Design::findReg(const std::string &reg_name) const
{
    for (size_t i = 0; i < regs.size(); ++i) {
        if (regs[i].name == reg_name)
            return static_cast<int>(i);
    }
    return -1;
}

NetId
Design::findNet(const std::string &net_name) const
{
    auto it = netNames.find(net_name);
    return it == netNames.end() ? kNoNet : it->second;
}

Design::TopoResult
Design::tryTopoOrder() const
{
    // Combinational dependencies only: RegQ and MemRdSync outputs
    // are sources (their inputs are sampled at clock edges), while
    // MemRdAsync depends combinationally on its address.
    const size_t n = nodes.size();
    std::vector<uint32_t> pending(n, 0);
    std::vector<std::vector<NetId>> fanout(n);

    auto addEdge = [&](NetId from, NetId to) {
        if (from >= n)
            return; // dangling operand; check() reports it
        fanout[from].push_back(to);
        ++pending[to];
    };

    for (NetId id = 0; id < n; ++id) {
        const Node &node = nodes[id];
        if (node.op == Op::RegQ || node.op == Op::MemRdSync)
            continue;
        const unsigned arity = opArity(node.op);
        if (arity >= 1 && node.a != kNoNet)
            addEdge(node.a, id);
        if (arity >= 2 && node.b != kNoNet)
            addEdge(node.b, id);
        if (arity >= 3 && node.c != kNoNet)
            addEdge(node.c, id);
    }

    TopoResult result;
    result.order.reserve(n);
    for (NetId id = 0; id < n; ++id) {
        if (pending[id] == 0)
            result.order.push_back(id);
    }
    for (size_t head = 0; head < result.order.size(); ++head) {
        for (NetId succ : fanout[result.order[head]]) {
            if (--pending[succ] == 0)
                result.order.push_back(succ);
        }
    }
    if (result.order.size() == n)
        return result;

    // A cycle exists: every node still pending has at least one
    // still-pending operand. Walk backwards through pending
    // operands until a node repeats; the repeated suffix is one
    // cycle. Reversing the walk yields dependency order.
    result.ok = false;
    NetId start = kNoNet;
    for (NetId id = 0; id < n && start == kNoNet; ++id) {
        if (pending[id] != 0)
            start = id;
    }
    std::vector<NetId> walk;
    std::unordered_map<NetId, size_t> seen;
    NetId at = start;
    while (seen.find(at) == seen.end()) {
        seen[at] = walk.size();
        walk.push_back(at);
        const Node &node = nodes[at];
        const unsigned arity = opArity(node.op);
        NetId next = kNoNet;
        for (unsigned slot = 0; slot < arity && next == kNoNet;
             ++slot) {
            NetId operand = slot == 0   ? node.a
                            : slot == 1 ? node.b
                                        : node.c;
            if (operand < n && pending[operand] != 0)
                next = operand;
        }
        if (next == kNoNet)
            break; // dangling-operand corruption; best effort
        at = next;
    }
    auto it = seen.find(at);
    if (it != seen.end()) {
        result.cycle.assign(walk.begin() +
                                static_cast<long>(it->second),
                            walk.end());
        std::reverse(result.cycle.begin(), result.cycle.end());
    }
    return result;
}

std::vector<NetId>
Design::topoOrder() const
{
    TopoResult result = tryTopoOrder();
    if (!result.ok) {
        std::string path;
        for (NetId id : result.cycle) {
            if (!path.empty())
                path += " -> ";
            path += opName(id < nodes.size() ? nodes[id].op
                                             : Op::Const);
            path += "#" + std::to_string(id);
        }
        panic("combinational cycle in design '", name, "': ", path);
    }
    return result.order;
}

std::vector<std::string>
Design::check() const
{
    std::vector<std::string> errors;
    const size_t n = nodes.size();

    auto bad = [&](std::string msg) {
        errors.push_back(std::move(msg));
    };
    // True when @p net is usable; otherwise reports and returns
    // false so dependent checks (widths) are skipped, never
    // indexing out of range.
    auto checkNet = [&](NetId net, const std::string &what) {
        if (net < n)
            return true;
        bad("dangling " + what + " in design '" + name + "'");
        return false;
    };

    for (NetId id = 0; id < n; ++id) {
        const Node &node = nodes[id];
        std::string where =
            std::string(opName(node.op)) + "#" + std::to_string(id);
        if (node.width == 0 || node.width > 64)
            bad("node " + where + " has bad width " +
                std::to_string(node.width));
        const unsigned arity = opArity(node.op);
        bool a_ok = arity < 1 || checkNet(node.a, "operand a of " + where);
        bool b_ok = arity < 2 || checkNet(node.b, "operand b of " + where);
        bool c_ok = arity < 3 || checkNet(node.c, "operand c of " + where);
        switch (node.op) {
          case Op::Mux:
            if (a_ok && nodes[node.a].width != 1)
                bad("mux select not 1 bit at node " + where);
            if (b_ok && c_ok &&
                (nodes[node.b].width != node.width ||
                 nodes[node.c].width != node.width))
                bad("mux arm width mismatch at node " + where);
            break;
          case Op::Concat:
            if (a_ok && b_ok &&
                nodes[node.a].width + nodes[node.b].width !=
                    node.width)
                bad("concat width mismatch at node " + where);
            break;
          case Op::Slice:
            if (a_ok && node.imm + node.width > nodes[node.a].width)
                bad("slice out of range at node " + where);
            break;
          case Op::Zext:
            if (a_ok && nodes[node.a].width > node.width)
                bad("zext narrows at node " + where);
            break;
          case Op::Eq:
          case Op::Ne:
          case Op::Ult:
          case Op::Ule:
          case Op::RedAnd:
          case Op::RedOr:
          case Op::RedXor:
            if (node.width != 1)
                bad("comparison width not 1 at node " + where);
            break;
          default:
            break;
        }
    }

    for (const Reg &reg : regs) {
        bool q_ok = checkNet(reg.q, "q of reg '" + reg.name + "'");
        bool d_ok = checkNet(reg.d, "d of reg '" + reg.name + "'");
        if (q_ok && nodes[reg.q].op != Op::RegQ)
            bad("reg '" + reg.name + "' q is not a RegQ");
        if (d_ok && nodes[reg.d].width != reg.width)
            bad("reg '" + reg.name + "' d width mismatch");
        if (reg.en != kNoNet)
            checkNet(reg.en, "en of reg '" + reg.name + "'");
        if (reg.rst != kNoNet)
            checkNet(reg.rst, "rst of reg '" + reg.name + "'");
        if (reg.clock >= clocks.size())
            bad("reg '" + reg.name + "' references missing clock");
    }

    for (const Mem &mem : mems) {
        if (mem.depth == 0)
            bad("memory '" + mem.name + "' empty");
        for (const auto &rp : mem.readPorts) {
            checkNet(rp.addr, "read addr of mem '" + mem.name + "'");
            checkNet(rp.data, "read data of mem '" + mem.name + "'");
        }
        for (const auto &wp : mem.writePorts) {
            checkNet(wp.addr, "write addr of mem '" + mem.name + "'");
            checkNet(wp.data, "write data of mem '" + mem.name + "'");
            checkNet(wp.en, "write en of mem '" + mem.name + "'");
        }
    }

    for (const auto &out : outputs)
        checkNet(out.net, "output '" + out.name + "'");

    TopoResult topo = tryTopoOrder();
    if (!topo.ok) {
        std::string path;
        for (NetId id : topo.cycle) {
            if (!path.empty())
                path += " -> ";
            path += opName(id < n ? nodes[id].op : Op::Const);
            path += "#" + std::to_string(id);
        }
        bad("combinational cycle in design '" + name + "': " + path);
    }
    return errors;
}

void
Design::validate() const
{
    std::vector<std::string> errors = check();
    panic_if(!errors.empty(), "design '", name, "' is invalid (",
             errors.size(), " violations); first: ", errors.front());
}

} // namespace zoomie::rtl
