#include "builder.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace zoomie::rtl {

Builder::Builder(std::string design_name)
{
    _design.name = std::move(design_name);
    _design.clocks.push_back("clk");
    _scopeIds[""] = 0;
}

Builder::Builder(const Design &base)
{
    _design = base;
    _scopeIds.clear();
    for (uint32_t s = 0; s < _design.scopeNames.size(); ++s)
        _scopeIds[_design.scopeNames[s]] = s;
    _scopeId = 0;
    _regConnected.assign(_design.regs.size(), true);
}

Value
Builder::handleFor(NetId net) const
{
    panic_if(net == kNoNet || net >= _design.nodes.size(),
             "handleFor: bad net");
    return Value{net, _design.nodes[net].width};
}

uint32_t
Builder::reclockScope(const std::string &scope_prefix, uint8_t clock)
{
    panic_if(clock >= _design.clocks.size(), "bad clock");
    uint32_t count = 0;
    for (uint32_t r = 0; r < _design.regs.size(); ++r) {
        if (_design.scopeUnder(_design.regScope[r], scope_prefix)) {
            _design.regs[r].clock = clock;
            ++count;
        }
    }
    for (uint32_t m = 0; m < _design.mems.size(); ++m) {
        if (!_design.scopeUnder(_design.memScope[m], scope_prefix))
            continue;
        for (auto &port : _design.mems[m].readPorts) {
            if (port.sync)
                port.clock = clock;
        }
        for (auto &port : _design.mems[m].writePorts)
            port.clock = clock;
        ++count;
    }
    return count;
}

uint32_t
Builder::rewireConsumers(
    NetId old_net, NetId new_net,
    const std::function<bool(const std::string &scope)> &filter)
{
    panic_if(_design.nodes[old_net].width !=
             _design.nodes[new_net].width,
             "rewireConsumers width mismatch");
    uint32_t count = 0;
    auto scopeOk = [&](uint32_t scope_id) {
        return filter(_design.scopeNames[scope_id]);
    };
    auto patch = [&](NetId &slot, uint32_t scope_id) {
        if (slot == old_net && scopeOk(scope_id)) {
            slot = new_net;
            ++count;
        }
    };
    for (NetId id = 0; id < _design.nodes.size(); ++id) {
        if (id == new_net)
            continue;
        Node &node = _design.nodes[id];
        const unsigned arity = opArity(node.op);
        if (arity >= 1)
            patch(node.a, _design.nodeScope[id]);
        if (arity >= 2)
            patch(node.b, _design.nodeScope[id]);
        if (arity >= 3)
            patch(node.c, _design.nodeScope[id]);
    }
    for (uint32_t r = 0; r < _design.regs.size(); ++r) {
        Reg &reg = _design.regs[r];
        patch(reg.d, _design.regScope[r]);
        if (reg.en != kNoNet)
            patch(reg.en, _design.regScope[r]);
        if (reg.rst != kNoNet)
            patch(reg.rst, _design.regScope[r]);
    }
    for (uint32_t m = 0; m < _design.mems.size(); ++m) {
        Mem &mem = _design.mems[m];
        for (auto &port : mem.readPorts)
            patch(port.addr, _design.memScope[m]);
        for (auto &port : mem.writePorts) {
            patch(port.addr, _design.memScope[m]);
            patch(port.data, _design.memScope[m]);
            patch(port.en, _design.memScope[m]);
        }
    }
    for (auto &out : _design.outputs) {
        if (out.net == old_net && filter("")) {
            out.net = new_net;
            ++count;
        }
    }
    return count;
}

uint32_t
Builder::currentScopeId()
{
    return _scopeId;
}

Design
Builder::finish()
{
    panic_if(_finished, "Builder::finish called twice");
    for (size_t i = 0; i < _design.regs.size(); ++i) {
        panic_if(!_regConnected[i], "register '", _design.regs[i].name,
                 "' never connected");
    }
    _finished = true;
    _design.validate();
    return std::move(_design);
}

void
Builder::pushScope(const std::string &scope)
{
    _scopes.push_back(scope);
    const std::string prefix = scopePrefix();
    auto [it, inserted] = _scopeIds.try_emplace(
        prefix, static_cast<uint32_t>(_design.scopeNames.size()));
    if (inserted)
        _design.scopeNames.push_back(prefix);
    _scopeId = it->second;
}

void
Builder::popScope()
{
    panic_if(_scopes.empty(), "popScope on empty scope stack");
    _scopes.pop_back();
    _scopeId = _scopeIds.at(scopePrefix());
}

std::string
Builder::scopePrefix() const
{
    std::string prefix;
    for (const auto &scope : _scopes) {
        prefix += scope;
        prefix += '/';
    }
    return prefix;
}

std::string
Builder::scoped(const std::string &local_name) const
{
    return scopePrefix() + local_name;
}

uint8_t
Builder::addClock(const std::string &clock_name)
{
    panic_if(_design.clocks.size() >= 255, "too many clocks");
    _design.clocks.push_back(clock_name);
    return static_cast<uint8_t>(_design.clocks.size() - 1);
}

Value
Builder::makeNode(Op op, unsigned width, NetId a, NetId b, NetId c,
                  uint64_t imm)
{
    panic_if(width == 0 || width > 64, "bad width ", width, " for ",
             opName(op));
    Node node;
    node.op = op;
    node.width = static_cast<uint8_t>(width);
    node.a = a;
    node.b = b;
    node.c = c;
    node.imm = imm;
    _design.nodes.push_back(node);
    _design.nodeScope.push_back(_scopeId);
    return Value{static_cast<NetId>(_design.nodes.size() - 1), width};
}

void
Builder::checkSameWidth(Value a, Value b, const char *what) const
{
    panic_if(!a.valid() || !b.valid(), what, ": invalid operand");
    panic_if(a.width != b.width, what, ": width mismatch ", a.width,
             " vs ", b.width);
}

Value
Builder::input(const std::string &port_name, unsigned width)
{
    Value v = makeNode(Op::Input, width);
    _design.inputs.push_back({scoped(port_name), v.id,
                              static_cast<uint8_t>(width)});
    return v;
}

void
Builder::output(const std::string &port_name, Value value)
{
    panic_if(!value.valid(), "output '", port_name, "' undriven");
    _design.outputs.push_back({scoped(port_name), value.id});
}

void
Builder::nameNet(const std::string &net_name, Value value)
{
    _design.netNames[scoped(net_name)] = value.id;
}

RegHandle
Builder::reg(const std::string &reg_name, unsigned width,
             uint64_t init_val, uint8_t clock)
{
    Value q = makeNode(Op::RegQ, width);
    Reg r;
    r.name = scoped(reg_name);
    r.q = q.id;
    r.width = static_cast<uint8_t>(width);
    r.initVal = truncToWidth(init_val, width);
    r.clock = clock;
    _design.regs.push_back(r);
    _design.regScope.push_back(_scopeId);
    _regConnected.push_back(false);
    return RegHandle{q, static_cast<uint32_t>(_design.regs.size() - 1)};
}

void
Builder::connect(RegHandle reg_handle, Value d)
{
    Reg &r = _design.regs.at(reg_handle.index);
    panic_if(_regConnected[reg_handle.index],
             "register '", r.name, "' connected twice");
    panic_if(d.width != r.width, "register '", r.name,
             "' d width mismatch");
    r.d = d.id;
    _regConnected[reg_handle.index] = true;
}

void
Builder::enable(RegHandle reg_handle, Value en)
{
    panic_if(en.width != 1, "enable must be 1 bit");
    _design.regs.at(reg_handle.index).en = en.id;
}

void
Builder::resetTo(RegHandle reg_handle, Value rst, uint64_t rst_val)
{
    panic_if(rst.width != 1, "reset must be 1 bit");
    Reg &r = _design.regs.at(reg_handle.index);
    r.rst = rst.id;
    r.rstVal = truncToWidth(rst_val, r.width);
}

Value
Builder::pipe(const std::string &reg_name, Value d, uint64_t init_val,
              uint8_t clock)
{
    RegHandle handle = reg(reg_name, d.width, init_val, clock);
    connect(handle, d);
    return handle.q;
}

MemHandle
Builder::mem(const std::string &mem_name, unsigned width, uint32_t depth,
             MemStyle style, std::vector<uint64_t> init)
{
    panic_if(width == 0 || width > 64, "bad memory width");
    panic_if(depth == 0, "bad memory depth");
    Mem m;
    m.name = scoped(mem_name);
    m.width = static_cast<uint8_t>(width);
    m.depth = depth;
    m.style = style;
    m.init = std::move(init);
    panic_if(!m.init.empty() && m.init.size() > depth,
             "memory init larger than depth");
    _design.mems.push_back(std::move(m));
    _design.memScope.push_back(_scopeId);
    return MemHandle{static_cast<uint32_t>(_design.mems.size() - 1)};
}

Value
Builder::memReadSync(MemHandle handle, Value addr, uint8_t clock)
{
    Mem &m = _design.mems.at(handle.index);
    Value data = makeNode(Op::MemRdSync, m.width, addr.id, kNoNet,
                          kNoNet, handle.index);
    MemReadPort port;
    port.addr = addr.id;
    port.data = data.id;
    port.sync = true;
    port.clock = clock;
    m.readPorts.push_back(port);
    return data;
}

Value
Builder::memReadAsync(MemHandle handle, Value addr)
{
    Mem &m = _design.mems.at(handle.index);
    Value data = makeNode(Op::MemRdAsync, m.width, addr.id, kNoNet,
                          kNoNet, handle.index);
    MemReadPort port;
    port.addr = addr.id;
    port.data = data.id;
    port.sync = false;
    m.readPorts.push_back(port);
    return data;
}

void
Builder::memWrite(MemHandle handle, Value addr, Value data, Value en,
                  uint8_t clock)
{
    Mem &m = _design.mems.at(handle.index);
    panic_if(data.width != m.width, "memory '", m.name,
             "' write width mismatch");
    panic_if(en.width != 1, "memory write enable must be 1 bit");
    MemWritePort port;
    port.addr = addr.id;
    port.data = data.id;
    port.en = en.id;
    port.clock = clock;
    m.writePorts.push_back(port);
}

Value
Builder::lit(uint64_t value, unsigned width)
{
    return makeNode(Op::Const, width, kNoNet, kNoNet, kNoNet,
                    truncToWidth(value, width));
}

Value
Builder::band(Value a, Value b)
{
    checkSameWidth(a, b, "and");
    return makeNode(Op::And, a.width, a.id, b.id);
}

Value
Builder::bor(Value a, Value b)
{
    checkSameWidth(a, b, "or");
    return makeNode(Op::Or, a.width, a.id, b.id);
}

Value
Builder::bxor(Value a, Value b)
{
    checkSameWidth(a, b, "xor");
    return makeNode(Op::Xor, a.width, a.id, b.id);
}

Value
Builder::bnot(Value a)
{
    return makeNode(Op::Not, a.width, a.id);
}

Value
Builder::add(Value a, Value b)
{
    checkSameWidth(a, b, "add");
    return makeNode(Op::Add, a.width, a.id, b.id);
}

Value
Builder::sub(Value a, Value b)
{
    checkSameWidth(a, b, "sub");
    return makeNode(Op::Sub, a.width, a.id, b.id);
}

Value
Builder::mul(Value a, Value b)
{
    checkSameWidth(a, b, "mul");
    return makeNode(Op::Mul, a.width, a.id, b.id);
}

Value
Builder::eq(Value a, Value b)
{
    checkSameWidth(a, b, "eq");
    return makeNode(Op::Eq, 1, a.id, b.id);
}

Value
Builder::ne(Value a, Value b)
{
    checkSameWidth(a, b, "ne");
    return makeNode(Op::Ne, 1, a.id, b.id);
}

Value
Builder::ult(Value a, Value b)
{
    checkSameWidth(a, b, "ult");
    return makeNode(Op::Ult, 1, a.id, b.id);
}

Value
Builder::ule(Value a, Value b)
{
    checkSameWidth(a, b, "ule");
    return makeNode(Op::Ule, 1, a.id, b.id);
}

Value
Builder::shl(Value a, Value amount)
{
    return makeNode(Op::Shl, a.width, a.id, amount.id);
}

Value
Builder::shr(Value a, Value amount)
{
    return makeNode(Op::Shr, a.width, a.id, amount.id);
}

Value
Builder::mux(Value sel, Value then_v, Value else_v)
{
    panic_if(sel.width != 1, "mux select must be 1 bit");
    checkSameWidth(then_v, else_v, "mux");
    return makeNode(Op::Mux, then_v.width, sel.id, then_v.id,
                    else_v.id);
}

Value
Builder::concat(Value hi, Value lo)
{
    panic_if(hi.width + lo.width > 64, "concat exceeds 64 bits");
    return makeNode(Op::Concat, hi.width + lo.width, hi.id, lo.id);
}

Value
Builder::slice(Value a, unsigned lo, unsigned len)
{
    panic_if(lo + len > a.width, "slice out of range");
    return makeNode(Op::Slice, len, a.id, kNoNet, kNoNet, lo);
}

Value
Builder::zext(Value a, unsigned width)
{
    panic_if(width < a.width, "zext narrows");
    if (width == a.width)
        return a;
    return makeNode(Op::Zext, width, a.id);
}

Value
Builder::redAnd(Value a)
{
    return makeNode(Op::RedAnd, 1, a.id);
}

Value
Builder::redOr(Value a)
{
    return makeNode(Op::RedOr, 1, a.id);
}

Value
Builder::redXor(Value a)
{
    return makeNode(Op::RedXor, 1, a.id);
}

Value
Builder::eqLit(Value a, uint64_t value)
{
    return eq(a, lit(value, a.width));
}

Value
Builder::addLit(Value a, uint64_t value)
{
    return add(a, lit(value, a.width));
}

Value
Builder::land(Value a, Value b)
{
    panic_if(a.width != 1 || b.width != 1, "land operands not 1 bit");
    return band(a, b);
}

Value
Builder::lor(Value a, Value b)
{
    panic_if(a.width != 1 || b.width != 1, "lor operands not 1 bit");
    return bor(a, b);
}

Value
Builder::lnot(Value a)
{
    panic_if(a.width != 1, "lnot operand not 1 bit");
    return bnot(a);
}

void
Builder::declareIface(const std::string &iface_name, IfaceDir dir,
                      Value valid, Value ready,
                      std::initializer_list<Value> payload,
                      bool irrevocable)
{
    panic_if(valid.width != 1 || ready.width != 1,
             "iface handshake signals must be 1 bit");
    DecoupledIface iface;
    iface.name = scoped(iface_name);
    iface.scope = scopePrefix();
    iface.dir = dir;
    iface.valid = valid.id;
    iface.ready = ready.id;
    iface.irrevocable = irrevocable;
    for (Value v : payload)
        iface.payload.push_back(v.id);
    _design.ifaces.push_back(std::move(iface));
}

} // namespace zoomie::rtl
