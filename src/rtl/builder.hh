/**
 * @file
 * Ergonomic construction API for rtl::Design. A Builder hands out
 * Value handles (net id + width) and manages hierarchical scopes so
 * generator functions compose like module instantiations.
 */

#ifndef ZOOMIE_RTL_BUILDER_HH
#define ZOOMIE_RTL_BUILDER_HH

#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "rtl/ir.hh"

namespace zoomie::rtl {

class Builder;

/** A typed handle to a net while building. */
struct Value
{
    NetId id = kNoNet;
    unsigned width = 0;

    bool valid() const { return id != kNoNet; }
};

/** Handle to a register whose input is connected later. */
struct RegHandle
{
    Value q;
    uint32_t index = 0;  ///< index into Design::regs
};

/** Handle to a declared memory. */
struct MemHandle
{
    uint32_t index = 0;
};

/**
 * Builds a Design. All operator helpers insert one node and return
 * its Value. Widths are checked eagerly so design bugs surface at
 * construction time, not in simulation.
 */
class Builder
{
  public:
    explicit Builder(std::string design_name);

    /**
     * Adopt an existing design and continue building on top of it —
     * the basis of instrumentation passes (Zoomie's debug-controller
     * insertion). Existing registers are treated as connected.
     */
    explicit Builder(const Design &base);

    /** Value handle for an existing net of an adopted design. */
    Value handleFor(NetId net) const;

    /**
     * Move every register and memory port under @p scope_prefix to
     * clock domain @p clock (Zoomie's gated-clock rewiring).
     *
     * @return number of state elements re-clocked
     */
    uint32_t reclockScope(const std::string &scope_prefix,
                          uint8_t clock);

    /**
     * Replace references to @p old_net with @p new_net in every
     * consumer whose scope @p filter accepts (nodes, register
     * inputs, memory ports and outputs). Used to interpose pause
     * buffers on declared interfaces.
     *
     * @return number of operand slots rewired
     */
    uint32_t rewireConsumers(
        NetId old_net, NetId new_net,
        const std::function<bool(const std::string &scope)> &filter);

    /** Finish construction: validates and returns the design. */
    Design finish();

    /** Access the design under construction (read-only). */
    const Design &peek() const { return _design; }

    // ---- scopes ------------------------------------------------
    /** Enter a hierarchical scope; names gain "scope/" prefixes. */
    void pushScope(const std::string &scope);
    void popScope();
    /** Current full prefix (empty or ending in '/'). */
    std::string scopePrefix() const;

    // ---- clocks, ports, names ----------------------------------
    /** Declare a clock domain; index 0 is created by default. */
    uint8_t addClock(const std::string &clock_name);

    Value input(const std::string &port_name, unsigned width);
    void output(const std::string &port_name, Value value);

    /** Attach a debug name to a net (scoped). */
    void nameNet(const std::string &net_name, Value value);

    // ---- state -------------------------------------------------
    /**
     * Declare a register. Connect its input later via connect().
     *
     * @param reg_name scoped name
     * @param width    1..64 bits
     * @param init_val power-on value (configuration init)
     */
    RegHandle reg(const std::string &reg_name, unsigned width,
                  uint64_t init_val = 0, uint8_t clock = 0);

    /** Connect the data input (required exactly once). */
    void connect(RegHandle reg_handle, Value d);
    /** Optional clock enable. */
    void enable(RegHandle reg_handle, Value en);
    /** Optional synchronous reset. */
    void resetTo(RegHandle reg_handle, Value rst, uint64_t rst_val);

    /** Convenience: registered value next cycle (d -> q). */
    Value pipe(const std::string &reg_name, Value d,
               uint64_t init_val = 0, uint8_t clock = 0);

    MemHandle mem(const std::string &mem_name, unsigned width,
                  uint32_t depth, MemStyle style = MemStyle::Auto,
                  std::vector<uint64_t> init = {});
    Value memReadSync(MemHandle handle, Value addr, uint8_t clock = 0);
    Value memReadAsync(MemHandle handle, Value addr);
    void memWrite(MemHandle handle, Value addr, Value data, Value en,
                  uint8_t clock = 0);

    // ---- combinational ops ---------------------------------------
    Value lit(uint64_t value, unsigned width);
    Value band(Value a, Value b);
    Value bor(Value a, Value b);
    Value bxor(Value a, Value b);
    Value bnot(Value a);
    Value add(Value a, Value b);
    Value sub(Value a, Value b);
    Value mul(Value a, Value b);
    Value eq(Value a, Value b);
    Value ne(Value a, Value b);
    Value ult(Value a, Value b);
    Value ule(Value a, Value b);
    Value shl(Value a, Value amount);
    Value shr(Value a, Value amount);
    Value mux(Value sel, Value then_v, Value else_v);
    Value concat(Value hi, Value lo);
    Value slice(Value a, unsigned lo, unsigned len);
    Value bit(Value a, unsigned index) { return slice(a, index, 1); }
    Value zext(Value a, unsigned width);
    Value redAnd(Value a);
    Value redOr(Value a);
    Value redXor(Value a);

    /** eq against a literal of matching width. */
    Value eqLit(Value a, uint64_t value);
    /** a incremented by a literal. */
    Value addLit(Value a, uint64_t value);
    /** Logical and/or/not on 1-bit values (aliases with checks). */
    Value land(Value a, Value b);
    Value lor(Value a, Value b);
    Value lnot(Value a);

    // ---- interfaces ----------------------------------------------
    /**
     * Declare a decoupled interface on the current scope so Zoomie's
     * instrumentation can interpose a pause buffer on it.
     */
    void declareIface(const std::string &iface_name, IfaceDir dir,
                      Value valid, Value ready,
                      std::initializer_list<Value> payload,
                      bool irrevocable = false);

  private:
    Value makeNode(Op op, unsigned width, NetId a = kNoNet,
                   NetId b = kNoNet, NetId c = kNoNet,
                   uint64_t imm = 0);
    void checkSameWidth(Value a, Value b, const char *what) const;
    std::string scoped(const std::string &local_name) const;

    uint32_t currentScopeId();

    Design _design;
    std::vector<std::string> _scopes;
    std::vector<bool> _regConnected;
    std::unordered_map<std::string, uint32_t> _scopeIds;
    uint32_t _scopeId = 0;
    bool _finished = false;
};

} // namespace zoomie::rtl

#endif // ZOOMIE_RTL_BUILDER_HH
