/**
 * @file
 * Word-level hardware IR. A Design is a flat netlist of combinational
 * nodes, registers and memories with hierarchical (slash-separated)
 * names. Designs are constructed through rtl::Builder, simulated by
 * sim::Simulator and lowered to LUT/FF netlists by synth::TechMapper.
 *
 * Hierarchy is carried by name prefixes rather than module instances:
 * generator functions push scopes ("tile3/core") while building. This
 * matches how the rest of the system consumes structure — Zoomie's
 * VTI partitions and the module-under-test are sets of name prefixes,
 * exactly like the paper's designer-provided module lists (§3.5).
 */

#ifndef ZOOMIE_RTL_IR_HH
#define ZOOMIE_RTL_IR_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace zoomie::rtl {

/** Index of a net; each combinational node produces exactly one net. */
using NetId = uint32_t;
constexpr NetId kNoNet = static_cast<NetId>(-1);

/** Combinational and source operations. */
enum class Op : uint8_t {
    Const,    ///< imm = value
    Input,    ///< top-level input port
    RegQ,     ///< output of a register (state source)
    MemRdSync,///< synchronous (BRAM-style) read-port data output
    MemRdAsync,///< asynchronous (LUTRAM-style) read-port data output
    And, Or, Xor, Not,
    Add, Sub, Mul,
    Eq, Ne, Ult, Ule,
    Shl, Shr,  ///< logical shifts by dynamic amount (operand b)
    Mux,       ///< a ? b : c (a is 1 bit)
    Concat,    ///< {a, b}: a becomes the high bits
    Slice,     ///< a[imm + width - 1 : imm]
    Zext,      ///< zero-extend a to width
    RedAnd, RedOr, RedXor, ///< 1-bit reductions of a
};

/** One IR node; its output net id equals its index in Design::nodes. */
struct Node
{
    Op op = Op::Const;
    uint8_t width = 1;          ///< output width, 1..64
    NetId a = kNoNet;           ///< first operand
    NetId b = kNoNet;           ///< second operand
    NetId c = kNoNet;           ///< third operand (Mux else-value)
    uint64_t imm = 0;           ///< Const value / Slice low bit /
                                ///< MemRd* port handle
};

/** A register; q refers to a RegQ node created up front. */
struct Reg
{
    std::string name;           ///< hierarchical name
    NetId q = kNoNet;           ///< output (RegQ node id)
    NetId d = kNoNet;           ///< next-value input
    NetId en = kNoNet;          ///< optional clock enable (1 bit)
    NetId rst = kNoNet;         ///< optional synchronous reset (1 bit)
    uint64_t rstVal = 0;        ///< value loaded while rst is high
    uint64_t initVal = 0;       ///< power-on (configuration) value
    uint8_t width = 1;
    uint8_t clock = 0;          ///< clock domain index
};

/** Memory read port. */
struct MemReadPort
{
    NetId addr = kNoNet;
    NetId data = kNoNet;        ///< MemRdSync/MemRdAsync node id
    bool sync = true;           ///< true: BRAM-style 1-cycle latency
    uint8_t clock = 0;
};

/** Memory write port (always synchronous). */
struct MemWritePort
{
    NetId addr = kNoNet;
    NetId data = kNoNet;
    NetId en = kNoNet;
    uint8_t clock = 0;
};

/** Memory storage style, steering BRAM vs. LUTRAM inference. */
enum class MemStyle : uint8_t { Auto, Distributed, Block };

/** A memory; depth entries of width bits each. */
struct Mem
{
    std::string name;
    uint32_t depth = 0;
    uint8_t width = 1;
    MemStyle style = MemStyle::Auto;
    std::vector<MemReadPort> readPorts;
    std::vector<MemWritePort> writePorts;
    std::vector<uint64_t> init;  ///< optional initial contents
};

/** Direction of a decoupled interface relative to the named scope. */
enum class IfaceDir : uint8_t { In, Out };

/**
 * A declared latency-insensitive (valid/ready) interface. Zoomie's
 * instrumentation pass interposes pause buffers on these when the
 * enclosing scope is selected as the module under test (§3.1).
 */
struct DecoupledIface
{
    std::string name;            ///< hierarchical name
    std::string scope;           ///< owning scope prefix
    IfaceDir dir = IfaceDir::In; ///< In: scope is the responder
    NetId valid = kNoNet;
    NetId ready = kNoNet;
    std::vector<NetId> payload;
    bool irrevocable = false;    ///< valid must hold until ready
};

/** Named top-level output. */
struct OutputPort
{
    std::string name;
    NetId net = kNoNet;
};

/** Named top-level input (refers to an Input node). */
struct InputPort
{
    std::string name;
    NetId net = kNoNet;
    uint8_t width = 1;
};

/**
 * A complete flat design. Populated via Builder; treat as read-only
 * afterwards (the toolchain and simulator never mutate it).
 */
struct Design
{
    std::string name;
    std::vector<Node> nodes;
    std::vector<Reg> regs;
    std::vector<Mem> mems;

    /**
     * Scope bookkeeping: every node/reg/mem records the hierarchical
     * scope it was created in. Scope 0 is the top level. VTI
     * partitions and the module-under-test are expressed as scope
     * prefixes over these names.
     */
    std::vector<std::string> scopeNames{""};
    std::vector<uint32_t> nodeScope;
    std::vector<uint32_t> regScope;
    std::vector<uint32_t> memScope;

    /** True if scope @p scope_id falls under prefix (e.g. "tile0/"). */
    bool scopeUnder(uint32_t scope_id, const std::string &prefix) const;
    std::vector<InputPort> inputs;
    std::vector<OutputPort> outputs;
    std::vector<std::string> clocks;
    std::vector<DecoupledIface> ifaces;

    /** Optional net names for debugging / breakpoint targets. */
    std::unordered_map<std::string, NetId> netNames;

    /**
     * Width of a net. Returns 0 for kNoNet or an out-of-range id so
     * callers probing a possibly-malformed design never index out of
     * bounds (0 is not a legal node width).
     */
    unsigned widthOf(NetId net) const
    {
        return net < nodes.size() ? nodes[net].width : 0;
    }

    /** True when @p net names an existing node. */
    bool validNet(NetId net) const { return net < nodes.size(); }

    /** Total state bits (registers only). */
    uint64_t stateBits() const;

    /** Total memory bits. */
    uint64_t memoryBits() const;

    /** Find a register index by exact name; -1 if absent. */
    int findReg(const std::string &name) const;

    /** Find a net id by name; kNoNet if absent. */
    NetId findNet(const std::string &name) const;

    /**
     * Outcome of tryTopoOrder(): either a complete evaluation order
     * or the localization of one combinational cycle.
     */
    struct TopoResult
    {
        bool ok = true;
        /** Evaluation order (complete only when ok). */
        std::vector<NetId> order;
        /** One combinational cycle, in dependency order, when !ok. */
        std::vector<NetId> cycle;
    };

    /**
     * Compute a topological order of the combinational nodes
     * without panicking: a combinational cycle is reported as a
     * localized node path instead. Library entry point for tools
     * (the lint engine, servers) that must turn malformed designs
     * into reports rather than process aborts.
     */
    TopoResult tryTopoOrder() const;

    /**
     * Validate structural invariants (operand ranges, widths,
     * acyclic combinational logic) and compute a topological order
     * of the combinational nodes. Thin panicking wrapper over
     * tryTopoOrder() for call sites that require a valid design.
     *
     * @return evaluation order over node ids (state sources first).
     */
    std::vector<NetId> topoOrder() const;

    /**
     * Collect every structural violation (operand ranges, widths,
     * clock indices, combinational cycles) as human-readable
     * strings. Never panics, never indexes out of range — safe on
     * arbitrarily malformed designs. An empty result means the
     * design is valid.
     */
    std::vector<std::string> check() const;

    /** Check invariants; panics with a description on violation.
     *  Thin wrapper over check() for existing call sites. */
    void validate() const;
};

/** Human-readable op name (for dumps and error messages). */
const char *opName(Op op);

/** Number of net operands an op consumes (0..3). */
unsigned opArity(Op op);

} // namespace zoomie::rtl

#endif // ZOOMIE_RTL_IR_HH
