/**
 * @file
 * Flat bytecode program produced by the jit compiler
 * (jit::compileProgram) and executed by jit::JitSim. The program is
 * the levelized rtl::Design lowered into:
 *
 *  - a value array ("slots"): [zero][one][const pool][inputs]
 *    [register q block][sync-read latch block][instruction dests]
 *    [regNext scratch][latchNext scratch]. Every materialized net
 *    maps to one slot; nets folded, aliased, CSE'd or fused away
 *    are elided (Program::kNoSlot) and recomputed on demand only
 *    for debugger reads.
 *  - homogeneous instruction runs over struct-of-array operand
 *    streams. All instructions of one run share an opcode, and a
 *    run's destinations are consecutive slots, so the dispatch
 *    loop pays one switch per run, not per instruction.
 *  - register/latch/write commit plans, pre-classified so the
 *    sequential phase runs as a handful of tight loops.
 */

#ifndef ZOOMIE_JIT_BYTECODE_HH
#define ZOOMIE_JIT_BYTECODE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zoomie::jit {

/**
 * Bytecode opcodes. The first block mirrors rtl::Op; the rest are
 * fused forms the compiler strength-reduces into: *Imm variants
 * carry a constant operand, the S/SS variants absorb one or two
 * single-use slice operands, the MuxEq/MuxS families absorb the
 * selector compare/bit-test, MemRdAMask/MemRdAMod pre-resolve the
 * power-of-two-ness of an async read's depth clamp.
 */
enum class BOp : uint8_t {
    And, Or, Xor, Not, Add, Sub, Mul, Eq, Ne, Ult, Ule,
    Shl, Shr, Mux, Concat, Slice, ShlImm, RedAnd, RedOr, RedXor,
    MemRdAMask, MemRdAMod,
    EqImm, NeImm, AndImm, OrImm, XorImm, AddImm, UltImm, UleImm,
    MuxImmB, MuxImmC, MuxImmBC,
    ConcatSS, XorSS, AndSS, OrSS,
    ConcatSA, ConcatSB, XorSA, AndSA, OrSA,
    MuxEq, MuxEqB, MuxEqC, MuxEqBC,
    MuxS, MuxSB, MuxSC, MuxSBC,
    kNumOps,
};

/** Mnemonic for one bytecode op (for dumps and introspection). */
const char *opMnemonic(BOp op);

/** Extended operand word for slice/selector-fused instructions. */
struct Ext
{
    uint8_t sa = 0;    ///< shift applied to operand a
    uint8_t sb = 0;    ///< shift applied to operand b
    uint8_t wsh = 0;   ///< left-shift of a (concat) / unused
    uint8_t pad = 0;
    uint32_t pad2 = 0;
    uint64_t mb = 0;   ///< mask for operand b / compare immediate
};

/**
 * One homogeneous instruction run: instructions [start, start+count)
 * all have opcode `op` and write slots [dstBase, dstBase+count).
 */
struct Run
{
    BOp op;
    uint32_t start;
    uint32_t count;
    uint32_t dstBase;
};

/**
 * Struct-of-arrays commit streams for one register class. The
 * unified next-value formula is
 *   nv   = ((V[d] >> sh) | (V[in2] << wsh)) & mask
 *   nv   = V[rst] ? rstVal : nv
 *   take = (V[en] != 0) ^ inv
 *   q'   = take ? nv : q
 * with absent operands encoded as the constant slots (en -> slot 1,
 * rst/in2 -> slot 0) so every class degenerates gracefully. The
 * compiler splits registers into classes (plain/shift/full x
 * direct/buffered x enabled/free) so the executor runs each class
 * as a loop specialized to skip the unused parts.
 */
struct RegStreams
{
    std::vector<uint32_t> d, in2, en, rst, q;
    std::vector<uint8_t> sh, wsh, inv;
    std::vector<uint64_t> mask, rstVal;
    std::vector<uint32_t> ix;  ///< register index (regNext scratch)
    size_t size() const { return d.size(); }
};

/**
 * Per-register commit plan for the generic (clock-filtered) path:
 * one entry per rtl::Reg in declaration order, carrying the clock
 * domain so stepDomains can commit an arbitrary subset of domains.
 */
struct RegPlanC
{
    uint32_t d, in2, en, rst, q;
    uint8_t sh, wsh, clock;
    bool inv;
    uint64_t mask, rstVal;
};

/** Sync read port latch plan (one per sync port, decl order). */
struct LatchOp
{
    uint32_t addr;   ///< address slot
    uint32_t mem;    ///< memory index
    uint32_t slot;   ///< latched data slot
    uint64_t depth;  ///< pow2 ? depth-1 (mask) : depth
    bool pow2;
    uint8_t clock;
};

/** Memory write port plan. */
struct WriteOp
{
    uint32_t addr, data, en;
    uint32_t mem;
    uint64_t depth;  ///< pow2 ? depth-1 (mask) : depth
    uint64_t mask;   ///< data mask (memory word width)
    bool pow2;
    uint8_t clock;
};

/** A compiled design: everything JitSim needs to execute. */
struct Program
{
    static constexpr uint32_t kNoSlot = ~0u;

    /** Initial value-array image (consts seeded, state at reset). */
    std::vector<uint64_t> initV;
    /** Slot of each net's canonical representative, or kNoSlot. */
    std::vector<uint32_t> slotOf;
    /** Slot of each register's q value, index-aligned with regs. */
    std::vector<uint32_t> regSlot;
    /** Slot of each sync read latch, flattened (mem, port) order. */
    std::vector<uint32_t> latchSlot;
    /** Scratch regions inside the value array. */
    uint32_t rnBase = 0;  ///< buffered register next-values
    uint32_t ltBase = 0;  ///< latch next-values

    /** Combinational program. */
    std::vector<Run> runs;
    std::vector<uint32_t> ia, ib, ic;
    std::vector<uint64_t> imask, immA, immB;
    std::vector<uint8_t> ish;
    std::vector<Ext> ext;

    /** Sequential plans: specialized classes + generic fallback. */
    RegStreams dPlainF, dShiftF, dPlain, dShift, dFull;
    RegStreams bPlainF, bShiftF, bPlain, bShift, bFull;
    std::vector<RegPlanC> regPlans;
    std::vector<LatchOp> latches;
    std::vector<WriteOp> writes;

    /** Compile statistics (introspection / tests). */
    size_t sourceNodes = 0;    ///< nodes in the rtl::Design
    size_t instrCount = 0;     ///< emitted bytecode instructions
    size_t enableRewrites = 0; ///< mux-feedback -> enable
    size_t shiftAbsorbs = 0;   ///< concat/slice shift-register fusions
    size_t sliceAbsorbs = 0;   ///< plain slice-into-register fusions

    size_t runCount() const { return runs.size(); }
};

} // namespace zoomie::jit

#endif // ZOOMIE_JIT_BYTECODE_HH
