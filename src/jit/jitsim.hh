/**
 * @file
 * Compiled-simulation engine: executes a jit::Program (the
 * levelized rtl::Design lowered to flat bytecode by
 * jit::compileProgram) behind the same sim::Engine surface as the
 * interpreter, cycle-for-cycle observably identical to
 * sim::Simulator. Two execution tiers: portable bytecode dispatch
 * loops, and an optional native x86-64 tier (jit::NativeCode) used
 * automatically when available — disable it with the constructor
 * flag or by setting ZOOMIE_JIT_NATIVE=0 in the environment.
 *
 * Nets the compiler folded, fused or dead-code-eliminated have no
 * slot in the value array; net() recomputes them on demand from the
 * design graph (memoized per evaluation epoch), so the debugger-
 * facing surface is complete even though the hot loop never
 * materializes them.
 */

#ifndef ZOOMIE_JIT_JITSIM_HH
#define ZOOMIE_JIT_JITSIM_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "jit/bytecode.hh"
#include "jit/native.hh"
#include "rtl/ir.hh"
#include "sim/engine.hh"

namespace zoomie::jit {

class JitSim : public sim::Engine
{
  public:
    /**
     * Compile and load @p design. @p enable_native selects the
     * native tier when the platform supports it; pass false to
     * force the portable bytecode loops (the ZOOMIE_JIT_NATIVE=0
     * environment variable does the same without a code change).
     */
    explicit JitSim(const rtl::Design &design,
                    bool enable_native = true);

    std::string kind() const override { return "jit"; }

    void reset() override;
    void poke(const std::string &port, uint64_t value) override;
    uint64_t net(rtl::NetId id) override;
    uint64_t netByName(const std::string &name) override;
    uint64_t peek(const std::string &port) override;
    void step(uint8_t clock = 0) override;
    void stepDomains(const std::vector<uint8_t> &clocks) override;
    void run(uint64_t n) override;
    uint64_t regValue(uint32_t index) override;
    uint64_t regByName(const std::string &name) override;
    void forceReg(uint32_t index, uint64_t value) override;
    void forceRegByName(const std::string &name,
                        uint64_t value) override;
    uint64_t memWord(uint32_t mem_index,
                     uint32_t addr) const override;
    void forceMemWord(uint32_t mem_index, uint32_t addr,
                      uint64_t value) override;

    uint64_t cycles(uint8_t clock = 0) const override
    {
        return _cycles[clock];
    }
    void setCycles(uint8_t clock, uint64_t n) override
    {
        _cycles[clock] = n;
    }

    size_t syncLatchCount() const override
    {
        return _prog.latchSlot.size();
    }
    uint64_t syncLatchValue(size_t i) const override
    {
        return _v[_prog.latchSlot[i]];
    }
    void setSyncLatchValue(size_t i, uint64_t value) override
    {
        _v[_prog.latchSlot[i]] = value;
        markDirty();
    }

    std::vector<uint64_t> snapshotRegs() override;
    void restoreRegs(const std::vector<uint64_t> &image) override;

    const rtl::Design &design() const override { return _design; }

    /** The compiled program (introspection, tests, rdp stats). */
    const Program &program() const { return _prog; }

    /** True when the native tier is live (vs bytecode dispatch). */
    bool nativeActive() const { return _native != nullptr; }

  private:
    /** Settle combinational slots if anything changed. */
    void evaluate();
    void markDirty()
    {
        _dirty = true;
        ++_epoch;
    }
    /** One edge of every domain at once (the fast path). */
    void fullStep();
    /** One edge of an arbitrary domain subset (generic path). */
    void filteredStep(const std::vector<uint8_t> &clocks);
    /** Recompute an elided net from the design graph (memoized). */
    uint64_t evalElided(rtl::NetId id);

    const rtl::Design &_design;
    Program _prog;
    std::vector<uint64_t> _v;  ///< value array + commit scratch
    std::vector<std::vector<uint64_t>> _mem;
    std::vector<uint64_t> _cycles;
    std::unordered_map<std::string, uint32_t> _inputIndex;
    std::unordered_map<std::string, uint32_t> _outputIndex;
    std::unordered_map<std::string, uint32_t> _regIndex;
    bool _dirty = true;
    std::vector<uint8_t> _oneClock;
    std::vector<uint8_t> _allClocks;
    std::unique_ptr<NativeCode> _native;

    /** Per-epoch memo for on-demand elided-net evaluation. */
    uint64_t _epoch = 1;
    std::vector<uint64_t> _odStamp;
    std::vector<uint64_t> _odVal;

    /** Buffered memory writes for the filtered (clock-subset) path. */
    struct MemWrite { uint32_t mem; uint64_t addr; uint64_t data; };
    std::vector<MemWrite> _writeBuf;
};

} // namespace zoomie::jit

#endif // ZOOMIE_JIT_JITSIM_HH
