/**
 * @file
 * Optional native x86-64 tier for the jit backend: turns a compiled
 * jit::Program into straight-line machine code where every value
 * slot is a fixed [base + disp32] memory operand — no dispatch, no
 * operand-index loads. Falls back cleanly (ok() == false) on other
 * architectures or if executable memory cannot be mapped; JitSim
 * then runs the portable bytecode loops instead.
 *
 * The generated code hard-codes the memory-array base pointers, so
 * the backing storage passed at construction must never reallocate
 * while the NativeCode is alive (JitSim sizes its memories once).
 */

#ifndef ZOOMIE_JIT_NATIVE_HH
#define ZOOMIE_JIT_NATIVE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "jit/bytecode.hh"

namespace zoomie::jit {

class NativeCode
{
  public:
    /** True when this build/platform can emit native code at all. */
    static bool supported();

    /**
     * Compile @p prog to machine code. @p mems is the engine's
     * memory storage (one vector per rtl::Mem, sized to depth);
     * its inner data pointers are baked into the generated code.
     */
    NativeCode(const Program &prog,
               const std::vector<std::vector<uint64_t>> &mems);
    ~NativeCode();

    NativeCode(const NativeCode &) = delete;
    NativeCode &operator=(const NativeCode &) = delete;

    /** True when code generation succeeded. */
    bool ok() const { return _step != nullptr; }

    /** Bytes of generated machine code (introspection). */
    size_t codeSize() const { return _len; }

    /** Combinational settle: recompute every instruction slot. */
    void comb(uint64_t *v) const { _comb(v); }

    /** Full clock edge on every domain: comb + sequential commit. */
    void step(uint64_t *v) const { _step(v); }

  private:
    using Fn = void (*)(uint64_t *);
    Fn _comb = nullptr;
    Fn _step = nullptr;
    uint8_t *_exec = nullptr;
    size_t _len = 0;
};

} // namespace zoomie::jit

#endif // ZOOMIE_JIT_NATIVE_HH
