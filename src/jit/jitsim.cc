#include "jitsim.hh"

#include <cstdlib>

#include "common/bits.hh"
#include "common/logging.hh"
#include "jit/compiler.hh"

namespace zoomie::jit {

using rtl::kNoNet;
using rtl::NetId;
using rtl::Op;

namespace {

/**
 * Sequential commit for one register class. The template flags
 * compile each class down to exactly the loads and selects it
 * needs: kDirect commits in place (no other plan reads the q
 * slot), kShift enables the shift-register form, kFull adds
 * reset + inverted-enable, kEn gates on the enable slot.
 */
template <bool kDirect, bool kShift, bool kFull, bool kEn = true>
void
regLoop(const RegStreams &rs, uint64_t *__restrict V,
        uint64_t *__restrict RN)
{
    const size_t n = rs.size();
    const uint32_t *__restrict D = rs.d.data();
    const uint32_t *__restrict I2 = rs.in2.data();
    const uint32_t *__restrict En = rs.en.data();
    const uint32_t *__restrict Rs = rs.rst.data();
    const uint32_t *__restrict Q = rs.q.data();
    const uint8_t *__restrict Sh = rs.sh.data();
    const uint8_t *__restrict Ws = rs.wsh.data();
    const uint8_t *__restrict Iv = rs.inv.data();
    const uint64_t *__restrict Mk = rs.mask.data();
    const uint64_t *__restrict RV = rs.rstVal.data();
    const uint32_t *__restrict Ix = rs.ix.data();
    for (size_t i = 0; i < n; ++i) {
        uint64_t nv =
            kShift || kFull
                ? ((V[D[i]] >> Sh[i]) | (V[I2[i]] << Ws[i])) & Mk[i]
                : V[D[i]] & Mk[i];
        bool take = true;
        if (kFull) {
            nv = V[Rs[i]] ? RV[i] : nv;
            take = (V[En[i]] != 0) ^ (bool)Iv[i];
        } else if (kEn) {
            take = V[En[i]] != 0;
        }
        if (kDirect) {
            if (kFull || kEn)
                V[Q[i]] = take ? nv : V[Q[i]];
            else
                V[Q[i]] = nv;
        } else {
            if (kFull || kEn)
                RN[Ix[i]] = take ? nv : V[Q[i]];
            else
                RN[Ix[i]] = nv;
        }
    }
}

void
evalCombBytecode(const Program &p, uint64_t *__restrict V,
                 const std::vector<std::vector<uint64_t>> &mem)
{
    const uint32_t *__restrict A = p.ia.data();
    const uint32_t *__restrict B = p.ib.data();
    const uint32_t *__restrict C = p.ic.data();
    const uint64_t *__restrict M = p.imask.data();
    const uint64_t *__restrict I1 = p.immA.data();
    const uint64_t *__restrict I2 = p.immB.data();
    const uint8_t *__restrict S = p.ish.data();
    const Ext *__restrict E = p.ext.data();
    for (const Run &r : p.runs) {
        uint32_t k = r.start;
        const uint32_t e = r.start + r.count;
        uint64_t *__restrict D = V + r.dstBase - r.start;
        switch (r.op) {
          case BOp::And:
            for (; k < e; ++k) D[k] = V[A[k]] & V[B[k]];
            break;
          case BOp::Or:
            for (; k < e; ++k) D[k] = V[A[k]] | V[B[k]];
            break;
          case BOp::Xor:
            for (; k < e; ++k) D[k] = V[A[k]] ^ V[B[k]];
            break;
          case BOp::Not:
            for (; k < e; ++k) D[k] = ~V[A[k]] & M[k];
            break;
          case BOp::Add:
            for (; k < e; ++k) D[k] = (V[A[k]] + V[B[k]]) & M[k];
            break;
          case BOp::Sub:
            for (; k < e; ++k) D[k] = (V[A[k]] - V[B[k]]) & M[k];
            break;
          case BOp::Mul:
            for (; k < e; ++k) D[k] = (V[A[k]] * V[B[k]]) & M[k];
            break;
          case BOp::Eq:
            for (; k < e; ++k) D[k] = V[A[k]] == V[B[k]];
            break;
          case BOp::Ne:
            for (; k < e; ++k) D[k] = V[A[k]] != V[B[k]];
            break;
          case BOp::Ult:
            for (; k < e; ++k) D[k] = V[A[k]] < V[B[k]];
            break;
          case BOp::Ule:
            for (; k < e; ++k) D[k] = V[A[k]] <= V[B[k]];
            break;
          case BOp::Shl:
            for (; k < e; ++k) {
                uint64_t b = V[B[k]];
                D[k] = b >= S[k] ? 0 : (V[A[k]] << b) & M[k];
            }
            break;
          case BOp::Shr:
            for (; k < e; ++k) {
                uint64_t b = V[B[k]];
                D[k] = b >= S[k] ? 0 : V[A[k]] >> b;
            }
            break;
          case BOp::Mux:
            for (; k < e; ++k) D[k] = V[A[k]] ? V[B[k]] : V[C[k]];
            break;
          case BOp::Concat:
            for (; k < e; ++k)
                D[k] = ((V[A[k]] << S[k]) | V[B[k]]) & M[k];
            break;
          case BOp::Slice:
            for (; k < e; ++k) D[k] = (V[A[k]] >> S[k]) & M[k];
            break;
          case BOp::ShlImm:
            for (; k < e; ++k) D[k] = (V[A[k]] << S[k]) & M[k];
            break;
          case BOp::RedAnd:
            for (; k < e; ++k) D[k] = V[A[k]] == M[k];
            break;
          case BOp::RedOr:
            for (; k < e; ++k) D[k] = V[A[k]] != 0;
            break;
          case BOp::RedXor:
            for (; k < e; ++k)
                D[k] = (uint64_t)(popCount(V[A[k]]) & 1);
            break;
          case BOp::MemRdAMask:
            for (; k < e; ++k) D[k] = mem[M[k]][V[A[k]] & I1[k]];
            break;
          case BOp::MemRdAMod:
            for (; k < e; ++k) {
                uint64_t ad = V[A[k]];
                if (ad >= I1[k])
                    ad %= I1[k];
                D[k] = mem[M[k]][ad];
            }
            break;
          case BOp::EqImm:
            for (; k < e; ++k) D[k] = V[A[k]] == I1[k];
            break;
          case BOp::NeImm:
            for (; k < e; ++k) D[k] = V[A[k]] != I1[k];
            break;
          case BOp::AndImm:
            for (; k < e; ++k) D[k] = V[A[k]] & I1[k];
            break;
          case BOp::OrImm:
            for (; k < e; ++k) D[k] = V[A[k]] | I1[k];
            break;
          case BOp::XorImm:
            for (; k < e; ++k) D[k] = V[A[k]] ^ I1[k];
            break;
          case BOp::AddImm:
            for (; k < e; ++k) D[k] = (V[A[k]] + I1[k]) & M[k];
            break;
          case BOp::UltImm:
            for (; k < e; ++k) D[k] = V[A[k]] < I1[k];
            break;
          case BOp::UleImm:
            for (; k < e; ++k) D[k] = V[A[k]] <= I1[k];
            break;
          case BOp::MuxImmB:
            for (; k < e; ++k) D[k] = V[A[k]] ? I1[k] : V[B[k]];
            break;
          case BOp::MuxImmC:
            for (; k < e; ++k) D[k] = V[A[k]] ? V[B[k]] : I1[k];
            break;
          case BOp::MuxImmBC:
            for (; k < e; ++k) D[k] = V[A[k]] ? I1[k] : I2[k];
            break;
          case BOp::ConcatSS:
            for (; k < e; ++k)
                D[k] = (((V[A[k]] >> E[k].sa) & M[k]) << E[k].wsh) |
                       ((V[B[k]] >> E[k].sb) & E[k].mb);
            break;
          case BOp::XorSS:
            for (; k < e; ++k)
                D[k] = ((V[A[k]] >> E[k].sa) & M[k]) ^
                       ((V[B[k]] >> E[k].sb) & E[k].mb);
            break;
          case BOp::AndSS:
            for (; k < e; ++k)
                D[k] = ((V[A[k]] >> E[k].sa) & M[k]) &
                       ((V[B[k]] >> E[k].sb) & E[k].mb);
            break;
          case BOp::OrSS:
            for (; k < e; ++k)
                D[k] = ((V[A[k]] >> E[k].sa) & M[k]) |
                       ((V[B[k]] >> E[k].sb) & E[k].mb);
            break;
          case BOp::ConcatSA:
            for (; k < e; ++k)
                D[k] = (((V[A[k]] >> E[k].sa) & E[k].mb)
                        << E[k].wsh) |
                       V[B[k]];
            break;
          case BOp::ConcatSB:
            for (; k < e; ++k)
                D[k] = (V[A[k]] << E[k].wsh) |
                       ((V[B[k]] >> E[k].sb) & E[k].mb);
            break;
          case BOp::XorSA:
            for (; k < e; ++k)
                D[k] = ((V[A[k]] >> E[k].sa) & E[k].mb) ^ V[B[k]];
            break;
          case BOp::AndSA:
            for (; k < e; ++k)
                D[k] = ((V[A[k]] >> E[k].sa) & E[k].mb) & V[B[k]];
            break;
          case BOp::OrSA:
            for (; k < e; ++k)
                D[k] = ((V[A[k]] >> E[k].sa) & E[k].mb) | V[B[k]];
            break;
          case BOp::MuxEq:
            for (; k < e; ++k)
                D[k] = V[A[k]] == E[k].mb ? V[B[k]] : V[C[k]];
            break;
          case BOp::MuxEqB:
            for (; k < e; ++k)
                D[k] = V[A[k]] == E[k].mb ? I1[k] : V[B[k]];
            break;
          case BOp::MuxEqC:
            for (; k < e; ++k)
                D[k] = V[A[k]] == E[k].mb ? V[B[k]] : I1[k];
            break;
          case BOp::MuxEqBC:
            for (; k < e; ++k)
                D[k] = V[A[k]] == E[k].mb ? I1[k] : I2[k];
            break;
          case BOp::MuxS:
            for (; k < e; ++k)
                D[k] = (V[A[k]] >> E[k].sa) & 1 ? V[B[k]] : V[C[k]];
            break;
          case BOp::MuxSB:
            for (; k < e; ++k)
                D[k] = (V[A[k]] >> E[k].sa) & 1 ? I1[k] : V[B[k]];
            break;
          case BOp::MuxSC:
            for (; k < e; ++k)
                D[k] = (V[A[k]] >> E[k].sa) & 1 ? V[B[k]] : I1[k];
            break;
          case BOp::MuxSBC:
            for (; k < e; ++k)
                D[k] = (V[A[k]] >> E[k].sa) & 1 ? I1[k] : I2[k];
            break;
          case BOp::kNumOps:
            break;
        }
    }
}

} // namespace

JitSim::JitSim(const rtl::Design &design, bool enable_native)
    : _design(design),
      _prog(compileProgram(design)),
      _v(_prog.initV),
      _cycles(design.clocks.size(), 0)
{
    for (uint32_t i = 0; i < _design.inputs.size(); ++i)
        _inputIndex[_design.inputs[i].name] = i;
    for (uint32_t i = 0; i < _design.outputs.size(); ++i)
        _outputIndex[_design.outputs[i].name] = i;
    for (uint32_t i = 0; i < _design.regs.size(); ++i)
        _regIndex[_design.regs[i].name] = i;

    // Size every memory up front: the native tier bakes the data
    // pointers into generated code, so these never reallocate.
    _mem.resize(_design.mems.size());
    for (uint32_t m = 0; m < _design.mems.size(); ++m)
        _mem[m].assign(_design.mems[m].depth, 0);

    _oneClock.resize(1, 0);
    for (uint8_t c = 0; c < _design.clocks.size(); ++c)
        _allClocks.push_back(c);

    const char *env = std::getenv("ZOOMIE_JIT_NATIVE");
    bool env_off = env && env[0] == '0' && env[1] == '\0';
    if (enable_native && !env_off && NativeCode::supported()) {
        auto native = std::make_unique<NativeCode>(_prog, _mem);
        if (native->ok())
            _native = std::move(native);
    }

    reset();
}

void
JitSim::reset()
{
    for (size_t i = 0; i < _design.regs.size(); ++i)
        _v[_prog.regSlot[i]] = _design.regs[i].initVal;
    for (uint32_t m = 0; m < _design.mems.size(); ++m) {
        const rtl::Mem &mem = _design.mems[m];
        for (uint32_t a = 0; a < mem.depth; ++a)
            _mem[m][a] = a < mem.init.size()
                             ? truncToWidth(mem.init[a], mem.width)
                             : 0;
    }
    for (uint32_t slot : _prog.latchSlot)
        _v[slot] = 0;
    markDirty();
}

void
JitSim::poke(const std::string &port, uint64_t value)
{
    auto it = _inputIndex.find(port);
    panic_if(it == _inputIndex.end(), "unknown input port '", port,
             "' in design '", _design.name, "'");
    const rtl::InputPort &in = _design.inputs[it->second];
    _v[_prog.slotOf[in.net]] = truncToWidth(value, in.width);
    markDirty();
}

void
JitSim::evaluate()
{
    if (!_dirty)
        return;
    if (_native)
        _native->comb(_v.data());
    else
        evalCombBytecode(_prog, _v.data(), _mem);
    _dirty = false;
}

uint64_t
JitSim::evalElided(rtl::NetId id)
{
    uint32_t slot = _prog.slotOf[id];
    if (slot != Program::kNoSlot)
        return _v[slot];
    const size_t N = _design.nodes.size();
    if (_odStamp.size() != N) {
        _odStamp.assign(N, 0);
        _odVal.assign(N, 0);
    }
    if (_odStamp[id] == _epoch)
        return _odVal[id];
    const rtl::Node &n = _design.nodes[id];
    uint64_t va = n.a != kNoNet ? evalElided(n.a) : 0;
    uint64_t vb = n.b != kNoNet ? evalElided(n.b) : 0;
    uint64_t vc = n.c != kNoNet ? evalElided(n.c) : 0;
    uint64_t out;
    switch (n.op) {
      case Op::Const: out = n.imm; break;
      case Op::MemRdAsync: {
        const rtl::Mem &mem = _design.mems[n.imm];
        out = _mem[n.imm][va % mem.depth];
        break;
      }
      case Op::And: out = va & vb; break;
      case Op::Or: out = va | vb; break;
      case Op::Xor: out = va ^ vb; break;
      case Op::Not: out = ~va; break;
      case Op::Add: out = va + vb; break;
      case Op::Sub: out = va - vb; break;
      case Op::Mul: out = va * vb; break;
      case Op::Eq: out = va == vb; break;
      case Op::Ne: out = va != vb; break;
      case Op::Ult: out = va < vb; break;
      case Op::Ule: out = va <= vb; break;
      case Op::Shl: out = vb >= n.width ? 0 : va << vb; break;
      case Op::Shr: out = vb >= n.width ? 0 : va >> vb; break;
      case Op::Mux: out = va ? vb : vc; break;
      case Op::Concat:
        out = (va << _design.nodes[n.b].width) | vb;
        break;
      case Op::Slice: out = va >> n.imm; break;
      case Op::Zext: out = va; break;
      case Op::RedAnd:
        out = va == maskForWidth(_design.nodes[n.a].width);
        break;
      case Op::RedOr: out = va != 0; break;
      case Op::RedXor: out = popCount(va) & 1; break;
      default:
        // Input/RegQ/MemRdSync always hold slots and never recurse
        // here; anything else is a malformed design.
        panic("unhandled op ", rtl::opName(n.op));
    }
    out &= maskForWidth(n.width);
    _odStamp[id] = _epoch;
    _odVal[id] = out;
    return out;
}

uint64_t
JitSim::net(rtl::NetId id)
{
    evaluate();
    return evalElided(id);
}

uint64_t
JitSim::netByName(const std::string &name)
{
    rtl::NetId id = _design.findNet(name);
    panic_if(id == rtl::kNoNet, "unknown net '", name, "'");
    return net(id);
}

uint64_t
JitSim::peek(const std::string &port)
{
    auto it = _outputIndex.find(port);
    panic_if(it == _outputIndex.end(), "unknown output port '",
             port, "'");
    return net(_design.outputs[it->second].net);
}

void
JitSim::fullStep()
{
    uint64_t *__restrict V = _v.data();
    if (_native) {
        _native->step(V);
        return;
    }
    evalCombBytecode(_prog, V, _mem);
    uint64_t *__restrict RN = V + _prog.rnBase;
    uint64_t *__restrict LT = V + _prog.ltBase;
    regLoop<false, false, false, false>(_prog.bPlainF, V, RN);
    regLoop<false, true, false, false>(_prog.bShiftF, V, RN);
    regLoop<false, false, false>(_prog.bPlain, V, RN);
    regLoop<false, true, false>(_prog.bShift, V, RN);
    regLoop<false, true, true>(_prog.bFull, V, RN);
    for (size_t i = 0; i < _prog.latches.size(); ++i) {
        const LatchOp &l = _prog.latches[i];
        uint64_t addr = V[l.addr];
        if (l.pow2)
            addr &= l.depth;
        else if (addr >= l.depth)
            addr %= l.depth;
        LT[i] = _mem[l.mem][addr];
    }
    for (const WriteOp &w : _prog.writes)
        if (V[w.en]) {
            uint64_t addr = V[w.addr];
            if (w.pow2)
                addr &= w.depth;
            else if (addr >= w.depth)
                addr %= w.depth;
            _mem[w.mem][addr] = V[w.data] & w.mask;
        }
    regLoop<true, false, false, false>(_prog.dPlainF, V, RN);
    regLoop<true, true, false, false>(_prog.dShiftF, V, RN);
    regLoop<true, false, false>(_prog.dPlain, V, RN);
    regLoop<true, true, false>(_prog.dShift, V, RN);
    regLoop<true, true, true>(_prog.dFull, V, RN);
    auto commit = [&](const RegStreams &rs) {
        const uint32_t *Ix = rs.ix.data();
        const uint32_t *Q = rs.q.data();
        for (size_t i = 0; i < rs.size(); ++i)
            V[Q[i]] = RN[Ix[i]];
    };
    commit(_prog.bPlainF);
    commit(_prog.bShiftF);
    commit(_prog.bPlain);
    commit(_prog.bShift);
    commit(_prog.bFull);
    for (size_t i = 0; i < _prog.latches.size(); ++i)
        V[_prog.latches[i].slot] = LT[i];
}

void
JitSim::filteredStep(const std::vector<uint8_t> &clocks)
{
    evaluate();
    uint64_t *V = _v.data();
    uint64_t *RN = V + _prog.rnBase;
    uint64_t *LT = V + _prog.ltBase;
    auto clocked = [&clocks](uint8_t clock) {
        for (uint8_t c : clocks)
            if (c == clock)
                return true;
        return false;
    };

    // Phase 1: next state from pre-edge values. Unclocked state
    // keeps its current value so the commit below is unconditional.
    for (size_t i = 0; i < _prog.regPlans.size(); ++i) {
        const RegPlanC &p = _prog.regPlans[i];
        if (!clocked(p.clock)) {
            RN[i] = V[p.q];
            continue;
        }
        uint64_t nv =
            ((V[p.d] >> p.sh) | (V[p.in2] << p.wsh)) & p.mask;
        nv = V[p.rst] ? p.rstVal : nv;
        bool take = (V[p.en] != 0) != (bool)p.inv;
        RN[i] = take ? nv : V[p.q];
    }
    for (size_t i = 0; i < _prog.latches.size(); ++i) {
        const LatchOp &l = _prog.latches[i];
        if (!clocked(l.clock)) {
            LT[i] = V[l.slot];
            continue;
        }
        uint64_t addr = V[l.addr];
        if (l.pow2)
            addr &= l.depth;
        else if (addr >= l.depth)
            addr %= l.depth;
        LT[i] = _mem[l.mem][addr];
    }
    _writeBuf.clear();
    for (const WriteOp &w : _prog.writes) {
        if (!clocked(w.clock) || !V[w.en])
            continue;
        uint64_t addr = V[w.addr];
        if (w.pow2)
            addr &= w.depth;
        else if (addr >= w.depth)
            addr %= w.depth;
        _writeBuf.push_back({w.mem, addr, V[w.data] & w.mask});
    }

    // Phase 2: commit simultaneously.
    for (size_t i = 0; i < _prog.regPlans.size(); ++i)
        V[_prog.regPlans[i].q] = RN[i];
    for (size_t i = 0; i < _prog.latches.size(); ++i)
        V[_prog.latches[i].slot] = LT[i];
    for (const MemWrite &w : _writeBuf)
        _mem[w.mem][w.addr] = w.data;
}

void
JitSim::step(uint8_t clock)
{
    _oneClock[0] = clock;
    stepDomains(_oneClock);
}

void
JitSim::stepDomains(const std::vector<uint8_t> &clocks)
{
    bool all = true;
    for (uint8_t c = 0; c < (uint8_t)_design.clocks.size(); ++c) {
        bool found = false;
        for (uint8_t x : clocks)
            if (x == c) {
                found = true;
                break;
            }
        if (!found) {
            all = false;
            break;
        }
    }
    if (all)
        fullStep();
    else
        filteredStep(clocks);
    for (uint8_t clock : clocks)
        ++_cycles[clock];
    markDirty();
}

void
JitSim::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        stepDomains(_allClocks);
}

uint64_t
JitSim::regValue(uint32_t index)
{
    panic_if(index >= _prog.regSlot.size(),
             "register index out of range");
    return _v[_prog.regSlot[index]];
}

uint64_t
JitSim::regByName(const std::string &name)
{
    auto it = _regIndex.find(name);
    panic_if(it == _regIndex.end(), "unknown register '", name, "'");
    return _v[_prog.regSlot[it->second]];
}

void
JitSim::forceReg(uint32_t index, uint64_t value)
{
    panic_if(index >= _prog.regSlot.size(),
             "register index out of range");
    _v[_prog.regSlot[index]] =
        truncToWidth(value, _design.regs[index].width);
    markDirty();
}

void
JitSim::forceRegByName(const std::string &name, uint64_t value)
{
    auto it = _regIndex.find(name);
    panic_if(it == _regIndex.end(), "unknown register '", name, "'");
    forceReg(it->second, value);
}

uint64_t
JitSim::memWord(uint32_t mem_index, uint32_t addr) const
{
    panic_if(mem_index >= _mem.size(), "memory index out of range");
    panic_if(addr >= _mem[mem_index].size(),
             "memory address out of range");
    return _mem[mem_index][addr];
}

void
JitSim::forceMemWord(uint32_t mem_index, uint32_t addr,
                     uint64_t value)
{
    panic_if(mem_index >= _mem.size(), "memory index out of range");
    panic_if(addr >= _mem[mem_index].size(),
             "memory address out of range");
    _mem[mem_index][addr] =
        truncToWidth(value, _design.mems[mem_index].width);
    markDirty();
}

std::vector<uint64_t>
JitSim::snapshotRegs()
{
    std::vector<uint64_t> image(_prog.regSlot.size());
    for (size_t i = 0; i < image.size(); ++i)
        image[i] = _v[_prog.regSlot[i]];
    return image;
}

void
JitSim::restoreRegs(const std::vector<uint64_t> &image)
{
    panic_if(image.size() != _prog.regSlot.size(),
             "snapshot size mismatch");
    for (size_t i = 0; i < image.size(); ++i)
        _v[_prog.regSlot[i]] = image[i];
    markDirty();
}

} // namespace zoomie::jit
