/**
 * @file
 * Compile an rtl::Design into a jit::Program (see bytecode.hh).
 * One-shot, whole-design compilation: constant folding, aliasing,
 * slice strength-reduction, CSE, dead-node elision, register
 * enable/shift absorption, fused instruction selection and
 * same-opcode run scheduling.
 */

#ifndef ZOOMIE_JIT_COMPILER_HH
#define ZOOMIE_JIT_COMPILER_HH

#include "jit/bytecode.hh"
#include "rtl/ir.hh"

namespace zoomie::jit {

/** Lower @p design to bytecode. The design must stay alive and
 *  unchanged for as long as the program executes. */
Program compileProgram(const rtl::Design &design);

} // namespace zoomie::jit

#endif // ZOOMIE_JIT_COMPILER_HH
