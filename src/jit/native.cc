#include "native.hh"

#if defined(__x86_64__) && (defined(__linux__) || defined(__APPLE__))
#define ZOOMIE_JIT_NATIVE_IMPL 1
#else
#define ZOOMIE_JIT_NATIVE_IMPL 0
#endif

#if ZOOMIE_JIT_NATIVE_IMPL
#include <cstring>
#include <initializer_list>

#include <sys/mman.h>
#endif

namespace zoomie::jit {

#if ZOOMIE_JIT_NATIVE_IMPL

namespace {

/**
 * x86-64 encoder over the slot model: rdi holds the value-array
 * base for the whole function, every slot is [rdi + 8*slot], and
 * rax/rcx/rdx are scratch (all caller-saved, so the generated
 * functions need no prologue — they end in a bare ret).
 */
struct Emitter
{
    const Program &p;
    const std::vector<std::vector<uint64_t>> &mems;
    std::vector<uint8_t> code;

    Emitter(const Program &prog,
            const std::vector<std::vector<uint64_t>> &m)
        : p(prog), mems(m)
    {
    }

    void b1(uint8_t x) { code.push_back(x); }
    void bs(std::initializer_list<uint8_t> xs)
    {
        for (auto x : xs)
            code.push_back(x);
    }
    void d32(uint32_t x)
    {
        for (int i = 0; i < 4; ++i)
            code.push_back((x >> (8 * i)) & 0xff);
    }
    void d64(uint64_t x)
    {
        for (int i = 0; i < 8; ++i)
            code.push_back((x >> (8 * i)) & 0xff);
    }
    uint32_t disp(uint32_t slot) { return slot * 8; }

    // mov r64, [rdi+slot] / mov [rdi+slot], rax
    void ldRax(uint32_t s) { bs({0x48, 0x8B, 0x87}); d32(disp(s)); }
    void ldRcx(uint32_t s) { bs({0x48, 0x8B, 0x8F}); d32(disp(s)); }
    void ldRdx(uint32_t s) { bs({0x48, 0x8B, 0x97}); d32(disp(s)); }
    void stRax(uint32_t s) { bs({0x48, 0x89, 0x87}); d32(disp(s)); }

    // op rax, [rdi+slot]: and 0x23 / or 0x0B / xor 0x33 / add 0x03
    // / sub 0x2B / cmp 0x3B / imul via 0x0F 0xAF
    void aluMem(uint8_t opc, uint32_t s)
    {
        bs({0x48, opc, 0x87});
        d32(disp(s));
    }
    void movRcxImm(uint64_t v)
    {
        bs({0x48, 0xB9});
        d64(v);
    }
    void movRdxImm(uint64_t v)
    {
        if (v < (1ull << 32)) {
            b1(0xBA);
            d32((uint32_t)v);
        } else {
            bs({0x48, 0xBA});
            d64(v);
        }
    }
    void movRaxImm(uint64_t v)
    {
        if (v < (1ull << 32)) {
            b1(0xB8);
            d32((uint32_t)v);
        } else {
            bs({0x48, 0xB8});
            d64(v);
        }
    }
    // op rax, imm (alu /ext: add 0, or 1, and 4, sub 5, xor 6, cmp 7)
    void aluImmRax(uint8_t ext, uint64_t imm)
    {
        if (imm < (1ull << 31)) {
            bs({0x48, 0x81, (uint8_t)(0xC0 | (ext << 3))});
            d32((uint32_t)imm);
        } else {
            movRcxImm(imm);
            static const uint8_t rr[8] = {0x01, 0x09, 0, 0,
                                          0x21, 0x29, 0x31, 0x39};
            bs({0x48, rr[ext], 0xC8});
        }
    }
    void aluImmRcx(uint8_t ext, uint64_t imm)
    {
        if (imm < (1ull << 31)) {
            bs({0x48, 0x81, (uint8_t)(0xC1 | (ext << 3))});
            d32((uint32_t)imm);
        } else {
            movRdxImm(imm);
            static const uint8_t rr[8] = {0x01, 0x09, 0, 0,
                                          0x21, 0x29, 0x31, 0x39};
            bs({0x48, rr[ext], 0xD1});
        }
    }
    void maskRax(uint64_t m)
    {
        if (m != ~0ull)
            aluImmRax(4, m);
    }
    void shrRaxImm(uint8_t n)
    {
        if (n)
            bs({0x48, 0xC1, 0xE8, n});
    }
    void shlRaxImm(uint8_t n)
    {
        if (n)
            bs({0x48, 0xC1, 0xE0, n});
    }
    void shrRcxImm(uint8_t n)
    {
        if (n)
            bs({0x48, 0xC1, 0xE9, n});
    }
    void shlRcxImm(uint8_t n)
    {
        if (n)
            bs({0x48, 0xC1, 0xE1, n});
    }
    void orRaxRcx() { bs({0x48, 0x09, 0xC8}); }
    void setccRax(uint8_t cc)  // setcc al; movzx eax, al
    {
        bs({0x0F, cc, 0xC0, 0x0F, 0xB6, 0xC0});
    }
    void testRaxRax() { bs({0x48, 0x85, 0xC0}); }
    void testRcxRcx() { bs({0x48, 0x85, 0xC9}); }
    void cmovzRaxMem(uint32_t s)
    {
        bs({0x48, 0x0F, 0x44, 0x87});
        d32(disp(s));
    }
    void cmovnzRaxMem(uint32_t s)
    {
        bs({0x48, 0x0F, 0x45, 0x87});
        d32(disp(s));
    }
    void cmovaeRaxMem(uint32_t s)
    {
        bs({0x48, 0x0F, 0x43, 0x87});
        d32(disp(s));
    }
    void cmovzRaxRdx() { bs({0x48, 0x0F, 0x44, 0xC2}); }
    void cmovnzRaxRdx() { bs({0x48, 0x0F, 0x45, 0xC2}); }
    void cmovaeRaxRdx() { bs({0x48, 0x0F, 0x43, 0xC2}); }
    void btRcxImm(uint8_t bit) { bs({0x48, 0x0F, 0xBA, 0xE1, bit}); }

    /** Clamp rax into [0, depth): mask for pow2, guarded div else. */
    void clampRax(uint64_t depth, bool pow2)
    {
        if (pow2) {
            aluImmRax(4, depth - 1);
            return;
        }
        movRcxImm(depth);
        bs({0x48, 0x39, 0xC8});  // cmp rax, rcx
        size_t jb = code.size();
        bs({0x72, 0x00});        // jb +0 (patched below)
        bs({0x31, 0xD2});        // xor edx, edx
        bs({0x48, 0xF7, 0xF1});  // div rcx
        bs({0x48, 0x89, 0xD0});  // mov rax, rdx
        code[jb + 1] = (uint8_t)(code.size() - (jb + 2));
    }
    void memLoadRax(uint32_t m)  // rax = mems[m][rax]
    {
        movRcxImm((uint64_t)(uintptr_t)mems[m].data());
        bs({0x48, 0x8B, 0x04, 0xC1});  // mov rax, [rcx + rax*8]
    }
    // rax/rcx = (V[s] >> sh) & mk
    void sliceRax(uint32_t s, uint8_t sh, uint64_t mk)
    {
        ldRax(s);
        shrRaxImm(sh);
        maskRax(mk);
    }
    void sliceRcx(uint32_t s, uint8_t sh, uint64_t mk)
    {
        ldRcx(s);
        shrRcxImm(sh);
        if (mk != ~0ull)
            aluImmRcx(4, mk);
    }

    void emitComb()
    {
        const uint32_t *A = p.ia.data();
        const uint32_t *B = p.ib.data();
        const uint32_t *C = p.ic.data();
        const uint64_t *M = p.imask.data();
        const uint64_t *I1 = p.immA.data();
        const uint64_t *I2 = p.immB.data();
        const uint8_t *S = p.ish.data();
        const Ext *E = p.ext.data();
        for (const Run &r : p.runs) {
            for (uint32_t k = r.start; k < r.start + r.count; ++k) {
                uint32_t dst = r.dstBase + (k - r.start);
                switch (r.op) {
                  case BOp::And:
                    ldRax(A[k]); aluMem(0x23, B[k]); break;
                  case BOp::Or:
                    ldRax(A[k]); aluMem(0x0B, B[k]); break;
                  case BOp::Xor:
                    ldRax(A[k]); aluMem(0x33, B[k]); break;
                  case BOp::Not:
                    ldRax(A[k]);
                    bs({0x48, 0xF7, 0xD0});  // not rax
                    maskRax(M[k]);
                    break;
                  case BOp::Add:
                    ldRax(A[k]); aluMem(0x03, B[k]); maskRax(M[k]);
                    break;
                  case BOp::Sub:
                    ldRax(A[k]); aluMem(0x2B, B[k]); maskRax(M[k]);
                    break;
                  case BOp::Mul:
                    ldRax(A[k]);
                    bs({0x48, 0x0F, 0xAF, 0x87});  // imul rax, [rdi+B]
                    d32(disp(B[k]));
                    maskRax(M[k]);
                    break;
                  case BOp::Eq:
                    ldRax(A[k]); aluMem(0x3B, B[k]); setccRax(0x94);
                    break;
                  case BOp::Ne:
                    ldRax(A[k]); aluMem(0x3B, B[k]); setccRax(0x95);
                    break;
                  case BOp::Ult:
                    ldRax(A[k]); aluMem(0x3B, B[k]); setccRax(0x92);
                    break;
                  case BOp::Ule:
                    ldRax(A[k]); aluMem(0x3B, B[k]); setccRax(0x96);
                    break;
                  case BOp::Shl:
                    ldRcx(B[k]);
                    ldRax(A[k]);
                    bs({0x48, 0xD3, 0xE0});        // shl rax, cl
                    bs({0x31, 0xD2});              // xor edx, edx
                    bs({0x48, 0x83, 0xF9, S[k]});  // cmp rcx, width
                    cmovaeRaxRdx();
                    maskRax(M[k]);
                    break;
                  case BOp::Shr:
                    ldRcx(B[k]);
                    ldRax(A[k]);
                    bs({0x48, 0xD3, 0xE8});        // shr rax, cl
                    bs({0x31, 0xD2});
                    bs({0x48, 0x83, 0xF9, S[k]});
                    cmovaeRaxRdx();
                    break;
                  case BOp::Mux:
                    ldRcx(A[k]); testRcxRcx(); ldRax(B[k]);
                    cmovzRaxMem(C[k]);
                    break;
                  case BOp::Concat:
                    ldRax(A[k]); shlRaxImm(S[k]); aluMem(0x0B, B[k]);
                    maskRax(M[k]);
                    break;
                  case BOp::Slice:
                    sliceRax(A[k], S[k], M[k]);
                    break;
                  case BOp::ShlImm:
                    ldRax(A[k]); shlRaxImm(S[k]); maskRax(M[k]);
                    break;
                  case BOp::RedAnd:
                    ldRax(A[k]); aluImmRax(7, M[k]); setccRax(0x94);
                    break;
                  case BOp::RedOr:
                    ldRax(A[k]); testRaxRax(); setccRax(0x95);
                    break;
                  case BOp::RedXor:
                    bs({0xF3, 0x48, 0x0F, 0xB8, 0x87});  // popcnt
                    d32(disp(A[k]));
                    bs({0x83, 0xE0, 0x01});  // and eax, 1
                    break;
                  case BOp::MemRdAMask:
                    ldRax(A[k]); aluImmRax(4, I1[k]);
                    memLoadRax((uint32_t)M[k]);
                    break;
                  case BOp::MemRdAMod:
                    ldRax(A[k]); clampRax(I1[k], false);
                    memLoadRax((uint32_t)M[k]);
                    break;
                  case BOp::EqImm:
                    ldRax(A[k]); aluImmRax(7, I1[k]); setccRax(0x94);
                    break;
                  case BOp::NeImm:
                    ldRax(A[k]); aluImmRax(7, I1[k]); setccRax(0x95);
                    break;
                  case BOp::AndImm:
                    ldRax(A[k]); aluImmRax(4, I1[k]); break;
                  case BOp::OrImm:
                    ldRax(A[k]); aluImmRax(1, I1[k]); break;
                  case BOp::XorImm:
                    ldRax(A[k]); aluImmRax(6, I1[k]); break;
                  case BOp::AddImm:
                    ldRax(A[k]); aluImmRax(0, I1[k]); maskRax(M[k]);
                    break;
                  case BOp::UltImm:
                    ldRax(A[k]); aluImmRax(7, I1[k]); setccRax(0x92);
                    break;
                  case BOp::UleImm:
                    ldRax(A[k]); aluImmRax(7, I1[k]); setccRax(0x96);
                    break;
                  case BOp::MuxImmB:
                    ldRcx(A[k]); testRcxRcx(); movRaxImm(I1[k]);
                    cmovzRaxMem(B[k]);
                    break;
                  case BOp::MuxImmC:
                    ldRcx(A[k]); testRcxRcx(); ldRax(B[k]);
                    movRdxImm(I1[k]); cmovzRaxRdx();
                    break;
                  case BOp::MuxImmBC:
                    ldRcx(A[k]); testRcxRcx(); movRaxImm(I1[k]);
                    movRdxImm(I2[k]); cmovzRaxRdx();
                    break;
                  case BOp::ConcatSS:
                    sliceRax(A[k], E[k].sa, M[k]);
                    shlRaxImm(E[k].wsh);
                    sliceRcx(B[k], E[k].sb, E[k].mb);
                    orRaxRcx();
                    break;
                  case BOp::XorSS:
                    sliceRax(A[k], E[k].sa, M[k]);
                    sliceRcx(B[k], E[k].sb, E[k].mb);
                    bs({0x48, 0x31, 0xC8});  // xor rax, rcx
                    break;
                  case BOp::AndSS:
                    sliceRax(A[k], E[k].sa, M[k]);
                    sliceRcx(B[k], E[k].sb, E[k].mb);
                    bs({0x48, 0x21, 0xC8});  // and rax, rcx
                    break;
                  case BOp::OrSS:
                    sliceRax(A[k], E[k].sa, M[k]);
                    sliceRcx(B[k], E[k].sb, E[k].mb);
                    orRaxRcx();
                    break;
                  case BOp::ConcatSA:
                    sliceRax(A[k], E[k].sa, E[k].mb);
                    shlRaxImm(E[k].wsh);
                    aluMem(0x0B, B[k]);
                    break;
                  case BOp::ConcatSB:
                    ldRax(A[k]);
                    shlRaxImm(E[k].wsh);
                    sliceRcx(B[k], E[k].sb, E[k].mb);
                    orRaxRcx();
                    break;
                  case BOp::XorSA:
                    sliceRax(A[k], E[k].sa, E[k].mb);
                    aluMem(0x33, B[k]);
                    break;
                  case BOp::AndSA:
                    sliceRax(A[k], E[k].sa, E[k].mb);
                    aluMem(0x23, B[k]);
                    break;
                  case BOp::OrSA:
                    sliceRax(A[k], E[k].sa, E[k].mb);
                    aluMem(0x0B, B[k]);
                    break;
                  case BOp::MuxEq:
                    ldRcx(A[k]); aluImmRcx(7, E[k].mb); ldRax(B[k]);
                    cmovnzRaxMem(C[k]);
                    break;
                  case BOp::MuxEqB:
                    ldRcx(A[k]); aluImmRcx(7, E[k].mb);
                    movRaxImm(I1[k]); cmovnzRaxMem(B[k]);
                    break;
                  case BOp::MuxEqC:
                    ldRcx(A[k]); aluImmRcx(7, E[k].mb); ldRax(B[k]);
                    movRdxImm(I1[k]); cmovnzRaxRdx();
                    break;
                  case BOp::MuxEqBC:
                    ldRcx(A[k]); aluImmRcx(7, E[k].mb);
                    movRaxImm(I1[k]); movRdxImm(I2[k]);
                    cmovnzRaxRdx();
                    break;
                  case BOp::MuxS:
                    ldRcx(A[k]); btRcxImm(E[k].sa); ldRax(B[k]);
                    cmovaeRaxMem(C[k]);
                    break;
                  case BOp::MuxSB:
                    ldRcx(A[k]); btRcxImm(E[k].sa);
                    movRaxImm(I1[k]); cmovaeRaxMem(B[k]);
                    break;
                  case BOp::MuxSC:
                    ldRcx(A[k]); btRcxImm(E[k].sa); ldRax(B[k]);
                    movRdxImm(I1[k]); cmovaeRaxRdx();
                    break;
                  case BOp::MuxSBC:
                    ldRcx(A[k]); btRcxImm(E[k].sa);
                    movRaxImm(I1[k]); movRdxImm(I2[k]);
                    cmovaeRaxRdx();
                    break;
                  case BOp::kNumOps:
                    continue;
                }
                stRax(dst);
            }
        }
    }

    /** Next-value for register i of stream rs into rax. */
    void emitRegNv(const RegStreams &rs, size_t i, bool shift)
    {
        if (shift) {
            ldRax(rs.d[i]);
            shrRaxImm(rs.sh[i]);
            if (rs.in2[i] != 0) {
                ldRcx(rs.in2[i]);
                shlRcxImm(rs.wsh[i]);
                orRaxRcx();
            }
            maskRax(rs.mask[i]);
        } else {
            ldRax(rs.d[i]);
            maskRax(rs.mask[i]);
        }
    }

    void emitRegGroup(const RegStreams &rs, bool direct, bool shift,
                      bool full, bool en)
    {
        for (size_t i = 0; i < rs.size(); ++i) {
            emitRegNv(rs, i, shift || full);
            if (full) {
                if (rs.rst[i] != 0) {
                    ldRcx(rs.rst[i]);
                    testRcxRcx();
                    movRdxImm(rs.rstVal[i]);
                    cmovnzRaxRdx();
                }
                ldRcx(rs.en[i]);
                testRcxRcx();
                if (rs.inv[i])
                    cmovnzRaxMem(rs.q[i]);
                else
                    cmovzRaxMem(rs.q[i]);
            } else if (en) {
                ldRcx(rs.en[i]);
                testRcxRcx();
                cmovzRaxMem(rs.q[i]);
            }
            stRax(direct ? rs.q[i] : p.rnBase + rs.ix[i]);
        }
    }

    void emitSeq()
    {
        emitRegGroup(p.bPlainF, false, false, false, false);
        emitRegGroup(p.bShiftF, false, true, false, false);
        emitRegGroup(p.bPlain, false, false, false, true);
        emitRegGroup(p.bShift, false, true, false, true);
        emitRegGroup(p.bFull, false, false, true, true);
        for (size_t i = 0; i < p.latches.size(); ++i) {
            const LatchOp &l = p.latches[i];
            ldRax(l.addr);
            // LatchOp.depth holds the mask (depth-1) when pow2.
            clampRax(l.pow2 ? l.depth + 1 : l.depth, l.pow2);
            memLoadRax(l.mem);
            stRax(p.ltBase + (uint32_t)i);
        }
        for (const WriteOp &w : p.writes) {
            ldRcx(w.en);
            testRcxRcx();
            size_t jz = code.size();
            bs({0x0F, 0x84});  // jz skip (rel32 patched below)
            d32(0);
            ldRax(w.addr);
            clampRax(w.pow2 ? w.depth + 1 : w.depth, w.pow2);
            ldRdx(w.data);
            if (w.mask != ~0ull) {
                if (w.mask < (1ull << 31)) {
                    bs({0x48, 0x81, 0xE2});  // and rdx, imm32
                    d32((uint32_t)w.mask);
                } else {
                    movRcxImm(w.mask);
                    bs({0x48, 0x21, 0xCA});  // and rdx, rcx
                }
            }
            movRcxImm((uint64_t)(uintptr_t)mems[w.mem].data());
            bs({0x48, 0x89, 0x14, 0xC1});  // mov [rcx+rax*8], rdx
            uint32_t rel = (uint32_t)(code.size() - (jz + 6));
            for (int q = 0; q < 4; ++q)
                code[jz + 2 + q] = (rel >> (8 * q)) & 0xff;
        }
        emitRegGroup(p.dPlainF, true, false, false, false);
        emitRegGroup(p.dShiftF, true, true, false, false);
        emitRegGroup(p.dPlain, true, false, false, true);
        emitRegGroup(p.dShift, true, true, false, true);
        emitRegGroup(p.dFull, true, false, true, true);
        auto commit = [&](const RegStreams &rs) {
            for (size_t i = 0; i < rs.size(); ++i) {
                ldRax(p.rnBase + rs.ix[i]);
                stRax(rs.q[i]);
            }
        };
        commit(p.bPlainF);
        commit(p.bShiftF);
        commit(p.bPlain);
        commit(p.bShift);
        commit(p.bFull);
        for (size_t i = 0; i < p.latches.size(); ++i) {
            ldRax(p.ltBase + (uint32_t)i);
            stRax(p.latches[i].slot);
        }
    }
};

} // namespace

bool
NativeCode::supported()
{
    return true;
}

NativeCode::NativeCode(const Program &prog,
                       const std::vector<std::vector<uint64_t>> &mems)
{
    Emitter e(prog, mems);
    size_t combStart = e.code.size();
    e.emitComb();
    e.b1(0xC3);
    size_t stepStart = e.code.size();
    e.emitComb();
    e.emitSeq();
    e.b1(0xC3);

    _len = e.code.size();
    void *mapped = mmap(nullptr, _len, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mapped == MAP_FAILED) {
        _len = 0;
        return;  // ok() stays false; caller falls back to bytecode
    }
    memcpy(mapped, e.code.data(), _len);
    if (mprotect(mapped, _len, PROT_READ | PROT_EXEC) != 0) {
        munmap(mapped, _len);
        _len = 0;
        return;
    }
    _exec = static_cast<uint8_t *>(mapped);
    _comb = reinterpret_cast<Fn>(_exec + combStart);
    _step = reinterpret_cast<Fn>(_exec + stepStart);
}

NativeCode::~NativeCode()
{
    if (_exec)
        munmap(_exec, _len);
}

#else // !ZOOMIE_JIT_NATIVE_IMPL

bool
NativeCode::supported()
{
    return false;
}

NativeCode::NativeCode(const Program &,
                       const std::vector<std::vector<uint64_t>> &)
{
}

NativeCode::~NativeCode() = default;

#endif // ZOOMIE_JIT_NATIVE_IMPL

} // namespace zoomie::jit
