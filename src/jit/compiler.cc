#include "compiler.hh"

#include <algorithm>
#include <array>
#include <map>
#include <unordered_map>

#include "common/bits.hh"

namespace zoomie::jit {

using rtl::kNoNet;
using rtl::NetId;
using rtl::Op;

const char *
opMnemonic(BOp op)
{
    static const char *names[] = {
        "And", "Or", "Xor", "Not", "Add", "Sub", "Mul", "Eq", "Ne",
        "Ult", "Ule", "Shl", "Shr", "Mux", "Concat", "Slice",
        "ShlImm", "RedAnd", "RedOr", "RedXor", "MemRdAMask",
        "MemRdAMod", "EqImm", "NeImm", "AndImm", "OrImm", "XorImm",
        "AddImm", "UltImm", "UleImm", "MuxImmB", "MuxImmC",
        "MuxImmBC", "ConcatSS", "XorSS", "AndSS", "OrSS", "ConcatSA",
        "ConcatSB", "XorSA", "AndSA", "OrSA", "MuxEq", "MuxEqB",
        "MuxEqC", "MuxEqBC", "MuxS", "MuxSB", "MuxSC", "MuxSBC",
    };
    return names[static_cast<size_t>(op)];
}

namespace {

/** Pre-instruction: selected opcode still on design net ids. */
struct Pre
{
    BOp op;
    NetId dst;
    NetId a = kNoNet, b = kNoNet, c = kNoNet;
    uint8_t sh = 0;
    uint64_t mask = 0;
    uint64_t immA = 0, immB = 0;
    uint8_t sa = 0, sb = 0, wsh = 0;
    uint64_t mb = 0;
    bool dead = false;
};

/** Register lowering plan, still on design net ids. */
struct RegPlan
{
    NetId dn = kNoNet;
    uint8_t sh = 0;
    NetId in2 = kNoNet;
    uint8_t wsh = 0;
    NetId en = kNoNet;
    bool enInv = false;
    NetId rst = kNoNet;
};

} // namespace

Program
compileProgram(const rtl::Design &d)
{
    Program prg;
    const size_t N = d.nodes.size();
    prg.sourceNodes = N;
    std::vector<NetId> order = d.topoOrder();

    // Canonicalization state: repr maps every net to its living
    // representative (alias chains collapse), isC/cval fold
    // constants, sliceLike/sliceSrc/sliceLo normalize any
    // shift-right/slice chain into (source, low-bit) form.
    std::vector<uint32_t> repr(N);
    std::vector<char> isC(N, 0);
    std::vector<uint64_t> cval(N, 0);
    std::vector<char> sliceLike(N, 0);
    std::vector<NetId> sliceSrc(N, kNoNet);
    std::vector<uint32_t> sliceLo(N, 0);
    for (size_t i = 0; i < N; ++i)
        repr[i] = i;
    auto R = [&](NetId n) { return n == kNoNet ? kNoNet : repr[n]; };
    auto isConst = [&](NetId n) { return n != kNoNet && isC[repr[n]]; };
    auto constVal = [&](NetId n) { return cval[repr[n]]; };

    // ---- Pass A: fold, alias, slice strength-reduction, CSE ----
    std::map<std::array<uint64_t, 5>, NetId> cse;
    for (NetId id : order) {
        const rtl::Node &n = d.nodes[id];
        const uint64_t mask = maskForWidth(n.width);
        switch (n.op) {
          case Op::Const:
            cval[id] = n.imm & mask;
            isC[id] = 1;
            continue;
          case Op::Input:
          case Op::RegQ:
          case Op::MemRdSync:
            continue;
          default:
            break;
        }
        uint64_t va = n.a != kNoNet && isConst(n.a) ? constVal(n.a) : 0;
        uint64_t vb = n.b != kNoNet && isConst(n.b) ? constVal(n.b) : 0;
        uint64_t vc = n.c != kNoNet && isConst(n.c) ? constVal(n.c) : 0;
        bool ca = isConst(n.a), cb = isConst(n.b), cc = isConst(n.c);
        bool pure = n.op != Op::MemRdAsync;
        if (pure && (n.a == kNoNet || ca) && (n.b == kNoNet || cb) &&
            (n.c == kNoNet || cc)) {
            uint64_t out = 0;
            switch (n.op) {
              case Op::And: out = va & vb; break;
              case Op::Or: out = va | vb; break;
              case Op::Xor: out = va ^ vb; break;
              case Op::Not: out = ~va; break;
              case Op::Add: out = va + vb; break;
              case Op::Sub: out = va - vb; break;
              case Op::Mul: out = va * vb; break;
              case Op::Eq: out = va == vb; break;
              case Op::Ne: out = va != vb; break;
              case Op::Ult: out = va < vb; break;
              case Op::Ule: out = va <= vb; break;
              case Op::Shl: out = vb >= n.width ? 0 : va << vb; break;
              case Op::Shr: out = vb >= n.width ? 0 : va >> vb; break;
              case Op::Mux: out = va ? vb : vc; break;
              case Op::Concat:
                out = (va << d.nodes[n.b].width) | vb;
                break;
              case Op::Slice: out = va >> n.imm; break;
              case Op::Zext: out = va; break;
              case Op::RedAnd:
                out = va == maskForWidth(d.nodes[n.a].width);
                break;
              case Op::RedOr: out = va != 0; break;
              case Op::RedXor: out = popCount(va) & 1; break;
              default: break;
            }
            cval[id] = out & mask;
            isC[id] = 1;
            continue;
        }
        if (n.op == Op::Zext) {
            repr[id] = R(n.a);
            continue;
        }
        if (n.op == Op::Mux && ca) {
            repr[id] = va ? R(n.b) : R(n.c);
            continue;
        }
        if (n.op == Op::Mux && R(n.b) == R(n.c) && n.b != kNoNet) {
            repr[id] = R(n.b);
            continue;
        }
        if (n.op == Op::And && (ca || cb)) {
            uint64_t cv = ca ? va : vb;
            NetId o = ca ? R(n.b) : R(n.a);
            if (cv == mask) { repr[id] = o; continue; }
            if (cv == 0) { cval[id] = 0; isC[id] = 1; continue; }
        }
        if ((n.op == Op::Or || n.op == Op::Xor || n.op == Op::Add) &&
            (ca || cb)) {
            uint64_t cv = ca ? va : vb;
            NetId o = ca ? R(n.b) : R(n.a);
            if (cv == 0) { repr[id] = o; continue; }
        }
        if (n.op == Op::Shl && cb) {
            if (vb >= n.width) { cval[id] = 0; isC[id] = 1; continue; }
            if (vb == 0) { repr[id] = R(n.a); continue; }
            // falls through to pass C as ShlImm
        }
        bool asSlice = n.op == Op::Slice ||
                       (n.op == Op::Shr && cb && vb < n.width);
        if (n.op == Op::Shr && cb && vb >= n.width) {
            cval[id] = 0;
            isC[id] = 1;
            continue;
        }
        if (asSlice) {
            // Walk the slice toward its ultimate source: through
            // other slices and into concat arms, as long as the
            // selected bit range stays inside one operand.
            NetId src = R(n.a);
            uint64_t lo = n.op == Op::Slice ? n.imm : vb;
            bool changed = true;
            while (changed && src != kNoNet && !isC[src]) {
                changed = false;
                const rtl::Node &s = d.nodes[src];
                if (sliceLike[src] && lo + n.width <= s.width) {
                    lo += sliceLo[src];
                    src = sliceSrc[src];
                    changed = true;
                } else if (s.op == Op::Slice &&
                           lo + n.width <= s.width) {
                    lo += s.imm;
                    src = R(s.a);
                    changed = true;
                } else if (s.op == Op::Concat) {
                    unsigned wb2 = d.nodes[s.b].width;
                    if (lo >= wb2) {
                        lo -= wb2;
                        src = R(s.a);
                        changed = true;
                    } else if (lo + n.width <= wb2) {
                        src = R(s.b);
                        changed = true;
                    }
                }
            }
            if (src != kNoNet && isC[src]) {
                cval[id] = (cval[src] >> lo) & mask;
                isC[id] = 1;
                continue;
            }
            if (lo == 0 && n.width >= d.nodes[src].width) {
                repr[id] = src;
                continue;
            }
            std::array<uint64_t, 5> key{
                (uint64_t)Op::Slice | ((uint64_t)n.width << 8),
                src, lo, 0, 0};
            auto [it, fresh] = cse.emplace(key, id);
            if (!fresh) { repr[id] = it->second; continue; }
            sliceLike[id] = 1;
            sliceSrc[id] = src;
            sliceLo[id] = (uint32_t)lo;
            continue;
        }
        if (pure) {
            std::array<uint64_t, 5> key{
                (uint64_t)n.op | ((uint64_t)n.width << 8),
                R(n.a), R(n.b), R(n.c),
                n.op == Op::Concat ? (uint64_t)d.nodes[n.b].width : 0};
            auto [it, fresh] = cse.emplace(key, id);
            if (!fresh) { repr[id] = it->second; continue; }
        } else {
            std::array<uint64_t, 5> key{
                (uint64_t)n.op | ((uint64_t)n.width << 8),
                R(n.a), n.imm, 0, 1};
            auto [it, fresh] = cse.emplace(key, id);
            if (!fresh) { repr[id] = it->second; continue; }
        }
    }

    // ---- Pass B: canonical use counts, then register lowering ----
    std::vector<int> uses(N, 0);
    std::vector<char> suppressed(N, 0);
    auto isInstr = [&](NetId id) {
        if (repr[id] != id || isC[id])
            return false;
        Op o = d.nodes[id].op;
        return o != Op::Const && o != Op::Input && o != Op::RegQ &&
               o != Op::MemRdSync;
    };
    auto use = [&](NetId n) {
        if (n != kNoNet && !isConst(n))
            uses[repr[n]]++;
    };
    for (NetId id = 0; id < N; ++id) {
        if (!isInstr(id))
            continue;
        const rtl::Node &n = d.nodes[id];
        if (sliceLike[id]) { uses[sliceSrc[id]]++; continue; }
        if (n.op == Op::MemRdAsync) { use(n.a); continue; }
        use(n.a);
        use(n.b);
        use(n.c);
    }
    std::vector<RegPlan> rl(d.regs.size());
    for (size_t i = 0; i < d.regs.size(); ++i) {
        const rtl::Reg &r = d.regs[i];
        rl[i].dn = R(r.d);
        rl[i].en = r.en == kNoNet ? kNoNet : R(r.en);
        rl[i].rst = r.rst == kNoNet ? kNoNet : R(r.rst);
        use(rl[i].dn);
        use(rl[i].en);
        use(rl[i].rst);
    }
    for (auto &m : d.mems) {
        for (auto &rp : m.readPorts)
            use(rp.addr);
        for (auto &wp : m.writePorts) {
            use(wp.addr);
            use(wp.data);
            use(wp.en);
        }
    }
    for (auto &o : d.outputs)
        use(o.net);

    for (size_t i = 0; i < d.regs.size(); ++i) {
        const rtl::Reg &r = d.regs[i];
        RegPlan &p = rl[i];
        // Mux feedback -> enable: d = Mux(s, x, own q) and no
        // en/rst means the register is "load x when s".
        if (p.en == kNoNet && p.rst == kNoNet && p.dn != kNoNet &&
            !isC[p.dn] && uses[p.dn] == 1 && !suppressed[p.dn] &&
            d.nodes[p.dn].op == Op::Mux && !sliceLike[p.dn]) {
            const rtl::Node &mx = d.nodes[p.dn];
            if (!isConst(mx.a)) {
                if (R(mx.c) == r.q) {
                    suppressed[p.dn] = 1;
                    uses[r.q]--;  // the dropped keep-arm
                    p.en = R(mx.a);
                    p.enInv = false;
                    p.dn = R(mx.b);
                    ++prg.enableRewrites;
                } else if (R(mx.b) == r.q) {
                    suppressed[p.dn] = 1;
                    uses[r.q]--;
                    p.en = R(mx.a);
                    p.enInv = true;
                    p.dn = R(mx.c);
                    ++prg.enableRewrites;
                }
            }
        }
        // Shift-register absorption: d = Concat(in, inner) folds
        // into the commit formula (q>>sh | in<<wsh).
        if (p.dn != kNoNet && !isC[p.dn] && uses[p.dn] == 1 &&
            !suppressed[p.dn] && !sliceLike[p.dn] &&
            d.nodes[p.dn].op == Op::Concat) {
            const rtl::Node &cc2 = d.nodes[p.dn];
            unsigned wa = d.nodes[cc2.a].width;
            unsigned wb = d.nodes[cc2.b].width;
            if (cc2.width >= wa + wb) {
                NetId bcan = R(cc2.b);
                suppressed[p.dn] = 1;
                p.in2 = R(cc2.a);
                p.wsh = (uint8_t)wb;
                ++prg.shiftAbsorbs;
                if (!isC[bcan] && uses[bcan] == 1 && sliceLike[bcan] &&
                    d.nodes[sliceSrc[bcan]].width - sliceLo[bcan] <= wb) {
                    suppressed[bcan] = 1;
                    uses[bcan]--;
                    p.dn = sliceSrc[bcan];
                    p.sh = (uint8_t)sliceLo[bcan];
                } else {
                    p.dn = bcan;
                    p.sh = 0;
                }
            }
        }
        // Plain slice absorption: d = Slice(x, lo) wide enough to
        // cover the register.
        else if (p.dn != kNoNet && !isC[p.dn] && uses[p.dn] == 1 &&
                 !suppressed[p.dn] && sliceLike[p.dn] &&
                 d.nodes[p.dn].width >= r.width) {
            suppressed[p.dn] = 1;
            NetId src = sliceSrc[p.dn];
            uint8_t lo = (uint8_t)sliceLo[p.dn];
            p.dn = src;
            p.sh = lo;
            ++prg.sliceAbsorbs;
        }
    }

    // ---- Pass C: instruction selection with fusion ----
    std::vector<Pre> prog;
    std::vector<int> preOf(N, -1);
    auto fusable = [&](NetId n, BOp want) -> int {
        if (n == kNoNet)
            return -1;
        NetId cand = repr[n];
        if (isC[cand] || uses[cand] != 1 || suppressed[cand])
            return -1;
        int pi = preOf[cand];
        if (pi < 0 || prog[pi].op != want || prog[pi].dead)
            return -1;
        return pi;
    };
    for (NetId id : order) {
        if (!isInstr(id) || suppressed[id])
            continue;
        const rtl::Node &n = d.nodes[id];
        const uint64_t mask = maskForWidth(n.width);
        if (sliceLike[id]) {
            Pre p{};
            p.op = BOp::Slice;
            p.dst = id;
            p.a = sliceSrc[id];
            p.sh = (uint8_t)sliceLo[id];
            p.mask = mask;
            preOf[id] = prog.size();
            prog.push_back(p);
            continue;
        }
        uint64_t va = n.a != kNoNet && isConst(n.a) ? constVal(n.a) : 0;
        uint64_t vb = n.b != kNoNet && isConst(n.b) ? constVal(n.b) : 0;
        uint64_t vc = n.c != kNoNet && isConst(n.c) ? constVal(n.c) : 0;
        bool ca = isConst(n.a), cb = isConst(n.b), cc = isConst(n.c);
        Pre p{};
        p.dst = id;
        p.mask = mask;
        p.a = R(n.a);
        p.b = R(n.b);
        p.c = R(n.c);
        switch (n.op) {
          case Op::And:
            if (cb || ca) {
                p.op = BOp::AndImm;
                p.immA = ca ? va : vb;
                p.a = ca ? R(n.b) : R(n.a);
                p.b = kNoNet;
            } else
                p.op = BOp::And;
            break;
          case Op::Or:
            if (cb || ca) {
                p.op = BOp::OrImm;
                p.immA = ca ? va : vb;
                p.a = ca ? R(n.b) : R(n.a);
                p.b = kNoNet;
            } else
                p.op = BOp::Or;
            break;
          case Op::Xor:
            if (cb || ca) {
                p.op = BOp::XorImm;
                p.immA = ca ? va : vb;
                p.a = ca ? R(n.b) : R(n.a);
                p.b = kNoNet;
            } else
                p.op = BOp::Xor;
            break;
          case Op::Not:
            p.op = BOp::Not;
            break;
          case Op::Add:
            if (cb || ca) {
                p.op = BOp::AddImm;
                p.immA = ca ? va : vb;
                p.a = ca ? R(n.b) : R(n.a);
                p.b = kNoNet;
            } else
                p.op = BOp::Add;
            break;
          case Op::Sub:
            if (cb) {
                p.op = BOp::AddImm;
                p.immA = (uint64_t)0 - vb;
                p.b = kNoNet;
            } else
                p.op = BOp::Sub;
            break;
          case Op::Mul:
            p.op = BOp::Mul;
            break;
          case Op::Eq:
            if (cb) {
                p.op = BOp::EqImm;
                p.immA = vb;
                p.b = kNoNet;
            } else if (ca) {
                p.op = BOp::EqImm;
                p.immA = va;
                p.a = R(n.b);
                p.b = kNoNet;
            } else
                p.op = BOp::Eq;
            break;
          case Op::Ne:
            if (cb) {
                p.op = BOp::NeImm;
                p.immA = vb;
                p.b = kNoNet;
            } else if (ca) {
                p.op = BOp::NeImm;
                p.immA = va;
                p.a = R(n.b);
                p.b = kNoNet;
            } else
                p.op = BOp::Ne;
            break;
          case Op::Ult:
            if (cb) {
                p.op = BOp::UltImm;
                p.immA = vb;
                p.b = kNoNet;
            } else
                p.op = BOp::Ult;
            break;
          case Op::Ule:
            if (cb) {
                p.op = BOp::UleImm;
                p.immA = vb;
                p.b = kNoNet;
            } else
                p.op = BOp::Ule;
            break;
          case Op::Shl:
            if (cb) {
                p.op = BOp::ShlImm;
                p.sh = (uint8_t)vb;
                p.b = kNoNet;
            } else {
                p.op = BOp::Shl;
                p.sh = n.width;
            }
            break;
          case Op::Shr:
            p.op = BOp::Shr;
            p.sh = n.width;
            break;
          case Op::Mux:
            if (cb && cc) {
                p.op = BOp::MuxImmBC;
                p.immA = vb;
                p.immB = vc;
                p.b = p.c = kNoNet;
            } else if (cb) {
                p.op = BOp::MuxImmB;
                p.immA = vb;
                p.b = R(n.c);
                p.c = kNoNet;
            } else if (cc) {
                p.op = BOp::MuxImmC;
                p.immA = vc;
                p.c = kNoNet;
            } else
                p.op = BOp::Mux;
            break;
          case Op::Concat: {
            int fa = fusable(n.a, BOp::Slice);
            int fb = fusable(n.b, BOp::Slice);
            unsigned wa2 = d.nodes[n.a].width;
            unsigned wb2 = d.nodes[n.b].width;
            if (fa >= 0 && fb >= 0 && n.width >= wa2 + wb2) {
                Pre &A = prog[fa], &Bp = prog[fb];
                p.op = BOp::ConcatSS;
                p.a = A.a; p.sa = A.sh; p.mask = A.mask;
                p.b = Bp.a; p.sb = Bp.sh; p.mb = Bp.mask;
                p.wsh = (uint8_t)wb2;
                A.dead = Bp.dead = true;
                preOf[id] = prog.size();
                prog.push_back(p);
                continue;
            }
            if (fa >= 0 && n.width >= wa2 + wb2) {
                Pre &A = prog[fa];
                p.op = BOp::ConcatSA;
                p.a = A.a; p.sa = A.sh; p.mb = A.mask;
                p.wsh = (uint8_t)wb2;
                A.dead = true;
                preOf[id] = prog.size();
                prog.push_back(p);
                continue;
            }
            if (fb >= 0 && n.width >= wa2 + wb2) {
                Pre &Bp = prog[fb];
                p.op = BOp::ConcatSB;
                p.b = Bp.a; p.sb = Bp.sh; p.mb = Bp.mask;
                p.wsh = (uint8_t)wb2;
                Bp.dead = true;
                preOf[id] = prog.size();
                prog.push_back(p);
                continue;
            }
            p.op = BOp::Concat;
            p.sh = (uint8_t)wb2;
            break;
          }
          case Op::RedAnd:
            p.op = BOp::RedAnd;
            p.mask = maskForWidth(d.nodes[n.a].width);
            break;
          case Op::RedOr:
            p.op = BOp::RedOr;
            break;
          case Op::RedXor:
            p.op = BOp::RedXor;
            break;
          case Op::MemRdAsync: {
            const auto &m = d.mems[n.imm];
            bool pow2 = (m.depth & (m.depth - 1)) == 0;
            p.op = pow2 ? BOp::MemRdAMask : BOp::MemRdAMod;
            p.b = p.c = kNoNet;
            p.immA = pow2 ? m.depth - 1 : m.depth;
            p.mask = n.imm;  // memory index rides in the mask stream
            break;
          }
          default:
            // Unreachable for well-formed designs; keep the node as
            // a plain slice of itself so execution stays defined.
            p.op = BOp::OrImm;
            p.immA = 0;
            break;
        }
        if (p.op == BOp::Xor || p.op == BOp::And || p.op == BOp::Or) {
            int fa = fusable(n.a, BOp::Slice);
            int fb = fusable(n.b, BOp::Slice);
            if (fa >= 0 && fb >= 0) {
                Pre &A = prog[fa], &Bp = prog[fb];
                p.op = p.op == BOp::Xor ? BOp::XorSS
                     : p.op == BOp::And ? BOp::AndSS : BOp::OrSS;
                p.a = A.a; p.sa = A.sh; p.mask = A.mask;
                p.b = Bp.a; p.sb = Bp.sh; p.mb = Bp.mask;
                A.dead = Bp.dead = true;
                preOf[id] = prog.size();
                prog.push_back(p);
                continue;
            }
            if (fa >= 0 || fb >= 0) {
                // Single slice operand: commute it into a.
                Pre &A = prog[fa >= 0 ? fa : fb];
                p.op = p.op == BOp::Xor ? BOp::XorSA
                     : p.op == BOp::And ? BOp::AndSA : BOp::OrSA;
                p.b = fa >= 0 ? R(n.b) : R(n.a);
                p.a = A.a; p.sa = A.sh; p.mb = A.mask;
                A.dead = true;
                preOf[id] = prog.size();
                prog.push_back(p);
                continue;
            }
        }
        if (p.op == BOp::Mux || p.op == BOp::MuxImmB ||
            p.op == BOp::MuxImmC || p.op == BOp::MuxImmBC) {
            int fe = fusable(n.a, BOp::EqImm);
            if (fe >= 0) {
                Pre &E2 = prog[fe];
                p.mb = E2.immA;
                p.a = E2.a;
                E2.dead = true;
                p.op = p.op == BOp::Mux ? BOp::MuxEq
                     : p.op == BOp::MuxImmB ? BOp::MuxEqB
                     : p.op == BOp::MuxImmC ? BOp::MuxEqC
                     : BOp::MuxEqBC;
                preOf[id] = prog.size();
                prog.push_back(p);
                continue;
            }
            int fs = fusable(n.a, BOp::Slice);
            if (fs >= 0 && prog[fs].mask == 1) {
                Pre &S2 = prog[fs];
                p.sa = S2.sh;
                p.a = S2.a;
                S2.dead = true;
                p.op = p.op == BOp::Mux ? BOp::MuxS
                     : p.op == BOp::MuxImmB ? BOp::MuxSB
                     : p.op == BOp::MuxImmC ? BOp::MuxSC
                     : BOp::MuxSBC;
                preOf[id] = prog.size();
                prog.push_back(p);
                continue;
            }
        }
        preOf[id] = prog.size();
        prog.push_back(p);
    }
    // Normalize MuxImmB/MuxEqB/MuxSB: the live arm moves into b.
    for (auto &p : prog)
        if ((p.op == BOp::MuxImmB || p.op == BOp::MuxEqB ||
             p.op == BOp::MuxSB) && p.b == kNoNet) {
            p.b = p.c;
            p.c = kNoNet;
        }

    // ---- Selector replication: a compare / 1-bit test whose every
    // consumer is a mux selector gets folded into all of them ----
    {
        std::unordered_map<NetId, int> preIdx;
        for (size_t i = 0; i < prog.size(); ++i)
            if (!prog[i].dead)
                preIdx[prog[i].dst] = i;
        std::unordered_map<NetId, int> selUses;
        for (auto &p : prog)
            if (!p.dead &&
                (p.op == BOp::Mux || p.op == BOp::MuxImmB ||
                 p.op == BOp::MuxImmC || p.op == BOp::MuxImmBC))
                selUses[p.a]++;
        std::vector<char> wasDead(prog.size());
        for (size_t i = 0; i < prog.size(); ++i)
            wasDead[i] = prog[i].dead;
        for (auto &p : prog) {
            if (p.dead)
                continue;
            if (!(p.op == BOp::Mux || p.op == BOp::MuxImmB ||
                  p.op == BOp::MuxImmC || p.op == BOp::MuxImmBC))
                continue;
            auto it = preIdx.find(p.a);
            if (it == preIdx.end() || wasDead[it->second])
                continue;
            Pre &s = prog[it->second];
            if (uses[p.a] != selUses[p.a])
                continue;  // consumed elsewhere too
            if (s.op == BOp::EqImm) {
                p.mb = s.immA;
                p.a = s.a;
                p.op = p.op == BOp::Mux ? BOp::MuxEq
                     : p.op == BOp::MuxImmB ? BOp::MuxEqB
                     : p.op == BOp::MuxImmC ? BOp::MuxEqC
                     : BOp::MuxEqBC;
            } else if (s.op == BOp::Slice && s.mask == 1) {
                p.sa = s.sh;
                p.a = s.a;
                p.op = p.op == BOp::Mux ? BOp::MuxS
                     : p.op == BOp::MuxImmB ? BOp::MuxSB
                     : p.op == BOp::MuxImmC ? BOp::MuxSC
                     : BOp::MuxSBC;
            } else
                continue;
            s.dead = true;  // every consumer was rewritten away
        }
    }

    // ---- Liveness from state/output roots ----
    std::vector<char> live(N, 0);
    std::vector<NetId> stk;
    auto root = [&](NetId x) {
        if (x != kNoNet && !isC[repr[x]])
            stk.push_back(repr[x]);
    };
    for (size_t i = 0; i < d.regs.size(); ++i) {
        root(rl[i].dn);
        root(rl[i].in2);
        root(rl[i].en);
        root(rl[i].rst);
    }
    for (auto &m : d.mems) {
        for (auto &rp : m.readPorts)
            root(rp.addr);
        for (auto &wp : m.writePorts) {
            root(wp.addr);
            root(wp.data);
            root(wp.en);
        }
    }
    for (auto &o : d.outputs)
        root(o.net);
    while (!stk.empty()) {
        NetId s = stk.back();
        stk.pop_back();
        if (live[s])
            continue;
        live[s] = 1;
        int pi = preOf[s];
        if (pi < 0 || prog[pi].dead)
            continue;
        root(prog[pi].a);
        root(prog[pi].b);
        root(prog[pi].c);
    }
    {
        std::vector<Pre> kept;
        for (auto &p : prog)
            if (!p.dead && live[p.dst])
                kept.push_back(p);
        prog.swap(kept);
    }

    // ---- Greedy list scheduling into same-opcode runs ----
    const size_t P = prog.size();
    std::unordered_map<NetId, int> prodOf;
    for (size_t i = 0; i < P; ++i)
        prodOf[prog[i].dst] = i;
    std::vector<std::vector<int>> consumers(P);
    std::vector<int> indeg(P, 0);
    auto dep = [&](int i, NetId opnd) {
        if (opnd == kNoNet)
            return;
        auto it = prodOf.find(opnd);
        if (it != prodOf.end()) {
            consumers[it->second].push_back(i);
            indeg[i]++;
        }
    };
    for (size_t i = 0; i < P; ++i) {
        dep(i, prog[i].a);
        dep(i, prog[i].b);
        dep(i, prog[i].c);
    }
    std::vector<std::vector<int>> ready((size_t)BOp::kNumOps);
    for (size_t i = 0; i < P; ++i)
        if (!indeg[i])
            ready[(size_t)prog[i].op].push_back(i);
    std::vector<int> sched;
    sched.reserve(P);
    std::vector<std::pair<BOp, uint32_t>> runPlan;
    size_t done = 0;
    while (done < P) {
        size_t best = 0, bestCount = 0;
        for (size_t o = 0; o < ready.size(); ++o)
            if (ready[o].size() > bestCount) {
                best = o;
                bestCount = ready[o].size();
            }
        uint32_t emitted = 0;
        std::vector<int> wave;
        wave.swap(ready[best]);
        while (!wave.empty()) {
            std::sort(wave.begin(), wave.end());
            for (int i : wave) {
                sched.push_back(i);
                ++emitted;
            }
            std::vector<int> next;
            for (int i : wave)
                for (int cns : consumers[i])
                    if (--indeg[cns] == 0) {
                        if ((size_t)prog[cns].op == best)
                            next.push_back(cns);
                        else
                            ready[(size_t)prog[cns].op].push_back(cns);
                    }
            wave.swap(next);
        }
        done += emitted;
        runPlan.push_back({(BOp)best, emitted});
    }
    {
        std::vector<Pre> ordered;
        ordered.reserve(P);
        for (int i : sched)
            ordered.push_back(prog[i]);
        prog.swap(ordered);
    }
    prg.instrCount = P;

    // ---- Slot assignment ----
    prg.slotOf.assign(N, Program::kNoSlot);
    std::vector<uint64_t> init{0, 1};
    std::unordered_map<uint64_t, uint32_t> cpool{{0, 0}, {1, 1}};
    auto constSlot = [&](uint64_t val) -> uint32_t {
        auto it = cpool.find(val);
        if (it != cpool.end())
            return it->second;
        uint32_t s = init.size();
        init.push_back(val);
        cpool[val] = s;
        return s;
    };
    for (NetId i = 0; i < N; ++i)
        if (isC[i] && repr[i] == i)
            prg.slotOf[i] = constSlot(cval[i]);
    for (auto &in : d.inputs) {
        prg.slotOf[in.net] = init.size();
        init.push_back(0);
    }
    prg.regSlot.resize(d.regs.size());
    for (size_t i = 0; i < d.regs.size(); ++i) {
        prg.regSlot[i] = init.size();
        prg.slotOf[d.regs[i].q] = init.size();
        init.push_back(d.regs[i].initVal);
    }
    for (auto &m : d.mems)
        for (auto &rp : m.readPorts)
            if (rp.sync) {
                prg.latchSlot.push_back(init.size());
                prg.slotOf[rp.data] = init.size();
                init.push_back(0);
            }
    uint32_t dstBase = init.size();
    for (auto &p : prog) {
        prg.slotOf[p.dst] = init.size();
        init.push_back(0);
    }
    // Scratch regions for buffered commits (used by both tiers).
    prg.rnBase = init.size();
    init.resize(init.size() + d.regs.size(), 0);
    prg.ltBase = init.size();
    init.resize(init.size() + prg.latchSlot.size(), 0);
    prg.initV = std::move(init);
    // Aliased nets read their representative's slot.
    for (NetId i = 0; i < N; ++i)
        if (prg.slotOf[i] == Program::kNoSlot && repr[i] != i &&
            prg.slotOf[repr[i]] != Program::kNoSlot)
            prg.slotOf[i] = prg.slotOf[repr[i]];
    auto S = [&](NetId n) -> uint32_t {
        return n == kNoNet ? 0 : prg.slotOf[n];
    };

    uint32_t at = 0;
    for (auto &[op, count] : runPlan) {
        prg.runs.push_back({op, at, count, dstBase + at});
        at += count;
    }
    for (auto &p : prog) {
        prg.ia.push_back(S(p.a));
        prg.ib.push_back(S(p.b));
        prg.ic.push_back(S(p.c));
        prg.imask.push_back(p.mask);
        prg.immA.push_back(p.immA);
        prg.immB.push_back(p.immB);
        prg.ish.push_back(p.sh);
        prg.ext.push_back({p.sa, p.sb, p.wsh, 0, 0, p.mb});
    }

    // ---- Sequential plans ----
    {
        size_t li = 0;
        for (size_t m = 0; m < d.mems.size(); ++m)
            for (auto &rp : d.mems[m].readPorts)
                if (rp.sync) {
                    bool pow2 =
                        (d.mems[m].depth & (d.mems[m].depth - 1)) == 0;
                    prg.latches.push_back(
                        {S(rp.addr), (uint32_t)m, prg.latchSlot[li++],
                         pow2 ? d.mems[m].depth - 1 : d.mems[m].depth,
                         pow2, rp.clock});
                }
        for (size_t m = 0; m < d.mems.size(); ++m)
            for (auto &wp : d.mems[m].writePorts) {
                bool pow2 =
                    (d.mems[m].depth & (d.mems[m].depth - 1)) == 0;
                prg.writes.push_back(
                    {S(wp.addr), S(wp.data), S(wp.en), (uint32_t)m,
                     pow2 ? d.mems[m].depth - 1 : d.mems[m].depth,
                     maskForWidth(d.mems[m].width), pow2, wp.clock});
            }
    }

    // Direct/buffered classification: a register commits in place
    // iff no other reg plan / latch / write reads its q slot.
    std::vector<uint32_t> refs(prg.initV.size(), 0);
    auto planSlots = [&](const RegPlan &p, uint32_t out[4]) {
        out[0] = S(p.dn);
        out[1] = p.in2 == kNoNet ? 0 : S(p.in2);
        out[2] = p.en == kNoNet ? 1 : S(p.en);
        out[3] = p.rst == kNoNet ? 0 : S(p.rst);
    };
    for (size_t i = 0; i < d.regs.size(); ++i) {
        uint32_t s4[4];
        planSlots(rl[i], s4);
        for (int k = 0; k < 4; ++k)
            refs[s4[k]]++;
    }
    for (auto &l : prg.latches)
        refs[l.addr]++;
    for (auto &w : prg.writes) {
        refs[w.addr]++;
        refs[w.data]++;
        refs[w.en]++;
    }
    for (size_t i = 0; i < d.regs.size(); ++i) {
        const rtl::Reg &r = d.regs[i];
        uint32_t q = prg.regSlot[i];
        uint32_t s4[4];
        planSlots(rl[i], s4);
        uint32_t self = 0;
        for (int k = 0; k < 4; ++k)
            if (s4[k] == q)
                ++self;
        bool direct = refs[q] == self;
        bool isFull = rl[i].rst != kNoNet || rl[i].enInv;
        bool isShift = rl[i].sh != 0 || rl[i].in2 != kNoNet;
        bool free = rl[i].en == kNoNet && !isFull;
        RegStreams &rs =
            direct ? (isFull ? prg.dFull
                     : isShift ? (free ? prg.dShiftF : prg.dShift)
                               : (free ? prg.dPlainF : prg.dPlain))
                   : (isFull ? prg.bFull
                     : isShift ? (free ? prg.bShiftF : prg.bShift)
                               : (free ? prg.bPlainF : prg.bPlain));
        rs.d.push_back(s4[0]);
        rs.in2.push_back(s4[1]);
        rs.en.push_back(s4[2]);
        rs.rst.push_back(s4[3]);
        rs.q.push_back(q);
        rs.sh.push_back(rl[i].sh);
        rs.wsh.push_back(rl[i].wsh);
        rs.inv.push_back(rl[i].enInv ? 1 : 0);
        rs.mask.push_back(maskForWidth(r.width));
        rs.rstVal.push_back(r.rstVal & maskForWidth(r.width));
        rs.ix.push_back(i);
        prg.regPlans.push_back({s4[0], s4[1], s4[2], s4[3], q,
                                rl[i].sh, rl[i].wsh, r.clock,
                                rl[i].enInv, maskForWidth(r.width),
                                r.rstVal & maskForWidth(r.width)});
    }
    return prg;
}

} // namespace zoomie::jit
