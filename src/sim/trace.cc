#include "trace.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace zoomie::sim {

void
Trace::addSignal(const std::string &name,
                 std::function<uint64_t()> probe)
{
    panic_if(!_samples.empty() && length() != 0,
             "cannot add signals after sampling started");
    _names.push_back(name);
    _probes.push_back(std::move(probe));
    _samples.emplace_back();
}

void
Trace::sample()
{
    for (size_t i = 0; i < _probes.size(); ++i)
        _samples[i].push_back(_probes[i]());
}

uint64_t
Trace::at(size_t index, size_t cycle) const
{
    panic_if(index >= _samples.size(), "bad trace signal index");
    panic_if(cycle >= _samples[index].size(), "bad trace cycle");
    return _samples[index][cycle];
}

void
Trace::print(std::ostream &os) const
{
    size_t name_width = 0;
    for (const auto &name : _names)
        name_width = std::max(name_width, name.size());

    for (size_t i = 0; i < _samples.size(); ++i) {
        const auto &row = _samples[i];
        bool is_bit = true;
        for (uint64_t v : row) {
            if (v > 1) {
                is_bit = false;
                break;
            }
        }
        os << _names[i]
           << std::string(name_width - _names[i].size() + 2, ' ');
        if (is_bit) {
            for (uint64_t v : row)
                os << (v ? "###" : "___");
        } else {
            for (uint64_t v : row) {
                char buf[16];
                std::snprintf(buf, sizeof(buf), "%2llx|",
                              static_cast<unsigned long long>(v));
                os << buf;
            }
        }
        os << "\n";
    }
}

} // namespace zoomie::sim
