/**
 * @file
 * Minimal waveform recorder: samples named signals each cycle and can
 * render an ASCII timing diagram (used by the Figure 3 bench to show
 * the handshake-violation waveform).
 */

#ifndef ZOOMIE_SIM_TRACE_HH
#define ZOOMIE_SIM_TRACE_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace zoomie::sim {

/** Records per-cycle samples of a fixed set of signals. */
class Trace
{
  public:
    /** Add a signal before sampling starts. */
    void addSignal(const std::string &name,
                   std::function<uint64_t()> probe);

    /** Take one sample of every signal. */
    void sample();

    /** Number of samples taken. */
    size_t length() const { return _samples.empty()
        ? 0 : _samples.front().size(); }

    /** Value of signal @p index at @p cycle. */
    uint64_t at(size_t index, size_t cycle) const;

    /** Signal names, in addSignal order. */
    const std::vector<std::string> &names() const { return _names; }

    /** Number of signals. */
    size_t signalCount() const { return _names.size(); }

    /**
     * Render single-bit signals as waveforms (___/▔▔▔ style using
     * '_' and '#') and wide signals as per-cycle hex values.
     */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> _names;
    std::vector<std::function<uint64_t()>> _probes;
    std::vector<std::vector<uint64_t>> _samples;
};

} // namespace zoomie::sim

#endif // ZOOMIE_SIM_TRACE_HH
