#include "simulator.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace zoomie::sim {

using rtl::Op;

Simulator::Simulator(const rtl::Design &design)
    : _design(design),
      _order(design.topoOrder()),
      _values(design.nodes.size(), 0),
      _regState(design.regs.size(), 0),
      _cycles(design.clocks.size(), 0)
{
    for (uint32_t i = 0; i < _design.inputs.size(); ++i)
        _inputIndex[_design.inputs[i].name] = i;
    for (uint32_t i = 0; i < _design.outputs.size(); ++i)
        _outputIndex[_design.outputs[i].name] = i;
    for (uint32_t i = 0; i < _design.regs.size(); ++i)
        _regIndex[_design.regs[i].name] = i;

    _memState.resize(_design.mems.size());
    for (uint32_t m = 0; m < _design.mems.size(); ++m) {
        const rtl::Mem &mem = _design.mems[m];
        _memState[m].assign(mem.depth, 0);
        for (uint32_t p = 0; p < mem.readPorts.size(); ++p) {
            if (mem.readPorts[p].sync)
                _syncPorts.push_back({m, p});
        }
    }
    _syncReadLatch.assign(_syncPorts.size(), 0);

    _regNext.reserve(_design.regs.size());
    _latchNext.reserve(_syncPorts.size());
    _memWrites.reserve(_design.mems.size());
    _oneClock.resize(1, 0);
    for (uint8_t c = 0; c < _design.clocks.size(); ++c)
        _allClocks.push_back(c);

    reset();
}

void
Simulator::reset()
{
    for (uint32_t i = 0; i < _design.regs.size(); ++i)
        _regState[i] = _design.regs[i].initVal;
    for (uint32_t m = 0; m < _design.mems.size(); ++m) {
        const rtl::Mem &mem = _design.mems[m];
        for (uint32_t a = 0; a < mem.depth; ++a) {
            _memState[m][a] =
                a < mem.init.size()
                    ? truncToWidth(mem.init[a], mem.width) : 0;
        }
    }
    for (auto &latch : _syncReadLatch)
        latch = 0;
    markDirty();
}

void
Simulator::poke(const std::string &port, uint64_t value)
{
    auto it = _inputIndex.find(port);
    panic_if(it == _inputIndex.end(), "unknown input port '", port,
             "' in design '", _design.name, "'");
    const rtl::InputPort &in = _design.inputs[it->second];
    _values[in.net] = truncToWidth(value, in.width);
    markDirty();
}

void
Simulator::evaluate()
{
    if (!_dirty)
        return;

    // State sources first: registers and latched sync reads.
    for (uint32_t i = 0; i < _design.regs.size(); ++i)
        _values[_design.regs[i].q] = _regState[i];
    for (size_t i = 0; i < _syncPorts.size(); ++i) {
        const auto &ref = _syncPorts[i];
        _values[_design.mems[ref.mem].readPorts[ref.port].data] =
            _syncReadLatch[i];
    }

    for (rtl::NetId id : _order) {
        const rtl::Node &node = _design.nodes[id];
        const uint64_t mask = maskForWidth(node.width);
        uint64_t va = node.a != rtl::kNoNet ? _values[node.a] : 0;
        uint64_t vb = node.b != rtl::kNoNet ? _values[node.b] : 0;
        uint64_t vc = node.c != rtl::kNoNet ? _values[node.c] : 0;
        uint64_t out;
        switch (node.op) {
          case Op::Const:
            out = node.imm;
            break;
          case Op::Input:
          case Op::RegQ:
          case Op::MemRdSync:
            continue;  // already seeded
          case Op::MemRdAsync: {
            const auto &mem = _design.mems[node.imm];
            uint64_t addr = va % mem.depth;
            out = _memState[node.imm][addr];
            break;
          }
          case Op::And: out = va & vb; break;
          case Op::Or: out = va | vb; break;
          case Op::Xor: out = va ^ vb; break;
          case Op::Not: out = ~va; break;
          case Op::Add: out = va + vb; break;
          case Op::Sub: out = va - vb; break;
          case Op::Mul: out = va * vb; break;
          case Op::Eq: out = va == vb; break;
          case Op::Ne: out = va != vb; break;
          case Op::Ult: out = va < vb; break;
          case Op::Ule: out = va <= vb; break;
          case Op::Shl:
            out = vb >= node.width ? 0 : va << vb;
            break;
          case Op::Shr:
            out = vb >= node.width ? 0 : va >> vb;
            break;
          case Op::Mux: out = va ? vb : vc; break;
          case Op::Concat:
            out = (va << _design.nodes[node.b].width) | vb;
            break;
          case Op::Slice:
            out = va >> node.imm;
            break;
          case Op::Zext: out = va; break;
          case Op::RedAnd:
            out = va == maskForWidth(_design.nodes[node.a].width);
            break;
          case Op::RedOr: out = va != 0; break;
          case Op::RedXor: out = popCount(va) & 1; break;
          default:
            panic("unhandled op ", opName(node.op));
        }
        _values[id] = out & mask;
    }
    _dirty = false;
}

uint64_t
Simulator::net(rtl::NetId id)
{
    evaluate();
    return _values[id];
}

uint64_t
Simulator::netByName(const std::string &name)
{
    rtl::NetId id = _design.findNet(name);
    panic_if(id == rtl::kNoNet, "unknown net '", name, "'");
    return net(id);
}

uint64_t
Simulator::peek(const std::string &port)
{
    auto it = _outputIndex.find(port);
    panic_if(it == _outputIndex.end(), "unknown output port '",
             port, "'");
    return net(_design.outputs[it->second].net);
}

void
Simulator::step(uint8_t clock)
{
    _oneClock[0] = clock;
    stepDomains(_oneClock);
}

void
Simulator::stepDomains(const std::vector<uint8_t> &clocks)
{
    evaluate();

    auto clocked = [&clocks](uint8_t clock) {
        for (uint8_t c : clocks)
            if (c == clock)
                return true;
        return false;
    };

    // Phase 1: compute next state from pre-edge values. The
    // scratch buffers are members reused across steps so the hot
    // loop stays allocation-free once warm.
    _regNext.clear();
    for (uint32_t i = 0; i < _design.regs.size(); ++i) {
        const rtl::Reg &reg = _design.regs[i];
        if (!clocked(reg.clock))
            continue;
        if (reg.en != rtl::kNoNet && !_values[reg.en])
            continue;
        uint64_t next =
            (reg.rst != rtl::kNoNet && _values[reg.rst])
                ? reg.rstVal
                : _values[reg.d];
        _regNext.emplace_back(i, truncToWidth(next, reg.width));
    }

    _latchNext.clear();
    for (size_t i = 0; i < _syncPorts.size(); ++i) {
        const auto &ref = _syncPorts[i];
        const rtl::Mem &mem = _design.mems[ref.mem];
        const rtl::MemReadPort &port = mem.readPorts[ref.port];
        if (!clocked(port.clock))
            continue;
        uint64_t addr = _values[port.addr] % mem.depth;
        _latchNext.emplace_back(i, _memState[ref.mem][addr]);
    }

    _memWrites.clear();
    for (uint32_t m = 0; m < _design.mems.size(); ++m) {
        const rtl::Mem &mem = _design.mems[m];
        for (const auto &wp : mem.writePorts) {
            if (!clocked(wp.clock) || !_values[wp.en])
                continue;
            _memWrites.push_back({m, _values[wp.addr] % mem.depth,
                                  truncToWidth(_values[wp.data],
                                               mem.width)});
        }
    }

    // Phase 2: commit simultaneously.
    for (const auto &[idx, val] : _regNext)
        _regState[idx] = val;
    for (const auto &[idx, val] : _latchNext)
        _syncReadLatch[idx] = val;
    for (const auto &w : _memWrites)
        _memState[w.mem][w.addr] = w.data;

    for (uint8_t clock : clocks)
        ++_cycles[clock];
    markDirty();
}

void
Simulator::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        stepDomains(_allClocks);
}

uint64_t
Simulator::regValue(uint32_t index)
{
    panic_if(index >= _regState.size(), "register index out of range");
    return _regState[index];
}

int
Simulator::regIndexOf(const std::string &name) const
{
    auto it = _regIndex.find(name);
    return it == _regIndex.end() ? -1 : static_cast<int>(it->second);
}

uint64_t
Simulator::regByName(const std::string &name)
{
    int idx = regIndexOf(name);
    panic_if(idx < 0, "unknown register '", name, "'");
    return _regState[idx];
}

void
Simulator::forceReg(uint32_t index, uint64_t value)
{
    panic_if(index >= _regState.size(), "register index out of range");
    _regState[index] =
        truncToWidth(value, _design.regs[index].width);
    markDirty();
}

void
Simulator::forceRegByName(const std::string &name, uint64_t value)
{
    int idx = regIndexOf(name);
    panic_if(idx < 0, "unknown register '", name, "'");
    forceReg(static_cast<uint32_t>(idx), value);
}

uint64_t
Simulator::memWord(uint32_t mem_index, uint32_t addr) const
{
    panic_if(mem_index >= _memState.size(), "memory index out of range");
    panic_if(addr >= _memState[mem_index].size(),
             "memory address out of range");
    return _memState[mem_index][addr];
}

void
Simulator::forceMemWord(uint32_t mem_index, uint32_t addr,
                        uint64_t value)
{
    panic_if(mem_index >= _memState.size(), "memory index out of range");
    panic_if(addr >= _memState[mem_index].size(),
             "memory address out of range");
    _memState[mem_index][addr] =
        truncToWidth(value, _design.mems[mem_index].width);
    markDirty();
}

std::vector<uint64_t>
Simulator::snapshotRegs()
{
    return _regState;
}

void
Simulator::restoreRegs(const std::vector<uint64_t> &image)
{
    panic_if(image.size() != _regState.size(),
             "snapshot size mismatch");
    _regState = image;
    markDirty();
}

} // namespace zoomie::sim
