#include "vcd.hh"

#include <algorithm>
#include <vector>

namespace zoomie::sim {

namespace {

/** VCD identifier codes: printable ASCII starting at '!'. */
std::string
idCode(size_t index)
{
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return code;
}

std::string
binary(uint64_t value, unsigned width)
{
    std::string out(width, '0');
    for (unsigned bit = 0; bit < width; ++bit) {
        if ((value >> bit) & 1)
            out[width - 1 - bit] = '1';
    }
    return out;
}

} // namespace

void
writeVcd(const Trace &trace, std::ostream &os,
         const std::string &timescale)
{
    const size_t num_signals = trace.signalCount();
    const size_t cycles = trace.length();

    // Infer widths from the widest observed value.
    std::vector<unsigned> width(num_signals, 1);
    for (size_t s = 0; s < num_signals; ++s) {
        uint64_t max_value = 0;
        for (size_t t = 0; t < cycles; ++t)
            max_value = std::max(max_value, trace.at(s, t));
        while (width[s] < 64 && (max_value >> width[s]))
            ++width[s];
    }

    os << "$date zoomie $end\n";
    os << "$version zoomie trace export $end\n";
    os << "$timescale " << timescale << " $end\n";
    os << "$scope module trace $end\n";
    for (size_t s = 0; s < num_signals; ++s) {
        // Slashes are scope separators in design names; VCD wants
        // flat identifiers here, so flatten them.
        std::string name = trace.names()[s];
        std::replace(name.begin(), name.end(), '/', '.');
        os << "$var wire " << width[s] << ' ' << idCode(s) << ' '
           << name << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    for (size_t t = 0; t < cycles; ++t) {
        os << '#' << t << '\n';
        for (size_t s = 0; s < num_signals; ++s) {
            uint64_t value = trace.at(s, t);
            bool changed = t == 0 || trace.at(s, t - 1) != value;
            if (!changed)
                continue;
            if (width[s] == 1) {
                os << (value ? '1' : '0') << idCode(s) << '\n';
            } else {
                os << 'b' << binary(value, width[s]) << ' '
                   << idCode(s) << '\n';
            }
        }
    }
}

} // namespace zoomie::sim
