#include "vcd.hh"

#include <algorithm>

namespace zoomie::sim {

namespace {

/** VCD identifier codes: printable ASCII starting at '!'. */
std::string
idCode(size_t index)
{
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return code;
}

std::string
binary(uint64_t value, unsigned width)
{
    std::string out(width, '0');
    for (unsigned bit = 0; bit < width; ++bit) {
        if ((value >> bit) & 1)
            out[width - 1 - bit] = '1';
    }
    return out;
}

} // namespace

std::vector<unsigned>
vcdWidths(const Trace &trace)
{
    const size_t num_signals = trace.signalCount();
    const size_t cycles = trace.length();
    std::vector<unsigned> width(num_signals, 1);
    for (size_t s = 0; s < num_signals; ++s) {
        uint64_t max_value = 0;
        for (size_t t = 0; t < cycles; ++t)
            max_value = std::max(max_value, trace.at(s, t));
        while (width[s] < 64 && (max_value >> width[s]))
            ++width[s];
    }
    return width;
}

VcdChunkWriter::VcdChunkWriter(Sink sink,
                               const std::vector<std::string> &names,
                               const std::vector<unsigned> &widths,
                               const std::string &timescale,
                               size_t chunkBytes)
    : _sink(std::move(sink)), _widths(widths),
      _chunkBytes(std::max<size_t>(1, chunkBytes))
{
    _pending += "$date zoomie $end\n";
    _pending += "$version zoomie trace export $end\n";
    _pending += "$timescale " + timescale + " $end\n";
    _pending += "$scope module trace $end\n";
    for (size_t s = 0; s < names.size(); ++s) {
        // Slashes are scope separators in design names; VCD wants
        // flat identifiers here, so flatten them.
        std::string name = names[s];
        std::replace(name.begin(), name.end(), '/', '.');
        _pending += "$var wire " + std::to_string(_widths[s]) +
                    ' ' + idCode(s) + ' ' + name + " $end\n";
    }
    _pending += "$upscope $end\n$enddefinitions $end\n";
    drain(false);
}

void
VcdChunkWriter::appendSample(const std::vector<uint64_t> &values)
{
    _pending += '#';
    _pending += std::to_string(_samples);
    _pending += '\n';
    for (size_t s = 0; s < _widths.size(); ++s) {
        uint64_t value = values[s];
        bool changed = _samples == 0 || _last[s] != value;
        if (!changed)
            continue;
        if (_widths[s] == 1) {
            _pending += value ? '1' : '0';
            _pending += idCode(s);
            _pending += '\n';
        } else {
            _pending += 'b';
            _pending += binary(value, _widths[s]);
            _pending += ' ';
            _pending += idCode(s);
            _pending += '\n';
        }
    }
    _last = values;
    ++_samples;
    drain(false);
}

void
VcdChunkWriter::finish()
{
    drain(true);
}

void
VcdChunkWriter::drain(bool flushAll)
{
    size_t offset = 0;
    while (_pending.size() - offset >= _chunkBytes) {
        _sink(std::string_view(_pending)
                  .substr(offset, _chunkBytes));
        _bytesEmitted += _chunkBytes;
        offset += _chunkBytes;
    }
    if (flushAll && _pending.size() > offset) {
        _sink(std::string_view(_pending).substr(offset));
        _bytesEmitted += _pending.size() - offset;
        offset = _pending.size();
    }
    _pending.erase(0, offset);
}

void
writeVcd(const Trace &trace, std::ostream &os,
         const std::string &timescale)
{
    VcdChunkWriter writer(
        [&os](std::string_view chunk) {
            os.write(chunk.data(),
                     std::streamsize(chunk.size()));
        },
        trace.names(), vcdWidths(trace), timescale);
    const size_t cycles = trace.length();
    std::vector<uint64_t> values(trace.signalCount());
    for (size_t t = 0; t < cycles; ++t) {
        for (size_t s = 0; s < values.size(); ++s)
            values[s] = trace.at(s, t);
        writer.appendSample(values);
    }
    writer.finish();
}

} // namespace zoomie::sim
