/**
 * @file
 * VCD (Value Change Dump) export for captured traces, so Zoomie
 * debugging sessions and snapshot replays can be inspected in any
 * standard waveform viewer (GTKWave etc.) — part of giving FPGA
 * debugging the software tooling ecosystem the paper argues for.
 *
 * Two producers share one emission engine:
 *
 * - writeVcd(): the classic whole-trace export to a stream.
 * - VcdChunkWriter: an incremental writer that emits the document
 *   as bounded chunks into a caller-provided sink — header and
 *   definitions first, then value-change sections as samples are
 *   appended. The remote debug protocol streams these chunks as
 *   `trace_chunk` events so clients reconstruct the VCD without a
 *   shared filesystem. writeVcd() is implemented on top of the
 *   chunk writer, so the concatenated chunk stream is byte-
 *   identical to the file export for the same trace.
 */

#ifndef ZOOMIE_SIM_VCD_HH
#define ZOOMIE_SIM_VCD_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/trace.hh"

namespace zoomie::sim {

/**
 * Signal widths as writeVcd infers them: the narrowest width (at
 * least 1 bit) holding the widest sample observed per signal.
 * Callers streaming a captured trace use this so the incremental
 * document matches the file export byte for byte.
 */
std::vector<unsigned> vcdWidths(const Trace &trace);

/**
 * Incremental VCD document writer. Construction emits the header
 * and `$var` definitions; each appendSample() emits one `#t`
 * timestep with change-only value records; finish() flushes the
 * tail. Output leaves through @p sink in segments of at most
 * @p chunkBytes (the final segment may be shorter). Concatenating
 * every segment yields the complete document.
 */
class VcdChunkWriter
{
  public:
    /** Receives consecutive document segments, in order. */
    using Sink = std::function<void(std::string_view chunk)>;

    /**
     * @param sink       segment consumer
     * @param names      signal names (slashes become dots)
     * @param widths     per-signal bit widths (same order)
     * @param timescale  e.g. "1ns"
     * @param chunkBytes segment size cap (>= 1)
     */
    VcdChunkWriter(Sink sink, const std::vector<std::string> &names,
                   const std::vector<unsigned> &widths,
                   const std::string &timescale = "1ns",
                   size_t chunkBytes = 64 * 1024);

    /** Emit the next timestep; @p values is one value per signal. */
    void appendSample(const std::vector<uint64_t> &values);

    /** Flush any buffered output. Idempotent. */
    void finish();

    /** Bytes emitted through the sink so far. */
    uint64_t bytesEmitted() const { return _bytesEmitted; }

    /** Timesteps appended so far. */
    uint64_t samples() const { return _samples; }

  private:
    void drain(bool flushAll);

    Sink _sink;
    std::vector<unsigned> _widths;
    std::vector<uint64_t> _last; ///< previous sample, for change detection
    size_t _chunkBytes;
    std::string _pending;
    uint64_t _bytesEmitted = 0;
    uint64_t _samples = 0;
};

/**
 * Write a captured trace as a VCD document.
 *
 * Signal widths are inferred from the widest sample observed.
 * Hierarchical signal names (slash-separated) become VCD scopes.
 *
 * @param trace     sampled signals
 * @param os        output stream
 * @param timescale e.g. "1ns"
 */
void writeVcd(const Trace &trace, std::ostream &os,
              const std::string &timescale = "1ns");

} // namespace zoomie::sim

#endif // ZOOMIE_SIM_VCD_HH
