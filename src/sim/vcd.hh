/**
 * @file
 * VCD (Value Change Dump) export for captured traces, so Zoomie
 * debugging sessions and snapshot replays can be inspected in any
 * standard waveform viewer (GTKWave etc.) — part of giving FPGA
 * debugging the software tooling ecosystem the paper argues for.
 */

#ifndef ZOOMIE_SIM_VCD_HH
#define ZOOMIE_SIM_VCD_HH

#include <ostream>
#include <string>

#include "sim/trace.hh"

namespace zoomie::sim {

/**
 * Write a captured trace as a VCD document.
 *
 * Signal widths are inferred from the widest sample observed.
 * Hierarchical signal names (slash-separated) become VCD scopes.
 *
 * @param trace     sampled signals
 * @param os        output stream
 * @param timescale e.g. "1ns"
 */
void writeVcd(const Trace &trace, std::ostream &os,
              const std::string &timescale = "1ns");

} // namespace zoomie::sim

#endif // ZOOMIE_SIM_VCD_HH
